#pragma once

/// \file frame.hpp
/// Mapping local trajectory programs into the global frame.
///
/// A robot with attributes (v, τ, φ, χ) placed at `origin` executes a
/// local program S(·).  Its global position at global time t is
///     origin + (v·τ)·R(φ)·diag(1,χ) · S(t/τ).
/// Under this map each local primitive stays a primitive of the same
/// kind: lines map to lines, circular arcs to circular arcs (radius
/// scaled by v·τ, angles reflected for χ = −1), waits to waits.  The
/// traversal *speed* in the global frame is v (scale v·τ over time
/// dilation τ).
///
/// `GlobalSegmentStream` applies this map lazily to a `Program`,
/// producing the timed global segments the simulator sweeps over.

#include <memory>

#include "geom/attributes.hpp"
#include "traj/program.hpp"
#include "traj/segment.hpp"

namespace rv::traj {

/// A segment placed on the global timeline: the robot occupies
/// `position_at(geometry, progress)` where progress advances uniformly
/// from 0 to duration(geometry) as t goes from t0 to t1.
struct TimedSegment {
  Segment geometry;   ///< global-frame geometry
  double t0 = 0.0;    ///< global start time
  double t1 = 0.0;    ///< global end time (t1 ≥ t0)

  /// Global position at global time t ∈ [t0, t1] (clamped).
  [[nodiscard]] geom::Vec2 position(double t) const;

  /// Constant traversal speed on this segment (0 for waits).
  [[nodiscard]] double speed() const;
};

/// Maps one local segment to global geometry for a robot with the given
/// attributes and origin.  Time fields are *not* filled in (the stream
/// assigns them); the returned segment carries only geometry.
[[nodiscard]] Segment to_global_geometry(const Segment& local,
                                         const geom::RobotAttributes& attrs,
                                         const geom::Vec2& origin);

/// Lazily converts a local `Program` into a stream of global
/// `TimedSegment`s for a robot with given attributes and origin.
class GlobalSegmentStream {
 public:
  GlobalSegmentStream(std::shared_ptr<Program> program,
                      geom::RobotAttributes attrs, geom::Vec2 origin);

  /// Produces the next timed global segment.  Degenerate (zero-time)
  /// segments are skipped automatically.
  [[nodiscard]] TimedSegment next();

  /// Global time reached so far.
  [[nodiscard]] double clock() const { return clock_; }

  /// The robot's attributes.
  [[nodiscard]] const geom::RobotAttributes& attributes() const {
    return attrs_;
  }

  /// The robot's starting position in the global frame.
  [[nodiscard]] const geom::Vec2& origin() const { return origin_; }

 private:
  std::shared_ptr<Program> program_;
  geom::RobotAttributes attrs_;
  geom::Vec2 origin_;
  double clock_ = 0.0;
  double clock_comp_ = 0.0;  ///< Kahan compensation
};

}  // namespace rv::traj
