#include "traj/program.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace rv::traj {

using geom::Vec2;

void MarkRecorder::record(double local_time, std::string label) {
  marks_.push_back(Mark{local_time, std::move(label)});
}

const Mark* MarkRecorder::find(const std::string& label) const {
  for (const Mark& m : marks_) {
    if (m.label == label) return &m;
  }
  return nullptr;
}

StationaryProgram::StationaryProgram(double chunk) : chunk_(chunk) {
  if (!(chunk > 0.0)) {
    throw std::invalid_argument("StationaryProgram: chunk must be > 0");
  }
}

Segment StationaryProgram::next() { return WaitSeg{{0.0, 0.0}, chunk_}; }

PathProgram::PathProgram(Path path, std::string name, double tail_chunk)
    : path_(std::move(path)), name_(std::move(name)), tail_chunk_(tail_chunk) {
  if (!(tail_chunk > 0.0)) {
    throw std::invalid_argument("PathProgram: tail_chunk must be > 0");
  }
  if (!path_.empty() && !geom::approx_equal(path_.start(), Vec2{})) {
    throw std::invalid_argument("PathProgram: path must start at the origin");
  }
}

Segment PathProgram::next() {
  if (index_ < path_.size()) {
    return path_.segments()[index_++];
  }
  return WaitSeg{path_.end(), tail_chunk_};
}

RoundProgram::RoundProgram(RoundFn fn, std::string name)
    : fn_(std::move(fn)), name_(std::move(name)) {
  if (!fn_) throw std::invalid_argument("RoundProgram: null round function");
}

void RoundProgram::refill() {
  while (index_ >= buffer_.size()) {
    ++round_;
    Path path = fn_(round_, cursor_);
    if (!geom::approx_equal(path.start(), cursor_, 1e-6)) {
      throw std::logic_error("RoundProgram: round path does not start at cursor");
    }
    buffer_.assign(path.segments().begin(), path.segments().end());
    index_ = 0;
    cursor_ = path.end();
    // A round may legitimately be empty only if the next one is not;
    // loop guards against zero-segment rounds.
  }
}

Segment RoundProgram::next() {
  refill();
  return buffer_[index_++];
}

BufferedTrajectory::BufferedTrajectory(std::shared_ptr<Program> program)
    : program_(std::move(program)) {
  if (!program_) {
    throw std::invalid_argument("BufferedTrajectory: null program");
  }
}

void BufferedTrajectory::ensure(double t) {
  while (total_ < t) {
    Segment seg = program_->next();
    starts_.push_back(total_);
    total_ += duration(seg);
    segments_.push_back(std::move(seg));
  }
}

Vec2 BufferedTrajectory::position_at(double t) {
  if (t < 0.0) t = 0.0;
  ensure(t);
  if (segments_.empty()) return {};
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), t);
  const std::size_t idx =
      static_cast<std::size_t>(std::distance(starts_.begin(), it)) - 1;
  return traj::position_at(segments_[idx], t - starts_[idx]);
}

}  // namespace rv::traj
