#include "traj/frame.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace rv::traj {

using geom::Mat2;
using geom::RobotAttributes;
using geom::Vec2;

Vec2 TimedSegment::position(double t) const {
  const double span = t1 - t0;
  const double dur = duration(geometry);
  if (span <= 0.0 || dur == 0.0) return start_point(geometry);
  double frac = (t - t0) / span;
  frac = std::clamp(frac, 0.0, 1.0);
  return position_at(geometry, frac * dur);
}

double TimedSegment::speed() const {
  if (std::holds_alternative<WaitSeg>(geometry)) return 0.0;
  const double span = t1 - t0;
  if (span <= 0.0) return 0.0;
  return duration(geometry) / span;
}

Segment to_global_geometry(const Segment& local, const RobotAttributes& attrs,
                           const Vec2& origin) {
  const Mat2 m = frame_matrix(attrs);
  const double scale = attrs.speed * attrs.time_unit;
  const double chi = static_cast<double>(attrs.chirality);

  if (const auto* line = std::get_if<LineSeg>(&local)) {
    return LineSeg{origin + m * line->from, origin + m * line->to};
  }
  if (const auto* arc = std::get_if<ArcSeg>(&local)) {
    // Under x ↦ s·R(φ)·diag(1,χ)·x a point at angle θ on the circle
    // maps to a point at angle φ + χ·θ on the scaled circle: the
    // chirality flip conjugates the angle, the rotation shifts it.
    return ArcSeg{origin + m * arc->center, scale * arc->radius,
                  attrs.orientation + chi * arc->start_angle,
                  chi * arc->sweep};
  }
  const auto& wait = std::get<WaitSeg>(local);
  return WaitSeg{origin + m * wait.at, attrs.time_unit * wait.duration};
}

GlobalSegmentStream::GlobalSegmentStream(std::shared_ptr<Program> program,
                                         RobotAttributes attrs, Vec2 origin)
    : program_(std::move(program)),
      attrs_(geom::validated(attrs)),
      origin_(origin) {
  if (!program_) {
    throw std::invalid_argument("GlobalSegmentStream: null program");
  }
}

TimedSegment GlobalSegmentStream::next() {
  for (;;) {
    const Segment local = program_->next();
    // Failure injection barrier: a buggy program must fail loudly here
    // rather than corrupt the contact sweep with NaN geometry.
    validate(local);
    const double global_dur = attrs_.time_unit * duration(local);
    if (global_dur <= 0.0) continue;  // skip degenerate segments

    Segment global = to_global_geometry(local, attrs_, origin_);
    const double t0 = clock_ + clock_comp_;
    // Kahan-compensated clock advance.
    const double x = global_dur;
    const double t = clock_ + x;
    if (std::abs(clock_) >= std::abs(x)) {
      clock_comp_ += (clock_ - t) + x;
    } else {
      clock_comp_ += (x - t) + clock_;
    }
    clock_ = t;
    return TimedSegment{std::move(global), t0, clock_ + clock_comp_};
  }
}

}  // namespace rv::traj
