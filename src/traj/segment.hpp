#pragma once

/// \file segment.hpp
/// Trajectory primitives.
///
/// Every algorithm in the paper (Algorithms 1–7) is a concatenation of
/// three primitive motions, all at the robot's unit speed in its own
/// frame: straight line moves, circular arc traversals, and waiting in
/// place.  A `Segment` is the sum type of those three primitives; the
/// *local duration* of a segment equals its arc length (unit speed), or
/// the explicit duration for waits.

#include <iosfwd>
#include <variant>

#include "geom/vec2.hpp"

namespace rv::traj {

/// Straight move from `from` to `to` at unit speed.
struct LineSeg {
  geom::Vec2 from;
  geom::Vec2 to;

  bool operator==(const LineSeg&) const = default;
};

/// Circular arc at unit speed.  The position at arc-length s is
/// `center + radius·(cos θ(s), sin θ(s))` with
/// θ(s) = start_angle + sweep·s/(radius·|sweep|); `sweep` is signed
/// (positive = counter-clockwise).
struct ArcSeg {
  geom::Vec2 center;
  double radius = 0.0;       ///< ≥ 0
  double start_angle = 0.0;  ///< radians
  double sweep = 0.0;        ///< signed total angle (radians)

  bool operator==(const ArcSeg&) const = default;
};

/// Remain at `at` for `duration` local time units.
struct WaitSeg {
  geom::Vec2 at;
  double duration = 0.0;  ///< ≥ 0

  bool operator==(const WaitSeg&) const = default;
};

/// A trajectory primitive.
using Segment = std::variant<LineSeg, ArcSeg, WaitSeg>;

/// Local duration: arc length for moves (unit speed), explicit time for
/// waits.
[[nodiscard]] double duration(const Segment& seg);

/// Position at the start of the segment.
[[nodiscard]] geom::Vec2 start_point(const Segment& seg);

/// Position at the end of the segment.
[[nodiscard]] geom::Vec2 end_point(const Segment& seg);

/// Position after s ∈ [0, duration] local time units into the segment.
/// Values outside the range are clamped.
[[nodiscard]] geom::Vec2 position_at(const Segment& seg, double s);

/// Instantaneous speed while traversing (1 for moves of positive
/// length, 0 for waits and degenerate moves).
[[nodiscard]] double traversal_speed(const Segment& seg);

/// Maximum distance from the origin reached anywhere on the segment.
[[nodiscard]] double max_radius(const Segment& seg);

/// Validates geometric sanity (finite coordinates, radius ≥ 0,
/// duration ≥ 0).  \throws std::invalid_argument on violation.
void validate(const Segment& seg);

/// True when the segment consumes zero time (e.g. zero-length line).
[[nodiscard]] bool is_degenerate(const Segment& seg);

std::ostream& operator<<(std::ostream& os, const Segment& seg);

}  // namespace rv::traj
