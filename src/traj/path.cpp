#include "traj/path.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geom/angle.hpp"

namespace rv::traj {

using geom::Vec2;

Path::Path(Vec2 start) : start_(start), end_(start) {}

Path& Path::append(Segment seg, double tol) {
  validate(seg);
  const Vec2 sp = traj::start_point(seg);
  if (!geom::approx_equal(sp, end_, tol)) {
    throw std::invalid_argument("Path::append: segment does not start at path end");
  }
  cumulative_.push_back(total_);
  // Kahan-compensated accumulation of the total duration.
  const double x = traj::duration(seg);
  const double t = total_ + x;
  if (std::abs(total_) >= std::abs(x)) {
    comp_ += (total_ - t) + x;
  } else {
    comp_ += (x - t) + total_;
  }
  total_ = t;
  end_ = traj::end_point(seg);
  segments_.push_back(std::move(seg));
  return *this;
}

Path& Path::line_to(const Vec2& target) {
  return append(LineSeg{end_, target});
}

Path& Path::arc_around(const Vec2& center, double sweep, double tol) {
  const Vec2 rel = end_ - center;
  const double radius = geom::norm(rel);
  if (radius <= tol) {
    throw std::invalid_argument("Path::arc_around: end point is at the centre");
  }
  const double a0 = geom::angle_of(rel);
  (void)tol;
  return append(ArcSeg{center, radius, a0, sweep});
}

Path& Path::wait(double dur) { return append(WaitSeg{end_, dur}); }

Path& Path::extend(const Path& other, double tol) {
  for (const Segment& seg : other.segments_) append(seg, tol);
  return *this;
}

Vec2 Path::position_at(double t) const {
  if (segments_.empty()) return start_;
  if (t <= 0.0) return start_;
  if (t >= total_) return end_;
  // Find the segment containing t: last i with cumulative_[i] <= t.
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), t);
  const std::size_t idx = static_cast<std::size_t>(
      std::distance(cumulative_.begin(), it)) - 1;
  return traj::position_at(segments_[idx], t - cumulative_[idx]);
}

double Path::segment_start_time(std::size_t i) const {
  if (i >= cumulative_.size()) {
    throw std::out_of_range("Path::segment_start_time: index out of range");
  }
  return cumulative_[i];
}

Box Path::bounding_box() const {
  Box box{start_, start_};
  auto include = [&box](const Vec2& p) {
    box.lo.x = std::min(box.lo.x, p.x);
    box.lo.y = std::min(box.lo.y, p.y);
    box.hi.x = std::max(box.hi.x, p.x);
    box.hi.y = std::max(box.hi.y, p.y);
  };
  for (const Segment& seg : segments_) {
    if (const auto* line = std::get_if<LineSeg>(&seg)) {
      include(line->from);
      include(line->to);
    } else if (const auto* arc = std::get_if<ArcSeg>(&seg)) {
      include(arc->center + Vec2{arc->radius, arc->radius});
      include(arc->center - Vec2{arc->radius, arc->radius});
    } else {
      include(std::get<WaitSeg>(seg).at);
    }
  }
  return box;
}

double Path::max_radius() const {
  double r = geom::norm(start_);
  for (const Segment& seg : segments_) {
    r = std::max(r, traj::max_radius(seg));
  }
  return r;
}

bool Path::is_continuous(double tol) const {
  Vec2 cur = start_;
  for (const Segment& seg : segments_) {
    if (!geom::approx_equal(traj::start_point(seg), cur, tol)) return false;
    cur = traj::end_point(seg);
  }
  return geom::approx_equal(cur, end_, tol);
}

}  // namespace rv::traj
