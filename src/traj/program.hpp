#pragma once

/// \file program.hpp
/// Lazy, conceptually infinite trajectory programs.
///
/// The paper's Algorithm 4 and Algorithm 7 never terminate on their
/// own — they run "until target found" / "until rendezvous occurs".
/// A `Program` is therefore a pull-based generator of position-
/// continuous segments: the simulator pulls exactly as much trajectory
/// as the detection horizon requires.
///
/// Conventions:
///  * every program starts at the local origin (0, 0);
///  * consecutive segments are position-continuous;
///  * all geometry is in the robot's own frame and units (the frame
///    map of `traj/frame.hpp` converts to global coordinates).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "traj/path.hpp"
#include "traj/segment.hpp"

namespace rv::traj {

/// A labelled instant on a program's local clock, e.g. "round 3 active
/// phase begins".  Used by tests/benches to check the schedule algebra
/// of Lemma 8 against the emitted trajectory.
struct Mark {
  double local_time = 0.0;
  std::string label;

  bool operator==(const Mark&) const = default;
};

/// Collects marks in emission order.
class MarkRecorder {
 public:
  /// Appends a mark.
  void record(double local_time, std::string label);
  /// All marks recorded so far.
  [[nodiscard]] const std::vector<Mark>& marks() const { return marks_; }
  /// First mark with the given label, or nullptr.
  [[nodiscard]] const Mark* find(const std::string& label) const;

 private:
  std::vector<Mark> marks_;
};

/// Pull-based infinite trajectory generator.
class Program {
 public:
  virtual ~Program() = default;

  /// Produces the next segment.  Must never run out: infinite programs
  /// keep generating; finite behaviours pad with waits.
  [[nodiscard]] virtual Segment next() = 0;

  /// Human-readable program name (for logs and benchmark tables).
  [[nodiscard]] virtual std::string name() const = 0;
};

/// A program that stays at the origin forever (the stationary target of
/// the search problem, emitted as long waits).
class StationaryProgram final : public Program {
 public:
  /// `chunk` is the wait duration per emitted segment.
  explicit StationaryProgram(double chunk = 1e12);
  [[nodiscard]] Segment next() override;
  [[nodiscard]] std::string name() const override { return "stationary"; }

 private:
  double chunk_;
};

/// Replays a finite path, then waits at its end point forever.
class PathProgram final : public Program {
 public:
  explicit PathProgram(Path path, std::string name = "path",
                       double tail_chunk = 1e12);
  [[nodiscard]] Segment next() override;
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  Path path_;
  std::string name_;
  std::size_t index_ = 0;
  double tail_chunk_;
};

/// Adapts a round-generating function into a Program.  The callback is
/// invoked with the round number (1, 2, 3, ...) and the current end
/// position, and returns the finite path for that round (which must
/// start at the given position).  This matches the structure of the
/// paper's algorithms: both Algorithm 4 and Algorithm 7 are unbounded
/// repetitions of finite, parameterised rounds.
class RoundProgram final : public Program {
 public:
  using RoundFn = std::function<Path(int round, geom::Vec2 start)>;

  RoundProgram(RoundFn fn, std::string name);
  [[nodiscard]] Segment next() override;
  [[nodiscard]] std::string name() const override { return name_; }

  /// Rounds fully generated so far.
  [[nodiscard]] int rounds_generated() const { return round_; }

 private:
  void refill();

  RoundFn fn_;
  std::string name_;
  int round_ = 0;
  geom::Vec2 cursor_{};
  std::vector<Segment> buffer_;
  std::size_t index_ = 0;
};

/// Evaluates any program as a function of local time by buffering the
/// emitted segments.  Intended for tests and visualisation — the
/// simulator streams segments instead of buffering.
class BufferedTrajectory {
 public:
  explicit BufferedTrajectory(std::shared_ptr<Program> program);

  /// Position at local time t ≥ 0 (generates on demand).
  [[nodiscard]] geom::Vec2 position_at(double t);

  /// Total duration buffered so far.
  [[nodiscard]] double buffered_duration() const { return total_; }

  /// Ensures at least `t` time units are buffered.
  void ensure(double t);

  /// Buffered segments with their start times.
  [[nodiscard]] const std::vector<Segment>& segments() const {
    return segments_;
  }
  [[nodiscard]] const std::vector<double>& start_times() const {
    return starts_;
  }

 private:
  std::shared_ptr<Program> program_;
  std::vector<Segment> segments_;
  std::vector<double> starts_;
  double total_ = 0.0;
};

}  // namespace rv::traj
