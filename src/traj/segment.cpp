#include "traj/segment.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace rv::traj {

namespace {
using geom::Vec2;

struct DurationVisitor {
  double operator()(const LineSeg& s) const {
    return geom::distance(s.from, s.to);
  }
  double operator()(const ArcSeg& s) const {
    return s.radius * std::abs(s.sweep);
  }
  double operator()(const WaitSeg& s) const { return s.duration; }
};

struct StartVisitor {
  Vec2 operator()(const LineSeg& s) const { return s.from; }
  Vec2 operator()(const ArcSeg& s) const {
    return s.center + geom::polar(s.radius, s.start_angle);
  }
  Vec2 operator()(const WaitSeg& s) const { return s.at; }
};

struct EndVisitor {
  Vec2 operator()(const LineSeg& s) const { return s.to; }
  Vec2 operator()(const ArcSeg& s) const {
    return s.center + geom::polar(s.radius, s.start_angle + s.sweep);
  }
  Vec2 operator()(const WaitSeg& s) const { return s.at; }
};
}  // namespace

double duration(const Segment& seg) {
  return std::visit(DurationVisitor{}, seg);
}

geom::Vec2 start_point(const Segment& seg) {
  return std::visit(StartVisitor{}, seg);
}

geom::Vec2 end_point(const Segment& seg) {
  return std::visit(EndVisitor{}, seg);
}

geom::Vec2 position_at(const Segment& seg, double s) {
  const double dur = duration(seg);
  const double t = std::clamp(s, 0.0, dur);
  if (const auto* line = std::get_if<LineSeg>(&seg)) {
    if (dur == 0.0) return line->from;
    return geom::lerp(line->from, line->to, t / dur);
  }
  if (const auto* arc = std::get_if<ArcSeg>(&seg)) {
    if (dur == 0.0) return start_point(seg);
    const double theta = arc->start_angle + arc->sweep * (t / dur);
    return arc->center + geom::polar(arc->radius, theta);
  }
  return std::get<WaitSeg>(seg).at;
}

double traversal_speed(const Segment& seg) {
  if (std::holds_alternative<WaitSeg>(seg)) return 0.0;
  return duration(seg) > 0.0 ? 1.0 : 0.0;
}

double max_radius(const Segment& seg) {
  if (const auto* line = std::get_if<LineSeg>(&seg)) {
    return std::max(geom::norm(line->from), geom::norm(line->to));
  }
  if (const auto* arc = std::get_if<ArcSeg>(&seg)) {
    // Conservative: centre distance plus radius.
    return geom::norm(arc->center) + arc->radius;
  }
  return geom::norm(std::get<WaitSeg>(seg).at);
}

void validate(const Segment& seg) {
  if (const auto* line = std::get_if<LineSeg>(&seg)) {
    if (!geom::is_finite(line->from) || !geom::is_finite(line->to)) {
      throw std::invalid_argument("LineSeg: non-finite endpoint");
    }
    return;
  }
  if (const auto* arc = std::get_if<ArcSeg>(&seg)) {
    if (!geom::is_finite(arc->center) || !std::isfinite(arc->radius) ||
        !std::isfinite(arc->start_angle) || !std::isfinite(arc->sweep)) {
      throw std::invalid_argument("ArcSeg: non-finite parameter");
    }
    if (arc->radius < 0.0) {
      throw std::invalid_argument("ArcSeg: negative radius");
    }
    return;
  }
  const auto& wait = std::get<WaitSeg>(seg);
  if (!geom::is_finite(wait.at) || !std::isfinite(wait.duration)) {
    throw std::invalid_argument("WaitSeg: non-finite parameter");
  }
  if (wait.duration < 0.0) {
    throw std::invalid_argument("WaitSeg: negative duration");
  }
}

bool is_degenerate(const Segment& seg) { return duration(seg) == 0.0; }

std::ostream& operator<<(std::ostream& os, const Segment& seg) {
  if (const auto* line = std::get_if<LineSeg>(&seg)) {
    return os << "Line" << line->from << "->" << line->to;
  }
  if (const auto* arc = std::get_if<ArcSeg>(&seg)) {
    return os << "Arc{c=" << arc->center << ", r=" << arc->radius
              << ", a0=" << arc->start_angle << ", sweep=" << arc->sweep
              << '}';
  }
  const auto& wait = std::get<WaitSeg>(seg);
  return os << "Wait{at=" << wait.at << ", dur=" << wait.duration << '}';
}

}  // namespace rv::traj
