#include "traj/sampler.hpp"

#include <cmath>
#include <stdexcept>

#include "mathx/constants.hpp"

namespace rv::traj {

using geom::Vec2;

std::vector<Sample> sample_uniform(
    const std::function<Vec2(double)>& position, double t0, double t1,
    int n) {
  if (n < 2) throw std::invalid_argument("sample_uniform: need n >= 2");
  if (!(t1 >= t0)) throw std::invalid_argument("sample_uniform: t1 < t0");
  std::vector<Sample> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double t = t0 + (t1 - t0) * static_cast<double>(i) /
                              static_cast<double>(n - 1);
    out.push_back(Sample{t, position(t)});
  }
  return out;
}

std::vector<Vec2> flatten_segment(const Segment& seg, double max_error) {
  if (!(max_error > 0.0)) {
    throw std::invalid_argument("flatten_segment: max_error must be > 0");
  }
  std::vector<Vec2> pts;
  if (const auto* arc = std::get_if<ArcSeg>(&seg)) {
    if (arc->radius <= 0.0 || arc->sweep == 0.0) {
      pts.push_back(start_point(seg));
      pts.push_back(end_point(seg));
      return pts;
    }
    // Chord error of a circular arc subdivided at step θ is
    // r·(1 − cos(θ/2)); solve for θ.
    const double cos_target = 1.0 - max_error / arc->radius;
    double step = rv::mathx::kPi / 2.0;
    if (cos_target > -1.0 && cos_target < 1.0) {
      step = 2.0 * std::acos(cos_target);
    }
    const int n = std::max(
        2, static_cast<int>(std::ceil(std::abs(arc->sweep) / step)) + 1);
    pts.reserve(static_cast<std::size_t>(n) + 1);
    for (int i = 0; i <= n; ++i) {
      const double theta =
          arc->start_angle +
          arc->sweep * static_cast<double>(i) / static_cast<double>(n);
      pts.push_back(arc->center + geom::polar(arc->radius, theta));
    }
    return pts;
  }
  pts.push_back(start_point(seg));
  pts.push_back(end_point(seg));
  return pts;
}

std::vector<Vec2> flatten_path(const Path& path, double max_error) {
  std::vector<Vec2> pts;
  pts.push_back(path.start());
  for (const Segment& seg : path.segments()) {
    const std::vector<Vec2> part = flatten_segment(seg, max_error);
    // Skip the first point of each part: it coincides with the last
    // point already emitted (paths are continuous).
    for (std::size_t i = 1; i < part.size(); ++i) pts.push_back(part[i]);
  }
  return pts;
}

}  // namespace rv::traj
