#pragma once

/// \file path.hpp
/// A `Path` is a finite, position-continuous sequence of segments with
/// precomputed cumulative start times (compensated summation).  Paths
/// are the building blocks the search/rendezvous programs emit round by
/// round; the simulator consumes them through the `Program` interface.

#include <cstddef>
#include <vector>

#include "traj/segment.hpp"

namespace rv::traj {

/// Axis-aligned bounding box.
struct Box {
  geom::Vec2 lo;
  geom::Vec2 hi;
};

/// Finite position-continuous trajectory starting at a given point.
class Path {
 public:
  /// An empty path anchored at `start` (defaults to the origin).
  explicit Path(geom::Vec2 start = {});

  /// Appends a straight move from the current end point to `target`.
  Path& line_to(const geom::Vec2& target);

  /// Appends a full circle (CCW for sweep > 0) around `center`; the
  /// current end point must lie on the circle (within `tol`).
  /// \throws std::invalid_argument otherwise.
  Path& arc_around(const geom::Vec2& center, double sweep, double tol = 1e-9);

  /// Appends a wait of `dur` time units at the current end point.
  Path& wait(double dur);

  /// Appends an arbitrary segment; it must start at the current end
  /// point (within `tol`).  \throws std::invalid_argument otherwise.
  Path& append(Segment seg, double tol = 1e-9);

  /// Appends all segments of another path (must start at our end).
  Path& extend(const Path& other, double tol = 1e-9);

  /// Total local duration.
  [[nodiscard]] double duration() const { return total_; }

  /// Number of segments.
  [[nodiscard]] std::size_t size() const { return segments_.size(); }
  [[nodiscard]] bool empty() const { return segments_.empty(); }

  /// Position at local time t ∈ [0, duration()]; clamped outside.
  [[nodiscard]] geom::Vec2 position_at(double t) const;

  /// First point of the path.
  [[nodiscard]] geom::Vec2 start() const { return start_; }
  /// Last point of the path.
  [[nodiscard]] geom::Vec2 end() const { return end_; }

  /// Segment list (in order).
  [[nodiscard]] const std::vector<Segment>& segments() const {
    return segments_;
  }

  /// Start time (cumulative duration before) of segment i.
  [[nodiscard]] double segment_start_time(std::size_t i) const;

  /// Smallest axis-aligned box containing the whole path (arcs bounded
  /// conservatively by their full circle).
  [[nodiscard]] Box bounding_box() const;

  /// Largest distance from the origin attained (conservative for arcs).
  [[nodiscard]] double max_radius() const;

  /// Checks every junction is continuous within tol.
  [[nodiscard]] bool is_continuous(double tol = 1e-9) const;

 private:
  geom::Vec2 start_;
  geom::Vec2 end_;
  std::vector<Segment> segments_;
  std::vector<double> cumulative_;  ///< start time of each segment
  double total_ = 0.0;
  double comp_ = 0.0;  ///< Kahan compensation for total_
};

}  // namespace rv::traj
