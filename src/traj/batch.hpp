#pragma once

/// \file batch.hpp
/// SoA batched position evaluation over a fleet's current segments.
///
/// The certified sweep (engine/contact_sweep.hpp) evaluates every
/// robot's position at every sweep/bisection point.  Doing that through
/// `TimedSegment::position` costs a `std::variant` dispatch, a
/// `duration()` recompute and several branches per robot per
/// evaluation.  `BatchedPositions` assembles the fleet's current
/// segments once per window into struct-of-arrays coefficient buffers
/// (a one-byte kind tag plus contiguous doubles) and then advances all
/// n positions for a query time in a single pass — a dense switch over
/// the tag array with no variant or virtual dispatch, the loop the
/// compiler can keep in registers and vectorize across the line-heavy
/// common case.
///
/// The evaluator is a *bitwise* drop-in: for every segment kind it
/// replays the exact floating-point operation sequence of
/// `TimedSegment::position` / `traj::position_at` (same divisions, same
/// clamps, same order), so positions — and therefore every downstream
/// metric, event time and golden byte — are identical to the scalar
/// path.  Pinned by tests/test_traj.cpp on randomized segment soups.

#include <cstdint>
#include <vector>

#include "geom/vec2.hpp"
#include "traj/frame.hpp"

namespace rv::traj {

/// Batched evaluator of one position per assembled segment.
class BatchedPositions {
 public:
  /// Rebuilds the SoA buffers from the fleet's current timed segments.
  /// Call whenever any robot's current segment changes (once per sweep
  /// window), not per evaluation.
  void assemble(const std::vector<TimedSegment>& segments);

  /// Writes position i of every assembled segment at global time t into
  /// `out[i]`.  `out` must hold at least `size()` elements.  Bitwise
  /// identical to calling `segments[i].position(t)` for each i.
  void positions(double t, geom::Vec2* out) const;

  /// Number of assembled segments.
  [[nodiscard]] std::size_t size() const { return kind_.size(); }

 private:
  // One-byte dispatch tag per robot.
  enum class Kind : std::uint8_t {
    kConstant,  ///< waits and degenerate segments: position is fixed
    kLine,      ///< p(t) = a + u(t)·b with b = to − from
    kArc,       ///< p(t) = a + radius·(cos θ(t), sin θ(t))
  };

  std::vector<Kind> kind_;
  std::vector<double> t0_;    ///< segment start time (kLine/kArc)
  std::vector<double> span_;  ///< t1 − t0 (kLine/kArc)
  std::vector<double> dur_;   ///< local duration (kLine/kArc)
  std::vector<double> ax_, ay_;  ///< kConstant: the point; kLine: from;
                                 ///< kArc: center
  std::vector<double> bx_, by_;  ///< kLine: to − from; kArc: start angle,
                                 ///< sweep
  std::vector<double> radius_;   ///< kArc only
};

}  // namespace rv::traj
