#include "traj/batch.hpp"

#include <algorithm>
#include <cmath>
#include <variant>

#include "traj/segment.hpp"

namespace rv::traj {

void BatchedPositions::assemble(const std::vector<TimedSegment>& segments) {
  const std::size_t n = segments.size();
  kind_.resize(n);
  t0_.resize(n);
  span_.resize(n);
  dur_.resize(n);
  ax_.resize(n);
  ay_.resize(n);
  bx_.resize(n);
  by_.resize(n);
  radius_.resize(n);

  for (std::size_t i = 0; i < n; ++i) {
    const TimedSegment& seg = segments[i];
    const double span = seg.t1 - seg.t0;
    const double dur = duration(seg.geometry);
    // TimedSegment::position collapses zero-span and zero-duration
    // segments to their start point before any interpolation.
    if (span <= 0.0 || dur == 0.0) {
      const geom::Vec2 p = start_point(seg.geometry);
      kind_[i] = Kind::kConstant;
      ax_[i] = p.x;
      ay_[i] = p.y;
      continue;
    }
    t0_[i] = seg.t0;
    span_[i] = span;
    dur_[i] = dur;
    if (const auto* line = std::get_if<LineSeg>(&seg.geometry)) {
      kind_[i] = Kind::kLine;
      ax_[i] = line->from.x;
      ay_[i] = line->from.y;
      bx_[i] = line->to.x - line->from.x;
      by_[i] = line->to.y - line->from.y;
    } else if (const auto* arc = std::get_if<ArcSeg>(&seg.geometry)) {
      kind_[i] = Kind::kArc;
      ax_[i] = arc->center.x;
      ay_[i] = arc->center.y;
      bx_[i] = arc->start_angle;
      by_[i] = arc->sweep;
      radius_[i] = arc->radius;
    } else {
      // A wait with positive duration: constant position.
      const geom::Vec2 p = std::get<WaitSeg>(seg.geometry).at;
      kind_[i] = Kind::kConstant;
      ax_[i] = p.x;
      ay_[i] = p.y;
    }
  }
}

void BatchedPositions::positions(double t, geom::Vec2* out) const {
  const std::size_t n = kind_.size();
  for (std::size_t i = 0; i < n; ++i) {
    switch (kind_[i]) {
      case Kind::kConstant:
        out[i] = {ax_[i], ay_[i]};
        break;
      case Kind::kLine: {
        // Exact replay of TimedSegment::position → position_at for a
        // line: progress fraction, clamp, local arc length, clamp,
        // normalized lerp parameter.
        double frac = (t - t0_[i]) / span_[i];
        frac = std::clamp(frac, 0.0, 1.0);
        const double s = std::clamp(frac * dur_[i], 0.0, dur_[i]);
        const double u = s / dur_[i];
        out[i] = {ax_[i] + u * bx_[i], ay_[i] + u * by_[i]};
        break;
      }
      case Kind::kArc: {
        double frac = (t - t0_[i]) / span_[i];
        frac = std::clamp(frac, 0.0, 1.0);
        const double s = std::clamp(frac * dur_[i], 0.0, dur_[i]);
        const double theta = bx_[i] + by_[i] * (s / dur_[i]);
        out[i] = {ax_[i] + radius_[i] * std::cos(theta),
                  ay_[i] + radius_[i] * std::sin(theta)};
        break;
      }
    }
  }
}

}  // namespace rv::traj
