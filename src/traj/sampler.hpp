#pragma once

/// \file sampler.hpp
/// Discretisation of trajectories into polylines for visualisation and
/// for sampling-based test oracles.

#include <functional>
#include <vector>

#include "traj/path.hpp"
#include "traj/segment.hpp"

namespace rv::traj {

/// A time-stamped sample of a trajectory.
struct Sample {
  double t = 0.0;
  geom::Vec2 position;
};

/// Uniformly samples a position function on [t0, t1] (inclusive of both
/// endpoints) with `n` ≥ 2 samples.
[[nodiscard]] std::vector<Sample> sample_uniform(
    const std::function<geom::Vec2(double)>& position, double t0, double t1,
    int n);

/// Flattens one segment into a polyline whose chordal deviation from
/// the true curve is at most `max_error` (arcs are subdivided; lines and
/// waits yield their endpoints).
[[nodiscard]] std::vector<geom::Vec2> flatten_segment(const Segment& seg,
                                                      double max_error);

/// Flattens a whole path into a single polyline (shared junction points
/// deduplicated).
[[nodiscard]] std::vector<geom::Vec2> flatten_path(const Path& path,
                                                   double max_error);

}  // namespace rv::traj
