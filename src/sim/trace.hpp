#pragma once

/// \file trace.hpp
/// Global-frame trajectory recording for visualisation: buffers the
/// timed segments of a robot up to a horizon and evaluates/flattens
/// them.  Kept separate from the contact sweep so simulation accuracy
/// never depends on a sampling grid.

#include <memory>
#include <vector>

#include "geom/attributes.hpp"
#include "traj/frame.hpp"
#include "traj/program.hpp"

namespace rv::sim {

/// A robot's global trajectory buffered up to some horizon.
class GlobalTrace {
 public:
  /// Buffers segments of `program` (with `attrs`, starting at `origin`)
  /// until global time `horizon`.
  GlobalTrace(std::shared_ptr<traj::Program> program,
              const geom::RobotAttributes& attrs, const geom::Vec2& origin,
              double horizon);

  /// Global position at time t ∈ [0, horizon] (clamped).
  [[nodiscard]] geom::Vec2 position_at(double t) const;

  /// The buffered horizon.
  [[nodiscard]] double horizon() const { return horizon_; }

  /// Buffered segments.
  [[nodiscard]] const std::vector<traj::TimedSegment>& segments() const {
    return segments_;
  }

  /// Flattens the whole trace into a polyline with the given chordal
  /// tolerance (world units); consecutive duplicate points removed.
  [[nodiscard]] std::vector<geom::Vec2> polyline(double max_error) const;

  /// Uniform time samples of the position, n ≥ 2.
  [[nodiscard]] std::vector<geom::Vec2> sample_positions(int n) const;

 private:
  std::vector<traj::TimedSegment> segments_;
  double horizon_;
};

}  // namespace rv::sim
