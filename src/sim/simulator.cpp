#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

namespace rv::sim {

using geom::Vec2;

namespace {
std::vector<RobotSpec> pair_of(RobotSpec a, RobotSpec b) {
  std::vector<RobotSpec> robots;
  robots.reserve(2);
  robots.push_back(std::move(a));
  robots.push_back(std::move(b));
  return robots;
}
}  // namespace

TwoRobotSimulator::TwoRobotSimulator(RobotSpec robot1, RobotSpec robot2,
                                     SimOptions options)
    : sweep_(pair_of(std::move(robot1), std::move(robot2)),
             engine::SweepMetric::kMinPairwise, options) {}

SimResult TwoRobotSimulator::run() {
  const engine::SweepResult swept = sweep_.run();
  SimResult res;
  res.met = swept.event;
  res.time = swept.time;
  res.distance = swept.metric;
  res.min_distance = swept.best_metric;
  res.min_distance_time = swept.best_metric_time;
  res.position1 = swept.positions[0];
  res.position2 = swept.positions[1];
  res.evals = swept.evals;
  res.segments = swept.segments;
  return res;
}

SimResult simulate_search(std::shared_ptr<traj::Program> program,
                          const Vec2& target, const SimOptions& options,
                          const geom::RobotAttributes& attrs) {
  RobotSpec searcher{std::move(program), attrs, {0.0, 0.0}};
  RobotSpec stationary{std::make_shared<traj::StationaryProgram>(),
                       geom::reference_attributes(), target};
  TwoRobotSimulator sim(std::move(searcher), std::move(stationary), options);
  return sim.run();
}

SimResult simulate_rendezvous(
    const std::function<std::shared_ptr<traj::Program>()>& program_factory,
    const geom::RobotAttributes& attrs2, const Vec2& initial_offset,
    const SimOptions& options) {
  if (!program_factory) {
    throw std::invalid_argument("simulate_rendezvous: null factory");
  }
  RobotSpec r1{program_factory(), geom::reference_attributes(), {0.0, 0.0}};
  RobotSpec r2{program_factory(), attrs2, initial_offset};
  if (!r1.program || !r2.program) {
    throw std::invalid_argument("simulate_rendezvous: factory returned null");
  }
  TwoRobotSimulator sim(std::move(r1), std::move(r2), options);
  return sim.run();
}

}  // namespace rv::sim
