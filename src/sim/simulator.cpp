#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace rv::sim {

using geom::Vec2;
using traj::TimedSegment;

namespace {
void validate_options(const SimOptions& o) {
  if (!(o.visibility > 0.0)) {
    throw std::invalid_argument("SimOptions: visibility must be > 0");
  }
  if (!(o.max_time > 0.0)) {
    throw std::invalid_argument("SimOptions: max_time must be > 0");
  }
  if (!(o.contact_tol >= 0.0) || !(o.time_tol > 0.0) || !(o.min_step > 0.0)) {
    throw std::invalid_argument("SimOptions: bad tolerances");
  }
}
}  // namespace

TwoRobotSimulator::TwoRobotSimulator(RobotSpec robot1, RobotSpec robot2,
                                     SimOptions options)
    : stream1_(std::move(robot1.program), robot1.attributes, robot1.origin),
      stream2_(std::move(robot2.program), robot2.attributes, robot2.origin),
      opts_(options) {
  validate_options(opts_);
}

SimResult TwoRobotSimulator::run() {
  SimResult res;
  res.min_distance = std::numeric_limits<double>::infinity();

  TimedSegment seg1 = stream1_.next();
  TimedSegment seg2 = stream2_.next();
  res.segments += 2;

  double t = 0.0;
  const double r = opts_.visibility;

  auto separation = [&](double at) {
    ++res.evals;
    return geom::distance(seg1.position(at), seg2.position(at));
  };

  auto note_min = [&res](double d, double at) {
    if (d < res.min_distance) {
      res.min_distance = d;
      res.min_distance_time = at;
    }
  };

  double prev_t = 0.0;   // last evaluated time with separation > r
  bool have_prev = false;

  while (t < opts_.max_time && res.evals < opts_.max_evals) {
    // Pull segments forward so both cover time t.
    while (seg1.t1 <= t) {
      seg1 = stream1_.next();
      ++res.segments;
    }
    while (seg2.t1 <= t) {
      seg2 = stream2_.next();
      ++res.segments;
    }
    const double window_end =
        std::min({seg1.t1, seg2.t1, opts_.max_time});

    const double d = separation(t);
    note_min(d, t);

    if (d <= r + opts_.contact_tol) {
      // Contact (or a graze within tolerance).  If we are strictly
      // inside the disk and have a previous outside point, bisect for
      // the first crossing.
      double contact_time = t;
      if (d < r && have_prev) {
        double lo = prev_t, hi = t;
        while (hi - lo > opts_.time_tol) {
          const double mid = 0.5 * (lo + hi);
          const double dm = separation(mid);
          if (dm <= r) {
            hi = mid;
          } else {
            lo = mid;
          }
        }
        contact_time = hi;
      }
      res.met = true;
      res.time = contact_time;
      res.position1 = seg1.position(contact_time);
      res.position2 = seg2.position(contact_time);
      res.distance = geom::distance(res.position1, res.position2);
      return res;
    }

    prev_t = t;
    have_prev = true;

    // Certified advance: the separation is Lipschitz with constant
    // L = v1 + v2 on this window, so it cannot reach r before
    // t + (d − r)/L.
    const double speed_sum = seg1.speed() + seg2.speed();
    double step;
    if (speed_sum <= 0.0) {
      // Both stationary: separation constant until the window ends.
      step = window_end - t;
      if (step <= 0.0) step = opts_.min_step;
    } else {
      step = (d - r) / speed_sum;
    }
    step = std::max(step, opts_.min_step);
    const double next_t = std::min(t + step, window_end);
    // Always make progress even at window boundaries.
    t = (next_t > t) ? next_t : t + opts_.min_step;
  }

  // Horizon or eval budget reached without contact.
  res.met = false;
  res.time = std::min(t, opts_.max_time);
  res.position1 = seg1.position(res.time);
  res.position2 = seg2.position(res.time);
  res.distance = geom::distance(res.position1, res.position2);
  return res;
}

SimResult simulate_search(std::shared_ptr<traj::Program> program,
                          const Vec2& target, const SimOptions& options,
                          const geom::RobotAttributes& attrs) {
  RobotSpec searcher{std::move(program), attrs, {0.0, 0.0}};
  RobotSpec stationary{std::make_shared<traj::StationaryProgram>(),
                       geom::reference_attributes(), target};
  TwoRobotSimulator sim(std::move(searcher), std::move(stationary), options);
  return sim.run();
}

SimResult simulate_rendezvous(
    const std::function<std::shared_ptr<traj::Program>()>& program_factory,
    const geom::RobotAttributes& attrs2, const Vec2& initial_offset,
    const SimOptions& options) {
  if (!program_factory) {
    throw std::invalid_argument("simulate_rendezvous: null factory");
  }
  RobotSpec r1{program_factory(), geom::reference_attributes(), {0.0, 0.0}};
  RobotSpec r2{program_factory(), attrs2, initial_offset};
  if (!r1.program || !r2.program) {
    throw std::invalid_argument("simulate_rendezvous: factory returned null");
  }
  TwoRobotSimulator sim(std::move(r1), std::move(r2), options);
  return sim.run();
}

}  // namespace rv::sim
