#pragma once

/// \file simulator.hpp
/// Continuous-time two-robot rendezvous simulation with certified
/// first-contact detection.
///
/// The rendezvous event of the paper is the first global time t with
/// |p₁(t) − p₂(t)| ≤ r.  The certified Lipschitz-step/bisection sweep
/// that finds it lives in `engine::ContactSweep` (see
/// engine/contact_sweep.hpp for the full argument); this module is the
/// two-robot adapter that presents the sweep through the historical
/// `SimResult` interface the rest of the repository consumes.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "engine/contact_sweep.hpp"
#include "geom/attributes.hpp"
#include "traj/frame.hpp"
#include "traj/program.hpp"

namespace rv::sim {

/// One robot: a local program, hidden attributes, and a global origin.
/// (Shared with every other simulator via the engine layer.)
using RobotSpec = engine::RobotSpec;

/// Simulation controls — the shared engine sweep options.
using SimOptions = engine::SweepOptions;

/// Outcome of a simulation run.
struct SimResult {
  bool met = false;            ///< true iff contact occurred before max_time
  double time = 0.0;           ///< first-contact time (valid when met)
  double distance = 0.0;       ///< separation at `time` (or at horizon)
  double min_distance = 0.0;   ///< smallest separation seen at eval points
  double min_distance_time = 0.0;  ///< when the minimum was seen
  geom::Vec2 position1;        ///< robot 1 position at `time`
  geom::Vec2 position2;        ///< robot 2 position at `time`
  std::uint64_t evals = 0;     ///< distance evaluations performed
  std::uint64_t segments = 0;  ///< timed segments consumed (both robots)
};

/// Sweeps two robots forward in global time and reports the first
/// contact at separation ≤ r.  Thin adapter over `engine::ContactSweep`
/// with the min-pairwise metric.
class TwoRobotSimulator {
 public:
  /// \throws std::invalid_argument on null programs or bad options.
  TwoRobotSimulator(RobotSpec robot1, RobotSpec robot2, SimOptions options);

  /// Runs until contact or the horizon; single use (the segment
  /// streams are consumed).
  [[nodiscard]] SimResult run();

 private:
  engine::ContactSweep sweep_;
};

/// Convenience wrapper for the *search* problem of Section 2: a single
/// robot (reference attributes by default) against a stationary target.
/// Returns the first time the target is within the robot's visibility
/// radius.
[[nodiscard]] SimResult simulate_search(
    std::shared_ptr<traj::Program> program, const geom::Vec2& target,
    const SimOptions& options,
    const geom::RobotAttributes& attrs = geom::reference_attributes());

/// Convenience wrapper for the symmetric-rendezvous setting: robot R at
/// the origin with reference attributes, robot R′ at `initial_offset`
/// with the given attributes, both running (their own copy of) the same
/// program.  The factory is invoked twice so each robot owns an
/// independent generator.
[[nodiscard]] SimResult simulate_rendezvous(
    const std::function<std::shared_ptr<traj::Program>()>& program_factory,
    const geom::RobotAttributes& attrs2, const geom::Vec2& initial_offset,
    const SimOptions& options);

}  // namespace rv::sim
