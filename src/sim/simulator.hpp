#pragma once

/// \file simulator.hpp
/// Continuous-time rendezvous simulation with certified first-contact
/// detection.
///
/// The rendezvous event of the paper is the first global time t with
/// |p₁(t) − p₂(t)| ≤ r.  Between trajectory breakpoints both robots
/// move along a single primitive each, so the separation function
/// f(t) = |p₁(t) − p₂(t)| is Lipschitz with constant L = v₁ + v₂ (the
/// sum of the two traversal speeds on the current primitives).  The
/// sweep therefore advances by Δt = (f(t) − r)/L — the largest step
/// that provably cannot skip a crossing — and refines by bisection once
/// f dips below r.  This gives *certified* first-contact times up to a
/// tolerance, without trusting any fixed sampling grid.
///
/// Tangential touches shallower than L·min_step can be passed over (a
/// Zeno guard forces progress); all experiments in this repository
/// involve transversal crossings, and `contact_tol` absorbs grazing
/// contacts to within 1e−9 world units.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "geom/attributes.hpp"
#include "traj/frame.hpp"
#include "traj/program.hpp"

namespace rv::sim {

/// One robot: a local program, hidden attributes, and a global origin.
struct RobotSpec {
  std::shared_ptr<traj::Program> program;
  geom::RobotAttributes attributes;
  geom::Vec2 origin;
};

/// Simulation controls.
struct SimOptions {
  double visibility = 1.0;      ///< r > 0: rendezvous at separation ≤ r
  double max_time = 1e9;        ///< give-up horizon (global time)
  double contact_tol = 1e-9;    ///< accept contact when f ≤ r + contact_tol
  double time_tol = 1e-9;       ///< bisection tolerance on the contact time
  double min_step = 1e-9;       ///< Zeno guard: forced progress per step
  std::uint64_t max_evals = 500'000'000;  ///< hard cap on distance evaluations
};

/// Outcome of a simulation run.
struct SimResult {
  bool met = false;            ///< true iff contact occurred before max_time
  double time = 0.0;           ///< first-contact time (valid when met)
  double distance = 0.0;       ///< separation at `time` (or at horizon)
  double min_distance = 0.0;   ///< smallest separation seen at eval points
  double min_distance_time = 0.0;  ///< when the minimum was seen
  geom::Vec2 position1;        ///< robot 1 position at `time`
  geom::Vec2 position2;        ///< robot 2 position at `time`
  std::uint64_t evals = 0;     ///< distance evaluations performed
  std::uint64_t segments = 0;  ///< timed segments consumed (both robots)
};

/// Sweeps two robots forward in global time and reports the first
/// contact at separation ≤ r.
class TwoRobotSimulator {
 public:
  /// \throws std::invalid_argument on null programs or bad options.
  TwoRobotSimulator(RobotSpec robot1, RobotSpec robot2, SimOptions options);

  /// Runs until contact or the horizon; single use (the segment
  /// streams are consumed).
  [[nodiscard]] SimResult run();

 private:
  traj::GlobalSegmentStream stream1_;
  traj::GlobalSegmentStream stream2_;
  SimOptions opts_;
};

/// Convenience wrapper for the *search* problem of Section 2: a single
/// robot (reference attributes by default) against a stationary target.
/// Returns the first time the target is within the robot's visibility
/// radius.
[[nodiscard]] SimResult simulate_search(
    std::shared_ptr<traj::Program> program, const geom::Vec2& target,
    const SimOptions& options,
    const geom::RobotAttributes& attrs = geom::reference_attributes());

/// Convenience wrapper for the symmetric-rendezvous setting: robot R at
/// the origin with reference attributes, robot R′ at `initial_offset`
/// with the given attributes, both running (their own copy of) the same
/// program.  The factory is invoked twice so each robot owns an
/// independent generator.
[[nodiscard]] SimResult simulate_rendezvous(
    const std::function<std::shared_ptr<traj::Program>()>& program_factory,
    const geom::RobotAttributes& attrs2, const geom::Vec2& initial_offset,
    const SimOptions& options);

}  // namespace rv::sim
