#include "sim/trace.hpp"

#include <algorithm>
#include <stdexcept>

#include "traj/sampler.hpp"

namespace rv::sim {

using geom::Vec2;
using traj::TimedSegment;

GlobalTrace::GlobalTrace(std::shared_ptr<traj::Program> program,
                         const geom::RobotAttributes& attrs,
                         const Vec2& origin, double horizon)
    : horizon_(horizon) {
  if (!(horizon > 0.0)) {
    throw std::invalid_argument("GlobalTrace: horizon must be > 0");
  }
  traj::GlobalSegmentStream stream(std::move(program), attrs, origin);
  while (stream.clock() < horizon_) {
    segments_.push_back(stream.next());
  }
}

Vec2 GlobalTrace::position_at(double t) const {
  if (segments_.empty()) return {};
  if (t <= segments_.front().t0) return segments_.front().position(t);
  if (t >= segments_.back().t1) return segments_.back().position(t);
  // Binary search for the segment with t0 <= t.
  const auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](double value, const TimedSegment& seg) { return value < seg.t0; });
  const auto idx = static_cast<std::size_t>(
      std::distance(segments_.begin(), it)) - 1;
  return segments_[idx].position(t);
}

std::vector<Vec2> GlobalTrace::polyline(double max_error) const {
  std::vector<Vec2> pts;
  for (const TimedSegment& seg : segments_) {
    const std::vector<Vec2> part = traj::flatten_segment(seg.geometry, max_error);
    for (const Vec2& p : part) {
      if (pts.empty() || !geom::approx_equal(pts.back(), p, 1e-12)) {
        pts.push_back(p);
      }
    }
  }
  return pts;
}

std::vector<Vec2> GlobalTrace::sample_positions(int n) const {
  if (n < 2) throw std::invalid_argument("GlobalTrace::sample_positions: n < 2");
  std::vector<Vec2> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double t =
        horizon_ * static_cast<double>(i) / static_cast<double>(n - 1);
    out.push_back(position_at(t));
  }
  return out;
}

}  // namespace rv::sim
