#pragma once

/// \file competitive.hpp
/// Competitive-ratio accounting.
///
/// The paper frames symmetric rendezvous against the asymmetric
/// optimum ("the corresponding asymmetric rendezvous problem may have
/// an optimal solution if one robot waits at its original location
/// while the other is searching for it", Section 1) and, for time
/// lower bounds, against the offline optimum in which both robots know
/// everything and walk straight at each other.  These helpers compute
/// those yardsticks so benches can report measured/OPT ratios.

#include "geom/attributes.hpp"

namespace rv::analysis {

/// Offline optimum with full knowledge: both robots walk straight
/// toward each other; the gap d − r closes at combined speed 1 + v.
/// Returns max(0, (d − r)/(1 + v)).
[[nodiscard]] double offline_optimal_time(double d, double r, double v);

/// Asymmetric-strategy optimum ("wait for mommy"): the slower robot
/// waits; the faster one must *search* for it since positions are
/// unknown — lower-bounded by the direct travel time (d − r)/max(1, v).
/// This is a lower bound on any wait-based asymmetric strategy.
[[nodiscard]] double asymmetric_wait_lower_bound(double d, double r, double v);

/// Competitive ratio of a measured rendezvous time against the offline
/// optimum.  \throws std::invalid_argument when the optimum is 0
/// (robots start within visibility).
[[nodiscard]] double competitive_ratio(double measured_time, double d,
                                       double r, double v);

}  // namespace rv::analysis
