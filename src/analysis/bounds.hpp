#pragma once

/// \file bounds.hpp
/// The paper's headline time bounds, as evaluatable functions:
/// Theorem 1 (search), Theorem 2 (symmetric-clock rendezvous) and the
/// Theorem 3 / Lemma 14 construction (asymmetric clocks).  The bench
/// harness prints measured times against these bounds; the test suite
/// asserts the measured values stay below them.

#include "geom/attributes.hpp"

namespace rv::analysis {

/// Theorem 1: search time < 6(π+1)·log₂(d²/r)·d²/r.
[[nodiscard]] double theorem1_search_bound(double d, double r);

/// Theorem 2, χ = +1: rendezvous time < 6(π+1)·log₂(d²/(µr))·d²/(µr)
/// with µ = √(v² − 2v·cosφ + 1).
/// \throws std::invalid_argument if µ = 0 (infeasible: v = 1, φ = 0).
[[nodiscard]] double theorem2_bound_common_chirality(double d, double r,
                                                     double v, double phi);

/// Theorem 2, χ = −1: rendezvous time
/// < 6(π+1)·log₂(d²/((1−v)r))·d²/((1−v)r).
/// \throws std::invalid_argument if v ≥ 1 (the bound degenerates; for
/// v = 1 rendezvous is infeasible, for v > 1 swap robot roles first).
[[nodiscard]] double theorem2_bound_opposite_chirality(double d, double r,
                                                       double v);

/// Theorem 2 dispatcher for validated attributes with τ = 1.
/// \throws std::invalid_argument for infeasible tuples or τ ≠ 1.
[[nodiscard]] double theorem2_bound(const geom::RobotAttributes& attrs,
                                    double d, double r);

/// The *unconditional* Theorem 2 guarantee: rendezvous happens no later
/// than the completion of the guaranteed find round of the equivalent
/// search instance, i.e. time_first_rounds(guaranteed_round(d', r'))
/// with (d', r') = (d/g, r/g) and gain g = µ (χ = +1) or 1 − v
/// (χ = −1, worst case over directions).  Unlike `theorem2_bound`, this
/// holds for *every* instance, including those where the closed-form
/// Theorem 1 bound is not applicable (see
/// `search::theorem1_bound_applicable`).
[[nodiscard]] double theorem2_guaranteed_time(
    const geom::RobotAttributes& attrs, double d, double r);

/// Theorem 3 / Lemma 14: an upper bound on the global rendezvous time
/// of Algorithm 7 for clock ratio τ (0 < τ < 1 after normalisation),
/// initial distance d and visibility r.  Computed as I(k*+1) where k*
/// is the Lemma 13 round bound and n the stationary-find round.
[[nodiscard]] double theorem3_bound(double tau, double d, double r);

/// The *exact* Lemma 12 round bound, via the Lambert W function.
///
/// For τ = t·2⁻ᵃ with t ∈ (2/3, 1), choosing k₀ = (a+1)·t/(1−t) makes
/// γ = k₀/(k₀+1+a) collapse to exactly t, and Lemma 12's W-equation
/// gives the round
///   k ≥ 2 + a·t/(1−t) + W(ln2·n·2ⁿ/(4(1−t)) · 2^{(−(a−2)t−2)/(1−t)})/ln2.
/// This is the sharp form of which `rendezvous_round_bound` (Lemma 13)
/// is the logarithmic weakening (the paper replaces W(x) by
/// ln x − ln ln x).
/// \throws std::invalid_argument unless τ's mantissa t ∈ (2/3, 1) and
/// n ≥ 1.
[[nodiscard]] int lemma12_exact_round_bound(double tau, int n);

/// Normalises an attribute tuple so the *reference* robot is the one
/// with the larger time unit: if τ > 1, rendezvous is analysed from
/// the other robot's viewpoint with τ′ = 1/τ (and speed v′ = 1/v,
/// orientation −χφ, same χ).  Attributes with τ = 1 are returned
/// unchanged.
[[nodiscard]] geom::RobotAttributes normalized_viewpoint(
    const geom::RobotAttributes& attrs);

}  // namespace rv::analysis
