#pragma once

/// \file reduction.hpp
/// The rendezvous → search reduction of Section 3 (Definition 1), made
/// executable.
///
/// For τ = 1 the separation of the two robots is
///     p₁(t) − p₂(t) = T∘·S(t) − d⃗,
/// so a rendezvous instance (d⃗, r, v, φ, χ) is *equivalent* to a search
/// instance in which the trajectory is S∘(t) = T∘·S(t).  For χ = +1
/// this is simply a µ-scaled copy of S (Lemma 6); for χ = −1 Lemma 7
/// reduces it to a per-direction inequality with gain |T∘ᵀ·d̂|.
/// The functions here compute the equivalent instances; tests use them
/// to verify the reduction against direct two-robot simulation.

#include "geom/attributes.hpp"
#include "geom/difference_map.hpp"
#include "geom/vec2.hpp"

namespace rv::analysis {

/// An equivalent single-robot search instance.
struct EquivalentSearch {
  double d = 0.0;  ///< effective target distance
  double r = 0.0;  ///< effective visibility radius
};

/// Lemma 6 (χ = +1): the equivalent instance is (d/µ, r/µ).
/// \throws std::invalid_argument when µ = 0.
[[nodiscard]] EquivalentSearch equivalent_search_common_chirality(
    double d, double r, double v, double phi);

/// Lemma 7 (χ = −1): per-direction reduction with gain g = |T∘ᵀ·d̂|,
/// giving (d/g, r/g).  \throws std::invalid_argument when g = 0 (the
/// offset direction is invariant — infeasible configuration).
[[nodiscard]] EquivalentSearch equivalent_search_opposite_chirality(
    double d_len, const geom::Vec2& d_hat, double r, double v, double phi);

/// The worst case of the χ = −1 reduction over all offset directions
/// and orientations at fixed v (Lemma 7's maximisation): gain 1 − v.
[[nodiscard]] EquivalentSearch equivalent_search_opposite_chirality_worst(
    double d, double r, double v);

/// Applies the separation identity directly: given the common local
/// trajectory position S(t) (reference frame), the attributes of R′
/// (τ must be 1) and the initial offset d⃗, returns p₁(t) − p₂(t)
/// = S(t) − (d⃗ + v·R(φ)·C(χ)·S(t)) = T∘·S(t) − d⃗.
[[nodiscard]] geom::Vec2 separation_vector(const geom::Vec2& s_t,
                                           const geom::RobotAttributes& attrs,
                                           const geom::Vec2& offset);

}  // namespace rv::analysis
