#pragma once

/// \file coverage.hpp
/// Swept-area coverage accounting.
///
/// The Ω(d²/r) search lower bound (Pelc [25], quoted in Section 2)
/// rests on an area argument: a robot with visibility r sweeps at most
/// 2r of new area per unit of travel, and the disk of radius d has area
/// πd² — so πd²/(2r) time is unavoidable.  This module *measures* the
/// sweep: it rasterises the r-neighbourhood of a trajectory onto a
/// grid and reports what fraction of a target disk has been covered
/// as a function of time.  The benches use it to show Algorithm 4
/// approaches the 2r·t area budget with small constant waste, while
/// mis-tuned variants (A3 spacing ablation) either re-cover or leave
/// gaps.

#include <cstdint>
#include <memory>
#include <vector>

#include "geom/attributes.hpp"
#include "geom/vec2.hpp"
#include "traj/program.hpp"

namespace rv::analysis {

/// A square occupancy grid over [−extent, extent]².
class CoverageGrid {
 public:
  /// `extent` is the half-width of the window; `cell` the cell size.
  /// \throws std::invalid_argument on non-positive sizes or absurd
  /// resolutions (> 4096² cells).
  CoverageGrid(double extent, double cell);

  /// Marks every cell whose centre lies within `radius` of `p`.
  void mark_disk(const geom::Vec2& p, double radius);

  /// Fraction of cells inside the disk of radius `disk_radius`
  /// (centred at the origin) that are marked.
  [[nodiscard]] double covered_fraction_of_disk(double disk_radius) const;

  /// Total marked area (cells × cell²).
  [[nodiscard]] double covered_area() const;

  /// Number of marked cells.
  [[nodiscard]] std::uint64_t marked_cells() const { return marked_; }

  /// Grid geometry.
  [[nodiscard]] double extent() const { return extent_; }
  [[nodiscard]] double cell() const { return cell_; }
  [[nodiscard]] int side() const { return side_; }

 private:
  double extent_;
  double cell_;
  int side_;
  std::vector<bool> cells_;
  std::uint64_t marked_ = 0;

  [[nodiscard]] int index_of(double coord) const;
};

/// One point of a coverage-vs-time series.
struct CoveragePoint {
  double time = 0.0;
  double fraction = 0.0;      ///< covered fraction of the target disk
  double covered_area = 0.0;  ///< absolute marked area
};

/// Options for the sweep measurement.
struct CoverageOptions {
  double visibility = 0.1;   ///< r: neighbourhood radius of the robot
  double horizon = 1e4;      ///< how long to run the program
  double disk_radius = 2.0;  ///< the target disk for fractions
  double cell = 0.02;        ///< grid resolution
  int checkpoints = 32;      ///< series points returned
};

/// Runs `program` (with `attrs`, from the origin) for `horizon` time,
/// marking the r-neighbourhood along the way, and returns the coverage
/// series.  Positions are sampled every cell/2 of travel so no cell
/// on the path can be skipped.
[[nodiscard]] std::vector<CoveragePoint> measure_coverage(
    std::shared_ptr<traj::Program> program,
    const geom::RobotAttributes& attrs, const CoverageOptions& options);

/// The area-budget lower bound on the time to cover a disk of radius R
/// at visibility r: πR²/(2r) (the [25] accounting, up to constants).
[[nodiscard]] double area_budget_time(double disk_radius, double r);

/// First checkpoint of the series with covered fraction ≥ `fraction`,
/// or nullptr when the series never reaches it.
[[nodiscard]] const CoveragePoint* first_at_fraction(
    const std::vector<CoveragePoint>& series, double fraction);

/// Time of that checkpoint, or −1.0 when the fraction is never reached
/// (the benches' ">horizon" sentinel).
[[nodiscard]] double time_to_fraction(
    const std::vector<CoveragePoint>& series, double fraction);

}  // namespace rv::analysis
