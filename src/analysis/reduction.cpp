#include "analysis/reduction.hpp"

#include <stdexcept>

namespace rv::analysis {

using geom::Mat2;
using geom::RobotAttributes;
using geom::Vec2;

EquivalentSearch equivalent_search_common_chirality(double d, double r,
                                                    double v, double phi) {
  const double m = geom::mu(v, phi);
  if (m <= 0.0) {
    throw std::invalid_argument(
        "equivalent_search_common_chirality: mu = 0 (infeasible)");
  }
  return {d / m, r / m};
}

EquivalentSearch equivalent_search_opposite_chirality(double d_len,
                                                      const Vec2& d_hat,
                                                      double r, double v,
                                                      double phi) {
  const Mat2 t_circ = geom::difference_matrix(v, phi, -1);
  const double gain = geom::direction_gain(t_circ, d_hat);
  if (gain <= 1e-15) {
    throw std::invalid_argument(
        "equivalent_search_opposite_chirality: zero gain (offset direction "
        "is invariant; configuration infeasible)");
  }
  return {d_len / gain, r / gain};
}

EquivalentSearch equivalent_search_opposite_chirality_worst(double d, double r,
                                                            double v) {
  const double gain = geom::worst_case_gain_opposite_chirality(v);
  return {d / gain, r / gain};
}

Vec2 separation_vector(const Vec2& s_t, const RobotAttributes& attrs,
                       const Vec2& offset) {
  if (attrs.time_unit != 1.0) {
    throw std::invalid_argument("separation_vector: requires tau = 1");
  }
  const Mat2 t_circ = geom::difference_matrix(attrs);
  return t_circ * s_t - offset;
}

}  // namespace rv::analysis
