#include "analysis/competitive.hpp"

#include <algorithm>
#include <stdexcept>

namespace rv::analysis {

namespace {
void check_dv(double d, double r, double v) {
  if (!(d > 0.0) || !(r > 0.0) || !(v > 0.0)) {
    throw std::invalid_argument("competitive: need d, r, v > 0");
  }
}
}  // namespace

double offline_optimal_time(double d, double r, double v) {
  check_dv(d, r, v);
  return std::max(0.0, (d - r) / (1.0 + v));
}

double asymmetric_wait_lower_bound(double d, double r, double v) {
  check_dv(d, r, v);
  return std::max(0.0, (d - r) / std::max(1.0, v));
}

double competitive_ratio(double measured_time, double d, double r, double v) {
  const double opt = offline_optimal_time(d, r, v);
  if (opt <= 0.0) {
    throw std::invalid_argument(
        "competitive_ratio: offline optimum is 0 (d <= r)");
  }
  return measured_time / opt;
}

}  // namespace rv::analysis
