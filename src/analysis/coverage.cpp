#include "analysis/coverage.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "mathx/constants.hpp"
#include "traj/frame.hpp"

namespace rv::analysis {

using geom::Vec2;

CoverageGrid::CoverageGrid(double extent, double cell)
    : extent_(extent), cell_(cell) {
  if (!(extent > 0.0) || !(cell > 0.0)) {
    throw std::invalid_argument("CoverageGrid: non-positive sizes");
  }
  const double cells = std::ceil(2.0 * extent / cell);
  if (cells > 4096.0) {
    throw std::invalid_argument("CoverageGrid: resolution too fine");
  }
  side_ = static_cast<int>(cells);
  cells_.assign(static_cast<std::size_t>(side_) * side_, false);
}

int CoverageGrid::index_of(double coord) const {
  return static_cast<int>(std::floor((coord + extent_) / cell_));
}

void CoverageGrid::mark_disk(const Vec2& p, double radius) {
  const int lo_x = std::max(0, index_of(p.x - radius));
  const int hi_x = std::min(side_ - 1, index_of(p.x + radius));
  const int lo_y = std::max(0, index_of(p.y - radius));
  const int hi_y = std::min(side_ - 1, index_of(p.y + radius));
  const double r2 = radius * radius;
  for (int iy = lo_y; iy <= hi_y; ++iy) {
    const double cy = -extent_ + (iy + 0.5) * cell_;
    const double dy2 = (cy - p.y) * (cy - p.y);
    if (dy2 > r2) continue;
    for (int ix = lo_x; ix <= hi_x; ++ix) {
      const double cx = -extent_ + (ix + 0.5) * cell_;
      if ((cx - p.x) * (cx - p.x) + dy2 > r2) continue;
      const std::size_t idx =
          static_cast<std::size_t>(iy) * side_ + static_cast<std::size_t>(ix);
      if (!cells_[idx]) {
        cells_[idx] = true;
        ++marked_;
      }
    }
  }
}

double CoverageGrid::covered_fraction_of_disk(double disk_radius) const {
  if (!(disk_radius > 0.0)) {
    throw std::invalid_argument("covered_fraction_of_disk: radius <= 0");
  }
  const double r2 = disk_radius * disk_radius;
  std::uint64_t inside = 0, covered = 0;
  for (int iy = 0; iy < side_; ++iy) {
    const double cy = -extent_ + (iy + 0.5) * cell_;
    for (int ix = 0; ix < side_; ++ix) {
      const double cx = -extent_ + (ix + 0.5) * cell_;
      if (cx * cx + cy * cy > r2) continue;
      ++inside;
      if (cells_[static_cast<std::size_t>(iy) * side_ +
                 static_cast<std::size_t>(ix)]) {
        ++covered;
      }
    }
  }
  if (inside == 0) return 0.0;
  return static_cast<double>(covered) / static_cast<double>(inside);
}

double CoverageGrid::covered_area() const {
  return static_cast<double>(marked_) * cell_ * cell_;
}

std::vector<CoveragePoint> measure_coverage(
    std::shared_ptr<traj::Program> program,
    const geom::RobotAttributes& attrs, const CoverageOptions& options) {
  if (!(options.horizon > 0.0) || !(options.visibility > 0.0) ||
      options.checkpoints < 1) {
    throw std::invalid_argument("measure_coverage: bad options");
  }
  // Window must include everything the robot can reach plus its
  // visibility halo, clipped to the disk of interest for economy.
  const double extent = options.disk_radius + options.visibility + 1e-9;
  CoverageGrid grid(extent, options.cell);

  traj::GlobalSegmentStream stream(std::move(program), attrs, {0.0, 0.0});
  std::vector<CoveragePoint> series;
  series.reserve(static_cast<std::size_t>(options.checkpoints));
  const double checkpoint_dt =
      options.horizon / static_cast<double>(options.checkpoints);
  double next_checkpoint = checkpoint_dt;

  double t = 0.0;
  traj::TimedSegment seg = stream.next();
  grid.mark_disk(seg.position(0.0), options.visibility);
  while (t < options.horizon) {
    while (seg.t1 <= t) seg = stream.next();
    // Step so the robot moves at most cell/2 between marks.
    const double speed = seg.speed();
    double dt;
    if (speed <= 0.0) {
      dt = seg.t1 - t;  // waiting: nothing new to mark until the segment ends
      if (dt <= 0.0) dt = options.cell;
    } else {
      dt = 0.5 * options.cell / speed;
    }
    t = std::min({t + dt, seg.t1, options.horizon});
    grid.mark_disk(seg.position(t), options.visibility);
    while (t >= next_checkpoint - 1e-12 &&
           series.size() <
               static_cast<std::size_t>(options.checkpoints)) {
      series.push_back(CoveragePoint{
          next_checkpoint,
          grid.covered_fraction_of_disk(options.disk_radius),
          grid.covered_area()});
      next_checkpoint += checkpoint_dt;
    }
    if (t >= options.horizon) break;
  }
  while (series.size() < static_cast<std::size_t>(options.checkpoints)) {
    series.push_back(CoveragePoint{
        options.horizon, grid.covered_fraction_of_disk(options.disk_radius),
        grid.covered_area()});
  }
  return series;
}

double area_budget_time(double disk_radius, double r) {
  if (!(disk_radius > 0.0) || !(r > 0.0)) {
    throw std::invalid_argument("area_budget_time: need positive sizes");
  }
  return rv::mathx::kPi * disk_radius * disk_radius / (2.0 * r);
}

const CoveragePoint* first_at_fraction(
    const std::vector<CoveragePoint>& series, double fraction) {
  for (const CoveragePoint& pt : series) {
    if (pt.fraction >= fraction) return &pt;
  }
  return nullptr;
}

double time_to_fraction(const std::vector<CoveragePoint>& series,
                        double fraction) {
  const CoveragePoint* pt = first_at_fraction(series, fraction);
  return pt ? pt->time : -1.0;
}

}  // namespace rv::analysis
