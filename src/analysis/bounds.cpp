#include "analysis/bounds.hpp"

#include <cmath>
#include <stdexcept>

#include "geom/angle.hpp"
#include "geom/difference_map.hpp"
#include "mathx/binary.hpp"
#include "mathx/lambert_w.hpp"
#include "rendezvous/feasibility.hpp"
#include "rendezvous/schedule.hpp"
#include "search/times.hpp"

namespace rv::analysis {

using geom::RobotAttributes;

double theorem1_search_bound(double d, double r) {
  return search::theorem1_bound(d, r);
}

double theorem2_bound_common_chirality(double d, double r, double v,
                                       double phi) {
  const double m = geom::mu(v, phi);
  if (m <= 0.0) {
    throw std::invalid_argument(
        "theorem2_bound_common_chirality: mu = 0 (infeasible tuple)");
  }
  return search::theorem1_bound(d / m, r / m);
}

double theorem2_bound_opposite_chirality(double d, double r, double v) {
  if (!(v > 0.0) || v >= 1.0) {
    throw std::invalid_argument(
        "theorem2_bound_opposite_chirality: need 0 < v < 1 (normalise the "
        "viewpoint so the slower robot is R')");
  }
  const double gain = 1.0 - v;
  return search::theorem1_bound(d / gain, r / gain);
}

double theorem2_bound(const RobotAttributes& attrs, double d, double r) {
  if (attrs.time_unit != 1.0) {
    throw std::invalid_argument("theorem2_bound: requires tau = 1");
  }
  if (!rendezvous::rendezvous_feasible(attrs)) {
    throw std::invalid_argument("theorem2_bound: infeasible attribute tuple");
  }
  if (attrs.chirality == 1) {
    return theorem2_bound_common_chirality(d, r, attrs.speed,
                                           attrs.orientation);
  }
  // χ = −1: the worst-case direction gain is |1 − v| — the smallest
  // singular value of T∘ is |det T∘|/‖T∘‖ ≥ |1 − v²|/(1 + v).  This
  // covers v > 1 as well (the paper normalises to v < 1).
  const double gain = std::abs(1.0 - attrs.speed);
  return search::theorem1_bound(d / gain, r / gain);
}

double theorem2_guaranteed_time(const RobotAttributes& attrs, double d,
                                double r) {
  if (attrs.time_unit != 1.0) {
    throw std::invalid_argument("theorem2_guaranteed_time: requires tau = 1");
  }
  if (!rendezvous::rendezvous_feasible(attrs)) {
    throw std::invalid_argument(
        "theorem2_guaranteed_time: infeasible attribute tuple");
  }
  double gain;
  if (attrs.chirality == 1) {
    gain = geom::mu(attrs.speed, attrs.orientation);
  } else {
    gain = std::abs(1.0 - attrs.speed);  // σ_min(T∘) lower bound
  }
  const int k = search::guaranteed_round(d / gain, r / gain);
  return search::time_first_rounds(k);
}

double theorem3_bound(double tau, double d, double r) {
  if (!(tau > 0.0) || tau == 1.0) {
    throw std::invalid_argument("theorem3_bound: need tau in (0,1) or (1,inf)");
  }
  if (tau > 1.0) tau = 1.0 / tau;  // analyse from the slower-clock robot
  const int n = search::guaranteed_round(d, r);
  return rendezvous::rendezvous_time_bound(tau, n);
}

int lemma12_exact_round_bound(double tau, int n) {
  if (!(tau > 0.0) || !(tau < 1.0)) {
    throw std::invalid_argument("lemma12_exact_round_bound: need tau in (0,1)");
  }
  if (n < 1) {
    throw std::invalid_argument("lemma12_exact_round_bound: need n >= 1");
  }
  const auto dec = rv::mathx::dyadic_decompose(tau);
  const double t = dec.t;
  if (!(t > 2.0 / 3.0)) {
    throw std::invalid_argument(
        "lemma12_exact_round_bound: Lemma 12 applies for t in (2/3, 1); use "
        "rendezvous_round_bound for t <= 2/3");
  }
  const double a = static_cast<double>(dec.a);
  const double one_minus = 1.0 - t;
  const double ln2 = std::log(2.0);
  // W argument: ln2·n/(4(1−γ)) · 2ⁿ · (2^{1/(1−γ)})^{−(a−2)γ−2}, γ = t.
  // Evaluate in log space — 2ⁿ·2^{(−(a−2)t−2)/(1−t)} can overflow.
  const double log_arg = std::log(ln2 * static_cast<double>(n) /
                                  (4.0 * one_minus)) +
                         ln2 * (static_cast<double>(n) +
                                (-(a - 2.0) * t - 2.0) / one_minus);
  double w;
  if (log_arg > 700.0) {
    // Beyond double range for the argument itself: use the asymptotic
    // W(e^y) ≈ y − ln y, accurate to O(ln y / y) here.
    w = log_arg - std::log(log_arg);
  } else {
    w = rv::mathx::lambert_w0(std::exp(log_arg));
  }
  const double k = 2.0 + a * t / one_minus + w / ln2;
  // The bound must also satisfy the lemma's precondition k >= k0.
  const double k0 = (a + 1.0) * t / one_minus;
  return static_cast<int>(std::ceil(std::max(k, k0) - 1e-9));
}

RobotAttributes normalized_viewpoint(const RobotAttributes& attrs) {
  RobotAttributes a = geom::validated(attrs);
  if (a.time_unit <= 1.0) return a;
  RobotAttributes flipped;
  flipped.speed = 1.0 / a.speed;
  flipped.time_unit = 1.0 / a.time_unit;
  flipped.chirality = a.chirality;
  flipped.orientation = geom::normalize_angle(
      -static_cast<double>(a.chirality) * a.orientation);
  return flipped;
}

}  // namespace rv::analysis
