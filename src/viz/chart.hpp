#pragma once

/// \file chart.hpp
/// Data charts in SVG: scatter/line plots with linear or log axes,
/// tick marks and legends.  Used by the bench binaries to emit the
/// measured-vs-bound figures next to their console tables (the ASCII
/// charts stay for `bench_output.txt`; these are the publication-style
/// artifacts).

#include <string>
#include <vector>

#include "viz/svg.hpp"

namespace rv::viz {

/// One plotted series.
struct ChartSeries {
  std::vector<double> x;
  std::vector<double> y;
  std::string color = "#1f77b4";
  std::string label;
  bool draw_line = true;     ///< connect points (sorted by x)
  bool draw_markers = true;  ///< draw point markers
};

/// Chart configuration.
struct ChartOptions {
  std::string title;
  std::string x_label;
  std::string y_label;
  bool log_x = false;
  bool log_y = false;
  double width_px = 860.0;
  double height_px = 520.0;
};

/// Renders the chart.  Points with non-positive coordinates on a log
/// axis are skipped.  \throws std::invalid_argument when no drawable
/// points remain.
[[nodiscard]] SvgCanvas render_chart(const std::vector<ChartSeries>& series,
                                     const ChartOptions& options = {});

}  // namespace rv::viz
