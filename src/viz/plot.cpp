#include "viz/plot.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mathx/binary.hpp"
#include "traj/sampler.hpp"

namespace rv::viz {

using geom::Vec2;

SvgCanvas plot_trajectories(const std::vector<TrajectorySeries>& series,
                            const PlotOptions& options) {
  Vec2 lo{0.0, 0.0};
  Vec2 hi{0.0, 0.0};
  bool first = true;
  for (const TrajectorySeries& s : series) {
    for (const Vec2& p : s.points) {
      if (first) {
        lo = hi = p;
        first = false;
      } else {
        lo.x = std::min(lo.x, p.x);
        lo.y = std::min(lo.y, p.y);
        hi.x = std::max(hi.x, p.x);
        hi.y = std::max(hi.y, p.y);
      }
    }
  }
  if (first) throw std::invalid_argument("plot_trajectories: no points");
  // Pad and guard against degenerate (collinear) windows.
  const double span = std::max({hi.x - lo.x, hi.y - lo.y, 1e-6});
  const double pad = span * options.margin_frac + 1e-9;
  lo -= Vec2{pad, pad};
  hi += Vec2{pad, pad};
  // Keep the window square so circles look like circles.
  const double cx = 0.5 * (lo.x + hi.x);
  const double cy = 0.5 * (lo.y + hi.y);
  const double half = 0.5 * std::max(hi.x - lo.x, hi.y - lo.y);
  lo = {cx - half, cy - half};
  hi = {cx + half, cy + half};

  SvgCanvas canvas(lo, hi, options.width_px);
  double label_y = hi.y - 0.04 * (hi.y - lo.y);
  for (const TrajectorySeries& s : series) {
    Style st;
    st.stroke = s.color;
    st.stroke_width = 1.2;
    canvas.polyline(s.points, st);
    if (!s.label.empty()) {
      canvas.text({lo.x + 0.02 * (hi.x - lo.x), label_y}, s.label, 13.0,
                  s.color);
      label_y -= 0.04 * (hi.y - lo.y);
    }
  }
  if (options.draw_origin_marker) canvas.marker({0.0, 0.0}, "#000000");
  return canvas;
}

TrajectorySeries series_from_path(const traj::Path& path,
                                  const std::string& color,
                                  const std::string& label,
                                  double flatten_error) {
  TrajectorySeries s;
  s.points = traj::flatten_path(path, flatten_error);
  s.color = color;
  s.label = label;
  return s;
}

void draw_search_annuli(SvgCanvas& canvas, int k, const std::string& color) {
  if (k < 1) throw std::invalid_argument("draw_search_annuli: k < 1");
  Style st;
  st.stroke = color;
  st.stroke_width = 0.8;
  for (int j = 0; j <= 2 * k - 1; ++j) {
    const double inner = rv::mathx::pow2(-k + j);
    const double outer = rv::mathx::pow2(-k + j + 1);
    canvas.circle({0.0, 0.0}, inner, st);
    canvas.circle({0.0, 0.0}, outer, st);
  }
}

}  // namespace rv::viz
