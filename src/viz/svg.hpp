#pragma once

/// \file svg.hpp
/// A minimal SVG 1.1 document builder — enough to render trajectories,
/// annuli and schedule charts without external dependencies.  Geometry
/// is given in *world* coordinates; the document applies a single
/// world-to-viewport transform (y flipped, as SVG's y axis points
/// down).

#include <string>
#include <vector>

#include "geom/vec2.hpp"

namespace rv::viz {

/// Style attributes shared by all primitives.
struct Style {
  std::string stroke = "#000000";
  double stroke_width = 1.0;   ///< in viewport pixels (not world units)
  std::string fill = "none";
  double opacity = 1.0;
  std::string dash;            ///< e.g. "4 2"; empty = solid
};

/// Builds one SVG document mapping a world-coordinate window onto a
/// pixel viewport.
class SvgCanvas {
 public:
  /// `world_lo`/`world_hi` define the visible world rectangle; the
  /// viewport is `width_px` wide with height derived from the aspect
  /// ratio.
  SvgCanvas(geom::Vec2 world_lo, geom::Vec2 world_hi, double width_px = 800.0);

  /// Polyline through world points.
  void polyline(const std::vector<geom::Vec2>& pts, const Style& style);
  /// Line segment.
  void line(const geom::Vec2& a, const geom::Vec2& b, const Style& style);
  /// Circle of world radius r.
  void circle(const geom::Vec2& center, double r, const Style& style);
  /// Filled annulus (even-odd fill of two circles).
  void annulus(const geom::Vec2& center, double r_inner, double r_outer,
               const Style& style);
  /// Small position marker (viewport-size cross).
  void marker(const geom::Vec2& at, const std::string& color,
              double size_px = 5.0);
  /// Text label anchored at a world position.
  void text(const geom::Vec2& at, const std::string& content,
            double font_px = 12.0, const std::string& color = "#000000");
  /// Axis-aligned rectangle in world coordinates.
  void rect(const geom::Vec2& lo, const geom::Vec2& hi, const Style& style);

  /// Serialises the document.
  [[nodiscard]] std::string to_string() const;

  /// Writes the document to a file.  \throws std::runtime_error on I/O
  /// failure.
  void save(const std::string& filename) const;

  /// World-to-viewport transform (public for testing).
  [[nodiscard]] geom::Vec2 to_px(const geom::Vec2& world) const;

  /// Viewport size in pixels.
  [[nodiscard]] double width_px() const { return width_px_; }
  [[nodiscard]] double height_px() const { return height_px_; }

 private:
  geom::Vec2 lo_, hi_;
  double width_px_, height_px_, scale_;
  std::vector<std::string> elements_;
};

}  // namespace rv::viz
