#pragma once

/// \file ascii.hpp
/// Console-friendly charts: horizontal bar charts and scatter plots on
/// a character grid.  Used by bench binaries so results are readable in
/// the terminal without opening the SVG artifacts.

#include <string>
#include <vector>

namespace rv::viz {

/// One labelled bar.
struct AsciiBar {
  std::string label;
  double value = 0.0;
};

/// Renders a horizontal bar chart; values must be ≥ 0.  `width` is the
/// maximum bar length in characters.
[[nodiscard]] std::string ascii_bar_chart(const std::vector<AsciiBar>& bars,
                                          int width = 60);

/// Renders an (x, y) scatter on a rows×cols grid with log-log option.
/// Multiple series are drawn with distinct glyphs ('*', '+', 'o', ...).
struct AsciiSeries {
  std::vector<double> x;
  std::vector<double> y;
  char glyph = '*';
  std::string label;
};

[[nodiscard]] std::string ascii_scatter(const std::vector<AsciiSeries>& series,
                                        int rows = 20, int cols = 72,
                                        bool log_x = false, bool log_y = false);

}  // namespace rv::viz
