#include "viz/svg.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rv::viz {

using geom::Vec2;

namespace {
std::string xml_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string style_attrs(const Style& st) {
  std::ostringstream os;
  os << "stroke=\"" << st.stroke << "\" stroke-width=\"" << st.stroke_width
     << "\" fill=\"" << st.fill << "\" opacity=\"" << st.opacity << "\"";
  if (!st.dash.empty()) os << " stroke-dasharray=\"" << st.dash << "\"";
  return os.str();
}
}  // namespace

SvgCanvas::SvgCanvas(Vec2 world_lo, Vec2 world_hi, double width_px)
    : lo_(world_lo), hi_(world_hi), width_px_(width_px) {
  const double w = hi_.x - lo_.x;
  const double h = hi_.y - lo_.y;
  if (!(w > 0.0) || !(h > 0.0) || !(width_px > 0.0)) {
    throw std::invalid_argument("SvgCanvas: degenerate world window");
  }
  scale_ = width_px_ / w;
  height_px_ = h * scale_;
}

Vec2 SvgCanvas::to_px(const Vec2& world) const {
  return {(world.x - lo_.x) * scale_, (hi_.y - world.y) * scale_};
}

void SvgCanvas::polyline(const std::vector<Vec2>& pts, const Style& style) {
  if (pts.size() < 2) return;
  std::ostringstream os;
  os << "<polyline points=\"";
  for (const Vec2& p : pts) {
    const Vec2 q = to_px(p);
    os << q.x << ',' << q.y << ' ';
  }
  os << "\" " << style_attrs(style) << "/>";
  elements_.push_back(os.str());
}

void SvgCanvas::line(const Vec2& a, const Vec2& b, const Style& style) {
  const Vec2 pa = to_px(a);
  const Vec2 pb = to_px(b);
  std::ostringstream os;
  os << "<line x1=\"" << pa.x << "\" y1=\"" << pa.y << "\" x2=\"" << pb.x
     << "\" y2=\"" << pb.y << "\" " << style_attrs(style) << "/>";
  elements_.push_back(os.str());
}

void SvgCanvas::circle(const Vec2& center, double r, const Style& style) {
  const Vec2 c = to_px(center);
  std::ostringstream os;
  os << "<circle cx=\"" << c.x << "\" cy=\"" << c.y << "\" r=\"" << r * scale_
     << "\" " << style_attrs(style) << "/>";
  elements_.push_back(os.str());
}

void SvgCanvas::annulus(const Vec2& center, double r_inner, double r_outer,
                        const Style& style) {
  const Vec2 c = to_px(center);
  std::ostringstream os;
  os << "<path fill-rule=\"evenodd\" d=\""
     << "M " << c.x + r_outer * scale_ << ' ' << c.y << ' '
     << "A " << r_outer * scale_ << ' ' << r_outer * scale_
     << " 0 1 0 " << c.x - r_outer * scale_ << ' ' << c.y << ' '
     << "A " << r_outer * scale_ << ' ' << r_outer * scale_
     << " 0 1 0 " << c.x + r_outer * scale_ << ' ' << c.y << ' '
     << "M " << c.x + r_inner * scale_ << ' ' << c.y << ' '
     << "A " << r_inner * scale_ << ' ' << r_inner * scale_
     << " 0 1 0 " << c.x - r_inner * scale_ << ' ' << c.y << ' '
     << "A " << r_inner * scale_ << ' ' << r_inner * scale_
     << " 0 1 0 " << c.x + r_inner * scale_ << ' ' << c.y << ' '
     << "Z\" stroke=\"" << style.stroke << "\" fill=\"" << style.fill
     << "\" opacity=\"" << style.opacity << "\"/>";
  elements_.push_back(os.str());
}

void SvgCanvas::marker(const Vec2& at, const std::string& color,
                       double size_px) {
  const Vec2 p = to_px(at);
  std::ostringstream os;
  os << "<g stroke=\"" << color << "\" stroke-width=\"1.5\">"
     << "<line x1=\"" << p.x - size_px << "\" y1=\"" << p.y << "\" x2=\""
     << p.x + size_px << "\" y2=\"" << p.y << "\"/>"
     << "<line x1=\"" << p.x << "\" y1=\"" << p.y - size_px << "\" x2=\""
     << p.x << "\" y2=\"" << p.y + size_px << "\"/></g>";
  elements_.push_back(os.str());
}

void SvgCanvas::text(const Vec2& at, const std::string& content,
                     double font_px, const std::string& color) {
  const Vec2 p = to_px(at);
  std::ostringstream os;
  os << "<text x=\"" << p.x << "\" y=\"" << p.y << "\" font-size=\"" << font_px
     << "\" fill=\"" << color << "\" font-family=\"monospace\">"
     << xml_escape(content) << "</text>";
  elements_.push_back(os.str());
}

void SvgCanvas::rect(const Vec2& lo, const Vec2& hi, const Style& style) {
  const Vec2 p = to_px({lo.x, hi.y});  // top-left in pixel space
  const Vec2 q = to_px({hi.x, lo.y});  // bottom-right
  std::ostringstream os;
  os << "<rect x=\"" << p.x << "\" y=\"" << p.y << "\" width=\"" << q.x - p.x
     << "\" height=\"" << q.y - p.y << "\" " << style_attrs(style) << "/>";
  elements_.push_back(os.str());
}

std::string SvgCanvas::to_string() const {
  std::ostringstream os;
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
     << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_px_
     << "\" height=\"" << height_px_ << "\" viewBox=\"0 0 " << width_px_ << ' '
     << height_px_ << "\">\n";
  os << "<rect x=\"0\" y=\"0\" width=\"" << width_px_ << "\" height=\""
     << height_px_ << "\" fill=\"#ffffff\"/>\n";
  for (const std::string& el : elements_) os << el << '\n';
  os << "</svg>\n";
  return os.str();
}

void SvgCanvas::save(const std::string& filename) const {
  std::ofstream out(filename);
  if (!out) throw std::runtime_error("SvgCanvas::save: cannot open " + filename);
  out << to_string();
  if (!out) throw std::runtime_error("SvgCanvas::save: write failed");
}

}  // namespace rv::viz
