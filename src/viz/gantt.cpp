#include "viz/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rv::viz {

using geom::Vec2;

namespace {
/// Maps a time to the horizontal axis coordinate; optionally log scale.
struct TimeAxis {
  double lo, hi;
  bool log;
  double map(double t) const {
    if (log) {
      const double l0 = std::log10(std::max(lo, 1e-9));
      const double l1 = std::log10(std::max(hi, lo * 10.0));
      const double lt = std::log10(std::max(t, 1e-9));
      return (lt - l0) / (l1 - l0);
    }
    return (t - lo) / (hi - lo);
  }
};
}  // namespace

SvgCanvas render_gantt(const std::vector<GanttRow>& rows,
                       const std::vector<HighlightWindow>& highlights,
                       const GanttOptions& options) {
  if (rows.empty()) throw std::invalid_argument("render_gantt: no rows");

  double tmin = options.time_min;
  double tmax = options.time_max;
  if (tmax <= tmin) {
    tmin = 1e300;
    tmax = -1e300;
    for (const GanttRow& row : rows) {
      for (const PhaseInterval& ph : row.phases) {
        if (ph.end < ph.start) {
          throw std::invalid_argument("render_gantt: interval end < start");
        }
        tmin = std::min(tmin, ph.start);
        tmax = std::max(tmax, ph.end);
      }
    }
    if (tmax <= tmin) throw std::invalid_argument("render_gantt: empty span");
  }
  if (options.log_time && tmin <= 0.0) tmin = std::max(tmin, 1e-3);

  const double n_rows = static_cast<double>(rows.size());
  const double height_world = n_rows + 1.0;  // one unit per row + axis strip
  SvgCanvas canvas({0.0, 0.0}, {1.0, height_world / 10.0},
                   options.width_px);
  // We do the layout in normalised [0,1] × rows space manually: the
  // canvas world is [0,1] wide; vertical extent chosen for aspect.
  const double world_h = height_world / 10.0;
  const double row_h = world_h / (n_rows + 1.0);

  const TimeAxis axis{tmin, tmax, options.log_time};

  // Highlights first (behind the bars), full column height.
  for (const HighlightWindow& w : highlights) {
    const double x0 = std::clamp(axis.map(std::max(w.start, tmin)), 0.0, 1.0);
    const double x1 = std::clamp(axis.map(std::min(w.end, tmax)), 0.0, 1.0);
    if (x1 <= x0) continue;
    Style st;
    st.stroke = "none";
    st.fill = w.color;
    st.opacity = 0.25;
    canvas.rect({x0, 0.0}, {x1, world_h}, st);
    if (!w.label.empty()) {
      canvas.text({x0, world_h - 0.2 * row_h}, w.label, 10.0, w.color);
    }
  }

  // Rows: bars per phase.
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double y_lo = world_h - row_h * (static_cast<double>(i) + 1.6);
    const double y_hi = y_lo + 0.7 * row_h;
    canvas.text({0.005, y_hi + 0.05 * row_h}, rows[i].label, 12.0, "#000000");
    for (const PhaseInterval& ph : rows[i].phases) {
      const double s = std::max(ph.start, tmin);
      const double e = std::min(ph.end, tmax);
      if (e <= s) continue;
      const double x0 = std::clamp(axis.map(s), 0.0, 1.0);
      const double x1 = std::clamp(axis.map(e), 0.0, 1.0);
      Style st;
      st.stroke = "#333333";
      st.stroke_width = 0.5;
      st.fill = ph.kind == PhaseKind::kActive ? "#1f77b4" : "#c7c7c7";
      st.opacity = 0.9;
      canvas.rect({x0, y_lo}, {x1, y_hi}, st);
    }
  }

  // Simple decade tick marks on the axis strip.
  const int lo_decade = static_cast<int>(std::floor(std::log10(std::max(tmin, 1e-9))));
  const int hi_decade = static_cast<int>(std::ceil(std::log10(std::max(tmax, 1e-9))));
  if (options.log_time) {
    for (int d = lo_decade; d <= hi_decade; ++d) {
      const double t = std::pow(10.0, d);
      if (t < tmin || t > tmax) continue;
      const double x = axis.map(t);
      Style st;
      st.stroke = "#888888";
      st.stroke_width = 0.6;
      st.dash = "2 2";
      canvas.line({x, 0.0}, {x, world_h}, st);
      canvas.text({x, 0.015}, "1e" + std::to_string(d), 9.0, "#555555");
    }
  }
  return canvas;
}

}  // namespace rv::viz
