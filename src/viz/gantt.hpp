#pragma once

/// \file gantt.hpp
/// Phase-schedule (Gantt) charts regenerating the content of the
/// paper's Figures 1–3: per-robot inactive/active phases of Algorithm 7
/// on a common global timeline, with overlap windows highlighted.

#include <string>
#include <vector>

#include "viz/svg.hpp"

namespace rv::viz {

/// Kind of schedule phase.
enum class PhaseKind { kInactive, kActive };

/// One phase interval on a robot's global timeline.
struct PhaseInterval {
  double start = 0.0;
  double end = 0.0;
  PhaseKind kind = PhaseKind::kInactive;
  int round = 0;  ///< Algorithm 7 round number n
};

/// One row (robot) of the chart.
struct GanttRow {
  std::string label;
  std::vector<PhaseInterval> phases;
};

/// Extra shaded windows (e.g. the overlap intervals of Lemmas 9/10).
struct HighlightWindow {
  double start = 0.0;
  double end = 0.0;
  std::string color = "#d62728";
  std::string label;
};

/// Options for chart rendering.
struct GanttOptions {
  double width_px = 1000.0;
  double row_height_px = 42.0;
  bool log_time = true;  ///< log-scale time axis (schedule grows as 2ⁿ)
  double time_min = 0.0; ///< clip window (0 = auto)
  double time_max = 0.0; ///< clip window (0 = auto)
};

/// Renders the chart.  Throws std::invalid_argument when rows are empty
/// or intervals are malformed.
[[nodiscard]] SvgCanvas render_gantt(const std::vector<GanttRow>& rows,
                                     const std::vector<HighlightWindow>& highlights,
                                     const GanttOptions& options = {});

}  // namespace rv::viz
