#include "viz/chart.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace rv::viz {

using geom::Vec2;

namespace {

struct Axis {
  double lo = 0.0, hi = 1.0;
  bool log = false;

  double map01(double v) const {
    if (log) {
      return (std::log10(v) - std::log10(lo)) /
             (std::log10(hi) - std::log10(lo));
    }
    return (v - lo) / (hi - lo);
  }

  /// Tick positions: decades for log axes, ~6 round steps otherwise.
  std::vector<double> ticks() const {
    std::vector<double> out;
    if (log) {
      const int d0 = static_cast<int>(std::ceil(std::log10(lo) - 1e-12));
      const int d1 = static_cast<int>(std::floor(std::log10(hi) + 1e-12));
      for (int d = d0; d <= d1; ++d) out.push_back(std::pow(10.0, d));
      if (out.empty()) out = {lo, hi};
      return out;
    }
    const double span = hi - lo;
    const double raw = span / 6.0;
    const double mag = std::pow(10.0, std::floor(std::log10(raw)));
    double step = mag;
    if (raw / mag > 5.0) {
      step = 5.0 * mag;
    } else if (raw / mag > 2.0) {
      step = 2.0 * mag;
    }
    for (double v = std::ceil(lo / step) * step; v <= hi + 1e-12; v += step) {
      out.push_back(v);
    }
    return out;
  }
};

std::string tick_label(double v) {
  std::ostringstream os;
  if (v != 0.0 && (std::abs(v) >= 1e5 || std::abs(v) < 1e-3)) {
    os.precision(0);
    os << std::scientific << v;
  } else {
    os.precision(6);
    os << v;
  }
  return os.str();
}

bool drawable(double x, double y, const ChartOptions& o) {
  if (!std::isfinite(x) || !std::isfinite(y)) return false;
  if (o.log_x && x <= 0.0) return false;
  if (o.log_y && y <= 0.0) return false;
  return true;
}

}  // namespace

SvgCanvas render_chart(const std::vector<ChartSeries>& series,
                       const ChartOptions& options) {
  // Collect the drawable range.
  double xmin = 1e300, xmax = -1e300, ymin = 1e300, ymax = -1e300;
  bool any = false;
  for (const ChartSeries& s : series) {
    if (s.x.size() != s.y.size()) {
      throw std::invalid_argument("render_chart: x/y size mismatch");
    }
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (!drawable(s.x[i], s.y[i], options)) continue;
      xmin = std::min(xmin, s.x[i]);
      xmax = std::max(xmax, s.x[i]);
      ymin = std::min(ymin, s.y[i]);
      ymax = std::max(ymax, s.y[i]);
      any = true;
    }
  }
  if (!any) throw std::invalid_argument("render_chart: no drawable points");
  if (xmax <= xmin) xmax = xmin + (options.log_x ? xmin : 1.0);
  if (ymax <= ymin) ymax = ymin + (options.log_y ? ymin : 1.0);
  // Pad the y range a little (multiplicatively on log axes).
  if (options.log_y) {
    ymin /= 1.3;
    ymax *= 1.3;
  } else {
    const double pad = 0.06 * (ymax - ymin);
    ymin -= pad;
    ymax += pad;
  }

  const Axis ax{xmin, xmax, options.log_x};
  const Axis ay{ymin, ymax, options.log_y};

  // Layout: margins for labels, plot area in normalised [0,1]².
  const double kLeft = 0.11, kRight = 0.03, kTop = 0.08, kBottom = 0.10;
  SvgCanvas canvas({0.0, 0.0},
                   {1.0, options.height_px / options.width_px},
                   options.width_px);
  const double h = options.height_px / options.width_px;
  auto to_world = [&](double fx, double fy) {
    return Vec2{kLeft + fx * (1.0 - kLeft - kRight),
                kBottom * h + fy * (1.0 - kTop - kBottom) * h};
  };

  // Frame.
  Style frame;
  frame.stroke = "#333333";
  frame.stroke_width = 1.0;
  canvas.line(to_world(0, 0), to_world(1, 0), frame);
  canvas.line(to_world(0, 0), to_world(0, 1), frame);

  // Ticks and grid.
  Style grid;
  grid.stroke = "#dddddd";
  grid.stroke_width = 0.6;
  for (const double t : ax.ticks()) {
    const double fx = ax.map01(t);
    if (fx < -1e-9 || fx > 1.0 + 1e-9) continue;
    canvas.line(to_world(fx, 0), to_world(fx, 1), grid);
    canvas.text(to_world(fx, 0) - Vec2{0.01, 0.03 * h}, tick_label(t), 10.0,
                "#333333");
  }
  for (const double t : ay.ticks()) {
    const double fy = ay.map01(t);
    if (fy < -1e-9 || fy > 1.0 + 1e-9) continue;
    canvas.line(to_world(0, fy), to_world(1, fy), grid);
    canvas.text(to_world(0, fy) - Vec2{0.10, 0.0}, tick_label(t), 10.0,
                "#333333");
  }

  // Series.
  double legend_y = 0.97;
  for (const ChartSeries& s : series) {
    // Sort by x for the connecting line.
    std::vector<std::size_t> order(s.x.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&s](std::size_t a, std::size_t b) { return s.x[a] < s.x[b]; });
    std::vector<Vec2> pts;
    for (const std::size_t i : order) {
      if (!drawable(s.x[i], s.y[i], options)) continue;
      pts.push_back(to_world(ax.map01(s.x[i]), ay.map01(s.y[i])));
    }
    if (s.draw_line && pts.size() >= 2) {
      Style line;
      line.stroke = s.color;
      line.stroke_width = 1.6;
      canvas.polyline(pts, line);
    }
    if (s.draw_markers) {
      for (const Vec2& p : pts) canvas.marker(p, s.color, 3.0);
    }
    if (!s.label.empty()) {
      canvas.text(to_world(0.03, legend_y), s.label, 12.0, s.color);
      legend_y -= 0.055;
    }
  }

  // Labels and title.
  if (!options.title.empty()) {
    canvas.text(to_world(0.3, 1.04), options.title, 14.0, "#000000");
  }
  if (!options.x_label.empty()) {
    canvas.text(to_world(0.45, -0.09), options.x_label, 12.0, "#000000");
  }
  if (!options.y_label.empty()) {
    canvas.text(to_world(-0.1, 1.02), options.y_label, 12.0, "#000000");
  }
  return canvas;
}

}  // namespace rv::viz
