#include "viz/ascii.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace rv::viz {

std::string ascii_bar_chart(const std::vector<AsciiBar>& bars, int width) {
  if (width < 1) throw std::invalid_argument("ascii_bar_chart: width < 1");
  double max_val = 0.0;
  std::size_t max_label = 0;
  for (const AsciiBar& b : bars) {
    if (b.value < 0.0) {
      throw std::invalid_argument("ascii_bar_chart: negative value");
    }
    max_val = std::max(max_val, b.value);
    max_label = std::max(max_label, b.label.size());
  }
  std::ostringstream os;
  for (const AsciiBar& b : bars) {
    const int len = max_val > 0.0
                        ? static_cast<int>(std::round(b.value / max_val * width))
                        : 0;
    os << b.label << std::string(max_label - b.label.size(), ' ') << " |"
       << std::string(static_cast<std::size_t>(len), '#') << ' ' << b.value
       << '\n';
  }
  return os.str();
}

std::string ascii_scatter(const std::vector<AsciiSeries>& series, int rows,
                          int cols, bool log_x, bool log_y) {
  if (rows < 2 || cols < 2) {
    throw std::invalid_argument("ascii_scatter: grid too small");
  }
  double xmin = 1e300, xmax = -1e300, ymin = 1e300, ymax = -1e300;
  auto tx = [log_x](double v) { return log_x ? std::log10(v) : v; };
  auto ty = [log_y](double v) { return log_y ? std::log10(v) : v; };
  bool any = false;
  for (const AsciiSeries& s : series) {
    if (s.x.size() != s.y.size()) {
      throw std::invalid_argument("ascii_scatter: x/y size mismatch");
    }
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if ((log_x && s.x[i] <= 0.0) || (log_y && s.y[i] <= 0.0)) continue;
      xmin = std::min(xmin, tx(s.x[i]));
      xmax = std::max(xmax, tx(s.x[i]));
      ymin = std::min(ymin, ty(s.y[i]));
      ymax = std::max(ymax, ty(s.y[i]));
      any = true;
    }
  }
  if (!any) throw std::invalid_argument("ascii_scatter: no drawable points");
  if (xmax <= xmin) xmax = xmin + 1.0;
  if (ymax <= ymin) ymax = ymin + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(rows),
                                std::string(static_cast<std::size_t>(cols), ' '));
  for (const AsciiSeries& s : series) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if ((log_x && s.x[i] <= 0.0) || (log_y && s.y[i] <= 0.0)) continue;
      const double fx = (tx(s.x[i]) - xmin) / (xmax - xmin);
      const double fy = (ty(s.y[i]) - ymin) / (ymax - ymin);
      const int col = std::clamp(static_cast<int>(fx * (cols - 1)), 0, cols - 1);
      const int row = std::clamp(static_cast<int>((1.0 - fy) * (rows - 1)), 0,
                                 rows - 1);
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          s.glyph;
    }
  }
  std::ostringstream os;
  os << (log_y ? "log(y)" : "y") << " max=" << (log_y ? std::pow(10, ymax) : ymax)
     << '\n';
  for (const std::string& line : grid) os << '|' << line << "|\n";
  os << (log_x ? "log(x)" : "x") << " in ["
     << (log_x ? std::pow(10, xmin) : xmin) << ", "
     << (log_x ? std::pow(10, xmax) : xmax) << "]  legend:";
  for (const AsciiSeries& s : series) {
    os << "  '" << s.glyph << "'=" << s.label;
  }
  os << '\n';
  return os.str();
}

}  // namespace rv::viz
