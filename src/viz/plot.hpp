#pragma once

/// \file plot.hpp
/// Trajectory plotting: renders robot paths, visibility disks and the
/// annulus structure of the paper's search algorithm into SVG files.

#include <string>
#include <vector>

#include "traj/path.hpp"
#include "viz/svg.hpp"

namespace rv::viz {

/// One trajectory to draw.
struct TrajectorySeries {
  std::vector<geom::Vec2> points;  ///< pre-flattened polyline
  std::string color = "#1f77b4";
  std::string label;
};

/// Configuration for a trajectory plot.
struct PlotOptions {
  double width_px = 900.0;
  double margin_frac = 0.07;      ///< world-window padding fraction
  double flatten_error = 1e-3;    ///< arc flattening tolerance (world units)
  bool draw_origin_marker = true;
};

/// Builds a trajectory plot for several series; the world window is the
/// bounding box of all points plus margin.
[[nodiscard]] SvgCanvas plot_trajectories(
    const std::vector<TrajectorySeries>& series, const PlotOptions& options = {});

/// Convenience: flattens a Path into a series.
[[nodiscard]] TrajectorySeries series_from_path(const traj::Path& path,
                                                const std::string& color,
                                                const std::string& label,
                                                double flatten_error = 1e-3);

/// Draws the annulus decomposition of Search(k) (Algorithm 3): the
/// 2k−1... (2k) annuli with inner/outer radii 2^{−k+j}, 2^{−k+j+1}.
void draw_search_annuli(SvgCanvas& canvas, int k,
                        const std::string& color = "#dddddd");

}  // namespace rv::viz
