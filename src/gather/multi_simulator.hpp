#pragma once

/// \file multi_simulator.hpp
/// N-robot gathering — the paper's stated future work ("it would be
/// challenging to solve deterministic gathering for multiple robots in
/// this setting of minimal knowledge", Section 5).
///
/// This module extends the certified two-robot sweep to N robots and
/// two notions of success:
///  * **pairwise gathering** — the first time every pair is within r
///    (the robots can all see each other);
///  * **first contact** — the first time *any* pair is within r (the
///    natural induction step for merge-based gathering protocols).
///
/// The stepping argument generalises: every pairwise separation is
/// Lipschitz with constant vᵢ + vⱼ, so
///     Δt = min over unmet pairs of (d_ij − r)/(vᵢ + vⱼ)
/// cannot skip any pair's first crossing.  For the gathering event the
/// sweep tracks the *largest* pairwise distance instead.
///
/// The experiments built on this (bench_x1_gathering) are exploratory:
/// the paper proves nothing about N > 2, and the measured outcomes are
/// reported as observations, not reproductions.

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "traj/frame.hpp"
#include "traj/program.hpp"

namespace rv::gather {

/// What event terminates the sweep.
enum class GatherMode {
  kFirstContact,       ///< any pair within r
  kAllPairsGathered,   ///< every pair within r simultaneously
};

/// Controls for the N-robot sweep.
struct GatherOptions {
  double visibility = 1.0;   ///< r
  double max_time = 1e7;     ///< horizon
  GatherMode mode = GatherMode::kAllPairsGathered;
  double contact_tol = 1e-9;
  double min_step = 1e-9;
  std::uint64_t max_evals = 500'000'000;
};

/// Sweep outcome.
struct GatherResult {
  bool achieved = false;     ///< event occurred before the horizon
  double time = 0.0;         ///< event time (or horizon)
  int pair_i = -1;           ///< for kFirstContact: the meeting pair
  int pair_j = -1;
  double max_pairwise = 0.0;      ///< max pairwise distance at `time`
  double min_max_pairwise = 0.0;  ///< smallest max-pairwise seen (diagnostic)
  std::uint64_t evals = 0;
  std::uint64_t segments = 0;
};

/// Certified N-robot sweep.  All robots run their own (independent)
/// programs with their own attributes and origins.
class MultiRobotSimulator {
 public:
  /// \throws std::invalid_argument for fewer than 2 robots, null
  /// programs, or bad options.
  MultiRobotSimulator(std::vector<sim::RobotSpec> robots,
                      GatherOptions options);

  /// Runs the sweep; single use.
  [[nodiscard]] GatherResult run();

  /// Number of robots.
  [[nodiscard]] std::size_t size() const { return streams_.size(); }

 private:
  std::vector<traj::GlobalSegmentStream> streams_;
  std::vector<traj::TimedSegment> current_;
  GatherOptions opts_;
};

/// Convenience: N robots running (their own copies of) the same
/// program, placed at `origins` with per-robot attributes.
[[nodiscard]] GatherResult simulate_gathering(
    const std::function<std::shared_ptr<traj::Program>()>& program_factory,
    const std::vector<geom::RobotAttributes>& attributes,
    const std::vector<geom::Vec2>& origins, const GatherOptions& options);

}  // namespace rv::gather
