#pragma once

/// \file multi_simulator.hpp
/// N-robot gathering — the paper's stated future work ("it would be
/// challenging to solve deterministic gathering for multiple robots in
/// this setting of minimal knowledge", Section 5).
///
/// This module presents the shared certified sweep
/// (`engine::ContactSweep`) for N robots and two notions of success:
///  * **pairwise gathering** — the first time every pair is within r
///    (the robots can all see each other) — the max-pairwise metric;
///  * **first contact** — the first time *any* pair is within r (the
///    natural induction step for merge-based gathering protocols) — the
///    min-pairwise metric.
///
/// The stepping argument generalises: every pairwise separation is
/// Lipschitz with constant vᵢ + vⱼ, so the sweep advances by the
/// largest certified step (see engine/contact_sweep.hpp).
///
/// The experiments built on this (bench_x1_gathering, via the engine's
/// gather workload family — engine/families.hpp) are exploratory: the
/// paper proves nothing about N > 2, and the measured outcomes are
/// reported as observations, not reproductions.

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/contact_sweep.hpp"
#include "sim/simulator.hpp"
#include "traj/frame.hpp"
#include "traj/program.hpp"

namespace rv::gather {

/// What event terminates the sweep.
enum class GatherMode {
  kFirstContact,       ///< any pair within r
  kAllPairsGathered,   ///< every pair within r simultaneously
};

/// Controls for the N-robot sweep.  The tolerance/visibility knobs are
/// the *shared* `sim::SimOptions` (= `engine::SweepOptions`) consumed
/// by every simulator — this struct no longer re-declares its own.
struct GatherOptions {
  sim::SimOptions sweep;  ///< r, horizon, tolerances, eval budget
  GatherMode mode = GatherMode::kAllPairsGathered;
};

/// Sweep outcome.
struct GatherResult {
  bool achieved = false;     ///< event occurred before the horizon
  double time = 0.0;         ///< event time (or horizon)
  int pair_i = -1;  ///< extremal pair at `time` (kFirstContact: the meeting
  int pair_j = -1;  ///< pair; kAllPairsGathered: the widest pair)
  double max_pairwise = 0.0;      ///< sweep metric at `time`
  double min_max_pairwise = 0.0;  ///< smallest max-pairwise seen (diagnostic)
  std::uint64_t evals = 0;
  std::uint64_t segments = 0;
};

/// Certified N-robot sweep.  All robots run their own (independent)
/// programs with their own attributes and origins.  Thin adapter over
/// `engine::ContactSweep`.
class MultiRobotSimulator {
 public:
  /// \throws std::invalid_argument for fewer than 2 robots, null
  /// programs, or bad options.
  MultiRobotSimulator(std::vector<sim::RobotSpec> robots,
                      GatherOptions options);

  /// Runs the sweep; single use.
  [[nodiscard]] GatherResult run();

  /// Number of robots.
  [[nodiscard]] std::size_t size() const { return sweep_.size(); }

 private:
  engine::ContactSweep sweep_;
  GatherMode mode_;
};

/// Convenience: N robots running (their own copies of) the same
/// program, placed at `origins` with per-robot attributes.
[[nodiscard]] GatherResult simulate_gathering(
    const std::function<std::shared_ptr<traj::Program>()>& program_factory,
    const std::vector<geom::RobotAttributes>& attributes,
    const std::vector<geom::Vec2>& origins, const GatherOptions& options);

}  // namespace rv::gather
