#include "gather/multi_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace rv::gather {

using geom::Vec2;
using traj::TimedSegment;

MultiRobotSimulator::MultiRobotSimulator(std::vector<sim::RobotSpec> robots,
                                         GatherOptions options)
    : opts_(options) {
  if (robots.size() < 2) {
    throw std::invalid_argument("MultiRobotSimulator: need >= 2 robots");
  }
  if (!(opts_.visibility > 0.0) || !(opts_.max_time > 0.0) ||
      !(opts_.min_step > 0.0)) {
    throw std::invalid_argument("MultiRobotSimulator: bad options");
  }
  streams_.reserve(robots.size());
  for (sim::RobotSpec& spec : robots) {
    if (!spec.program) {
      throw std::invalid_argument("MultiRobotSimulator: null program");
    }
    streams_.emplace_back(std::move(spec.program), spec.attributes,
                          spec.origin);
  }
}

GatherResult MultiRobotSimulator::run() {
  GatherResult res;
  res.min_max_pairwise = std::numeric_limits<double>::infinity();
  const std::size_t n = streams_.size();
  const double r = opts_.visibility;

  current_.clear();
  current_.reserve(n);
  for (auto& stream : streams_) {
    current_.push_back(stream.next());
    ++res.segments;
  }

  double t = 0.0;
  double prev_t = 0.0;
  bool have_prev = false;

  // Positions and the pair metric at time `at`.
  std::vector<Vec2> pos(n);
  auto evaluate = [&](double at, int* out_i, int* out_j) {
    for (std::size_t i = 0; i < n; ++i) pos[i] = current_[i].position(at);
    ++res.evals;
    if (opts_.mode == GatherMode::kFirstContact) {
      // Metric: min pairwise distance (event when ≤ r).
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
          const double d = geom::distance(pos[i], pos[j]);
          if (d < best) {
            best = d;
            if (out_i) *out_i = static_cast<int>(i);
            if (out_j) *out_j = static_cast<int>(j);
          }
        }
      }
      return best;
    }
    // Metric: max pairwise distance (event when ≤ r).
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double d = geom::distance(pos[i], pos[j]);
        if (d > worst) {
          worst = d;
          if (out_i) *out_i = static_cast<int>(i);
          if (out_j) *out_j = static_cast<int>(j);
        }
      }
    }
    return worst;
  };

  while (t < opts_.max_time && res.evals < opts_.max_evals) {
    double window_end = opts_.max_time;
    for (std::size_t i = 0; i < n; ++i) {
      while (current_[i].t1 <= t) {
        current_[i] = streams_[i].next();
        ++res.segments;
      }
      window_end = std::min(window_end, current_[i].t1);
    }

    int mi = -1, mj = -1;
    const double metric = evaluate(t, &mi, &mj);
    if (opts_.mode == GatherMode::kAllPairsGathered &&
        metric < res.min_max_pairwise) {
      res.min_max_pairwise = metric;
    }

    if (metric <= r + opts_.contact_tol) {
      double event_time = t;
      if (metric < r && have_prev) {
        // Bisect for the first time the metric reaches r.
        double lo = prev_t, hi = t;
        while (hi - lo > opts_.min_step) {
          const double mid = 0.5 * (lo + hi);
          if (evaluate(mid, nullptr, nullptr) <= r) {
            hi = mid;
          } else {
            lo = mid;
          }
        }
        event_time = hi;
      }
      res.achieved = true;
      res.time = event_time;
      res.pair_i = mi;
      res.pair_j = mj;
      res.max_pairwise = evaluate(event_time, nullptr, nullptr);
      return res;
    }

    prev_t = t;
    have_prev = true;

    // Certified step.  For first contact: the minimum separation is
    // Lipschitz with at most the largest pair speed sum.  For
    // gathering: so is the maximum separation.
    double speed_sum_max = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        speed_sum_max = std::max(
            speed_sum_max, current_[i].speed() + current_[j].speed());
      }
    }
    double step;
    if (speed_sum_max <= 0.0) {
      step = window_end - t;
      if (step <= 0.0) step = opts_.min_step;
    } else {
      step = (metric - r) / speed_sum_max;
    }
    step = std::max(step, opts_.min_step);
    const double next_t = std::min(t + step, window_end);
    t = next_t > t ? next_t : t + opts_.min_step;
  }

  res.achieved = false;
  res.time = std::min(t, opts_.max_time);
  res.max_pairwise = evaluate(res.time, nullptr, nullptr);
  return res;
}

GatherResult simulate_gathering(
    const std::function<std::shared_ptr<traj::Program>()>& program_factory,
    const std::vector<geom::RobotAttributes>& attributes,
    const std::vector<Vec2>& origins, const GatherOptions& options) {
  if (!program_factory) {
    throw std::invalid_argument("simulate_gathering: null factory");
  }
  if (attributes.size() != origins.size()) {
    throw std::invalid_argument(
        "simulate_gathering: attributes/origins size mismatch");
  }
  std::vector<sim::RobotSpec> robots;
  robots.reserve(attributes.size());
  for (std::size_t i = 0; i < attributes.size(); ++i) {
    robots.push_back(
        sim::RobotSpec{program_factory(), attributes[i], origins[i]});
  }
  MultiRobotSimulator sim(std::move(robots), options);
  return sim.run();
}

}  // namespace rv::gather
