#include "gather/multi_simulator.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

namespace rv::gather {

using geom::Vec2;

MultiRobotSimulator::MultiRobotSimulator(std::vector<sim::RobotSpec> robots,
                                         GatherOptions options)
    : sweep_(std::move(robots),
             options.mode == GatherMode::kFirstContact
                 ? engine::SweepMetric::kMinPairwise
                 : engine::SweepMetric::kMaxPairwise,
             options.sweep),
      mode_(options.mode) {}

GatherResult MultiRobotSimulator::run() {
  const engine::SweepResult swept = sweep_.run();
  GatherResult res;
  res.achieved = swept.event;
  res.time = swept.time;
  res.pair_i = swept.pair_i;
  res.pair_j = swept.pair_j;
  res.max_pairwise = swept.metric;
  // The min-of-max diagnostic only makes sense for the gathering
  // metric; for first contact it stays at +inf (historical behaviour).
  res.min_max_pairwise = mode_ == GatherMode::kAllPairsGathered
                             ? swept.best_metric
                             : std::numeric_limits<double>::infinity();
  res.evals = swept.evals;
  res.segments = swept.segments;
  return res;
}

GatherResult simulate_gathering(
    const std::function<std::shared_ptr<traj::Program>()>& program_factory,
    const std::vector<geom::RobotAttributes>& attributes,
    const std::vector<Vec2>& origins, const GatherOptions& options) {
  if (!program_factory) {
    throw std::invalid_argument("simulate_gathering: null factory");
  }
  if (attributes.size() != origins.size()) {
    throw std::invalid_argument(
        "simulate_gathering: attributes/origins size mismatch");
  }
  std::vector<sim::RobotSpec> robots;
  robots.reserve(attributes.size());
  for (std::size_t i = 0; i < attributes.size(); ++i) {
    robots.push_back(
        sim::RobotSpec{program_factory(), attributes[i], origins[i]});
  }
  MultiRobotSimulator sim(std::move(robots), options);
  return sim.run();
}

}  // namespace rv::gather
