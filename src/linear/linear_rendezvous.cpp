#include "linear/linear_rendezvous.hpp"

#include <stdexcept>

#include "linear/zigzag.hpp"
#include "mathx/binary.hpp"
#include "mathx/constants.hpp"

namespace rv::linear {

using rv::mathx::pow2;
using traj::LineSeg;
using traj::Segment;
using traj::WaitSeg;

geom::RobotAttributes to_planar(const LinearAttributes& attrs) {
  geom::RobotAttributes a;
  a.speed = attrs.speed;
  a.time_unit = attrs.time_unit;
  a.orientation = attrs.direction == 1 ? 0.0 : rv::mathx::kPi;
  a.chirality = 1;
  if (attrs.direction != 1 && attrs.direction != -1) {
    throw std::invalid_argument("to_planar: direction must be +1 or -1");
  }
  return geom::validated(a);
}

bool linear_rendezvous_feasible(const LinearAttributes& attrs) {
  return attrs.time_unit != 1.0 || attrs.speed != 1.0 ||
         attrs.direction == -1;
}

double linear_search_all_time(int n) { return zigzag_prefix_time(n); }

double linear_inactive_start(int n) {
  if (n < 1) throw std::invalid_argument("linear_inactive_start: n >= 1");
  // 4·Σ_{j<n} Z(j) = 4·Σ 8(2ʲ−1) = 32(2ⁿ − 2 − (n−1)) = 32(2ⁿ − n − 1).
  return 32.0 * (pow2(n) - n - 1.0);
}

double linear_active_start(int n) {
  if (n < 1) throw std::invalid_argument("linear_active_start: n >= 1");
  return linear_inactive_start(n) + 2.0 * linear_search_all_time(n);
}

Segment LinearRendezvousProgram::zigzag_leg() {
  const double amp = pow2(k_);
  switch (phase_) {
    case 0: return LineSeg{{0.0, 0.0}, {amp, 0.0}};
    case 1: return LineSeg{{amp, 0.0}, {0.0, 0.0}};
    case 2: return LineSeg{{0.0, 0.0}, {-amp, 0.0}};
    default: return LineSeg{{-amp, 0.0}, {0.0, 0.0}};
  }
}

void LinearRendezvousProgram::advance_leg() {
  if (++phase_ < 4) return;
  phase_ = 0;
  if (stage_ == Stage::kForward) {
    if (k_ < n_) {
      ++k_;
    } else {
      stage_ = Stage::kReverse;
      k_ = n_;
    }
  } else {  // kReverse
    if (k_ > 1) {
      --k_;
    } else {
      stage_ = Stage::kWait;
    }
  }
}

Segment LinearRendezvousProgram::next() {
  if (stage_ == Stage::kWait) {
    ++n_;
    stage_ = Stage::kForward;
    k_ = 1;
    phase_ = 0;
    return WaitSeg{{0.0, 0.0}, 2.0 * linear_search_all_time(n_)};
  }
  const Segment seg = zigzag_leg();
  advance_leg();
  return seg;
}

std::shared_ptr<traj::Program> make_linear_rendezvous_program() {
  return std::make_shared<LinearRendezvousProgram>();
}

}  // namespace rv::linear
