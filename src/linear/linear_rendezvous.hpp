#pragma once

/// \file linear_rendezvous.hpp
/// Universal rendezvous on the infinite line with unknown attributes —
/// the [11] setting, rebuilt on this library's substrate with the same
/// inactive/active phase trick as Algorithm 7:
///
///   round n:  wait 2·Z(n);  zigzag rounds 1..n;  zigzag rounds n..1
///
/// where Z(n) = 8(2ⁿ − 1) is the duration of zigzag rounds 1..n.  The
/// schedule algebra mirrors Lemma 8 with Z in place of S:
///   I_lin(n) = 32(2ⁿ − n − 1),   A_lin(n) = 48·2ⁿ − 32n − 48,
/// and the same growing-overlap argument applies for τ ≠ 1.
///
/// 1-D feasibility (τ = 1): the separation is
/// (1 − v·δ)·Z(t) − offset, so rendezvous is feasible iff v·δ ≠ 1,
/// i.e. v ≠ 1 or the robots disagree on the +x direction (δ = −1);
/// with asymmetric clocks it is always feasible — matching [11].

#include <memory>
#include <string>

#include "geom/attributes.hpp"
#include "traj/program.hpp"

namespace rv::linear {

/// One robot's hidden attributes on the line.
struct LinearAttributes {
  double speed = 1.0;      ///< v > 0
  double time_unit = 1.0;  ///< τ > 0
  int direction = 1;       ///< δ = ±1: the robot's notion of +x

  bool operator==(const LinearAttributes&) const = default;
};

/// Lifts 1-D attributes into the 2-D attribute model (δ = −1 becomes
/// φ = π; chirality is irrelevant on the x axis and stays +1).
[[nodiscard]] geom::RobotAttributes to_planar(const LinearAttributes& attrs);

/// Theorem-4 analogue on the line: feasible iff τ ≠ 1 ∨ v ≠ 1 ∨ δ = −1.
[[nodiscard]] bool linear_rendezvous_feasible(const LinearAttributes& attrs);

/// The duration Z(n) of zigzag rounds 1..n (= zigzag_prefix_time(n)).
[[nodiscard]] double linear_search_all_time(int n);

/// Local start of the nth inactive phase: I_lin(n) = 32(2ⁿ − n − 1).
[[nodiscard]] double linear_inactive_start(int n);

/// Local start of the nth active phase: A_lin(n) = 48·2ⁿ − 32n − 48.
[[nodiscard]] double linear_active_start(int n);

/// The universal linear rendezvous program (phase-scheduled zigzag).
class LinearRendezvousProgram final : public traj::Program {
 public:
  LinearRendezvousProgram() = default;
  [[nodiscard]] traj::Segment next() override;
  [[nodiscard]] std::string name() const override {
    return "linear-rendezvous";
  }
  [[nodiscard]] int current_round() const { return n_; }

 private:
  enum class Stage { kWait, kForward, kReverse };
  int n_ = 0;
  Stage stage_ = Stage::kWait;
  int k_ = 1;     ///< zigzag round within the pass
  int phase_ = 0; ///< leg within the zigzag round (0..3)
  bool first_ = true;

  [[nodiscard]] traj::Segment zigzag_leg();
  void advance_leg();
};

/// Factory for the simulator interface.
[[nodiscard]] std::shared_ptr<traj::Program> make_linear_rendezvous_program();

}  // namespace rv::linear
