#include "linear/zigzag.hpp"

#include <cmath>
#include <stdexcept>

#include "mathx/binary.hpp"

namespace rv::linear {

using rv::mathx::pow2;
using traj::LineSeg;
using traj::Segment;

Segment ZigZagProgram::next() {
  const double amp = pow2(k_);
  Segment seg;
  switch (phase_) {
    case 0:
      seg = LineSeg{{0.0, 0.0}, {amp, 0.0}};
      break;
    case 1:
      seg = LineSeg{{amp, 0.0}, {0.0, 0.0}};
      break;
    case 2:
      seg = LineSeg{{0.0, 0.0}, {-amp, 0.0}};
      break;
    default:
      seg = LineSeg{{-amp, 0.0}, {0.0, 0.0}};
      break;
  }
  if (++phase_ == 4) {
    phase_ = 0;
    if (++k_ > 60) throw std::logic_error("ZigZagProgram: round overflow");
  }
  return seg;
}

double zigzag_round_time(int k) {
  if (k < 1) throw std::invalid_argument("zigzag_round_time: k must be >= 1");
  return 4.0 * pow2(k);
}

double zigzag_prefix_time(int k) {
  if (k < 0) throw std::invalid_argument("zigzag_prefix_time: k must be >= 0");
  return 8.0 * (pow2(k) - 1.0);
}

double zigzag_reach_bound(double x) {
  const double ax = std::abs(x);
  if (!(ax > 0.0)) {
    throw std::invalid_argument("zigzag_reach_bound: need |x| > 0");
  }
  const int k = std::max(1, rv::mathx::ceil_log2(ax));
  return zigzag_prefix_time(k);
}

std::shared_ptr<traj::Program> make_zigzag_program() {
  return std::make_shared<ZigZagProgram>();
}

}  // namespace rv::linear
