#pragma once

/// \file zigzag.hpp
/// The 1-D (infinite line) setting of the paper's predecessor:
/// J. Czyzowicz, R. Killick, E. Kranakis, "Linear rendezvous with
/// asymmetric clocks", OPODIS 2018 — reference [11] of the paper.
///
/// On the line the universal *search* trajectory is the classic
/// doubling zigzag: round k visits +2ᵏ and −2ᵏ and returns to the
/// origin, taking 4·2ᵏ time.  Any point at distance d is reached by
/// round ⌈log₂ d⌉ — linear search is Θ(d), in contrast to the plane's
/// Θ(d²/r·log) (no visibility radius is needed to *cross* a point on a
/// line; r only widens the catch window).
///
/// The module reuses the 2-D substrate with all motion on the x axis,
/// so the same certified simulator, frame maps and attribute model
/// apply (1-D "orientation" is the direction convention δ = ±1,
/// i.e. φ ∈ {0, π}).

#include <memory>
#include <string>

#include "traj/program.hpp"

namespace rv::linear {

/// Doubling zigzag on the x axis: for k = 1, 2, ...:
/// 0 → +2ᵏ → 0 → −2ᵏ → 0.
class ZigZagProgram final : public traj::Program {
 public:
  ZigZagProgram() = default;
  [[nodiscard]] traj::Segment next() override;
  [[nodiscard]] std::string name() const override { return "zigzag"; }
  [[nodiscard]] int current_round() const { return k_; }

 private:
  int k_ = 1;
  int phase_ = 0;  ///< 0: to +2^k, 1: back, 2: to −2^k, 3: back
};

/// Duration of zigzag round k: 4·2ᵏ.
[[nodiscard]] double zigzag_round_time(int k);

/// Duration of rounds 1..k: 8(2ᵏ − 1).
[[nodiscard]] double zigzag_prefix_time(int k);

/// Upper bound on the time for the zigzag to *reach* the point at
/// signed coordinate x (|x| > 0): completed by round ⌈log₂|x|⌉, so
/// ≤ 8(2^⌈log₂|x|⌉ − 1) + slack for the in-round leg.  We return the
/// end of the guaranteed round (simple and sufficient): 8(2ᵏ − 1) with
/// k = max(1, ⌈log₂|x|⌉).
[[nodiscard]] double zigzag_reach_bound(double x);

/// Factory for the simulator interface.
[[nodiscard]] std::shared_ptr<traj::Program> make_zigzag_program();

}  // namespace rv::linear
