#pragma once

/// \file supervisor.hpp
/// Process supervision for sharded runs: deadlines, retries with
/// exponential backoff, and a machine-readable failure report.
///
/// `supervise_shards` forks one child per shard (via a caller-supplied
/// `child_main`), polls them concurrently, kills a shard that
/// overruns its deadline, and retries failed shards — only the failed
/// ones — up to a bounded attempt budget with exponential backoff and
/// deterministic jitter.  Retrying a shard is safe by construction:
/// shard cache files are set-qualified, writes publish by atomic
/// rename, and merges are first-writer-wins, so a half-done attempt
/// leaves nothing a retry cannot overwrite.
///
/// The attempt taxonomy (success / nonzero exit / signal / timeout /
/// spawn failure) and the report shape are what `tools/rv_batch
/// --procs` uses today and what the planned `rv_serve` admission
/// queue will reuse (see ROADMAP.md).  Determinism note: the
/// supervisor consults a wall clock for deadlines and backoff pacing
/// only — nothing it measures ever feeds emitted bytes, which stay a
/// pure function of the scenario inputs.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace rv::engine {

struct SupervisorOptions {
  /// Extra attempts after the first failure (0 = fail fast).
  std::size_t retries = 0;
  /// Per-attempt deadline in seconds; a shard still running past it is
  /// SIGKILLed and counted as kTimeout.  0 disables deadlines.
  double timeout_sec = 0.0;
  /// Base backoff before attempt k+1: backoff_ms << (k-1), plus up to
  /// backoff_ms of deterministic jitter so retried shards do not
  /// stampede the cache directory in lockstep.
  std::uint64_t backoff_ms = 100;
  /// Seed of the jitter stream (mixed with shard id and attempt).
  std::uint64_t backoff_seed = 0;
};

enum class AttemptOutcome : std::uint8_t {
  kSuccess,       ///< exited 0
  kExitFailure,   ///< exited nonzero (code = exit status)
  kSignal,        ///< killed by a signal (code = signal number)
  kTimeout,       ///< overran timeout_sec; SIGKILLed by the supervisor
  kSpawnFailure,  ///< fork() itself failed (code = errno)
};

[[nodiscard]] const char* attempt_outcome_name(AttemptOutcome outcome);

struct ShardAttempt {
  AttemptOutcome outcome = AttemptOutcome::kSuccess;
  int code = 0;        ///< exit status / signal number / errno (see outcome)
  double elapsed_ms = 0.0;
};

struct ShardStatus {
  std::size_t shard = 0;
  bool succeeded = false;
  std::vector<ShardAttempt> attempts;
};

struct SupervisorReport {
  std::vector<ShardStatus> shards;

  /// True when every shard eventually succeeded.
  [[nodiscard]] bool complete() const;
  /// Shards whose attempt budget ran out, ascending.
  [[nodiscard]] std::vector<std::size_t> failed_shards() const;
  /// True when any attempt failed (even if a retry recovered it).
  [[nodiscard]] bool any_failures() const;
  /// Human-readable per-shard attempt/latency/exit-status table.
  [[nodiscard]] std::string table() const;
  /// Machine-readable coverage report: completeness, failed shards,
  /// the global item indices they cover (missing from a partial merge
  /// of `total_items` strided items), and every attempt.
  [[nodiscard]] std::string to_json(std::size_t total_items) const;
};

/// Runs `child_main(shard)` in a forked child for each shard in
/// [0, num_shards), supervising per `options`.  `child_main`'s return
/// value becomes the child's exit status; an escaping exception is
/// reported on stderr and exits kExitFailure-style nonzero.  Returns
/// once every shard has succeeded or exhausted its attempts — the
/// caller decides whether a partial result is acceptable.
[[nodiscard]] SupervisorReport supervise_shards(
    std::size_t num_shards, const std::function<int(std::size_t)>& child_main,
    const SupervisorOptions& options = {});

}  // namespace rv::engine
