#include "engine/set_decl.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <utility>

#include "linear/zigzag.hpp"
#include "search/times.hpp"

namespace rv::engine {
namespace {

// ---------------------------------------------------------------------------
// Hook registries (named stand-ins for the built-in sets' C++ lambdas)
// ---------------------------------------------------------------------------

struct SearchHorizonRule {
  const char* name;
  double (*fn)(const SearchCell&);
};
constexpr SearchHorizonRule kSearchHorizonRules[] = {
    {"guaranteed-rounds+1",
     [](const SearchCell& c) {
       return search::time_first_rounds(
                  search::guaranteed_round(c.distance, c.visibility)) +
              1.0;
     }},
};

struct LinearHorizonRule {
  const char* name;
  double (*fn)(const LinearCell&);
};
constexpr LinearHorizonRule kLinearHorizonRules[] = {
    {"zigzag-reach+1",
     [](const LinearCell& c) {
       return c.mode == LinearMode::kZigZagSearch
                  ? linear::zigzag_reach_bound(c.target) + 1.0
                  : c.max_time;
     }},
};

struct CoverageHorizonRule {
  const char* name;
  double (*fn)(const CoverageCell&);
};
constexpr CoverageHorizonRule kCoverageHorizonRules[] = {
    {"2x-guaranteed-rounds",
     [](const CoverageCell& c) {
       return 2.0 * search::time_first_rounds(search::guaranteed_round(
                        c.disk_radius, c.visibility));
     }},
};

struct SearchComponentsHook {
  const char* name;
  Components (*fn)(const SearchCell&, const SearchOutcome&);
};
constexpr SearchComponentsHook kSearchComponentsHooks[] = {
    {"guaranteed-rounds",
     [](const SearchCell& c, const SearchOutcome&) {
       const int round = search::guaranteed_round(c.distance, c.visibility);
       return Components{
           {"guaranteed_round", static_cast<double>(round)},
           {"round_time_bound", search::time_first_rounds(round)},
       };
     }},
};

struct LinearComponentsHook {
  const char* name;
  Components (*fn)(const LinearCell&, const LinearOutcome&);
};
constexpr LinearComponentsHook kLinearComponentsHooks[] = {
    {"zigzag-reach",
     [](const LinearCell& c, const LinearOutcome&) {
       return Components{{"reach_bound", linear::zigzag_reach_bound(c.target)}};
     }},
};

// ---------------------------------------------------------------------------
// Lexing helpers
// ---------------------------------------------------------------------------

[[nodiscard]] bool is_digit(char c) { return c >= '0' && c <= '9'; }
[[nodiscard]] bool is_space(char c) { return c == ' ' || c == '\t'; }

[[nodiscard]] std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return std::string(text.substr(begin, end - begin));
}

[[nodiscard]] std::vector<std::string> split_spaces(const std::string& text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && is_space(text[i])) ++i;
    std::size_t start = i;
    while (i < text.size() && !is_space(text[i])) ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

/// Strict numeric token: [+-]? (digits [. digits*] | . digits) exponent?.
/// Rejects inf/nan/hex and any trailing junk — a corrupt value must
/// fail the parse, never wrap or truncate.
[[nodiscard]] bool is_number_token(std::string_view s) {
  std::size_t i = 0;
  if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
  std::size_t digits = 0;
  while (i < s.size() && is_digit(s[i])) {
    ++i;
    ++digits;
  }
  if (i < s.size() && s[i] == '.') {
    ++i;
    while (i < s.size() && is_digit(s[i])) {
      ++i;
      ++digits;
    }
  }
  if (digits == 0) return false;
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    std::size_t exp_digits = 0;
    while (i < s.size() && is_digit(s[i])) {
      ++i;
      ++exp_digits;
    }
    if (exp_digits == 0) return false;
  }
  return i == s.size();
}

// ---------------------------------------------------------------------------
// Raw sections
// ---------------------------------------------------------------------------

struct KeyValue {
  std::string value;
  int line = 0;
};

/// One raw `[header]` block (or the implicit top-level block): keys in
/// a map (duplicates rejected at parse time), except the repeatable
/// `robot` key which accumulates in order.
struct Section {
  std::string header;  // "", "rendezvous", "search.add", ...
  int line = 0;        // header line (0 for the top-level block)
  std::map<std::string, KeyValue> keys;
  std::vector<KeyValue> robots;
};

[[nodiscard]] std::string section_display(const Section& section) {
  return section.header.empty() ? "top level" : "[" + section.header + "]";
}

/// Splits text into raw sections, enforcing the line grammar: control
/// bytes, bare words, duplicate keys and malformed headers all throw.
[[nodiscard]] std::vector<Section> lex_sections(std::string_view text) {
  std::vector<Section> sections;
  sections.push_back(Section{});  // implicit top-level block
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view raw =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    for (char c : raw) {
      if (static_cast<unsigned char>(c) < 0x20 && c != '\t') {
        throw SetDeclError(line_no, "",
                           "control byte in line (LF-only text expected)");
      }
    }
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    if (line[0] == '[') {
      if (line.back() != ']' || line.size() < 3) {
        throw SetDeclError(line_no, "", "malformed section header '" + line +
                                            "' (expected [family] or "
                                            "[family.add])");
      }
      Section section;
      section.header = line.substr(1, line.size() - 2);
      section.line = line_no;
      sections.push_back(std::move(section));
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw SetDeclError(line_no, "",
                         "expected 'key = value', got '" + line + "'");
    }
    const std::string key = trim(std::string_view(line).substr(0, eq));
    const std::string value = trim(std::string_view(line).substr(eq + 1));
    if (key.empty()) {
      throw SetDeclError(line_no, "", "empty key before '='");
    }
    if (value.empty()) {
      throw SetDeclError(line_no, key, "empty value");
    }
    Section& section = sections.back();
    if (key == "robot") {
      section.robots.push_back(KeyValue{value, line_no});
      continue;
    }
    const auto [it, inserted] =
        section.keys.emplace(key, KeyValue{value, line_no});
    if (!inserted) {
      throw SetDeclError(line_no, key,
                         "duplicate key (first set on line " +
                             std::to_string(it->second.line) + ")");
    }
  }
  return sections;
}

// ---------------------------------------------------------------------------
// Value conversion
// ---------------------------------------------------------------------------

[[nodiscard]] double to_double(const KeyValue& kv, const std::string& key) {
  if (!is_number_token(kv.value)) {
    throw SetDeclError(kv.line, key,
                       "expected a number, got '" + kv.value + "'");
  }
  const char* begin = kv.value.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end != begin + kv.value.size() || !std::isfinite(value)) {
    throw SetDeclError(kv.line, key, "number out of range: '" + kv.value + "'");
  }
  return value;
}

[[nodiscard]] int to_int(const KeyValue& kv, const std::string& key) {
  std::string_view s = kv.value;
  std::size_t i = (!s.empty() && s[0] == '-') ? 1 : 0;
  bool digits_only = i < s.size();
  for (std::size_t j = i; j < s.size(); ++j) {
    digits_only = digits_only && is_digit(s[j]);
  }
  if (!digits_only) {
    throw SetDeclError(kv.line, key,
                       "expected an integer, got '" + kv.value + "'");
  }
  errno = 0;
  const char* begin = kv.value.c_str();
  char* end = nullptr;
  const long long value = std::strtoll(begin, &end, 10);
  if (errno != 0 || end != begin + kv.value.size() || value > 2147483647LL ||
      value < -2147483648LL) {
    throw SetDeclError(kv.line, key,
                       "integer out of range: '" + kv.value + "'");
  }
  return static_cast<int>(value);
}

[[nodiscard]] bool to_bool(const KeyValue& kv, const std::string& key) {
  if (kv.value == "true") return true;
  if (kv.value == "false") return false;
  throw SetDeclError(kv.line, key,
                     "expected true or false, got '" + kv.value + "'");
}

[[nodiscard]] std::vector<double> to_double_list(const KeyValue& kv,
                                                 const std::string& key) {
  std::vector<double> out;
  for (const std::string& token : split_spaces(kv.value)) {
    out.push_back(to_double(KeyValue{token, kv.line}, key));
  }
  if (out.empty()) throw SetDeclError(kv.line, key, "empty list");
  return out;
}

[[nodiscard]] std::vector<int> to_int_list(const KeyValue& kv,
                                           const std::string& key) {
  std::vector<int> out;
  for (const std::string& token : split_spaces(kv.value)) {
    out.push_back(to_int(KeyValue{token, kv.line}, key));
  }
  if (out.empty()) throw SetDeclError(kv.line, key, "empty list");
  return out;
}

[[nodiscard]] geom::Vec2 to_pair(const KeyValue& kv, const std::string& key) {
  const std::vector<std::string> tokens = split_spaces(kv.value);
  if (tokens.size() != 2) {
    throw SetDeclError(kv.line, key,
                       "expected 'x y' (two numbers), got '" + kv.value + "'");
  }
  return geom::Vec2{to_double(KeyValue{tokens[0], kv.line}, key),
                    to_double(KeyValue{tokens[1], kv.line}, key)};
}

/// Pair list: "x y; x y; ..." (semicolon-separated pairs).
[[nodiscard]] std::vector<geom::Vec2> to_pair_list(const KeyValue& kv,
                                                   const std::string& key) {
  std::vector<geom::Vec2> out;
  std::size_t start = 0;
  const std::string& v = kv.value;
  while (start <= v.size()) {
    std::size_t semi = v.find(';', start);
    if (semi == std::string::npos) semi = v.size();
    const std::string part = trim(std::string_view(v).substr(start, semi - start));
    if (part.empty()) {
      throw SetDeclError(kv.line, key, "empty pair in list");
    }
    out.push_back(to_pair(KeyValue{part, kv.line}, key));
    start = semi + 1;
    if (semi == v.size()) break;
  }
  if (out.empty()) throw SetDeclError(kv.line, key, "empty list");
  return out;
}

[[nodiscard]] rendezvous::AlgorithmChoice to_algorithm(const KeyValue& kv,
                                                       const std::string& key) {
  if (kv.value == "algorithm4") return rendezvous::AlgorithmChoice::kAlgorithm4;
  if (kv.value == "algorithm7") return rendezvous::AlgorithmChoice::kAlgorithm7;
  throw SetDeclError(
      kv.line, key,
      "unknown algorithm '" + kv.value + "' (valid: algorithm4 algorithm7)");
}

[[nodiscard]] SearchProgram to_program(const KeyValue& kv,
                                       const std::string& key) {
  if (kv.value == "algorithm4") return SearchProgram::kAlgorithm4;
  if (kv.value == "concentric") return SearchProgram::kConcentric;
  if (kv.value == "square-spiral") return SearchProgram::kSquareSpiral;
  throw SetDeclError(kv.line, key,
                     "unknown program '" + kv.value +
                         "' (valid: algorithm4 concentric square-spiral)");
}

[[nodiscard]] std::vector<SearchProgram> to_program_list(
    const KeyValue& kv, const std::string& key) {
  std::vector<SearchProgram> out;
  for (const std::string& token : split_spaces(kv.value)) {
    out.push_back(to_program(KeyValue{token, kv.line}, key));
  }
  if (out.empty()) throw SetDeclError(kv.line, key, "empty list");
  return out;
}

[[nodiscard]] LinearMode to_mode(const KeyValue& kv, const std::string& key) {
  if (kv.value == "zigzag-search") return LinearMode::kZigZagSearch;
  if (kv.value == "linear-rendezvous") return LinearMode::kRendezvous;
  throw SetDeclError(kv.line, key,
                     "unknown mode '" + kv.value +
                         "' (valid: zigzag-search linear-rendezvous)");
}

// ---------------------------------------------------------------------------
// Section dispatch
// ---------------------------------------------------------------------------

/// Checked key access: every key a section handler reads goes through
/// `take`, and `finish` rejects whatever is left over, naming the
/// section and its valid keys.
class Keys {
 public:
  explicit Keys(Section& section) : section_(section) {}

  [[nodiscard]] std::optional<KeyValue> take(const std::string& key) {
    valid_.push_back(key);
    const auto it = section_.keys.find(key);
    if (it == section_.keys.end()) return std::nullopt;
    KeyValue kv = it->second;
    section_.keys.erase(it);
    return kv;
  }

  /// True when `key` is present (and consumes it via the `out` pattern
  /// below).  Sugar for the common "apply if set" case.
  template <typename T, typename Fn>
  bool apply(const std::string& key, T& out, Fn&& convert) {
    const std::optional<KeyValue> kv = take(key);
    if (!kv) return false;
    out = convert(*kv, key);
    return true;
  }

  void finish() {
    if (section_.keys.empty()) return;
    const auto& [key, kv] = *section_.keys.begin();
    std::string valid;
    for (const std::string& name : valid_) {
      valid += valid.empty() ? "" : " ";
      valid += name;
    }
    throw SetDeclError(kv.line, key,
                       "unknown key in " + section_display(section_) +
                           " (valid keys: " + valid + ")");
  }

 private:
  Section& section_;
  std::vector<std::string> valid_;
};

[[nodiscard]] std::string join_names(const std::vector<std::string>& names) {
  if (names.empty()) return "(none)";
  std::string out;
  for (const std::string& name : names) {
    out += out.empty() ? "" : " ";
    out += name;
  }
  return out;
}

void apply_attrs(Keys& keys, geom::RobotAttributes& attrs) {
  keys.apply("speed", attrs.speed, to_double);
  keys.apply("time_unit", attrs.time_unit, to_double);
  keys.apply("orientation", attrs.orientation, to_double);
  keys.apply("chirality", attrs.chirality, to_int);
}

[[nodiscard]] rendezvous::Scenario parse_rendezvous_cell(Keys& keys) {
  rendezvous::Scenario cell;
  apply_attrs(keys, cell.attrs);
  keys.apply("offset", cell.offset, to_pair);
  keys.apply("visibility", cell.visibility, to_double);
  keys.apply("algorithm", cell.algorithm, to_algorithm);
  keys.apply("max_time", cell.max_time, to_double);
  return cell;
}

void apply_rendezvous(Section& section, bool add, ScenarioSet& set) {
  Keys keys(section);
  std::string label;
  if (add) keys.apply("label", label, [](const KeyValue& kv,
                                         const std::string&) {
    return kv.value;
  });
  rendezvous::Scenario cell = parse_rendezvous_cell(keys);
  if (add) {
    keys.finish();
    set.add(std::move(cell), std::move(label));
    return;
  }
  bool any_axis = false;
  std::vector<double> values;
  std::vector<int> ints;
  if (keys.apply("speeds", values, to_double_list)) {
    set.speeds(values);
    any_axis = true;
  }
  if (keys.apply("time_units", values, to_double_list)) {
    set.time_units(values);
    any_axis = true;
  }
  if (keys.apply("orientations", values, to_double_list)) {
    set.orientations(values);
    any_axis = true;
  }
  if (keys.apply("chiralities", ints, to_int_list)) {
    set.chiralities(ints);
    any_axis = true;
  }
  const std::optional<KeyValue> distances = keys.take("distances");
  const std::optional<KeyValue> offsets = keys.take("offsets");
  if (distances && offsets) {
    throw SetDeclError(offsets->line, "offsets",
                       "'distances' and 'offsets' both set the offset axis; "
                       "use one");
  }
  if (distances) {
    set.distances(to_double_list(*distances, "distances"));
    any_axis = true;
  }
  if (offsets) {
    set.offsets(to_pair_list(*offsets, "offsets"));
    any_axis = true;
  }
  keys.finish();
  if (!any_axis) {
    throw SetDeclError(section.line, "",
                       "[rendezvous] declares no grid axis (expected one of: "
                       "speeds time_units orientations chiralities distances "
                       "offsets)");
  }
  set.base(std::move(cell));
}

[[nodiscard]] SearchCell parse_search_cell(Keys& keys) {
  SearchCell cell;
  apply_attrs(keys, cell.attrs);
  keys.apply("distance", cell.distance, to_double);
  keys.apply("visibility", cell.visibility, to_double);
  keys.apply("angles", cell.angles, to_int);
  keys.apply("angle_offset", cell.angle_offset, to_double);
  keys.apply("program", cell.program, to_program);
  keys.apply("max_time", cell.max_time, to_double);
  return cell;
}

void apply_search(Section& section, bool add, ScenarioSet& set) {
  Keys keys(section);
  std::string label;
  if (add) keys.apply("label", label, [](const KeyValue& kv,
                                         const std::string&) {
    return kv.value;
  });
  SearchCell cell = parse_search_cell(keys);
  if (add) {
    keys.apply("targets", cell.targets, to_pair_list);
    keys.finish();
    set.add_search(std::move(cell), std::move(label));
    return;
  }
  bool any_axis = false;
  std::vector<double> values;
  std::vector<SearchProgram> programs;
  if (keys.apply("distances", values, to_double_list)) {
    set.search_distances(values);
    any_axis = true;
  }
  if (keys.apply("radii", values, to_double_list)) {
    set.search_radii(values);
    any_axis = true;
  }
  if (keys.apply("programs", programs, to_program_list)) {
    set.search_programs(programs);
    any_axis = true;
  }
  bool any_hook = false;
  if (const std::optional<KeyValue> rule = keys.take("horizon_rule")) {
    for (const SearchHorizonRule& entry : kSearchHorizonRules) {
      if (rule->value == entry.name) {
        set.search_horizon(entry.fn);
        any_hook = true;
        break;
      }
    }
    if (!any_hook) {
      throw SetDeclError(
          rule->line, "horizon_rule",
          "unknown search horizon rule '" + rule->value + "' (valid: " +
              join_names(horizon_rule_names(Family::kSearch)) + ")");
    }
  }
  if (const std::optional<KeyValue> hook = keys.take("components")) {
    bool found = false;
    for (const SearchComponentsHook& entry : kSearchComponentsHooks) {
      if (hook->value == entry.name) {
        set.search_components(entry.fn);
        found = true;
        break;
      }
    }
    if (!found) {
      throw SetDeclError(
          hook->line, "components",
          "unknown search components hook '" + hook->value + "' (valid: " +
              join_names(components_hook_names(Family::kSearch)) + ")");
    }
    any_hook = true;
  }
  keys.finish();
  if (!any_axis && !any_hook) {
    throw SetDeclError(section.line, "",
                       "[search] declares no grid axis (expected one of: "
                       "distances radii programs)");
  }
  set.search_base(std::move(cell));
}

[[nodiscard]] GatherCell parse_gather_cell(Keys& keys) {
  GatherCell cell;
  keys.apply("ring_radius", cell.ring_radius, to_double);
  keys.apply("ring_phase", cell.ring_phase, to_double);
  keys.apply("jitter", cell.jitter, to_pair_list);
  keys.apply("visibility", cell.visibility, to_double);
  keys.apply("algorithm", cell.algorithm, to_algorithm);
  keys.apply("contact_max_time", cell.contact_max_time, to_double);
  keys.apply("gather_max_time", cell.gather_max_time, to_double);
  return cell;
}

[[nodiscard]] geom::RobotAttributes parse_robot(const KeyValue& kv) {
  const std::vector<std::string> tokens = split_spaces(kv.value);
  if (tokens.size() < 2 || tokens.size() > 4) {
    throw SetDeclError(kv.line, "robot",
                       "expected 'v tau [phi [chi]]', got '" + kv.value + "'");
  }
  geom::RobotAttributes attrs;
  attrs.speed = to_double(KeyValue{tokens[0], kv.line}, "robot");
  attrs.time_unit = to_double(KeyValue{tokens[1], kv.line}, "robot");
  if (tokens.size() > 2) {
    attrs.orientation = to_double(KeyValue{tokens[2], kv.line}, "robot");
  }
  if (tokens.size() > 3) {
    attrs.chirality = to_int(KeyValue{tokens[3], kv.line}, "robot");
  }
  return attrs;
}

void apply_gather(Section& section, bool add, ScenarioSet& set) {
  Keys keys(section);
  std::string label;
  if (add) keys.apply("label", label, [](const KeyValue& kv,
                                         const std::string&) {
    return kv.value;
  });
  GatherCell cell = parse_gather_cell(keys);
  if (add) {
    keys.finish();
    for (const KeyValue& robot : section.robots) {
      cell.fleet.push_back(parse_robot(robot));
    }
    if (cell.fleet.size() < 2) {
      throw SetDeclError(section.line, "robot",
                         "[gather.add] needs at least 2 'robot = v tau "
                         "[phi [chi]]' lines, got " +
                             std::to_string(cell.fleet.size()));
    }
    set.add_gather(std::move(cell), std::move(label));
    return;
  }
  const std::optional<KeyValue> sizes = keys.take("sizes");
  keys.finish();
  if (!section.robots.empty()) {
    throw SetDeclError(section.robots.front().line, "robot",
                       "'robot' lines belong in [gather.add] sections");
  }
  if (!sizes) {
    throw SetDeclError(section.line, "",
                       "[gather] declares no grid axis (expected: sizes)");
  }
  set.gather_base(std::move(cell));
  set.gather_sizes(to_int_list(*sizes, "sizes"));
}

[[nodiscard]] LinearCell parse_linear_cell(Keys& keys) {
  LinearCell cell;
  keys.apply("mode", cell.mode, to_mode);
  keys.apply("speed", cell.attrs.speed, to_double);
  keys.apply("time_unit", cell.attrs.time_unit, to_double);
  keys.apply("direction", cell.attrs.direction, to_int);
  keys.apply("target", cell.target, to_double);
  keys.apply("visibility", cell.visibility, to_double);
  keys.apply("max_time", cell.max_time, to_double);
  return cell;
}

void apply_linear(Section& section, bool add, ScenarioSet& set) {
  Keys keys(section);
  std::string label;
  if (add) keys.apply("label", label, [](const KeyValue& kv,
                                         const std::string&) {
    return kv.value;
  });
  LinearCell cell = parse_linear_cell(keys);
  if (add) {
    keys.finish();
    set.add_linear(std::move(cell), std::move(label));
    return;
  }
  bool any_axis = false;
  std::vector<double> values;
  if (keys.apply("distances", values, to_double_list)) {
    set.linear_distances(values);
    any_axis = true;
  }
  if (keys.apply("radii", values, to_double_list)) {
    set.linear_radii(values);
    any_axis = true;
  }
  bool any_hook = false;
  if (const std::optional<KeyValue> rule = keys.take("horizon_rule")) {
    bool found = false;
    for (const LinearHorizonRule& entry : kLinearHorizonRules) {
      if (rule->value == entry.name) {
        set.linear_horizon(entry.fn);
        found = true;
        break;
      }
    }
    if (!found) {
      throw SetDeclError(
          rule->line, "horizon_rule",
          "unknown linear horizon rule '" + rule->value + "' (valid: " +
              join_names(horizon_rule_names(Family::kLinear)) + ")");
    }
    any_hook = true;
  }
  if (const std::optional<KeyValue> hook = keys.take("components")) {
    bool found = false;
    for (const LinearComponentsHook& entry : kLinearComponentsHooks) {
      if (hook->value == entry.name) {
        set.linear_components(entry.fn);
        found = true;
        break;
      }
    }
    if (!found) {
      throw SetDeclError(
          hook->line, "components",
          "unknown linear components hook '" + hook->value + "' (valid: " +
              join_names(components_hook_names(Family::kLinear)) + ")");
    }
    any_hook = true;
  }
  keys.finish();
  if (!any_axis && !any_hook) {
    throw SetDeclError(section.line, "",
                       "[linear] declares no grid axis (expected one of: "
                       "distances radii)");
  }
  set.linear_base(std::move(cell));
}

[[nodiscard]] CoverageCell parse_coverage_cell(Keys& keys) {
  CoverageCell cell;
  apply_attrs(keys, cell.attrs);
  keys.apply("program", cell.program, to_program);
  keys.apply("disk_radius", cell.disk_radius, to_double);
  keys.apply("visibility", cell.visibility, to_double);
  keys.apply("cell", cell.cell, to_double);
  keys.apply("checkpoints", cell.checkpoints, to_int);
  keys.apply("horizon", cell.horizon, to_double);
  return cell;
}

void apply_coverage(Section& section, bool add, ScenarioSet& set) {
  Keys keys(section);
  std::string label;
  if (add) keys.apply("label", label, [](const KeyValue& kv,
                                         const std::string&) {
    return kv.value;
  });
  CoverageCell cell = parse_coverage_cell(keys);
  if (add) {
    keys.finish();
    set.add_coverage(std::move(cell), std::move(label));
    return;
  }
  bool any_axis = false;
  std::vector<double> values;
  std::vector<SearchProgram> programs;
  if (keys.apply("programs", programs, to_program_list)) {
    set.coverage_programs(programs);
    any_axis = true;
  }
  if (keys.apply("disk_radii", values, to_double_list)) {
    set.coverage_disk_radii(values);
    any_axis = true;
  }
  if (keys.apply("radii", values, to_double_list)) {
    set.coverage_radii(values);
    any_axis = true;
  }
  bool any_hook = false;
  if (const std::optional<KeyValue> rule = keys.take("horizon_rule")) {
    bool found = false;
    for (const CoverageHorizonRule& entry : kCoverageHorizonRules) {
      if (rule->value == entry.name) {
        set.coverage_horizon(entry.fn);
        found = true;
        break;
      }
    }
    if (!found) {
      throw SetDeclError(
          rule->line, "horizon_rule",
          "unknown coverage horizon rule '" + rule->value + "' (valid: " +
              join_names(horizon_rule_names(Family::kCoverage)) + ")");
    }
    any_hook = true;
  }
  keys.finish();
  if (!any_axis && !any_hook) {
    throw SetDeclError(section.line, "",
                       "[coverage] declares no grid axis (expected one of: "
                       "programs disk_radii radii)");
  }
  set.coverage_base(std::move(cell));
}

[[nodiscard]] bool valid_set_name(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    is_digit(c) || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

SetDeclError::SetDeclError(int line, std::string field,
                           const std::string& message)
    : std::runtime_error(
          (line > 0 ? "line " + std::to_string(line) + ": " : std::string()) +
          (field.empty() ? "" : "key '" + field + "': ") + message),
      line_(line),
      field_(std::move(field)) {}

SetDeclError::SetDeclError(Raw, int line, std::string field,
                           const std::string& what)
    : std::runtime_error(what), line_(line), field_(std::move(field)) {}

SetDeclError SetDeclError::with_prefix(const std::string& prefix,
                                       const SetDeclError& error) {
  return SetDeclError(Raw{}, error.line(), error.field(),
                      prefix + ": " + error.what());
}

SetDecl parse_set_decl(std::string_view text) {
  std::vector<Section> sections = lex_sections(text);
  SetDecl decl;

  // Top-level block.
  {
    Keys keys(sections.front());
    keys.apply("name", decl.name,
               [](const KeyValue& kv, const std::string& key) {
                 if (!valid_set_name(kv.value)) {
                   throw SetDeclError(kv.line, key,
                                      "set name must be non-empty "
                                      "[A-Za-z0-9._-]+, got '" + kv.value +
                                          "'");
                 }
                 return kv.value;
               });
    keys.apply("description", decl.description,
               [](const KeyValue& kv, const std::string&) { return kv.value; });
    bool components_only = false;
    if (keys.apply("components_only", components_only, to_bool)) {
      decl.set.components_only(components_only);
    }
    keys.finish();
    if (!sections.front().robots.empty()) {
      throw SetDeclError(sections.front().robots.front().line, "robot",
                         "'robot' lines belong in [gather.add] sections");
    }
  }

  bool any_section = false;
  bool grid_seen[5] = {false, false, false, false, false};
  for (std::size_t i = 1; i < sections.size(); ++i) {
    Section& section = sections[i];
    std::string family = section.header;
    bool add = false;
    const std::size_t dot = family.find('.');
    if (dot != std::string::npos) {
      const std::string suffix = family.substr(dot + 1);
      family = family.substr(0, dot);
      if (suffix != "add") {
        throw SetDeclError(section.line, "",
                           "unknown section [" + section.header +
                               "] (expected [family] or [family.add])");
      }
      add = true;
    }
    static const std::pair<const char*, Family> kFamilies[] = {
        {"rendezvous", Family::kRendezvous}, {"search", Family::kSearch},
        {"gather", Family::kGather},         {"linear", Family::kLinear},
        {"coverage", Family::kCoverage},
    };
    std::optional<Family> which;
    for (const auto& [name, value] : kFamilies) {
      if (family == name) which = value;
    }
    if (!which) {
      throw SetDeclError(section.line, "",
                         "unknown section [" + section.header +
                             "] (families: rendezvous search gather linear "
                             "coverage)");
    }
    if (!add) {
      bool& seen = grid_seen[static_cast<int>(*which)];
      if (seen) {
        throw SetDeclError(section.line, "",
                           "duplicate grid section [" + section.header +
                               "] (at most one per family)");
      }
      seen = true;
    }
    if (!add && !section.robots.empty() && *which != Family::kGather) {
      throw SetDeclError(section.robots.front().line, "robot",
                         "'robot' lines belong in [gather.add] sections");
    }
    if (add && !section.robots.empty() && *which != Family::kGather) {
      throw SetDeclError(section.robots.front().line, "robot",
                         "'robot' lines belong in [gather.add] sections");
    }
    switch (*which) {
      case Family::kRendezvous:
        apply_rendezvous(section, add, decl.set);
        break;
      case Family::kSearch:
        apply_search(section, add, decl.set);
        break;
      case Family::kGather:
        apply_gather(section, add, decl.set);
        break;
      case Family::kLinear:
        apply_linear(section, add, decl.set);
        break;
      case Family::kCoverage:
        apply_coverage(section, add, decl.set);
        break;
    }
    any_section = true;
  }
  if (!any_section) {
    throw SetDeclError(0, "",
                       "declaration has no scenario sections (expected at "
                       "least one [family] or [family.add] block)");
  }
  return decl;
}

SetDecl parse_set_decl_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SetDeclError(0, "", path.string() + ": cannot open file");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    throw SetDeclError(0, "", path.string() + ": read error");
  }
  try {
    SetDecl decl = parse_set_decl(buffer.str());
    if (decl.name.empty()) {
      const std::string stem = path.stem().string();
      if (!valid_set_name(stem)) {
        throw SetDeclError(0, "name",
                           "file stem '" + stem +
                               "' is not a valid set name; add a 'name = ...' "
                               "key ([A-Za-z0-9._-]+)");
      }
      decl.name = stem;
    }
    return decl;
  } catch (const SetDeclError& error) {
    throw SetDeclError::with_prefix(path.string(), error);
  }
}

std::vector<std::string> horizon_rule_names(Family family) {
  std::vector<std::string> names;
  switch (family) {
    case Family::kSearch:
      for (const auto& rule : kSearchHorizonRules) names.push_back(rule.name);
      break;
    case Family::kLinear:
      for (const auto& rule : kLinearHorizonRules) names.push_back(rule.name);
      break;
    case Family::kCoverage:
      for (const auto& rule : kCoverageHorizonRules) names.push_back(rule.name);
      break;
    case Family::kRendezvous:
    case Family::kGather:
      break;
  }
  return names;
}

std::vector<std::string> components_hook_names(Family family) {
  std::vector<std::string> names;
  switch (family) {
    case Family::kSearch:
      for (const auto& hook : kSearchComponentsHooks) names.push_back(hook.name);
      break;
    case Family::kLinear:
      for (const auto& hook : kLinearComponentsHooks) names.push_back(hook.name);
      break;
    case Family::kRendezvous:
    case Family::kGather:
    case Family::kCoverage:
      break;
  }
  return names;
}

}  // namespace rv::engine
