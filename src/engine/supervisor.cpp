#include "engine/supervisor.hpp"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <thread>

#include "mathx/rng.hpp"

namespace rv::engine {

namespace {

/// Monotonic milliseconds.  The only clock read in the engine — it
/// paces deadlines and backoff and times attempts for the report;
/// nothing it returns ever reaches emitted bytes or cache content.
double now_ms() {
  // rv-lint: allow(nondeterminism) — supervisor pacing only, never output
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(t).count();
}

constexpr double kNoDeadline = 1e300;

struct Slot {
  pid_t pid = -1;  ///< running child, or -1 when waiting to (re)spawn
  double started_ms = 0.0;
  double deadline_ms = kNoDeadline;
  double not_before_ms = 0.0;  ///< earliest (re)spawn time (backoff)
  std::size_t attempts_started = 0;
  bool done = false;
  bool timed_out = false;  ///< this attempt was SIGKILLed by us
};

}  // namespace

const char* attempt_outcome_name(AttemptOutcome outcome) {
  switch (outcome) {
    case AttemptOutcome::kSuccess: return "success";
    case AttemptOutcome::kExitFailure: return "exit";
    case AttemptOutcome::kSignal: return "signal";
    case AttemptOutcome::kTimeout: return "timeout";
    case AttemptOutcome::kSpawnFailure: return "spawn";
  }
  return "?";
}

bool SupervisorReport::complete() const {
  for (const ShardStatus& s : shards) {
    if (!s.succeeded) return false;
  }
  return true;
}

std::vector<std::size_t> SupervisorReport::failed_shards() const {
  std::vector<std::size_t> failed;
  for (const ShardStatus& s : shards) {
    if (!s.succeeded) failed.push_back(s.shard);
  }
  return failed;
}

bool SupervisorReport::any_failures() const {
  for (const ShardStatus& s : shards) {
    for (const ShardAttempt& a : s.attempts) {
      if (a.outcome != AttemptOutcome::kSuccess) return true;
    }
  }
  return false;
}

std::string SupervisorReport::table() const {
  std::string out = "shard  attempt  outcome  code  elapsed_ms\n";
  char line[96];
  for (const ShardStatus& s : shards) {
    for (std::size_t k = 0; k < s.attempts.size(); ++k) {
      const ShardAttempt& a = s.attempts[k];
      std::snprintf(line, sizeof line, "%5zu  %7zu  %-7s  %4d  %10.1f\n",
                    s.shard, k + 1, attempt_outcome_name(a.outcome), a.code,
                    a.elapsed_ms);
      out += line;
    }
  }
  return out;
}

std::string SupervisorReport::to_json(std::size_t total_items) const {
  const std::vector<std::size_t> failed = failed_shards();
  const auto join = [](const std::vector<std::size_t>& values) {
    std::string list;
    for (const std::size_t v : values) {
      if (!list.empty()) list += ", ";
      list += std::to_string(v);
    }
    return list;
  };
  // The strided partition (engine/shard.hpp): global item i belongs to
  // shard i % num_shards, so a failed shard's items are recoverable
  // from its id alone.
  std::vector<std::size_t> missing;
  const std::size_t num_shards = shards.size();
  for (std::size_t i = 0; i < total_items && num_shards > 0; ++i) {
    if (std::find(failed.begin(), failed.end(), i % num_shards) !=
        failed.end()) {
      missing.push_back(i);
    }
  }
  std::string out = "{\n";
  out += std::string("  \"complete\": ") + (complete() ? "true" : "false");
  out += ",\n  \"num_shards\": " + std::to_string(num_shards);
  out += ",\n  \"total_items\": " + std::to_string(total_items);
  out += ",\n  \"failed_shards\": [" + join(failed) + "]";
  out += ",\n  \"missing_indices\": [" + join(missing) + "]";
  out += ",\n  \"shards\": [\n";
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const ShardStatus& shard = shards[s];
    out += "    {\"shard\": " + std::to_string(shard.shard) +
           ", \"succeeded\": " + (shard.succeeded ? "true" : "false") +
           ", \"attempts\": [";
    for (std::size_t k = 0; k < shard.attempts.size(); ++k) {
      const ShardAttempt& a = shard.attempts[k];
      char ms[32];
      std::snprintf(ms, sizeof ms, "%.1f", a.elapsed_ms);
      out += std::string(k == 0 ? "" : ", ") + "{\"attempt\": " +
             std::to_string(k + 1) + ", \"outcome\": \"" +
             attempt_outcome_name(a.outcome) +
             "\", \"code\": " + std::to_string(a.code) +
             ", \"elapsed_ms\": " + ms + "}";
    }
    out += std::string("]}") + (s + 1 < shards.size() ? "," : "") + "\n";
  }
  out += "  ]\n}\n";
  return out;
}

SupervisorReport supervise_shards(
    std::size_t num_shards, const std::function<int(std::size_t)>& child_main,
    const SupervisorOptions& options) {
  SupervisorReport report;
  report.shards.resize(num_shards);
  std::vector<Slot> slots(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) report.shards[s].shard = s;
  const std::size_t max_attempts = options.retries + 1;
  std::size_t open = num_shards;

  const auto record_failure = [&](std::size_t s, double now) {
    Slot& slot = slots[s];
    slot.pid = -1;
    if (slot.attempts_started >= max_attempts) {
      slot.done = true;
      --open;
      return;
    }
    // Exponential backoff with deterministic jitter: shard and attempt
    // seed the stream, so reruns pace identically but concurrent
    // retried shards spread out instead of stampeding.
    const std::size_t shift =
        std::min<std::size_t>(slot.attempts_started - 1, 20);
    const double base =
        static_cast<double>(options.backoff_ms) * static_cast<double>(1u << shift);
    mathx::Xoshiro256 rng(options.backoff_seed ^
                          (0x9e3779b97f4a7c15ull * (s + 1)) ^
                          (0xbf58476d1ce4e5b9ull * slot.attempts_started));
    const double jitter =
        rng.uniform(0.0, static_cast<double>(options.backoff_ms));
    slot.not_before_ms = now + base + jitter;
  };

  const auto spawn = [&](std::size_t s, double now) {
    Slot& slot = slots[s];
    const pid_t pid = ::fork();
    if (pid < 0) {
      ++slot.attempts_started;
      report.shards[s].attempts.push_back(
          {AttemptOutcome::kSpawnFailure, errno, 0.0});
      record_failure(s, now);
      return;
    }
    if (pid == 0) {
      int code = 2;
      try {
        code = child_main(s);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "supervise_shards[shard %zu]: %s\n", s, e.what());
        code = 2;
      }
      std::fflush(nullptr);
      ::_exit(code);
    }
    slot.pid = pid;
    slot.started_ms = now;
    slot.deadline_ms = options.timeout_sec > 0.0
                           ? now + options.timeout_sec * 1000.0
                           : kNoDeadline;
    slot.timed_out = false;
    ++slot.attempts_started;
  };

  while (open > 0) {
    const double now = now_ms();
    bool progressed = false;
    for (std::size_t s = 0; s < num_shards; ++s) {
      Slot& slot = slots[s];
      if (slot.done) continue;
      if (slot.pid < 0) {
        if (now >= slot.not_before_ms) {
          spawn(s, now);
          progressed = true;
        }
        continue;
      }
      int status = 0;
      const pid_t r = ::waitpid(slot.pid, &status, WNOHANG);
      if (r == slot.pid) {
        progressed = true;
        ShardAttempt attempt;
        attempt.elapsed_ms = now - slot.started_ms;
        if (slot.timed_out) {
          attempt.outcome = AttemptOutcome::kTimeout;
          attempt.code = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
        } else if (WIFEXITED(status)) {
          attempt.code = WEXITSTATUS(status);
          attempt.outcome = attempt.code == 0 ? AttemptOutcome::kSuccess
                                              : AttemptOutcome::kExitFailure;
        } else {
          attempt.outcome = AttemptOutcome::kSignal;
          attempt.code = WIFSIGNALED(status) ? WTERMSIG(status) : -1;
        }
        report.shards[s].attempts.push_back(attempt);
        if (attempt.outcome == AttemptOutcome::kSuccess) {
          report.shards[s].succeeded = true;
          slot.pid = -1;
          slot.done = true;
          --open;
        } else {
          record_failure(s, now);
        }
      } else if (r < 0) {
        // waitpid itself failed (should not happen): count the attempt
        // as lost rather than spinning on it forever.
        progressed = true;
        report.shards[s].attempts.push_back(
            {AttemptOutcome::kSpawnFailure, errno, now - slot.started_ms});
        record_failure(s, now);
      } else if (!slot.timed_out && now >= slot.deadline_ms) {
        // Deadline overrun: SIGKILL now, reap (and classify as
        // kTimeout) on a later poll.
        ::kill(slot.pid, SIGKILL);
        slot.timed_out = true;
        progressed = true;
      }
    }
    if (open > 0 && !progressed) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  return report;
}

}  // namespace rv::engine
