#include "engine/runner.hpp"

#include <atomic>
#include <exception>
#include <sstream>
#include <thread>
#include <utility>

#include "rendezvous/feasibility.hpp"

namespace rv::engine {

namespace {

constexpr const char* kStandardColumns[] = {
    "v",   "tau", "phi",  "chi",      "d",            "r",     "algorithm",
    "feasible", "met", "time", "distance", "min_distance", "evals", "segments"};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

ResultSet::ResultSet(std::vector<RunRecord> records)
    : records_(std::move(records)) {
  for (const RunRecord& rec : records_) {
    if (!rec.label.empty()) {
      any_label_ = true;
      break;
    }
  }
}

bool ResultSet::all_met() const {
  for (const RunRecord& rec : records_) {
    if (!rec.outcome.sim.met) return false;
  }
  return true;
}

io::CsvRow ResultSet::csv_header(const std::vector<Column>& extras) const {
  io::CsvRow header;
  if (any_label_) header.push_back("label");
  for (const char* name : kStandardColumns) header.push_back(name);
  for (const Column& col : extras) header.push_back(col.name);
  return header;
}

std::vector<io::CsvRow> ResultSet::csv_rows(
    const std::vector<Column>& extras) const {
  std::vector<io::CsvRow> rows;
  rows.reserve(records_.size());
  for (const RunRecord& rec : records_) {
    const rendezvous::Scenario& s = rec.scenario;
    const sim::SimResult& sim = rec.outcome.sim;
    io::CsvRow row;
    if (any_label_) row.push_back(rec.label);
    row.push_back(io::format_double(s.attrs.speed));
    row.push_back(io::format_double(s.attrs.time_unit));
    row.push_back(io::format_double(s.attrs.orientation));
    row.push_back(std::to_string(s.attrs.chirality));
    row.push_back(io::format_double(rec.outcome.initial_distance));
    row.push_back(io::format_double(s.visibility));
    row.push_back(rec.outcome.algorithm_name);
    row.push_back(rendezvous::is_feasible(rec.outcome.feasibility) ? "1"
                                                                   : "0");
    row.push_back(sim.met ? "1" : "0");
    row.push_back(io::format_double(sim.time));
    row.push_back(io::format_double(sim.distance));
    row.push_back(io::format_double(sim.min_distance));
    row.push_back(std::to_string(sim.evals));
    row.push_back(std::to_string(sim.segments));
    for (const Column& col : extras) row.push_back(col.value(rec));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string ResultSet::to_csv(const std::vector<Column>& extras) const {
  std::ostringstream os;
  io::CsvWriter writer(os);
  writer.header(csv_header(extras));
  for (const io::CsvRow& row : csv_rows(extras)) writer.row(row);
  return os.str();
}

std::string ResultSet::to_json(const std::vector<Column>& extras) const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const RunRecord& rec = records_[i];
    const rendezvous::Scenario& s = rec.scenario;
    const sim::SimResult& sim = rec.outcome.sim;
    os << (i == 0 ? "\n" : ",\n") << "  {";
    if (any_label_) os << "\"label\": \"" << json_escape(rec.label) << "\", ";
    os << "\"v\": " << io::format_double(s.attrs.speed)
       << ", \"tau\": " << io::format_double(s.attrs.time_unit)
       << ", \"phi\": " << io::format_double(s.attrs.orientation)
       << ", \"chi\": " << s.attrs.chirality
       << ", \"d\": " << io::format_double(rec.outcome.initial_distance)
       << ", \"r\": " << io::format_double(s.visibility)
       << ", \"algorithm\": \"" << json_escape(rec.outcome.algorithm_name)
       << "\", \"feasible\": "
       << (rendezvous::is_feasible(rec.outcome.feasibility) ? "true" : "false")
       << ", \"met\": " << (sim.met ? "true" : "false")
       << ", \"time\": " << io::format_double(sim.time)
       << ", \"distance\": " << io::format_double(sim.distance)
       << ", \"min_distance\": " << io::format_double(sim.min_distance)
       << ", \"evals\": " << sim.evals << ", \"segments\": " << sim.segments;
    for (const Column& col : extras) {
      os << ", \"" << json_escape(col.name) << "\": \""
         << json_escape(col.value(rec)) << "\"";
    }
    os << "}";
  }
  os << "\n]\n";
  return os.str();
}

io::Table ResultSet::to_table(const std::vector<Column>& extras,
                              int precision) const {
  std::vector<std::string> names;
  if (any_label_) names.push_back("label");
  for (const char* name : kStandardColumns) names.push_back(name);
  for (const Column& col : extras) names.push_back(col.name);
  io::Table table(std::move(names));
  if (any_label_) table.set_align(0, io::Align::kLeft);
  for (const RunRecord& rec : records_) {
    const rendezvous::Scenario& s = rec.scenario;
    const sim::SimResult& sim = rec.outcome.sim;
    std::vector<std::string> row;
    if (any_label_) row.push_back(rec.label);
    row.push_back(io::format_fixed(s.attrs.speed, 2));
    row.push_back(io::format_fixed(s.attrs.time_unit, 3));
    row.push_back(io::format_fixed(s.attrs.orientation, 3));
    row.push_back(std::to_string(s.attrs.chirality));
    row.push_back(io::format_fixed(rec.outcome.initial_distance, 2));
    row.push_back(io::format_fixed(s.visibility, 3));
    row.push_back(rec.outcome.algorithm_name);
    row.push_back(rendezvous::is_feasible(rec.outcome.feasibility)
                      ? "feasible"
                      : "INFEASIBLE");
    row.push_back(sim.met ? "yes" : "no");
    row.push_back(io::format_fixed(sim.time, precision));
    row.push_back(io::format_fixed(sim.distance, precision));
    row.push_back(io::format_fixed(sim.min_distance, precision));
    row.push_back(std::to_string(sim.evals));
    row.push_back(std::to_string(sim.segments));
    for (const Column& col : extras) row.push_back(col.value(rec));
    table.add_row(std::move(row));
  }
  return table;
}

ResultSet run_scenarios(const std::vector<LabeledScenario>& scenarios,
                        RunnerOptions options) {
  const std::size_t n = scenarios.size();
  std::vector<RunRecord> records(n);
  std::vector<std::exception_ptr> errors(n);

  unsigned threads =
      options.threads ? options.threads : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  if (threads > n) threads = static_cast<unsigned>(n);

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      const LabeledScenario& ls = scenarios[i];
      try {
        records[i] = RunRecord{ls.scenario, ls.label,
                               rendezvous::run_scenario(ls.scenario)};
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
  }

  for (const std::exception_ptr& err : errors) {
    if (err) std::rethrow_exception(err);
  }
  return ResultSet(std::move(records));
}

ResultSet run_scenarios(const ScenarioSet& set, RunnerOptions options) {
  return run_scenarios(set.materialize(), options);
}

}  // namespace rv::engine
