#include "engine/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "engine/failpoint.hpp"
#include "rendezvous/feasibility.hpp"

namespace rv::engine {

namespace {

constexpr const char* kRendezvousColumns[] = {
    "v",   "tau", "phi",  "chi",      "d",            "r",     "algorithm",
    "feasible", "met", "time", "distance", "min_distance", "evals", "segments"};

constexpr const char* kSearchColumns[] = {
    "d",      "r",          "angles",    "program",     "found", "missed",
    "worst_time", "mean_time", "worst_angle", "evals", "segments"};

constexpr const char* kGatherColumns[] = {
    "n",        "ring_radius",  "r",          "algorithm",
    "contact",  "contact_time", "pair_i",     "pair_j",
    "gathered", "gathered_time", "min_max_pairwise", "evals", "segments"};

constexpr const char* kLinearColumns[] = {
    "mode", "v",    "tau",      "dir",          "d",     "r",       "feasible",
    "met",  "time", "distance", "min_distance", "evals", "segments"};

constexpr const char* kCoverageColumns[] = {
    "program", "R",   "r",   "cell",           "checkpoints",
    "horizon", "t50", "t99", "final_fraction", "covered_area"};

/// Escapes a string per RFC 8259: quote, backslash, and *every*
/// control character below 0x20 (named escapes where JSON has them,
/// \u00XX otherwise).  Raw control characters in the output would make
/// the document unparseable.
std::string json_escape(const std::string& s) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(s.size() + 2);
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// JSON number token: RFC 8259 has no inf/nan literals, so non-finite
/// values are emitted as null.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  return io::format_double(v);
}

const char* gather_algorithm_name(const GatherCell& cell) {
  return cell.algorithm == rendezvous::AlgorithmChoice::kAlgorithm4
             ? "algorithm4"
             : "algorithm7";
}

}  // namespace

ResultSet::ResultSet(std::vector<RunRecord> records)
    : records_(std::move(records)) {
  for (const RunRecord& rec : records_) {
    if (!rec.label.empty()) {
      any_label_ = true;
      break;
    }
  }
}

bool ResultSet::all_met() const {
  for (const RunRecord& rec : records_) {
    switch (rec.family) {
      case Family::kRendezvous:
        if (!rec.outcome.sim.met) return false;
        break;
      case Family::kSearch:
        if (!rec.search_outcome.complete) return false;
        break;
      case Family::kGather:
        if (!rec.gather_outcome.gathered.achieved) return false;
        break;
      case Family::kLinear:
        if (!rec.linear_outcome.sim.met) return false;
        break;
      case Family::kCoverage:
        if (rec.coverage_outcome.t99 < 0.0) return false;
        break;
    }
  }
  return true;
}

ResultSet ResultSet::filtered(Family family) const {
  std::vector<RunRecord> subset;
  for (const RunRecord& rec : records_) {
    if (rec.family == family) subset.push_back(rec);
  }
  ResultSet out(std::move(subset));
  out.set_cache_stats(cache_stats_);
  return out;
}

bool ScenarioCache::lookup(const std::string& key, Entry* out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) return false;
  *out = it->second;
  return true;
}

bool ScenarioCache::contains(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return map_.find(key) != map_.end();
}

bool ScenarioCache::store(const std::string& key, Entry entry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return map_.emplace(key, std::move(entry)).second;
}

std::vector<std::pair<std::string, ScenarioCache::Entry>>
ScenarioCache::snapshot() const {
  std::vector<std::pair<std::string, Entry>> entries;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    entries.reserve(map_.size());
    // rv-lint: allow(unordered-iteration) — gathered unsorted, sorted below
    for (const auto& [key, entry] : map_) entries.emplace_back(key, entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

std::size_t ScenarioCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

void ScenarioCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
}

Family ResultSet::emission_family() const {
  Family family = records_.empty() ? Family::kRendezvous : records_[0].family;
  for (const RunRecord& rec : records_) {
    if (rec.family != family) {
      throw std::logic_error(
          "ResultSet: emission needs a homogeneous family; split mixed runs "
          "with filtered()");
    }
  }
  return family;
}

std::vector<std::string> ResultSet::component_names() const {
  std::vector<std::string> names;
  if (records_.empty()) return names;
  names.reserve(records_[0].components.size());
  for (const Component& c : records_[0].components) names.push_back(c.name);
  for (const RunRecord& rec : records_) {
    bool same = rec.components.size() == names.size();
    for (std::size_t i = 0; same && i < names.size(); ++i) {
      same = rec.components[i].name == names[i];
    }
    if (!same) {
      throw std::logic_error(
          "ResultSet: emission needs one component-column schema; records "
          "disagree on component names");
    }
  }
  return names;
}

io::CsvRow ResultSet::csv_header(const std::vector<Column>& extras) const {
  io::CsvRow header;
  if (any_label_) header.push_back("label");
  switch (emission_family()) {
    case Family::kRendezvous:
      for (const char* name : kRendezvousColumns) header.push_back(name);
      break;
    case Family::kSearch:
      for (const char* name : kSearchColumns) header.push_back(name);
      break;
    case Family::kGather:
      for (const char* name : kGatherColumns) header.push_back(name);
      break;
    case Family::kLinear:
      for (const char* name : kLinearColumns) header.push_back(name);
      break;
    case Family::kCoverage:
      for (const char* name : kCoverageColumns) header.push_back(name);
      break;
  }
  for (const std::string& name : component_names()) header.push_back(name);
  for (const Column& col : extras) header.push_back(col.name);
  return header;
}

std::vector<io::CsvRow> ResultSet::csv_rows(
    const std::vector<Column>& extras) const {
  (void)emission_family();   // reject mixed sets up front
  (void)component_names();   // reject mismatched component schemas
  std::vector<io::CsvRow> rows;
  rows.reserve(records_.size());
  for (const RunRecord& rec : records_) {
    io::CsvRow row;
    if (any_label_) row.push_back(rec.label);
    switch (rec.family) {
      case Family::kRendezvous: {
        const rendezvous::Scenario& s = rec.scenario;
        const sim::SimResult& sim = rec.outcome.sim;
        row.push_back(io::format_double(s.attrs.speed));
        row.push_back(io::format_double(s.attrs.time_unit));
        row.push_back(io::format_double(s.attrs.orientation));
        row.push_back(std::to_string(s.attrs.chirality));
        row.push_back(io::format_double(rec.outcome.initial_distance));
        row.push_back(io::format_double(s.visibility));
        row.push_back(rec.outcome.algorithm_name);
        row.push_back(rendezvous::is_feasible(rec.outcome.feasibility) ? "1"
                                                                       : "0");
        row.push_back(sim.met ? "1" : "0");
        row.push_back(io::format_double(sim.time));
        row.push_back(io::format_double(sim.distance));
        row.push_back(io::format_double(sim.min_distance));
        row.push_back(std::to_string(sim.evals));
        row.push_back(std::to_string(sim.segments));
        break;
      }
      case Family::kSearch: {
        const SearchCell& c = rec.search;
        const SearchOutcome& o = rec.search_outcome;
        row.push_back(io::format_double(c.distance));
        row.push_back(io::format_double(c.visibility));
        row.push_back(std::to_string(c.angles));
        row.push_back(o.program_name);
        row.push_back(std::to_string(o.found));
        row.push_back(std::to_string(o.missed));
        row.push_back(io::format_double(o.worst_time));
        row.push_back(io::format_double(o.mean_time));
        row.push_back(io::format_double(o.worst_angle));
        row.push_back(std::to_string(o.evals));
        row.push_back(std::to_string(o.segments));
        break;
      }
      case Family::kGather: {
        const GatherCell& c = rec.gather;
        const GatherOutcome& o = rec.gather_outcome;
        row.push_back(std::to_string(c.fleet.size()));
        row.push_back(io::format_double(c.ring_radius));
        row.push_back(io::format_double(c.visibility));
        row.push_back(gather_algorithm_name(c));
        row.push_back(o.contact.achieved ? "1" : "0");
        row.push_back(io::format_double(o.contact.time));
        row.push_back(std::to_string(o.contact.pair_i));
        row.push_back(std::to_string(o.contact.pair_j));
        row.push_back(o.gathered.achieved ? "1" : "0");
        row.push_back(io::format_double(o.gathered.time));
        row.push_back(io::format_double(o.gathered.min_max_pairwise));
        row.push_back(std::to_string(o.contact.evals + o.gathered.evals));
        row.push_back(
            std::to_string(o.contact.segments + o.gathered.segments));
        break;
      }
      case Family::kLinear: {
        const LinearCell& c = rec.linear;
        const LinearOutcome& o = rec.linear_outcome;
        row.push_back(linear_mode_name(c.mode));
        row.push_back(io::format_double(c.attrs.speed));
        row.push_back(io::format_double(c.attrs.time_unit));
        row.push_back(std::to_string(c.attrs.direction));
        row.push_back(io::format_double(c.target));
        row.push_back(io::format_double(c.visibility));
        row.push_back(o.feasible ? "1" : "0");
        row.push_back(o.sim.met ? "1" : "0");
        row.push_back(io::format_double(o.sim.time));
        row.push_back(io::format_double(o.sim.distance));
        row.push_back(io::format_double(o.sim.min_distance));
        row.push_back(std::to_string(o.sim.evals));
        row.push_back(std::to_string(o.sim.segments));
        break;
      }
      case Family::kCoverage: {
        const CoverageCell& c = rec.coverage;
        const CoverageOutcome& o = rec.coverage_outcome;
        row.push_back(o.program_name);
        row.push_back(io::format_double(c.disk_radius));
        row.push_back(io::format_double(c.visibility));
        row.push_back(io::format_double(c.cell));
        row.push_back(std::to_string(c.checkpoints));
        row.push_back(io::format_double(c.horizon));
        row.push_back(io::format_double(o.t50));
        row.push_back(io::format_double(o.t99));
        row.push_back(io::format_double(o.final_fraction));
        row.push_back(io::format_double(o.covered_area));
        break;
      }
    }
    for (const Component& c : rec.components) {
      row.push_back(io::format_double(c.value));
    }
    for (const Column& col : extras) row.push_back(col.value(rec));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string ResultSet::to_csv(const std::vector<Column>& extras) const {
  std::ostringstream os;
  io::CsvWriter writer(os);
  writer.header(csv_header(extras));
  for (const io::CsvRow& row : csv_rows(extras)) writer.row(row);
  return os.str();
}

std::string ResultSet::to_json(const std::vector<Column>& extras) const {
  (void)emission_family();   // reject mixed sets up front
  (void)component_names();   // reject mismatched component schemas
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const RunRecord& rec = records_[i];
    os << (i == 0 ? "\n" : ",\n") << "  {";
    if (any_label_) os << "\"label\": \"" << json_escape(rec.label) << "\", ";
    switch (rec.family) {
      case Family::kRendezvous: {
        const rendezvous::Scenario& s = rec.scenario;
        const sim::SimResult& sim = rec.outcome.sim;
        os << "\"v\": " << json_number(s.attrs.speed)
           << ", \"tau\": " << json_number(s.attrs.time_unit)
           << ", \"phi\": " << json_number(s.attrs.orientation)
           << ", \"chi\": " << s.attrs.chirality
           << ", \"d\": " << json_number(rec.outcome.initial_distance)
           << ", \"r\": " << json_number(s.visibility)
           << ", \"algorithm\": \"" << json_escape(rec.outcome.algorithm_name)
           << "\", \"feasible\": "
           << (rendezvous::is_feasible(rec.outcome.feasibility) ? "true"
                                                                : "false")
           << ", \"met\": " << (sim.met ? "true" : "false")
           << ", \"time\": " << json_number(sim.time)
           << ", \"distance\": " << json_number(sim.distance)
           << ", \"min_distance\": " << json_number(sim.min_distance)
           << ", \"evals\": " << sim.evals
           << ", \"segments\": " << sim.segments;
        break;
      }
      case Family::kSearch: {
        const SearchCell& c = rec.search;
        const SearchOutcome& o = rec.search_outcome;
        os << "\"d\": " << json_number(c.distance)
           << ", \"r\": " << json_number(c.visibility)
           << ", \"angles\": " << c.angles << ", \"program\": \""
           << json_escape(o.program_name) << "\", \"found\": " << o.found
           << ", \"missed\": " << o.missed
           << ", \"worst_time\": " << json_number(o.worst_time)
           << ", \"mean_time\": " << json_number(o.mean_time)
           << ", \"worst_angle\": " << json_number(o.worst_angle)
           << ", \"evals\": " << o.evals << ", \"segments\": " << o.segments;
        break;
      }
      case Family::kGather: {
        const GatherCell& c = rec.gather;
        const GatherOutcome& o = rec.gather_outcome;
        os << "\"n\": " << c.fleet.size()
           << ", \"ring_radius\": " << json_number(c.ring_radius)
           << ", \"r\": " << json_number(c.visibility) << ", \"algorithm\": \""
           << json_escape(gather_algorithm_name(c)) << "\", \"contact\": "
           << (o.contact.achieved ? "true" : "false")
           << ", \"contact_time\": " << json_number(o.contact.time)
           << ", \"pair_i\": " << o.contact.pair_i
           << ", \"pair_j\": " << o.contact.pair_j << ", \"gathered\": "
           << (o.gathered.achieved ? "true" : "false")
           << ", \"gathered_time\": " << json_number(o.gathered.time)
           << ", \"min_max_pairwise\": "
           << json_number(o.gathered.min_max_pairwise)
           << ", \"evals\": " << o.contact.evals + o.gathered.evals
           << ", \"segments\": " << o.contact.segments + o.gathered.segments;
        break;
      }
      case Family::kLinear: {
        const LinearCell& c = rec.linear;
        const LinearOutcome& o = rec.linear_outcome;
        os << "\"mode\": \"" << linear_mode_name(c.mode) << "\", \"v\": "
           << json_number(c.attrs.speed)
           << ", \"tau\": " << json_number(c.attrs.time_unit)
           << ", \"dir\": " << c.attrs.direction
           << ", \"d\": " << json_number(c.target)
           << ", \"r\": " << json_number(c.visibility)
           << ", \"feasible\": " << (o.feasible ? "true" : "false")
           << ", \"met\": " << (o.sim.met ? "true" : "false")
           << ", \"time\": " << json_number(o.sim.time)
           << ", \"distance\": " << json_number(o.sim.distance)
           << ", \"min_distance\": " << json_number(o.sim.min_distance)
           << ", \"evals\": " << o.sim.evals
           << ", \"segments\": " << o.sim.segments;
        break;
      }
      case Family::kCoverage: {
        const CoverageCell& c = rec.coverage;
        const CoverageOutcome& o = rec.coverage_outcome;
        os << "\"program\": \"" << json_escape(o.program_name)
           << "\", \"R\": " << json_number(c.disk_radius)
           << ", \"r\": " << json_number(c.visibility)
           << ", \"cell\": " << json_number(c.cell)
           << ", \"checkpoints\": " << c.checkpoints
           << ", \"horizon\": " << json_number(c.horizon)
           << ", \"t50\": " << json_number(o.t50)
           << ", \"t99\": " << json_number(o.t99)
           << ", \"final_fraction\": " << json_number(o.final_fraction)
           << ", \"covered_area\": " << json_number(o.covered_area);
        break;
      }
    }
    for (const Component& c : rec.components) {
      os << ", \"" << json_escape(c.name) << "\": " << json_number(c.value);
    }
    for (const Column& col : extras) {
      os << ", \"" << json_escape(col.name) << "\": \""
         << json_escape(col.value(rec)) << "\"";
    }
    os << "}";
  }
  os << "\n]\n";
  return os.str();
}

io::Table ResultSet::to_table(const std::vector<Column>& extras,
                              int precision) const {
  const Family family = emission_family();
  std::vector<std::string> names;
  if (any_label_) names.push_back("label");
  switch (family) {
    case Family::kRendezvous:
      for (const char* name : kRendezvousColumns) names.push_back(name);
      break;
    case Family::kSearch:
      for (const char* name : kSearchColumns) names.push_back(name);
      break;
    case Family::kGather:
      for (const char* name : kGatherColumns) names.push_back(name);
      break;
    case Family::kLinear:
      for (const char* name : kLinearColumns) names.push_back(name);
      break;
    case Family::kCoverage:
      for (const char* name : kCoverageColumns) names.push_back(name);
      break;
  }
  for (const std::string& name : component_names()) names.push_back(name);
  for (const Column& col : extras) names.push_back(col.name);
  io::Table table(std::move(names));
  if (any_label_) table.set_align(0, io::Align::kLeft);
  for (const RunRecord& rec : records_) {
    std::vector<std::string> row;
    if (any_label_) row.push_back(rec.label);
    switch (rec.family) {
      case Family::kRendezvous: {
        const rendezvous::Scenario& s = rec.scenario;
        const sim::SimResult& sim = rec.outcome.sim;
        row.push_back(io::format_fixed(s.attrs.speed, 2));
        row.push_back(io::format_fixed(s.attrs.time_unit, 3));
        row.push_back(io::format_fixed(s.attrs.orientation, 3));
        row.push_back(std::to_string(s.attrs.chirality));
        row.push_back(io::format_fixed(rec.outcome.initial_distance, 2));
        row.push_back(io::format_fixed(s.visibility, 3));
        row.push_back(rec.outcome.algorithm_name);
        row.push_back(rendezvous::is_feasible(rec.outcome.feasibility)
                          ? "feasible"
                          : "INFEASIBLE");
        row.push_back(sim.met ? "yes" : "no");
        row.push_back(io::format_fixed(sim.time, precision));
        row.push_back(io::format_fixed(sim.distance, precision));
        row.push_back(io::format_fixed(sim.min_distance, precision));
        row.push_back(std::to_string(sim.evals));
        row.push_back(std::to_string(sim.segments));
        break;
      }
      case Family::kSearch: {
        const SearchCell& c = rec.search;
        const SearchOutcome& o = rec.search_outcome;
        row.push_back(io::format_fixed(c.distance, 2));
        row.push_back(io::format_fixed(c.visibility, 4));
        row.push_back(std::to_string(c.angles));
        row.push_back(o.program_name);
        row.push_back(std::to_string(o.found));
        row.push_back(std::to_string(o.missed));
        row.push_back(io::format_fixed(o.worst_time, precision));
        row.push_back(io::format_fixed(o.mean_time, precision));
        row.push_back(io::format_fixed(o.worst_angle, 3));
        row.push_back(std::to_string(o.evals));
        row.push_back(std::to_string(o.segments));
        break;
      }
      case Family::kGather: {
        const GatherCell& c = rec.gather;
        const GatherOutcome& o = rec.gather_outcome;
        row.push_back(std::to_string(c.fleet.size()));
        row.push_back(io::format_fixed(c.ring_radius, 2));
        row.push_back(io::format_fixed(c.visibility, 3));
        row.push_back(gather_algorithm_name(c));
        row.push_back(o.contact.achieved ? "yes" : "no");
        row.push_back(io::format_fixed(o.contact.time, precision));
        row.push_back(std::to_string(o.contact.pair_i));
        row.push_back(std::to_string(o.contact.pair_j));
        row.push_back(o.gathered.achieved ? "yes" : "no");
        row.push_back(io::format_fixed(o.gathered.time, precision));
        row.push_back(io::format_fixed(o.gathered.min_max_pairwise, precision));
        row.push_back(std::to_string(o.contact.evals + o.gathered.evals));
        row.push_back(
            std::to_string(o.contact.segments + o.gathered.segments));
        break;
      }
      case Family::kLinear: {
        const LinearCell& c = rec.linear;
        const LinearOutcome& o = rec.linear_outcome;
        row.push_back(linear_mode_name(c.mode));
        row.push_back(io::format_fixed(c.attrs.speed, 2));
        row.push_back(io::format_fixed(c.attrs.time_unit, 3));
        row.push_back(std::to_string(c.attrs.direction));
        row.push_back(io::format_fixed(c.target, 2));
        row.push_back(io::format_fixed(c.visibility, 3));
        row.push_back(o.feasible ? "feasible" : "INFEASIBLE");
        row.push_back(o.sim.met ? "yes" : "no");
        row.push_back(io::format_fixed(o.sim.time, precision));
        row.push_back(io::format_fixed(o.sim.distance, precision));
        row.push_back(io::format_fixed(o.sim.min_distance, precision));
        row.push_back(std::to_string(o.sim.evals));
        row.push_back(std::to_string(o.sim.segments));
        break;
      }
      case Family::kCoverage: {
        const CoverageCell& c = rec.coverage;
        const CoverageOutcome& o = rec.coverage_outcome;
        row.push_back(o.program_name);
        row.push_back(io::format_fixed(c.disk_radius, 2));
        row.push_back(io::format_fixed(c.visibility, 3));
        row.push_back(io::format_fixed(c.cell, 3));
        row.push_back(std::to_string(c.checkpoints));
        row.push_back(io::format_fixed(c.horizon, 0));
        row.push_back(o.t50 >= 0.0 ? io::format_fixed(o.t50, precision)
                                   : ">horizon");
        row.push_back(o.t99 >= 0.0 ? io::format_fixed(o.t99, precision)
                                   : ">horizon");
        row.push_back(io::format_fixed(o.final_fraction, 4));
        row.push_back(io::format_fixed(o.covered_area, precision));
        break;
      }
    }
    for (const Component& c : rec.components) {
      row.push_back(io::format_fixed(c.value, precision));
    }
    for (const Column& col : extras) row.push_back(col.value(rec));
    table.add_row(std::move(row));
  }
  return table;
}

ResultSet run_scenarios(const std::vector<WorkItem>& work,
                        RunnerOptions options) {
  const std::size_t n = work.size();
  std::vector<RunRecord> records(n);
  std::vector<std::exception_ptr> errors(n);

  unsigned threads =
      options.threads ? options.threads : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  if (threads > n) threads = static_cast<unsigned>(n);

  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> hits{0}, misses{0}, uncacheable{0};
  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      const WorkItem& item = work[i];
      try {
        // Chaos site: an `error` action lands in this catch and
        // surfaces through ResultSet like any scenario failure.
        RV_FAILPOINT_AT("runner.work.item", i);
        RunRecord rec;
        rec.family = item.family;
        rec.label = item.label;
        switch (item.family) {
          case Family::kRendezvous:
            rec.scenario = item.scenario;
            break;
          case Family::kSearch:
            rec.search = item.search;
            break;
          case Family::kGather:
            rec.gather = item.gather;
            break;
          case Family::kLinear:
            rec.linear = item.linear;
            break;
          case Family::kCoverage:
            rec.coverage = item.coverage;
            break;
        }

        // Memoization: replay an identical cell's outcome instead of
        // recomputing it.  Outcomes are pure functions of the content
        // key, so the replayed record is byte-identical to a computed
        // one in every emitter.
        std::optional<std::string> key;
        ScenarioCache::Entry entry;
        bool hit = false;
        if (options.cache) {
          key = cache_key(item);
          if (!key) {
            uncacheable.fetch_add(1, std::memory_order_relaxed);
          } else if (options.cache->lookup(*key, &entry)) {
            hit = true;
            hits.fetch_add(1, std::memory_order_relaxed);
          } else {
            misses.fetch_add(1, std::memory_order_relaxed);
          }
        }

        if (hit) {
          rec.outcome = std::move(entry.outcome);
          rec.search_outcome = std::move(entry.search_outcome);
          rec.gather_outcome = std::move(entry.gather_outcome);
          rec.linear_outcome = std::move(entry.linear_outcome);
          rec.coverage_outcome = std::move(entry.coverage_outcome);
        } else if (!item.components_only) {
          switch (item.family) {
            case Family::kRendezvous:
              rec.outcome = rendezvous::run_scenario(item.scenario);
              break;
            case Family::kSearch:
              rec.search_outcome = run_search_cell(item.search);
              break;
            case Family::kGather:
              rec.gather_outcome = run_gather_cell(item.gather);
              break;
            case Family::kLinear:
              rec.linear_outcome = run_linear_cell(item.linear);
              break;
            case Family::kCoverage:
              rec.coverage_outcome = run_coverage_cell(item.coverage);
              break;
          }
          if (key) {
            entry.outcome = rec.outcome;
            entry.search_outcome = rec.search_outcome;
            entry.gather_outcome = rec.gather_outcome;
            entry.linear_outcome = rec.linear_outcome;
            entry.coverage_outcome = rec.coverage_outcome;
            options.cache->store(*key, std::move(entry));
          }
        }
        // Component times are evaluated on every run — computed and
        // replayed cells alike — so caching stays oblivious to the
        // (identity-less) hook functions.
        if (item.components) rec.components = item.components(rec);
        records[i] = std::move(rec);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
  }

  for (const std::exception_ptr& err : errors) {
    if (err) std::rethrow_exception(err);
  }
  ResultSet result(std::move(records));
  result.set_cache_stats(
      {hits.load(), misses.load(), uncacheable.load()});
  return result;
}

ResultSet run_scenarios(const std::vector<LabeledScenario>& scenarios,
                        RunnerOptions options) {
  std::vector<WorkItem> work;
  work.reserve(scenarios.size());
  for (const LabeledScenario& ls : scenarios) {
    WorkItem item;
    item.family = Family::kRendezvous;
    item.label = ls.label;
    item.scenario = ls.scenario;
    work.push_back(std::move(item));
  }
  return run_scenarios(work, options);
}

ResultSet run_scenarios(const ScenarioSet& set, RunnerOptions options) {
  return run_scenarios(set.materialize_work(), options);
}

}  // namespace rv::engine
