#pragma once

/// \file shard.hpp
/// Deterministic partitioning of a `ScenarioSet`'s work across
/// processes.
///
/// A `ScenarioSet` materialises into a fixed, documented work-item
/// order (engine/scenario_set.hpp), and `ResultSet` emission is a pure
/// function of the records in that order.  Sharding exploits exactly
/// that: `shard_plan(total, s, N)` assigns every *global item index*
/// `i` with `i % N == s` to shard `s` — a stable, input-independent
/// rule — so any partition of the grid can be executed anywhere (other
/// threads, other processes, other machines) and reassembled by global
/// index into the **byte-identical** single-process table/CSV/JSON.
///
/// Two reassembly paths exist:
///
///  * in-process — `merge_shards` places each shard's records back at
///    their global indices (`run_sharded` is the one-call version used
///    by the tests to pin shard-count invariance);
///  * cross-process — each `rv_batch run --shard s/N` process persists
///    its computed outcomes to a cache file (engine/cache_store.hpp);
///    the merge process loads every shard file into one
///    `ScenarioCache` and runs the *full* set warm, replaying every
///    outcome (all hits, no recomputation) into the single-process
///    emission.  Cached outcomes replay bit-for-bit, so both paths
///    produce the same bytes.

#include <cstddef>
#include <string>
#include <vector>

#include "engine/families.hpp"
#include "engine/runner.hpp"
#include "engine/scenario_set.hpp"

namespace rv::engine {

/// The work-item indices one shard owns.
struct ShardPlan {
  std::size_t shard = 0;       ///< this shard's id in [0, num_shards)
  std::size_t num_shards = 1;  ///< total shards of the partition
  std::size_t total = 0;       ///< work items in the full set
  /// Global indices owned by this shard, ascending (i % num_shards ==
  /// shard).  The strided rule interleaves neighbouring grid cells —
  /// which tend to cost alike — across shards, so shards balance
  /// without a cost model.
  std::vector<std::size_t> indices;
};

/// Builds the plan of shard `shard` of `num_shards` over `total` items.
/// \throws std::invalid_argument when num_shards == 0 or shard >=
/// num_shards.  (num_shards > total is fine: trailing shards are
/// empty.)
[[nodiscard]] ShardPlan shard_plan(std::size_t total, std::size_t shard,
                                   std::size_t num_shards);

/// The sub-list of `work` owned by `plan`, in plan (ascending global
/// index) order.  \throws std::invalid_argument when the plan's total
/// does not match `work.size()`.
[[nodiscard]] std::vector<WorkItem> shard_work(
    const std::vector<WorkItem>& work, const ShardPlan& plan);

/// Runs only the plan's items (records come back in plan order — pass
/// them to `merge_shards` to restore global order).
[[nodiscard]] ResultSet run_shard(const std::vector<WorkItem>& work,
                                  const ShardPlan& plan,
                                  RunnerOptions options = {});

/// One shard's executed slice, ready to merge.
struct ShardResult {
  ShardPlan plan;
  ResultSet results;  ///< records in plan order (as returned by run_shard)
};

/// The canonical cache file name of one shard of a set:
/// `<set>-shard-<I>-of-<N>.rvcache` (a "<set>" placeholder stands in
/// when `set_name` is empty).  This is the file `rv_batch run --shard
/// I/N --cache-dir` writes and the one merge diagnostics point
/// operators at.
[[nodiscard]] std::string shard_file_name(const std::string& set_name,
                                          std::size_t shard,
                                          std::size_t num_shards);

/// Reassembles per-shard results into the single-process `ResultSet`:
/// every record is placed at its global index and the shards' cache
/// counters are summed.  \throws std::invalid_argument when the plans
/// disagree on total/num_shards, a slice's size does not match its
/// plan, or the union does not cover every index exactly once — the
/// incomplete/duplicate messages name the affected global indices and
/// the shard cache file (via `set_name`) to re-drive.
[[nodiscard]] ResultSet merge_shards(const std::vector<ShardResult>& shards,
                                     const std::string& set_name = "");

/// Convenience: materialises `set`, runs all `num_shards` shards as
/// separate `run_scenarios` calls (sequentially, sharing `options` —
/// including its cache, as cross-process merges do), and merges.  The
/// result is byte-identical to `run_scenarios(set, options)` for any
/// shard count — the invariance the golden tests pin.
[[nodiscard]] ResultSet run_sharded(const ScenarioSet& set,
                                    std::size_t num_shards,
                                    RunnerOptions options = {});

}  // namespace rv::engine
