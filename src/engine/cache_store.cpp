#include "engine/cache_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <ratio>
#include <stdexcept>

#include "engine/failpoint.hpp"
#include "engine/wire.hpp"

namespace rv::engine {

namespace {

constexpr char kHeader[] = "RVCACHE\x01";  // 8 bytes: magic + format version
constexpr std::size_t kHeaderSize = 12;    // magic + u32 engine epoch
constexpr std::uint32_t kRecordMagic = 0x52435245;  // "ERCR" little-endian
/// Upper bound on a single key/payload size a reader will believe.  A
/// corrupt length field larger than this is treated as garbage instead
/// of an allocation request.
constexpr std::uint32_t kMaxFieldSize = 1u << 28;

// --- primitive encoders (wire::put is the shared fixed-width memcpy
// core; doubles go through it raw, so every value — including -0.0 and
// the exact bit pattern of computed results — round-trips identically)
// ---------------------------------------------------------------------------

using wire::put;

void put_bool(std::string& out, bool v) {
  put<std::uint8_t>(out, v ? 1 : 0);
}

void put_str(std::string& out, const std::string& s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

/// Bounds-checked sequential reader over a payload.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  template <typename T>
  bool get(T* v) {
    if (data_.size() - pos_ < sizeof(T)) return ok_ = false;
    std::memcpy(v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool get_bool(bool* v) {
    std::uint8_t byte = 0;
    if (!get(&byte)) return false;
    *v = byte != 0;
    return true;
  }

  bool get_str(std::string* s) {
    std::uint32_t size = 0;
    if (!get(&size)) return false;
    if (size > kMaxFieldSize || data_.size() - pos_ < size) {
      return ok_ = false;
    }
    s->assign(data_.data() + pos_, size);
    pos_ += size;
    return true;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- outcome payloads ------------------------------------------------------

void put_sim_result(std::string& out, const sim::SimResult& r) {
  put_bool(out, r.met);
  put(out, r.time);
  put(out, r.distance);
  put(out, r.min_distance);
  put(out, r.min_distance_time);
  put(out, r.position1.x);
  put(out, r.position1.y);
  put(out, r.position2.x);
  put(out, r.position2.y);
  put(out, r.evals);
  put(out, r.segments);
}

bool get_sim_result(Reader& in, sim::SimResult* r) {
  return in.get_bool(&r->met) && in.get(&r->time) && in.get(&r->distance) &&
         in.get(&r->min_distance) && in.get(&r->min_distance_time) &&
         in.get(&r->position1.x) && in.get(&r->position1.y) &&
         in.get(&r->position2.x) && in.get(&r->position2.y) &&
         in.get(&r->evals) && in.get(&r->segments);
}

void put_gather_result(std::string& out, const gather::GatherResult& r) {
  put_bool(out, r.achieved);
  put(out, r.time);
  put<std::int32_t>(out, r.pair_i);
  put<std::int32_t>(out, r.pair_j);
  put(out, r.max_pairwise);
  put(out, r.min_max_pairwise);
  put(out, r.evals);
  put(out, r.segments);
}

bool get_gather_result(Reader& in, gather::GatherResult* r) {
  std::int32_t pair_i = 0, pair_j = 0;
  if (!(in.get_bool(&r->achieved) && in.get(&r->time) && in.get(&pair_i) &&
        in.get(&pair_j) && in.get(&r->max_pairwise) &&
        in.get(&r->min_max_pairwise) && in.get(&r->evals) &&
        in.get(&r->segments))) {
    return false;
  }
  r->pair_i = pair_i;
  r->pair_j = pair_j;
  return true;
}

/// FNV-1a 64-bit over the record's key + payload bytes: cheap, strong
/// enough to reject torn writes and bit rot, no dependency.
std::uint64_t fnv1a64(std::string_view key, std::string_view payload) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  const auto mix = [&hash](std::string_view bytes) {
    for (const char c : bytes) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 0x100000001b3ull;
    }
  };
  mix(key);
  mix(payload);
  return hash;
}

}  // namespace

void CacheLoadStats::add(const CacheLoadStats& other) {
  files += other.files;
  loaded += other.loaded;
  duplicates += other.duplicates;
  skipped += other.skipped;
  bad_files += other.bad_files;
}

std::string serialize_entry(const std::string& key,
                            const ScenarioCache::Entry& entry) {
  if (key.empty()) {
    throw std::invalid_argument("serialize_entry: empty cache key");
  }
  std::string out;
  switch (key[0]) {
    case 'R': {
      const rendezvous::Outcome& o = entry.outcome;
      put_sim_result(out, o.sim);
      put<std::int32_t>(out, static_cast<std::int32_t>(o.feasibility));
      put(out, o.initial_distance);
      put_str(out, o.algorithm_name);
      return out;
    }
    case 'S': {
      const SearchOutcome& o = entry.search_outcome;
      put<std::int32_t>(out, o.found);
      put<std::int32_t>(out, o.missed);
      put_bool(out, o.complete);
      put(out, o.worst_time);
      put(out, o.mean_time);
      put(out, o.worst_angle);
      put(out, o.first_miss_angle);
      put_str(out, o.program_name);
      put(out, o.evals);
      put(out, o.segments);
      return out;
    }
    case 'G': {
      put_gather_result(out, entry.gather_outcome.contact);
      put_gather_result(out, entry.gather_outcome.gathered);
      return out;
    }
    case 'L': {
      put_bool(out, entry.linear_outcome.feasible);
      put_sim_result(out, entry.linear_outcome.sim);
      return out;
    }
    case 'C': {
      const CoverageOutcome& o = entry.coverage_outcome;
      put<std::uint32_t>(out, static_cast<std::uint32_t>(o.series.size()));
      for (const analysis::CoveragePoint& p : o.series) {
        put(out, p.time);
        put(out, p.fraction);
        put(out, p.covered_area);
      }
      put_str(out, o.program_name);
      put(out, o.t50);
      put(out, o.t99);
      put(out, o.final_fraction);
      put(out, o.covered_area);
      return out;
    }
    default:
      throw std::invalid_argument(
          "serialize_entry: unknown family byte in cache key");
  }
}

bool deserialize_entry(const std::string& key, std::string_view payload,
                       ScenarioCache::Entry* entry) {
  if (key.empty()) return false;
  *entry = ScenarioCache::Entry{};
  Reader in(payload);
  bool decoded = false;
  switch (key[0]) {
    case 'R': {
      rendezvous::Outcome& o = entry->outcome;
      std::int32_t feasibility = 0;
      decoded = get_sim_result(in, &o.sim) && in.get(&feasibility) &&
                in.get(&o.initial_distance) && in.get_str(&o.algorithm_name);
      o.feasibility = static_cast<rendezvous::FeasibilityClass>(feasibility);
      break;
    }
    case 'S': {
      SearchOutcome& o = entry->search_outcome;
      std::int32_t found = 0, missed = 0;
      decoded = in.get(&found) && in.get(&missed) &&
                in.get_bool(&o.complete) && in.get(&o.worst_time) &&
                in.get(&o.mean_time) && in.get(&o.worst_angle) &&
                in.get(&o.first_miss_angle) && in.get_str(&o.program_name) &&
                in.get(&o.evals) && in.get(&o.segments);
      o.found = found;
      o.missed = missed;
      break;
    }
    case 'G':
      decoded = get_gather_result(in, &entry->gather_outcome.contact) &&
                get_gather_result(in, &entry->gather_outcome.gathered);
      break;
    case 'L':
      decoded = in.get_bool(&entry->linear_outcome.feasible) &&
                get_sim_result(in, &entry->linear_outcome.sim);
      break;
    case 'C': {
      CoverageOutcome& o = entry->coverage_outcome;
      std::uint32_t count = 0;
      // The count is untrusted until proven payable: each point costs
      // 3 doubles of payload, so a count the remaining bytes cannot
      // cover is corruption — reject it *before* allocating.
      decoded = in.get(&count) &&
                count <= in.remaining() / (3 * sizeof(double));
      if (decoded) {
        o.series.resize(count);
        for (analysis::CoveragePoint& p : o.series) {
          if (!(in.get(&p.time) && in.get(&p.fraction) &&
                in.get(&p.covered_area))) {
            decoded = false;
            break;
          }
        }
        decoded = decoded && in.get_str(&o.program_name) && in.get(&o.t50) &&
                  in.get(&o.t99) && in.get(&o.final_fraction) &&
                  in.get(&o.covered_area);
      }
      break;
    }
    default:
      return false;
  }
  // Trailing bytes mean the payload does not actually encode this
  // family's outcome — treat the record as corrupt.
  return decoded && in.ok() && in.exhausted();
}

void save_cache_file(const std::filesystem::path& path,
                     const ScenarioCache& cache) {
  std::string out(kHeader, 8);
  put<std::uint32_t>(out, kEngineCacheEpoch);
  for (const auto& [key, entry] : cache.snapshot()) {
    const std::string payload = serialize_entry(key, entry);
    put<std::uint32_t>(out, kRecordMagic);
    put<std::uint32_t>(out, static_cast<std::uint32_t>(key.size()));
    put<std::uint32_t>(out, static_cast<std::uint32_t>(payload.size()));
    out += key;
    out += payload;
    put<std::uint64_t>(out, fnv1a64(key, payload));
  }
  if (!path.parent_path().empty()) {
    std::filesystem::create_directories(path.parent_path());
  }
  // Write-then-fsync-then-rename so neither a concurrent reader
  // (another shard warm-loading the directory) nor a crash can ever
  // observe a half-written file under the *final* name; the pid
  // suffix keeps retried duplicates of the same shard from
  // interleaving on one temp file.
  const std::filesystem::path tmp =
      path.string() + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    throw std::runtime_error("save_cache_file: cannot create " + tmp.string());
  }
  bool ok = true;
  std::size_t off = 0;
  while (ok && off < out.size()) {
    const ssize_t n = ::write(fd, out.data() + off, out.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
    } else {
      off += static_cast<std::size_t>(n);
    }
  }
  // The crash/torn-write window the chaos suite targets: bytes are
  // written but the file is not yet durable or published.  A `crash`
  // here leaves only the temp file (never a torn final file); a
  // `torn_write(n)` truncates to n bytes and lets publication proceed,
  // exercising the loader's per-record checksum recovery.
  const failpoint::Hit torn = RV_FAILPOINT_EVAL("cache_store.save.pre_rename");
  if (torn.fired && torn.action == failpoint::Action::kTornWrite) {
    const std::uint64_t keep =
        std::min<std::uint64_t>(torn.arg, static_cast<std::uint64_t>(out.size()));
    ok = ok && ::ftruncate(fd, static_cast<off_t>(keep)) == 0;
  }
  // fsync before the rename: the rename must never become durable
  // ahead of the data it publishes.
  ok = ok && ::fsync(fd) == 0;
  ok = (::close(fd) == 0) && ok;
  if (!ok) {
    std::error_code rm_ec;
    std::filesystem::remove(tmp, rm_ec);
    throw std::runtime_error("save_cache_file: cannot write " + tmp.string());
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("save_cache_file: cannot publish " +
                             path.string());
  }
  // ...and fsync the directory after, so the rename itself survives a
  // power cut.  Best effort: some filesystems refuse O_RDONLY opens of
  // directories, and the data above is already safe.
  const std::filesystem::path parent =
      path.parent_path().empty() ? std::filesystem::path(".")
                                 : path.parent_path();
  const int dirfd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd >= 0) {
    (void)::fsync(dirfd);
    (void)::close(dirfd);
  }
}

std::vector<std::filesystem::path> list_cache_files(
    const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return files;
  for (const auto& dir_entry : std::filesystem::directory_iterator(dir, ec)) {
    if (dir_entry.is_regular_file() &&
        dir_entry.path().extension() == kCacheFileExtension) {
      files.push_back(dir_entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

CacheLoadStats load_cache_file(const std::filesystem::path& path,
                               ScenarioCache* cache) {
  CacheLoadStats stats;
  std::error_code size_ec;
  const std::uintmax_t file_size =
      std::filesystem::file_size(path, size_ec);
  std::ifstream file(path, std::ios::binary);
  if (!file || size_ec) {
    stats.bad_files = 1;
    return stats;
  }
  // One allocation, one read — cache files can be large and every
  // warm-load touches all of them.
  std::string data(static_cast<std::size_t>(file_size), '\0');
  file.read(data.data(), static_cast<std::streamsize>(data.size()));
  if (!file || static_cast<std::uintmax_t>(file.gcount()) != file_size) {
    stats.bad_files = 1;
    return stats;
  }
  std::uint32_t epoch = 0;
  if (data.size() >= kHeaderSize) std::memcpy(&epoch, data.data() + 8, 4);
  if (data.size() < kHeaderSize || std::memcmp(data.data(), kHeader, 8) != 0 ||
      epoch != kEngineCacheEpoch) {
    // Wrong magic, format, or engine epoch: outcomes written by a
    // different engine generation must not replay as current results.
    stats.bad_files = 1;
    return stats;
  }
  stats.files = 1;

  // Sequential record scan.  Any inconsistency — wrong magic, absurd
  // sizes, truncation, checksum mismatch, undecodable payload —
  // resynchronises on the next occurrence of the record magic, so a
  // corrupt region costs its own records and one substring search, not
  // a byte-by-byte re-validation.  `skipped` counts contiguous corrupt
  // regions, not bytes; a pathological file full of fake magics gives
  // up after kMaxFailedRecords attempts instead of grinding
  // quadratically.
  constexpr std::size_t kMaxFailedRecords = 1024;
  const std::string magic_bytes(reinterpret_cast<const char*>(&kRecordMagic),
                                sizeof(kRecordMagic));
  std::size_t pos = kHeaderSize;
  std::size_t failed_records = 0;
  bool in_bad_region = false;
  const auto flag_bad = [&] {
    if (!in_bad_region) {
      ++stats.skipped;
      in_bad_region = true;
    }
    if (++failed_records >= kMaxFailedRecords) {
      pos = data.size();  // give up on the remainder, keep what loaded
      return;
    }
    const std::size_t next = data.find(magic_bytes, pos + 1);
    pos = next == std::string::npos ? data.size() : next;
  };
  while (pos < data.size()) {
    // Chaos site for load-path faults: an `error` action turns a
    // record parse into a thrown failure (so a shard warm-load can be
    // made to die and exercise the supervisor's retry), a `delay`
    // slows the load for timeout testing.
    RV_FAILPOINT("cache_store.load.record");
    const std::size_t remaining = data.size() - pos;
    if (remaining < 12) {  // record header: magic + key_size + payload_size
      flag_bad();
      continue;
    }
    std::uint32_t magic = 0, key_size = 0, payload_size = 0;
    std::memcpy(&magic, data.data() + pos, 4);
    std::memcpy(&key_size, data.data() + pos + 4, 4);
    std::memcpy(&payload_size, data.data() + pos + 8, 4);
    if (magic != kRecordMagic || key_size == 0 || key_size > kMaxFieldSize ||
        payload_size > kMaxFieldSize ||
        remaining < 12 + std::size_t{key_size} + payload_size + 8) {
      flag_bad();
      continue;
    }
    const char* base = data.data() + pos + 12;
    const std::string key(base, key_size);
    const std::string_view payload(base + key_size, payload_size);
    std::uint64_t checksum = 0;
    std::memcpy(&checksum, base + key_size + payload_size, 8);
    ScenarioCache::Entry entry;
    if (checksum != fnv1a64(key, payload) ||
        !deserialize_entry(key, payload, &entry)) {
      flag_bad();
      continue;
    }
    in_bad_region = false;
    if (cache->store(key, std::move(entry))) {
      ++stats.loaded;
    } else {
      ++stats.duplicates;
    }
    pos += 12 + std::size_t{key_size} + payload_size + 8;
  }
  return stats;
}

CacheLoadStats load_cache_dir(const std::filesystem::path& dir,
                              ScenarioCache* cache) {
  CacheLoadStats stats;
  for (const std::filesystem::path& file : list_cache_files(dir)) {
    stats.add(load_cache_file(file, cache));
  }
  return stats;
}

CacheLoadStats merge_cache_files(
    const std::vector<std::filesystem::path>& inputs,
    const std::filesystem::path& output,
    std::vector<CacheLoadStats>* per_file) {
  // `output` may alias an input: all loads complete before the save
  // starts, and the save is atomic-by-rename (see save_cache_file), so
  // an aliased input is replaced in one step, never torn.
  ScenarioCache merged;
  CacheLoadStats stats;
  for (const std::filesystem::path& input : inputs) {
    const CacheLoadStats file_stats = load_cache_file(input, &merged);
    if (per_file != nullptr) per_file->push_back(file_stats);
    stats.add(file_stats);
  }
  save_cache_file(output, merged);
  return stats;
}

CompactResult compact_cache_dir(const std::filesystem::path& dir,
                                const CompactOptions& options) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) {
    throw std::runtime_error("compact_cache_dir: not a directory: " +
                             dir.string());
  }
  CompactResult result;
  result.output = dir / options.output_name;

  struct Input {
    fs::path path;
    fs::file_time_type mtime;
    std::uintmax_t bytes = 0;
  };
  std::vector<Input> inputs;
  for (const fs::path& file : list_cache_files(dir)) {
    std::error_code ec;
    Input input;
    input.path = file;
    input.mtime = fs::last_write_time(file, ec);
    if (!ec) input.bytes = fs::file_size(file, ec);
    if (ec) continue;  // vanished between listing and stat: nothing to do
    inputs.push_back(std::move(input));
  }

  // Age eviction: anything older than the cutoff never gets merged.
  std::vector<Input> evicted_age;
  if (options.max_age_days > 0.0) {
    const auto now = fs::file_time_type::clock::now();
    const auto limit = std::chrono::duration_cast<fs::file_time_type::duration>(
        std::chrono::duration<double, std::ratio<86400>>(options.max_age_days));
    const fs::file_time_type cutoff = now - limit;
    std::vector<Input> kept;
    for (Input& input : inputs) {
      (input.mtime < cutoff ? evicted_age : kept).push_back(std::move(input));
    }
    inputs = std::move(kept);
  }

  // Byte budget: evict oldest first (mtime, then path — deterministic)
  // until the surviving inputs fit.
  const auto oldest_first = [](const Input& a, const Input& b) {
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.path < b.path;
  };
  std::sort(evicted_age.begin(), evicted_age.end(), oldest_first);
  std::vector<Input> evicted_budget;
  if (options.max_bytes > 0) {
    std::sort(inputs.begin(), inputs.end(), oldest_first);
    std::uintmax_t total = 0;
    for (const Input& input : inputs) total += input.bytes;
    std::size_t victim = 0;
    while (victim < inputs.size() && total > options.max_bytes) {
      total -= inputs[victim].bytes;
      evicted_budget.push_back(std::move(inputs[victim]));
      ++victim;
    }
    inputs.erase(inputs.begin(), inputs.begin() + victim);
  }

  // Merge the survivors in sorted-file-name order — the same order and
  // first-writer-wins rule as load_cache_dir, so a warm run sees
  // identical entries before and after compaction.  The previous
  // output file, when present, is among the inputs (merge_cache_files
  // is alias-safe).
  std::vector<fs::path> merge_paths;
  merge_paths.reserve(inputs.size());
  for (const Input& input : inputs) merge_paths.push_back(input.path);
  std::sort(merge_paths.begin(), merge_paths.end());
  std::vector<CacheLoadStats> per_file;
  result.stats = merge_cache_files(merge_paths, result.output, &per_file);
  result.entries = result.stats.loaded;
  for (std::size_t i = 0; i < merge_paths.size(); ++i) {
    CompactResult::FileReport report;
    report.path = merge_paths[i];
    report.stats = per_file[i];
    report.disposition = per_file[i].bad_files > 0
                             ? CompactResult::Disposition::kDroppedBad
                             : CompactResult::Disposition::kMerged;
    result.files.push_back(std::move(report));
  }
  for (const Input& input : evicted_age) {
    result.files.push_back(CompactResult::FileReport{
        input.path, CompactResult::Disposition::kEvictedAge, {}});
  }
  for (const Input& input : evicted_budget) {
    result.files.push_back(CompactResult::FileReport{
        input.path, CompactResult::Disposition::kEvictedBudget, {}});
  }

  // The output is safely on disk (atomic rename): delete every
  // original input, evicted or merged, except the output itself.
  for (const CompactResult::FileReport& report : result.files) {
    if (report.path == result.output) continue;
    std::error_code ec;
    fs::remove(report.path, ec);  // a vanished input is already gone
  }
  std::error_code ec;
  result.output_bytes = fs::file_size(result.output, ec);
  if (ec) result.output_bytes = 0;
  return result;
}

}  // namespace rv::engine
