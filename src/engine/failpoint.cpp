#include "engine/failpoint.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "mathx/rng.hpp"

namespace rv::engine::failpoint {

namespace {

/// Counter-slab capacity.  256 entries × 16 bytes = one page; a spec
/// arming more than 256 failpoints is a configuration error.
constexpr std::size_t kMaxEntries = 256;

constexpr std::uint64_t kDefaultSeed = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kDefaultCrashCode = 86;
constexpr std::uint64_t kDefaultDelayMs = 100;

/// One armed spec entry.  Immutable once published (hit_slow reads a
/// snapshot pointer); the mutable state lives in the counter slab.
struct Entry {
  std::string site;
  Action action = Action::kError;
  std::uint64_t arg = 0;
  std::uint64_t one_in = 1;   ///< fire each hit with probability 1/one_in
  std::uint64_t after = 0;    ///< ignore the first `after` hits
  std::uint64_t limit = 0;    ///< at most `limit` fires (0 = unlimited)
  std::size_t index = kAnyIndex;  ///< only hits reporting this index
  std::uint64_t seed = kDefaultSeed;
  std::size_t slot = 0;       ///< counter-slab slot
};

/// Per-entry counters.  The slab is MAP_SHARED so forked children
/// (shard workers, supervisor retries) increment the same memory: a
/// `limit=1` budget spent by a crashed child stays spent in its
/// retry.  Plain 64-bit atomics are address-free, which is exactly
/// what cross-process shared memory requires.
struct Counters {
  std::atomic<std::uint64_t> hits;
  std::atomic<std::uint64_t> fires;
};
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "failpoint counters must be lock-free to share across fork");

Counters* slab() {
  static Counters* shared = [] {
    void* mem = ::mmap(nullptr, kMaxEntries * sizeof(Counters),
                       PROT_READ | PROT_WRITE, MAP_SHARED | MAP_ANONYMOUS,
                       -1, 0);
    if (mem != MAP_FAILED) return static_cast<Counters*>(mem);
    // No shared mapping (exotic sandbox): fall back to process-local
    // counters — everything still works except cross-fork budgets.
    return new Counters[kMaxEntries]();
  }();
  return shared;
}

std::mutex& arm_mutex() {
  static std::mutex m;
  return m;
}

/// The armed snapshot.  Readers load the pointer once; writers build a
/// new vector under the mutex and retire the old one to a graveyard
/// (kept reachable so in-flight readers stay valid and leak checkers
/// stay quiet).
std::atomic<const std::vector<Entry>*> g_entries{nullptr};
std::vector<std::unique_ptr<const std::vector<Entry>>>& graveyard() {
  static std::vector<std::unique_ptr<const std::vector<Entry>>> g;
  return g;
}
std::size_t g_next_slot = 0;  // guarded by arm_mutex()

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

[[noreturn]] void bad_spec(const std::string& why) {
  throw std::invalid_argument("RV_FAILPOINTS: " + why);
}

std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  std::size_t end = 0;
  std::uint64_t value = 0;
  try {
    value = std::stoull(text, &end);
  } catch (const std::exception&) {
    bad_spec(what + " expects an unsigned integer, got '" + text + "'");
  }
  if (end != text.size() || text.empty() || text[0] == '-') {
    bad_spec(what + " expects an unsigned integer, got '" + text + "'");
  }
  return value;
}

bool valid_site_name(std::string_view site) {
  if (site.empty()) return false;
  for (const char c : site) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

/// Parses one `site=action[(arg)][,trigger]...` entry (slot unset).
Entry parse_entry(const std::string& text) {
  const std::size_t eq = text.find('=');
  if (eq == std::string::npos) {
    bad_spec("entry '" + text + "' has no '=' (want site=action[,trigger]*)");
  }
  Entry entry;
  entry.site = text.substr(0, eq);
  if (!valid_site_name(entry.site)) {
    bad_spec("site name '" + entry.site + "' must match [a-z0-9_.]+");
  }
  // Split the right-hand side on ',' — first token is the action, the
  // rest are triggers.
  std::vector<std::string> tokens;
  std::size_t pos = eq + 1;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    tokens.push_back(text.substr(pos, comma - pos));
    pos = comma + 1;
  }
  const std::string& action = tokens[0];
  std::string name = action;
  std::string arg;
  bool has_arg = false;
  const std::size_t open = action.find('(');
  if (open != std::string::npos) {
    if (action.back() != ')') {
      bad_spec("malformed action '" + action + "' (unbalanced parentheses)");
    }
    name = action.substr(0, open);
    arg = action.substr(open + 1, action.size() - open - 2);
    has_arg = true;
  }
  if (name == "crash") {
    entry.action = Action::kCrash;
    entry.arg = has_arg ? parse_u64(arg, "crash(exit_code)") : kDefaultCrashCode;
    if (entry.arg > 255) bad_spec("crash exit code must be in [0, 255]");
  } else if (name == "error") {
    if (has_arg) bad_spec("error takes no argument");
    entry.action = Action::kError;
  } else if (name == "delay") {
    entry.action = Action::kDelay;
    entry.arg = has_arg ? parse_u64(arg, "delay(ms)") : kDefaultDelayMs;
  } else if (name == "torn_write") {
    entry.action = Action::kTornWrite;
    entry.arg = has_arg ? parse_u64(arg, "torn_write(bytes)") : 0;
  } else {
    bad_spec("unknown action '" + name +
             "' (want crash, error, delay or torn_write)");
  }
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& trigger = tokens[i];
    if (trigger.rfind("1in", 0) == 0) {
      entry.one_in = parse_u64(trigger.substr(3), "1inN");
      if (entry.one_in == 0) bad_spec("1inN needs N >= 1");
    } else if (trigger.rfind("after=", 0) == 0) {
      entry.after = parse_u64(trigger.substr(6), "after=");
    } else if (trigger.rfind("limit=", 0) == 0) {
      entry.limit = parse_u64(trigger.substr(6), "limit=");
    } else if (trigger.rfind("index=", 0) == 0) {
      entry.index =
          static_cast<std::size_t>(parse_u64(trigger.substr(6), "index="));
    } else if (trigger.rfind("seed=", 0) == 0) {
      entry.seed = parse_u64(trigger.substr(5), "seed=");
    } else {
      bad_spec("unknown trigger '" + trigger +
               "' (want 1inN, after=K, limit=K, index=K or seed=N)");
    }
  }
  return entry;
}

void publish(std::vector<Entry> entries) {
  auto next = std::make_unique<const std::vector<Entry>>(std::move(entries));
  const std::vector<Entry>* raw = next.get();
  const int count = static_cast<int>(raw->size());
  graveyard().push_back(std::move(next));
  g_entries.store(raw->empty() ? nullptr : raw, std::memory_order_release);
  detail::g_armed.store(count, std::memory_order_release);
}

}  // namespace

namespace detail {

std::atomic<int> g_armed{0};

Hit hit_slow(std::string_view site, std::size_t index) {
  const std::vector<Entry>* entries =
      g_entries.load(std::memory_order_acquire);
  if (entries == nullptr) return Hit{};
  for (const Entry& entry : *entries) {
    if (entry.site != site) continue;
    if (entry.index != kAnyIndex && entry.index != index) continue;
    Counters& counters = slab()[entry.slot];
    const std::uint64_t ordinal =
        counters.hits.fetch_add(1, std::memory_order_relaxed);
    if (ordinal < entry.after) continue;
    if (entry.one_in > 1) {
      // A fresh generator per hit, keyed by (seed, site, ordinal):
      // stateless, so the decision for hit h never depends on thread
      // interleaving — only on how often the site was reached.
      mathx::Xoshiro256 rng(entry.seed ^ fnv1a64(entry.site) ^
                            (0x9e3779b97f4a7c15ull * (ordinal + 1)));
      if (rng.uniform_int(1, static_cast<std::int64_t>(entry.one_in)) != 1) {
        continue;
      }
    }
    const std::uint64_t fired =
        counters.fires.fetch_add(1, std::memory_order_relaxed);
    if (entry.limit != 0 && fired >= entry.limit) continue;
    switch (entry.action) {
      case Action::kCrash:
        std::fprintf(stderr, "failpoint: '%s' fired: crash(%d)\n",
                     entry.site.c_str(), static_cast<int>(entry.arg));
        ::_exit(static_cast<int>(entry.arg));
      case Action::kError:
        throw FailpointError("failpoint '" + entry.site + "' fired: error");
      case Action::kDelay:
        std::this_thread::sleep_for(std::chrono::milliseconds(entry.arg));
        return Hit{true, Action::kDelay, entry.arg};
      case Action::kTornWrite:
        return Hit{true, Action::kTornWrite, entry.arg};
    }
  }
  return Hit{};
}

}  // namespace detail

const char* action_name(Action action) {
  switch (action) {
    case Action::kCrash: return "crash";
    case Action::kError: return "error";
    case Action::kDelay: return "delay";
    case Action::kTornWrite: return "torn_write";
  }
  return "?";
}

void arm(const std::string& spec) {
  if (spec.empty()) bad_spec("empty spec");
  // Parse everything first — a malformed spec must arm nothing.
  std::vector<Entry> parsed;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t semi = spec.find(';', pos);
    if (semi == std::string::npos) semi = spec.size();
    parsed.push_back(parse_entry(spec.substr(pos, semi - pos)));
    pos = semi + 1;
  }
  const std::lock_guard<std::mutex> lock(arm_mutex());
  const std::vector<Entry>* current =
      g_entries.load(std::memory_order_acquire);
  std::vector<Entry> next = current ? *current : std::vector<Entry>{};
  for (Entry& entry : parsed) {
    if (g_next_slot >= kMaxEntries) {
      bad_spec("too many armed failpoints (max " +
               std::to_string(kMaxEntries) + ")");
    }
    entry.slot = g_next_slot++;
    slab()[entry.slot].hits.store(0, std::memory_order_relaxed);
    slab()[entry.slot].fires.store(0, std::memory_order_relaxed);
    next.push_back(std::move(entry));
  }
  publish(std::move(next));
}

void arm_from_env() {
  const char* spec = std::getenv("RV_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return;
  try {
    arm(spec);
  } catch (const std::invalid_argument& e) {
    // A chaos run with a typo'd spec must not silently run fault-free
    // and "pass" — fail the process before it does any work.
    std::fprintf(stderr, "failpoint: %s\n", e.what());
    ::_exit(2);
  }
}

void disarm_all() {
  const std::lock_guard<std::mutex> lock(arm_mutex());
  for (std::size_t i = 0; i < g_next_slot; ++i) {
    slab()[i].hits.store(0, std::memory_order_relaxed);
    slab()[i].fires.store(0, std::memory_order_relaxed);
  }
  g_next_slot = 0;
  publish({});
}

std::size_t armed_count() {
  const int n = detail::g_armed.load(std::memory_order_acquire);
  return n < 0 ? 0 : static_cast<std::size_t>(n);
}

std::vector<SiteStats> stats() {
  const std::vector<Entry>* entries =
      g_entries.load(std::memory_order_acquire);
  std::vector<SiteStats> out;
  if (entries == nullptr) return out;
  out.reserve(entries->size());
  for (const Entry& entry : *entries) {
    SiteStats s;
    s.site = entry.site;
    s.hits = slab()[entry.slot].hits.load(std::memory_order_relaxed);
    s.fires = slab()[entry.slot].fires.load(std::memory_order_relaxed);
    // The fire counter also counts fires suppressed past the limit;
    // report what actually happened.
    if (entry.limit != 0 && s.fires > entry.limit) s.fires = entry.limit;
    out.push_back(std::move(s));
  }
  return out;
}

namespace {
/// Arms from the environment before main() in every binary that pulls
/// this TU (everything touching the runner or cache store does).
[[maybe_unused]] const bool g_env_armed = (arm_from_env(), true);
}  // namespace

}  // namespace rv::engine::failpoint
