#pragma once

/// \file metric_kernel.hpp
/// The pairwise metric kernels of the certified sweep.
///
/// `ContactSweep` evaluates one of two statistics over the fleet's
/// current positions at every sweep/bisection point:
///   * min over pairs of d_ij — first contact / rendezvous;
///   * max over pairs of d_ij — all-pairs gathering.
/// The historical implementation was a brute-force O(n²) loop with one
/// `std::hypot` per pair.  This layer replaces it with an adaptive
/// kernel:
///   * **small fleets** (n < `kKernelCutover`) — a squared-distance
///     brute-force loop: pairs are compared by d² (one multiply-add per
///     pair instead of a hypot) and a single hypot resolves the winning
///     pair's metric value, so 2-robot results are bit-exact with the
///     historical loop;
///   * **large fleets** — exact near-linear geometry: closest pair via
///     spatial grid hashing (geom/closest_pair.hpp) for the min metric,
///     point-set diameter via convex hull + rotating calipers
///     (geom/convex_hull.hpp) for the max metric.
/// All kernels implement the shared extremal-pair contract
/// (geom/extremal_pair.hpp): identical metric value and identical
/// lexicographically-first extremal pair as the historical loop,
/// pinned by tests/test_metric_kernel.cpp on degenerate and randomized
/// fleets.
///
/// `lipschitz_speed_sum` is the companion O(n) replacement for the
/// per-step O(n²) Lipschitz recompute: max over pairs of (v_i + v_j)
/// is the sum of the two largest speeds — the same two doubles are
/// added, so the bound (and hence every step schedule) is unchanged.

#include <cstddef>
#include <vector>

#include "geom/extremal_pair.hpp"
#include "geom/vec2.hpp"

namespace rv::engine {

/// Which kernel evaluates the pairwise metric.
enum class KernelChoice {
  kAuto,        ///< brute force below `kKernelCutover`, geometric above
  kBruteForce,  ///< always the O(n²) squared-distance loop
  kGeometric,   ///< always grid closest-pair / calipers diameter
};

/// The kAuto cutover: fleets smaller than this use the brute-force
/// kernel (lower constant), larger ones the near-linear geometry.
/// Chosen from BM_MetricKernel: the curves cross between n ≈ 24 and
/// n ≈ 64 depending on metric and layout.
inline constexpr std::size_t kKernelCutover = 48;

/// Min-pairwise metric (first contact): closest pair of `pts`.
/// \throws std::invalid_argument for fewer than 2 points.
[[nodiscard]] geom::ExtremalPair min_pairwise(
    const std::vector<geom::Vec2>& pts,
    KernelChoice choice = KernelChoice::kAuto);

/// Max-pairwise metric (all-pairs gathering): diameter of `pts`.
/// \throws std::invalid_argument for fewer than 2 points.
[[nodiscard]] geom::ExtremalPair max_pairwise(
    const std::vector<geom::Vec2>& pts,
    KernelChoice choice = KernelChoice::kAuto);

/// O(n) Lipschitz bound of both sweep metrics: max over pairs of
/// (v_i + v_j) = the sum of the two largest speeds.  Identical value
/// to the O(n²) pair maximum (same two doubles are added).
/// \throws std::invalid_argument for fewer than 2 speeds.
[[nodiscard]] double lipschitz_speed_sum(const std::vector<double>& speeds);

}  // namespace rv::engine
