#pragma once

/// \file failpoint.hpp
/// Deterministic fault injection for the sharded pipeline.
///
/// A *failpoint* is a named site in production code where a fault can
/// be injected on demand: a crash, a thrown error, a delay, or a torn
/// (truncated) write.  Sites are compiled in permanently and cost one
/// relaxed atomic load when nothing is armed, so shipping them is
/// free; chaos tests and operators arm them through the
/// `RV_FAILPOINTS` environment variable or the programmatic `arm()`
/// API.
///
/// Spec grammar (entries joined by ';'):
///
///     site=action[(arg)][,trigger]...
///
///     actions   crash(exit_code)   _exit(exit_code)        [default 86]
///               error              throw FailpointError
///               delay(ms)          sleep, then continue    [default 100]
///               torn_write(bytes)  site-applied truncation [default 0]
///     triggers  1inN      fire each hit with probability 1/N
///                         (deterministic per hit ordinal, see below)
///               after=K   ignore the first K hits
///               limit=K   fire at most K times (0 = unlimited)
///               index=K   only hits reporting index K (shard id, ...)
///               seed=N    the 1inN decision stream's seed
///
/// Example — crash shard 1's worker on its first attempt only:
///
///     RV_FAILPOINTS='shard.worker.start=crash(87),index=1,limit=1'
///
/// Determinism: the `1inN` coin for hit ordinal `h` is drawn from a
/// `mathx::Xoshiro256` seeded with (seed, site-name hash, h) — no
/// global stream, no ordering dependence — so a chaos run is
/// reproducible by seed at any thread count.  Hit and fire counters
/// live in a `MAP_SHARED` slab so forked children (shard workers,
/// supervisor retries) consume the same budget: `limit=1` means once
/// per *run*, not once per process.
///
/// Un-armed builds show zero behavioral drift: sites return inert
/// `Hit{}` values and goldens/`cache_key` are untouched.  Site names
/// must match `[a-z0-9_.]+` and be unique, enforced by the
/// `failpoint-site` rule in tools/rv_lint.cpp.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace rv::engine::failpoint {

/// Thrown by the `error` action.  Deliberately a distinct type so
/// chaos tests can tell an injected fault from a real one.
class FailpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class Action : std::uint8_t { kCrash, kError, kDelay, kTornWrite };

[[nodiscard]] const char* action_name(Action action);

/// What a site observes when it evaluates.  `crash` and `error` never
/// return; `delay` returns after sleeping; `torn_write` returns its
/// byte budget for the site to apply (only sites that write files
/// honour it — everywhere else it is inert by design).
struct Hit {
  bool fired = false;
  Action action = Action::kError;
  std::uint64_t arg = 0;
};

/// Index wildcard: hits that report no index, and armed entries with
/// no `index=` selector.
inline constexpr std::size_t kAnyIndex = static_cast<std::size_t>(-1);

namespace detail {
/// Count of armed entries; the macros' fast path reads only this.
extern std::atomic<int> g_armed;
Hit hit_slow(std::string_view site, std::size_t index);
}  // namespace detail

/// True when at least one entry is armed (in this process tree).
[[nodiscard]] inline bool enabled() {
  return detail::g_armed.load(std::memory_order_acquire) != 0;
}

/// Evaluates the site: the disabled path is one atomic load.  `index`
/// selects which hits an `index=K` entry matches (e.g. the shard id).
inline Hit hit(std::string_view site, std::size_t index = kAnyIndex) {
  if (!enabled()) return Hit{};
  return detail::hit_slow(site, index);
}

/// Arms every entry of `spec` (see the grammar above), *appending* to
/// whatever is already armed.  All-or-nothing: a malformed spec throws
/// std::invalid_argument and arms no entry.
void arm(const std::string& spec);

/// Arms from the RV_FAILPOINTS environment variable, if set.  Called
/// automatically before main() in every binary linking this TU; a
/// malformed value is a loud _exit(2), not a silently inert run.
void arm_from_env();

/// Disarms everything and zeroes the shared counters.
void disarm_all();

/// Number of armed entries.
[[nodiscard]] std::size_t armed_count();

/// Per-entry counters (observability for tests and tools).  `fires`
/// is capped at the entry's limit when one is set.
struct SiteStats {
  std::string site;
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
};
[[nodiscard]] std::vector<SiteStats> stats();

}  // namespace rv::engine::failpoint

/// Fire-and-forget site: crash/error/delay act here, torn_write is
/// inert (nothing to truncate).
#define RV_FAILPOINT(site)                          \
  do {                                              \
    (void)::rv::engine::failpoint::hit(site);       \
  } while (0)

/// Site with an index (shard id, record ordinal, ...) for `index=K`
/// entry selectors.
#define RV_FAILPOINT_AT(site, index)                 \
  do {                                               \
    (void)::rv::engine::failpoint::hit(site, index); \
  } while (0)

/// Site that inspects the Hit (the torn_write consumer).
#define RV_FAILPOINT_EVAL(site) ::rv::engine::failpoint::hit(site)
