#include "engine/shard.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace rv::engine {

ShardPlan shard_plan(std::size_t total, std::size_t shard,
                     std::size_t num_shards) {
  if (num_shards == 0) {
    throw std::invalid_argument("shard_plan: num_shards must be >= 1");
  }
  if (shard >= num_shards) {
    throw std::invalid_argument("shard_plan: shard " + std::to_string(shard) +
                                " out of range for " +
                                std::to_string(num_shards) + " shards");
  }
  ShardPlan plan;
  plan.shard = shard;
  plan.num_shards = num_shards;
  plan.total = total;
  for (std::size_t i = shard; i < total; i += num_shards) {
    plan.indices.push_back(i);
  }
  return plan;
}

std::vector<WorkItem> shard_work(const std::vector<WorkItem>& work,
                                 const ShardPlan& plan) {
  if (work.size() != plan.total) {
    throw std::invalid_argument(
        "shard_work: plan covers " + std::to_string(plan.total) +
        " items but the work list has " + std::to_string(work.size()));
  }
  std::vector<WorkItem> subset;
  subset.reserve(plan.indices.size());
  for (const std::size_t i : plan.indices) subset.push_back(work[i]);
  return subset;
}

ResultSet run_shard(const std::vector<WorkItem>& work, const ShardPlan& plan,
                    RunnerOptions options) {
  return run_scenarios(shard_work(work, plan), options);
}

ResultSet merge_shards(const std::vector<ShardResult>& shards) {
  if (shards.empty()) return ResultSet{};
  const std::size_t total = shards[0].plan.total;
  const std::size_t num_shards = shards[0].plan.num_shards;
  std::vector<RunRecord> records(total);
  std::vector<bool> placed(total, false);
  CacheStats stats;
  for (const ShardResult& shard : shards) {
    if (shard.plan.total != total || shard.plan.num_shards != num_shards) {
      throw std::invalid_argument(
          "merge_shards: shard plans disagree on the partition "
          "(total/num_shards)");
    }
    if (shard.results.size() != shard.plan.indices.size()) {
      throw std::invalid_argument(
          "merge_shards: shard " + std::to_string(shard.plan.shard) +
          " has " + std::to_string(shard.results.size()) + " records for " +
          std::to_string(shard.plan.indices.size()) + " planned items");
    }
    for (std::size_t k = 0; k < shard.plan.indices.size(); ++k) {
      const std::size_t i = shard.plan.indices[k];
      if (i >= total || placed[i]) {
        throw std::invalid_argument(
            "merge_shards: item index " + std::to_string(i) +
            " out of range or covered twice");
      }
      records[i] = shard.results[k];
      placed[i] = true;
    }
    stats.hits += shard.results.cache_stats().hits;
    stats.misses += shard.results.cache_stats().misses;
    stats.uncacheable += shard.results.cache_stats().uncacheable;
  }
  for (std::size_t i = 0; i < total; ++i) {
    if (!placed[i]) {
      throw std::invalid_argument("merge_shards: item index " +
                                  std::to_string(i) +
                                  " covered by no shard (incomplete merge)");
    }
  }
  ResultSet merged(std::move(records));
  merged.set_cache_stats(stats);
  return merged;
}

ResultSet run_sharded(const ScenarioSet& set, std::size_t num_shards,
                      RunnerOptions options) {
  if (num_shards == 0) {
    // Without this, zero shards would "merge" into an empty ResultSet
    // that masquerades as an empty set; fail like shard_plan does.
    throw std::invalid_argument("run_sharded: num_shards must be >= 1");
  }
  const std::vector<WorkItem> work = set.materialize_work();
  std::vector<ShardResult> shards;
  shards.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    ShardPlan plan = shard_plan(work.size(), s, num_shards);
    ResultSet results = run_shard(work, plan, options);
    shards.push_back({std::move(plan), std::move(results)});
  }
  return merge_shards(shards);
}

}  // namespace rv::engine
