#include "engine/shard.hpp"

#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "engine/cache_store.hpp"
#include "engine/failpoint.hpp"

namespace rv::engine {

namespace {

/// "1, 4, 7" for small lists; elides the tail past `cap` so a merge
/// missing thousands of items stays one readable line.
std::string join_indices(const std::vector<std::size_t>& indices,
                         std::size_t cap = 16) {
  std::string out;
  for (std::size_t k = 0; k < indices.size() && k < cap; ++k) {
    if (k > 0) out += ", ";
    out += std::to_string(indices[k]);
  }
  if (indices.size() > cap) {
    out += ", ... (" + std::to_string(indices.size() - cap) + " more)";
  }
  return out;
}

}  // namespace

ShardPlan shard_plan(std::size_t total, std::size_t shard,
                     std::size_t num_shards) {
  if (num_shards == 0) {
    throw std::invalid_argument("shard_plan: num_shards must be >= 1");
  }
  if (shard >= num_shards) {
    throw std::invalid_argument("shard_plan: shard " + std::to_string(shard) +
                                " out of range for " +
                                std::to_string(num_shards) + " shards");
  }
  ShardPlan plan;
  plan.shard = shard;
  plan.num_shards = num_shards;
  plan.total = total;
  for (std::size_t i = shard; i < total; i += num_shards) {
    plan.indices.push_back(i);
  }
  return plan;
}

std::vector<WorkItem> shard_work(const std::vector<WorkItem>& work,
                                 const ShardPlan& plan) {
  if (work.size() != plan.total) {
    throw std::invalid_argument(
        "shard_work: plan covers " + std::to_string(plan.total) +
        " items but the work list has " + std::to_string(work.size()));
  }
  std::vector<WorkItem> subset;
  subset.reserve(plan.indices.size());
  for (const std::size_t i : plan.indices) subset.push_back(work[i]);
  return subset;
}

ResultSet run_shard(const std::vector<WorkItem>& work, const ShardPlan& plan,
                    RunnerOptions options) {
  // Chaos site: lets the supervisor tests kill/delay a specific shard
  // after planning but before any scenario executes.
  RV_FAILPOINT_AT("shard.worker.mid_run", plan.shard);
  return run_scenarios(shard_work(work, plan), options);
}

std::string shard_file_name(const std::string& set_name, std::size_t shard,
                            std::size_t num_shards) {
  return (set_name.empty() ? std::string("<set>") : set_name) + "-shard-" +
         std::to_string(shard) + "-of-" + std::to_string(num_shards) +
         kCacheFileExtension;
}

ResultSet merge_shards(const std::vector<ShardResult>& shards,
                       const std::string& set_name) {
  if (shards.empty()) return ResultSet{};
  const std::size_t total = shards[0].plan.total;
  const std::size_t num_shards = shards[0].plan.num_shards;
  std::vector<RunRecord> records(total);
  std::vector<bool> placed(total, false);
  CacheStats stats;
  for (const ShardResult& shard : shards) {
    if (shard.plan.total != total || shard.plan.num_shards != num_shards) {
      throw std::invalid_argument(
          "merge_shards: shard plans disagree on the partition "
          "(total/num_shards)");
    }
    if (shard.results.size() != shard.plan.indices.size()) {
      throw std::invalid_argument(
          "merge_shards: shard " + std::to_string(shard.plan.shard) +
          " has " + std::to_string(shard.results.size()) + " records for " +
          std::to_string(shard.plan.indices.size()) + " planned items");
    }
    for (std::size_t k = 0; k < shard.plan.indices.size(); ++k) {
      const std::size_t i = shard.plan.indices[k];
      if (i >= total) {
        throw std::invalid_argument(
            "merge_shards: shard " + std::to_string(shard.plan.shard) +
            " claims global item index " + std::to_string(i) +
            " but the set has only " + std::to_string(total) + " items");
      }
      if (placed[i]) {
        throw std::invalid_argument(
            "merge_shards: global item index " + std::to_string(i) +
            " covered twice — shard " + std::to_string(i % num_shards) +
            " (" + shard_file_name(set_name, i % num_shards, num_shards) +
            ") appears more than once in the merge input");
      }
      records[i] = shard.results[k];
      placed[i] = true;
    }
    stats.hits += shard.results.cache_stats().hits;
    stats.misses += shard.results.cache_stats().misses;
    stats.uncacheable += shard.results.cache_stats().uncacheable;
  }
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < total; ++i) {
    if (!placed[i]) missing.push_back(i);
  }
  if (!missing.empty()) {
    // Name the shards that own the holes and the cache files an
    // operator must re-drive; the strided rule makes ownership a pure
    // function of the index.
    std::set<std::size_t> missing_shards;
    for (const std::size_t i : missing) missing_shards.insert(i % num_shards);
    std::string files;
    for (const std::size_t s : missing_shards) {
      if (!files.empty()) files += ", ";
      files += shard_file_name(set_name, s, num_shards);
    }
    throw std::invalid_argument(
        "merge_shards: incomplete merge — global item indices {" +
        join_indices(missing) + "} covered by no shard; re-drive shard file" +
        (missing_shards.size() == 1 ? "" : "s") + " " + files);
  }
  ResultSet merged(std::move(records));
  merged.set_cache_stats(stats);
  return merged;
}

ResultSet run_sharded(const ScenarioSet& set, std::size_t num_shards,
                      RunnerOptions options) {
  if (num_shards == 0) {
    // Without this, zero shards would "merge" into an empty ResultSet
    // that masquerades as an empty set; fail like shard_plan does.
    throw std::invalid_argument("run_sharded: num_shards must be >= 1");
  }
  const std::vector<WorkItem> work = set.materialize_work();
  std::vector<ShardResult> shards;
  shards.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    ShardPlan plan = shard_plan(work.size(), s, num_shards);
    ResultSet results = run_shard(work, plan, options);
    shards.push_back({std::move(plan), std::move(results)});
  }
  return merge_shards(shards);
}

}  // namespace rv::engine
