#include "engine/serve.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <future>
#include <istream>
#include <limits>
#include <optional>
#include <ostream>
#include <set>
#include <sstream>
#include <utility>

#include "engine/failpoint.hpp"
#include "engine/set_decl.hpp"
#include "engine/shard.hpp"

namespace rv::engine::serve {
namespace {

/// Monotonic milliseconds — paces deadlines, latency counters and the
/// compaction timer only; never feeds payload bytes (the supervisor's
/// contract, see engine/supervisor.hpp).
double now_ms() {
  // rv-lint: allow(nondeterminism) — serve pacing/latency only, never output
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(t).count();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    const unsigned char uc = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (uc < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", uc);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Fixed-precision milliseconds for status latency fields.
std::string fmt_ms(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

[[noreturn]] void parse_fail(const std::string& message) {
  throw ServeError("parse", message);
}

// --------------------------------------------------------------------
// Strict flat-JSON header scanner
// --------------------------------------------------------------------

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return done() ? '\0' : text[pos]; }
  char get() {
    if (done()) parse_fail("unexpected end of request header");
    return text[pos++];
  }
  void skip_ws() {
    while (!done() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  }
  void expect(char c) {
    const char got = get();
    if (got != c) {
      parse_fail(std::string("expected '") + c + "', got '" + got + "'");
    }
  }
};

std::string parse_json_string(Cursor& c) {
  c.expect('"');
  std::string out;
  for (;;) {
    const char ch = c.get();
    if (ch == '"') return out;
    if (static_cast<unsigned char>(ch) < 0x20) {
      parse_fail("raw control byte inside string");
    }
    if (ch != '\\') {
      out += ch;
      continue;
    }
    const char esc = c.get();
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        unsigned value = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = c.get();
          value <<= 4;
          if (h >= '0' && h <= '9') {
            value |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            value |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            value |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            parse_fail("bad \\u escape");
          }
        }
        if (value >= 0x80) {
          parse_fail("\\u escapes above 0x7f are not supported");
        }
        out += static_cast<char>(value);
        break;
      }
      default:
        parse_fail(std::string("unknown escape '\\") + esc + "'");
    }
  }
}

/// Strict JSON number; returns the raw slice so callers can demand an
/// unsigned integer (no sign/fraction/exponent).
std::string_view parse_json_number(Cursor& c, double* value) {
  const std::size_t start = c.pos;
  if (c.peek() == '-') c.get();
  if (!std::isdigit(static_cast<unsigned char>(c.peek()))) {
    parse_fail("malformed number");
  }
  if (c.peek() == '0') {
    c.get();
  } else {
    while (std::isdigit(static_cast<unsigned char>(c.peek()))) c.get();
  }
  if (c.peek() == '.') {
    c.get();
    if (!std::isdigit(static_cast<unsigned char>(c.peek()))) {
      parse_fail("malformed number (bare '.')");
    }
    while (std::isdigit(static_cast<unsigned char>(c.peek()))) c.get();
  }
  if (c.peek() == 'e' || c.peek() == 'E') {
    c.get();
    if (c.peek() == '+' || c.peek() == '-') c.get();
    if (!std::isdigit(static_cast<unsigned char>(c.peek()))) {
      parse_fail("malformed number (empty exponent)");
    }
    while (std::isdigit(static_cast<unsigned char>(c.peek()))) c.get();
  }
  const std::string_view raw = c.text.substr(start, c.pos - start);
  *value = std::stod(std::string(raw));
  return raw;
}

bool parse_json_bool(Cursor& c) {
  if (c.text.substr(c.pos, 4) == "true") {
    c.pos += 4;
    return true;
  }
  if (c.text.substr(c.pos, 5) == "false") {
    c.pos += 5;
    return false;
  }
  parse_fail("expected true or false");
}

std::string render(const ResultSet& results, const std::string& format) {
  if (format == "csv") return results.to_csv();
  if (format == "json") return results.to_json();
  if (format == "table") {
    std::ostringstream os;
    results.to_table().print(os);
    return os.str();
  }
  throw ServeError("parse",
                   "'format' must be csv, json or table, got '" + format + "'");
}

/// File-name-safe set name for per-set persistence files.
std::string sanitize_name(const std::string& name) {
  std::string out = name.empty() ? "inline" : name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

// --------------------------------------------------------------------
// Request parsing
// --------------------------------------------------------------------

Request parse_request(std::string_view header_line) {
  if (header_line.size() > kMaxHeaderBytes) {
    parse_fail("request header exceeds " + std::to_string(kMaxHeaderBytes) +
               " bytes");
  }
  Cursor c{header_line, 0};
  c.skip_ws();
  c.expect('{');
  Request req;
  std::string op;
  std::set<std::string> seen;
  bool have_extras = false;  // any run-only key on a non-run op
  c.skip_ws();
  if (c.peek() == '}') {
    c.get();
  } else {
    for (;;) {
      c.skip_ws();
      const std::string key = parse_json_string(c);
      if (!seen.insert(key).second) parse_fail("duplicate key '" + key + "'");
      c.skip_ws();
      c.expect(':');
      c.skip_ws();
      if (key == "op") {
        op = parse_json_string(c);
      } else if (key == "id") {
        req.id = parse_json_string(c);
        if (req.id.empty()) parse_fail("'id' must be non-empty");
        if (req.id.size() > 256) parse_fail("'id' exceeds 256 bytes");
      } else if (key == "set") {
        req.set = parse_json_string(c);
        if (req.set.empty()) parse_fail("'set' must be non-empty");
        have_extras = true;
      } else if (key == "body_bytes") {
        double value = 0.0;
        const std::string_view raw = parse_json_number(c, &value);
        if (raw.find_first_not_of("0123456789") != std::string_view::npos) {
          parse_fail("'body_bytes' must be a non-negative integer");
        }
        if (value > static_cast<double>(kMaxBodyBytes)) {
          parse_fail("'body_bytes' exceeds " + std::to_string(kMaxBodyBytes) +
                     " bytes");
        }
        req.has_body = true;
        req.body_bytes = static_cast<std::size_t>(value);
        have_extras = true;
      } else if (key == "format") {
        req.format = parse_json_string(c);
        if (req.format != "csv" && req.format != "json" &&
            req.format != "table") {
          parse_fail("'format' must be csv, json or table, got '" +
                     req.format + "'");
        }
        have_extras = true;
      } else if (key == "deadline_ms") {
        double value = 0.0;
        const std::string_view raw = parse_json_number(c, &value);
        if (raw.front() == '-') {
          parse_fail("'deadline_ms' must be non-negative");
        }
        req.deadline_ms = value;
        have_extras = true;
      } else if (key == "partial") {
        req.partial = parse_json_bool(c);
        have_extras = true;
      } else {
        parse_fail("unknown key '" + key + "'");
      }
      c.skip_ws();
      const char next = c.get();
      if (next == '}') break;
      if (next != ',') parse_fail("expected ',' or '}' after value");
    }
  }
  c.skip_ws();
  if (!c.done()) parse_fail("trailing bytes after request object");
  if (op.empty()) parse_fail("missing required key 'op'");
  if (op == "run") {
    req.op = Op::kRun;
    if (!req.set.empty() && req.has_body) {
      parse_fail("'set' and 'body_bytes' are exclusive");
    }
    if (req.set.empty() && !req.has_body) {
      parse_fail("run requests need 'set' or 'body_bytes'");
    }
  } else if (op == "status" || op == "shutdown") {
    req.op = op == "status" ? Op::kStatus : Op::kShutdown;
    if (have_extras) {
      parse_fail("'" + op + "' requests accept only 'id'");
    }
  } else {
    parse_fail("unknown op '" + op + "'");
  }
  return req;
}

// --------------------------------------------------------------------
// Reply framing
// --------------------------------------------------------------------

std::string frame(const std::string& header, std::string_view payload,
                  bool has_payload) {
  std::string out;
  out.reserve(header.size() + payload.size() + 2);
  out += header;
  out += '\n';
  if (has_payload) {
    out += payload;
    out += '\n';
  }
  return out;
}

std::string error_frame(const std::string& id, const std::string& code,
                        const std::string& message) {
  return frame("{\"reply\":\"error\",\"id\":\"" + json_escape(id) +
               "\",\"code\":\"" + json_escape(code) + "\",\"message\":\"" +
               json_escape(message) + "\"}");
}

bool read_frame(std::istream& in, std::string* header, std::string* payload) {
  header->clear();
  payload->clear();
  if (!std::getline(in, *header)) {
    if (!header->empty()) {
      throw ServeError("parse", "torn reply header (EOF before LF)");
    }
    return false;
  }
  if (in.eof()) {
    // getline stopped at EOF, not at a delimiter — the header line is
    // missing its terminating LF.
    throw ServeError("parse", "torn reply header (EOF before LF)");
  }
  const std::size_t at = header->find("\"bytes\":");
  if (at == std::string::npos) return true;
  std::size_t digits = at + std::string_view("\"bytes\":").size();
  std::size_t bytes = 0;
  if (digits >= header->size() ||
      !std::isdigit(static_cast<unsigned char>((*header)[digits]))) {
    throw ServeError("parse", "malformed 'bytes' field in reply header");
  }
  while (digits < header->size() &&
         std::isdigit(static_cast<unsigned char>((*header)[digits]))) {
    bytes = bytes * 10 + static_cast<std::size_t>((*header)[digits] - '0');
    ++digits;
  }
  payload->resize(bytes);
  if (bytes > 0) in.read(payload->data(), static_cast<std::streamsize>(bytes));
  if (bytes > 0 && static_cast<std::size_t>(in.gcount()) != bytes) {
    throw ServeError("parse", "torn reply payload (EOF mid-payload)");
  }
  const int terminator = in.get();
  if (terminator != '\n') {
    throw ServeError("parse", "torn reply payload (missing trailing LF)");
  }
  return true;
}

// --------------------------------------------------------------------
// Service
// --------------------------------------------------------------------

Service::Service(Options options) : options_(std::move(options)) {
  if (options_.queue_depth == 0) {
    throw std::invalid_argument("serve: queue_depth must be > 0");
  }
  if (options_.workers == 0) {
    throw std::invalid_argument("serve: workers must be > 0");
  }
  if (options_.procs == 0) {
    throw std::invalid_argument("serve: procs must be > 0");
  }
  if (options_.procs > 1 && options_.cache_dir.empty()) {
    throw std::invalid_argument(
        "serve: procs > 1 requires a cache_dir (forked shard workers "
        "exchange *.rvcache files)");
  }
  if (options_.compact_interval_sec > 0.0 && options_.cache_dir.empty()) {
    throw std::invalid_argument(
        "serve: compact_interval_sec requires a cache_dir");
  }
  if (!options_.cache_dir.empty()) {
    std::filesystem::create_directories(options_.cache_dir);
    const CacheLoadStats stats = load_cache_dir(options_.cache_dir, &cache_);
    note("serve: warm-loaded " + std::to_string(stats.loaded) +
         " cache entries from " + options_.cache_dir.string() + " (" +
         std::to_string(stats.files) + " files, " +
         std::to_string(stats.bad_files) + " bad)");
  }
  workers_.reserve(options_.workers);
  for (unsigned w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  if (options_.compact_interval_sec > 0.0) {
    compactor_ = std::thread([this] { compactor_loop(); });
  }
}

Service::~Service() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  compact_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  if (compactor_.joinable()) compactor_.join();
}

void Service::note(const std::string& message) const {
  if (options_.log) options_.log(message);
}

Service::Admission Service::submit(Request request, Sink sink) {
  request.admitted_ms = now_ms();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    request.seq = next_seq_++;
    counters_.requests += 1;
  }
  if (request.id.empty()) request.id = std::to_string(request.seq);
  try {
    RV_FAILPOINT_AT("serve.accept", request.seq);
  } catch (const failpoint::FailpointError& error) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      counters_.errors += 1;
    }
    sink(error_frame(request.id, "failed", error.what()));
    return Admission::kReplied;
  }
  switch (request.op) {
    case Op::kStatus:
      sink(frame(status_header(request)));
      return Admission::kReplied;
    case Op::kShutdown:
      sink(frame("{\"reply\":\"shutdown\",\"id\":\"" +
                 json_escape(request.id) + "\"}"));
      return Admission::kShutdown;
    case Op::kRun:
      break;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (queue_.size() >= options_.queue_depth) {
      counters_.rejected += 1;
      counters_.errors += 1;
      lock.unlock();
      sink(frame("{\"reply\":\"error\",\"id\":\"" + json_escape(request.id) +
                 "\",\"code\":\"overloaded\",\"retry_after_ms\":" +
                 std::to_string(options_.retry_after_ms) +
                 ",\"message\":\"admission queue full (depth " +
                 std::to_string(options_.queue_depth) + ")\"}"));
      return Admission::kReplied;
    }
    queue_.push_back(Pending{std::move(request), std::move(sink)});
  }
  queue_cv_.notify_one();
  return Admission::kQueued;
}

std::string Service::reject(const std::string& id, const std::string& code,
                            const std::string& message) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    counters_.requests += 1;
    counters_.errors += 1;
  }
  return error_frame(id, code, message);
}

std::string Service::process(const std::string& header_line,
                             std::string_view body) {
  Request request;
  try {
    request = parse_request(header_line);
  } catch (const ServeError& error) {
    return reject("", error.code(), error.what());
  }
  if (request.has_body) {
    if (body.size() != request.body_bytes) {
      return reject(request.id, "parse",
                    "body size mismatch: header declared " +
                        std::to_string(request.body_bytes) + " bytes, got " +
                        std::to_string(body.size()));
    }
    request.body.assign(body);
  } else if (!body.empty()) {
    return reject(request.id, "parse",
                  "request declared no body_bytes but a body was supplied");
  }
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  (void)submit(std::move(request),
               [&promise](const std::string& reply) { promise.set_value(reply); });
  return future.get();
}

void Service::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drain_cv_.wait(lock, [&] {
    return queue_.empty() && active_ == 0 && replying_ == 0;
  });
}

Counters Service::counters() const {
  Counters snapshot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    snapshot = counters_;
    snapshot.queue_depth = queue_.size();
    snapshot.inflight = queue_.size() + active_;
  }
  snapshot.cache_entries = cache_.size();
  return snapshot;
}

std::size_t Service::cache_size() const { return cache_.size(); }

std::string Service::status_header(const Request& request) const {
  const Counters c = counters();
  const double mean_ms =
      c.latency_count > 0
          ? c.latency_total_ms / static_cast<double>(c.latency_count)
          : 0.0;
  std::ostringstream os;
  os << "{\"reply\":\"status\",\"id\":\"" << json_escape(request.id) << "\""
     << ",\"requests\":" << c.requests << ",\"ok\":" << c.ok
     << ",\"errors\":" << c.errors << ",\"rejected\":" << c.rejected
     << ",\"expired\":" << c.expired << ",\"hits\":" << c.hits
     << ",\"misses\":" << c.misses << ",\"uncacheable\":" << c.uncacheable
     << ",\"inflight\":" << c.inflight << ",\"queue_depth\":" << c.queue_depth
     << ",\"cache_entries\":" << c.cache_entries
     << ",\"compactions\":" << c.compactions << ",\"latency\":{\"count\":"
     << c.latency_count << ",\"mean_ms\":" << fmt_ms(mean_ms)
     << ",\"max_ms\":" << fmt_ms(c.latency_max_ms) << "}}";
  return os.str();
}

void Service::worker_loop() {
  for (;;) {
    Pending job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      active_ += 1;
    }
    const std::string reply = execute(job.request);
    // The request completes (counters settle, `inflight` drops) before the
    // reply is delivered: a client that has read its reply must never see
    // this request still in flight on a subsequent `status`.  drain() still
    // waits out the delivery itself via `replying_` — sinks reference the
    // caller's stream state, which must outlive them.
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      active_ -= 1;
      replying_ += 1;
    }
    try {
      job.sink(reply);
    } catch (const std::exception& error) {
      note(std::string("serve: reply delivery failed: ") + error.what());
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      replying_ -= 1;
      if (queue_.empty() && active_ == 0 && replying_ == 0) {
        drain_cv_.notify_all();
      }
    }
  }
}

std::string Service::execute(const Request& request) {
  try {
    RV_FAILPOINT_AT("serve.dispatch", request.seq);
    Reply reply = execute_run(request);
    const double latency = now_ms() - request.admitted_ms;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      counters_.ok += 1;
      counters_.hits += reply.stats.hits;
      counters_.misses += reply.stats.misses;
      counters_.uncacheable += reply.stats.uncacheable;
      counters_.latency_count += 1;
      counters_.latency_total_ms += latency;
      counters_.latency_max_ms = std::max(counters_.latency_max_ms, latency);
    }
    std::ostringstream header;
    header << "{\"reply\":\"" << reply.kind << "\",\"id\":\""
           << json_escape(request.id) << "\",\"bytes\":"
           << reply.payload.size() << ",\"hits\":" << reply.stats.hits
           << ",\"misses\":" << reply.stats.misses
           << ",\"uncacheable\":" << reply.stats.uncacheable;
    if (reply.kind == "partial") {
      header << ",\"missing_indices\":[";
      for (std::size_t i = 0; i < reply.missing.size(); ++i) {
        if (i > 0) header << ',';
        header << reply.missing[i];
      }
      header << ']';
    }
    header << '}';
    return frame(header.str(), reply.payload, true);
  } catch (const ServeError& error) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      counters_.errors += 1;
      if (error.code() == "deadline") counters_.expired += 1;
    }
    return error_frame(request.id, error.code(), error.what());
  } catch (const failpoint::FailpointError& error) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      counters_.errors += 1;
    }
    return error_frame(request.id, "failed", error.what());
  } catch (const SetDeclError& error) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      counters_.errors += 1;
    }
    return error_frame(request.id, "bad-set", error.what());
  } catch (const std::invalid_argument& error) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      counters_.errors += 1;
    }
    return error_frame(request.id, "bad-set", error.what());
  } catch (const std::exception& error) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      counters_.errors += 1;
    }
    return error_frame(request.id, "failed", error.what());
  }
}

Service::Reply Service::execute_run(const Request& request) {
  const double deadline_at = request.deadline_ms > 0.0
                                 ? request.admitted_ms + request.deadline_ms
                                 : 0.0;
  if (deadline_at > 0.0 && now_ms() >= deadline_at) {
    throw ServeError("deadline",
                     "deadline of " + fmt_ms(request.deadline_ms) +
                         " ms expired before dispatch (queue wait)");
  }

  ScenarioSet set;
  std::string name;
  if (!request.set.empty()) {
    if (!options_.resolver) {
      throw ServeError("bad-set",
                       "this service resolves no named sets; send an inline "
                       ".rvset body instead");
    }
    set = options_.resolver(request.set);
    name = request.set;
  } else {
    SetDecl decl = parse_set_decl(request.body);
    set = std::move(decl.set);
    name = decl.name.empty() ? "inline" : decl.name;
  }
  const std::vector<WorkItem> work = set.materialize_work();

  // Classify every cell against the warm cache: hits are answered from
  // memory, misses batched for dispatch.  These counts — not the warm
  // replay's — are what the reply header reports.
  std::vector<WorkItem> misses;
  std::vector<std::size_t> miss_indices;
  Reply reply;
  for (std::size_t i = 0; i < work.size(); ++i) {
    const std::optional<std::string> key = cache_key(work[i]);
    if (!key) {
      reply.stats.uncacheable += 1;
      continue;
    }
    if (cache_.contains(*key)) {
      reply.stats.hits += 1;
    } else {
      reply.stats.misses += 1;
      misses.push_back(work[i]);
      miss_indices.push_back(i);
    }
  }

  if (!misses.empty()) {
    if (options_.procs <= 1) {
      RunnerOptions ropts;
      ropts.threads = options_.threads;
      ropts.cache = &cache_;
      (void)run_scenarios(misses, ropts);
    } else {
      dispatch_forked(name, misses, miss_indices, request, &reply.missing);
    }
    persist(name, work);
  }

  // Warm replay of the full (or surviving) set: every computed outcome
  // replays from the cache, so the payload is byte-identical to a
  // single-process `rv_batch run` of the same declaration.
  RunnerOptions warm;
  warm.threads = options_.threads;
  warm.cache = &cache_;
  if (reply.missing.empty()) {
    reply.kind = "ok";
    reply.payload = render(run_scenarios(work, warm), request.format);
  } else {
    std::sort(reply.missing.begin(), reply.missing.end());
    std::vector<WorkItem> surviving;
    surviving.reserve(work.size() - reply.missing.size());
    std::size_t next_missing = 0;
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (next_missing < reply.missing.size() &&
          reply.missing[next_missing] == i) {
        ++next_missing;
        continue;
      }
      surviving.push_back(work[i]);
    }
    reply.kind = "partial";
    reply.payload = render(run_scenarios(surviving, warm), request.format);
  }
  return reply;
}

void Service::dispatch_forked(const std::string& set_name,
                              const std::vector<WorkItem>& misses,
                              const std::vector<std::size_t>& miss_indices,
                              const Request& request,
                              std::vector<std::size_t>* missing) {
  const std::lock_guard<std::mutex> disk(disk_mutex_);
  // Children must not touch the shared cache: another worker may hold
  // its mutex at fork time, which would deadlock the child.  Snapshot
  // into a fresh-mutex copy owned by this thread instead.
  ScenarioCache warm;
  for (auto& [key, entry] : cache_.snapshot()) {
    warm.store(key, std::move(entry));
  }
  const std::size_t procs = options_.procs;
  unsigned budget = options_.threads != 0 ? options_.threads
                                          : std::thread::hardware_concurrency();
  if (budget == 0) budget = 1;
  const unsigned child_threads =
      std::max(1u, static_cast<unsigned>(budget / procs));
  const std::string shard_set = sanitize_name(set_name) + "-serve";
  const auto shard_path = [&](std::size_t p) {
    return options_.cache_dir / shard_file_name(shard_set, p, procs);
  };
  const auto child_main = [&](std::size_t p) -> int {
    RV_FAILPOINT_AT("serve.shard", p);
    const ShardPlan plan = shard_plan(misses.size(), p, procs);
    RunnerOptions ropts;
    ropts.threads = child_threads;
    ropts.cache = &warm;
    (void)run_shard(misses, plan, ropts);
    ScenarioCache own;
    ScenarioCache::Entry entry;
    for (const std::size_t i : plan.indices) {
      const std::optional<std::string> key = cache_key(misses[i]);
      if (key && warm.lookup(*key, &entry)) own.store(*key, entry);
    }
    save_cache_file(shard_path(p), own);
    return 0;
  };
  SupervisorOptions sup = options_.supervisor;
  if (request.deadline_ms > 0.0) {
    const double remaining_ms =
        request.admitted_ms + request.deadline_ms - now_ms();
    if (remaining_ms <= 0.0) {
      throw ServeError("deadline", "deadline of " +
                                       fmt_ms(request.deadline_ms) +
                                       " ms expired before forked dispatch");
    }
    const double remaining_sec = remaining_ms / 1000.0;
    sup.timeout_sec = sup.timeout_sec > 0.0
                          ? std::min(sup.timeout_sec, remaining_sec)
                          : remaining_sec;
  }
  const SupervisorReport report = supervise_shards(procs, child_main, sup);
  // Fold every child's persisted outcomes back into the warm cache
  // (first-writer-wins; a failed shard's file may simply be absent).
  for (std::size_t p = 0; p < procs; ++p) {
    (void)load_cache_file(shard_path(p), &cache_);
  }
  if (report.any_failures()) note("serve: supervisor report:\n" + report.table());
  if (report.complete()) return;
  const std::vector<std::size_t> failed = report.failed_shards();
  bool timed_out = false;
  for (const ShardStatus& status : report.shards) {
    if (status.succeeded) continue;
    for (const ShardAttempt& attempt : status.attempts) {
      if (attempt.outcome == AttemptOutcome::kTimeout) timed_out = true;
    }
  }
  if (!request.partial) {
    std::string list;
    for (const std::size_t shard : failed) {
      if (!list.empty()) list += ", ";
      list += std::to_string(shard);
    }
    const bool deadline_blame = timed_out && request.deadline_ms > 0.0;
    throw ServeError(deadline_blame ? "deadline" : "failed",
                     "shards failed after retries: " + list +
                         " (request 'partial' to accept the surviving "
                         "subset)");
  }
  for (std::size_t j = 0; j < miss_indices.size(); ++j) {
    const std::size_t shard = j % procs;
    if (std::find(failed.begin(), failed.end(), shard) != failed.end()) {
      missing->push_back(miss_indices[j]);
    }
  }
}

void Service::persist(const std::string& set_name,
                      const std::vector<WorkItem>& work) {
  if (options_.cache_dir.empty()) return;
  ScenarioCache own;
  ScenarioCache::Entry entry;
  for (const WorkItem& item : work) {
    const std::optional<std::string> key = cache_key(item);
    if (key && cache_.lookup(*key, &entry)) own.store(*key, entry);
  }
  if (own.size() == 0) return;
  const std::lock_guard<std::mutex> disk(disk_mutex_);
  save_cache_file(
      options_.cache_dir / (sanitize_name(set_name) + "-serve.rvcache"), own);
}

void Service::compactor_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto interval =
      std::chrono::duration<double>(options_.compact_interval_sec);
  for (;;) {
    compact_cv_.wait_for(lock, interval, [&] { return stopping_; });
    if (stopping_) return;
    lock.unlock();
    try {
      const std::lock_guard<std::mutex> disk(disk_mutex_);
      const CompactResult result =
          compact_cache_dir(options_.cache_dir, options_.compact);
      {
        const std::lock_guard<std::mutex> counters_lock(mutex_);
        counters_.compactions += 1;
      }
      note("serve: compacted " + std::to_string(result.files.size()) +
           " cache files into " + result.output.filename().string() + " (" +
           std::to_string(result.entries) + " entries, " +
           std::to_string(result.output_bytes) + " bytes)");
    } catch (const std::exception& error) {
      note(std::string("serve: compaction failed: ") + error.what());
    }
    lock.lock();
  }
}

// --------------------------------------------------------------------
// Stream pump
// --------------------------------------------------------------------

bool serve_stream(Service& service, std::istream& in, std::ostream& out) {
  std::mutex write_mutex;
  const auto write_reply = [&](const std::string& reply) {
    const std::lock_guard<std::mutex> lock(write_mutex);
    const failpoint::Hit hit = RV_FAILPOINT_EVAL("serve.reply");
    if (hit.fired && hit.action == failpoint::Action::kTornWrite) {
      const std::size_t n = std::min<std::size_t>(hit.arg, reply.size());
      out.write(reply.data(), static_cast<std::streamsize>(n));
      out.flush();
      return;
    }
    out.write(reply.data(), static_cast<std::streamsize>(reply.size()));
    out.flush();
  };
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Request request;
    try {
      request = parse_request(line);
    } catch (const ServeError& error) {
      write_reply(service.reject("", error.code(), error.what()));
      continue;
    }
    if (request.has_body) {
      request.body.resize(request.body_bytes);
      if (request.body_bytes > 0) {
        in.read(request.body.data(),
                static_cast<std::streamsize>(request.body_bytes));
        if (static_cast<std::size_t>(in.gcount()) != request.body_bytes) {
          write_reply(service.reject(request.id, "parse",
                                     "EOF inside request body"));
          break;
        }
      }
      const int terminator = in.get();
      if (terminator != '\n') {
        write_reply(service.reject(request.id, "parse",
                                   "request body must end with LF"));
        if (terminator == std::char_traits<char>::eof()) break;
        in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
        continue;
      }
    }
    Service::Admission admission = Service::Admission::kReplied;
    try {
      admission = service.submit(std::move(request), write_reply);
    } catch (const std::exception& error) {
      service.note_failure(std::string("serve: inline reply failed: ") +
                           error.what());
    }
    if (admission == Service::Admission::kShutdown) {
      service.drain();
      return true;
    }
  }
  service.drain();
  return false;
}

void Service::note_failure(const std::string& message) const { note(message); }

}  // namespace rv::engine::serve
