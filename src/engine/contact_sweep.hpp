#pragma once

/// \file contact_sweep.hpp
/// The certified first-contact sweep — the single implementation of the
/// Lipschitz-step/bisection argument shared by every simulator in the
/// repository.
///
/// Between trajectory breakpoints each robot moves along one primitive,
/// so every pairwise separation d_ij(t) is Lipschitz with constant
/// v_i + v_j (the sum of the traversal speeds on the current
/// primitives).  Consequently both sweep metrics
///   * min over pairs of d_ij  (first contact / 2-robot rendezvous) and
///   * max over pairs of d_ij  (all-pairs gathering)
/// are Lipschitz with constant  L = max over pairs of (v_i + v_j), and
/// the sweep may advance by Δt = (metric − r)/L — the largest step that
/// provably cannot skip a crossing — then refine by bisection once the
/// metric dips below r.  This yields *certified* event times up to a
/// tolerance, without trusting any fixed sampling grid.
///
/// Both per-step quantities are computed by near-linear kernels
/// (engine/metric_kernel.hpp): the metric by an adaptive
/// brute-force/grid/calipers kernel, and L as the sum of the two
/// largest current segment speeds — identical values to the historical
/// O(n²) loops, so step schedules and outputs are unchanged while
/// 1000-robot fleets sweep in near-linear time per evaluation.
///
/// How the sweep *advances* between evaluations is itself dispatched
/// (engine/event_solver.hpp, `SweepOptions::solver`): the default
/// bisection path steps and bisects as described above, while the
/// analytic path models each active segment pair's squared distance in
/// closed form per window (quadratics for line/wait pairs, certified
/// derivative-bound brackets refined with mathx::brent for arc pairs)
/// and jumps straight to the first candidate crossing — O(active
/// windows) metric evaluations per sweep instead of
/// O(steps·log(1/tol)).  Positions are evaluated through the SoA
/// batched evaluator (traj/batch.hpp) on every path — one pass over
/// the fleet's current segments, bitwise identical to the per-robot
/// variant dispatch it replaces.
///
/// Tangential touches shallower than L·min_step can be passed over (a
/// Zeno guard forces progress); all experiments in this repository
/// involve transversal crossings, and `contact_tol` absorbs grazing
/// contacts to within 1e−9 world units.
///
/// `sim::TwoRobotSimulator` (2-robot rendezvous) and
/// `gather::MultiRobotSimulator` (n-robot gathering) are thin adapters
/// over this class; neither carries its own stepping logic.

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/event_solver.hpp"
#include "engine/metric_kernel.hpp"
#include "geom/attributes.hpp"
#include "traj/batch.hpp"
#include "traj/frame.hpp"
#include "traj/program.hpp"

namespace rv::engine {

/// One robot: a local program, hidden attributes, and a global origin.
struct RobotSpec {
  std::shared_ptr<traj::Program> program;
  geom::RobotAttributes attributes;
  geom::Vec2 origin;
};

/// The shared sweep controls.  `sim::SimOptions` is an alias of this
/// struct, and `gather::GatherOptions` embeds it, so every simulator in
/// the repository consumes the same tolerance knobs.
struct SweepOptions {
  double visibility = 1.0;      ///< r > 0, finite: event at metric ≤ r
  double max_time = 1e9;        ///< give-up horizon (global time), finite
  double contact_tol = 1e-9;    ///< accept the event when metric ≤ r + contact_tol
  double time_tol = 1e-9;       ///< bisection tolerance on the event time
  double min_step = 1e-9;       ///< Zeno guard: forced progress per step
  std::uint64_t max_evals = 500'000'000;  ///< hard cap on metric evaluations
  /// Which pairwise metric kernel evaluates the sweep (see
  /// engine/metric_kernel.hpp); kAuto cuts over from the brute-force
  /// loop to the near-linear geometric kernels at `kKernelCutover`.
  KernelChoice kernel = KernelChoice::kAuto;
  /// Which event solver advances the sweep between evaluations (see
  /// engine/event_solver.hpp).  The default `kBisection` is the
  /// historical Lipschitz-step + bisection path, byte-identical to
  /// every committed output — and the only solver the batch families
  /// ever use, so cacheable outcomes (`engine::cache_key` does not key
  /// the solver) are never produced by the analytic path.  `kAnalytic`
  /// jumps by per-window pair models (closed-form quadratics, brent on
  /// arcs), agreeing with the oracle to within the sweep tolerances
  /// while performing O(active windows) metric evaluations instead of
  /// O(steps·log(1/tol)).
  SolverChoice solver = SolverChoice::kBisection;
};

/// Which pairwise statistic the sweep watches for the event metric ≤ r.
enum class SweepMetric {
  kMinPairwise,  ///< any pair within r (first contact / rendezvous)
  kMaxPairwise,  ///< every pair within r simultaneously (gathering)
};

/// Outcome of a sweep.
struct SweepResult {
  bool event = false;        ///< true iff the metric reached r before max_time
  double time = 0.0;         ///< certified event time (or the horizon)
  double metric = 0.0;       ///< metric value at `time`
  double best_metric = 0.0;  ///< smallest metric seen at sweep evaluations
  double best_metric_time = 0.0;  ///< when the best metric was seen
  int pair_i = -1;  ///< extremal pair at `time` (consistent with `metric`
  int pair_j = -1;  ///< and `positions`; set on event and at the horizon)
  std::vector<geom::Vec2> positions;  ///< all robot positions at `time`
  std::uint64_t evals = 0;     ///< metric evaluations performed
  std::uint64_t segments = 0;  ///< timed segments consumed (all robots)
  /// Single-pair model evaluations performed by the analytic solver
  /// (closed-form solves and certified arc-search points); 0 on the
  /// bisection path.  Each costs O(1) versus O(n)–O(n²) for a metric
  /// evaluation counted in `evals`.
  std::uint64_t model_evals = 0;
};

/// Sweeps n ≥ 2 robots forward in global time and reports the first
/// time the chosen pairwise metric reaches the visibility radius.
class ContactSweep {
 public:
  /// \throws std::invalid_argument for fewer than 2 robots, null
  /// programs, or bad options.
  ContactSweep(std::vector<RobotSpec> robots, SweepMetric metric,
               SweepOptions options);

  /// Runs until the event or the horizon; single use (the segment
  /// streams are consumed).
  [[nodiscard]] SweepResult run();

  /// Number of robots.
  [[nodiscard]] std::size_t size() const { return streams_.size(); }

 private:
  /// The historical Lipschitz-step + bisection sweep (the bitwise
  /// oracle; `SweepOptions::solver == kBisection`).
  [[nodiscard]] SweepResult run_bisection();
  /// The analytic per-window sweep (`kAnalytic`, and `kAuto` which
  /// falls back to certified stepping on windows containing arcs).
  [[nodiscard]] SweepResult run_analytic(bool auto_mode);

  std::vector<traj::GlobalSegmentStream> streams_;
  std::vector<traj::TimedSegment> current_;
  traj::BatchedPositions batch_;  ///< SoA evaluator over `current_`
  std::vector<geom::Vec2> pos_;
  std::vector<double> speeds_;  ///< reused per-step speed buffer
  SweepMetric metric_;
  SweepOptions opts_;
};

}  // namespace rv::engine
