#pragma once

/// \file wire.hpp
/// Fixed-width byte encoders shared by the two binary surfaces of the
/// engine: the cache-*key* builder (`engine::cache_key` in
/// families.cpp) and the cache-*store* payload codec
/// (engine/cache_store.cpp).  Both append raw `memcpy` bytes of
/// fixed-width types (little-endian on every supported target), but
/// they need different double semantics — keys canonicalise −0.0 onto
/// +0.0 so numerically equal cells key identically, while stored
/// outcomes must round-trip bit-exactly — so both variants live here,
/// explicitly named, instead of two drifting private copies.

#include <cstring>
#include <string>

namespace rv::engine::wire {

/// Appends the raw bytes of a fixed-width value.
template <typename T>
inline void put(std::string& out, T v) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  out.append(bytes, sizeof(T));
}

/// Doubles for *stored payloads*: raw IEEE-754 bytes, exact round-trip
/// (−0.0, NaN payloads and all).
inline void put_f64_raw(std::string& out, double v) { put(out, v); }

/// Doubles for *content keys*: −0.0 normalised onto +0.0 (the only
/// distinct representations that compare numerically equal here), so
/// equal cells produce equal keys.
inline void put_f64_canonical(std::string& out, double v) {
  v += 0.0;  // −0.0 → +0.0
  put(out, v);
}

}  // namespace rv::engine::wire
