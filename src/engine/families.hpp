#pragma once

/// \file families.hpp
/// Workload families of the batch engine.
///
/// PR 1 made `src/engine/` the single certified sweep + declarative
/// batch runner, but only for 2-robot rendezvous scenarios.  This layer
/// generalises the engine into a *multi-workload* batch system: a
/// `ScenarioSet` may declare cells from three families —
///
///  * **rendezvous** — the original `rendezvous::Scenario` attribute
///    grid (v, τ, φ, χ, offset);
///  * **search** — one searcher against a stationary target at distance
///    `d`, evaluated over a *ring of target angles* with the
///    worst-over-angles reduction performed engine-side (the reducer
///    every search bench used to hand-roll);
///  * **gather** — an n-robot fleet on an origin ring, swept for both
///    first contact (min-pairwise) and all-pairs gathering
///    (max-pairwise).
///
/// All families are executed by the same deterministic `Runner`
/// (results placed by cell index, never completion order) and reported
/// through `ResultSet` with per-family standard columns, so table/CSV/
/// JSON output stays byte-identical at any thread count.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gather/multi_simulator.hpp"
#include "geom/attributes.hpp"
#include "geom/vec2.hpp"
#include "rendezvous/core.hpp"
#include "traj/program.hpp"

namespace rv::engine {

/// Which workload family a cell/record belongs to.
enum class Family {
  kRendezvous,  ///< 2-robot rendezvous scenario
  kSearch,      ///< single searcher vs stationary target, angle ring
  kGather,      ///< n-robot fleet, first-contact + all-pairs sweeps
};

/// Display name ("rendezvous", "search", "gather").
[[nodiscard]] const char* family_name(Family family);

// ---------------------------------------------------------------------------
// Search family
// ---------------------------------------------------------------------------

/// Which universal search program the cell runs.
enum class SearchProgram {
  kAlgorithm4,    ///< the paper's Algorithm 4
  kConcentric,    ///< doubling concentric-circle baseline (E9)
  kSquareSpiral,  ///< doubling square-spiral baseline (E9)
};

/// One search cell: target distance `d`, a ring of target angles,
/// visibility `r`, and a program choice.  The runner simulates every
/// angle of the ring and reduces worst-over-angles — the aggregation
/// the search benches (E1, E9, A3) previously hand-rolled.
struct SearchCell {
  double distance = 1.0;      ///< d: target distance from the searcher
  double visibility = 0.05;   ///< r: discovery radius
  int angles = 1;             ///< ring size (targets at 2πa/angles + offset)
  double angle_offset = 0.0;  ///< phase of the ring (avoid axis artefacts)
  SearchProgram program = SearchProgram::kAlgorithm4;
  /// Optional custom program factory overriding `program` (ablations,
  /// e.g. A3's spacing variants).  Must return a fresh Program per
  /// call: one per angle, plus once more per cell to resolve the
  /// reported name when `program_name` is left empty.
  std::function<std::shared_ptr<traj::Program>()> program_factory;
  std::string program_name;   ///< reported name when `program_factory` set
  geom::RobotAttributes attrs = geom::reference_attributes();  ///< searcher
  double max_time = 1e9;      ///< per-angle horizon
};

/// Worst-over-angles reduction of one search cell.
struct SearchOutcome {
  int found = 0;               ///< angles where the target was discovered
  int missed = 0;              ///< angles where the horizon hit first
  bool complete = false;       ///< found == angles
  double worst_time = 0.0;     ///< max discovery time over found angles
  double mean_time = 0.0;      ///< mean discovery time over found angles
  double worst_angle = 0.0;    ///< angle attaining `worst_time`
  double first_miss_angle = 0.0;  ///< first missed angle (when missed > 0)
  std::string program_name;    ///< resolved program name
  std::uint64_t evals = 0;     ///< total metric evaluations over the ring
  std::uint64_t segments = 0;  ///< total segments consumed over the ring
};

/// Runs one search cell: simulates every angle of the ring and reduces
/// worst/mean-over-angles.  Deterministic (angles in ring order).
[[nodiscard]] SearchOutcome run_search_cell(const SearchCell& cell);

// ---------------------------------------------------------------------------
// Gather family
// ---------------------------------------------------------------------------

/// One gathering cell: a fleet of n robots placed on an origin ring,
/// all running the same algorithm.  The runner performs two certified
/// sweeps per cell: first contact (min-pairwise) and all-pairs
/// gathering (max-pairwise), each with its own horizon.
struct GatherCell {
  std::vector<geom::RobotAttributes> fleet;  ///< per-robot attributes (n ≥ 2)
  double ring_radius = 1.0;  ///< robots start at polar(radius, 2πi/n + phase)
  double ring_phase = 0.0;   ///< rotation of the origin ring
  std::vector<geom::Vec2> jitter;  ///< optional per-robot origin offsets
  double visibility = 0.2;   ///< r for both sweeps
  rendezvous::AlgorithmChoice algorithm =
      rendezvous::AlgorithmChoice::kAlgorithm7;
  double contact_max_time = 1e5;  ///< horizon of the first-contact sweep
  double gather_max_time = 2e5;   ///< horizon of the all-pairs sweep
};

/// Origin of robot `i` of the cell's fleet (ring position + jitter).
[[nodiscard]] geom::Vec2 gather_origin(const GatherCell& cell, std::size_t i);

/// Both sweeps of one gathering cell.
struct GatherOutcome {
  gather::GatherResult contact;   ///< min-pairwise (first contact) sweep
  gather::GatherResult gathered;  ///< max-pairwise (all-pairs) sweep
};

/// Runs one gathering cell: builds the fleet on its origin ring and
/// performs the first-contact and all-pairs sweeps.
[[nodiscard]] GatherOutcome run_gather_cell(const GatherCell& cell);

// ---------------------------------------------------------------------------
// Work items
// ---------------------------------------------------------------------------

/// One materialised unit of work of any family, plus its display label.
/// Only the payload matching `family` is meaningful.
struct WorkItem {
  Family family = Family::kRendezvous;
  std::string label;
  rendezvous::Scenario scenario;  ///< kRendezvous payload
  SearchCell search;              ///< kSearch payload
  GatherCell gather;              ///< kGather payload
};

// ---------------------------------------------------------------------------
// Scenario content keys (result cache)
// ---------------------------------------------------------------------------

/// The canonical content key of a work item: a byte string encoding the
/// family, every cell attribute that influences the outcome (attributes,
/// offsets, radii, horizons, grids — raw IEEE-754 bytes with −0.0
/// normalised onto +0.0), and the program identity (the algorithm enum,
/// or `program_name` for a custom factory).  Two items with equal keys
/// produce identical outcomes, so `Runner` may memoize results by key
/// (see `ScenarioCache` in engine/runner.hpp).  Display labels are NOT
/// part of the key — they do not affect the outcome.
///
/// Returns nullopt — the item is *uncacheable* — when a custom program
/// factory is set with an empty `program_name`: an anonymous factory
/// has no stable identity, so memoizing it could silently alias two
/// different programs.  Give the cell a unique `program_name` to make
/// it cacheable (the name must identify the program, and the factory
/// must be deterministic).
[[nodiscard]] std::optional<std::string> cache_key(const WorkItem& item);

}  // namespace rv::engine
