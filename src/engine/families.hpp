#pragma once

/// \file families.hpp
/// Workload families of the batch engine.
///
/// PR 1 made `src/engine/` the single certified sweep + declarative
/// batch runner, but only for 2-robot rendezvous scenarios.  This layer
/// generalises the engine into a *multi-workload* batch system: a
/// `ScenarioSet` may declare cells from five families —
///
///  * **rendezvous** — the original `rendezvous::Scenario` attribute
///    grid (v, τ, φ, χ, offset);
///  * **search** — one searcher against a stationary target at distance
///    `d`, evaluated over a *ring of target angles* with the
///    worst-over-angles reduction performed engine-side (the reducer
///    every search bench used to hand-roll);
///  * **gather** — an n-robot fleet on an origin ring, swept for both
///    first contact (min-pairwise) and all-pairs gathering
///    (max-pairwise);
///  * **linear** — the 1-D (infinite line) setting of the paper's
///    predecessor [11]: doubling-zigzag search to a signed coordinate,
///    or linear rendezvous under 1-D attributes (v, τ, δ);
///  * **coverage** — swept-area accounting: the r-neighbourhood of one
///    program's trajectory rasterised onto a grid, reported as a
///    coverage-vs-time series against a target disk (the area argument
///    of the Ω(d²/r) lower bound, [25]).
///
/// In addition every work item may carry a **component-times hook**:
/// a function producing named numeric sub-metrics (e.g. Lemma 2's
/// closed forms next to measured path durations) that the runner
/// evaluates per cell and `ResultSet` emits as extra standard columns.
///
/// All families are executed by the same deterministic `Runner`
/// (results placed by cell index, never completion order) and reported
/// through `ResultSet` with per-family standard columns, so table/CSV/
/// JSON output stays byte-identical at any thread count.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/coverage.hpp"
#include "gather/multi_simulator.hpp"
#include "geom/attributes.hpp"
#include "geom/vec2.hpp"
#include "linear/linear_rendezvous.hpp"
#include "rendezvous/core.hpp"
#include "sim/simulator.hpp"
#include "traj/program.hpp"

namespace rv::engine {

/// Which workload family a cell/record belongs to.
enum class Family {
  kRendezvous,  ///< 2-robot rendezvous scenario
  kSearch,      ///< single searcher vs stationary target, angle ring
  kGather,      ///< n-robot fleet, first-contact + all-pairs sweeps
  kLinear,      ///< 1-D zigzag search / linear rendezvous ([11])
  kCoverage,    ///< rasterised swept-area accounting ([25])
};

/// Display name ("rendezvous", "search", "gather", "linear",
/// "coverage").
[[nodiscard]] const char* family_name(Family family);

// ---------------------------------------------------------------------------
// Component times (named sub-metric columns)
// ---------------------------------------------------------------------------

/// One named numeric sub-metric of a cell — e.g. a Lemma 2 closed form
/// next to the measured duration of the generated trajectory.
struct Component {
  std::string name;
  double value = 0.0;
};

/// The component times of one cell, in declaration order (the order
/// becomes the column order in `ResultSet` emission).
using Components = std::vector<Component>;

/// The value of the named component.  \throws std::out_of_range when
/// the name is absent.
[[nodiscard]] double component_value(const Components& components,
                                     const std::string& name);

struct RunRecord;  // defined below, after the cells and outcomes

/// The component-times hook of a work item: evaluated by the runner
/// after the cell's payload run (the record carries both the cell and
/// its outcome), inside the worker, so hooks parallelise with the
/// sweep.  Must be a pure function of the record.  `ScenarioSet`
/// installs per-family typed hooks and per-cell overrides; see
/// engine/scenario_set.hpp.
using ComponentsFn = std::function<Components(const RunRecord&)>;

// ---------------------------------------------------------------------------
// Search family
// ---------------------------------------------------------------------------

/// Which universal search program the cell runs.
enum class SearchProgram {
  kAlgorithm4,    ///< the paper's Algorithm 4
  kConcentric,    ///< doubling concentric-circle baseline (E9)
  kSquareSpiral,  ///< doubling square-spiral baseline (E9)
};

/// One search cell: target distance `d`, a ring of target angles,
/// visibility `r`, and a program choice.  The runner simulates every
/// angle of the ring and reduces worst-over-angles — the aggregation
/// the search benches (E1, E9, A3) previously hand-rolled.
struct SearchCell {
  double distance = 1.0;      ///< d: target distance from the searcher
  double visibility = 0.05;   ///< r: discovery radius
  int angles = 1;             ///< ring size (targets at 2πa/angles + offset)
  double angle_offset = 0.0;  ///< phase of the ring (avoid axis artefacts)
  /// Explicit target positions overriding the angle ring: when
  /// non-empty, exactly these targets are simulated (in order) and
  /// `distance`/`angles`/`angle_offset` are ignored by the reducer
  /// (keep them set for display if you like).  The reported worst/miss
  /// angles are atan2(y, x) of the targets.
  std::vector<geom::Vec2> targets;
  SearchProgram program = SearchProgram::kAlgorithm4;
  /// Optional custom program factory overriding `program` (ablations,
  /// e.g. A3's spacing variants).  Must return a fresh Program per
  /// call: one per angle, plus once more per cell to resolve the
  /// reported name when `program_name` is left empty.
  std::function<std::shared_ptr<traj::Program>()> program_factory;
  std::string program_name;   ///< reported name when `program_factory` set
  geom::RobotAttributes attrs = geom::reference_attributes();  ///< searcher
  double max_time = 1e9;      ///< per-angle horizon
};

/// Worst-over-angles reduction of one search cell.
struct SearchOutcome {
  int found = 0;               ///< angles where the target was discovered
  int missed = 0;              ///< angles where the horizon hit first
  bool complete = false;       ///< found == angles
  double worst_time = 0.0;     ///< max discovery time over found angles
  double mean_time = 0.0;      ///< mean discovery time over found angles
  double worst_angle = 0.0;    ///< angle attaining `worst_time`
  double first_miss_angle = 0.0;  ///< first missed angle (when missed > 0)
  std::string program_name;    ///< resolved program name
  std::uint64_t evals = 0;     ///< total metric evaluations over the ring
  std::uint64_t segments = 0;  ///< total segments consumed over the ring
};

/// Runs one search cell: simulates every angle of the ring and reduces
/// worst/mean-over-angles.  Deterministic (angles in ring order).
[[nodiscard]] SearchOutcome run_search_cell(const SearchCell& cell);

// ---------------------------------------------------------------------------
// Gather family
// ---------------------------------------------------------------------------

/// One gathering cell: a fleet of n robots placed on an origin ring,
/// all running the same algorithm.  The runner performs two certified
/// sweeps per cell: first contact (min-pairwise) and all-pairs
/// gathering (max-pairwise), each with its own horizon.
struct GatherCell {
  std::vector<geom::RobotAttributes> fleet;  ///< per-robot attributes (n ≥ 2)
  double ring_radius = 1.0;  ///< robots start at polar(radius, 2πi/n + phase)
  double ring_phase = 0.0;   ///< rotation of the origin ring
  std::vector<geom::Vec2> jitter;  ///< optional per-robot origin offsets
  double visibility = 0.2;   ///< r for both sweeps
  rendezvous::AlgorithmChoice algorithm =
      rendezvous::AlgorithmChoice::kAlgorithm7;
  double contact_max_time = 1e5;  ///< horizon of the first-contact sweep
  double gather_max_time = 2e5;   ///< horizon of the all-pairs sweep
};

/// Origin of robot `i` of the cell's fleet (ring position + jitter).
[[nodiscard]] geom::Vec2 gather_origin(const GatherCell& cell, std::size_t i);

/// Both sweeps of one gathering cell.
struct GatherOutcome {
  gather::GatherResult contact;   ///< min-pairwise (first contact) sweep
  gather::GatherResult gathered;  ///< max-pairwise (all-pairs) sweep
};

/// Runs one gathering cell: builds the fleet on its origin ring and
/// performs the first-contact and all-pairs sweeps.
[[nodiscard]] GatherOutcome run_gather_cell(const GatherCell& cell);

// ---------------------------------------------------------------------------
// Linear family (the 1-D setting of [11])
// ---------------------------------------------------------------------------

/// What a linear cell runs.
enum class LinearMode {
  kZigZagSearch,  ///< doubling zigzag to the target at coordinate x
  kRendezvous,    ///< universal linear rendezvous under (v, τ, δ)
};

/// Display name ("zigzag-search", "linear-rendezvous").
[[nodiscard]] const char* linear_mode_name(LinearMode mode);

/// One 1-D cell.  All motion is on the x axis of the shared planar
/// substrate: the search mode runs the doubling zigzag
/// (`linear::ZigZagProgram`) from the origin against a stationary
/// target at `(target, 0)`; the rendezvous mode runs the phase-scheduled
/// linear rendezvous program on both robots, with R′ carrying the 1-D
/// attributes `attrs` (lifted through `linear::to_planar`) and starting
/// at `(target, 0)`.
struct LinearCell {
  LinearMode mode = LinearMode::kRendezvous;
  linear::LinearAttributes attrs;  ///< R′'s hidden (v, τ, δ); search: searcher
  double target = 1.0;  ///< signed target coordinate / initial offset d
  double visibility = 0.05;  ///< r (on the line: the catch half-width)
  double max_time = 1e6;     ///< simulation horizon
};

/// Outcome of one linear cell.
struct LinearOutcome {
  /// Rendezvous mode: the [11] feasibility predicate
  /// (`linear::linear_rendezvous_feasible`); search mode: always true
  /// (the zigzag crosses every point of the line).
  bool feasible = false;
  sim::SimResult sim;  ///< the certified sweep result
};

/// Runs one linear cell.  \throws std::invalid_argument when the
/// rendezvous offset is 0 (robots must start apart) or the attributes
/// are invalid.
[[nodiscard]] LinearOutcome run_linear_cell(const LinearCell& cell);

// ---------------------------------------------------------------------------
// Coverage family (the [25] area accounting)
// ---------------------------------------------------------------------------

/// One swept-area cell: a program (built-in `SearchProgram` choice or a
/// custom factory, as in the search family) run from the origin for
/// `horizon` time, its r-neighbourhood rasterised at resolution `cell`
/// and reported against the disk of radius `disk_radius`.
struct CoverageCell {
  SearchProgram program = SearchProgram::kAlgorithm4;
  /// Optional custom program factory overriding `program` (same
  /// contract as `SearchCell::program_factory`).
  std::function<std::shared_ptr<traj::Program>()> program_factory;
  std::string program_name;  ///< reported name when `program_factory` set
  geom::RobotAttributes attrs = geom::reference_attributes();  ///< the robot
  double disk_radius = 2.0;  ///< R: target disk for coverage fractions
  double visibility = 0.1;   ///< r: swept neighbourhood radius
  double cell = 0.02;        ///< rasterisation grid resolution
  int checkpoints = 32;      ///< series points over the horizon
  double horizon = 1e4;      ///< how long to run the program
};

/// Outcome of one coverage cell: the full coverage-vs-time series plus
/// the standard summary figures.
struct CoverageOutcome {
  std::vector<analysis::CoveragePoint> series;  ///< checkpoint series
  std::string program_name;  ///< resolved program name
  double t50 = -1.0;  ///< first checkpoint time with fraction ≥ 0.50 (−1: never)
  double t99 = -1.0;  ///< first checkpoint time with fraction ≥ 0.99 (−1: never)
  double final_fraction = 0.0;  ///< covered fraction at the last checkpoint
  double covered_area = 0.0;    ///< absolute marked area at the last checkpoint
};

/// Runs one coverage cell.  \throws std::invalid_argument on bad
/// geometry/options (propagated from `analysis::measure_coverage`).
[[nodiscard]] CoverageOutcome run_coverage_cell(const CoverageCell& cell);

// ---------------------------------------------------------------------------
// Work items
// ---------------------------------------------------------------------------

/// One materialised unit of work of any family, plus its display label.
/// Only the payload matching `family` is meaningful.
struct WorkItem {
  Family family = Family::kRendezvous;
  std::string label;
  rendezvous::Scenario scenario;  ///< kRendezvous payload
  SearchCell search;              ///< kSearch payload
  GatherCell gather;              ///< kGather payload
  LinearCell linear;              ///< kLinear payload
  CoverageCell coverage;          ///< kCoverage payload
  /// Component-times hook; evaluated by the runner after the payload
  /// run (or immediately, for `components_only` items) and emitted by
  /// `ResultSet` as extra standard columns.
  ComponentsFn components;
  /// When true the payload run is skipped entirely: the outcome stays
  /// default-constructed and only `components` is evaluated.  Used for
  /// pure-algebra sweeps (e.g. Lemma 2 closed forms) that want the
  /// declarative grid + deterministic parallel runner without a
  /// simulation.  Components-only items have no content key (nothing
  /// is memoized), so they count as uncacheable under a cache.
  bool components_only = false;
};

// ---------------------------------------------------------------------------
// Run records
// ---------------------------------------------------------------------------

/// One executed work item: what ran and what happened.  Only the
/// payload pair matching `family` is meaningful.  (Defined here rather
/// than in runner.hpp so component-times hooks can see both the cell
/// and its outcome.)
struct RunRecord {
  Family family = Family::kRendezvous;
  std::string label;
  // kRendezvous payload
  rendezvous::Scenario scenario;
  rendezvous::Outcome outcome;
  // kSearch payload
  SearchCell search;
  SearchOutcome search_outcome;
  // kGather payload
  GatherCell gather;
  GatherOutcome gather_outcome;
  // kLinear payload
  LinearCell linear;
  LinearOutcome linear_outcome;
  // kCoverage payload
  CoverageCell coverage;
  CoverageOutcome coverage_outcome;
  /// Evaluated component times (empty when the item had no hook).
  Components components;
};

// ---------------------------------------------------------------------------
// Scenario content keys (result cache)
// ---------------------------------------------------------------------------

/// The canonical content key of a work item: a byte string encoding the
/// family, every cell attribute that influences the outcome (attributes,
/// offsets, radii, horizons, grids — raw IEEE-754 bytes with −0.0
/// normalised onto +0.0), and the program identity (the algorithm enum,
/// or `program_name` for a custom factory).  Two items with equal keys
/// produce identical outcomes, so `Runner` may memoize results by key
/// (see `ScenarioCache` in engine/runner.hpp).  Display labels are NOT
/// part of the key — they do not affect the outcome.
///
/// Returns nullopt — the item is *uncacheable* — when a custom program
/// factory is set with an empty `program_name`: an anonymous factory
/// has no stable identity, so memoizing it could silently alias two
/// different programs.  Give the cell a unique `program_name` to make
/// it cacheable (the name must identify the program, and the factory
/// must be deterministic).  Components-only items are also uncacheable:
/// they produce no payload outcome to memoize (component hooks are
/// always re-evaluated, never cached).
[[nodiscard]] std::optional<std::string> cache_key(const WorkItem& item);

}  // namespace rv::engine
