#pragma once

/// \file serve.hpp
/// The scenario engine as a long-lived service.
///
/// `rv_batch` answers one sweep per process; every invocation re-loads
/// the persistent cache, runs, and exits.  The serve layer keeps one
/// process resident: a `Service` warm-loads the cache directory once,
/// then answers request after request — hits straight from the
/// in-memory `ScenarioCache` (O(lookup), never recomputed), misses
/// batched per request and dispatched through the existing
/// `Runner`/`shard` machinery (in-process pool by default, forked
/// shard workers exchanging `*.rvcache` files behind the PR 8
/// supervisor when `ServeOptions::procs > 1`).  Replies replay the
/// full set warm, so the payload is **byte-identical to `rv_batch
/// run`** on the same declaration — the conformance property
/// tests/test_serve.cpp pins and CI re-diffs.
///
/// ## Wire protocol (newline-delimited JSON, optional raw bodies)
///
/// One request is one LF-terminated JSON object (a strict flat object;
/// unknown or duplicate keys are errors), optionally followed by a raw
/// `.rvset` body:
///
///     {"op":"run","id":"r1","set":"linear-line","format":"csv"}
///     {"op":"run","id":"r2","body_bytes":164}
///     <164 bytes of .rvset text><LF>
///     {"op":"status","id":"s1"}
///     {"op":"shutdown"}
///
/// Header keys:
///   * `op`          — "run" | "status" | "shutdown" (required);
///   * `id`          — string echoed in the reply (defaults to the
///                     admission sequence number);
///   * `set`         — a set name resolved by `ServeOptions::resolver`
///                     (rv_serve installs the rv_batch built-ins);
///   * `body_bytes`  — exactly this many raw bytes of `.rvset`
///                     declaration text follow the header line, then
///                     one terminating LF (exclusive with `set`);
///   * `format`      — "csv" | "json" | "table" (default "csv");
///   * `deadline_ms` — per-request deadline from admission; 0 (the
///                     default) disables it;
///   * `partial`     — with forked dispatch, accept an incomplete
///                     reply when shards fail (mirrors `rv_batch
///                     --partial`).
///
/// Replies are *frames*: one LF-terminated JSON header line and, when
/// the header carries a `"bytes":N` field, exactly N payload bytes
/// plus one trailing LF.  Every frame leaves through one writer (the
/// `serve.reply` failpoint site — the only place `torn_write` can
/// truncate), and the header's key order is fixed, so tests pin exact
/// bytes:
///
///     {"reply":"ok","id":"r1","bytes":N,"hits":H,"misses":M,
///      "uncacheable":U}            + N payload bytes + LF
///     {"reply":"partial",...,"missing_indices":[3,7]}   (as ok)
///     {"reply":"error","id":"r1","code":"parse","message":"..."}
///     {"reply":"error","id":"r1","code":"overloaded",
///      "retry_after_ms":100,"message":"..."}
///     {"reply":"status","id":"s1",...counters...}
///     {"reply":"shutdown","id":"s2"}          (shutdown acknowledged)
///
/// Error codes: `parse` (malformed header/body), `bad-set` (unknown
/// set name or `.rvset` declaration error), `overloaded` (admission
/// queue full — retry after `retry_after_ms`), `deadline` (the
/// request's deadline expired before or during dispatch), `failed`
/// (dispatch failed for another reason).  A malformed request always
/// gets a structured error reply — never a crash, never a torn
/// stream: the reader resynchronises at the next LF.
///
/// Failpoint sites (chaos hooks, see engine/failpoint.hpp):
/// `serve.accept` (admission, index = request seq), `serve.dispatch`
/// (worker dequeue, index = request seq), `serve.shard` (forked shard
/// child entry, index = shard id), `serve.reply` (the framed writer —
/// the only site honouring `torn_write`).
///
/// Determinism: computed payload bytes stay a pure function of the
/// scenario inputs.  The clocks consulted here pace deadlines,
/// latency counters, and the compaction timer only — none of it feeds
/// payload bytes (the same contract as engine/supervisor.hpp).

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <filesystem>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "engine/cache_store.hpp"
#include "engine/runner.hpp"
#include "engine/scenario_set.hpp"
#include "engine/supervisor.hpp"

namespace rv::engine::serve {

/// A structured protocol failure: `code()` is the wire error code the
/// reply carries (`parse`, `bad-set`, `deadline`, `failed`, ...),
/// `what()` the human-readable message.
class ServeError : public std::runtime_error {
 public:
  ServeError(std::string code, const std::string& message)
      : std::runtime_error(message), code_(std::move(code)) {}
  [[nodiscard]] const std::string& code() const noexcept { return code_; }

 private:
  std::string code_;
};

enum class Op : std::uint8_t { kRun, kStatus, kShutdown };

/// One parsed request header (plus its body, once read).
struct Request {
  Op op = Op::kRun;
  std::string id;           ///< echoed; defaulted to the admission sequence
  std::string set;          ///< named set (resolver), exclusive with body
  bool has_body = false;    ///< header declared `body_bytes`
  std::size_t body_bytes = 0;
  std::string body;         ///< raw `.rvset` declaration text
  std::string format = "csv";
  double deadline_ms = 0.0; ///< 0 = no deadline
  bool partial = false;
  // Filled at admission by `Service::submit`:
  std::uint64_t seq = 0;
  double admitted_ms = 0.0; ///< service monotonic clock at admission
};

/// Upper bound on one request header line; longer lines are a `parse`
/// error (the reader still resynchronises at the next LF).
inline constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
/// Upper bound on a declared `.rvset` body.
inline constexpr std::size_t kMaxBodyBytes = 8 * 1024 * 1024;

/// Parses one request header line (strict flat JSON object; see the
/// file comment for keys).  \throws ServeError("parse", ...) on any
/// malformed input — unknown keys, duplicate keys, wrong types,
/// missing `op`, `set` together with `body_bytes`, oversized bodies.
[[nodiscard]] Request parse_request(std::string_view header_line);

/// Counters returned by a `status` request (and `Service::counters`).
/// `inflight`/`queue_depth`/`cache_entries` are point-in-time
/// snapshots; everything else accumulates from service start.
struct Counters {
  std::uint64_t requests = 0;    ///< requests seen, every op (incl. rejected)
  std::uint64_t ok = 0;          ///< ok + partial replies
  std::uint64_t errors = 0;      ///< error replies (incl. rejections)
  std::uint64_t rejected = 0;    ///< queue-full `overloaded` rejections
  std::uint64_t expired = 0;     ///< `deadline` error replies
  std::uint64_t hits = 0;        ///< cells answered from the warm cache
  std::uint64_t misses = 0;      ///< cells computed (then cached)
  std::uint64_t uncacheable = 0; ///< cells with no content key
  std::uint64_t inflight = 0;    ///< run requests queued or executing
  std::uint64_t queue_depth = 0; ///< run requests waiting in the queue
  std::uint64_t compactions = 0; ///< compaction-timer runs completed
  std::uint64_t latency_count = 0;  ///< completed run requests
  double latency_total_ms = 0.0;    ///< sum of admission->reply latencies
  double latency_max_ms = 0.0;      ///< worst admission->reply latency
  std::size_t cache_entries = 0;    ///< in-memory ScenarioCache size
};

/// Service configuration.
struct Options {
  /// Bound of the run-request admission queue; a request arriving with
  /// the queue full is rejected with an `overloaded` error reply
  /// carrying `retry_after_ms` (backpressure, not blocking).
  std::size_t queue_depth = 64;
  /// Worker threads draining the queue.  One worker (the default)
  /// replies in admission order — the deterministic mode conformance
  /// tests pin; more workers trade ordering for throughput.
  unsigned workers = 1;
  /// Runner threads per dispatch (0 = hardware concurrency).
  unsigned threads = 0;
  /// Forked shard workers per dispatch; 1 (the default) computes
  /// misses in-process.  > 1 requires `cache_dir` (children hand their
  /// outcomes back as `*.rvcache` shard files).
  std::size_t procs = 1;
  /// Persistent cache directory: warm-loaded at construction, misses
  /// persisted back after each run.  Empty disables persistence.
  std::filesystem::path cache_dir;
  /// When > 0, a timer thread runs `compact_cache_dir(cache_dir,
  /// compact)` every this-many seconds.
  double compact_interval_sec = 0.0;
  CompactOptions compact;  ///< eviction knobs of the timer
  /// `retry_after_ms` value carried by `overloaded` rejections.
  std::uint64_t retry_after_ms = 100;
  /// Supervision of forked dispatch (retries/backoff); a request
  /// deadline overrides `timeout_sec` with its remaining budget.
  SupervisorOptions supervisor;
  /// Resolves `"set":NAME` requests to a declaration.  Throws
  /// std::invalid_argument for unknown names (replied as `bad-set`).
  /// Null rejects every named-set request.
  std::function<ScenarioSet(const std::string&)> resolver;
  /// Optional diagnostic sink (rv_serve wires stderr).  Never receives
  /// payload bytes.
  std::function<void(const std::string&)> log;
};

/// Assembles one reply frame: `header + LF` and, when `payload` is
/// attached (headers carrying a `bytes` field), `payload + LF`.
[[nodiscard]] std::string frame(const std::string& header,
                                std::string_view payload = {},
                                bool has_payload = false);

/// Builds a framed `error` reply.
[[nodiscard]] std::string error_frame(const std::string& id,
                                      const std::string& code,
                                      const std::string& message);

/// Reads one reply frame from `in`: the header line into `*header`
/// and, when the header declares `"bytes":N`, the N payload bytes
/// (trailing LF consumed) into `*payload`.  Returns false on clean
/// EOF before any byte of a frame.  \throws ServeError("parse", ...)
/// on a torn or malformed frame.
bool read_frame(std::istream& in, std::string* header, std::string* payload);

/// The resident engine: one warm cache, one admission queue, worker
/// threads, an optional compaction timer.  Thread-safe: `submit` may
/// be called from any number of reader threads.
class Service {
 public:
  /// What `submit` did with the request.
  enum class Admission : std::uint8_t {
    kQueued,   ///< accepted; the sink fires when a worker finishes
    kReplied,  ///< answered inline (status, rejection, inline error)
    kShutdown, ///< shutdown acknowledged; drain and stop reading
  };
  /// Receives exactly one complete reply frame per submitted request.
  /// Called from the submitting thread (inline replies) or a worker.
  using Sink = std::function<void(const std::string&)>;

  /// Warm-loads `options.cache_dir` and starts workers/timer.
  /// \throws std::invalid_argument on inconsistent options (procs > 1
  /// without a cache_dir, zero workers, zero queue depth).
  explicit Service(Options options);
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Admits one parsed request (body already attached).  Stamps
  /// seq/id/admission time; status and rejections reply inline, run
  /// requests are queued.  The sink always receives exactly one frame
  /// (for kQueued, later, from a worker thread).
  Admission submit(Request request, Sink sink);

  /// Parse + submit + wait: the synchronous in-process client used by
  /// stress tests.  Returns the complete reply frame (including error
  /// frames for malformed headers — this never throws protocol
  /// errors).
  [[nodiscard]] std::string process(const std::string& header_line,
                                    std::string_view body = {});

  /// Counts one rejected request (requests + errors) and builds its
  /// error frame — the reader-side path for headers that never reach
  /// `submit` (parse failures, torn bodies), so every reply written to
  /// the wire is accounted for.
  [[nodiscard]] std::string reject(const std::string& id,
                                   const std::string& code,
                                   const std::string& message);

  /// Forwards a diagnostic line to `Options::log` (reader loops use
  /// this for delivery failures).
  void note_failure(const std::string& message) const;

  /// Blocks until the queue is empty and every worker is idle.
  void drain();

  /// Point-in-time counters (what a `status` request reports).
  [[nodiscard]] Counters counters() const;

  /// Entries in the in-memory cache.
  [[nodiscard]] std::size_t cache_size() const;

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  struct Pending {
    Request request;
    Sink sink;
  };
  struct Reply {
    std::string kind;  ///< "ok" | "partial"
    std::string payload;
    CacheStats stats;
    std::vector<std::size_t> missing;  ///< partial: global indices lost
  };

  void worker_loop();
  void compactor_loop();
  [[nodiscard]] std::string execute(const Request& request);
  [[nodiscard]] Reply execute_run(const Request& request);
  /// Fork dispatch of the request's misses; fills `missing` with lost
  /// global indices when shards fail.  \throws ServeError.
  void dispatch_forked(const std::string& set_name,
                       const std::vector<WorkItem>& misses,
                       const std::vector<std::size_t>& miss_indices,
                       const Request& request,
                       std::vector<std::size_t>* missing);
  void persist(const std::string& set_name, const std::vector<WorkItem>& work);
  [[nodiscard]] std::string status_header(const Request& request) const;
  void note(const std::string& message) const;

  Options options_;
  ScenarioCache cache_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;   ///< workers wait for work
  std::condition_variable drain_cv_;   ///< drain() waits for idle
  std::deque<Pending> queue_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t active_ = 0;    ///< requests currently executing
  std::uint64_t replying_ = 0;  ///< replies being delivered (drain() waits;
                                ///< excluded from `inflight` so a client that
                                ///< has read its reply sees settled counters)
  bool stopping_ = false;
  Counters counters_;

  std::mutex disk_mutex_;  ///< serialises cache-dir writes vs compaction

  std::condition_variable compact_cv_;  ///< wakes the timer for shutdown
  std::vector<std::thread> workers_;
  std::thread compactor_;
};

/// Pumps requests from `in` and writes reply frames to `out` until EOF
/// or a `shutdown` request (drains queued work before returning; true
/// iff a shutdown ended the loop — socket daemons use that to stop
/// accepting).  This is the daemon's reader loop: header parse errors
/// become structured `parse` replies and reading resynchronises at the
/// next LF.  All frames leave through one internal writer (the
/// `serve.reply` failpoint site).
bool serve_stream(Service& service, std::istream& in, std::ostream& out);

}  // namespace rv::engine::serve
