#pragma once

/// \file set_decl.hpp
/// Data-driven scenario declarations: the `*.rvset` text format.
///
/// A `ScenarioSet` is a C++ declaration, so until now every sweep was
/// locked behind a recompile of `rv_batch`'s built-in registry.  This
/// layer makes the declaration *data*: a small line-oriented text
/// format that covers all five workload families — grid axes, base-cell
/// fields, program/algorithm names from the existing enums, and named
/// horizon-rule / component-hook selections replicating the built-in
/// sets' C++ lambdas — parsed into a `ScenarioSet` that materialises
/// and runs exactly like a compiled-in one.  Every built-in `rv_batch`
/// set has an `.rvset` twin under `examples/sets/` whose output is
/// byte-identical (pinned in tests/test_golden_shard.cpp).
///
/// Format (LF line endings; `#` starts a full-line comment):
///
///     # top-level keys come before any section
///     name = search-ring
///     description = search (d x r x program) grid
///     components_only = false
///
///     [search]              # grid section, at most one per family
///     angles = 8            # base-cell fields (singular keys)
///     angle_offset = 0.03
///     distances = 1.0 2.0   # grid axes (plural keys, space-separated)
///     radii = 0.25 0.125
///     programs = algorithm4 square-spiral
///     horizon_rule = guaranteed-rounds+1   # named hook (see registry)
///
///     [gather.add]          # explicit cell, repeatable, file order
///     label = distinct speeds
///     robot = 1.0 1.0       # v tau [phi [chi]], one line per robot
///     robot = 1.5 1.0
///
/// Sections: `[rendezvous]`, `[search]`, `[gather]`, `[linear]`,
/// `[coverage]` declare the family's grid (base fields + at least one
/// axis); `[<family>.add]` appends one explicit cell (kept before the
/// grid, in section order — the fixed materialisation order of
/// `ScenarioSet`).  Numbers use a strict grammar (no inf/nan/hex, no
/// stray suffixes); enums use the display names (`algorithm4`,
/// `algorithm7`, `concentric`, `square-spiral`, `zigzag-search`,
/// `linear-rendezvous`).  Unknown sections/keys, duplicate keys, bad
/// values, and control bytes all fail with a `SetDeclError` naming the
/// line (and key) — a malformed file never mis-parses into a different
/// grid.
///
/// Hooks cannot be arbitrary code in a text file, so the format selects
/// them from named registries (`horizon_rule = NAME`,
/// `components = NAME`) that replicate the built-in sets' lambdas:
/// see `horizon_rule_names()` / `components_hook_names()`.

#include <filesystem>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "engine/families.hpp"
#include "engine/scenario_set.hpp"

namespace rv::engine {

/// Parse failure: `what()` is "line N: key 'K': message" (key omitted
/// for line-level errors), with the file path prepended by
/// `parse_set_decl_file`.
class SetDeclError : public std::runtime_error {
 public:
  SetDeclError(int line, std::string field, const std::string& message);
  /// 1-based line number the error names (0 for file-level errors).
  [[nodiscard]] int line() const noexcept { return line_; }
  /// The offending key, or empty for line-level errors.
  [[nodiscard]] const std::string& field() const noexcept { return field_; }

  /// Re-wraps `error` with `prefix + ": "` prepended to the message,
  /// keeping line/field (used by `parse_set_decl_file` to name the
  /// file).
  [[nodiscard]] static SetDeclError with_prefix(const std::string& prefix,
                                               const SetDeclError& error);

 private:
  struct Raw {};
  SetDeclError(Raw, int line, std::string field, const std::string& what);

  int line_ = 0;
  std::string field_;
};

/// One parsed declaration: the set plus its display metadata.
struct SetDecl {
  /// From the `name` key ([A-Za-z0-9._-]+, it becomes cache-shard file
  /// names); `parse_set_decl_file` defaults it to the file stem.
  std::string name;
  std::string description;  ///< from the `description` key (may be empty)
  ScenarioSet set;
};

/// Parses `.rvset` text.  \throws SetDeclError naming line/key on any
/// malformed input.
[[nodiscard]] SetDecl parse_set_decl(std::string_view text);

/// Reads and parses one `.rvset` file; an absent `name` key defaults to
/// the file stem.  \throws SetDeclError (with the path prepended to the
/// message) on read failure or malformed content.
[[nodiscard]] SetDecl parse_set_decl_file(const std::filesystem::path& path);

/// Registered `horizon_rule` names for the family (empty when the
/// family has none).  The registered rules replicate the built-in
/// sets' horizon lambdas exactly:
///  * search `guaranteed-rounds+1` — Lemma 2 time of the guaranteed
///    round of (d, r), plus 1;
///  * linear `zigzag-reach+1` — zigzag reach bound of the target plus 1
///    for zigzag-search cells, the cell's own max_time otherwise;
///  * coverage `2x-guaranteed-rounds` — twice the Lemma 2 time of the
///    guaranteed round of (R, r).
[[nodiscard]] std::vector<std::string> horizon_rule_names(Family family);

/// Registered `components` hook names for the family (empty when the
/// family has none): named closed-form sub-metric columns —
///  * search `guaranteed-rounds` — the guaranteed round index and its
///    Lemma 2 time bound;
///  * linear `zigzag-reach` — the zigzag reach bound of the target.
[[nodiscard]] std::vector<std::string> components_hook_names(Family family);

}  // namespace rv::engine
