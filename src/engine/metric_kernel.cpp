#include "engine/metric_kernel.hpp"

#include <stdexcept>
#include <string>

#include "geom/closest_pair.hpp"
#include "geom/convex_hull.hpp"

namespace rv::engine {

using geom::ExtremalPair;
using geom::ExtremalSense;
using geom::Vec2;

namespace {

/// The squared-distance brute-force loop.  Pass 1 finds the extremal
/// d² (one multiply-add per pair, no sqrt); pass 2 resolves the winner
/// among the pairs inside the hypot-tie band with the historical
/// (hypot, lex) comparator — one hypot per evaluation on generic
/// fleets, a handful on symmetric ones (see geom/extremal_pair.hpp).
template <ExtremalSense Sense>
[[nodiscard]] ExtremalPair brute_force(const std::vector<Vec2>& pts) {
  const int n = static_cast<int>(pts.size());
  double best_sq = geom::norm_sq(pts[1] - pts[0]);
  for (int i = 0; i < n; ++i) {
    for (int j = (i == 0) ? 2 : i + 1; j < n; ++j) {
      const double d_sq = geom::norm_sq(pts[j] - pts[i]);
      if constexpr (Sense == ExtremalSense::kLess) {
        if (d_sq < best_sq) best_sq = d_sq;
      } else {
        if (d_sq > best_sq) best_sq = d_sq;
      }
    }
  }
  const double band = best_sq * geom::kDistanceSqBand;
  const double cutoff =
      Sense == ExtremalSense::kLess ? best_sq + band : best_sq - band;
  double best_v = 0.0;
  int best_i = -1, best_j = -1;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double d_sq = geom::norm_sq(pts[j] - pts[i]);
      const bool candidate =
          Sense == ExtremalSense::kLess ? d_sq <= cutoff : d_sq >= cutoff;
      if (!candidate) continue;
      const double v = geom::distance(pts[i], pts[j]);
      if (best_i < 0 || geom::pair_beats<Sense>(v, i, j, best_v, best_i,
                                                best_j)) {
        best_v = v;
        best_i = i;
        best_j = j;
      }
    }
  }
  return {best_v, best_i, best_j};
}

void require_pair(const std::vector<Vec2>& pts, const char* who) {
  if (pts.size() < 2) {
    throw std::invalid_argument(std::string(who) + ": need >= 2 points");
  }
}

}  // namespace

ExtremalPair min_pairwise(const std::vector<Vec2>& pts, KernelChoice choice) {
  require_pair(pts, "min_pairwise");
  const bool brute = choice == KernelChoice::kBruteForce ||
                     (choice == KernelChoice::kAuto &&
                      pts.size() < kKernelCutover);
  return brute ? brute_force<ExtremalSense::kLess>(pts)
               : geom::closest_pair(pts);
}

ExtremalPair max_pairwise(const std::vector<Vec2>& pts, KernelChoice choice) {
  require_pair(pts, "max_pairwise");
  const bool brute = choice == KernelChoice::kBruteForce ||
                     (choice == KernelChoice::kAuto &&
                      pts.size() < kKernelCutover);
  return brute ? brute_force<ExtremalSense::kGreater>(pts)
               : geom::hull_diameter(pts);
}

double lipschitz_speed_sum(const std::vector<double>& speeds) {
  if (speeds.size() < 2) {
    throw std::invalid_argument("lipschitz_speed_sum: need >= 2 speeds");
  }
  double top1 = speeds[0], top2 = speeds[1];
  if (top2 > top1) {
    const double t = top1;
    top1 = top2;
    top2 = t;
  }
  for (std::size_t i = 2; i < speeds.size(); ++i) {
    const double v = speeds[i];
    if (v > top1) {
      top2 = top1;
      top1 = v;
    } else if (v > top2) {
      top2 = v;
    }
  }
  return top1 + top2;
}

}  // namespace rv::engine
