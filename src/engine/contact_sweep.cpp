#include "engine/contact_sweep.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace rv::engine {

using geom::Vec2;
using traj::TimedSegment;

namespace {
void validate_options(const SweepOptions& o) {
  // std::isfinite guards alongside the sign checks: a NaN fails a
  // `> 0` comparison (and is caught), but +inf passes it, and an
  // infinite radius/horizon/tolerance would silently break the
  // certified stepping arithmetic (inf − inf, 0·inf).
  if (!std::isfinite(o.visibility) || !(o.visibility > 0.0)) {
    throw std::invalid_argument("ContactSweep: visibility must be finite > 0");
  }
  if (!std::isfinite(o.max_time) || !(o.max_time > 0.0)) {
    throw std::invalid_argument("ContactSweep: max_time must be finite > 0");
  }
  if (!std::isfinite(o.contact_tol) || !(o.contact_tol >= 0.0) ||
      !std::isfinite(o.time_tol) || !(o.time_tol > 0.0) ||
      !std::isfinite(o.min_step) || !(o.min_step > 0.0)) {
    throw std::invalid_argument("ContactSweep: bad tolerances");
  }
}
}  // namespace

ContactSweep::ContactSweep(std::vector<RobotSpec> robots, SweepMetric metric,
                           SweepOptions options)
    : metric_(metric), opts_(options) {
  validate_options(opts_);
  if (robots.size() < 2) {
    throw std::invalid_argument("ContactSweep: need >= 2 robots");
  }
  streams_.reserve(robots.size());
  for (RobotSpec& spec : robots) {
    if (!spec.program) {
      throw std::invalid_argument("ContactSweep: null program");
    }
    streams_.emplace_back(std::move(spec.program), spec.attributes,
                          spec.origin);
  }
}

SweepResult ContactSweep::run() {
  SweepResult res;
  res.best_metric = std::numeric_limits<double>::infinity();
  const std::size_t n = streams_.size();
  const double r = opts_.visibility;

  current_.clear();
  current_.reserve(n);
  for (auto& stream : streams_) {
    current_.push_back(stream.next());
    ++res.segments;
  }
  pos_.resize(n);
  speeds_.reserve(n);

  // The sweep metric over current positions; fills the extremal pair.
  // Kernel dispatch (engine/metric_kernel.hpp): same value and same
  // lexicographically-first pair as the historical O(n²) loop.
  auto metric_of = [&](const std::vector<Vec2>& pos, int* out_i, int* out_j) {
    const geom::ExtremalPair p = metric_ == SweepMetric::kMinPairwise
                                     ? min_pairwise(pos, opts_.kernel)
                                     : max_pairwise(pos, opts_.kernel);
    if (out_i) *out_i = p.i;
    if (out_j) *out_j = p.j;
    return p.distance;
  };

  // Counted evaluation at a sweep/bisection point.
  auto evaluate = [&](double at, int* out_i, int* out_j) {
    for (std::size_t i = 0; i < n; ++i) pos_[i] = current_[i].position(at);
    ++res.evals;
    return metric_of(pos_, out_i, out_j);
  };

  // Final positions + metric + extremal pair (reporting only — not a
  // counted eval).  The pair is recomputed here, at the *certified*
  // time, so the reported pair, metric and positions are mutually
  // consistent: the detection evaluation happens at a sweep point
  // strictly after the bisected event time, where a different pair may
  // be extremal.
  auto finalize = [&](double at) {
    res.positions.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      res.positions[i] = current_[i].position(at);
    }
    res.metric = metric_of(res.positions, &res.pair_i, &res.pair_j);
  };

  double t = 0.0;
  double prev_t = 0.0;  // last evaluated time with metric > r
  bool have_prev = false;

  while (t < opts_.max_time && res.evals < opts_.max_evals) {
    // Pull segments forward so every robot covers time t.
    double window_end = opts_.max_time;
    for (std::size_t i = 0; i < n; ++i) {
      while (current_[i].t1 <= t) {
        current_[i] = streams_[i].next();
        ++res.segments;
      }
      window_end = std::min(window_end, current_[i].t1);
    }

    const double m = evaluate(t, nullptr, nullptr);
    if (m < res.best_metric) {
      res.best_metric = m;
      res.best_metric_time = t;
    }

    if (m <= r + opts_.contact_tol) {
      // Event (or a graze within tolerance).  If we are strictly inside
      // the disk and have a previous outside point, bisect for the
      // first crossing.
      double event_time = t;
      if (m < r && have_prev) {
        double lo = prev_t, hi = t;
        while (hi - lo > opts_.time_tol) {
          const double mid = 0.5 * (lo + hi);
          if (evaluate(mid, nullptr, nullptr) <= r) {
            hi = mid;
          } else {
            lo = mid;
          }
        }
        event_time = hi;
      }
      res.event = true;
      res.time = event_time;
      finalize(event_time);
      return res;
    }

    prev_t = t;
    have_prev = true;

    // Certified advance: the metric is Lipschitz with constant
    // L = max over pairs of (v_i + v_j) on this window, so it cannot
    // reach r before t + (m − r)/L.  The pair maximum is the sum of
    // the two largest speeds — computed in O(n), identical value.
    speeds_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      speeds_.push_back(current_[i].speed());
    }
    const double lipschitz = lipschitz_speed_sum(speeds_);
    double step;
    if (lipschitz <= 0.0) {
      // Everybody stationary: the metric is constant until the window
      // ends.
      step = window_end - t;
      if (step <= 0.0) step = opts_.min_step;
    } else {
      step = (m - r) / lipschitz;
    }
    step = std::max(step, opts_.min_step);
    const double next_t = std::min(t + step, window_end);
    // Always make progress even at window boundaries.
    t = (next_t > t) ? next_t : t + opts_.min_step;
  }

  // Horizon or eval budget reached without the event.
  res.event = false;
  res.time = std::min(t, opts_.max_time);
  finalize(res.time);
  return res;
}

}  // namespace rv::engine
