#include "engine/contact_sweep.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace rv::engine {

using geom::Vec2;
using traj::TimedSegment;

namespace {
void validate_options(const SweepOptions& o) {
  // std::isfinite guards alongside the sign checks: a NaN fails a
  // `> 0` comparison (and is caught), but +inf passes it, and an
  // infinite radius/horizon/tolerance would silently break the
  // certified stepping arithmetic (inf − inf, 0·inf).
  if (!std::isfinite(o.visibility) || !(o.visibility > 0.0)) {
    throw std::invalid_argument("ContactSweep: visibility must be finite > 0");
  }
  if (!std::isfinite(o.max_time) || !(o.max_time > 0.0)) {
    throw std::invalid_argument("ContactSweep: max_time must be finite > 0");
  }
  if (!std::isfinite(o.contact_tol) || !(o.contact_tol >= 0.0) ||
      !std::isfinite(o.time_tol) || !(o.time_tol > 0.0) ||
      !std::isfinite(o.min_step) || !(o.min_step > 0.0)) {
    throw std::invalid_argument("ContactSweep: bad tolerances");
  }
}
}  // namespace

ContactSweep::ContactSweep(std::vector<RobotSpec> robots, SweepMetric metric,
                           SweepOptions options)
    : metric_(metric), opts_(options) {
  validate_options(opts_);
  if (robots.size() < 2) {
    throw std::invalid_argument("ContactSweep: need >= 2 robots");
  }
  streams_.reserve(robots.size());
  for (RobotSpec& spec : robots) {
    if (!spec.program) {
      throw std::invalid_argument("ContactSweep: null program");
    }
    streams_.emplace_back(std::move(spec.program), spec.attributes,
                          spec.origin);
  }
}

SweepResult ContactSweep::run() {
  if (opts_.solver == SolverChoice::kBisection) return run_bisection();
  return run_analytic(opts_.solver == SolverChoice::kAuto);
}

SweepResult ContactSweep::run_bisection() {
  SweepResult res;
  res.best_metric = std::numeric_limits<double>::infinity();
  const std::size_t n = streams_.size();
  const double r = opts_.visibility;

  current_.clear();
  current_.reserve(n);
  for (auto& stream : streams_) {
    current_.push_back(stream.next());
    ++res.segments;
  }
  batch_.assemble(current_);
  pos_.resize(n);
  speeds_.reserve(n);

  // The sweep metric over current positions; fills the extremal pair.
  // Kernel dispatch (engine/metric_kernel.hpp): same value and same
  // lexicographically-first pair as the historical O(n²) loop.
  auto metric_of = [&](const std::vector<Vec2>& pos, int* out_i, int* out_j) {
    const geom::ExtremalPair p = metric_ == SweepMetric::kMinPairwise
                                     ? min_pairwise(pos, opts_.kernel)
                                     : max_pairwise(pos, opts_.kernel);
    if (out_i) *out_i = p.i;
    if (out_j) *out_j = p.j;
    return p.distance;
  };

  // Counted evaluation at a sweep/bisection point.  The batched SoA
  // evaluator replays the scalar per-robot arithmetic bitwise (see
  // traj/batch.hpp), so the metric stream is unchanged.
  auto evaluate = [&](double at, int* out_i, int* out_j) {
    batch_.positions(at, pos_.data());
    ++res.evals;
    return metric_of(pos_, out_i, out_j);
  };

  // Final positions + metric + extremal pair (reporting only — not a
  // counted eval).  The pair is recomputed here, at the *certified*
  // time, so the reported pair, metric and positions are mutually
  // consistent: the detection evaluation happens at a sweep point
  // strictly after the bisected event time, where a different pair may
  // be extremal.
  auto finalize = [&](double at) {
    res.positions.resize(n);
    batch_.positions(at, res.positions.data());
    res.metric = metric_of(res.positions, &res.pair_i, &res.pair_j);
  };

  double t = 0.0;
  double prev_t = 0.0;  // last evaluated time with metric > r
  bool have_prev = false;

  while (t < opts_.max_time && res.evals < opts_.max_evals) {
    // Pull segments forward so every robot covers time t.
    double window_end = opts_.max_time;
    bool pulled = false;
    for (std::size_t i = 0; i < n; ++i) {
      while (current_[i].t1 <= t) {
        current_[i] = streams_[i].next();
        ++res.segments;
        pulled = true;
      }
      window_end = std::min(window_end, current_[i].t1);
    }
    if (pulled) batch_.assemble(current_);

    const double m = evaluate(t, nullptr, nullptr);
    if (m < res.best_metric) {
      res.best_metric = m;
      res.best_metric_time = t;
    }

    if (m <= r + opts_.contact_tol) {
      // Event (or a graze within tolerance).  If we are strictly inside
      // the disk and have a previous outside point, bisect for the
      // first crossing.
      double event_time = t;
      if (m < r && have_prev) {
        double lo = prev_t, hi = t;
        while (hi - lo > opts_.time_tol) {
          const double mid = 0.5 * (lo + hi);
          if (evaluate(mid, nullptr, nullptr) <= r) {
            hi = mid;
          } else {
            lo = mid;
          }
        }
        event_time = hi;
      }
      res.event = true;
      res.time = event_time;
      finalize(event_time);
      return res;
    }

    prev_t = t;
    have_prev = true;

    // Certified advance: the metric is Lipschitz with constant
    // L = max over pairs of (v_i + v_j) on this window, so it cannot
    // reach r before t + (m − r)/L.  The pair maximum is the sum of
    // the two largest speeds — computed in O(n), identical value.
    speeds_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      speeds_.push_back(current_[i].speed());
    }
    const double lipschitz = lipschitz_speed_sum(speeds_);
    double step;
    if (lipschitz <= 0.0) {
      // Everybody stationary: the metric is constant until the window
      // ends.
      step = window_end - t;
      if (step <= 0.0) step = opts_.min_step;
    } else {
      step = (m - r) / lipschitz;
    }
    step = std::max(step, opts_.min_step);
    const double next_t = std::min(t + step, window_end);
    // Always make progress even at window boundaries.
    t = (next_t > t) ? next_t : t + opts_.min_step;
  }

  // Horizon or eval budget reached without the event.
  res.event = false;
  res.time = std::min(t, opts_.max_time);
  finalize(res.time);
  return res;
}

SweepResult ContactSweep::run_analytic(bool auto_mode) {
  SweepResult res;
  res.best_metric = std::numeric_limits<double>::infinity();
  const std::size_t n = streams_.size();
  const double r = opts_.visibility;

  CrossingControls controls;
  controls.time_tol = opts_.time_tol;
  controls.min_step = opts_.min_step;

  current_.clear();
  current_.reserve(n);
  for (auto& stream : streams_) {
    current_.push_back(stream.next());
    ++res.segments;
  }
  batch_.assemble(current_);
  pos_.resize(n);
  speeds_.reserve(n);

  auto metric_of = [&](const std::vector<Vec2>& pos, int* out_i, int* out_j) {
    const geom::ExtremalPair p = metric_ == SweepMetric::kMinPairwise
                                     ? min_pairwise(pos, opts_.kernel)
                                     : max_pairwise(pos, opts_.kernel);
    if (out_i) *out_i = p.i;
    if (out_j) *out_j = p.j;
    return p.distance;
  };

  auto evaluate = [&](double at, int* out_i, int* out_j) {
    batch_.positions(at, pos_.data());
    ++res.evals;
    return metric_of(pos_, out_i, out_j);
  };

  auto finalize = [&](double at) {
    res.positions.resize(n);
    batch_.positions(at, res.positions.data());
    res.metric = metric_of(res.positions, &res.pair_i, &res.pair_j);
  };

  double t = 0.0;

  while (t < opts_.max_time && res.evals < opts_.max_evals) {
    double window_end = opts_.max_time;
    bool pulled = false;
    for (std::size_t i = 0; i < n; ++i) {
      while (current_[i].t1 <= t) {
        current_[i] = streams_[i].next();
        ++res.segments;
        pulled = true;
      }
      window_end = std::min(window_end, current_[i].t1);
    }
    if (pulled) batch_.assemble(current_);

    int ext_i = -1, ext_j = -1;
    const double m = evaluate(t, &ext_i, &ext_j);
    if (m < res.best_metric) {
      res.best_metric = m;
      res.best_metric_time = t;
    }

    if (m <= r + opts_.contact_tol) {
      // Every advance below is certified (the metric provably stays
      // above r strictly before t, up to the Zeno guard), so the first
      // evaluation at or inside the contact band *is* the event — no
      // bisection refinement needed.
      res.event = true;
      res.time = t;
      finalize(t);
      return res;
    }

    const double w = window_end - t;
    bool poly_window = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (!is_polynomial(current_[i])) {
        poly_window = false;
        break;
      }
    }

    double next_t;
    if (auto_mode && !poly_window) {
      // kAuto on an arc window: the classic certified Lipschitz step
      // (the per-pair arc search may not pay off; kAnalytic forces it).
      speeds_.clear();
      for (std::size_t i = 0; i < n; ++i) {
        speeds_.push_back(current_[i].speed());
      }
      const double lipschitz = lipschitz_speed_sum(speeds_);
      double step;
      if (lipschitz <= 0.0) {
        step = w > 0.0 ? w : opts_.min_step;
      } else {
        step = (m - r) / lipschitz;
      }
      step = std::max(step, opts_.min_step);
      next_t = std::min(t + step, window_end);
    } else if (metric_ == SweepMetric::kMaxPairwise) {
      // The max metric dominates every pair, so the current extremal
      // pair's own first crossing of r is a certified lower bound on
      // the event: before it, metric ≥ d(ext) > r.  Jump there (or to
      // the window end when the pair provably stays above r), then
      // re-evaluate — the new extremal pair drives the next jump.
      const PairCrossing crossing = pair_first_crossing(
          current_[static_cast<std::size_t>(ext_i)],
          current_[static_cast<std::size_t>(ext_j)],
          pos_[static_cast<std::size_t>(ext_i)],
          pos_[static_cast<std::size_t>(ext_j)], t, r, w, controls,
          &res.model_evals);
      next_t = crossing.status == PairCrossing::Status::kClear
                   ? window_end
                   : t + crossing.s;
    } else {
      // The min metric is the lower envelope of all pairs, and every
      // pair starts the window above r (the metric did), so the first
      // pair crossing *is* the event.  A Lipschitz prefilter — pair
      // (i, j) cannot reach r within the window unless
      // d(t) ≤ r + (v_i + v_j)·w — kills almost every pair with one
      // multiply-add before any model is built.
      double s_min = w;  // default: jump to the window end
      for (std::size_t i = 0; i + 1 < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
          const double reach =
              r + (current_[i].speed() + current_[j].speed()) * s_min;
          const Vec2 delta = pos_[j] - pos_[i];
          if (geom::norm_sq(delta) > reach * reach) continue;
          const PairCrossing crossing =
              pair_first_crossing(current_[i], current_[j], pos_[i], pos_[j],
                                  t, r, s_min, controls, &res.model_evals);
          if (crossing.status != PairCrossing::Status::kClear) {
            // Crossing or certified-partial bound: either way the
            // sweep may not advance beyond it.
            s_min = std::min(s_min, crossing.s);
          }
        }
      }
      next_t = t + s_min;
    }

    // Zeno guard: forced progress, as on the bisection path.  A jump
    // landing up to min_step past an exact crossing is caught by the
    // next evaluation (inside the disk ⇒ within the contact band
    // acceptance above, with time error ≤ min_step ≈ time_tol).
    next_t = std::max(next_t, t + opts_.min_step);
    t = std::min(next_t, opts_.max_time);
  }

  res.event = false;
  res.time = std::min(t, opts_.max_time);
  finalize(res.time);
  return res;
}

}  // namespace rv::engine
