#pragma once

/// \file cache_store.hpp
/// Persistent on-disk storage for `engine::ScenarioCache`.
///
/// PR 3's result cache memoizes work-item outcomes *within* a process,
/// keyed by the canonical content key (`engine::cache_key`).  This
/// layer makes those entries survive the process: a **cache file** is
/// an append-only sequence of (key, outcome payload) records with a
/// versioned header, written deterministically (entries sorted by key
/// bytes) and loaded tolerantly (a truncated or corrupted record is
/// skipped — byte-resynchronising on the next record magic — and never
/// crashes the reader).  Because the cached outcome *is* the computed
/// outcome down to eval/segment counters, a run replaying entries
/// loaded from disk emits table/CSV/JSON byte-identical to the run
/// that produced them — the property the sharded `rv_batch` front-end
/// is built on (see engine/shard.hpp and tools/rv_batch.cpp).
///
/// File format (all integers little-endian on every supported target —
/// raw `memcpy` of fixed-width types; doubles are raw IEEE-754 bytes so
/// values round-trip exactly):
///
///     file   := header record*
///     header := "RVCACHE\x01"                      (8 bytes: magic+format)
///               u32 engine epoch (`kEngineCacheEpoch`)
///     record := u32 magic = 0x52435245 ("ERCR")
///               u32 key_size
///               u32 payload_size
///               key_size bytes of cache_key
///               payload_size bytes of outcome payload
///               u64 fnv1a64(key bytes + payload bytes)
///
/// The payload encodes only the outcome matching the key's family (its
/// leading byte, 'R'/'S'/'G'/'L'/'C' — see `engine::cache_key`); the
/// other `ScenarioCache::Entry` members stay default-constructed on
/// load, exactly as the in-memory cache keeps them.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "engine/runner.hpp"

namespace rv::engine {

/// Conventional extension of cache files inside a cache directory.
inline constexpr const char* kCacheFileExtension = ".rvcache";

/// Engine generation stamped into every cache file header.  Cache keys
/// encode scenario *inputs*, not engine behaviour — so when an engine
/// change alters any computed outcome (algorithm trajectories, sweep
/// certification, counters), old files must not replay as current
/// results.  **Bump this constant with any such change**: readers
/// reject files from other epochs (counted as `bad_files`) and the
/// outcomes are recomputed and re-persisted on the next run.
inline constexpr std::uint32_t kEngineCacheEpoch = 1;

/// What `load_cache_file` / `load_cache_dir` found.
struct CacheLoadStats {
  std::size_t files = 0;       ///< cache files opened successfully
  std::size_t loaded = 0;      ///< records decoded and stored
  std::size_t duplicates = 0;  ///< records whose key was already present
  std::size_t skipped = 0;     ///< corrupt/truncated records skipped
  std::size_t bad_files = 0;   ///< files missing or with a bad header

  /// Merges another load's counters into this one.
  void add(const CacheLoadStats& other);
};

/// Serializes the payload of `entry` for `key` (family = key's leading
/// byte).  \throws std::invalid_argument when the key is empty or its
/// family byte is unknown.
[[nodiscard]] std::string serialize_entry(const std::string& key,
                                          const ScenarioCache::Entry& entry);

/// Decodes a payload produced by `serialize_entry` back into `*entry`.
/// Returns false (leaving `*entry` unspecified) on a malformed payload
/// — short buffers, trailing bytes, unknown family — so corrupt
/// records are skipped rather than trusted.
[[nodiscard]] bool deserialize_entry(const std::string& key,
                                     std::string_view payload,
                                     ScenarioCache::Entry* entry);

/// Writes every entry of `cache` to `path` (header + one record per
/// entry, sorted by key bytes — byte-identical output for equal
/// contents).  The write is atomic-by-rename: concurrent readers see
/// either the old file or the complete new one, never a torn write.
/// \throws std::runtime_error when the file cannot be written.
void save_cache_file(const std::filesystem::path& path,
                     const ScenarioCache& cache);

/// The `*.rvcache` files directly inside `dir`, sorted by path — the
/// exact list (and order) `load_cache_dir` loads.  A missing directory
/// yields an empty list.
[[nodiscard]] std::vector<std::filesystem::path> list_cache_files(
    const std::filesystem::path& dir);

/// Loads the records of one cache file into `cache` (first writer wins:
/// keys already present are counted as `duplicates` and left alone).
/// Never throws on *content*: a missing file or bad header counts as
/// `bad_files`, a corrupt or truncated record as `skipped`.
CacheLoadStats load_cache_file(const std::filesystem::path& path,
                               ScenarioCache* cache);

/// Loads every `*.rvcache` file directly inside `dir` (sorted by file
/// name, so merges are deterministic) into `cache`.  A missing
/// directory simply loads nothing.
CacheLoadStats load_cache_dir(const std::filesystem::path& dir,
                              ScenarioCache* cache);

/// Merges cache files: loads every input (in order, first writer wins
/// per key) and saves the union to `output`.  Returns the combined
/// load counters.  \throws std::runtime_error when `output` cannot be
/// written.
CacheLoadStats merge_cache_files(
    const std::vector<std::filesystem::path>& inputs,
    const std::filesystem::path& output);

}  // namespace rv::engine
