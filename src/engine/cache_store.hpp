#pragma once

/// \file cache_store.hpp
/// Persistent on-disk storage for `engine::ScenarioCache`.
///
/// PR 3's result cache memoizes work-item outcomes *within* a process,
/// keyed by the canonical content key (`engine::cache_key`).  This
/// layer makes those entries survive the process: a **cache file** is
/// an append-only sequence of (key, outcome payload) records with a
/// versioned header, written deterministically (entries sorted by key
/// bytes) and loaded tolerantly (a truncated or corrupted record is
/// skipped — byte-resynchronising on the next record magic — and never
/// crashes the reader).  Because the cached outcome *is* the computed
/// outcome down to eval/segment counters, a run replaying entries
/// loaded from disk emits table/CSV/JSON byte-identical to the run
/// that produced them — the property the sharded `rv_batch` front-end
/// is built on (see engine/shard.hpp and tools/rv_batch.cpp).
///
/// File format (all integers little-endian on every supported target —
/// raw `memcpy` of fixed-width types; doubles are raw IEEE-754 bytes so
/// values round-trip exactly):
///
///     file   := header record*
///     header := "RVCACHE\x01"                      (8 bytes: magic+format)
///               u32 engine epoch (`kEngineCacheEpoch`)
///     record := u32 magic = 0x52435245 ("ERCR")
///               u32 key_size
///               u32 payload_size
///               key_size bytes of cache_key
///               payload_size bytes of outcome payload
///               u64 fnv1a64(key bytes + payload bytes)
///
/// The payload encodes only the outcome matching the key's family (its
/// leading byte, 'R'/'S'/'G'/'L'/'C' — see `engine::cache_key`); the
/// other `ScenarioCache::Entry` members stay default-constructed on
/// load, exactly as the in-memory cache keeps them.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "engine/runner.hpp"

namespace rv::engine {

/// Conventional extension of cache files inside a cache directory.
inline constexpr const char* kCacheFileExtension = ".rvcache";

/// Engine generation stamped into every cache file header.  Cache keys
/// encode scenario *inputs*, not engine behaviour — so when an engine
/// change alters any computed outcome (algorithm trajectories, sweep
/// certification, counters), old files must not replay as current
/// results.  **Bump this constant with any such change**: readers
/// reject files from other epochs (counted as `bad_files`) and the
/// outcomes are recomputed and re-persisted on the next run.
inline constexpr std::uint32_t kEngineCacheEpoch = 1;

/// What `load_cache_file` / `load_cache_dir` found.
struct CacheLoadStats {
  std::size_t files = 0;       ///< cache files opened successfully
  std::size_t loaded = 0;      ///< records decoded and stored
  std::size_t duplicates = 0;  ///< records whose key was already present
  std::size_t skipped = 0;     ///< corrupt/truncated records skipped
  std::size_t bad_files = 0;   ///< files missing or with a bad header

  /// Merges another load's counters into this one.
  void add(const CacheLoadStats& other);
};

/// Serializes the payload of `entry` for `key` (family = key's leading
/// byte).  \throws std::invalid_argument when the key is empty or its
/// family byte is unknown.
[[nodiscard]] std::string serialize_entry(const std::string& key,
                                          const ScenarioCache::Entry& entry);

/// Decodes a payload produced by `serialize_entry` back into `*entry`.
/// Returns false (leaving `*entry` unspecified) on a malformed payload
/// — short buffers, trailing bytes, unknown family — so corrupt
/// records are skipped rather than trusted.
[[nodiscard]] bool deserialize_entry(const std::string& key,
                                     std::string_view payload,
                                     ScenarioCache::Entry* entry);

/// Writes every entry of `cache` to `path` (header + one record per
/// entry, sorted by key bytes — byte-identical output for equal
/// contents).  The write is atomic-by-rename: concurrent readers see
/// either the old file or the complete new one, never a torn write.
/// \throws std::runtime_error when the file cannot be written.
void save_cache_file(const std::filesystem::path& path,
                     const ScenarioCache& cache);

/// The `*.rvcache` files directly inside `dir`, sorted by path — the
/// exact list (and order) `load_cache_dir` loads.  A missing directory
/// yields an empty list.
[[nodiscard]] std::vector<std::filesystem::path> list_cache_files(
    const std::filesystem::path& dir);

/// Loads the records of one cache file into `cache` (first writer wins:
/// keys already present are counted as `duplicates` and left alone).
/// Never throws on *content*: a missing file or bad header counts as
/// `bad_files`, a corrupt or truncated record as `skipped`.
CacheLoadStats load_cache_file(const std::filesystem::path& path,
                               ScenarioCache* cache);

/// Loads every `*.rvcache` file directly inside `dir` (sorted by file
/// name, so merges are deterministic) into `cache`.  A missing
/// directory simply loads nothing.
CacheLoadStats load_cache_dir(const std::filesystem::path& dir,
                              ScenarioCache* cache);

/// Merges cache files: loads every input (in order, first writer wins
/// per key) and saves the union to `output`.  Returns the combined
/// load counters; when `per_file` is non-null it receives one
/// `CacheLoadStats` per input, in input order (so callers can tell
/// which file a `bad_files` or `skipped` count came from).
///
/// `output` may alias one of `inputs`: every input is fully loaded
/// into memory *before* the save starts, and the save itself is
/// atomic-by-rename (written to a temp file, fsynced, renamed), so an
/// aliased input is read in its entirety and then replaced in one
/// step — never read and rewritten concurrently.  `compact_cache_dir`
/// relies on this when re-compacting a directory whose previous
/// `compact.rvcache` is among the inputs (pinned in
/// tests/test_cache_store.cpp).  \throws std::runtime_error when
/// `output` cannot be written.
CacheLoadStats merge_cache_files(
    const std::vector<std::filesystem::path>& inputs,
    const std::filesystem::path& output,
    std::vector<CacheLoadStats>* per_file = nullptr);

/// Options of `compact_cache_dir`.
struct CompactOptions {
  /// When > 0, inputs whose mtime is older than this many days are
  /// evicted (deleted without being merged).
  double max_age_days = 0.0;
  /// When > 0, a byte budget over the surviving inputs: files are
  /// evicted **oldest first** (by mtime, ties broken by path — a
  /// deterministic victim order) until the remaining inputs fit.
  std::uintmax_t max_bytes = 0;
  /// File name of the merged output inside the directory.
  std::string output_name = "compact.rvcache";
};

/// What `compact_cache_dir` did, file by file.
struct CompactResult {
  /// What happened to one input file.
  enum class Disposition {
    kMerged,         ///< loaded and folded into the output
    kDroppedBad,     ///< bad header / wrong engine epoch — deleted unmerged
    kEvictedAge,     ///< older than `max_age_days` — deleted unmerged
    kEvictedBudget,  ///< evicted oldest-first to fit `max_bytes`
  };
  struct FileReport {
    std::filesystem::path path;
    Disposition disposition = Disposition::kMerged;
    /// Per-file load counters (meaningful for kMerged/kDroppedBad;
    /// evicted files are never opened).
    CacheLoadStats stats;
  };
  /// Every input file: merged/dropped ones first (in load order, i.e.
  /// sorted by file name), then age evictions, then budget evictions
  /// (each oldest first).
  std::vector<FileReport> files;
  CacheLoadStats stats;            ///< combined counters over loaded inputs
  std::size_t entries = 0;         ///< distinct keys written to the output
  std::uintmax_t output_bytes = 0; ///< size of the written output file
  std::filesystem::path output;    ///< `dir / options.output_name`
};

/// Compacts a cache directory in place: evicts inputs per
/// `CompactOptions` (age first, then the byte budget, oldest first),
/// merges every surviving `*.rvcache` file in sorted-file-name order
/// (first writer wins per key — the same order and dedupe rule as
/// `load_cache_dir`, so a warm run loads identical entries before and
/// after), writes the union to `options.output_name`, and deletes
/// every original input.  Files with a bad header or a wrong engine
/// epoch are dropped (deleted, never merged).  The previous output
/// file, when present, is just another input — re-compacting is
/// idempotent.  \throws std::runtime_error when `dir` is not a
/// directory or the output cannot be written.
CompactResult compact_cache_dir(const std::filesystem::path& dir,
                                const CompactOptions& options = {});

}  // namespace rv::engine
