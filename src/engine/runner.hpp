#pragma once

/// \file runner.hpp
/// Deterministic parallel execution of a `ScenarioSet` and structured
/// aggregation of the outcomes, for every workload family.
///
/// `run_scenarios` materialises the set, fans the work items out across
/// a pool of worker threads (work-stealing by atomic index), and stores
/// each outcome at its item's index.  Because results are placed by
/// index — never by completion order — and every emitter formats
/// through the deterministic `io` helpers, the rendered table, CSV and
/// JSON are **byte-identical regardless of thread count**.  Work items
/// are independent (the library keeps no global mutable state), so the
/// sweep parallelises embarrassingly; the search family's
/// worst-over-angles reduction runs inside its item, in ring order.
///
/// `ResultSet` is the io::Table-backed aggregate with *per-family
/// standard columns*:
///   * rendezvous — v, tau, phi, chi, d, r, algorithm, feasible, met,
///     time, distance, min_distance, evals, segments;
///   * search — d, r, angles, program, found, missed, worst_time,
///     mean_time, worst_angle, evals, segments;
///   * gather — n, ring_radius, r, algorithm, contact, contact_time,
///     pair_i, pair_j, gathered, gathered_time, min_max_pairwise,
///     evals, segments;
///   * linear — mode, v, tau, dir, d, r, feasible, met, time, distance,
///     min_distance, evals, segments;
///   * coverage — program, R, r, cell, checkpoints, horizon, t50, t99,
///     final_fraction, covered_area;
/// then one column per component time (when the cells carry a
/// component-times hook; names must agree across records), then
/// caller-supplied derived columns (bounds, ratios, certificates)
/// computed from each record.  Emission requires a homogeneous family;
/// mixed runs are split per family with `filtered()`.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/families.hpp"
#include "engine/scenario_set.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "rendezvous/core.hpp"

namespace rv::engine {

/// Thread-safe memoization of work-item outcomes, keyed by the
/// scenario content key (`engine::cache_key`).  A cache outlives
/// individual `run_scenarios` calls, so repeated cells — across grid
/// cells of one run or across repeated runs — are computed once and
/// replayed from memory with identical outcomes (the cached outcome
/// *is* the computed outcome, including eval/segment counters, so all
/// emitted tables/CSV/JSON are byte-identical with the cache on or
/// off).
///
/// Safe whenever outcomes are pure functions of the keyed content:
/// always true for the built-in algorithm programs; custom program
/// factories must be deterministic and carry a unique `program_name`
/// (anonymous factories are uncacheable and always recomputed — see
/// `cache_key`).  Disable caching by leaving `RunnerOptions::cache`
/// null (the default).
class ScenarioCache {
 public:
  /// One memoized outcome; only the payload matching the key's family
  /// (its leading byte) is meaningful — cross-family collisions are
  /// impossible, so the entry carries no family tag of its own.
  /// Component times are never stored: hooks are re-evaluated on every
  /// run (they are pure functions of the record, and an arbitrary
  /// function has no content identity to key).
  struct Entry {
    rendezvous::Outcome outcome;      ///< kRendezvous payload
    SearchOutcome search_outcome;     ///< kSearch payload
    GatherOutcome gather_outcome;     ///< kGather payload
    LinearOutcome linear_outcome;     ///< kLinear payload
    CoverageOutcome coverage_outcome; ///< kCoverage payload
  };

  /// Copies the entry stored under `key` into `*out`; false if absent.
  [[nodiscard]] bool lookup(const std::string& key, Entry* out) const;
  /// True iff an entry is stored under `key` (no copy — the membership
  /// probe used by the serve layer to classify hits before dispatch).
  [[nodiscard]] bool contains(const std::string& key) const;
  /// Stores the entry under `key` (first writer wins on a race — both
  /// writers computed identical outcomes).  Returns true when the key
  /// was new, false when an entry was already present (left alone).
  bool store(const std::string& key, Entry entry);

  /// Every (key, entry) pair, sorted by key bytes.  The deterministic
  /// export used by `engine::save_cache_file`: two caches holding the
  /// same entries snapshot identically regardless of insertion order.
  [[nodiscard]] std::vector<std::pair<std::string, Entry>> snapshot() const;

  /// Number of memoized outcomes.
  [[nodiscard]] std::size_t size() const;
  /// Drops every memoized outcome.
  void clear();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> map_;
};

/// Hit/miss counters of one `run_scenarios` call (all zero when the
/// run had no cache attached).
struct CacheStats {
  std::uint64_t hits = 0;         ///< items replayed from the cache
  std::uint64_t misses = 0;       ///< cacheable items computed (and stored)
  std::uint64_t uncacheable = 0;  ///< items with no content key
};

/// Parallelism + memoization controls.
struct RunnerOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  unsigned threads = 0;
  /// Scenario result cache; null (default) disables memoization.  The
  /// caller owns the cache and may share one instance across runs.
  ScenarioCache* cache = nullptr;
};

// RunRecord — one executed work item — lives in engine/families.hpp
// (next to the cells and outcomes it aggregates, where component-times
// hooks can see it).

/// A derived column: name plus a per-record formatter.
struct Column {
  std::string name;
  std::function<std::string(const RunRecord&)> value;
};

/// Ordered, structured results of a sweep with table/CSV/JSON emission.
class ResultSet {
 public:
  ResultSet() = default;
  explicit ResultSet(std::vector<RunRecord> records);

  [[nodiscard]] const std::vector<RunRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  [[nodiscard]] auto begin() const { return records_.begin(); }
  [[nodiscard]] auto end() const { return records_.end(); }
  [[nodiscard]] const RunRecord& operator[](std::size_t i) const {
    return records_[i];
  }

  /// True iff every record succeeded: rendezvous met, search ring
  /// complete, fleet gathered, linear cell met, coverage cell reached
  /// 99% (per the record's family).
  [[nodiscard]] bool all_met() const;

  /// Cache hit/miss counters of the run that produced this set (all
  /// zero without a cache; copied through by `filtered`).
  [[nodiscard]] const CacheStats& cache_stats() const {
    return cache_stats_;
  }
  /// Attaches the producing run's counters (called by the runner).
  void set_cache_stats(const CacheStats& stats) { cache_stats_ = stats; }

  /// The subset of records belonging to `family` (for emitting mixed
  /// runs one family at a time).
  [[nodiscard]] ResultSet filtered(Family family) const;

  /// The standard column names of the records' family (label only when
  /// any record has one), followed by the extras.  \throws
  /// std::logic_error when records of different families are mixed.
  [[nodiscard]] io::CsvRow csv_header(
      const std::vector<Column>& extras = {}) const;
  /// One CSV row per record, same order as `records()`.
  [[nodiscard]] std::vector<io::CsvRow> csv_rows(
      const std::vector<Column>& extras = {}) const;
  /// Full CSV document (header + rows).
  [[nodiscard]] std::string to_csv(
      const std::vector<Column>& extras = {}) const;
  /// JSON array of row objects keyed by column name.  Strict RFC 8259:
  /// numeric fields are emitted as JSON numbers (non-finite values as
  /// null), met/feasible/contact/gathered as booleans, labels with
  /// control characters escaped.
  [[nodiscard]] std::string to_json(
      const std::vector<Column>& extras = {}) const;
  /// io::Table with the standard + extra columns (for console reports).
  [[nodiscard]] io::Table to_table(const std::vector<Column>& extras = {},
                                   int precision = 4) const;

 private:
  /// The single family of the records; \throws std::logic_error when
  /// mixed (emission is per family).
  [[nodiscard]] Family emission_family() const;

  /// The component-column names shared by every record (empty when no
  /// record carries components); \throws std::logic_error when records
  /// disagree on names (emission needs one homogeneous schema).
  [[nodiscard]] std::vector<std::string> component_names() const;

  std::vector<RunRecord> records_;
  bool any_label_ = false;
  CacheStats cache_stats_;
};

/// Runs every work item in the set (all families) and aggregates the
/// outcomes in materialisation order.  Worker exceptions are re-thrown
/// (first by index) after the pool joins.
[[nodiscard]] ResultSet run_scenarios(const ScenarioSet& set,
                                      RunnerOptions options = {});

/// Same, for an already-materialised multi-family work list.
[[nodiscard]] ResultSet run_scenarios(const std::vector<WorkItem>& work,
                                      RunnerOptions options = {});

/// Same, for a rendezvous-only list.
[[nodiscard]] ResultSet run_scenarios(
    const std::vector<LabeledScenario>& scenarios, RunnerOptions options = {});

}  // namespace rv::engine
