#pragma once

/// \file runner.hpp
/// Deterministic parallel execution of a `ScenarioSet` and structured
/// aggregation of the outcomes.
///
/// `run_scenarios` materialises the set, fans the scenarios out across
/// a pool of worker threads (work-stealing by atomic index), and stores
/// each `rendezvous::Outcome` at its scenario's index.  Because results
/// are placed by index — never by completion order — and every emitter
/// formats through the deterministic `io` helpers, the rendered table,
/// CSV and JSON are **byte-identical regardless of thread count**.
/// Scenario runs are independent (the library keeps no global mutable
/// state), so the sweep parallelises embarrassingly.
///
/// `ResultSet` is the io::Table-backed aggregate: standard columns for
/// the scenario axes and outcome, plus caller-supplied derived columns
/// (bounds, ratios, certificates) computed from each record.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "engine/scenario_set.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "rendezvous/core.hpp"

namespace rv::engine {

/// Parallelism controls.
struct RunnerOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  unsigned threads = 0;
};

/// One executed scenario: what ran and what happened.
struct RunRecord {
  rendezvous::Scenario scenario;
  std::string label;
  rendezvous::Outcome outcome;
};

/// A derived column: name plus a per-record formatter.
struct Column {
  std::string name;
  std::function<std::string(const RunRecord&)> value;
};

/// Ordered, structured results of a sweep with table/CSV/JSON emission.
class ResultSet {
 public:
  ResultSet() = default;
  explicit ResultSet(std::vector<RunRecord> records);

  [[nodiscard]] const std::vector<RunRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  [[nodiscard]] auto begin() const { return records_.begin(); }
  [[nodiscard]] auto end() const { return records_.end(); }
  [[nodiscard]] const RunRecord& operator[](std::size_t i) const {
    return records_[i];
  }

  /// True iff every scenario met before its horizon.
  [[nodiscard]] bool all_met() const;

  /// The standard column names (label only when any record has one),
  /// followed by the extras.
  [[nodiscard]] io::CsvRow csv_header(
      const std::vector<Column>& extras = {}) const;
  /// One CSV row per record, same order as `records()`.
  [[nodiscard]] std::vector<io::CsvRow> csv_rows(
      const std::vector<Column>& extras = {}) const;
  /// Full CSV document (header + rows).
  [[nodiscard]] std::string to_csv(
      const std::vector<Column>& extras = {}) const;
  /// JSON array of row objects keyed by column name; numeric fields are
  /// emitted as JSON numbers, met/feasible as booleans.
  [[nodiscard]] std::string to_json(
      const std::vector<Column>& extras = {}) const;
  /// io::Table with the standard + extra columns (for console reports).
  [[nodiscard]] io::Table to_table(const std::vector<Column>& extras = {},
                                   int precision = 4) const;

 private:
  std::vector<RunRecord> records_;
  bool any_label_ = false;
};

/// Runs every scenario in the set and aggregates the outcomes in
/// scenario order.  Worker exceptions are re-thrown (first by index)
/// after the pool joins.
[[nodiscard]] ResultSet run_scenarios(const ScenarioSet& set,
                                      RunnerOptions options = {});

/// Same, for an already-materialised list.
[[nodiscard]] ResultSet run_scenarios(
    const std::vector<LabeledScenario>& scenarios, RunnerOptions options = {});

}  // namespace rv::engine
