#include "engine/event_solver.hpp"

#include <algorithm>
#include <cmath>
#include <variant>

#include "mathx/roots.hpp"

namespace rv::engine {

using geom::Vec2;
using traj::TimedSegment;

bool is_polynomial(const TimedSegment& seg) {
  return !std::holds_alternative<traj::ArcSeg>(seg.geometry);
}

Vec2 segment_velocity(const TimedSegment& seg) {
  const auto* line = std::get_if<traj::LineSeg>(&seg.geometry);
  if (!line) return {0.0, 0.0};
  const double span = seg.t1 - seg.t0;
  if (span <= 0.0) return {0.0, 0.0};
  return {(line->to.x - line->from.x) / span,
          (line->to.y - line->from.y) / span};
}

PairCrossing quad_first_crossing(const Vec2& delta0, const Vec2& dvel,
                                 double r, double w) {
  // g(s) = c2 s² + c1 s + c0 with g = d² − r².
  const double c2 = geom::norm_sq(dvel);
  const double c1 = 2.0 * geom::dot(delta0, dvel);
  const double c0 = geom::norm_sq(delta0) - r * r;
  if (c0 <= 0.0) {
    // Already at or inside r — the caller only advances from outside;
    // report an immediate crossing and let it re-evaluate.
    return {PairCrossing::Status::kCrossing, 0.0};
  }
  if (c2 == 0.0) {
    // Relative rest (c1 is then 0 too) or… c2 = 0 forces Δv = 0, so
    // the distance is constant above r.
    return {PairCrossing::Status::kClear, w};
  }
  if (c1 >= 0.0) {
    // The pair is separating at the window start and g is convex: with
    // g(0) > 0 and g'(0) ≥ 0 it never returns to r² (both roots of g
    // are ≤ 0: their sum −c1/c2 ≤ 0, their product c0/c2 > 0).
    return {PairCrossing::Status::kClear, w};
  }
  const double disc = c1 * c1 - 4.0 * c2 * c0;
  if (disc <= 0.0) {
    return {PairCrossing::Status::kClear, w};
  }
  // Stable quadratic roots; with c1 < 0, q > 0 and both roots are
  // positive.  The smaller one is the entry into the r-disk.
  const double q = 0.5 * (std::sqrt(disc) - c1);
  const double s = std::min(q / c2, c0 / q);
  if (!(s <= w)) {
    return {PairCrossing::Status::kClear, w};
  }
  return {PairCrossing::Status::kCrossing, s};
}

PairCrossing certified_first_crossing(const TimedSegment& a,
                                      const TimedSegment& b, const Vec2& pa,
                                      const Vec2& pb, double t, double r,
                                      double w,
                                      const CrossingControls& controls,
                                      std::uint64_t* model_evals) {
  const double r_sq = r * r;
  auto g = [&](double s) {
    ++*model_evals;
    const Vec2 qa = a.position(t + s);
    const Vec2 qb = b.position(t + s);
    return geom::norm_sq(qb - qa) - r_sq;
  };

  const double g0 = geom::norm_sq(pb - pa) - r_sq;
  if (g0 <= 0.0) {
    return {PairCrossing::Status::kCrossing, 0.0};
  }
  const double speed_sum = a.speed() + b.speed();
  if (speed_sum <= 0.0) {
    // Both parked: constant separation above r.
    return {PairCrossing::Status::kClear, w};
  }
  // |d/ds d²| = 2|Δ·Δ'| ≤ 2·|Δ|·V with |Δ(s)| ≤ d₀ + V·s ≤ d₀ + V·w:
  // a provable Lipschitz constant of g on the window.
  const double d0 = std::sqrt(g0 + r_sq);
  const double lipschitz = 2.0 * speed_sum * (d0 + speed_sum * w);

  double s = 0.0;
  double gs = g0;
  for (std::uint64_t steps = 0; steps < controls.max_steps; ++steps) {
    const double step = std::max(gs / lipschitz, controls.min_step);
    const double sn = std::min(s + step, w);
    if (sn <= s) {
      return {PairCrossing::Status::kClear, w};
    }
    const double gn = g(sn);
    if (gn <= 0.0) {
      // Bracket found; brent refinement under the sweep's time
      // tolerance (superlinear, replaces the bisection loop).
      mathx::RootOptions root_opts;
      root_opts.x_tol = controls.time_tol;
      const mathx::RootResult root = mathx::brent(g, s, sn, root_opts);
      return {PairCrossing::Status::kCrossing, root.x};
    }
    s = sn;
    gs = gn;
    if (s >= w) {
      return {PairCrossing::Status::kClear, w};
    }
  }
  // Step budget exhausted: certified clear only up to s.
  return {PairCrossing::Status::kPartial, s};
}

PairCrossing pair_first_crossing(const TimedSegment& a, const TimedSegment& b,
                                 const Vec2& pa, const Vec2& pb, double t,
                                 double r, double w,
                                 const CrossingControls& controls,
                                 std::uint64_t* model_evals) {
  if (is_polynomial(a) && is_polynomial(b)) {
    ++*model_evals;
    return quad_first_crossing(pb - pa, segment_velocity(b) - segment_velocity(a),
                               r, w);
  }
  return certified_first_crossing(a, b, pa, pb, t, r, w, controls,
                                  model_evals);
}

}  // namespace rv::engine
