#include "engine/scenario_set.hpp"

#include <stdexcept>
#include <utility>

namespace rv::engine {

ScenarioSet& ScenarioSet::add(rendezvous::Scenario scenario,
                              std::string label) {
  explicit_.push_back({std::move(scenario), std::move(label)});
  return *this;
}

ScenarioSet& ScenarioSet::speeds(std::vector<double> values) {
  speeds_ = std::move(values);
  has_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::time_units(std::vector<double> values) {
  time_units_ = std::move(values);
  has_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::orientations(std::vector<double> values) {
  orientations_ = std::move(values);
  has_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::chiralities(std::vector<int> values) {
  chiralities_ = std::move(values);
  has_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::offsets(std::vector<geom::Vec2> values) {
  offsets_ = std::move(values);
  has_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::distances(std::vector<double> values) {
  std::vector<geom::Vec2> offs;
  offs.reserve(values.size());
  for (const double d : values) offs.push_back({d, 0.0});
  return offsets(std::move(offs));
}

ScenarioSet& ScenarioSet::base(rendezvous::Scenario base_scenario) {
  base_ = std::move(base_scenario);
  return *this;
}

ScenarioSet& ScenarioSet::visibility(double r) {
  base_.visibility = r;
  return *this;
}

ScenarioSet& ScenarioSet::algorithm(rendezvous::AlgorithmChoice choice) {
  base_.algorithm = choice;
  return *this;
}

ScenarioSet& ScenarioSet::max_time(double horizon) {
  base_.max_time = horizon;
  return *this;
}

ScenarioSet& ScenarioSet::horizon(
    std::function<double(const rendezvous::Scenario&)> horizon_fn) {
  horizon_fn_ = std::move(horizon_fn);
  return *this;
}

ScenarioSet& ScenarioSet::filter(
    std::function<bool(const rendezvous::Scenario&)> keep_fn) {
  keep_fn_ = std::move(keep_fn);
  return *this;
}

ScenarioSet& ScenarioSet::label(
    std::function<std::string(const rendezvous::Scenario&)> label_fn) {
  label_fn_ = std::move(label_fn);
  return *this;
}

ScenarioSet& ScenarioSet::add_search(SearchCell cell, std::string label) {
  WorkItem item;
  item.family = Family::kSearch;
  item.label = std::move(label);
  item.search = std::move(cell);
  explicit_search_.push_back(std::move(item));
  return *this;
}

ScenarioSet& ScenarioSet::search_base(SearchCell base_cell) {
  search_base_ = std::move(base_cell);
  return *this;
}

ScenarioSet& ScenarioSet::search_distances(std::vector<double> values) {
  search_distances_ = std::move(values);
  has_search_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::search_radii(std::vector<double> values) {
  search_radii_ = std::move(values);
  has_search_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::search_programs(std::vector<SearchProgram> values) {
  search_programs_ = std::move(values);
  has_search_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::search_horizon(
    std::function<double(const SearchCell&)> fn) {
  search_horizon_fn_ = std::move(fn);
  return *this;
}

ScenarioSet& ScenarioSet::search_filter(
    std::function<bool(const SearchCell&)> fn) {
  search_keep_fn_ = std::move(fn);
  return *this;
}

ScenarioSet& ScenarioSet::search_label(
    std::function<std::string(const SearchCell&)> fn) {
  search_label_fn_ = std::move(fn);
  return *this;
}

ScenarioSet& ScenarioSet::add_gather(GatherCell cell, std::string label) {
  WorkItem item;
  item.family = Family::kGather;
  item.label = std::move(label);
  item.gather = std::move(cell);
  explicit_gather_.push_back(std::move(item));
  return *this;
}

ScenarioSet& ScenarioSet::gather_base(GatherCell base_cell) {
  gather_base_ = std::move(base_cell);
  return *this;
}

ScenarioSet& ScenarioSet::gather_sizes(std::vector<int> values) {
  gather_sizes_ = std::move(values);
  return *this;
}

ScenarioSet& ScenarioSet::gather_fleet(
    std::function<std::vector<geom::RobotAttributes>(int)> fleet_fn) {
  gather_fleet_fn_ = std::move(fleet_fn);
  return *this;
}

ScenarioSet& ScenarioSet::gather_label(
    std::function<std::string(const GatherCell&)> fn) {
  gather_label_fn_ = std::move(fn);
  return *this;
}

std::vector<WorkItem> ScenarioSet::materialize_work() const {
  std::vector<WorkItem> out;

  // ---- 1. rendezvous: explicit adds, then the attribute grid ----------
  auto emit = [&](rendezvous::Scenario s, std::string label) {
    // Filter first: horizon rules (e.g. theorem bounds) need not be
    // well defined on dropped cells such as infeasible corners.
    if (keep_fn_ && !keep_fn_(s)) return;
    if (horizon_fn_) s.max_time = horizon_fn_(s);
    if (label.empty() && label_fn_) label = label_fn_(s);
    WorkItem item;
    item.family = Family::kRendezvous;
    item.label = std::move(label);
    item.scenario = std::move(s);
    out.push_back(std::move(item));
  };

  for (const LabeledScenario& ls : explicit_) emit(ls.scenario, ls.label);

  if (has_grid_) {
    // Unset axes contribute the base value, so the nesting below always
    // covers the full cross product.
    const std::vector<double> vs =
        speeds_.empty() ? std::vector<double>{base_.attrs.speed} : speeds_;
    const std::vector<double> taus =
        time_units_.empty() ? std::vector<double>{base_.attrs.time_unit}
                            : time_units_;
    const std::vector<double> phis =
        orientations_.empty() ? std::vector<double>{base_.attrs.orientation}
                              : orientations_;
    const std::vector<int> chis =
        chiralities_.empty() ? std::vector<int>{base_.attrs.chirality}
                             : chiralities_;
    const std::vector<geom::Vec2> offs =
        offsets_.empty() ? std::vector<geom::Vec2>{base_.offset} : offsets_;

    for (const double v : vs) {
      for (const double tau : taus) {
        for (const double phi : phis) {
          for (const int chi : chis) {
            for (const geom::Vec2& off : offs) {
              rendezvous::Scenario s = base_;
              s.attrs.speed = v;
              s.attrs.time_unit = tau;
              s.attrs.orientation = phi;
              s.attrs.chirality = chi;
              s.offset = off;
              emit(std::move(s), "");
            }
          }
        }
      }
    }
  }

  // ---- 2. search: explicit adds, then distances ⊃ radii ⊃ programs ----
  auto emit_search = [&](SearchCell cell, std::string label) {
    if (search_keep_fn_ && !search_keep_fn_(cell)) return;
    if (search_horizon_fn_) cell.max_time = search_horizon_fn_(cell);
    if (label.empty() && search_label_fn_) label = search_label_fn_(cell);
    WorkItem item;
    item.family = Family::kSearch;
    item.label = std::move(label);
    item.search = std::move(cell);
    out.push_back(std::move(item));
  };

  for (const WorkItem& item : explicit_search_) {
    emit_search(item.search, item.label);
  }

  if (has_search_grid_) {
    const std::vector<double> ds =
        search_distances_.empty() ? std::vector<double>{search_base_.distance}
                                  : search_distances_;
    const std::vector<double> rs =
        search_radii_.empty() ? std::vector<double>{search_base_.visibility}
                              : search_radii_;
    const std::vector<SearchProgram> progs =
        search_programs_.empty()
            ? std::vector<SearchProgram>{search_base_.program}
            : search_programs_;
    for (const double d : ds) {
      for (const double r : rs) {
        for (const SearchProgram prog : progs) {
          SearchCell cell = search_base_;
          cell.distance = d;
          cell.visibility = r;
          cell.program = prog;
          emit_search(std::move(cell), "");
        }
      }
    }
  }

  // ---- 3. gather: explicit adds, then the fleet-size grid -------------
  auto emit_gather = [&](GatherCell cell, std::string label) {
    if (label.empty() && gather_label_fn_) label = gather_label_fn_(cell);
    WorkItem item;
    item.family = Family::kGather;
    item.label = std::move(label);
    item.gather = std::move(cell);
    out.push_back(std::move(item));
  };

  for (const WorkItem& item : explicit_gather_) {
    emit_gather(item.gather, item.label);
  }

  for (const int n : gather_sizes_) {
    if (n < 2) {
      throw std::invalid_argument("ScenarioSet: gather size must be >= 2");
    }
    GatherCell cell = gather_base_;
    cell.fleet = gather_fleet_fn_
                     ? gather_fleet_fn_(n)
                     : std::vector<geom::RobotAttributes>(
                           static_cast<std::size_t>(n),
                           geom::reference_attributes());
    emit_gather(std::move(cell), "");
  }

  return out;
}

std::vector<LabeledScenario> ScenarioSet::materialize() const {
  if (!explicit_search_.empty() || has_search_grid_ ||
      !explicit_gather_.empty() || !gather_sizes_.empty()) {
    throw std::logic_error(
        "ScenarioSet::materialize: set declares search/gather cells; use "
        "materialize_work()");
  }
  std::vector<WorkItem> work = materialize_work();
  std::vector<LabeledScenario> out;
  out.reserve(work.size());
  for (WorkItem& item : work) {
    out.push_back({std::move(item.scenario), std::move(item.label)});
  }
  return out;
}

}  // namespace rv::engine
