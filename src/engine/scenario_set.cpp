#include "engine/scenario_set.hpp"

#include <utility>

namespace rv::engine {

ScenarioSet& ScenarioSet::add(rendezvous::Scenario scenario,
                              std::string label) {
  explicit_.push_back({std::move(scenario), std::move(label)});
  return *this;
}

ScenarioSet& ScenarioSet::speeds(std::vector<double> values) {
  speeds_ = std::move(values);
  has_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::time_units(std::vector<double> values) {
  time_units_ = std::move(values);
  has_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::orientations(std::vector<double> values) {
  orientations_ = std::move(values);
  has_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::chiralities(std::vector<int> values) {
  chiralities_ = std::move(values);
  has_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::offsets(std::vector<geom::Vec2> values) {
  offsets_ = std::move(values);
  has_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::distances(std::vector<double> values) {
  std::vector<geom::Vec2> offs;
  offs.reserve(values.size());
  for (const double d : values) offs.push_back({d, 0.0});
  return offsets(std::move(offs));
}

ScenarioSet& ScenarioSet::base(rendezvous::Scenario base_scenario) {
  base_ = std::move(base_scenario);
  return *this;
}

ScenarioSet& ScenarioSet::visibility(double r) {
  base_.visibility = r;
  return *this;
}

ScenarioSet& ScenarioSet::algorithm(rendezvous::AlgorithmChoice choice) {
  base_.algorithm = choice;
  return *this;
}

ScenarioSet& ScenarioSet::max_time(double horizon) {
  base_.max_time = horizon;
  return *this;
}

ScenarioSet& ScenarioSet::horizon(
    std::function<double(const rendezvous::Scenario&)> horizon_fn) {
  horizon_fn_ = std::move(horizon_fn);
  return *this;
}

ScenarioSet& ScenarioSet::filter(
    std::function<bool(const rendezvous::Scenario&)> keep_fn) {
  keep_fn_ = std::move(keep_fn);
  return *this;
}

ScenarioSet& ScenarioSet::label(
    std::function<std::string(const rendezvous::Scenario&)> label_fn) {
  label_fn_ = std::move(label_fn);
  return *this;
}

std::vector<LabeledScenario> ScenarioSet::materialize() const {
  std::vector<LabeledScenario> out;

  auto emit = [&](rendezvous::Scenario s, std::string label) {
    // Filter first: horizon rules (e.g. theorem bounds) need not be
    // well defined on dropped cells such as infeasible corners.
    if (keep_fn_ && !keep_fn_(s)) return;
    if (horizon_fn_) s.max_time = horizon_fn_(s);
    if (label.empty() && label_fn_) label = label_fn_(s);
    out.push_back({std::move(s), std::move(label)});
  };

  for (const LabeledScenario& ls : explicit_) emit(ls.scenario, ls.label);

  if (!has_grid_) return out;

  // Unset axes contribute the base value, so the nesting below always
  // covers the full cross product.
  const std::vector<double> vs =
      speeds_.empty() ? std::vector<double>{base_.attrs.speed} : speeds_;
  const std::vector<double> taus =
      time_units_.empty() ? std::vector<double>{base_.attrs.time_unit}
                          : time_units_;
  const std::vector<double> phis =
      orientations_.empty() ? std::vector<double>{base_.attrs.orientation}
                            : orientations_;
  const std::vector<int> chis =
      chiralities_.empty() ? std::vector<int>{base_.attrs.chirality}
                           : chiralities_;
  const std::vector<geom::Vec2> offs =
      offsets_.empty() ? std::vector<geom::Vec2>{base_.offset} : offsets_;

  for (const double v : vs) {
    for (const double tau : taus) {
      for (const double phi : phis) {
        for (const int chi : chis) {
          for (const geom::Vec2& off : offs) {
            rendezvous::Scenario s = base_;
            s.attrs.speed = v;
            s.attrs.time_unit = tau;
            s.attrs.orientation = phi;
            s.attrs.chirality = chi;
            s.offset = off;
            emit(std::move(s), "");
          }
        }
      }
    }
  }
  return out;
}

}  // namespace rv::engine
