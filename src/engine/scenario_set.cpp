#include "engine/scenario_set.hpp"

#include <stdexcept>
#include <utility>

namespace rv::engine {

namespace {

/// Lifts a typed per-family component hook onto the generic
/// record-level hook the work items carry.
ComponentsFn wrap(RendezvousComponentsFn fn) {
  if (!fn) return nullptr;
  return [fn = std::move(fn)](const RunRecord& rec) {
    return fn(rec.scenario, rec.outcome);
  };
}

ComponentsFn wrap(SearchComponentsFn fn) {
  if (!fn) return nullptr;
  return [fn = std::move(fn)](const RunRecord& rec) {
    return fn(rec.search, rec.search_outcome);
  };
}

ComponentsFn wrap(GatherComponentsFn fn) {
  if (!fn) return nullptr;
  return [fn = std::move(fn)](const RunRecord& rec) {
    return fn(rec.gather, rec.gather_outcome);
  };
}

ComponentsFn wrap(LinearComponentsFn fn) {
  if (!fn) return nullptr;
  return [fn = std::move(fn)](const RunRecord& rec) {
    return fn(rec.linear, rec.linear_outcome);
  };
}

ComponentsFn wrap(CoverageComponentsFn fn) {
  if (!fn) return nullptr;
  return [fn = std::move(fn)](const RunRecord& rec) {
    return fn(rec.coverage, rec.coverage_outcome);
  };
}

}  // namespace

ScenarioSet& ScenarioSet::add(rendezvous::Scenario scenario, std::string label,
                              RendezvousComponentsFn components) {
  WorkItem item;
  item.family = Family::kRendezvous;
  item.label = std::move(label);
  item.scenario = std::move(scenario);
  item.components = wrap(std::move(components));
  explicit_.push_back(std::move(item));
  return *this;
}

ScenarioSet& ScenarioSet::speeds(std::vector<double> values) {
  speeds_ = std::move(values);
  has_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::time_units(std::vector<double> values) {
  time_units_ = std::move(values);
  has_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::orientations(std::vector<double> values) {
  orientations_ = std::move(values);
  has_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::chiralities(std::vector<int> values) {
  chiralities_ = std::move(values);
  has_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::offsets(std::vector<geom::Vec2> values) {
  offsets_ = std::move(values);
  has_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::distances(std::vector<double> values) {
  std::vector<geom::Vec2> offs;
  offs.reserve(values.size());
  for (const double d : values) offs.push_back({d, 0.0});
  return offsets(std::move(offs));
}

ScenarioSet& ScenarioSet::base(rendezvous::Scenario base_scenario) {
  base_ = std::move(base_scenario);
  return *this;
}

ScenarioSet& ScenarioSet::visibility(double r) {
  base_.visibility = r;
  return *this;
}

ScenarioSet& ScenarioSet::algorithm(rendezvous::AlgorithmChoice choice) {
  base_.algorithm = choice;
  return *this;
}

ScenarioSet& ScenarioSet::max_time(double horizon) {
  base_.max_time = horizon;
  return *this;
}

ScenarioSet& ScenarioSet::horizon(
    std::function<double(const rendezvous::Scenario&)> horizon_fn) {
  horizon_fn_ = std::move(horizon_fn);
  return *this;
}

ScenarioSet& ScenarioSet::filter(
    std::function<bool(const rendezvous::Scenario&)> keep_fn) {
  keep_fn_ = std::move(keep_fn);
  return *this;
}

ScenarioSet& ScenarioSet::label(
    std::function<std::string(const rendezvous::Scenario&)> label_fn) {
  label_fn_ = std::move(label_fn);
  return *this;
}

ScenarioSet& ScenarioSet::components(RendezvousComponentsFn fn) {
  components_fn_ = std::move(fn);
  return *this;
}

ScenarioSet& ScenarioSet::add_search(SearchCell cell, std::string label,
                                     SearchComponentsFn components) {
  WorkItem item;
  item.family = Family::kSearch;
  item.label = std::move(label);
  item.search = std::move(cell);
  item.components = wrap(std::move(components));
  explicit_search_.push_back(std::move(item));
  return *this;
}

ScenarioSet& ScenarioSet::search_base(SearchCell base_cell) {
  search_base_ = std::move(base_cell);
  return *this;
}

ScenarioSet& ScenarioSet::search_distances(std::vector<double> values) {
  search_distances_ = std::move(values);
  has_search_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::search_radii(std::vector<double> values) {
  search_radii_ = std::move(values);
  has_search_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::search_programs(std::vector<SearchProgram> values) {
  search_programs_ = std::move(values);
  has_search_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::search_horizon(
    std::function<double(const SearchCell&)> fn) {
  search_horizon_fn_ = std::move(fn);
  return *this;
}

ScenarioSet& ScenarioSet::search_filter(
    std::function<bool(const SearchCell&)> fn) {
  search_keep_fn_ = std::move(fn);
  return *this;
}

ScenarioSet& ScenarioSet::search_label(
    std::function<std::string(const SearchCell&)> fn) {
  search_label_fn_ = std::move(fn);
  return *this;
}

ScenarioSet& ScenarioSet::search_components(SearchComponentsFn fn) {
  search_components_fn_ = std::move(fn);
  return *this;
}

ScenarioSet& ScenarioSet::add_gather(GatherCell cell, std::string label,
                                     GatherComponentsFn components) {
  WorkItem item;
  item.family = Family::kGather;
  item.label = std::move(label);
  item.gather = std::move(cell);
  item.components = wrap(std::move(components));
  explicit_gather_.push_back(std::move(item));
  return *this;
}

ScenarioSet& ScenarioSet::gather_base(GatherCell base_cell) {
  gather_base_ = std::move(base_cell);
  return *this;
}

ScenarioSet& ScenarioSet::gather_sizes(std::vector<int> values) {
  gather_sizes_ = std::move(values);
  return *this;
}

ScenarioSet& ScenarioSet::gather_fleet(
    std::function<std::vector<geom::RobotAttributes>(int)> fleet_fn) {
  gather_fleet_fn_ = std::move(fleet_fn);
  return *this;
}

ScenarioSet& ScenarioSet::gather_label(
    std::function<std::string(const GatherCell&)> fn) {
  gather_label_fn_ = std::move(fn);
  return *this;
}

ScenarioSet& ScenarioSet::gather_components(GatherComponentsFn fn) {
  gather_components_fn_ = std::move(fn);
  return *this;
}

ScenarioSet& ScenarioSet::add_linear(LinearCell cell, std::string label,
                                     LinearComponentsFn components) {
  WorkItem item;
  item.family = Family::kLinear;
  item.label = std::move(label);
  item.linear = std::move(cell);
  item.components = wrap(std::move(components));
  explicit_linear_.push_back(std::move(item));
  return *this;
}

ScenarioSet& ScenarioSet::linear_base(LinearCell base_cell) {
  linear_base_ = std::move(base_cell);
  return *this;
}

ScenarioSet& ScenarioSet::linear_distances(std::vector<double> values) {
  linear_distances_ = std::move(values);
  has_linear_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::linear_radii(std::vector<double> values) {
  linear_radii_ = std::move(values);
  has_linear_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::linear_horizon(
    std::function<double(const LinearCell&)> fn) {
  linear_horizon_fn_ = std::move(fn);
  return *this;
}

ScenarioSet& ScenarioSet::linear_filter(
    std::function<bool(const LinearCell&)> fn) {
  linear_keep_fn_ = std::move(fn);
  return *this;
}

ScenarioSet& ScenarioSet::linear_label(
    std::function<std::string(const LinearCell&)> fn) {
  linear_label_fn_ = std::move(fn);
  return *this;
}

ScenarioSet& ScenarioSet::linear_components(LinearComponentsFn fn) {
  linear_components_fn_ = std::move(fn);
  return *this;
}

ScenarioSet& ScenarioSet::add_coverage(CoverageCell cell, std::string label,
                                       CoverageComponentsFn components) {
  WorkItem item;
  item.family = Family::kCoverage;
  item.label = std::move(label);
  item.coverage = std::move(cell);
  item.components = wrap(std::move(components));
  explicit_coverage_.push_back(std::move(item));
  return *this;
}

ScenarioSet& ScenarioSet::coverage_base(CoverageCell base_cell) {
  coverage_base_ = std::move(base_cell);
  return *this;
}

ScenarioSet& ScenarioSet::coverage_programs(
    std::vector<SearchProgram> values) {
  coverage_programs_ = std::move(values);
  has_coverage_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::coverage_disk_radii(std::vector<double> values) {
  coverage_disk_radii_ = std::move(values);
  has_coverage_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::coverage_radii(std::vector<double> values) {
  coverage_radii_ = std::move(values);
  has_coverage_grid_ = true;
  return *this;
}

ScenarioSet& ScenarioSet::coverage_horizon(
    std::function<double(const CoverageCell&)> fn) {
  coverage_horizon_fn_ = std::move(fn);
  return *this;
}

ScenarioSet& ScenarioSet::coverage_filter(
    std::function<bool(const CoverageCell&)> fn) {
  coverage_keep_fn_ = std::move(fn);
  return *this;
}

ScenarioSet& ScenarioSet::coverage_label(
    std::function<std::string(const CoverageCell&)> fn) {
  coverage_label_fn_ = std::move(fn);
  return *this;
}

ScenarioSet& ScenarioSet::coverage_components(CoverageComponentsFn fn) {
  coverage_components_fn_ = std::move(fn);
  return *this;
}

ScenarioSet& ScenarioSet::components_only(bool on) {
  components_only_ = on;
  return *this;
}

std::vector<WorkItem> ScenarioSet::materialize_work() const {
  std::vector<WorkItem> out;

  // Set-level typed hooks, lifted once; per-cell hooks win.
  const ComponentsFn set_components = wrap(components_fn_);
  const ComponentsFn set_search_components = wrap(search_components_fn_);
  const ComponentsFn set_gather_components = wrap(gather_components_fn_);
  const ComponentsFn set_linear_components = wrap(linear_components_fn_);
  const ComponentsFn set_coverage_components = wrap(coverage_components_fn_);

  // ---- 1. rendezvous: explicit adds, then the attribute grid ----------
  auto emit = [&](rendezvous::Scenario s, std::string label,
                  const ComponentsFn& components) {
    // Filter first: horizon rules (e.g. theorem bounds) need not be
    // well defined on dropped cells such as infeasible corners.
    if (keep_fn_ && !keep_fn_(s)) return;
    if (horizon_fn_) s.max_time = horizon_fn_(s);
    if (label.empty() && label_fn_) label = label_fn_(s);
    WorkItem item;
    item.family = Family::kRendezvous;
    item.label = std::move(label);
    item.scenario = std::move(s);
    item.components = components ? components : set_components;
    item.components_only = components_only_;
    out.push_back(std::move(item));
  };

  for (const WorkItem& it : explicit_) {
    emit(it.scenario, it.label, it.components);
  }

  if (has_grid_) {
    // Unset axes contribute the base value, so the nesting below always
    // covers the full cross product.
    const std::vector<double> vs =
        speeds_.empty() ? std::vector<double>{base_.attrs.speed} : speeds_;
    const std::vector<double> taus =
        time_units_.empty() ? std::vector<double>{base_.attrs.time_unit}
                            : time_units_;
    const std::vector<double> phis =
        orientations_.empty() ? std::vector<double>{base_.attrs.orientation}
                              : orientations_;
    const std::vector<int> chis =
        chiralities_.empty() ? std::vector<int>{base_.attrs.chirality}
                             : chiralities_;
    const std::vector<geom::Vec2> offs =
        offsets_.empty() ? std::vector<geom::Vec2>{base_.offset} : offsets_;

    for (const double v : vs) {
      for (const double tau : taus) {
        for (const double phi : phis) {
          for (const int chi : chis) {
            for (const geom::Vec2& off : offs) {
              rendezvous::Scenario s = base_;
              s.attrs.speed = v;
              s.attrs.time_unit = tau;
              s.attrs.orientation = phi;
              s.attrs.chirality = chi;
              s.offset = off;
              emit(std::move(s), "", nullptr);
            }
          }
        }
      }
    }
  }

  // ---- 2. search: explicit adds, then distances ⊃ radii ⊃ programs ----
  auto emit_search = [&](SearchCell cell, std::string label,
                         const ComponentsFn& components) {
    if (search_keep_fn_ && !search_keep_fn_(cell)) return;
    if (search_horizon_fn_) cell.max_time = search_horizon_fn_(cell);
    if (label.empty() && search_label_fn_) label = search_label_fn_(cell);
    WorkItem item;
    item.family = Family::kSearch;
    item.label = std::move(label);
    item.search = std::move(cell);
    item.components = components ? components : set_search_components;
    item.components_only = components_only_;
    out.push_back(std::move(item));
  };

  for (const WorkItem& item : explicit_search_) {
    emit_search(item.search, item.label, item.components);
  }

  if (has_search_grid_) {
    const std::vector<double> ds =
        search_distances_.empty() ? std::vector<double>{search_base_.distance}
                                  : search_distances_;
    const std::vector<double> rs =
        search_radii_.empty() ? std::vector<double>{search_base_.visibility}
                              : search_radii_;
    const std::vector<SearchProgram> progs =
        search_programs_.empty()
            ? std::vector<SearchProgram>{search_base_.program}
            : search_programs_;
    for (const double d : ds) {
      for (const double r : rs) {
        for (const SearchProgram prog : progs) {
          SearchCell cell = search_base_;
          cell.distance = d;
          cell.visibility = r;
          cell.program = prog;
          emit_search(std::move(cell), "", nullptr);
        }
      }
    }
  }

  // ---- 3. gather: explicit adds, then the fleet-size grid -------------
  auto emit_gather = [&](GatherCell cell, std::string label,
                         const ComponentsFn& components) {
    if (label.empty() && gather_label_fn_) label = gather_label_fn_(cell);
    WorkItem item;
    item.family = Family::kGather;
    item.label = std::move(label);
    item.gather = std::move(cell);
    item.components = components ? components : set_gather_components;
    item.components_only = components_only_;
    out.push_back(std::move(item));
  };

  for (const WorkItem& item : explicit_gather_) {
    emit_gather(item.gather, item.label, item.components);
  }

  for (const int n : gather_sizes_) {
    if (n < 2) {
      throw std::invalid_argument("ScenarioSet: gather size must be >= 2");
    }
    GatherCell cell = gather_base_;
    cell.fleet = gather_fleet_fn_
                     ? gather_fleet_fn_(n)
                     : std::vector<geom::RobotAttributes>(
                           static_cast<std::size_t>(n),
                           geom::reference_attributes());
    emit_gather(std::move(cell), "", nullptr);
  }

  // ---- 4. linear: explicit adds, then distances ⊃ radii ---------------
  auto emit_linear = [&](LinearCell cell, std::string label,
                         const ComponentsFn& components) {
    if (linear_keep_fn_ && !linear_keep_fn_(cell)) return;
    if (linear_horizon_fn_) cell.max_time = linear_horizon_fn_(cell);
    if (label.empty() && linear_label_fn_) label = linear_label_fn_(cell);
    WorkItem item;
    item.family = Family::kLinear;
    item.label = std::move(label);
    item.linear = std::move(cell);
    item.components = components ? components : set_linear_components;
    item.components_only = components_only_;
    out.push_back(std::move(item));
  };

  for (const WorkItem& item : explicit_linear_) {
    emit_linear(item.linear, item.label, item.components);
  }

  if (has_linear_grid_) {
    const std::vector<double> ds =
        linear_distances_.empty() ? std::vector<double>{linear_base_.target}
                                  : linear_distances_;
    const std::vector<double> rs =
        linear_radii_.empty() ? std::vector<double>{linear_base_.visibility}
                              : linear_radii_;
    for (const double d : ds) {
      for (const double r : rs) {
        LinearCell cell = linear_base_;
        cell.target = d;
        cell.visibility = r;
        emit_linear(std::move(cell), "", nullptr);
      }
    }
  }

  // ---- 5. coverage: explicit adds, then programs ⊃ R ⊃ r --------------
  auto emit_coverage = [&](CoverageCell cell, std::string label,
                           const ComponentsFn& components) {
    if (coverage_keep_fn_ && !coverage_keep_fn_(cell)) return;
    if (coverage_horizon_fn_) cell.horizon = coverage_horizon_fn_(cell);
    if (label.empty() && coverage_label_fn_) label = coverage_label_fn_(cell);
    WorkItem item;
    item.family = Family::kCoverage;
    item.label = std::move(label);
    item.coverage = std::move(cell);
    item.components = components ? components : set_coverage_components;
    item.components_only = components_only_;
    out.push_back(std::move(item));
  };

  for (const WorkItem& item : explicit_coverage_) {
    emit_coverage(item.coverage, item.label, item.components);
  }

  if (has_coverage_grid_) {
    const std::vector<SearchProgram> progs =
        coverage_programs_.empty()
            ? std::vector<SearchProgram>{coverage_base_.program}
            : coverage_programs_;
    const std::vector<double> radii =
        coverage_disk_radii_.empty()
            ? std::vector<double>{coverage_base_.disk_radius}
            : coverage_disk_radii_;
    const std::vector<double> rs =
        coverage_radii_.empty()
            ? std::vector<double>{coverage_base_.visibility}
            : coverage_radii_;
    for (const SearchProgram prog : progs) {
      for (const double radius : radii) {
        for (const double r : rs) {
          CoverageCell cell = coverage_base_;
          cell.program = prog;
          cell.disk_radius = radius;
          cell.visibility = r;
          emit_coverage(std::move(cell), "", nullptr);
        }
      }
    }
  }

  return out;
}

std::vector<LabeledScenario> ScenarioSet::materialize() const {
  if (!explicit_search_.empty() || has_search_grid_ ||
      !explicit_gather_.empty() || !gather_sizes_.empty() ||
      !explicit_linear_.empty() || has_linear_grid_ ||
      !explicit_coverage_.empty() || has_coverage_grid_) {
    throw std::logic_error(
        "ScenarioSet::materialize: set declares search/gather/linear/"
        "coverage cells; use materialize_work()");
  }
  // LabeledScenario cannot carry component hooks or the
  // components-only flag — refuse rather than silently dropping them
  // (the WorkItem view preserves both).
  if (components_only_ || components_fn_) {
    throw std::logic_error(
        "ScenarioSet::materialize: set declares component times; use "
        "materialize_work()");
  }
  auto has_per_cell_hook = [](const std::vector<WorkItem>& items) {
    for (const WorkItem& item : items) {
      if (item.components) return true;
    }
    return false;
  };
  if (has_per_cell_hook(explicit_)) {
    throw std::logic_error(
        "ScenarioSet::materialize: set declares component times; use "
        "materialize_work()");
  }
  std::vector<WorkItem> work = materialize_work();
  std::vector<LabeledScenario> out;
  out.reserve(work.size());
  for (WorkItem& item : work) {
    out.push_back({std::move(item.scenario), std::move(item.label)});
  }
  return out;
}

}  // namespace rv::engine
