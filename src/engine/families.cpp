#include "engine/families.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "engine/wire.hpp"
#include "linear/zigzag.hpp"
#include "mathx/constants.hpp"
#include "mathx/stats.hpp"
#include "search/algorithm4.hpp"
#include "search/baselines.hpp"
#include "sim/simulator.hpp"

namespace rv::engine {

const char* family_name(Family family) {
  switch (family) {
    case Family::kRendezvous: return "rendezvous";
    case Family::kSearch: return "search";
    case Family::kGather: return "gather";
    case Family::kLinear: return "linear";
    case Family::kCoverage: return "coverage";
  }
  return "?";
}

double component_value(const Components& components,
                       const std::string& name) {
  for (const Component& c : components) {
    if (c.name == name) return c.value;
  }
  throw std::out_of_range("component_value: no component named '" + name +
                          "'");
}

const char* linear_mode_name(LinearMode mode) {
  switch (mode) {
    case LinearMode::kZigZagSearch: return "zigzag-search";
    case LinearMode::kRendezvous: return "linear-rendezvous";
  }
  return "?";
}

namespace {

/// Shared program dispatch of the search and coverage families: the
/// custom factory wins, otherwise the built-in choice.
std::shared_ptr<traj::Program> make_family_program(
    SearchProgram program,
    const std::function<std::shared_ptr<traj::Program>()>& factory) {
  if (factory) return factory();
  switch (program) {
    case SearchProgram::kAlgorithm4: return search::make_search_program();
    case SearchProgram::kConcentric: return search::make_concentric_baseline();
    case SearchProgram::kSquareSpiral:
      return search::make_square_spiral_baseline();
  }
  throw std::invalid_argument("make_family_program: unknown program");
}

std::shared_ptr<traj::Program> make_search_cell_program(
    const SearchCell& cell) {
  return make_family_program(cell.program, cell.program_factory);
}

}  // namespace

SearchOutcome run_search_cell(const SearchCell& cell) {
  // Explicit targets override the angle ring entirely.
  const bool explicit_targets = !cell.targets.empty();
  if (!explicit_targets) {
    if (cell.angles < 1) {
      throw std::invalid_argument("run_search_cell: need >= 1 angle");
    }
    if (!(cell.distance > 0.0)) {
      throw std::invalid_argument("run_search_cell: distance must be > 0");
    }
  }
  const int count =
      explicit_targets ? static_cast<int>(cell.targets.size()) : cell.angles;
  SearchOutcome out;
  mathx::RunningStats stats;
  // The worst-over-angles reducer: simulate every target of the ring
  // (in ring order, so the reduction is deterministic) and keep the
  // worst/mean discovery time over the found ones.
  for (int a = 0; a < count; ++a) {
    geom::Vec2 target;
    double ang;
    if (explicit_targets) {
      target = cell.targets[static_cast<std::size_t>(a)];
      ang = std::atan2(target.y, target.x);
    } else {
      ang = 2.0 * mathx::kPi * a / cell.angles + cell.angle_offset;
      target = geom::polar(cell.distance, ang);
    }
    sim::SimOptions opts;
    opts.visibility = cell.visibility;
    opts.max_time = cell.max_time;
    const sim::SimResult res =
        sim::simulate_search(make_search_cell_program(cell), target, opts,
                             cell.attrs);
    out.evals += res.evals;
    out.segments += res.segments;
    if (res.met) {
      if (out.found == 0 || res.time > out.worst_time) {
        out.worst_time = res.time;
        out.worst_angle = ang;
      }
      ++out.found;
      stats.add(res.time);
    } else {
      if (out.missed == 0) out.first_miss_angle = ang;
      ++out.missed;
    }
  }
  out.complete = out.found == count;
  out.mean_time = out.found > 0 ? stats.mean() : 0.0;
  out.program_name = cell.program_name.empty()
                         ? make_search_cell_program(cell)->name()
                         : cell.program_name;
  return out;
}

LinearOutcome run_linear_cell(const LinearCell& cell) {
  LinearOutcome out;
  sim::SimOptions opts;
  opts.visibility = cell.visibility;
  opts.max_time = cell.max_time;
  switch (cell.mode) {
    case LinearMode::kZigZagSearch:
      // The zigzag crosses every point of the line, so the target is
      // always reachable (r only widens the catch window).
      out.feasible = true;
      out.sim = sim::simulate_search(linear::make_zigzag_program(),
                                     {cell.target, 0.0}, opts,
                                     linear::to_planar(cell.attrs));
      return out;
    case LinearMode::kRendezvous:
      out.feasible = linear::linear_rendezvous_feasible(cell.attrs);
      out.sim = sim::simulate_rendezvous(
          [] { return linear::make_linear_rendezvous_program(); },
          linear::to_planar(cell.attrs), {cell.target, 0.0}, opts);
      return out;
  }
  throw std::invalid_argument("run_linear_cell: unknown mode");
}

CoverageOutcome run_coverage_cell(const CoverageCell& cell) {
  analysis::CoverageOptions opts;
  opts.visibility = cell.visibility;
  opts.disk_radius = cell.disk_radius;
  opts.cell = cell.cell;
  opts.checkpoints = cell.checkpoints;
  opts.horizon = cell.horizon;
  CoverageOutcome out;
  const std::shared_ptr<traj::Program> program =
      make_family_program(cell.program, cell.program_factory);
  out.program_name =
      cell.program_name.empty() ? program->name() : cell.program_name;
  out.series = analysis::measure_coverage(program, cell.attrs, opts);
  out.t50 = analysis::time_to_fraction(out.series, 0.50);
  out.t99 = analysis::time_to_fraction(out.series, 0.99);
  if (!out.series.empty()) {
    out.final_fraction = out.series.back().fraction;
    out.covered_area = out.series.back().covered_area;
  }
  return out;
}

geom::Vec2 gather_origin(const GatherCell& cell, std::size_t i) {
  const std::size_t n = cell.fleet.size();
  geom::Vec2 origin = geom::polar(
      cell.ring_radius, cell.ring_phase + 2.0 * mathx::kPi *
                                              static_cast<double>(i) /
                                              static_cast<double>(n));
  if (i < cell.jitter.size()) {
    origin.x += cell.jitter[i].x;
    origin.y += cell.jitter[i].y;
  }
  return origin;
}

// ---------------------------------------------------------------------------
// Scenario content keys
// ---------------------------------------------------------------------------

namespace {

/// Canonical byte encoders (cores shared with the cache store via
/// engine/wire.hpp).  Doubles are appended canonically — −0.0
/// normalised onto +0.0 — integers as fixed-width raw bytes, strings
/// length-prefixed.
void append_f64(std::string& out, double v) {
  wire::put_f64_canonical(out, v);
}

void append_i32(std::string& out, std::int32_t v) { wire::put(out, v); }

void append_str(std::string& out, const std::string& s) {
  append_i32(out, static_cast<std::int32_t>(s.size()));
  out += s;
}

void append_attrs(std::string& out, const geom::RobotAttributes& a) {
  append_f64(out, a.speed);
  append_f64(out, a.time_unit);
  append_f64(out, a.orientation);
  append_i32(out, a.chirality);
}

void append_vec2(std::string& out, const geom::Vec2& v) {
  append_f64(out, v.x);
  append_f64(out, v.y);
}

/// Program identity: 'a' + enum for a built-in algorithm, 'c' + name
/// for a named custom factory, nullopt (uncacheable) for an anonymous
/// one.
[[nodiscard]] bool append_program_identity(std::string& out,
                                           bool has_factory,
                                           const std::string& name,
                                           std::int32_t algorithm) {
  if (has_factory) {
    if (name.empty()) return false;
    out += 'c';
    append_str(out, name);
  } else {
    out += 'a';
    append_i32(out, algorithm);
  }
  return true;
}

}  // namespace

std::optional<std::string> cache_key(const WorkItem& item) {
  // Components-only items have no payload outcome to memoize, and the
  // hook itself (an arbitrary function) has no stable identity.
  if (item.components_only) return std::nullopt;
  std::string key;
  switch (item.family) {
    case Family::kRendezvous: {
      const rendezvous::Scenario& s = item.scenario;
      key += 'R';
      if (!append_program_identity(key, static_cast<bool>(s.program),
                                   s.program_name,
                                   static_cast<std::int32_t>(s.algorithm))) {
        return std::nullopt;
      }
      append_attrs(key, s.attrs);
      append_vec2(key, s.offset);
      append_f64(key, s.visibility);
      append_f64(key, s.max_time);
      return key;
    }
    case Family::kSearch: {
      const SearchCell& c = item.search;
      key += 'S';
      if (!append_program_identity(key, static_cast<bool>(c.program_factory),
                                   c.program_name,
                                   static_cast<std::int32_t>(c.program))) {
        return std::nullopt;
      }
      // The name is keyed even without a factory: run_search_cell
      // echoes a non-empty program_name into the reported outcome, so
      // cells differing only in it must not share an entry.
      append_str(key, c.program_name);
      append_f64(key, c.distance);
      append_f64(key, c.visibility);
      append_i32(key, c.angles);
      append_f64(key, c.angle_offset);
      // Explicit targets replace the ring, so they are part of the
      // content (count-prefixed: a ring cell and a target cell with
      // otherwise equal fields must not alias).
      append_i32(key, static_cast<std::int32_t>(c.targets.size()));
      for (const geom::Vec2& t : c.targets) append_vec2(key, t);
      append_attrs(key, c.attrs);
      append_f64(key, c.max_time);
      return key;
    }
    case Family::kGather: {
      const GatherCell& c = item.gather;
      key += 'G';
      append_i32(key, static_cast<std::int32_t>(c.algorithm));
      append_i32(key, static_cast<std::int32_t>(c.fleet.size()));
      for (const geom::RobotAttributes& a : c.fleet) append_attrs(key, a);
      append_f64(key, c.ring_radius);
      append_f64(key, c.ring_phase);
      append_i32(key, static_cast<std::int32_t>(c.jitter.size()));
      for (const geom::Vec2& v : c.jitter) append_vec2(key, v);
      append_f64(key, c.visibility);
      append_f64(key, c.contact_max_time);
      append_f64(key, c.gather_max_time);
      return key;
    }
    case Family::kLinear: {
      const LinearCell& c = item.linear;
      key += 'L';
      append_i32(key, static_cast<std::int32_t>(c.mode));
      append_f64(key, c.attrs.speed);
      append_f64(key, c.attrs.time_unit);
      append_i32(key, c.attrs.direction);
      append_f64(key, c.target);
      append_f64(key, c.visibility);
      append_f64(key, c.max_time);
      return key;
    }
    case Family::kCoverage: {
      const CoverageCell& c = item.coverage;
      key += 'C';
      if (!append_program_identity(key, static_cast<bool>(c.program_factory),
                                   c.program_name,
                                   static_cast<std::int32_t>(c.program))) {
        return std::nullopt;
      }
      // Keyed even without a factory: run_coverage_cell echoes a
      // non-empty program_name into the reported outcome.
      append_str(key, c.program_name);
      append_attrs(key, c.attrs);
      append_f64(key, c.disk_radius);
      append_f64(key, c.visibility);
      append_f64(key, c.cell);
      append_i32(key, c.checkpoints);
      append_f64(key, c.horizon);
      return key;
    }
  }
  return std::nullopt;
}

GatherOutcome run_gather_cell(const GatherCell& cell) {
  const std::size_t n = cell.fleet.size();
  if (n < 2) {
    throw std::invalid_argument("run_gather_cell: need a fleet of >= 2");
  }
  std::vector<geom::Vec2> origins;
  origins.reserve(n);
  for (std::size_t i = 0; i < n; ++i) origins.push_back(gather_origin(cell, i));
  const auto factory = rendezvous::program_factory(cell.algorithm);

  GatherOutcome out;
  gather::GatherOptions contact_opts;
  contact_opts.sweep.visibility = cell.visibility;
  contact_opts.sweep.max_time = cell.contact_max_time;
  contact_opts.mode = gather::GatherMode::kFirstContact;
  out.contact =
      gather::simulate_gathering(factory, cell.fleet, origins, contact_opts);

  gather::GatherOptions gather_opts = contact_opts;
  gather_opts.mode = gather::GatherMode::kAllPairsGathered;
  gather_opts.sweep.max_time = cell.gather_max_time;
  out.gathered =
      gather::simulate_gathering(factory, cell.fleet, origins, gather_opts);
  return out;
}

}  // namespace rv::engine
