#pragma once

/// \file event_solver.hpp
/// Analytic per-window event models for the certified sweep.
///
/// Between trajectory breakpoints every robot rides one primitive, so
/// each pairwise squared distance d²ij(t) has a closed analytic form on
/// the window:
///   * line–line, line–wait, wait–wait — both positions are affine in
///     t, so d²(t) is a *quadratic*: its first crossing of r² is a
///     closed-form root (`quad_first_crossing`), no evaluation loop at
///     all;
///   * pairs involving an arc — d²(t) picks up trigonometric cross
///     terms with no closed-form root, but the model still yields a
///     provable derivative bound |d/ds d²| ≤ 2·V·(d₀ + V·w) on the
///     window (V = sum of the two traversal speeds, d₀ the separation
///     at the window start, w the window length).  `certified_first_
///     crossing` steps under that bound — each step provably cannot
///     skip a crossing — and refines the first bracketing step with
///     `mathx::brent` (superlinear) instead of bisection.
///
/// `engine::ContactSweep` dispatches on `SweepOptions::solver` exactly
/// like the metric kernels dispatch on `SweepOptions::kernel`:
/// `kBisection` is the historical Lipschitz-step + bisection oracle
/// (byte-identical outputs, the default), `kAnalytic` drives the sweep
/// by these models, and `kAuto` uses the models on polynomial windows
/// and falls back to certified stepping on windows containing arcs.
///
/// Certification contract: the model paths inherit the sweep's Zeno
/// guard — a forced `min_step` of progress can pass over a tangential
/// dip of temporal width below `min_step`, exactly as the Lipschitz
/// stepper can — and every *accepted* event is confirmed by a real
/// metric evaluation at the candidate time, so the bisection path
/// remains the bitwise oracle while the analytic path agrees to within
/// the sweep tolerances (pinned by tests/test_event_solver.cpp).

#include <cstdint>

#include "geom/vec2.hpp"
#include "traj/frame.hpp"

namespace rv::engine {

/// Which event solver drives the sweep between metric evaluations.
enum class SolverChoice {
  kBisection,  ///< Lipschitz stepping + bisection (the bitwise oracle)
  kAnalytic,   ///< per-window pair models everywhere (brent on arcs)
  kAuto,       ///< models on polynomial windows, stepping on arc windows
};

/// Outcome of a first-crossing query for one pair on one window
/// [0, w] (s is relative to the window start).
struct PairCrossing {
  enum class Status {
    kClear,     ///< certified: d² > r² on the whole window
    kCrossing,  ///< first s in (0, w] with d²(s) ≤ r² located at `s`
    kPartial,   ///< certified clear only on (0, s] (step budget hit)
  };
  Status status = Status::kClear;
  double s = 0.0;
};

/// Termination controls of the certified arc-pair search; the sweep
/// wires its own tolerances in (`time_tol` feeds `mathx::RootOptions::
/// x_tol` for the brent refinement, `min_step` is the Zeno guard).
struct CrossingControls {
  double time_tol = 1e-9;
  double min_step = 1e-9;
  std::uint64_t max_steps = 4096;  ///< per-pair budget before kPartial
};

/// True when the segment's position is affine in time (line or wait —
/// anything but an arc), i.e. the pair model is a quadratic.
[[nodiscard]] bool is_polynomial(const traj::TimedSegment& seg);

/// Global-frame velocity of a polynomial segment (0 for waits).
[[nodiscard]] geom::Vec2 segment_velocity(const traj::TimedSegment& seg);

/// Closed-form first crossing of |Δ₀ + Δv·s|² = r² on (0, w], given
/// the pair separation Δ₀ at the window start and relative velocity
/// Δv.  Requires |Δ₀| > r (the sweep only advances while the metric is
/// above r); returns a crossing at s = 0 defensively otherwise.
[[nodiscard]] PairCrossing quad_first_crossing(const geom::Vec2& delta0,
                                               const geom::Vec2& dvel,
                                               double r, double w);

/// Certified first crossing of d²(s) = r² for an arbitrary pair on the
/// window (t, t + w]: derivative-bound stepping (each step provably
/// cannot skip a crossing deeper than the Zeno guard) with brent
/// refinement of the first bracketing step.  `pa`/`pb` are the two
/// positions at window start t.  Each model evaluation (one pair, not
/// the fleet metric) increments `*model_evals`.
[[nodiscard]] PairCrossing certified_first_crossing(
    const traj::TimedSegment& a, const traj::TimedSegment& b,
    const geom::Vec2& pa, const geom::Vec2& pb, double t, double r, double w,
    const CrossingControls& controls, std::uint64_t* model_evals);

/// Dispatch: quadratic closed form when both segments are polynomial,
/// certified derivative-bound search otherwise.  Counts one model
/// evaluation for the closed form.
[[nodiscard]] PairCrossing pair_first_crossing(
    const traj::TimedSegment& a, const traj::TimedSegment& b,
    const geom::Vec2& pa, const geom::Vec2& pb, double t, double r, double w,
    const CrossingControls& controls, std::uint64_t* model_evals);

}  // namespace rv::engine
