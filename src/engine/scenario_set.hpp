#pragma once

/// \file scenario_set.hpp
/// Declarative description of a batch of engine work, spanning the
/// five workload families (see engine/families.hpp).
///
/// Every experiment in the paper is a parameter sweep: a grid over
/// rendezvous attributes (v, τ, φ, χ) and offsets, a (d, r, program)
/// grid of search instances evaluated over a target-angle ring, a list
/// of gathering fleets on origin rings, a (d, r) grid of 1-D cells, or
/// a (program, R, r) grid of swept-area cells.  `ScenarioSet` captures
/// all of them as *data*: axes, base cells, and per-cell hooks
/// (horizon rules, filters, labellers, component times) per family.
///
/// Materialisation order is fixed and documented so the output of every
/// downstream table/CSV is deterministic:
///   1. explicitly `add`ed rendezvous scenarios, then the rendezvous
///      grid (speeds ⊃ time_units ⊃ orientations ⊃ chiralities ⊃
///      offsets, speeds outermost);
///   2. explicitly `add_search`ed cells, then the search grid
///      (search_distances ⊃ search_radii ⊃ search_programs);
///   3. explicitly `add_gather`ed cells, then the gather size grid;
///   4. explicitly `add_linear`ed cells, then the linear grid
///      (linear_distances ⊃ linear_radii);
///   5. explicitly `add_coverage`d cells, then the coverage grid
///      (coverage_programs ⊃ coverage_disk_radii ⊃ coverage_radii).
///
/// Run a set with `engine::run_scenarios` (runner.hpp), which fans the
/// work items out across a thread pool and aggregates the outcomes.

#include <functional>
#include <string>
#include <vector>

#include "engine/families.hpp"
#include "geom/vec2.hpp"
#include "rendezvous/core.hpp"

namespace rv::engine {

/// One materialised rendezvous scenario plus its display label (the
/// historical rendezvous-only view; `WorkItem` is the general form).
struct LabeledScenario {
  rendezvous::Scenario scenario;
  std::string label;
};

/// Typed component-times hooks, one per family: given the cell and its
/// outcome, return the named sub-metric values (see `Components` in
/// engine/families.hpp).  For components-only sets the outcome is
/// default-constructed — hooks that only need the cell just ignore it.
using RendezvousComponentsFn = std::function<Components(
    const rendezvous::Scenario&, const rendezvous::Outcome&)>;
using SearchComponentsFn =
    std::function<Components(const SearchCell&, const SearchOutcome&)>;
using GatherComponentsFn =
    std::function<Components(const GatherCell&, const GatherOutcome&)>;
using LinearComponentsFn =
    std::function<Components(const LinearCell&, const LinearOutcome&)>;
using CoverageComponentsFn =
    std::function<Components(const CoverageCell&, const CoverageOutcome&)>;

/// A declarative multi-family grid/list of engine work.  All setters
/// return *this for fluent declaration-style use.
class ScenarioSet {
 public:
  ScenarioSet() = default;

  /// Appends one explicit rendezvous scenario (kept before the grid
  /// cells, in insertion order).  The horizon/filter/label hooks apply
  /// to these too.  A non-null `components` overrides the set-level
  /// `components()` hook for this cell.
  ScenarioSet& add(rendezvous::Scenario scenario, std::string label = "",
                   RendezvousComponentsFn components = nullptr);

  // --- rendezvous grid axes (an unset axis contributes the base value) --
  ScenarioSet& speeds(std::vector<double> values);
  ScenarioSet& time_units(std::vector<double> values);
  ScenarioSet& orientations(std::vector<double> values);
  ScenarioSet& chiralities(std::vector<int> values);
  ScenarioSet& offsets(std::vector<geom::Vec2> values);
  /// Sugar: offsets {d, 0} for each distance.
  ScenarioSet& distances(std::vector<double> values);

  // --- rendezvous base knobs applied to every grid cell -----------------
  ScenarioSet& base(rendezvous::Scenario base_scenario);
  ScenarioSet& visibility(double r);
  ScenarioSet& algorithm(rendezvous::AlgorithmChoice choice);
  ScenarioSet& max_time(double horizon);

  // --- rendezvous per-scenario hooks ------------------------------------
  /// Horizon override evaluated per materialised scenario (e.g. a
  /// theorem bound plus slack).
  ScenarioSet& horizon(
      std::function<double(const rendezvous::Scenario&)> horizon_fn);
  /// Keep-predicate; cells where it returns false are dropped (e.g. the
  /// infeasible corner of an attribute grid).
  ScenarioSet& filter(
      std::function<bool(const rendezvous::Scenario&)> keep_fn);
  /// Label generator applied when no explicit label was given.
  ScenarioSet& label(
      std::function<std::string(const rendezvous::Scenario&)> label_fn);
  /// Component-times hook for rendezvous cells without their own.
  ScenarioSet& components(RendezvousComponentsFn fn);

  // --- search family ----------------------------------------------------
  /// Appends one explicit search cell (kept before the search grid, in
  /// insertion order).  The search hooks apply to these too.  A
  /// non-null `components` overrides the set-level hook for this cell.
  ScenarioSet& add_search(SearchCell cell, std::string label = "",
                          SearchComponentsFn components = nullptr);
  /// Base cell for the search grid (angle ring, program, attrs, ...).
  ScenarioSet& search_base(SearchCell base_cell);
  /// Grid axes: target distances ⊃ visibility radii ⊃ programs
  /// (distances outermost).  An unset axis contributes the base value.
  ScenarioSet& search_distances(std::vector<double> values);
  ScenarioSet& search_radii(std::vector<double> values);
  ScenarioSet& search_programs(std::vector<SearchProgram> values);
  /// Per-cell horizon rule (e.g. "Theorem 1 bound + slack").
  ScenarioSet& search_horizon(std::function<double(const SearchCell&)> fn);
  /// Keep-predicate over search cells (e.g. "bound applicable").
  ScenarioSet& search_filter(std::function<bool(const SearchCell&)> fn);
  /// Label generator for search cells without an explicit label.
  ScenarioSet& search_label(std::function<std::string(const SearchCell&)> fn);
  /// Component-times hook for search cells without their own.
  ScenarioSet& search_components(SearchComponentsFn fn);

  // --- gather family ----------------------------------------------------
  /// Appends one explicit gathering cell (kept before the gather size
  /// grid, in insertion order).  A non-null `components` overrides the
  /// set-level hook for this cell.
  ScenarioSet& add_gather(GatherCell cell, std::string label = "",
                          GatherComponentsFn components = nullptr);
  /// Base cell for the gather size grid (ring, visibility, horizons).
  ScenarioSet& gather_base(GatherCell base_cell);
  /// Grid axis over fleet sizes; each size is expanded through the
  /// fleet builder (`gather_fleet`), or — when no builder is set — a
  /// fleet of n reference robots.
  ScenarioSet& gather_sizes(std::vector<int> values);
  /// Fleet builder for the size grid: n ↦ attributes of the n robots.
  ScenarioSet& gather_fleet(
      std::function<std::vector<geom::RobotAttributes>(int)> fleet_fn);
  /// Label generator for gather cells without an explicit label.
  ScenarioSet& gather_label(std::function<std::string(const GatherCell&)> fn);
  /// Component-times hook for gather cells without their own.
  ScenarioSet& gather_components(GatherComponentsFn fn);

  // --- linear family (1-D, [11]) ----------------------------------------
  /// Appends one explicit linear cell (kept before the linear grid, in
  /// insertion order).  The linear hooks apply to these too.  A
  /// non-null `components` overrides the set-level hook for this cell.
  ScenarioSet& add_linear(LinearCell cell, std::string label = "",
                          LinearComponentsFn components = nullptr);
  /// Base cell for the linear grid (mode, attributes, horizon, ...).
  ScenarioSet& linear_base(LinearCell base_cell);
  /// Grid axes: target coordinates / offsets ⊃ visibility radii
  /// (distances outermost).  An unset axis contributes the base value.
  ScenarioSet& linear_distances(std::vector<double> values);
  ScenarioSet& linear_radii(std::vector<double> values);
  /// Per-cell horizon rule (e.g. the zigzag reach bound + slack).
  ScenarioSet& linear_horizon(std::function<double(const LinearCell&)> fn);
  /// Keep-predicate over linear cells.
  ScenarioSet& linear_filter(std::function<bool(const LinearCell&)> fn);
  /// Label generator for linear cells without an explicit label.
  ScenarioSet& linear_label(std::function<std::string(const LinearCell&)> fn);
  /// Component-times hook for linear cells without their own.
  ScenarioSet& linear_components(LinearComponentsFn fn);

  // --- coverage family ([25] area accounting) ---------------------------
  /// Appends one explicit coverage cell (kept before the coverage grid,
  /// in insertion order).  The coverage hooks apply to these too.  A
  /// non-null `components` overrides the set-level hook for this cell.
  ScenarioSet& add_coverage(CoverageCell cell, std::string label = "",
                            CoverageComponentsFn components = nullptr);
  /// Base cell for the coverage grid (grid resolution, checkpoints,
  /// attributes, ...).
  ScenarioSet& coverage_base(CoverageCell base_cell);
  /// Grid axes: programs ⊃ disk radii R ⊃ visibility radii r (programs
  /// outermost).  An unset axis contributes the base value.
  ScenarioSet& coverage_programs(std::vector<SearchProgram> values);
  ScenarioSet& coverage_disk_radii(std::vector<double> values);
  ScenarioSet& coverage_radii(std::vector<double> values);
  /// Per-cell horizon rule (e.g. a multiple of the Theorem 1 time).
  ScenarioSet& coverage_horizon(std::function<double(const CoverageCell&)> fn);
  /// Keep-predicate over coverage cells.
  ScenarioSet& coverage_filter(std::function<bool(const CoverageCell&)> fn);
  /// Label generator for coverage cells without an explicit label.
  ScenarioSet& coverage_label(
      std::function<std::string(const CoverageCell&)> fn);
  /// Component-times hook for coverage cells without their own.
  ScenarioSet& coverage_components(CoverageComponentsFn fn);

  // --- set-wide knobs ---------------------------------------------------
  /// Marks every materialised cell components-only: the runner skips
  /// the payload run (outcomes stay default-constructed) and evaluates
  /// only the component-times hooks.  For pure-algebra sweeps (Lemma 2
  /// closed forms, schedule overlap algebra) that want the declarative
  /// grid + deterministic parallel runner without a simulation.
  ScenarioSet& components_only(bool on = true);

  /// Expands the declaration into the concrete multi-family work list
  /// (the fixed materialisation order documented in the file comment).
  [[nodiscard]] std::vector<WorkItem> materialize_work() const;

  /// Historical rendezvous-only view: the rendezvous items of
  /// `materialize_work()`.  \throws std::logic_error if the set also
  /// declares search, gather, linear or coverage cells, component
  /// hooks, or `components_only()` — `LabeledScenario` cannot carry
  /// those (use `materialize_work`).
  [[nodiscard]] std::vector<LabeledScenario> materialize() const;

 private:
  // rendezvous (explicit adds are stored as work items so per-cell
  // component hooks ride along)
  std::vector<WorkItem> explicit_;
  std::vector<double> speeds_;
  std::vector<double> time_units_;
  std::vector<double> orientations_;
  std::vector<int> chiralities_;
  std::vector<geom::Vec2> offsets_;
  rendezvous::Scenario base_;
  bool has_grid_ = false;
  std::function<double(const rendezvous::Scenario&)> horizon_fn_;
  std::function<bool(const rendezvous::Scenario&)> keep_fn_;
  std::function<std::string(const rendezvous::Scenario&)> label_fn_;
  RendezvousComponentsFn components_fn_;
  // search
  std::vector<WorkItem> explicit_search_;
  SearchCell search_base_;
  std::vector<double> search_distances_;
  std::vector<double> search_radii_;
  std::vector<SearchProgram> search_programs_;
  bool has_search_grid_ = false;
  std::function<double(const SearchCell&)> search_horizon_fn_;
  std::function<bool(const SearchCell&)> search_keep_fn_;
  std::function<std::string(const SearchCell&)> search_label_fn_;
  SearchComponentsFn search_components_fn_;
  // gather
  std::vector<WorkItem> explicit_gather_;
  GatherCell gather_base_;
  std::vector<int> gather_sizes_;
  std::function<std::vector<geom::RobotAttributes>(int)> gather_fleet_fn_;
  std::function<std::string(const GatherCell&)> gather_label_fn_;
  GatherComponentsFn gather_components_fn_;
  // linear
  std::vector<WorkItem> explicit_linear_;
  LinearCell linear_base_;
  std::vector<double> linear_distances_;
  std::vector<double> linear_radii_;
  bool has_linear_grid_ = false;
  std::function<double(const LinearCell&)> linear_horizon_fn_;
  std::function<bool(const LinearCell&)> linear_keep_fn_;
  std::function<std::string(const LinearCell&)> linear_label_fn_;
  LinearComponentsFn linear_components_fn_;
  // coverage
  std::vector<WorkItem> explicit_coverage_;
  CoverageCell coverage_base_;
  std::vector<SearchProgram> coverage_programs_;
  std::vector<double> coverage_disk_radii_;
  std::vector<double> coverage_radii_;
  bool has_coverage_grid_ = false;
  std::function<double(const CoverageCell&)> coverage_horizon_fn_;
  std::function<bool(const CoverageCell&)> coverage_keep_fn_;
  std::function<std::string(const CoverageCell&)> coverage_label_fn_;
  CoverageComponentsFn coverage_components_fn_;
  // set-wide
  bool components_only_ = false;
};

}  // namespace rv::engine
