#pragma once

/// \file scenario_set.hpp
/// Declarative description of a batch of engine work, spanning the
/// three workload families (see engine/families.hpp).
///
/// Every experiment in the paper is a parameter sweep: a grid over
/// rendezvous attributes (v, τ, φ, χ) and offsets, a (d, r, program)
/// grid of search instances evaluated over a target-angle ring, or a
/// list of gathering fleets on origin rings.  `ScenarioSet` captures
/// all of them as *data*: axes, base cells, and per-cell hooks
/// (horizon rules, filters, labellers) per family.
///
/// Materialisation order is fixed and documented so the output of every
/// downstream table/CSV is deterministic:
///   1. explicitly `add`ed rendezvous scenarios, then the rendezvous
///      grid (speeds ⊃ time_units ⊃ orientations ⊃ chiralities ⊃
///      offsets, speeds outermost);
///   2. explicitly `add_search`ed cells, then the search grid
///      (search_distances ⊃ search_radii ⊃ search_programs);
///   3. explicitly `add_gather`ed cells, then the gather size grid.
///
/// Run a set with `engine::run_scenarios` (runner.hpp), which fans the
/// work items out across a thread pool and aggregates the outcomes.

#include <functional>
#include <string>
#include <vector>

#include "engine/families.hpp"
#include "geom/vec2.hpp"
#include "rendezvous/core.hpp"

namespace rv::engine {

/// One materialised rendezvous scenario plus its display label (the
/// historical rendezvous-only view; `WorkItem` is the general form).
struct LabeledScenario {
  rendezvous::Scenario scenario;
  std::string label;
};

/// A declarative multi-family grid/list of engine work.  All setters
/// return *this for fluent declaration-style use.
class ScenarioSet {
 public:
  ScenarioSet() = default;

  /// Appends one explicit rendezvous scenario (kept before the grid
  /// cells, in insertion order).  The horizon/filter/label hooks apply
  /// to these too.
  ScenarioSet& add(rendezvous::Scenario scenario, std::string label = "");

  // --- rendezvous grid axes (an unset axis contributes the base value) --
  ScenarioSet& speeds(std::vector<double> values);
  ScenarioSet& time_units(std::vector<double> values);
  ScenarioSet& orientations(std::vector<double> values);
  ScenarioSet& chiralities(std::vector<int> values);
  ScenarioSet& offsets(std::vector<geom::Vec2> values);
  /// Sugar: offsets {d, 0} for each distance.
  ScenarioSet& distances(std::vector<double> values);

  // --- rendezvous base knobs applied to every grid cell -----------------
  ScenarioSet& base(rendezvous::Scenario base_scenario);
  ScenarioSet& visibility(double r);
  ScenarioSet& algorithm(rendezvous::AlgorithmChoice choice);
  ScenarioSet& max_time(double horizon);

  // --- rendezvous per-scenario hooks ------------------------------------
  /// Horizon override evaluated per materialised scenario (e.g. a
  /// theorem bound plus slack).
  ScenarioSet& horizon(
      std::function<double(const rendezvous::Scenario&)> horizon_fn);
  /// Keep-predicate; cells where it returns false are dropped (e.g. the
  /// infeasible corner of an attribute grid).
  ScenarioSet& filter(
      std::function<bool(const rendezvous::Scenario&)> keep_fn);
  /// Label generator applied when no explicit label was given.
  ScenarioSet& label(
      std::function<std::string(const rendezvous::Scenario&)> label_fn);

  // --- search family ----------------------------------------------------
  /// Appends one explicit search cell (kept before the search grid, in
  /// insertion order).  The search hooks apply to these too.
  ScenarioSet& add_search(SearchCell cell, std::string label = "");
  /// Base cell for the search grid (angle ring, program, attrs, ...).
  ScenarioSet& search_base(SearchCell base_cell);
  /// Grid axes: target distances ⊃ visibility radii ⊃ programs
  /// (distances outermost).  An unset axis contributes the base value.
  ScenarioSet& search_distances(std::vector<double> values);
  ScenarioSet& search_radii(std::vector<double> values);
  ScenarioSet& search_programs(std::vector<SearchProgram> values);
  /// Per-cell horizon rule (e.g. "Theorem 1 bound + slack").
  ScenarioSet& search_horizon(std::function<double(const SearchCell&)> fn);
  /// Keep-predicate over search cells (e.g. "bound applicable").
  ScenarioSet& search_filter(std::function<bool(const SearchCell&)> fn);
  /// Label generator for search cells without an explicit label.
  ScenarioSet& search_label(std::function<std::string(const SearchCell&)> fn);

  // --- gather family ----------------------------------------------------
  /// Appends one explicit gathering cell (kept before the gather size
  /// grid, in insertion order).
  ScenarioSet& add_gather(GatherCell cell, std::string label = "");
  /// Base cell for the gather size grid (ring, visibility, horizons).
  ScenarioSet& gather_base(GatherCell base_cell);
  /// Grid axis over fleet sizes; each size is expanded through the
  /// fleet builder (`gather_fleet`), or — when no builder is set — a
  /// fleet of n reference robots.
  ScenarioSet& gather_sizes(std::vector<int> values);
  /// Fleet builder for the size grid: n ↦ attributes of the n robots.
  ScenarioSet& gather_fleet(
      std::function<std::vector<geom::RobotAttributes>(int)> fleet_fn);
  /// Label generator for gather cells without an explicit label.
  ScenarioSet& gather_label(std::function<std::string(const GatherCell&)> fn);

  /// Expands the declaration into the concrete multi-family work list
  /// (the fixed materialisation order documented in the file comment).
  [[nodiscard]] std::vector<WorkItem> materialize_work() const;

  /// Historical rendezvous-only view: the rendezvous items of
  /// `materialize_work()`.  \throws std::logic_error if the set also
  /// declares search or gather cells (use `materialize_work`).
  [[nodiscard]] std::vector<LabeledScenario> materialize() const;

 private:
  // rendezvous
  std::vector<LabeledScenario> explicit_;
  std::vector<double> speeds_;
  std::vector<double> time_units_;
  std::vector<double> orientations_;
  std::vector<int> chiralities_;
  std::vector<geom::Vec2> offsets_;
  rendezvous::Scenario base_;
  bool has_grid_ = false;
  std::function<double(const rendezvous::Scenario&)> horizon_fn_;
  std::function<bool(const rendezvous::Scenario&)> keep_fn_;
  std::function<std::string(const rendezvous::Scenario&)> label_fn_;
  // search
  std::vector<WorkItem> explicit_search_;
  SearchCell search_base_;
  std::vector<double> search_distances_;
  std::vector<double> search_radii_;
  std::vector<SearchProgram> search_programs_;
  bool has_search_grid_ = false;
  std::function<double(const SearchCell&)> search_horizon_fn_;
  std::function<bool(const SearchCell&)> search_keep_fn_;
  std::function<std::string(const SearchCell&)> search_label_fn_;
  // gather
  std::vector<WorkItem> explicit_gather_;
  GatherCell gather_base_;
  std::vector<int> gather_sizes_;
  std::function<std::vector<geom::RobotAttributes>(int)> gather_fleet_fn_;
  std::function<std::string(const GatherCell&)> gather_label_fn_;
};

}  // namespace rv::engine
