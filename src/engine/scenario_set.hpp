#pragma once

/// \file scenario_set.hpp
/// Declarative description of a batch of rendezvous scenarios.
///
/// Every experiment in the paper is a parameter sweep over
/// `rendezvous::Scenario`s — a grid over hidden attributes (v, τ, φ, χ)
/// and starting offsets, or an explicit list of interesting cells.
/// `ScenarioSet` captures that sweep as *data*: axes for the four
/// attributes and the offset, base knobs (r, algorithm, horizon), an
/// optional per-scenario horizon rule (e.g. "theorem bound + slack"), a
/// cell filter (e.g. "drop the infeasible corner"), and a labeller.
///
/// Grid cells are materialised in a fixed documented nesting —
///   speeds ⊃ time_units ⊃ orientations ⊃ chiralities ⊃ offsets
/// (speeds outermost) — after any explicitly `add`ed scenarios, so the
/// order (and therefore every downstream table/CSV) is deterministic.
///
/// Run a set with `engine::run_scenarios` (runner.hpp), which fans the
/// scenarios out across a thread pool and aggregates the outcomes.

#include <functional>
#include <string>
#include <vector>

#include "geom/vec2.hpp"
#include "rendezvous/core.hpp"

namespace rv::engine {

/// One materialised scenario plus its display label.
struct LabeledScenario {
  rendezvous::Scenario scenario;
  std::string label;
};

/// A declarative grid/list of scenarios.  All setters return *this for
/// fluent declaration-style use.
class ScenarioSet {
 public:
  ScenarioSet() = default;

  /// Appends one explicit scenario (kept before the grid cells, in
  /// insertion order).  The horizon/filter/label hooks apply to these
  /// too.
  ScenarioSet& add(rendezvous::Scenario scenario, std::string label = "");

  // --- grid axes (an unset axis contributes the base value) ------------
  ScenarioSet& speeds(std::vector<double> values);
  ScenarioSet& time_units(std::vector<double> values);
  ScenarioSet& orientations(std::vector<double> values);
  ScenarioSet& chiralities(std::vector<int> values);
  ScenarioSet& offsets(std::vector<geom::Vec2> values);
  /// Sugar: offsets {d, 0} for each distance.
  ScenarioSet& distances(std::vector<double> values);

  // --- base knobs applied to every grid cell ---------------------------
  ScenarioSet& base(rendezvous::Scenario base_scenario);
  ScenarioSet& visibility(double r);
  ScenarioSet& algorithm(rendezvous::AlgorithmChoice choice);
  ScenarioSet& max_time(double horizon);

  // --- per-scenario hooks ----------------------------------------------
  /// Horizon override evaluated per materialised scenario (e.g. a
  /// theorem bound plus slack).
  ScenarioSet& horizon(
      std::function<double(const rendezvous::Scenario&)> horizon_fn);
  /// Keep-predicate; cells where it returns false are dropped (e.g. the
  /// infeasible corner of an attribute grid).
  ScenarioSet& filter(
      std::function<bool(const rendezvous::Scenario&)> keep_fn);
  /// Label generator applied when no explicit label was given.
  ScenarioSet& label(
      std::function<std::string(const rendezvous::Scenario&)> label_fn);

  /// Expands the declaration into the concrete scenario list.
  [[nodiscard]] std::vector<LabeledScenario> materialize() const;

 private:
  std::vector<LabeledScenario> explicit_;
  std::vector<double> speeds_;
  std::vector<double> time_units_;
  std::vector<double> orientations_;
  std::vector<int> chiralities_;
  std::vector<geom::Vec2> offsets_;
  rendezvous::Scenario base_;
  bool has_grid_ = false;
  std::function<double(const rendezvous::Scenario&)> horizon_fn_;
  std::function<bool(const rendezvous::Scenario&)> keep_fn_;
  std::function<std::string(const rendezvous::Scenario&)> label_fn_;
};

}  // namespace rv::engine
