#pragma once

/// \file times.hpp
/// Closed-form running times and bounds for the search algorithms —
/// the algebra of Lemma 2, Lemma 3 and Theorem 1, kept next to the
/// trajectory generators so tests can assert that the emitted
/// trajectories take *exactly* the time the paper computes.

namespace rv::search {

/// Geometry of sub-round j of Search(k) (Algorithm 3): the annulus
/// [inner, outer] searched with granularity rho.
struct SubRound {
  int k = 1;
  int j = 0;
  double inner = 0.0;   ///< δ_{j,k} = 2^{−k+j}
  double outer = 0.0;   ///< δ_{j,k+1} = 2^{−k+j+1}
  double rho = 0.0;     ///< ρ_{j,k} = 2^{−3k+2j−1}
  long long circles = 0;  ///< m+1 with m = ⌈(outer−inner)/(2ρ)⌉ = 2^{2k−j}
};

/// Parameters of sub-round (k, j).  \throws std::invalid_argument for
/// k < 1 or j outside [0, 2k−1].
[[nodiscard]] SubRound sub_round(int k, int j);

/// Time of SearchCircle(δ) = 2(π+1)·δ (Lemma 2).
[[nodiscard]] double time_search_circle(double delta);

/// Time of SearchAnnulus(δ1, δ2, ρ) = 2(π+1)(1+m)(δ1+ρm) with
/// m = ⌈(δ2−δ1)/(2ρ)⌉ (Lemma 2).
[[nodiscard]] double time_search_annulus(double delta1, double delta2,
                                         double rho);

/// The wait appended at the end of Search(k): 3(π+1)(2ᵏ + 2⁻ᵏ).
[[nodiscard]] double search_round_wait(int k);

/// Time of Search(k) = 3(π+1)(k+1)·2^{k+1} (Lemma 2).
[[nodiscard]] double time_search_round(int k);

/// Time of the first k rounds of Algorithm 4 = 3(π+1)·k·2^{k+2}
/// (Lemma 2).  Equals S(k) of Equation (1): 12(π+1)·k·2ᵏ.
[[nodiscard]] double time_first_rounds(int k);

/// Theorem 1 bound: 6(π+1)·log₂(d²/r)·(d²/r).
/// \throws std::invalid_argument unless d, r > 0.
[[nodiscard]] double theorem1_bound(double d, double r);

/// Whether the Theorem 1 bound applies to the instance (d, r).
///
/// The proof of Lemma 1 exhibits the round/sub-round pair
/// k = ⌊log₂(d²/r)⌋, j = ⌊log₂ d⌋ + k, which requires j ∈ [0, 2k−1] —
/// implicitly assuming d is not too small relative to the ratio d²/r
/// (e.g. it always holds for d ≥ 1, r ≤ d²/4).  Outside this regime the
/// target *is* still found (Algorithm 4 is complete — see
/// `guaranteed_round`), but the closed-form bound can undershoot the
/// actual time of the guaranteed round.  Benches/tests check the bound
/// only on applicable instances and the unconditional guarantee
/// `time ≤ time_first_rounds(guaranteed_round(d, r))` everywhere.
[[nodiscard]] bool theorem1_bound_applicable(double d, double r);

/// The round of Algorithm 4 on which the target is guaranteed found
/// (Lemma 1): the smallest k admitting a valid sub-round j with
/// 2^{−k+j+1} ≥ d and 2^{−3k+2j−1} ≤ r.
/// \throws std::invalid_argument unless d, r > 0.
[[nodiscard]] int guaranteed_round(double d, double r);

/// Lemma 3: if the target is found on round k then d²/r ≥ 2^{k+1};
/// returns that lower bound.
[[nodiscard]] double lemma3_lower_bound(int k);

}  // namespace rv::search
