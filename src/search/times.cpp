#include "search/times.hpp"

#include <cmath>
#include <stdexcept>

#include "mathx/binary.hpp"
#include "mathx/constants.hpp"

namespace rv::search {

using rv::mathx::pow2;

SubRound sub_round(int k, int j) {
  if (k < 1) throw std::invalid_argument("sub_round: k must be >= 1");
  if (j < 0 || j > 2 * k - 1) {
    throw std::invalid_argument("sub_round: j must be in [0, 2k-1]");
  }
  SubRound sr;
  sr.k = k;
  sr.j = j;
  sr.inner = pow2(-k + j);
  sr.outer = pow2(-k + j + 1);
  sr.rho = pow2(-3 * k + 2 * j - 1);
  // m = ⌈(outer − inner)/(2ρ)⌉ = 2^{2k−j} exactly (paper, proof of
  // Lemma 2); the number of circles is m + 1 (i = 0..m).
  sr.circles = (1LL << (2 * k - j)) + 1;
  return sr;
}

double time_search_circle(double delta) {
  if (!(delta >= 0.0)) {
    throw std::invalid_argument("time_search_circle: delta must be >= 0");
  }
  return rv::mathx::kSearchCircleFactor * delta;
}

double time_search_annulus(double delta1, double delta2, double rho) {
  if (!(delta1 >= 0.0) || !(delta2 > delta1) || !(rho > 0.0)) {
    throw std::invalid_argument("time_search_annulus: invalid parameters");
  }
  const double m = std::ceil((delta2 - delta1) / (2.0 * rho));
  return rv::mathx::kSearchCircleFactor * (1.0 + m) * (delta1 + rho * m);
}

double search_round_wait(int k) {
  if (k < 1) throw std::invalid_argument("search_round_wait: k must be >= 1");
  return rv::mathx::kThreePiPlus1 * (pow2(k) + pow2(-k));
}

double time_search_round(int k) {
  if (k < 1) throw std::invalid_argument("time_search_round: k must be >= 1");
  return rv::mathx::kThreePiPlus1 * (k + 1) * pow2(k + 1);
}

double time_first_rounds(int k) {
  if (k < 0) throw std::invalid_argument("time_first_rounds: k must be >= 0");
  if (k == 0) return 0.0;
  return rv::mathx::kThreePiPlus1 * k * pow2(k + 2);
}

double theorem1_bound(double d, double r) {
  if (!(d > 0.0) || !(r > 0.0)) {
    throw std::invalid_argument("theorem1_bound: need d, r > 0");
  }
  const double ratio = d * d / r;
  return rv::mathx::kTheorem1Factor * std::log2(ratio) * ratio;
}

bool theorem1_bound_applicable(double d, double r) {
  if (!(d > 0.0) || !(r > 0.0)) {
    throw std::invalid_argument("theorem1_bound_applicable: need d, r > 0");
  }
  const double ratio = d * d / r;
  if (ratio < 2.0) return false;  // k = ⌊log₂ ratio⌋ must be ≥ 1
  const int k = rv::mathx::floor_log2(ratio);
  const int j = rv::mathx::floor_log2(d) + k;
  if (j < 0 || j > 2 * k - 1) return false;
  // Verify the Lemma 1 constraints directly.
  return pow2(-k + j + 1) >= d && pow2(-3 * k + 2 * j - 1) <= r;
}

int guaranteed_round(double d, double r) {
  if (!(d > 0.0) || !(r > 0.0)) {
    throw std::invalid_argument("guaranteed_round: need d, r > 0");
  }
  // Smallest k whose Search(k) pass provably covers (d, r): some
  // sub-round j must search out to radius ≥ d with granularity ≤ r.
  for (int k = 1; k <= 128; ++k) {
    for (int j = 0; j <= 2 * k - 1; ++j) {
      if (pow2(-k + j + 1) >= d && pow2(-3 * k + 2 * j - 1) <= r) {
        return k;
      }
    }
  }
  throw std::invalid_argument(
      "guaranteed_round: (d, r) out of supported range (need k <= 128)");
}

double lemma3_lower_bound(int k) {
  if (k < 1) throw std::invalid_argument("lemma3_lower_bound: k must be >= 1");
  return pow2(k + 1);
}

}  // namespace rv::search
