#pragma once

/// \file algorithm4.hpp
/// Algorithm 4 — the paper's universal search trajectory: repeat
/// Search(k) for k = 1, 2, 3, ... until the target is discovered.
/// (Termination is the simulator's concern; the program is an infinite
/// segment stream.)

#include <memory>
#include <string>

#include "search/emitter.hpp"
#include "traj/program.hpp"

namespace rv::search {

/// The universal search program of Algorithm 4.
class SearchProgram final : public traj::Program {
 public:
  /// `first_round` lets callers resume from a later round (used by the
  /// rendezvous schedule analysis); normally 1.
  /// An optional `MarkRecorder` receives "round k begin" marks with the
  /// local time at which each Search(k) starts.
  explicit SearchProgram(int first_round = 1,
                         traj::MarkRecorder* recorder = nullptr);

  [[nodiscard]] traj::Segment next() override;
  [[nodiscard]] std::string name() const override { return "algorithm4"; }

  /// The round currently being emitted.
  [[nodiscard]] int current_round() const { return round_; }

 private:
  int round_;
  SearchRoundEmitter emitter_;
  traj::MarkRecorder* recorder_;
  double local_clock_ = 0.0;
};

/// Factory helper matching the simulator's program-factory interface.
[[nodiscard]] std::shared_ptr<traj::Program> make_search_program();

}  // namespace rv::search
