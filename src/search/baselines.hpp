#pragma once

/// \file baselines.hpp
/// Baseline universal search strategies for experiment E9.
///
/// The paper's related work compares against the optimal-search result
/// of Pelc [25] (no public code).  We implement two natural doubling
/// baselines with the same unknown-(d, r) interface as Algorithm 4:
///
///  * `ConcentricSweepProgram` — round m assumes d ≤ 2^m, r ≥ 2^{−m}
///    and sweeps concentric circles spaced 2·2^{−m} out to radius 2^m.
///    Per-round time Θ(4^m / 2^{−m}) = Θ(8^m): a *coupled* doubling of
///    range and granularity.  Algorithm 4's decoupled (d, r) coverage
///    beats it whenever d²/r is unbalanced — exactly the shape the
///    paper's analysis predicts.
///
///  * `SquareSpiralProgram` — round m walks a boustrophedon (square
///    spiral) on the lattice with step 2^{−m}·√2 covering the square
///    [−2^m, 2^m]²; exercises line-only trajectories.
///
/// Both baselines *solve* search (they are correct universal
/// strategies); they are asymptotically slower, which E9 measures by
/// declaring them as `engine::SearchProgram` choices of the engine's
/// search workload family (engine/families.hpp).

#include <cstdint>
#include <memory>
#include <string>

#include "traj/program.hpp"

namespace rv::search {

/// Doubling concentric-circle sweep (see file comment).
class ConcentricSweepProgram final : public traj::Program {
 public:
  ConcentricSweepProgram();
  [[nodiscard]] traj::Segment next() override;
  [[nodiscard]] std::string name() const override {
    return "baseline-concentric";
  }

  /// Closed-form duration of round m (for analysis/tests).
  [[nodiscard]] static double round_time(int m);

 private:
  int m_ = 1;               ///< round (doubling) index
  std::uint64_t i_ = 0;     ///< circle index within the round
  std::uint64_t count_ = 0; ///< circles in this round
  int phase_ = 0;           ///< 0 out, 1 arc, 2 back

  void load_round();
  [[nodiscard]] double radius() const;
};

/// Doubling square-spiral (boustrophedon) sweep (see file comment).
class SquareSpiralProgram final : public traj::Program {
 public:
  SquareSpiralProgram();
  [[nodiscard]] traj::Segment next() override;
  [[nodiscard]] std::string name() const override {
    return "baseline-square-spiral";
  }

  /// Closed-form duration of round m (for analysis/tests).
  [[nodiscard]] static double round_time(int m);

 private:
  int m_ = 1;
  std::int64_t row_ = 0;      ///< current scan row
  std::int64_t rows_ = 0;     ///< rows in this round
  int phase_ = 0;             ///< 0 = to row start, 1 = scan row, 2 = home
  geom::Vec2 cursor_{};

  void load_round();
  [[nodiscard]] double half_extent() const;
  [[nodiscard]] double step() const;
};

/// Factory helpers.
[[nodiscard]] std::shared_ptr<traj::Program> make_concentric_baseline();
[[nodiscard]] std::shared_ptr<traj::Program> make_square_spiral_baseline();

}  // namespace rv::search
