#pragma once

/// \file paths.hpp
/// Finite-path factories for the paper's search procedures
/// (Algorithms 1–3).  These produce whole `Path` objects and are used
/// by tests (duration/coverage assertions) and visualisation; the
/// simulator-facing generators in `emitter.hpp` produce the same
/// trajectories segment by segment in O(1) memory.

#include "traj/path.hpp"

namespace rv::search {

/// Algorithm 1 — SearchCircle(δ): move along the +x axis to radius δ,
/// traverse the circle CCW, return to the origin.  δ ≥ 0 (δ = 0 yields
/// an empty round trip).
[[nodiscard]] traj::Path search_circle_path(double delta);

/// Algorithm 2 — SearchAnnulus(δ1, δ2, ρ): SearchCircle(δ1 + 2iρ) for
/// i = 0..⌈(δ2−δ1)/(2ρ)⌉.
/// \throws std::invalid_argument unless 0 ≤ δ1 < δ2 and ρ > 0.
[[nodiscard]] traj::Path search_annulus_path(double delta1, double delta2,
                                             double rho);

/// Algorithm 3 — Search(k): the 2k sub-round annuli plus the final
/// wait of 3(π+1)(2ᵏ + 2⁻ᵏ).
/// \warning the path has Θ(4ᵏ) segments; intended for small k (≤ 8).
[[nodiscard]] traj::Path search_round_path(int k);

}  // namespace rv::search
