#include "search/variants.hpp"

#include <cmath>
#include <stdexcept>

#include "mathx/binary.hpp"
#include "mathx/constants.hpp"
#include "search/times.hpp"

namespace rv::search {

using rv::mathx::pow2;
using traj::ArcSeg;
using traj::LineSeg;
using traj::Segment;
using traj::WaitSeg;

VariantRoundEmitter::VariantRoundEmitter(int k, const VariantOptions& options)
    : k_(k), opts_(options) {
  if (k < 1 || k > 30) {
    throw std::invalid_argument("VariantRoundEmitter: k must be in [1, 30]");
  }
  if (!(options.spacing_factor > 0.0)) {
    throw std::invalid_argument(
        "VariantRoundEmitter: spacing_factor must be > 0");
  }
  load_sub_round();
}

void VariantRoundEmitter::load_sub_round() {
  // Number of circle steps needed to cross the annulus at spacing c·ρ:
  // ⌈(outer − inner)/(c·ρ)⌉, plus the inner boundary circle.
  const double inner = pow2(-k_ + j_);
  const double outer = pow2(-k_ + j_ + 1);
  const double rho = pow2(-3 * k_ + 2 * j_ - 1);
  const double steps =
      std::ceil((outer - inner) / (opts_.spacing_factor * rho));
  count_ = static_cast<std::uint64_t>(steps) + 1;
  i_ = 0;
  phase_ = 0;
}

double VariantRoundEmitter::circle_radius() const {
  const double inner = pow2(-k_ + j_);
  const double rho = pow2(-3 * k_ + 2 * j_ - 1);
  return inner + opts_.spacing_factor * static_cast<double>(i_) * rho;
}

Segment VariantRoundEmitter::next() {
  if (done_) throw std::logic_error("VariantRoundEmitter: exhausted");
  if (j_ > 2 * k_ - 1) {
    done_ = true;
    if (opts_.include_wait) {
      return WaitSeg{{0.0, 0.0}, search_round_wait(k_)};
    }
    // No-wait ablation: emit a zero-length stand-in so callers still
    // get a final segment (the frame stream drops zero-duration
    // segments automatically).
    return LineSeg{{0.0, 0.0}, {0.0, 0.0}};
  }
  const double radius = circle_radius();
  Segment seg;
  switch (phase_) {
    case 0:
      seg = LineSeg{{0.0, 0.0}, {radius, 0.0}};
      break;
    case 1:
      seg = ArcSeg{{0.0, 0.0}, radius, 0.0, rv::mathx::kTwoPi};
      break;
    default:
      seg = LineSeg{{radius, 0.0}, {0.0, 0.0}};
      break;
  }
  if (++phase_ == 3) {
    phase_ = 0;
    if (++i_ >= count_) {
      ++j_;
      if (j_ <= 2 * k_ - 1) load_sub_round();
    }
  }
  return seg;
}

VariantSearchProgram::VariantSearchProgram(VariantOptions options)
    : opts_(options), emitter_(1, options) {}

Segment VariantSearchProgram::next() {
  if (emitter_.done()) {
    ++round_;
    emitter_ = VariantRoundEmitter(round_, opts_);
  }
  return emitter_.next();
}

std::string VariantSearchProgram::name() const {
  return "algorithm4-variant(spacing=" + std::to_string(opts_.spacing_factor) +
         (opts_.include_wait ? ",wait" : ",nowait") + ")";
}

std::shared_ptr<traj::Program> make_variant_search_program(
    const VariantOptions& options) {
  return std::make_shared<VariantSearchProgram>(options);
}

}  // namespace rv::search
