#include "search/baselines.hpp"

#include <cmath>
#include <stdexcept>

#include "mathx/binary.hpp"
#include "mathx/constants.hpp"

namespace rv::search {

using geom::Vec2;
using rv::mathx::pow2;
using traj::ArcSeg;
using traj::LineSeg;
using traj::Segment;

// ---------------------------------------------------------------------------
// ConcentricSweepProgram
// ---------------------------------------------------------------------------

ConcentricSweepProgram::ConcentricSweepProgram() { load_round(); }

void ConcentricSweepProgram::load_round() {
  // Round m: granularity ρ = 2^{−m}, range R = 2^m, circles at radii
  // (2i+1)ρ for i = 0..count−1 with count = R/(2ρ) = 2^{2m−1}.
  count_ = std::uint64_t{1} << (2 * m_ - 1);
  i_ = 0;
  phase_ = 0;
}

double ConcentricSweepProgram::radius() const {
  const double rho = pow2(-m_);
  return (2.0 * static_cast<double>(i_) + 1.0) * rho;
}

double ConcentricSweepProgram::round_time(int m) {
  if (m < 1 || m > 20) {
    throw std::invalid_argument("ConcentricSweepProgram::round_time: bad m");
  }
  // Σ_{i=0}^{count−1} 2(π+1)(2i+1)ρ = 2(π+1)·ρ·count².
  const double rho = pow2(-m);
  const double count = pow2(2 * m - 1);
  return rv::mathx::kSearchCircleFactor * rho * count * count;
}

Segment ConcentricSweepProgram::next() {
  const double r = radius();
  Segment seg;
  switch (phase_) {
    case 0:
      seg = LineSeg{{0.0, 0.0}, {r, 0.0}};
      break;
    case 1:
      seg = ArcSeg{{0.0, 0.0}, r, 0.0, rv::mathx::kTwoPi};
      break;
    default:
      seg = LineSeg{{r, 0.0}, {0.0, 0.0}};
      break;
  }
  if (++phase_ == 3) {
    phase_ = 0;
    if (++i_ == count_) {
      ++m_;
      if (m_ > 30) {
        throw std::logic_error("ConcentricSweepProgram: round overflow");
      }
      load_round();
    }
  }
  return seg;
}

// ---------------------------------------------------------------------------
// SquareSpiralProgram
// ---------------------------------------------------------------------------

SquareSpiralProgram::SquareSpiralProgram() { load_round(); }

double SquareSpiralProgram::half_extent() const { return pow2(m_); }

double SquareSpiralProgram::step() const {
  return pow2(-m_) * std::sqrt(2.0);
}

void SquareSpiralProgram::load_round() {
  const double h = half_extent();
  const double s = step();
  rows_ = static_cast<std::int64_t>(std::floor(2.0 * h / s)) + 1;
  row_ = 0;
  phase_ = 0;
}

double SquareSpiralProgram::round_time(int m) {
  if (m < 1 || m > 16) {
    throw std::invalid_argument("SquareSpiralProgram::round_time: bad m");
  }
  const double h = pow2(m);
  const double s = pow2(-m) * std::sqrt(2.0);
  const auto rows = static_cast<std::int64_t>(std::floor(2.0 * h / s)) + 1;
  // First approach: origin → (−h, −h); then per row one scan of 2h and
  // (rows−1) inter-row moves of length s; finally home from the last
  // scan endpoint.
  const double y_last = -h + static_cast<double>(rows - 1) * s;
  const double x_last = (rows % 2 == 1) ? h : -h;
  return std::sqrt(2.0) * h + static_cast<double>(rows) * 2.0 * h +
         static_cast<double>(rows - 1) * s + std::hypot(x_last, y_last);
}

Segment SquareSpiralProgram::next() {
  const double h = half_extent();
  const double s = step();
  const double y = -h + static_cast<double>(row_) * s;

  Segment seg;
  if (phase_ == 0) {
    // Move (diagonally for the first row, vertically otherwise) to the
    // start of the scan row.
    const Vec2 target{(row_ % 2 == 0) ? -h : h, y};
    seg = LineSeg{cursor_, target};
    cursor_ = target;
    phase_ = 1;
  } else if (phase_ == 1) {
    const Vec2 target{(row_ % 2 == 0) ? h : -h, y};
    seg = LineSeg{cursor_, target};
    cursor_ = target;
    ++row_;
    phase_ = (row_ < rows_) ? 0 : 2;
  } else {
    seg = LineSeg{cursor_, {0.0, 0.0}};
    cursor_ = {0.0, 0.0};
    ++m_;
    if (m_ > 16) {
      throw std::logic_error("SquareSpiralProgram: round overflow");
    }
    load_round();
  }
  return seg;
}

std::shared_ptr<traj::Program> make_concentric_baseline() {
  return std::make_shared<ConcentricSweepProgram>();
}

std::shared_ptr<traj::Program> make_square_spiral_baseline() {
  return std::make_shared<SquareSpiralProgram>();
}

}  // namespace rv::search
