#pragma once

/// \file variants.hpp
/// Parameterised variants of the paper's search round for ablation
/// studies (DESIGN.md §4, experiments A1–A3).
///
/// The paper fixes two design choices inside Search(k):
///  * circles within an annulus are spaced 2ρ apart (radial coverage
///    within ±ρ) — Algorithm 2;
///  * each Search(k) ends with a wait of 3(π+1)(2ᵏ + 2⁻ᵏ), chosen
///    "only in order to simplify algebra" (the Lemma 8 closed forms).
/// `VariantRoundEmitter` exposes both knobs so the ablation benches can
/// measure what each choice buys: spacing > 2 breaks the coverage
/// guarantee, spacing < 2 wastes time, and dropping the wait perturbs
/// the Lemma 8 schedule.

#include <cstdint>
#include <memory>
#include <string>

#include "traj/program.hpp"
#include "traj/segment.hpp"

namespace rv::search {

/// Knobs for the ablation variants of Search(k).
struct VariantOptions {
  /// Circle spacing in units of ρ (paper: 2.0).  Coverage within the
  /// annulus requires ≤ 2.0.
  double spacing_factor = 2.0;
  /// Emit the terminal wait of Search(k) (paper: true).
  bool include_wait = true;

  bool operator==(const VariantOptions&) const = default;
};

/// Search(k) with the `VariantOptions` knobs; with default options the
/// emitted trajectory is identical to `SearchRoundEmitter`.
class VariantRoundEmitter {
 public:
  /// \throws std::invalid_argument for k outside [1, 30] or
  /// non-positive spacing.
  VariantRoundEmitter(int k, const VariantOptions& options);

  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] traj::Segment next();
  [[nodiscard]] int k() const { return k_; }

 private:
  int k_;
  VariantOptions opts_;
  int j_ = 0;
  std::uint64_t i_ = 0;
  std::uint64_t count_ = 0;  ///< circles in this sub-round
  int phase_ = 0;
  bool done_ = false;

  void load_sub_round();
  [[nodiscard]] double circle_radius() const;
};

/// The Algorithm 4 loop over `VariantRoundEmitter`s: a drop-in
/// replacement for `SearchProgram` with ablation knobs.
class VariantSearchProgram final : public traj::Program {
 public:
  explicit VariantSearchProgram(VariantOptions options);
  [[nodiscard]] traj::Segment next() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int current_round() const { return round_; }

 private:
  VariantOptions opts_;
  int round_ = 1;
  VariantRoundEmitter emitter_;
};

/// Factory for the simulator interface.
[[nodiscard]] std::shared_ptr<traj::Program> make_variant_search_program(
    const VariantOptions& options);

}  // namespace rv::search
