#pragma once

/// \file emitter.hpp
/// O(1)-memory segment generator for Search(k) (Algorithm 3).
///
/// Search(k) contains Θ(4ᵏ) circles; materialising a Path would need
/// gigabytes for the round counts the rendezvous experiments reach.
/// `SearchRoundEmitter` walks the (j, i, phase) state machine instead,
/// emitting one segment at a time:
///   for j = 0..2k−1:  for i = 0..2^{2k−j}:  out, arc, back
/// followed by the round-final wait.

#include <cstdint>

#include "traj/segment.hpp"

namespace rv::search {

/// Emits the segments of one Search(k) round, in order, in O(1) space.
class SearchRoundEmitter {
 public:
  /// \throws std::invalid_argument for k < 1 (or k > 30, where the
  /// circle counter would overflow practical limits).
  explicit SearchRoundEmitter(int k);

  /// True when all segments (including the final wait) were emitted.
  [[nodiscard]] bool done() const { return done_; }

  /// Next segment.  \throws std::logic_error when done().
  [[nodiscard]] traj::Segment next();

  /// Round parameter k.
  [[nodiscard]] int k() const { return k_; }

  /// Total number of segments this emitter will produce.
  [[nodiscard]] std::uint64_t total_segments() const;

 private:
  int k_;
  int j_ = 0;               ///< sub-round (annulus) index, 0..2k−1
  std::uint64_t i_ = 0;     ///< circle index within the sub-round
  std::uint64_t m_ = 0;     ///< last circle index of this sub-round
  int phase_ = 0;           ///< 0 = line out, 1 = arc, 2 = line back
  bool wait_pending_ = true;
  bool done_ = false;

  [[nodiscard]] double circle_radius() const;
  void advance_counters();
  void load_sub_round();
};

}  // namespace rv::search
