#include "search/algorithm4.hpp"

#include <stdexcept>

namespace rv::search {

SearchProgram::SearchProgram(int first_round, traj::MarkRecorder* recorder)
    : round_(first_round), emitter_(first_round), recorder_(recorder) {
  if (first_round < 1) {
    throw std::invalid_argument("SearchProgram: first_round must be >= 1");
  }
  if (recorder_) {
    recorder_->record(0.0, "round " + std::to_string(round_) + " begin");
  }
}

traj::Segment SearchProgram::next() {
  if (emitter_.done()) {
    ++round_;
    emitter_ = SearchRoundEmitter(round_);
    if (recorder_) {
      recorder_->record(local_clock_,
                        "round " + std::to_string(round_) + " begin");
    }
  }
  traj::Segment seg = emitter_.next();
  local_clock_ += traj::duration(seg);
  return seg;
}

std::shared_ptr<traj::Program> make_search_program() {
  return std::make_shared<SearchProgram>();
}

}  // namespace rv::search
