#include "search/emitter.hpp"

#include <stdexcept>

#include "mathx/binary.hpp"
#include "mathx/constants.hpp"
#include "search/times.hpp"

namespace rv::search {

using geom::Vec2;
using rv::mathx::pow2;
using traj::ArcSeg;
using traj::LineSeg;
using traj::Segment;
using traj::WaitSeg;

SearchRoundEmitter::SearchRoundEmitter(int k) : k_(k) {
  if (k < 1 || k > 30) {
    throw std::invalid_argument("SearchRoundEmitter: k must be in [1, 30]");
  }
  load_sub_round();
}

void SearchRoundEmitter::load_sub_round() {
  // m = 2^{2k−j}: index of the last circle in sub-round j.
  m_ = std::uint64_t{1} << (2 * k_ - j_);
  i_ = 0;
  phase_ = 0;
}

double SearchRoundEmitter::circle_radius() const {
  const double inner = pow2(-k_ + j_);
  const double rho = pow2(-3 * k_ + 2 * j_ - 1);
  return inner + 2.0 * static_cast<double>(i_) * rho;
}

std::uint64_t SearchRoundEmitter::total_segments() const {
  // Sub-round j has (2^{2k−j} + 1) circles of 3 segments each; plus the
  // final wait segment.
  std::uint64_t total = 1;
  for (int j = 0; j <= 2 * k_ - 1; ++j) {
    total += 3 * ((std::uint64_t{1} << (2 * k_ - j)) + 1);
  }
  return total;
}

void SearchRoundEmitter::advance_counters() {
  if (++phase_ < 3) return;
  phase_ = 0;
  if (++i_ <= m_) return;
  ++j_;
  if (j_ <= 2 * k_ - 1) {
    load_sub_round();
    return;
  }
  // All annuli done; the final wait is still pending.
}

Segment SearchRoundEmitter::next() {
  if (done_) throw std::logic_error("SearchRoundEmitter: exhausted");
  if (j_ > 2 * k_ - 1) {
    done_ = true;
    wait_pending_ = false;
    return WaitSeg{{0.0, 0.0}, search_round_wait(k_)};
  }
  const double radius = circle_radius();
  Segment seg;
  switch (phase_) {
    case 0:
      seg = LineSeg{{0.0, 0.0}, {radius, 0.0}};
      break;
    case 1:
      seg = ArcSeg{{0.0, 0.0}, radius, 0.0, rv::mathx::kTwoPi};
      break;
    default:
      seg = LineSeg{{radius, 0.0}, {0.0, 0.0}};
      break;
  }
  advance_counters();
  return seg;
}

}  // namespace rv::search
