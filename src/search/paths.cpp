#include "search/paths.hpp"

#include <cmath>
#include <stdexcept>

#include "mathx/constants.hpp"
#include "search/times.hpp"

namespace rv::search {

using geom::Vec2;
using traj::Path;

Path search_circle_path(double delta) {
  if (!(delta >= 0.0)) {
    throw std::invalid_argument("search_circle_path: delta must be >= 0");
  }
  Path path;
  if (delta == 0.0) return path;
  path.line_to({delta, 0.0});
  path.arc_around({0.0, 0.0}, rv::mathx::kTwoPi);
  path.line_to({0.0, 0.0});
  return path;
}

Path search_annulus_path(double delta1, double delta2, double rho) {
  if (!(delta1 >= 0.0) || !(delta2 > delta1) || !(rho > 0.0)) {
    throw std::invalid_argument("search_annulus_path: invalid parameters");
  }
  const double m = std::ceil((delta2 - delta1) / (2.0 * rho));
  Path path;
  for (double i = 0.0; i <= m; i += 1.0) {
    path.extend(search_circle_path(delta1 + 2.0 * i * rho));
  }
  return path;
}

Path search_round_path(int k) {
  if (k < 1) throw std::invalid_argument("search_round_path: k must be >= 1");
  Path path;
  for (int j = 0; j <= 2 * k - 1; ++j) {
    const SubRound sr = sub_round(k, j);
    path.extend(search_annulus_path(sr.inner, sr.outer, sr.rho));
  }
  path.wait(search_round_wait(k));
  return path;
}

}  // namespace rv::search
