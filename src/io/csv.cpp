#include "io/csv.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rv::io {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(std::ostream& os) : os_(os) {}

void CsvWriter::write_row(const CsvRow& fields) {
  bool first = true;
  for (const std::string& f : fields) {
    if (!first) os_ << ',';
    os_ << csv_escape(f);
    first = false;
  }
  os_ << '\n';
}

void CsvWriter::header(const CsvRow& names) {
  if (header_written_ || rows_ > 0) {
    throw std::logic_error("CsvWriter: header after data");
  }
  write_row(names);
  header_written_ = true;
}

void CsvWriter::row(const CsvRow& fields) {
  write_row(fields);
  ++rows_;
}

void CsvWriter::row_numeric(const std::vector<double>& values, int precision) {
  CsvRow fields;
  fields.reserve(values.size());
  for (const double v : values) fields.push_back(format_double(v, precision));
  row(fields);
}

std::vector<CsvRow> parse_csv(const std::string& text) {
  std::vector<CsvRow> rows;
  CsvRow current;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        current.push_back(std::move(field));
        field.clear();
        row_has_content = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (row_has_content || !field.empty() || !current.empty()) {
          current.push_back(std::move(field));
          field.clear();
          rows.push_back(std::move(current));
          current.clear();
          row_has_content = false;
        }
        break;
      default:
        field.push_back(c);
        row_has_content = true;
        break;
    }
  }
  if (in_quotes) throw std::invalid_argument("parse_csv: unterminated quote");
  if (row_has_content || !field.empty() || !current.empty()) {
    current.push_back(std::move(field));
    rows.push_back(std::move(current));
  }
  return rows;
}

std::string format_double(double v, int precision) {
  std::ostringstream oss;
  oss.precision(precision);
  oss << v;
  return oss.str();
}

}  // namespace rv::io
