#pragma once

/// \file table.hpp
/// Console/markdown table rendering.  Every bench binary prints the
/// rows the corresponding paper artifact would contain; this class
/// keeps the formatting consistent across all experiments.

#include <iosfwd>
#include <string>
#include <vector>

namespace rv::io {

/// Column alignment.
enum class Align { kLeft, kRight };

/// Accumulates rows, then renders as aligned ASCII or GitHub markdown.
class Table {
 public:
  /// Creates a table with the given column names.
  explicit Table(std::vector<std::string> columns);

  /// Appends a row; must have exactly as many cells as columns.
  /// \throws std::invalid_argument on arity mismatch.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with fixed precision.
  void add_numeric_row(const std::vector<double>& values, int precision = 4);

  /// Sets alignment for a column (default: right).
  void set_align(std::size_t column, Align align);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  /// Number of columns.
  [[nodiscard]] std::size_t columns() const { return columns_.size(); }

  /// Renders as an aligned, box-drawn ASCII table.
  [[nodiscard]] std::string to_ascii() const;

  /// Renders as a GitHub-flavoured markdown table.
  [[nodiscard]] std::string to_markdown() const;

  /// Prints the ASCII rendering to `os` with an optional title line.
  void print(std::ostream& os, const std::string& title = "") const;

 private:
  [[nodiscard]] std::vector<std::size_t> widths() const;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> aligns_;
};

/// Fixed-precision formatter used by the benches ("12.34", "1.2e+06").
[[nodiscard]] std::string format_fixed(double v, int precision = 4);

/// Scientific formatter.
[[nodiscard]] std::string format_sci(double v, int precision = 3);

}  // namespace rv::io
