#include "io/args.hpp"

#include <sstream>
#include <stdexcept>

namespace rv::io {

void Args::declare(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  specs_[name] = Spec{Kind::kString, default_value, help};
}

void Args::declare_double(const std::string& name, double default_value,
                          const std::string& help) {
  std::ostringstream os;
  os << default_value;
  specs_[name] = Spec{Kind::kDouble, os.str(), help};
}

void Args::declare_int(const std::string& name, int default_value,
                       const std::string& help) {
  specs_[name] = Spec{Kind::kInt, std::to_string(default_value), help};
}

void Args::declare_bool(const std::string& name, const std::string& help) {
  specs_[name] = Spec{Kind::kBool, "0", help};
}

void Args::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("Args: expected --flag, got '" + arg + "'");
    }
    const std::string name = arg.substr(2);
    const auto it = specs_.find(name);
    if (it == specs_.end()) {
      throw std::invalid_argument("Args: unknown flag --" + name);
    }
    if (it->second.kind == Kind::kBool) {
      values_.insert_or_assign(name, std::string("1"));
      continue;
    }
    if (i + 1 >= argc) {
      throw std::invalid_argument("Args: missing value for --" + name);
    }
    values_.insert_or_assign(name, std::string(argv[++i]));
  }
}

bool Args::provided(const std::string& name) const {
  if (specs_.find(name) == specs_.end()) {
    throw std::invalid_argument("Args: undeclared flag --" + name);
  }
  return values_.find(name) != values_.end();
}

const Args::Spec& Args::spec_for(const std::string& name, Kind expected) const {
  const auto it = specs_.find(name);
  if (it == specs_.end()) {
    throw std::invalid_argument("Args: undeclared flag --" + name);
  }
  if (it->second.kind != expected) {
    throw std::invalid_argument("Args: type mismatch for --" + name);
  }
  return it->second;
}

std::string Args::get(const std::string& name) const {
  const Spec& spec = spec_for(name, Kind::kString);
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : spec.default_value;
}

double Args::get_double(const std::string& name) const {
  const Spec& spec = spec_for(name, Kind::kDouble);
  const auto it = values_.find(name);
  const std::string& text = it != values_.end() ? it->second : spec.default_value;
  std::size_t pos = 0;
  const double v = std::stod(text, &pos);
  if (pos != text.size()) {
    throw std::invalid_argument("Args: malformed number for --" + name);
  }
  return v;
}

int Args::get_int(const std::string& name) const {
  const Spec& spec = spec_for(name, Kind::kInt);
  const auto it = values_.find(name);
  const std::string& text = it != values_.end() ? it->second : spec.default_value;
  std::size_t pos = 0;
  const int v = std::stoi(text, &pos);
  if (pos != text.size()) {
    throw std::invalid_argument("Args: malformed integer for --" + name);
  }
  return v;
}

bool Args::get_bool(const std::string& name) const {
  const auto it = specs_.find(name);
  if (it == specs_.end() || it->second.kind != Kind::kBool) {
    throw std::invalid_argument("Args: undeclared bool flag --" + name);
  }
  const auto vit = values_.find(name);
  return vit != values_.end() && vit->second == "1";
}

std::string Args::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    if (spec.kind != Kind::kBool) os << " <value>";
    os << "  " << spec.help;
    if (spec.kind != Kind::kBool) os << " (default: " << spec.default_value << ")";
    os << '\n';
  }
  return os.str();
}

}  // namespace rv::io
