#pragma once

/// \file args.hpp
/// A tiny `--flag value` argv parser for the example and bench
/// binaries.  Deliberately minimal: flags are `--name value` or
/// `--name` (boolean); everything is validated and typo-checked so a
/// misspelled flag fails loudly instead of being ignored.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rv::io {

/// Parsed command line.
class Args {
 public:
  /// Parses argv.  Flags must be declared via the `declare_*` calls
  /// before `parse`.
  Args() = default;

  /// Declares a string flag with a default.
  void declare(const std::string& name, const std::string& default_value,
               const std::string& help);
  /// Declares a numeric flag with a default.
  void declare_double(const std::string& name, double default_value,
                      const std::string& help);
  /// Declares an integer flag with a default.
  void declare_int(const std::string& name, int default_value,
                   const std::string& help);
  /// Declares a boolean flag (default false; present = true).
  void declare_bool(const std::string& name, const std::string& help);

  /// Parses the command line.  \throws std::invalid_argument on unknown
  /// flags or malformed values.  Recognises `--help`.
  void parse(int argc, const char* const* argv);

  /// Accessors (after parse; return defaults otherwise).
  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] int get_int(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// True iff the flag was explicitly provided on the command line
  /// (as opposed to resting at its declared default).  Subcommand
  /// front-ends use this to reject flags that do not apply to the
  /// chosen subcommand instead of silently ignoring them.
  [[nodiscard]] bool provided(const std::string& name) const;

  /// True when `--help` was passed; callers should print `usage()` and
  /// exit.
  [[nodiscard]] bool help_requested() const { return help_; }

  /// Generated usage text.
  [[nodiscard]] std::string usage(const std::string& program) const;

 private:
  enum class Kind { kString, kDouble, kInt, kBool };
  struct Spec {
    Kind kind;
    std::string default_value;
    std::string help;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  bool help_ = false;

  const Spec& spec_for(const std::string& name, Kind expected) const;
};

}  // namespace rv::io
