#include "io/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rv::io {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
  aligns_.assign(columns_.size(), Align::kRight);
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (const double v : values) cells.push_back(format_fixed(v, precision));
  add_row(std::move(cells));
}

void Table::set_align(std::size_t column, Align align) {
  if (column >= aligns_.size()) {
    throw std::out_of_range("Table::set_align: column out of range");
  }
  aligns_[column] = align;
}

std::vector<std::size_t> Table::widths() const {
  std::vector<std::size_t> w(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) w[i] = columns_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      w[i] = std::max(w[i], row[i].size());
    }
  }
  return w;
}

namespace {
void pad_cell(std::ostream& os, const std::string& cell, std::size_t width,
              Align align) {
  const std::size_t padding = width - std::min(width, cell.size());
  if (align == Align::kRight) os << std::string(padding, ' ');
  os << cell;
  if (align == Align::kLeft) os << std::string(padding, ' ');
}
}  // namespace

std::string Table::to_ascii() const {
  const std::vector<std::size_t> w = widths();
  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (const std::size_t width : w) os << std::string(width + 2, '-') << '+';
    os << '\n';
  };
  rule();
  os << '|';
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    os << ' ';
    pad_cell(os, columns_[i], w[i], Align::kLeft);
    os << " |";
  }
  os << '\n';
  rule();
  for (const auto& row : rows_) {
    os << '|';
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << ' ';
      pad_cell(os, row[i], w[i], aligns_[i]);
      os << " |";
    }
    os << '\n';
  }
  rule();
  return os.str();
}

std::string Table::to_markdown() const {
  std::ostringstream os;
  os << '|';
  for (const auto& c : columns_) os << ' ' << c << " |";
  os << "\n|";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    os << (aligns_[i] == Align::kRight ? " ---: |" : " :--- |");
  }
  os << '\n';
  for (const auto& row : rows_) {
    os << '|';
    for (const auto& cell : row) os << ' ' << cell << " |";
    os << '\n';
  }
  return os.str();
}

void Table::print(std::ostream& os, const std::string& title) const {
  if (!title.empty()) os << title << '\n';
  os << to_ascii();
}

std::string format_fixed(double v, int precision) {
  std::ostringstream os;
  const double mag = v < 0 ? -v : v;
  if (mag != 0.0 && (mag >= 1e7 || mag < 1e-4)) {
    os << std::scientific << std::setprecision(precision) << v;
  } else {
    os << std::fixed << std::setprecision(precision) << v;
  }
  return os.str();
}

std::string format_sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace rv::io
