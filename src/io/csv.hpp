#pragma once

/// \file csv.hpp
/// Minimal RFC-4180-style CSV writing/parsing for experiment outputs.
/// Benches dump their sweeps as CSV next to the printed tables so that
/// plots can be regenerated offline.

#include <iosfwd>
#include <string>
#include <vector>

namespace rv::io {

/// One CSV record.
using CsvRow = std::vector<std::string>;

/// Escapes a single field per RFC 4180 (quotes fields containing
/// commas, quotes or newlines; doubles embedded quotes).
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Streams rows to an output stream.
class CsvWriter {
 public:
  /// Writes to `os`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& os);

  /// Writes a header row (only allowed before any data row).
  void header(const CsvRow& names);

  /// Writes one data row.
  void row(const CsvRow& fields);

  /// Convenience: writes a row of doubles with `precision` significant
  /// digits.
  void row_numeric(const std::vector<double>& values, int precision = 12);

  /// Rows written (excluding the header).
  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  void write_row(const CsvRow& fields);
  std::ostream& os_;
  std::size_t rows_ = 0;
  bool header_written_ = false;
};

/// Parses CSV text into rows (supports quoted fields with embedded
/// commas/newlines/doubled quotes).  Intended for test round-trips.
[[nodiscard]] std::vector<CsvRow> parse_csv(const std::string& text);

/// Formats a double with given significant digits (shortest-ish form).
[[nodiscard]] std::string format_double(double v, int precision = 12);

}  // namespace rv::io
