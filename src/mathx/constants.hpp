#pragma once

/// \file constants.hpp
/// Numeric constants shared across the library, including the specific
/// constants appearing in the running-time algebra of the paper
/// (Lemma 2, Lemma 8 of Czyzowicz et al., PODC 2019).

#include <numbers>

namespace rv::mathx {

/// π with full double precision.
inline constexpr double kPi = std::numbers::pi_v<double>;

/// 2π — one full turn.
inline constexpr double kTwoPi = 2.0 * kPi;

/// The constant 2(π+1): the time to complete SearchCircle(δ) is 2(π+1)·δ
/// (move out δ, traverse 2πδ, move back δ — Lemma 2).
inline constexpr double kSearchCircleFactor = 2.0 * (kPi + 1.0);

/// The constant 3(π+1) appearing in the per-round times of Search(k)
/// (Lemma 2: one annulus round of Search(k) takes 3(π+1)(2^{j−k} + 2^k)).
inline constexpr double kThreePiPlus1 = 3.0 * (kPi + 1.0);

/// The constant 6(π+1) of the Theorem 1 search-time bound.
inline constexpr double kTheorem1Factor = 6.0 * (kPi + 1.0);

/// The constant 12(π+1) of S(n) = 12(π+1)·n·2ⁿ (Equation (1)).
inline constexpr double kSearchAllFactor = 12.0 * (kPi + 1.0);

/// The constant 24(π+1) of I(n)/A(n) (Lemma 8).
inline constexpr double kScheduleFactor = 24.0 * (kPi + 1.0);

/// Default relative tolerance used by numeric routines in this library.
inline constexpr double kDefaultRelTol = 1e-12;

/// Default absolute tolerance for geometric contact detection.
inline constexpr double kDefaultAbsTol = 1e-9;

}  // namespace rv::mathx
