#pragma once

/// \file rng.hpp
/// Deterministic, fast pseudo-random generation (xoshiro256++) for
/// property-based tests and workload generators.  We implement our own
/// generator so that test workloads are reproducible across standard
/// libraries (std::mt19937 distributions are not portable across
/// implementations).

#include <array>
#include <cstdint>

namespace rv::mathx {

/// xoshiro256++ by Blackman & Vigna (public domain algorithm),
/// re-implemented from the published reference description.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state from a single 64-bit value via splitmix64 so that
  /// nearby seeds give unrelated streams.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next 64 random bits.
  result_type operator()();

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Uniform double in [0, 1) with 53-bit resolution.
  [[nodiscard]] double uniform01();

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive), unbiased via rejection.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform angle in [0, 2π).
  [[nodiscard]] double angle();

  /// Random sign: +1 or −1 with probability 1/2 each.
  [[nodiscard]] int sign();

  /// Log-uniform double in [lo, hi); lo, hi > 0.  Natural for sweeping
  /// scale-free quantities such as d²/r.
  [[nodiscard]] double log_uniform(double lo, double hi);

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace rv::mathx
