#pragma once

/// \file binary.hpp
/// Dyadic helpers for the paper's algebra.
///
/// Lemma 13 parameterises the clock ratio as τ = t·2⁻ᵃ with an integer
/// a ≥ 0 and real t ∈ [1/2, 1): "we may always write τ uniquely as
/// t·2⁻ᵃ by taking a = ⌊−log τ⌋ − 1 and t = 1/2 if τ is a power of two,
/// and otherwise taking a = ⌊−log τ⌋ and t = τ·2ᵃ".

#include <cstdint>

namespace rv::mathx {

/// The dyadic decomposition τ = t · 2⁻ᵃ of Lemma 13.
struct DyadicDecomposition {
  double t = 0.5;  ///< mantissa in [1/2, 1)
  int a = 0;       ///< non-negative dyadic exponent

  bool operator==(const DyadicDecomposition&) const = default;
};

/// Decomposes τ ∈ (0, 1) per Lemma 13.
/// \throws std::invalid_argument unless 0 < τ < 1.
[[nodiscard]] DyadicDecomposition dyadic_decompose(double tau);

/// Recomposes t·2⁻ᵃ.
[[nodiscard]] double dyadic_recompose(const DyadicDecomposition& d);

/// True iff x is an exact (positive) power of two, including negative
/// exponents: 0.25, 0.5, 1, 2, ...
[[nodiscard]] bool is_power_of_two(double x);

/// ⌊log₂ x⌋ for x > 0, computed exactly from the floating-point
/// representation (no rounding issues near powers of two).
[[nodiscard]] int floor_log2(double x);

/// ⌈log₂ x⌉ for x > 0.
[[nodiscard]] int ceil_log2(double x);

/// Exact powers of two as doubles: 2^e for |e| within double range.
[[nodiscard]] double pow2(int e);

}  // namespace rv::mathx
