#pragma once

/// \file roots.hpp
/// Scalar root bracketing and refinement.
///
/// The simulator needs to pinpoint the first time at which a continuous
/// distance function crosses the visibility threshold.  `brent` provides
/// high-accuracy refinement inside a bracketing interval; `bisect` is the
/// slow-but-certain fallback.

#include <functional>
#include <optional>

namespace rv::mathx {

/// Result of a root search: the abscissa and the residual |f(root)|.
struct RootResult {
  double x = 0.0;         ///< located root
  double residual = 0.0;  ///< |f(x)| at the returned point
  int iterations = 0;     ///< iterations consumed
};

/// Options controlling termination of the root finders.
struct RootOptions {
  double x_tol = 1e-13;    ///< absolute tolerance on the abscissa
  int max_iterations = 200;
};

/// Brent's method on [a, b].  Requires f(a)·f(b) ≤ 0.
/// \throws std::invalid_argument if the bracket is invalid.
[[nodiscard]] RootResult brent(const std::function<double(double)>& f,
                               double a, double b,
                               const RootOptions& opts = {});

/// Plain bisection on [a, b].  Requires f(a)·f(b) ≤ 0.
/// \throws std::invalid_argument if the bracket is invalid.
[[nodiscard]] RootResult bisect(const std::function<double(double)>& f,
                                double a, double b,
                                const RootOptions& opts = {});

/// Scan [a, b] in `steps` uniform increments and return the first
/// sub-interval on which f changes sign (or touches zero), refined with
/// Brent.  Returns nullopt if no sign change is observed at the scan
/// resolution.  Used by tests as an oracle; the simulator itself uses
/// the certified Lipschitz stepper in `sim/`.
[[nodiscard]] std::optional<RootResult> first_crossing(
    const std::function<double(double)>& f, double a, double b, int steps,
    const RootOptions& opts = {});

}  // namespace rv::mathx
