#pragma once

/// \file stats.hpp
/// Streaming and batch descriptive statistics used by the benchmark
/// harness to summarise measured rendezvous/search times.

#include <cstddef>
#include <vector>

namespace rv::mathx {

/// Welford-style running statistics: numerically stable single pass
/// mean/variance plus extrema.
class RunningStats {
 public:
  /// Incorporates one observation.
  void add(double x);

  /// Number of observations so far.
  [[nodiscard]] std::size_t count() const { return n_; }
  /// Arithmetic mean (0 if empty).
  [[nodiscard]] double mean() const { return mean_; }
  /// Unbiased sample variance (0 if fewer than two observations).
  [[nodiscard]] double variance() const;
  /// Sample standard deviation.
  [[nodiscard]] double stddev() const;
  /// Smallest observation (+inf if empty).
  [[nodiscard]] double min() const { return min_; }
  /// Largest observation (−inf if empty).
  [[nodiscard]] double max() const { return max_; }
  /// Sum of all observations.
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0, max_ = 0.0;
};

/// Returns the q-quantile (0 ≤ q ≤ 1) of `values` using linear
/// interpolation between order statistics.  The input is copied; the
/// original order is preserved.
/// \throws std::invalid_argument for an empty input or q outside [0,1].
[[nodiscard]] double quantile(std::vector<double> values, double q);

/// Geometric mean of strictly positive values.
/// \throws std::invalid_argument if empty or any value ≤ 0.
[[nodiscard]] double geometric_mean(const std::vector<double>& values);

}  // namespace rv::mathx
