#pragma once

/// \file kahan.hpp
/// Compensated (Kahan–Neumaier) summation.  Trajectory durations are sums
/// of thousands of geometrically growing segment lengths; compensated
/// accumulation keeps simulated clocks consistent with the closed-form
/// schedule of Lemma 8 to near machine precision.

namespace rv::mathx {

/// Neumaier variant of Kahan summation (handles terms larger than the
/// running sum, which happens with geometrically increasing segments).
class KahanSum {
 public:
  /// Adds one term.
  void add(double x) {
    const double t = sum_ + x;
    if (abs_ge(sum_, x)) {
      comp_ += (sum_ - t) + x;
    } else {
      comp_ += (x - t) + sum_;
    }
    sum_ = t;
  }

  /// Current compensated value.
  [[nodiscard]] double value() const { return sum_ + comp_; }

  /// Resets to zero.
  void reset() { sum_ = comp_ = 0.0; }

 private:
  static bool abs_ge(double a, double b) {
    return (a >= 0 ? a : -a) >= (b >= 0 ? b : -b);
  }
  double sum_ = 0.0;
  double comp_ = 0.0;
};

}  // namespace rv::mathx
