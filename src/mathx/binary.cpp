#include "mathx/binary.hpp"

#include <cmath>
#include <stdexcept>

namespace rv::mathx {

bool is_power_of_two(double x) {
  if (!(x > 0.0) || !std::isfinite(x)) return false;
  int exp = 0;
  const double mant = std::frexp(x, &exp);  // x = mant·2^exp, mant ∈ [0.5, 1)
  return mant == 0.5;
}

int floor_log2(double x) {
  if (!(x > 0.0) || !std::isfinite(x)) {
    throw std::invalid_argument("floor_log2: need finite x > 0");
  }
  int exp = 0;
  const double mant = std::frexp(x, &exp);
  // x = mant·2^exp with mant ∈ [0.5, 1): floor(log2 x) = exp−1.
  (void)mant;
  return exp - 1;
}

int ceil_log2(double x) {
  const int fl = floor_log2(x);
  return is_power_of_two(x) ? fl : fl + 1;
}

double pow2(int e) { return std::ldexp(1.0, e); }

DyadicDecomposition dyadic_decompose(double tau) {
  if (!(tau > 0.0) || !(tau < 1.0)) {
    throw std::invalid_argument("dyadic_decompose: need 0 < tau < 1");
  }
  // −log2(τ) > 0.  For τ a power of two, a = ⌊−log τ⌋ − 1 and t = 1/2.
  if (is_power_of_two(tau)) {
    const int neg_log = -floor_log2(tau);  // exact
    return {0.5, neg_log - 1};
  }
  const int a = floor_log2(1.0 / tau);  // ⌊−log₂ τ⌋ for non-powers of two
  return {tau * pow2(a), a};
}

double dyadic_recompose(const DyadicDecomposition& d) {
  return d.t * pow2(-d.a);
}

}  // namespace rv::mathx
