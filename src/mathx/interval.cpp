#include "mathx/interval.hpp"

#include <algorithm>
#include <stdexcept>

namespace rv::mathx {

bool Interval::overlaps(const Interval& o) const {
  return overlap_length(*this, o) > 0.0;
}

Interval make_interval(double lo, double hi) {
  if (hi < lo) throw std::invalid_argument("make_interval: hi < lo");
  return {lo, hi};
}

std::optional<Interval> intersect(const Interval& a, const Interval& b) {
  const double lo = std::max(a.lo, b.lo);
  const double hi = std::min(a.hi, b.hi);
  if (hi < lo) return std::nullopt;
  return Interval{lo, hi};
}

double overlap_length(const Interval& a, const Interval& b) {
  const double lo = std::max(a.lo, b.lo);
  const double hi = std::min(a.hi, b.hi);
  return hi > lo ? hi - lo : 0.0;
}

Interval hull(const Interval& a, const Interval& b) {
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval scale(const Interval& a, double s) {
  if (s < 0.0) throw std::invalid_argument("scale: negative factor");
  return {a.lo * s, a.hi * s};
}

}  // namespace rv::mathx
