#include "mathx/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace rv::mathx {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // A state of all zeros is invalid for xoshiro; splitmix64 cannot
  // produce four consecutive zeros, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform01() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  if (!(lo < hi)) throw std::invalid_argument("uniform: lo must be < hi");
  return lo + (hi - lo) * uniform01();
}

std::int64_t Xoshiro256::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo must be <= hi");
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  const std::uint64_t limit = (~0ULL) - (~0ULL) % range;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % range);
}

double Xoshiro256::angle() {
  return uniform01() * 2.0 * 3.14159265358979323846;
}

int Xoshiro256::sign() {
  return ((*this)() & 1ULL) ? 1 : -1;
}

double Xoshiro256::log_uniform(double lo, double hi) {
  if (!(lo > 0.0) || !(hi > lo)) {
    throw std::invalid_argument("log_uniform: need 0 < lo < hi");
  }
  return std::exp(uniform(std::log(lo), std::log(hi)));
}

}  // namespace rv::mathx
