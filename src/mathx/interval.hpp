#pragma once

/// \file interval.hpp
/// Closed real intervals.  Used for phase windows of Algorithm 7:
/// the overlap lemmas (Lemmas 9 and 10) are statements about the
/// intersection length of active/inactive time intervals.

#include <optional>

namespace rv::mathx {

/// A closed interval [lo, hi].  An interval with hi < lo is "empty";
/// use the factory functions to construct valid ones.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  /// Length (0 for empty intervals).
  [[nodiscard]] double length() const { return hi > lo ? hi - lo : 0.0; }
  /// True iff hi < lo.
  [[nodiscard]] bool empty() const { return hi < lo; }
  /// True iff x ∈ [lo, hi].
  [[nodiscard]] bool contains(double x) const { return lo <= x && x <= hi; }
  /// True iff the intersection with `o` is non-degenerate (positive length).
  [[nodiscard]] bool overlaps(const Interval& o) const;
  /// Midpoint of the interval.
  [[nodiscard]] double midpoint() const { return 0.5 * (lo + hi); }

  bool operator==(const Interval&) const = default;
};

/// Constructs [lo, hi]; throws std::invalid_argument if hi < lo.
[[nodiscard]] Interval make_interval(double lo, double hi);

/// Intersection of two intervals, or nullopt if they are disjoint.
[[nodiscard]] std::optional<Interval> intersect(const Interval& a,
                                                const Interval& b);

/// Length of the intersection (0 when disjoint).
[[nodiscard]] double overlap_length(const Interval& a, const Interval& b);

/// Smallest interval containing both inputs.
[[nodiscard]] Interval hull(const Interval& a, const Interval& b);

/// Scales an interval by s ≥ 0 about the origin: [s·lo, s·hi].
[[nodiscard]] Interval scale(const Interval& a, double s);

}  // namespace rv::mathx
