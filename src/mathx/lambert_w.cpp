#include "mathx/lambert_w.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace rv::mathx {
namespace {

/// One Halley iteration for f(w) = w·eʷ − x.
double halley_step(double w, double x) {
  const double ew = std::exp(w);
  const double f = w * ew - x;
  const double wp1 = w + 1.0;
  const double denom = ew * wp1 - (w + 2.0) * f / (2.0 * wp1);
  return w - f / denom;
}

double refine(double w, double x) {
  for (int i = 0; i < 64; ++i) {
    const double next = halley_step(w, x);
    if (!std::isfinite(next)) break;
    if (std::abs(next - w) <= 1e-16 * (1.0 + std::abs(next))) {
      return next;
    }
    w = next;
  }
  return w;
}

}  // namespace

double lambert_w0(double x) {
  constexpr double kMinusInvE = -0.36787944117144233;  // −1/e
  if (x < kMinusInvE) {
    throw std::domain_error("lambert_w0: argument below -1/e");
  }
  if (x == 0.0) return 0.0;

  // Seed selection.
  double w;
  if (x < -0.25) {
    // Branch-point expansion: W ≈ −1 + p − p²/3, p = sqrt(2(e·x + 1)).
    const double p = std::sqrt(2.0 * (std::exp(1.0) * x + 1.0));
    w = -1.0 + p - p * p / 3.0;
  } else if (x < 3.0) {
    // Rational seed, exact at 0 and within ~12% on (−1/4, 3); Halley
    // contracts cubically from here.
    w = x / (1.0 + x);
  } else {
    // Asymptotic seed for large x (log x > 1 here).
    const double l1 = std::log(x);
    const double l2 = std::log(l1);
    w = l1 - l2 + l2 / l1;
  }
  return refine(w, x);
}

double lambert_w_minus1(double x) {
  constexpr double kMinusInvE = -0.36787944117144233;
  if (x < kMinusInvE || x >= 0.0) {
    throw std::domain_error("lambert_w_minus1: argument outside [-1/e, 0)");
  }
  // Seed (de Bruijn-style): W₋₁(x) ≈ ln(−x) − ln(−ln(−x)).
  double w;
  if (x > -0.1) {
    const double l1 = std::log(-x);
    const double l2 = std::log(-l1);
    w = l1 - l2;
  } else {
    // Branch-point expansion with negative p.
    const double p = -std::sqrt(2.0 * (std::exp(1.0) * x + 1.0));
    w = -1.0 + p - p * p / 3.0;
  }
  return refine(w, x);
}

double lambert_w0_asymptotic(double x) {
  const double l = std::log(x);
  return l - std::log(l);
}

}  // namespace rv::mathx
