#pragma once

/// \file lambert_w.hpp
/// The Lambert W function (principal branch W₀ and lower branch W₋₁).
///
/// Lemma 12 of the paper bounds the asymmetric-clock rendezvous round via
/// the solution of z·eᶻ = y, i.e. z = W(y).  We provide a full
/// implementation so that `analysis/` can evaluate the exact Lemma 12
/// expression rather than only its logarithmic asymptotic.

namespace rv::mathx {

/// Principal branch W₀(x) for x ≥ −1/e.
///
/// Satisfies W₀(x)·e^{W₀(x)} = x with W₀(x) ≥ −1.
/// Accuracy: better than 1e-14 relative over the tested range.
/// \throws std::domain_error if x < −1/e (no real solution).
[[nodiscard]] double lambert_w0(double x);

/// Lower branch W₋₁(x) for −1/e ≤ x < 0.
///
/// Satisfies W₋₁(x)·e^{W₋₁(x)} = x with W₋₁(x) ≤ −1.
/// \throws std::domain_error if x outside [−1/e, 0).
[[nodiscard]] double lambert_w_minus1(double x);

/// Asymptotic upper estimate ln(x) − ln(ln(x)) used by the paper
/// ("W(x) behaves asymptotically as ln(x) − ln(ln(x))", citing
/// Hoorfar & Hassani).  Valid for x > e.
[[nodiscard]] double lambert_w0_asymptotic(double x);

}  // namespace rv::mathx
