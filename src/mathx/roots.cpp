#include "mathx/roots.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace rv::mathx {

namespace {
// Failed brackets name the offending endpoints: a bare "does not
// bracket" from deep inside a sweep is undebuggable, while the actual
// (a, f(a)), (b, f(b)) pair immediately shows whether the caller
// picked a bad window or the function is misbehaving (NaN).
void check_bracket(double a, double b, double fa, double fb) {
  if (std::isnan(fa) || std::isnan(fb)) {
    std::ostringstream msg;
    msg << "root finder: NaN at bracket endpoint: f(" << a << ") = " << fa
        << ", f(" << b << ") = " << fb;
    throw std::invalid_argument(msg.str());
  }
  if (fa * fb > 0.0) {
    std::ostringstream msg;
    msg << "root finder: endpoints do not bracket a root: f(" << a
        << ") = " << fa << ", f(" << b << ") = " << fb;
    throw std::invalid_argument(msg.str());
  }
}
}  // namespace

RootResult brent(const std::function<double(double)>& f, double a, double b,
                 const RootOptions& opts) {
  double fa = f(a);
  double fb = f(b);
  check_bracket(a, b, fa, fb);
  if (fa == 0.0) return {a, 0.0, 0};
  if (fb == 0.0) return {b, 0.0, 0};

  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a, fc = fa;
  bool mflag = true;
  double d = 0.0;

  int it = 0;
  for (; it < opts.max_iterations; ++it) {
    if (fb == 0.0 || std::abs(b - a) < opts.x_tol) break;
    double s;
    if (fa != fc && fb != fc) {
      // Inverse quadratic interpolation.
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      // Secant.
      s = b - fb * (b - a) / (fb - fa);
    }

    const double lo = (3.0 * a + b) / 4.0;
    const bool out_of_range = (s < std::min(lo, b) || s > std::max(lo, b));
    const bool slow_bisect =
        (mflag && std::abs(s - b) >= std::abs(b - c) / 2.0) ||
        (!mflag && std::abs(s - b) >= std::abs(c - d) / 2.0) ||
        (mflag && std::abs(b - c) < opts.x_tol) ||
        (!mflag && std::abs(c - d) < opts.x_tol);
    if (out_of_range || slow_bisect) {
      s = (a + b) / 2.0;
      mflag = true;
    } else {
      mflag = false;
    }

    const double fs = f(s);
    d = c;
    c = b;
    fc = fb;
    if (fa * fs < 0.0) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::abs(fa) < std::abs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
  }
  return {b, std::abs(fb), it};
}

RootResult bisect(const std::function<double(double)>& f, double a, double b,
                  const RootOptions& opts) {
  double fa = f(a);
  double fb = f(b);
  check_bracket(a, b, fa, fb);
  if (fa == 0.0) return {a, 0.0, 0};
  if (fb == 0.0) return {b, 0.0, 0};
  int it = 0;
  for (; it < opts.max_iterations && (b - a) > opts.x_tol; ++it) {
    const double m = 0.5 * (a + b);
    const double fm = f(m);
    if (fm == 0.0) return {m, 0.0, it};
    if (fa * fm < 0.0) {
      b = m;
      fb = fm;
    } else {
      a = m;
      fa = fm;
    }
  }
  const double m = 0.5 * (a + b);
  return {m, std::abs(f(m)), it};
}

std::optional<RootResult> first_crossing(
    const std::function<double(double)>& f, double a, double b, int steps,
    const RootOptions& opts) {
  if (steps < 1) throw std::invalid_argument("first_crossing: steps < 1");
  const double h = (b - a) / steps;
  double x0 = a;
  double f0 = f(x0);
  if (f0 == 0.0) return RootResult{x0, 0.0, 0};
  for (int i = 1; i <= steps; ++i) {
    const double x1 = (i == steps) ? b : a + i * h;
    const double f1 = f(x1);
    if (f0 * f1 <= 0.0) {
      return brent(f, x0, x1, opts);
    }
    x0 = x1;
    f0 = f1;
  }
  return std::nullopt;
}

}  // namespace rv::mathx
