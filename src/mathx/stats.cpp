#include "mathx/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rv::mathx {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q not in [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) throw std::invalid_argument("geometric_mean: empty input");
  double log_sum = 0.0;
  for (const double v : values) {
    if (!(v > 0.0)) throw std::invalid_argument("geometric_mean: non-positive value");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace rv::mathx
