#include "geom/angle.hpp"

#include <cmath>

#include "mathx/constants.hpp"

namespace rv::geom {

double normalize_angle(double theta) {
  double t = std::fmod(theta, rv::mathx::kTwoPi);
  if (t < 0.0) t += rv::mathx::kTwoPi;
  // fmod can return exactly 2π after the correction when theta is a
  // tiny negative number; map that back to 0.
  if (t >= rv::mathx::kTwoPi) t = 0.0;
  return t;
}

double normalize_angle_signed(double theta) {
  const double t = normalize_angle(theta);
  return t > rv::mathx::kPi ? t - rv::mathx::kTwoPi : t;
}

double angular_distance(double a, double b) {
  return std::abs(normalize_angle_signed(a - b));
}

double deg_to_rad(double deg) { return deg * rv::mathx::kPi / 180.0; }

double rad_to_deg(double rad) { return rad * 180.0 / rv::mathx::kPi; }

}  // namespace rv::geom
