#include "geom/closest_pair.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace rv::geom {

namespace {

constexpr auto kLess = ExtremalSense::kLess;

/// Packs a 2-D cell coordinate into one 64-bit hash key.  Collisions
/// between distinct cells are harmless: they only add far-away points
/// to a neighbourhood scan (every candidate's true distance is
/// computed), never hide one, because a cell's points are always found
/// under that cell's own key.
[[nodiscard]] std::uint64_t cell_key(std::int64_t cx, std::int64_t cy) {
  std::uint64_t h = static_cast<std::uint64_t>(cx) * 0x9E3779B97F4A7C15ULL;
  h ^= static_cast<std::uint64_t>(cy) * 0xC2B2AE3D27D4EB4FULL;
  h ^= h >> 29;
  return h;
}

/// Open-addressed cell → chain-head table with intrusive chains
/// through `next` (index-linked, so a whole pass allocates exactly
/// three flat buffers).
struct CellGrid {
  std::vector<std::uint64_t> keys;   ///< slot keys (kEmpty = free)
  std::vector<int> heads;            ///< slot chain heads
  std::vector<int> next;             ///< intrusive per-point chain links
  std::uint64_t mask = 0;
  double cell = 0.0;

  static constexpr std::uint64_t kEmpty = ~0ULL;

  void reset(std::size_t n, double cell_size) {
    std::size_t slots = 16;
    while (slots < 4 * n) slots <<= 1;
    keys.assign(slots, kEmpty);
    heads.assign(slots, -1);
    next.assign(n, -1);
    mask = slots - 1;
    cell = cell_size;
  }

  [[nodiscard]] std::int64_t coord(double v) const {
    return static_cast<std::int64_t>(std::floor(v / cell));
  }

  /// Slot of (cx, cy), or of the first free slot on that probe path.
  [[nodiscard]] std::size_t slot_of(std::uint64_t key) const {
    std::size_t s = static_cast<std::size_t>(key & mask);
    while (keys[s] != kEmpty && keys[s] != key) s = (s + 1) & mask;
    return s;
  }

  void insert(int idx, const Vec2& p) {
    const std::uint64_t key = cell_key(coord(p.x), coord(p.y));
    const std::size_t s = slot_of(key);
    if (keys[s] == kEmpty) keys[s] = key;
    next[idx] = heads[s];
    heads[s] = idx;
  }

  /// Chain head of cell (cx, cy), or -1.
  [[nodiscard]] int head_of(std::int64_t cx, std::int64_t cy) const {
    const std::size_t s = slot_of(cell_key(cx, cy));
    return keys[s] == kEmpty ? -1 : heads[s];
  }
};

/// δ = 0 path: every pair attaining the minimum is a pair of
/// numerically equal points, so group by exact coordinate value
/// (−0.0 normalised onto +0.0) and take the lexicographically first
/// two indices of any group.  O(n).
[[nodiscard]] ExtremalPair coincident_pair(const std::vector<Vec2>& pts) {
  struct FirstTwo {
    int a = -1, b = -1;
  };
  auto key_of = [](const Vec2& p) {
    // +0.0 addition maps −0.0 onto +0.0 so numerically equal points
    // share one byte pattern.
    const double x = p.x + 0.0, y = p.y + 0.0;
    std::uint64_t bx, by;
    static_assert(sizeof(bx) == sizeof(x));
    __builtin_memcpy(&bx, &x, sizeof(bx));
    __builtin_memcpy(&by, &y, sizeof(by));
    return bx * 0x9E3779B97F4A7C15ULL ^ (by + 0x632BE59BD9B4E019ULL);
  };
  // Hash buckets may merge distinct coordinates; verify equality before
  // pairing so a collision cannot fabricate a zero pair.
  std::unordered_map<std::uint64_t, std::vector<int>> groups;
  for (int i = 0; i < static_cast<int>(pts.size()); ++i) {
    groups[key_of(pts[i])].push_back(i);
  }
  ExtremalPair best{0.0, -1, -1};
  // Order-independent reduction: pair_beats is a total order, so the
  // winning pair is the same whichever order the groups are visited in.
  // rv-lint: allow(unordered-iteration)
  for (const auto& [key, members] : groups) {
    (void)key;
    for (std::size_t a = 0; a < members.size(); ++a) {
      for (std::size_t b = a + 1; b < members.size(); ++b) {
        const int i = members[a], j = members[b];
        if (pts[i].x == pts[j].x && pts[i].y == pts[j].y) {
          if (best.i < 0 ||
              pair_beats<kLess>(0.0, i, j, 0.0, best.i, best.j)) {
            best.i = i;
            best.j = j;
          }
          break;  // later members of the group only give larger j
        }
      }
    }
  }
  return best;  // callers only reach here once a zero pair exists
}

}  // namespace

ExtremalPair closest_pair(const std::vector<Vec2>& pts) {
  const int n = static_cast<int>(pts.size());
  if (n < 2) {
    throw std::invalid_argument("closest_pair: need >= 2 points");
  }

  double best_sq = norm_sq(pts[1] - pts[0]);
  // Cheap tight upper bound: consecutive indices are spatial
  // neighbours for the fleet layouts the engine sweeps (origin rings),
  // which keeps the initial cells small and rebuilds rare.
  for (int i = 1; i + 1 < n; ++i) {
    const double d_sq = norm_sq(pts[i + 1] - pts[i]);
    if (d_sq < best_sq) best_sq = d_sq;
  }
  if (best_sq == 0.0) return coincident_pair(pts);

  // Selection pass: find the minimal d² (the pair is resolved later).
  CellGrid grid;
  grid.reset(static_cast<std::size_t>(n), 2.0 * std::sqrt(best_sq));
  grid.insert(0, pts[0]);
  for (int j = 1; j < n; ++j) {
    const std::int64_t cx = grid.coord(pts[j].x);
    const std::int64_t cy = grid.coord(pts[j].y);
    bool shrunk = false;
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      for (std::int64_t dx = -1; dx <= 1; ++dx) {
        for (int i = grid.head_of(cx + dx, cy + dy); i >= 0;
             i = grid.next[i]) {
          const double d_sq = norm_sq(pts[j] - pts[i]);
          if (d_sq < best_sq) {
            best_sq = d_sq;
            shrunk = true;
          }
        }
      }
    }
    if (shrunk) {
      if (best_sq == 0.0) return coincident_pair(pts);
      // Tighter δ: rebuild so the 3×3 neighbourhood invariant (cell
      // size ≥ 2δ) stays tight rather than merely valid.
      grid.reset(static_cast<std::size_t>(n), 2.0 * std::sqrt(best_sq));
      for (int i = 0; i < j; ++i) grid.insert(i, pts[i]);
    }
    grid.insert(j, pts[j]);
  }

  // Resolution pass: every pair that can tie the winner in computed
  // hypot lies within the d² band (geom/extremal_pair.hpp), hence at
  // distance ≤ δ(1 + ~1e-14) — comfortably inside the 3×3
  // neighbourhood of the final grid (cell size ≥ 2δ).  Resolve those
  // few with the historical (hypot, lex) comparator.
  const double cutoff = best_sq + best_sq * kDistanceSqBand;
  double best_v = 0.0;
  int best_i = -1, best_j = -1;
  for (int j = 1; j < n; ++j) {
    const std::int64_t cx = grid.coord(pts[j].x);
    const std::int64_t cy = grid.coord(pts[j].y);
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      for (std::int64_t dx = -1; dx <= 1; ++dx) {
        for (int i = grid.head_of(cx + dx, cy + dy); i >= 0;
             i = grid.next[i]) {
          if (i >= j) continue;
          if (norm_sq(pts[j] - pts[i]) > cutoff) continue;
          const double v = distance(pts[i], pts[j]);
          if (best_i < 0 ||
              pair_beats<kLess>(v, i, j, best_v, best_i, best_j)) {
            best_v = v;
            best_i = i;
            best_j = j;
          }
        }
      }
    }
  }
  return {best_v, best_i, best_j};
}

}  // namespace rv::geom
