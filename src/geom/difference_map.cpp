#include "geom/difference_map.hpp"

#include <cmath>
#include <stdexcept>

namespace rv::geom {

double mu(double v, double phi) {
  // √(v² − 2v·cosφ + 1); algebraically ≥ 0, clamp guards rounding.
  const double s = v * v - 2.0 * v * std::cos(phi) + 1.0;
  return std::sqrt(std::max(0.0, s));
}

Mat2 difference_matrix(double v, double phi, int chi) {
  if (!(v > 0.0)) throw std::invalid_argument("difference_matrix: v <= 0");
  if (chi != 1 && chi != -1) {
    throw std::invalid_argument("difference_matrix: chi must be +1 or -1");
  }
  const double c = std::cos(phi);
  const double s = std::sin(phi);
  const double x = static_cast<double>(chi);
  return {1.0 - v * c, v * x * s, -v * s, 1.0 - v * x * c};
}

Mat2 difference_matrix(const RobotAttributes& attrs) {
  return difference_matrix(attrs.speed, attrs.orientation, attrs.chirality);
}

DifferenceFactorization factor_difference_matrix(double v, double phi,
                                                 int chi) {
  const double m = mu(v, phi);
  if (m <= 1e-15) {
    throw std::invalid_argument(
        "factor_difference_matrix: mu = 0 (v = 1, phi = 0); factorisation "
        "undefined");
  }
  const double c = std::cos(phi);
  const double s = std::sin(phi);
  const double x = static_cast<double>(chi);
  const Mat2 rot{(1.0 - v * c) / m, v * s / m, -v * s / m, (1.0 - v * c) / m};
  const Mat2 upper{m, -(1.0 - x) * v * s / m, 0.0,
                   (x * v * v - (1.0 + x) * v * c + 1.0) / m};
  return {rot, upper};
}

Mat2 equivalent_search_map(double v, double phi, int chi) {
  return factor_difference_matrix(v, phi, chi).upper;
}

double difference_determinant(double v, double phi, int chi) {
  const double c = std::cos(phi);
  const double s = std::sin(phi);
  const double x = static_cast<double>(chi);
  return (1.0 - v * c) * (1.0 - v * x * c) + x * v * v * s * s;
}

double direction_gain(const Mat2& t_circ, const Vec2& d_hat) {
  return norm(transpose(t_circ) * d_hat);
}

double worst_case_gain_opposite_chirality(double v) {
  if (!(v >= 0.0) || v >= 1.0) {
    throw std::invalid_argument(
        "worst_case_gain_opposite_chirality: need 0 <= v < 1 (v >= 1 with "
        "chi = -1 and tau = 1 can make rendezvous infeasible)");
  }
  return 1.0 - v;
}

}  // namespace rv::geom
