#pragma once

/// \file extremal_pair.hpp
/// The result type shared by the extremal-pair queries (closest pair,
/// point-set diameter) and the tie-break rule they all implement.
///
/// Every kernel in the repository reports the extremal pair under the
/// *same* contract as the historical O(n²) loop in
/// `engine::ContactSweep`: among all pairs attaining the extremal
/// *computed hypot distance*, the lexicographically smallest (i, j)
/// with i < j — exactly the pair a `for i { for j > i }` loop with a
/// strict `std::hypot` comparison would keep.
///
/// The ordering subtlety that makes this header worth having: computed
/// squared distances and computed hypots do NOT order identically at
/// the last ulp.  On a symmetric fleet (robots on a ring) many pairs
/// tie in computed hypot while their computed d² values differ by an
/// ulp, so a kernel that selected purely by d² would tie-break to a
/// different pair than the historical loop.  All kernels therefore use
/// d² only as a *monotone pre-filter*: any pair whose d² lies outside
/// `kDistanceSqBand` (relative) of the extremal d² provably cannot tie
/// the winner in computed hypot, and the few pairs inside the band are
/// resolved with the historical (hypot, lex) comparator.  This keeps
/// the near-linear kernels bit-identical drop-in replacements at one
/// (or a few) hypots per evaluation.

#include <cstdint>

namespace rv::geom {

/// Relative half-width of the d² band inside which computed-hypot ties
/// are possible.  Computed hypots tie only when true distances agree
/// to ~2 ulp (relative ~4.5e-16, i.e. ~9e-16 in d²) and computed d²
/// carries ~2.5 ulp of its own error; 1e-14 covers both with an order
/// of magnitude to spare, while admitting only genuinely-near-tied
/// pairs as candidates.
inline constexpr double kDistanceSqBand = 1e-14;

/// An extremal pair of a point set: the (hypot) distance and the
/// original indices, i < j.
struct ExtremalPair {
  double distance = 0.0;
  int i = -1;
  int j = -1;
};

/// The shared tie-break: candidate (value, i, j) beats the incumbent
/// iff its value is strictly more extremal, or equal with a
/// lexicographically smaller (i, j).  `value` must be the computed
/// hypot distance when matching the historical loop (see the file
/// comment); kernels may use it on d² internally where only the
/// extremal *value* matters.  `kLess` selects minima (closest pair),
/// `kGreater` maxima (diameter).
enum class ExtremalSense { kLess, kGreater };

template <ExtremalSense Sense>
[[nodiscard]] constexpr bool pair_beats(double value, int i, int j,
                                        double best_value, int best_i,
                                        int best_j) {
  if constexpr (Sense == ExtremalSense::kLess) {
    if (value < best_value) return true;
    if (value > best_value) return false;
  } else {
    if (value > best_value) return true;
    if (value < best_value) return false;
  }
  return i < best_i || (i == best_i && j < best_j);
}

}  // namespace rv::geom
