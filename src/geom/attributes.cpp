#include "geom/attributes.hpp"

#include <cmath>
#include <ostream>
#include <stdexcept>

#include "geom/angle.hpp"

namespace rv::geom {

RobotAttributes validated(RobotAttributes attrs) {
  if (!std::isfinite(attrs.speed) || attrs.speed <= 0.0) {
    throw std::invalid_argument("RobotAttributes: speed must be finite and > 0");
  }
  if (!std::isfinite(attrs.time_unit) || attrs.time_unit <= 0.0) {
    throw std::invalid_argument(
        "RobotAttributes: time_unit must be finite and > 0");
  }
  if (!std::isfinite(attrs.orientation)) {
    throw std::invalid_argument("RobotAttributes: orientation must be finite");
  }
  if (attrs.chirality != 1 && attrs.chirality != -1) {
    throw std::invalid_argument("RobotAttributes: chirality must be +1 or -1");
  }
  attrs.orientation = normalize_angle(attrs.orientation);
  return attrs;
}

Mat2 frame_matrix(const RobotAttributes& attrs) {
  const double s = attrs.speed * attrs.time_unit;
  return s * frame_rotation_reflection(attrs);
}

Mat2 frame_rotation_reflection(const RobotAttributes& attrs) {
  return rotation(attrs.orientation) * chirality(attrs.chirality);
}

Vec2 local_to_global(const RobotAttributes& attrs, const Vec2& local) {
  return frame_matrix(attrs) * local;
}

double global_to_local_time(const RobotAttributes& attrs, double global_t) {
  return global_t / attrs.time_unit;
}

double local_to_global_time(const RobotAttributes& attrs, double local_t) {
  return local_t * attrs.time_unit;
}

std::ostream& operator<<(std::ostream& os, const RobotAttributes& a) {
  return os << "{v=" << a.speed << ", tau=" << a.time_unit
            << ", phi=" << a.orientation << ", chi=" << a.chirality << '}';
}

}  // namespace rv::geom
