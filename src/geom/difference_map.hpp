#pragma once

/// \file difference_map.hpp
/// The equivalent-search reduction of Section 3.
///
/// For symmetric clocks (τ = 1) the rendezvous trajectory pair
/// (S, S′) reduces to the single *equivalent search* trajectory
/// S∘(t) = S(t) − S′(t) = T∘·S(t) with
///
///     T∘ = [ 1 − v·cosφ    v·χ·sinφ     ]
///          [ −v·sinφ       1 − v·χ·cosφ ]
///
/// Lemma 5 factors T∘ = Φ·T∘′ with Φ a rotation and T∘′ upper
/// triangular; Definition 1 then uses T∘′ as the difference map.  This
/// header implements all of that algebra plus the scalar µ and the
/// χ = −1 worst-case analysis of Lemma 7.

#include "geom/attributes.hpp"
#include "geom/mat2.hpp"

namespace rv::geom {

/// µ = √(v² − 2v·cosφ + 1): the distance between the two robots'
/// images of a unit step.  µ = 0 iff v = 1 and φ = 0.
[[nodiscard]] double mu(double v, double phi);

/// The raw difference matrix T∘ of Section 3 (before rotation removal).
[[nodiscard]] Mat2 difference_matrix(double v, double phi, int chi);

/// Convenience overload taking the attributes of R′ (τ is ignored —
/// the reduction is only valid for τ = 1, which callers must ensure).
[[nodiscard]] Mat2 difference_matrix(const RobotAttributes& attrs);

/// Result of the Lemma 5 QR factorisation T∘ = Φ·T∘′.
struct DifferenceFactorization {
  Mat2 rotation;  ///< Φ: orthogonal with det +1
  Mat2 upper;     ///< T∘′: upper triangular
};

/// QR-factors T∘ per Lemma 5:
///   Φ  = (1/µ)·[[1 − v·cosφ, v·sinφ], [−v·sinφ, 1 − v·cosφ]]
///   T∘′ = [[µ, −(1−χ)·v·sinφ/µ], [0, (χv² − (1+χ)v·cosφ + 1)/µ]]
/// \throws std::invalid_argument when µ = 0 (v = 1, φ = 0), where the
/// factorisation is undefined (and rendezvous with τ = 1, χ = +1 is
/// infeasible anyway).
[[nodiscard]] DifferenceFactorization factor_difference_matrix(double v,
                                                               double phi,
                                                               int chi);

/// The upper-triangular equivalent-search map T∘′ of Definition 1.
[[nodiscard]] Mat2 equivalent_search_map(double v, double phi, int chi);

/// det T∘ = (1 − v·cosφ)(1 − vχ·cosφ) + χ·v²·sin²φ.  Vanishes exactly
/// on the infeasible symmetric-clock configurations: for χ = +1 when
/// v = 1, φ = 0; for χ = −1 when v = 1 (any φ).
[[nodiscard]] double difference_determinant(double v, double phi, int chi);

/// |T∘ᵀ·d̂| for a unit direction d̂ — the per-direction scaling factor
/// of the χ = −1 reduction in Lemma 7.
[[nodiscard]] double direction_gain(const Mat2& t_circ, const Vec2& d_hat);

/// Worst-case (minimum over d̂ and φ) direction gain for χ = −1 at
/// speed v: the paper shows the bound is governed by (1 − v²)/µ with
/// µ maximised at 1 + v, i.e. gain ≥ 1 − v (Lemma 7).
[[nodiscard]] double worst_case_gain_opposite_chirality(double v);

}  // namespace rv::geom
