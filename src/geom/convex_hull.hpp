#pragma once

/// \file convex_hull.hpp
/// Monotone-chain convex hull and rotating-calipers diameter — the
/// near-linear kernel behind the engine's max-pairwise sweep metric
/// (all-pairs gathering).
///
/// `convex_hull` is Andrew's monotone chain over the points sorted by
/// (x, y, index): O(n log n), strict turns only (collinear mid-edge
/// points are dropped), exact duplicates collapsed onto their smallest
/// original index.  `hull_diameter` rotates calipers around that hull
/// to enumerate the antipodal vertex pairs — every pair attaining the
/// diameter is among them — and resolves the candidates with the same
/// comparator as the historical O(n²) loop, so the returned
/// `std::hypot` distance and lexicographically-first extremal pair
/// match it exactly (see geom/extremal_pair.hpp).  Degenerate hulls
/// (all points collinear or coincident) are handled explicitly, and a
/// bounded-advance guard falls back to an O(h²) scan over hull
/// vertices if floating-point sign noise ever stalls the calipers.

#include <vector>

#include "geom/extremal_pair.hpp"
#include "geom/vec2.hpp"

namespace rv::geom {

/// Indices (into `pts`) of the convex hull vertices in counter-
/// clockwise order starting from the lexicographically smallest point.
/// Strict hull: no collinear mid-edge vertices; duplicate coordinates
/// are represented by their smallest original index.  A single index
/// is returned when every point coincides.
[[nodiscard]] std::vector<int> convex_hull(const std::vector<Vec2>& pts);

/// The diameter (farthest pair) of `pts` under the shared
/// extremal-pair contract.  \throws std::invalid_argument for fewer
/// than 2 points.
[[nodiscard]] ExtremalPair hull_diameter(const std::vector<Vec2>& pts);

}  // namespace rv::geom
