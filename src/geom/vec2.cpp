#include "geom/vec2.hpp"

#include <ostream>

namespace rv::geom {

Vec2 normalized(const Vec2& v) {
  const double n = norm(v);
  if (n == 0.0) return {0.0, 0.0};
  return {v.x / n, v.y / n};
}

bool approx_equal(const Vec2& a, const Vec2& b, double abs_tol) {
  return std::abs(a.x - b.x) <= abs_tol && std::abs(a.y - b.y) <= abs_tol;
}

std::ostream& operator<<(std::ostream& os, const Vec2& v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

}  // namespace rv::geom
