#include "geom/convex_hull.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace rv::geom {

namespace {

constexpr auto kGreater = ExtremalSense::kGreater;

/// A point tagged with its original index; hull construction sorts and
/// pops these by value for cache-friendly chains.
struct TaggedPoint {
  Vec2 p;
  int idx = -1;
};

/// Sorted, exact-duplicate-collapsed copy of `pts`.  Sorting by
/// (x, y, idx) puts duplicates adjacently with the smallest original
/// index first, so each kept representative is the smallest index at
/// its coordinate — which is what the diameter tie-break needs.
[[nodiscard]] std::vector<TaggedPoint> sorted_unique(
    const std::vector<Vec2>& pts) {
  std::vector<TaggedPoint> sorted;
  sorted.reserve(pts.size());
  for (int i = 0; i < static_cast<int>(pts.size()); ++i) {
    sorted.push_back({pts[i], i});
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const TaggedPoint& a, const TaggedPoint& b) {
              if (a.p.x != b.p.x) return a.p.x < b.p.x;
              if (a.p.y != b.p.y) return a.p.y < b.p.y;
              return a.idx < b.idx;
            });
  std::vector<TaggedPoint> unique;
  unique.reserve(sorted.size());
  for (const TaggedPoint& tp : sorted) {
    if (!unique.empty() && unique.back().p.x == tp.p.x &&
        unique.back().p.y == tp.p.y) {
      continue;
    }
    unique.push_back(tp);
  }
  return unique;
}

/// Monotone chain over sorted unique points; strict turns only.
[[nodiscard]] std::vector<TaggedPoint> hull_of(
    const std::vector<TaggedPoint>& unique) {
  const std::size_t m = unique.size();
  if (m <= 2) return unique;
  std::vector<TaggedPoint> hull(2 * m);
  std::size_t k = 0;
  for (std::size_t i = 0; i < m; ++i) {  // lower chain
    while (k >= 2 && cross(hull[k - 1].p - hull[k - 2].p,
                           unique[i].p - hull[k - 2].p) <= 0.0) {
      --k;
    }
    hull[k++] = unique[i];
  }
  for (std::size_t i = m - 1, lower = k + 1; i-- > 0;) {  // upper chain
    while (k >= lower && cross(hull[k - 1].p - hull[k - 2].p,
                               unique[i].p - hull[k - 2].p) <= 0.0) {
      --k;
    }
    hull[k++] = unique[i];
  }
  hull.resize(k - 1);  // last point repeats the first
  return hull;
}

}  // namespace

std::vector<int> convex_hull(const std::vector<Vec2>& pts) {
  std::vector<int> out;
  for (const TaggedPoint& tp : hull_of(sorted_unique(pts))) {
    out.push_back(tp.idx);
  }
  return out;
}

ExtremalPair hull_diameter(const std::vector<Vec2>& pts) {
  if (pts.size() < 2) {
    throw std::invalid_argument("hull_diameter: need >= 2 points");
  }
  const std::vector<TaggedPoint> hull = hull_of(sorted_unique(pts));
  const int h = static_cast<int>(hull.size());

  // Candidates are selected by computed d² as a monotone pre-filter
  // and resolved with the historical (hypot, lex) comparator: any
  // candidate whose d² falls below the hypot-tie band around the
  // maximum provably cannot tie the winner, so it is rejected without
  // a hypot (see geom/extremal_pair.hpp).
  double best_sq = -1.0;
  double best_v = 0.0;
  int best_i = -1, best_j = -1;
  auto consider = [&](int a, int b) {
    if (a == b) return;
    const double d_sq = norm_sq(hull[a].p - hull[b].p);
    if (best_i >= 0 && d_sq < best_sq - best_sq * kDistanceSqBand) return;
    if (d_sq > best_sq) best_sq = d_sq;
    const double v = distance(hull[a].p, hull[b].p);
    int i = hull[a].idx, j = hull[b].idx;
    if (i > j) std::swap(i, j);
    if (best_i < 0 ||
        pair_beats<kGreater>(v, i, j, best_v, best_i, best_j)) {
      best_v = v;
      best_i = i;
      best_j = j;
    }
  };

  if (h == 1) {
    // Every point coincides: all pairs attain distance 0; the
    // lexicographically first is (0, 1).
    return {distance(pts[0], pts[1]), 0, 1};
  }
  if (h == 2) {
    consider(0, 1);
  } else {
    // Rotating calipers: for each directed hull edge (i, i+1), advance
    // j to the vertex farthest from it (cross(edge_i, edge_j) > 0 iff
    // the next vertex is strictly farther), considering every visited
    // (i, j) plus both edge endpoints and, on parallel edges (cross
    // == 0), the tied vertex.  All diameter-attaining pairs are
    // antipodal vertex pairs and every antipodal pair is visited.
    auto nxt = [h](int v) { return v + 1 < h ? v + 1 : 0; };
    const int budget = 4 * h + 8;  // j advances < 2h in a sane run
    int advances = 0;
    int j = 1;
    for (int i = 0; i < h && advances <= budget; ++i) {
      for (;;) {
        consider(i, j);
        consider(nxt(i), j);
        const double c =
            cross(hull[nxt(i)].p - hull[i].p, hull[nxt(j)].p - hull[j].p);
        if (c > 0.0) {
          j = nxt(j);
          if (++advances > budget) break;
        } else {
          if (c == 0.0) {
            consider(i, nxt(j));
            consider(nxt(i), nxt(j));
          }
          break;
        }
      }
    }
    if (advances > budget) {
      // Floating-point sign noise stalled the calipers (never observed;
      // defensive): exact O(h²) scan over hull vertices.
      best_sq = -1.0;
      best_v = 0.0;
      best_i = best_j = -1;
      for (int a = 0; a < h; ++a) {
        for (int b = a + 1; b < h; ++b) consider(a, b);
      }
    }
  }
  return {distance(pts[best_i], pts[best_j]), best_i, best_j};
}

}  // namespace rv::geom
