#pragma once

/// \file vec2.hpp
/// Plain 2-D vectors with value semantics.  The whole library works in
/// the global coordinate frame of robot R (the paper normalises R to
/// unit speed / identity compass), so `Vec2` doubles as both points and
/// displacement vectors.

#include <cmath>
#include <iosfwd>

namespace rv::geom {

/// A 2-D vector / point.  Aggregate with no invariant (C.? "use struct
/// if no invariant").
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(const Vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }

  bool operator==(const Vec2&) const = default;
};

[[nodiscard]] constexpr Vec2 operator+(Vec2 a, const Vec2& b) { return a += b; }
[[nodiscard]] constexpr Vec2 operator-(Vec2 a, const Vec2& b) { return a -= b; }
[[nodiscard]] constexpr Vec2 operator*(double s, Vec2 v) { return v *= s; }
[[nodiscard]] constexpr Vec2 operator*(Vec2 v, double s) { return v *= s; }
[[nodiscard]] constexpr Vec2 operator-(const Vec2& v) { return {-v.x, -v.y}; }

/// Dot product.
[[nodiscard]] constexpr double dot(const Vec2& a, const Vec2& b) {
  return a.x * b.x + a.y * b.y;
}

/// 2-D cross product (z component of the 3-D cross product).
[[nodiscard]] constexpr double cross(const Vec2& a, const Vec2& b) {
  return a.x * b.y - a.y * b.x;
}

/// Squared Euclidean norm.
[[nodiscard]] constexpr double norm_sq(const Vec2& v) { return dot(v, v); }

/// Euclidean norm.
[[nodiscard]] inline double norm(const Vec2& v) { return std::hypot(v.x, v.y); }

/// Euclidean distance between two points.
[[nodiscard]] inline double distance(const Vec2& a, const Vec2& b) {
  return norm(a - b);
}

/// Unit vector in the direction of v.  Returns {0,0} for the zero vector.
[[nodiscard]] Vec2 normalized(const Vec2& v);

/// Unit vector at angle θ from the +x axis.
[[nodiscard]] inline Vec2 unit(double theta) {
  return {std::cos(theta), std::sin(theta)};
}

/// Polar constructor: radius ρ at angle θ.
[[nodiscard]] inline Vec2 polar(double rho, double theta) {
  return {rho * std::cos(theta), rho * std::sin(theta)};
}

/// CCW perpendicular (rotation by +90°).
[[nodiscard]] constexpr Vec2 perp(const Vec2& v) { return {-v.y, v.x}; }

/// Linear interpolation a + t·(b − a).
[[nodiscard]] constexpr Vec2 lerp(const Vec2& a, const Vec2& b, double t) {
  return {a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)};
}

/// Angle of v measured CCW from the +x axis, in (−π, π].
[[nodiscard]] inline double angle_of(const Vec2& v) {
  return std::atan2(v.y, v.x);
}

/// True if both components are finite.
[[nodiscard]] inline bool is_finite(const Vec2& v) {
  return std::isfinite(v.x) && std::isfinite(v.y);
}

/// Componentwise approximate equality with absolute tolerance.
[[nodiscard]] bool approx_equal(const Vec2& a, const Vec2& b,
                                double abs_tol = 1e-9);

std::ostream& operator<<(std::ostream& os, const Vec2& v);

}  // namespace rv::geom
