#include "geom/mat2.hpp"

#include <cmath>
#include <ostream>
#include <stdexcept>

namespace rv::geom {

Mat2 inverse(const Mat2& m, double tol) {
  const double dt = det(m);
  if (std::abs(dt) < tol) {
    throw std::invalid_argument("Mat2 inverse: matrix is singular");
  }
  return {m.d / dt, -m.b / dt, -m.c / dt, m.a / dt};
}

Mat2 rotation(double theta) {
  const double c = std::cos(theta);
  const double s = std::sin(theta);
  return {c, -s, s, c};
}

Mat2 chirality(int chi) {
  if (chi != 1 && chi != -1) {
    throw std::invalid_argument("chirality: chi must be +1 or -1");
  }
  return {1.0, 0.0, 0.0, static_cast<double>(chi)};
}

double frobenius_norm(const Mat2& m) {
  return std::sqrt(m.a * m.a + m.b * m.b + m.c * m.c + m.d * m.d);
}

namespace {
/// Singular values of a 2×2 matrix via the closed form
/// σ± = sqrt((f ± sqrt(f² − 4·det²)) / 2) with f = ‖M‖_F².
void singular_values(const Mat2& m, double& s_max, double& s_min) {
  const double f = m.a * m.a + m.b * m.b + m.c * m.c + m.d * m.d;
  const double dt = det(m);
  const double disc = std::sqrt(std::max(0.0, f * f - 4.0 * dt * dt));
  s_max = std::sqrt(std::max(0.0, (f + disc) / 2.0));
  s_min = std::sqrt(std::max(0.0, (f - disc) / 2.0));
}
}  // namespace

double operator_norm(const Mat2& m) {
  double hi = 0.0, lo = 0.0;
  singular_values(m, hi, lo);
  return hi;
}

double min_singular_value(const Mat2& m) {
  double hi = 0.0, lo = 0.0;
  singular_values(m, hi, lo);
  return lo;
}

bool is_orthogonal(const Mat2& m, double tol) {
  const Mat2 mtm = transpose(m) * m;
  return frobenius_norm(mtm - identity()) <= tol;
}

bool approx_equal(const Mat2& m, const Mat2& n, double abs_tol) {
  return std::abs(m.a - n.a) <= abs_tol && std::abs(m.b - n.b) <= abs_tol &&
         std::abs(m.c - n.c) <= abs_tol && std::abs(m.d - n.d) <= abs_tol;
}

std::ostream& operator<<(std::ostream& os, const Mat2& m) {
  return os << "[[" << m.a << ", " << m.b << "], [" << m.c << ", " << m.d
            << "]]";
}

}  // namespace rv::geom
