#pragma once

/// \file mat2.hpp
/// 2×2 matrices.  The paper's analysis is entirely about 2×2 linear
/// maps: the frame map of robot R′ (Lemma 4), the difference map T∘
/// (Definition 1) and its QR factorisation (Lemma 5).

#include "geom/vec2.hpp"

namespace rv::geom {

/// A 2×2 real matrix [[a, b], [c, d]] acting on column vectors.
struct Mat2 {
  double a = 1.0, b = 0.0;  ///< first row
  double c = 0.0, d = 1.0;  ///< second row

  bool operator==(const Mat2&) const = default;
};

/// Matrix–vector product.
[[nodiscard]] constexpr Vec2 operator*(const Mat2& m, const Vec2& v) {
  return {m.a * v.x + m.b * v.y, m.c * v.x + m.d * v.y};
}

/// Matrix–matrix product.
[[nodiscard]] constexpr Mat2 operator*(const Mat2& m, const Mat2& n) {
  return {m.a * n.a + m.b * n.c, m.a * n.b + m.b * n.d,
          m.c * n.a + m.d * n.c, m.c * n.b + m.d * n.d};
}

/// Scalar multiple.
[[nodiscard]] constexpr Mat2 operator*(double s, const Mat2& m) {
  return {s * m.a, s * m.b, s * m.c, s * m.d};
}

/// Matrix sum / difference.
[[nodiscard]] constexpr Mat2 operator+(const Mat2& m, const Mat2& n) {
  return {m.a + n.a, m.b + n.b, m.c + n.c, m.d + n.d};
}
[[nodiscard]] constexpr Mat2 operator-(const Mat2& m, const Mat2& n) {
  return {m.a - n.a, m.b - n.b, m.c - n.c, m.d - n.d};
}

/// Identity matrix.
[[nodiscard]] constexpr Mat2 identity() { return {1.0, 0.0, 0.0, 1.0}; }

/// Determinant.
[[nodiscard]] constexpr double det(const Mat2& m) {
  return m.a * m.d - m.b * m.c;
}

/// Trace.
[[nodiscard]] constexpr double trace(const Mat2& m) { return m.a + m.d; }

/// Transpose.
[[nodiscard]] constexpr Mat2 transpose(const Mat2& m) {
  return {m.a, m.c, m.b, m.d};
}

/// Inverse.  \throws std::invalid_argument if |det| is below `tol`.
[[nodiscard]] Mat2 inverse(const Mat2& m, double tol = 1e-14);

/// CCW rotation by angle θ.
[[nodiscard]] Mat2 rotation(double theta);

/// Reflection about the x axis: diag(1, −1).  This is the chirality
/// flip of the paper (χ = −1 robots disagree on the +y direction).
[[nodiscard]] constexpr Mat2 reflection_x_axis() {
  return {1.0, 0.0, 0.0, -1.0};
}

/// diag(1, χ) for χ ∈ {+1, −1}.
[[nodiscard]] Mat2 chirality(int chi);

/// Frobenius norm.
[[nodiscard]] double frobenius_norm(const Mat2& m);

/// Operator (spectral) norm: largest singular value.
[[nodiscard]] double operator_norm(const Mat2& m);

/// Smallest singular value.
[[nodiscard]] double min_singular_value(const Mat2& m);

/// True if MᵀM ≈ I within `tol` (Frobenius).
[[nodiscard]] bool is_orthogonal(const Mat2& m, double tol = 1e-9);

/// Entry-wise approximate equality.
[[nodiscard]] bool approx_equal(const Mat2& m, const Mat2& n,
                                double abs_tol = 1e-9);

std::ostream& operator<<(std::ostream& os, const Mat2& m);

}  // namespace rv::geom
