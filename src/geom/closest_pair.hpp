#pragma once

/// \file closest_pair.hpp
/// Exact closest pair of a planar point set via incremental spatial
/// grid hashing — the near-linear kernel behind the engine's
/// min-pairwise sweep metric (first contact / rendezvous).
///
/// Algorithm (Rabin-style, deterministic insertion order): maintain the
/// closest distance δ seen so far and a uniform grid of cell size 2δ
/// (open-addressed hash of cell → point chain, zero allocation per
/// query beyond three flat buffers).  Each point is tested against the
/// 3×3 cell neighbourhood of its own cell — any pair at distance ≤ δ
/// differs by at most one cell index per axis with cell size 2δ, with
/// a full cell of slack absorbing floating-point boundary rounding —
/// and the grid is rebuilt with tighter cells whenever δ strictly
/// shrinks.  Expected O(n) for the fleet geometries the engine sweeps
/// (rings, clusters, slowly-evolving positions); the adversarial worst
/// case degrades gracefully toward the brute-force bound.
///
/// Exactness contract: the returned distance is the same
/// `std::hypot`-computed value, and the returned pair the same
/// lexicographically-first extremal pair, as the historical O(n²) loop
/// (see geom/extremal_pair.hpp).  Coincident points (δ = 0) are
/// resolved by an O(n) exact-coordinate grouping pass.

#include <vector>

#include "geom/extremal_pair.hpp"
#include "geom/vec2.hpp"

namespace rv::geom {

/// The closest pair of `pts` under the shared extremal-pair contract.
/// \throws std::invalid_argument for fewer than 2 points.
[[nodiscard]] ExtremalPair closest_pair(const std::vector<Vec2>& pts);

}  // namespace rv::geom
