#pragma once

/// \file angle.hpp
/// Angle normalisation helpers.  The robot orientation φ lives in
/// [0, 2π); arc segments carry start angles and signed sweeps.

namespace rv::geom {

/// Normalises an angle to [0, 2π).
[[nodiscard]] double normalize_angle(double theta);

/// Normalises an angle to (−π, π].
[[nodiscard]] double normalize_angle_signed(double theta);

/// Smallest absolute angular difference between two angles, in [0, π].
[[nodiscard]] double angular_distance(double a, double b);

/// Degrees → radians.
[[nodiscard]] double deg_to_rad(double deg);

/// Radians → degrees.
[[nodiscard]] double rad_to_deg(double rad);

}  // namespace rv::geom
