#pragma once

/// \file attributes.hpp
/// The hidden robot attributes of the paper's model (Section 1.1) and
/// the reference-frame map they induce (Lemma 4).
///
/// All coordinates in the library are expressed in the global frame of
/// robot R, which is normalised to unit speed, unit clock, identity
/// compass and chirality +1.  Robot R′ carries:
///   * speed v > 0              — distance per global time unit,
///   * time unit τ > 0          — one R′ clock tick lasts τ global units,
///   * orientation φ ∈ [0, 2π)  — R′ axes rotated CCW by φ,
///   * chirality χ = ±1         — χ = −1 flips R′'s +y axis.
///
/// A robot executing the common algorithm S(·) interprets it in its own
/// frame: at global time t its displacement from its origin is
///     s·Q·S(t/τ)   with   s = v·τ  (its distance unit)  and
///     Q = R(φ)·diag(1, χ).
/// For τ = 1 this is exactly Lemma 4: S′(t) = v·R(φ)·diag(1,χ)·S(t).

#include <iosfwd>

#include "geom/mat2.hpp"
#include "geom/vec2.hpp"

namespace rv::geom {

/// The four hidden attributes (v, τ, φ, χ) of one robot.
struct RobotAttributes {
  double speed = 1.0;        ///< v > 0
  double time_unit = 1.0;    ///< τ > 0
  double orientation = 0.0;  ///< φ ∈ [0, 2π) (stored normalised)
  int chirality = 1;         ///< χ ∈ {+1, −1}

  bool operator==(const RobotAttributes&) const = default;
};

/// The reference robot R: v = τ = 1, φ = 0, χ = +1.
[[nodiscard]] constexpr RobotAttributes reference_attributes() {
  return RobotAttributes{};
}

/// Validates and normalises attributes (orientation mapped into
/// [0, 2π)).  \throws std::invalid_argument on non-positive speed or
/// time unit, non-finite values, or χ ∉ {−1, +1}.
[[nodiscard]] RobotAttributes validated(RobotAttributes attrs);

/// The spatial linear map Q·s of the frame: s·R(φ)·diag(1, χ) with
/// s = v·τ (the robot's distance unit measured in global units).
[[nodiscard]] Mat2 frame_matrix(const RobotAttributes& attrs);

/// The orientation/chirality part only: R(φ)·diag(1, χ).
[[nodiscard]] Mat2 frame_rotation_reflection(const RobotAttributes& attrs);

/// Maps a local algorithm position (robot's own units/axes) to a global
/// displacement from the robot's origin.
[[nodiscard]] Vec2 local_to_global(const RobotAttributes& attrs,
                                   const Vec2& local);

/// Converts a global time to the robot's local clock reading t/τ.
[[nodiscard]] double global_to_local_time(const RobotAttributes& attrs,
                                          double global_t);

/// Converts a local clock reading to global time t·τ.
[[nodiscard]] double local_to_global_time(const RobotAttributes& attrs,
                                          double local_t);

std::ostream& operator<<(std::ostream& os, const RobotAttributes& a);

}  // namespace rv::geom
