#include "rendezvous/core.hpp"

#include <stdexcept>

#include "rendezvous/algorithm7.hpp"
#include "search/algorithm4.hpp"

namespace rv::rendezvous {

std::function<std::shared_ptr<traj::Program>()> program_factory(
    AlgorithmChoice choice) {
  switch (choice) {
    case AlgorithmChoice::kAlgorithm4:
      return [] { return search::make_search_program(); };
    case AlgorithmChoice::kAlgorithm7:
      return [] { return make_rendezvous_program(); };
  }
  throw std::invalid_argument("program_factory: unknown algorithm");
}

Outcome run_scenario(const Scenario& scenario) {
  const geom::RobotAttributes attrs = geom::validated(scenario.attrs);
  const double d = geom::norm(scenario.offset);
  if (!(d > 0.0)) {
    throw std::invalid_argument("run_scenario: robots must start apart");
  }
  if (!(scenario.visibility > 0.0)) {
    throw std::invalid_argument("run_scenario: visibility must be > 0");
  }

  sim::SimOptions options;
  options.visibility = scenario.visibility;
  options.max_time = scenario.max_time;

  Outcome outcome;
  outcome.feasibility = classify(attrs);
  outcome.initial_distance = d;
  if (scenario.program) {
    outcome.algorithm_name = scenario.program_name.empty()
                                 ? scenario.program()->name()
                                 : scenario.program_name;
    outcome.sim = sim::simulate_rendezvous(scenario.program, attrs,
                                           scenario.offset, options);
  } else {
    outcome.algorithm_name =
        scenario.algorithm == AlgorithmChoice::kAlgorithm4 ? "algorithm4"
                                                           : "algorithm7";
    outcome.sim = sim::simulate_rendezvous(program_factory(scenario.algorithm),
                                           attrs, scenario.offset, options);
  }
  return outcome;
}

Outcome run_universal(const geom::RobotAttributes& attrs, double d, double r,
                      double max_time) {
  Scenario scenario;
  scenario.attrs = attrs;
  scenario.offset = {d, 0.0};
  scenario.visibility = r;
  scenario.algorithm = AlgorithmChoice::kAlgorithm7;
  scenario.max_time = max_time;
  return run_scenario(scenario);
}

}  // namespace rv::rendezvous
