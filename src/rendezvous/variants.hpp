#pragma once

/// \file variants.hpp
/// Ablation variant of Algorithm 7 (experiment A1).
///
/// The paper's active phase is SearchAll(n) followed by
/// SearchAllRev(n).  The *reverse* pass exists so that the growing
/// overlap with the peer's inactive phase covers both alignment
/// patterns of Figure 3: an overlap at the *start* of the active phase
/// is served by SearchAll (rounds 1..n — small rounds first), while an
/// overlap at the *end* is served by SearchAllRev (rounds n..1 — the
/// small rounds come last, right before the peer wakes).  Replacing the
/// reverse pass with a second forward pass keeps the schedule identical
/// (same durations) but misplaces the small, quick rounds, so a robot
/// whose overlap window sits at the end of the active phase may spend
/// it deep inside Search(n) instead of re-sweeping the whole plane.

#include <memory>
#include <string>

#include "search/emitter.hpp"
#include "traj/program.hpp"

namespace rv::rendezvous {

/// Active-phase composition for the Algorithm 7 ablation.
enum class ActivePhaseOrder {
  kForwardThenReverse,  ///< the paper: SearchAll(n); SearchAllRev(n)
  kForwardTwice,        ///< ablation: SearchAll(n); SearchAll(n)
};

/// Algorithm 7 with a configurable active phase.  With
/// `kForwardThenReverse` the emitted trajectory is identical to
/// `RendezvousProgram`.
class VariantRendezvousProgram final : public traj::Program {
 public:
  explicit VariantRendezvousProgram(ActivePhaseOrder order);
  [[nodiscard]] traj::Segment next() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int current_round() const { return n_; }

 private:
  enum class Stage { kWait, kFirstPass, kSecondPass };

  ActivePhaseOrder order_;
  int n_ = 0;
  Stage stage_ = Stage::kWait;
  int k_ = 1;
  std::unique_ptr<search::SearchRoundEmitter> emitter_;

  void begin_round();
  [[nodiscard]] int second_pass_first_k() const;
};

/// Factory for the simulator interface.
[[nodiscard]] std::shared_ptr<traj::Program> make_variant_rendezvous_program(
    ActivePhaseOrder order);

}  // namespace rv::rendezvous
