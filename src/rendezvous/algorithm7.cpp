#include "rendezvous/algorithm7.hpp"

#include "rendezvous/schedule.hpp"

namespace rv::rendezvous {

using traj::Segment;
using traj::WaitSeg;

RendezvousProgram::RendezvousProgram(traj::MarkRecorder* recorder)
    : recorder_(recorder) {
  begin_round();
}

void RendezvousProgram::mark(const std::string& label) {
  if (recorder_) recorder_->record(local_clock_, label);
}

void RendezvousProgram::begin_round() {
  ++n_;
  stage_ = Stage::kWait;
  mark("inactive " + std::to_string(n_));
}

Segment RendezvousProgram::next() {
  for (;;) {
    switch (stage_) {
      case Stage::kWait: {
        const double wait_time = 2.0 * search_all_time(n_);
        stage_ = Stage::kSearchAll;
        k_ = 1;
        emitter_ = std::make_unique<search::SearchRoundEmitter>(k_);
        local_clock_ += wait_time;
        // The active phase begins when this wait ends.
        mark("searchall " + std::to_string(n_));
        return WaitSeg{{0.0, 0.0}, wait_time};
      }
      case Stage::kSearchAll: {
        if (!emitter_->done()) {
          Segment seg = emitter_->next();
          local_clock_ += traj::duration(seg);
          return seg;
        }
        if (k_ < n_) {
          emitter_ = std::make_unique<search::SearchRoundEmitter>(++k_);
          continue;
        }
        stage_ = Stage::kSearchAllRev;
        k_ = n_;
        emitter_ = std::make_unique<search::SearchRoundEmitter>(k_);
        mark("searchallrev " + std::to_string(n_));
        continue;
      }
      case Stage::kSearchAllRev: {
        if (!emitter_->done()) {
          Segment seg = emitter_->next();
          local_clock_ += traj::duration(seg);
          return seg;
        }
        if (k_ > 1) {
          emitter_ = std::make_unique<search::SearchRoundEmitter>(--k_);
          continue;
        }
        begin_round();
        continue;
      }
    }
  }
}

std::shared_ptr<traj::Program> make_rendezvous_program() {
  return std::make_shared<RendezvousProgram>();
}

}  // namespace rv::rendezvous
