#include "rendezvous/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mathx/constants.hpp"

namespace rv::rendezvous {

using rv::mathx::Interval;
using rv::mathx::pow2;

namespace {
void check_round(int n, const char* who) {
  if (n < 1) throw std::invalid_argument(std::string(who) + ": round must be >= 1");
}
void check_ka(int k, int a, const char* who) {
  if (a < 0) throw std::invalid_argument(std::string(who) + ": a must be >= 0");
  if (k < 2 * (a + 1)) {
    throw std::invalid_argument(std::string(who) + ": requires k >= 2(a+1)");
  }
}
}  // namespace

double search_all_time(int n) {
  check_round(n, "search_all_time");
  return rv::mathx::kSearchAllFactor * n * pow2(n);
}

double inactive_start(int n) {
  check_round(n, "inactive_start");
  return rv::mathx::kScheduleFactor * ((2.0 * n - 4.0) * pow2(n) + 4.0);
}

double active_start(int n) {
  check_round(n, "active_start");
  return rv::mathx::kScheduleFactor * ((3.0 * n - 4.0) * pow2(n) + 4.0);
}

Interval inactive_phase(int n) {
  return Interval{inactive_start(n), active_start(n)};
}

Interval active_phase(int n) {
  return Interval{active_start(n), inactive_start(n + 1)};
}

Interval inactive_phase_global(int n, double tau) {
  if (!(tau > 0.0)) {
    throw std::invalid_argument("inactive_phase_global: tau must be > 0");
  }
  return rv::mathx::scale(inactive_phase(n), tau);
}

Interval active_phase_global(int n, double tau) {
  if (!(tau > 0.0)) {
    throw std::invalid_argument("active_phase_global: tau must be > 0");
  }
  return rv::mathx::scale(active_phase(n), tau);
}

Interval lemma9_tau_window(int k, int a) {
  check_ka(k, a, "lemma9_tau_window");
  const double base =
      static_cast<double>(k) / static_cast<double>(k + 1 + a) * pow2(-a - 1);
  return Interval{base, 1.5 * base};
}

double lemma9_overlap(double tau, int k, int a) {
  check_ka(k, a, "lemma9_overlap");
  return tau * active_start(k + 1 + a) - active_start(k);
}

Interval lemma10_tau_window(int k, int a) {
  check_ka(k, a, "lemma10_tau_window");
  const double lo = (2.0 / 3.0) * static_cast<double>(k) /
                    static_cast<double>(k + a) * pow2(-a);
  const double hi =
      static_cast<double>(k) / static_cast<double>(k + 1 + a) * pow2(-a);
  return Interval{lo, hi};
}

double lemma10_overlap(double tau, int k, int a) {
  check_ka(k, a, "lemma10_overlap");
  return inactive_start(k) - tau * inactive_start(k + a);
}

int rendezvous_round_bound(double tau, int n) {
  if (!(tau > 0.0) || !(tau < 1.0)) {
    throw std::invalid_argument("rendezvous_round_bound: need 0 < tau < 1");
  }
  check_round(n, "rendezvous_round_bound");
  const rv::mathx::DyadicDecomposition dec = rv::mathx::dyadic_decompose(tau);
  const double t = dec.t;
  const double a1 = static_cast<double>(dec.a + 1);
  // ceil with a tolerance: quantities like t/(1−t) pick up 1-ulp noise
  // that must not inflate the round bound by a whole round.
  const auto ceil_eps = [](double x) { return std::ceil(x - 1e-9); };
  double k_star;
  if (t <= 2.0 / 3.0) {
    const double growth =
        static_cast<double>(n) + ceil_eps(std::log2(static_cast<double>(n) / a1));
    k_star = std::max(8.0 * a1, growth);
  } else {
    const double growth =
        static_cast<double>(n) +
        ceil_eps(std::log2(static_cast<double>(n) / (1.0 - t)));
    k_star = std::max(a1 * t / (1.0 - t), growth);
  }
  // Rounds are integers; k* must also be large enough for the overlap
  // lemmas to apply at all (k ≥ 2(a+1)).
  k_star = std::max(k_star, 2.0 * a1);
  return static_cast<int>(ceil_eps(k_star));
}

double rendezvous_time_bound(double tau, int n) {
  const int k_star = rendezvous_round_bound(tau, n);
  // The searching robot is the reference (time unit 1); it completes
  // round k* by local time I(k*+1), which is also global time.
  return inactive_start(k_star + 1);
}

std::optional<Interval> best_overlap_with_inactive(int k, double tau,
                                                   int max_peer_round) {
  check_round(k, "best_overlap_with_inactive");
  if (!(tau > 0.0)) {
    throw std::invalid_argument("best_overlap_with_inactive: tau must be > 0");
  }
  const Interval active = active_phase_global(k, 1.0);
  std::optional<Interval> best;
  for (int peer = 1; peer <= max_peer_round; ++peer) {
    const Interval inactive = inactive_phase_global(peer, tau);
    if (inactive.lo > active.hi) break;  // peer phases are monotone in n
    const auto common = rv::mathx::intersect(active, inactive);
    if (!common || common->length() <= 0.0) continue;
    if (!best || common->length() > best->length()) best = common;
  }
  return best;
}

}  // namespace rv::rendezvous
