#include "rendezvous/feasibility.hpp"

#include <cmath>

#include "geom/difference_map.hpp"

namespace rv::rendezvous {

using geom::RobotAttributes;
using geom::Vec2;

bool is_feasible(FeasibilityClass c) {
  return c == FeasibilityClass::kDifferentClocks ||
         c == FeasibilityClass::kDifferentSpeeds ||
         c == FeasibilityClass::kOrientationOnly;
}

FeasibilityClass classify(const RobotAttributes& attrs) {
  if (attrs.time_unit != 1.0) return FeasibilityClass::kDifferentClocks;
  if (attrs.speed != 1.0) return FeasibilityClass::kDifferentSpeeds;
  if (attrs.chirality == 1) {
    if (attrs.orientation != 0.0) return FeasibilityClass::kOrientationOnly;
    return FeasibilityClass::kInfeasibleIdentical;
  }
  return FeasibilityClass::kInfeasibleMirror;
}

bool rendezvous_feasible(const RobotAttributes& attrs) {
  return is_feasible(classify(attrs));
}

std::string describe(FeasibilityClass c) {
  switch (c) {
    case FeasibilityClass::kDifferentClocks:
      return "feasible: different clocks (tau != 1, Theorem 3)";
    case FeasibilityClass::kDifferentSpeeds:
      return "feasible: different speeds (v != 1, Theorem 2)";
    case FeasibilityClass::kOrientationOnly:
      return "feasible: different orientations with common chirality "
             "(chi = 1, 0 < phi < 2pi, Theorem 2)";
    case FeasibilityClass::kInfeasibleIdentical:
      return "infeasible: identical robots (difference map is zero)";
    case FeasibilityClass::kInfeasibleMirror:
      return "infeasible: mirror robots (difference map is singular)";
  }
  return "unknown";
}

double separation_lower_bound(const RobotAttributes& attrs,
                              const Vec2& offset) {
  const FeasibilityClass c = classify(attrs);
  if (is_feasible(c)) return 0.0;
  if (c == FeasibilityClass::kInfeasibleIdentical) return geom::norm(offset);

  // Mirror robots: S(t) − S′(t) = T∘·S(t) with T∘ singular but (for
  // phi != 0 or v != 1... here v = 1) generally non-zero.  The
  // difference trajectory lives on the line spanned by the columns of
  // T∘; the robots' separation is |offset − T∘·S(t)| ≥ distance from
  // `offset` to that line.
  const geom::Mat2 t_circ =
      geom::difference_matrix(attrs.speed, attrs.orientation, attrs.chirality);
  // Pick the larger column as the span direction.
  const Vec2 col1{t_circ.a, t_circ.c};
  const Vec2 col2{t_circ.b, t_circ.d};
  const Vec2 dir = geom::norm_sq(col1) >= geom::norm_sq(col2) ? col1 : col2;
  if (geom::norm(dir) < 1e-15) return geom::norm(offset);  // T∘ ≈ 0 (phi = 0)
  const Vec2 u = geom::normalized(dir);
  // Distance from offset to span(u).
  return std::abs(geom::cross(u, offset));
}

}  // namespace rv::rendezvous
