#pragma once

/// \file algorithm7.hpp
/// Algorithm 7 — the universal rendezvous trajectory of Section 4.
///
/// Round n (n = 1, 2, 3, ...):
///   1. wait at the initial position for 2·S(n)   (inactive phase),
///   2. perform SearchAll(n)  = Search(1) ... Search(n),
///   3. perform SearchAllRev(n) = Search(n) ... Search(1)
/// where S(n) is the duration of SearchAll(n).  The growing overlap of
/// the robots' inactive and active phases (Lemmas 9/10) guarantees a
/// meeting whenever Theorem 4 says one is possible.

#include <memory>
#include <string>

#include "search/emitter.hpp"
#include "traj/program.hpp"

namespace rv::rendezvous {

/// The universal rendezvous program of Algorithm 7.
class RendezvousProgram final : public traj::Program {
 public:
  /// An optional recorder receives marks "inactive n" / "searchall n" /
  /// "searchallrev n" with the local time each phase begins.
  explicit RendezvousProgram(traj::MarkRecorder* recorder = nullptr);

  [[nodiscard]] traj::Segment next() override;
  [[nodiscard]] std::string name() const override { return "algorithm7"; }

  /// The Algorithm 7 round currently being emitted.
  [[nodiscard]] int current_round() const { return n_; }

 private:
  enum class Stage { kWait, kSearchAll, kSearchAllRev };

  void begin_round();
  void mark(const std::string& label);

  int n_ = 0;
  Stage stage_ = Stage::kWait;
  int k_ = 1;  ///< inner Search(k) index within SearchAll/SearchAllRev
  std::unique_ptr<search::SearchRoundEmitter> emitter_;
  traj::MarkRecorder* recorder_;
  double local_clock_ = 0.0;
};

/// Factory helper matching the simulator's program-factory interface.
[[nodiscard]] std::shared_ptr<traj::Program> make_rendezvous_program();

}  // namespace rv::rendezvous
