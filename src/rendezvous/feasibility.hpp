#pragma once

/// \file feasibility.hpp
/// Theorem 4 — the feasibility characterisation.
///
/// Rendezvous of two robots whose relative attributes are
/// (v, τ, φ, χ) is feasible **iff**
///     τ ≠ 1   or   v ≠ 1   or   (χ = +1 and 0 < φ < 2π).
/// The two infeasible families are:
///  * *identical* robots  (v = τ = 1, φ = 0, χ = +1): the difference
///    map T∘ is the zero matrix — the separation never changes;
///  * *mirror* robots     (v = τ = 1, χ = −1, any φ): T∘ is singular —
///    the difference trajectory is confined to a line, so any
///    separation component perpendicular to that line is invariant.

#include <string>

#include "geom/attributes.hpp"
#include "geom/vec2.hpp"

namespace rv::rendezvous {

/// Why rendezvous is feasible (or not) for a given attribute tuple.
enum class FeasibilityClass {
  kDifferentClocks,        ///< τ ≠ 1 (Theorem 3)
  kDifferentSpeeds,        ///< τ = 1, v ≠ 1 (Theorem 2)
  kOrientationOnly,        ///< τ = 1, v = 1, χ = +1, 0 < φ < 2π (Theorem 2)
  kInfeasibleIdentical,    ///< identical robots — T∘ = 0
  kInfeasibleMirror,       ///< mirror robots — T∘ singular
};

/// True iff the class is one of the feasible families.
[[nodiscard]] bool is_feasible(FeasibilityClass c);

/// Classifies the relative attributes per Theorem 4.  Exact comparisons
/// are intentional: the theorem is a statement about exact equality of
/// hidden parameters.
[[nodiscard]] FeasibilityClass classify(const geom::RobotAttributes& attrs);

/// Theorem 4 predicate: τ ≠ 1 ∨ v ≠ 1 ∨ (χ = 1 ∧ 0 < φ < 2π).
[[nodiscard]] bool rendezvous_feasible(const geom::RobotAttributes& attrs);

/// Human-readable explanation of the classification.
[[nodiscard]] std::string describe(FeasibilityClass c);

/// For an *infeasible* tuple, the invariant lower bound on the
/// separation the robots can ever achieve, given initial offset d⃗:
///  * identical robots: |d⃗| (the separation is constant);
///  * mirror robots: the distance from d⃗ to the line spanned by the
///    (rank-1) difference map's column space.
/// Returns 0 for feasible tuples.
[[nodiscard]] double separation_lower_bound(const geom::RobotAttributes& attrs,
                                            const geom::Vec2& offset);

}  // namespace rv::rendezvous
