#pragma once

/// \file schedule.hpp
/// The phase-schedule algebra of Algorithm 7 (Section 4): round
/// durations, inactive/active phase start times (Lemma 8), the overlap
/// lemmas (Lemmas 9 and 10), and the rendezvous-round bound k*
/// (Lemmas 11–13).
///
/// All times are in the *local* clock of the robot executing the
/// algorithm; a robot with time unit τ realises these instants at
/// global time τ·(local instant).

#include <optional>

#include "mathx/binary.hpp"
#include "mathx/interval.hpp"

namespace rv::rendezvous {

/// S(n) = 12(π+1)·n·2ⁿ — time of SearchAll(n) (Equation (1)).
[[nodiscard]] double search_all_time(int n);

/// I(n) = 24(π+1)[(2n−4)·2ⁿ + 4] — local start of the nth inactive
/// phase (Lemma 8).
[[nodiscard]] double inactive_start(int n);

/// A(n) = 24(π+1)[(3n−4)·2ⁿ + 4] — local start of the nth active phase
/// (Lemma 8).
[[nodiscard]] double active_start(int n);

/// The nth inactive phase [I(n), A(n)] on the local clock.
[[nodiscard]] rv::mathx::Interval inactive_phase(int n);

/// The nth active phase [A(n), I(n+1)] on the local clock.
[[nodiscard]] rv::mathx::Interval active_phase(int n);

/// Global-time phases for a robot with time unit τ.
[[nodiscard]] rv::mathx::Interval inactive_phase_global(int n, double tau);
[[nodiscard]] rv::mathx::Interval active_phase_global(int n, double tau);

/// Lemma 9 — τ window (for parameters k, a) under which the kth active
/// phase of R (τ_R = 1) overlaps the (k+1+a)th inactive phase of R′
/// (time unit τ): [k/(k+1+a)·2^{−(a+1)}, (3/2)·k/(k+1+a)·2^{−(a+1)}].
/// Requires k ≥ 2(a+1).
[[nodiscard]] rv::mathx::Interval lemma9_tau_window(int k, int a);

/// Lemma 9 — overlap amount τ·A(k+1+a) − A(k) (valid when τ is inside
/// the window; may be negative outside it).
[[nodiscard]] double lemma9_overlap(double tau, int k, int a);

/// Lemma 10 — τ window [2/3·k/(k+a)·2^{−a}, k/(k+1+a)·2^{−a}] under
/// which the (k−1)st active phase of R overlaps the (k+a)th inactive
/// phase of R′.  Requires k ≥ 2(a+1).
[[nodiscard]] rv::mathx::Interval lemma10_tau_window(int k, int a);

/// Lemma 10 — overlap amount I(k) − τ·I(k+a).
[[nodiscard]] double lemma10_overlap(double tau, int k, int a);

/// Lemma 13 — upper bound on the Algorithm 7 round by which the robots
/// rendezvous, given clock ratio τ = t·2⁻ᵃ ∈ (0, 1) and the round n on
/// which the searching robot would find a *stationary* peer:
///  * t ∈ [1/2, 2/3]: k* = max{8(a+1), n + ⌈log₂(n/(a+1))⌉}
///  * t ∈ (2/3, 1):   k* = max{(a+1)·t/(1−t), n + ⌈log₂(n/(1−t))⌉}
/// \throws std::invalid_argument unless 0 < τ < 1 and n ≥ 1.
[[nodiscard]] int rendezvous_round_bound(double tau, int n);

/// Lemma 14 / Theorem 3 — upper bound on the *global* rendezvous time:
/// the searching robot completes k* rounds by local time I(k*+1); both
/// robots' clocks are within max(1, τ) of global time.
[[nodiscard]] double rendezvous_time_bound(double tau, int n);

/// Computes the actual overlap (in global time) between the active
/// phase `k` of the reference robot and any inactive phase of a robot
/// with time unit τ, scanning peer rounds; returns the best overlap
/// interval if positive.  This is the measured counterpart of
/// Lemmas 9/10 used by experiment E6.
[[nodiscard]] std::optional<rv::mathx::Interval> best_overlap_with_inactive(
    int k, double tau, int max_peer_round = 64);

}  // namespace rv::rendezvous
