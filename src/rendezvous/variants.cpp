#include "rendezvous/variants.hpp"

#include "rendezvous/schedule.hpp"

namespace rv::rendezvous {

using traj::Segment;
using traj::WaitSeg;

VariantRendezvousProgram::VariantRendezvousProgram(ActivePhaseOrder order)
    : order_(order) {
  begin_round();
}

void VariantRendezvousProgram::begin_round() {
  ++n_;
  stage_ = Stage::kWait;
}

int VariantRendezvousProgram::second_pass_first_k() const {
  return order_ == ActivePhaseOrder::kForwardThenReverse ? n_ : 1;
}

Segment VariantRendezvousProgram::next() {
  for (;;) {
    switch (stage_) {
      case Stage::kWait: {
        const double wait_time = 2.0 * search_all_time(n_);
        stage_ = Stage::kFirstPass;
        k_ = 1;
        emitter_ = std::make_unique<search::SearchRoundEmitter>(k_);
        return WaitSeg{{0.0, 0.0}, wait_time};
      }
      case Stage::kFirstPass: {
        if (!emitter_->done()) return emitter_->next();
        if (k_ < n_) {
          emitter_ = std::make_unique<search::SearchRoundEmitter>(++k_);
          continue;
        }
        stage_ = Stage::kSecondPass;
        k_ = second_pass_first_k();
        emitter_ = std::make_unique<search::SearchRoundEmitter>(k_);
        continue;
      }
      case Stage::kSecondPass: {
        if (!emitter_->done()) return emitter_->next();
        const bool reverse =
            order_ == ActivePhaseOrder::kForwardThenReverse;
        if (reverse ? (k_ > 1) : (k_ < n_)) {
          emitter_ = std::make_unique<search::SearchRoundEmitter>(
              reverse ? --k_ : ++k_);
          continue;
        }
        begin_round();
        continue;
      }
    }
  }
}

std::string VariantRendezvousProgram::name() const {
  return order_ == ActivePhaseOrder::kForwardThenReverse
             ? "algorithm7-variant(fwd+rev)"
             : "algorithm7-variant(fwd+fwd)";
}

std::shared_ptr<traj::Program> make_variant_rendezvous_program(
    ActivePhaseOrder order) {
  return std::make_shared<VariantRendezvousProgram>(order);
}

}  // namespace rv::rendezvous
