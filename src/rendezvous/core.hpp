#pragma once

/// \file core.hpp
/// High-level facade: "place two robots with these relative attributes
/// at distance d, give them visibility r, run the paper's algorithm,
/// report what happened."  This is the main entry point a downstream
/// user of the library calls; the examples and most benches go through
/// it.

#include <functional>
#include <memory>
#include <string>

#include "geom/attributes.hpp"
#include "rendezvous/feasibility.hpp"
#include "sim/simulator.hpp"

namespace rv::rendezvous {

/// Which common algorithm both robots execute.
enum class AlgorithmChoice {
  kAlgorithm4,  ///< the search trajectory used as rendezvous (Section 3)
  kAlgorithm7,  ///< the universal phase-schedule algorithm (Section 4)
};

/// A fully specified rendezvous scenario.  The reference robot R sits
/// at the origin with reference attributes; R′ starts at `offset` with
/// relative attributes `attrs`.
struct Scenario {
  geom::RobotAttributes attrs;   ///< attributes of R′ relative to R
  geom::Vec2 offset{1.0, 0.0};   ///< initial position of R′ (|offset| = d)
  double visibility = 0.05;      ///< r
  AlgorithmChoice algorithm = AlgorithmChoice::kAlgorithm7;
  double max_time = 1e9;         ///< simulation horizon
  /// Optional custom common program overriding `algorithm` (used by the
  /// ablation experiments, e.g. the A1 active-phase-order variants).
  /// Must return a fresh Program each call: invoked once per robot,
  /// plus once more to resolve the reported name when `program_name`
  /// is left empty.
  std::function<std::shared_ptr<traj::Program>()> program;
  std::string program_name;      ///< reported name when `program` is set
};

/// Scenario outcome: the simulator result plus derived quantities.
struct Outcome {
  sim::SimResult sim;             ///< raw simulation result
  FeasibilityClass feasibility;   ///< Theorem 4 classification
  double initial_distance = 0.0;  ///< d = |offset|
  std::string algorithm_name;
};

/// Builds the program factory for an algorithm choice.
[[nodiscard]] std::function<std::shared_ptr<traj::Program>()>
program_factory(AlgorithmChoice choice);

/// Runs a scenario.  \throws std::invalid_argument on invalid
/// attributes or non-positive d/r.
[[nodiscard]] Outcome run_scenario(const Scenario& scenario);

/// Convenience: the paper's *universal* behaviour — always Algorithm 7,
/// which solves rendezvous whenever Theorem 4 says it is solvable,
/// without knowing which attribute differs.
[[nodiscard]] Outcome run_universal(const geom::RobotAttributes& attrs,
                                    double d, double r,
                                    double max_time = 1e9);

}  // namespace rv::rendezvous
