// Additional simulator properties and edge cases: budget caps, exact
// boundary contacts, attribute interactions, result-field consistency.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "mathx/constants.hpp"
#include "search/algorithm4.hpp"
#include "search/times.hpp"
#include "sim/simulator.hpp"
#include "traj/path.hpp"
#include "traj/program.hpp"

namespace {

using namespace rv::sim;
using rv::geom::RobotAttributes;
using rv::geom::Vec2;
using rv::traj::Path;
using rv::traj::PathProgram;
using rv::traj::StationaryProgram;

std::shared_ptr<rv::traj::Program> line_to(const Vec2& target) {
  Path p;
  p.line_to(target);
  return std::make_shared<PathProgram>(p, "line");
}

TEST(SimProperties, EvalBudgetCapTerminatesGracefully) {
  // Two robots orbiting far apart: the sweep would run to the horizon;
  // a tiny eval budget must stop it early without meeting.
  Path orbit;
  orbit.line_to({1.0, 0.0});
  orbit.arc_around({0.0, 0.0}, rv::mathx::kTwoPi);
  orbit.line_to({0.0, 0.0});
  SimOptions opts;
  opts.visibility = 0.1;
  opts.max_time = 1e9;
  opts.max_evals = 50;
  TwoRobotSimulator sim(
      {std::make_shared<PathProgram>(orbit, "o1"), RobotAttributes{},
       {0.0, 0.0}},
      {std::make_shared<PathProgram>(orbit, "o2"), RobotAttributes{},
       {100.0, 0.0}},
      opts);
  const SimResult res = sim.run();
  EXPECT_FALSE(res.met);
  EXPECT_LE(res.evals, 60u);  // cap plus the trailing position evals
}

TEST(SimProperties, ContactExactlyAtSegmentBoundary) {
  // Robot 2 walks exactly up to the visibility boundary and stops
  // (waits) there: contact occurs exactly at the end of its line
  // segment.
  Path approach;
  approach.line_to({-7.0, 0.0});  // from (10,0) to (3,0) globally
  SimOptions opts;
  opts.visibility = 3.0;
  opts.max_time = 100.0;
  TwoRobotSimulator sim(
      {std::make_shared<StationaryProgram>(), RobotAttributes{}, {0.0, 0.0}},
      {std::make_shared<PathProgram>(approach, "a"), RobotAttributes{},
       {10.0, 0.0}},
      opts);
  const SimResult res = sim.run();
  ASSERT_TRUE(res.met);
  EXPECT_NEAR(res.time, 7.0, 1e-6);
  EXPECT_NEAR(res.distance, 3.0, 1e-6);
}

TEST(SimProperties, FastSearcherAttributeScalesTime) {
  // A searcher with speed 2 runs the same local program at twice the
  // pace: the same target is found in half the time (same trajectory,
  // compressed clock).
  const Vec2 target{1.3, 0.9};
  SimOptions opts;
  opts.visibility = 0.25;
  opts.max_time = 1e5;
  const auto slow = simulate_search(rv::search::make_search_program(), target,
                                    opts, RobotAttributes{});
  RobotAttributes fast;
  fast.speed = 2.0;
  fast.time_unit = 0.5;  // distance unit v·τ = 1: identical geometry
  const auto quick = simulate_search(rv::search::make_search_program(), target,
                                     opts, fast);
  ASSERT_TRUE(slow.met);
  ASSERT_TRUE(quick.met);
  EXPECT_NEAR(quick.time, slow.time / 2.0, 1e-5 * slow.time);
}

TEST(SimProperties, ResultFieldsAreConsistent) {
  SimOptions opts;
  opts.visibility = 1.0;
  opts.max_time = 100.0;
  TwoRobotSimulator sim(
      {line_to({50.0, 0.0}), RobotAttributes{}, {0.0, 0.0}},
      {line_to({-50.0, 0.0}), RobotAttributes{}, {10.0, 0.0}}, opts);
  const SimResult res = sim.run();
  ASSERT_TRUE(res.met);
  EXPECT_NEAR(rv::geom::distance(res.position1, res.position2), res.distance,
              1e-12);
  EXPECT_LE(res.min_distance, res.distance + 1e-9);
  EXPECT_GE(res.time, 0.0);
  EXPECT_LE(res.time, opts.max_time);
}

TEST(SimProperties, HorizonFieldExactWhenNotMet) {
  SimOptions opts;
  opts.visibility = 0.5;
  opts.max_time = 42.0;
  TwoRobotSimulator sim(
      {std::make_shared<StationaryProgram>(), RobotAttributes{}, {0.0, 0.0}},
      {std::make_shared<StationaryProgram>(), RobotAttributes{},
       {100.0, 0.0}},
      opts);
  const SimResult res = sim.run();
  EXPECT_FALSE(res.met);
  EXPECT_LE(res.time, opts.max_time + 1e-9);
}

TEST(SimProperties, MirroredChiralityPairSymmetricApproach) {
  // Two robots with mirrored chirality running the same quarter-arc
  // program: their trajectories are reflections, so the y components
  // cancel symmetrically.  Verify the meet happens on the x axis
  // midline.
  Path quarter;
  quarter.line_to({5.0, 0.0});
  quarter.arc_around({0.0, 0.0}, rv::mathx::kPi / 2.0);
  RobotAttributes mirrored;
  mirrored.chirality = -1;
  SimOptions opts;
  opts.visibility = 0.5;
  opts.max_time = 50.0;
  TwoRobotSimulator sim(
      {std::make_shared<PathProgram>(quarter, "q1"), RobotAttributes{},
       {0.0, -4.0}},
      {std::make_shared<PathProgram>(quarter, "q2"), mirrored, {0.0, 4.0}},
      opts);
  const SimResult res = sim.run();
  if (res.met) {
    // Mirror symmetry about y = 0: the midpoint of the two robots sits
    // on the axis.
    EXPECT_NEAR(0.5 * (res.position1.y + res.position2.y), 0.0, 1e-6);
  }
  // Whether or not they meet, the separation history is symmetric —
  // smoke-assert the run completed within budget.
  EXPECT_LE(res.evals, 1000000u);
}

TEST(SimProperties, TinyTimeUnitRobotIsFastForward) {
  // τ = 0.01 compresses the peer's schedule 100×: its first zigs happen
  // almost immediately in global time.  Check the stream clock scaling
  // end to end: a unit local line takes 0.01 global units.
  RobotAttributes tiny;
  tiny.time_unit = 0.01;
  Path unit_line;
  unit_line.line_to({1.0, 0.0});
  rv::traj::GlobalSegmentStream stream(
      std::make_shared<PathProgram>(unit_line, "u"), tiny, {0.0, 0.0});
  const auto seg = stream.next();
  EXPECT_NEAR(seg.t1 - seg.t0, 0.01, 1e-12);
  EXPECT_NEAR(seg.speed(), 1.0, 1e-9);  // speed is still v = 1
}

TEST(SimProperties, SearchIsRotationallyCovariant) {
  // Rotating the target around the origin changes *when* it is found
  // but never *whether*; all rotations are found within the same
  // guaranteed round.
  const double d = 1.7, r = 0.2;
  const double guarantee = rv::search::time_first_rounds(
      rv::search::guaranteed_round(d, r));
  for (int i = 0; i < 12; ++i) {
    const double ang = rv::mathx::kTwoPi * i / 12.0;
    SimOptions opts;
    opts.visibility = r;
    opts.max_time = guarantee + 1.0;
    const auto res = simulate_search(rv::search::make_search_program(),
                                     rv::geom::polar(d, ang), opts);
    EXPECT_TRUE(res.met) << "angle " << ang;
    EXPECT_LE(res.time, guarantee + 1e-6) << "angle " << ang;
  }
}

// ---------------------------------------------------------------------------
// Failure injection
// ---------------------------------------------------------------------------

/// A program that emits a poisoned segment after a few good ones.
class PoisonProgram final : public rv::traj::Program {
 public:
  explicit PoisonProgram(int poison_after) : remaining_(poison_after) {}
  [[nodiscard]] rv::traj::Segment next() override {
    if (remaining_-- > 0) {
      const rv::traj::Segment good =
          rv::traj::WaitSeg{{0.0, 0.0}, 1.0};
      return good;
    }
    return rv::traj::LineSeg{{0.0, 0.0}, {std::nan(""), 0.0}};
  }
  [[nodiscard]] std::string name() const override { return "poison"; }

 private:
  int remaining_;
};

TEST(FailureInjection, StreamRejectsNaNSegments) {
  rv::traj::GlobalSegmentStream stream(std::make_shared<PoisonProgram>(2),
                                       RobotAttributes{}, {0.0, 0.0});
  EXPECT_NO_THROW((void)stream.next());
  EXPECT_NO_THROW((void)stream.next());
  EXPECT_THROW((void)stream.next(), std::invalid_argument);
}

TEST(FailureInjection, SimulatorSurfacesProgramErrors) {
  SimOptions opts;
  opts.visibility = 0.5;
  opts.max_time = 100.0;
  TwoRobotSimulator sim(
      {std::make_shared<PoisonProgram>(1), RobotAttributes{}, {0.0, 0.0}},
      {std::make_shared<StationaryProgram>(), RobotAttributes{},
       {10.0, 0.0}},
      opts);
  EXPECT_THROW((void)sim.run(), std::invalid_argument);
}

TEST(FailureInjection, NegativeWaitRejected) {
  class NegativeWait final : public rv::traj::Program {
   public:
    [[nodiscard]] rv::traj::Segment next() override {
      return rv::traj::WaitSeg{{0.0, 0.0}, -5.0};
    }
    [[nodiscard]] std::string name() const override { return "negwait"; }
  };
  rv::traj::GlobalSegmentStream stream(std::make_shared<NegativeWait>(),
                                       RobotAttributes{}, {0.0, 0.0});
  EXPECT_THROW((void)stream.next(), std::invalid_argument);
}

}  // namespace
