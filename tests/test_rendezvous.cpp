// Tests for the rendezvous module: the Lemma 8 schedule algebra, the
// Algorithm 7 program structure, the overlap lemmas, the Lemma 13 round
// bound, and the Theorem 4 feasibility classification.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "geom/difference_map.hpp"
#include "mathx/binary.hpp"
#include "mathx/constants.hpp"
#include "rendezvous/algorithm7.hpp"
#include "rendezvous/core.hpp"
#include "rendezvous/feasibility.hpp"
#include "rendezvous/schedule.hpp"
#include "search/algorithm4.hpp"
#include "search/emitter.hpp"
#include "search/times.hpp"

namespace {

using namespace rv::rendezvous;
using rv::geom::RobotAttributes;
using rv::geom::Vec2;
using rv::mathx::Interval;
using rv::mathx::kPi;

// ---------------------------------------------------------------------------
// Lemma 8 schedule algebra
// ---------------------------------------------------------------------------

TEST(Schedule, SearchAllTimeClosedForm) {
  // S(n) = 12(π+1)·n·2ⁿ must equal the prefix sums of Lemma 2.
  for (int n = 1; n <= 14; ++n) {
    EXPECT_NEAR(search_all_time(n), rv::search::time_first_rounds(n),
                1e-9 * search_all_time(n))
        << n;
  }
  EXPECT_THROW((void)search_all_time(0), std::invalid_argument);
}

TEST(Schedule, FirstInactivePhaseStartsAtZero) {
  EXPECT_DOUBLE_EQ(inactive_start(1), 0.0);
}

TEST(Schedule, PhaseIdentities) {
  for (int n = 1; n <= 12; ++n) {
    const double s = search_all_time(n);
    // A(n) − I(n) = 2S(n): the inactive phase lasts 2S(n).
    EXPECT_NEAR(active_start(n) - inactive_start(n), 2.0 * s, 1e-6) << n;
    // I(n+1) − A(n) = 2S(n): the active phase lasts 2S(n).
    EXPECT_NEAR(inactive_start(n + 1) - active_start(n), 2.0 * s, 1e-6) << n;
    // Round n therefore lasts 4S(n).
    EXPECT_NEAR(inactive_start(n + 1) - inactive_start(n), 4.0 * s, 1e-6) << n;
  }
}

TEST(Schedule, PhaseIntervalHelpers) {
  const Interval inact = inactive_phase(3);
  EXPECT_DOUBLE_EQ(inact.lo, inactive_start(3));
  EXPECT_DOUBLE_EQ(inact.hi, active_start(3));
  const Interval act = active_phase(3);
  EXPECT_DOUBLE_EQ(act.lo, active_start(3));
  EXPECT_DOUBLE_EQ(act.hi, inactive_start(4));
  // Global scaling by τ.
  const Interval g = inactive_phase_global(3, 0.5);
  EXPECT_DOUBLE_EQ(g.lo, 0.5 * inact.lo);
  EXPECT_DOUBLE_EQ(g.hi, 0.5 * inact.hi);
  EXPECT_THROW((void)inactive_phase_global(3, 0.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Algorithm 7 program structure
// ---------------------------------------------------------------------------

TEST(Algorithm7Program, MarksMatchLemma8Schedule) {
  rv::traj::MarkRecorder rec;
  RendezvousProgram prog(&rec);
  while (prog.current_round() <= 4) (void)prog.next();
  for (int n = 1; n <= 4; ++n) {
    const auto* inact = rec.find("inactive " + std::to_string(n));
    ASSERT_NE(inact, nullptr) << n;
    EXPECT_NEAR(inact->local_time, inactive_start(n),
                1e-9 * (1.0 + inactive_start(n)))
        << "I(" << n << ")";
    const auto* act = rec.find("searchall " + std::to_string(n));
    ASSERT_NE(act, nullptr) << n;
    EXPECT_NEAR(act->local_time, active_start(n),
                1e-9 * (1.0 + active_start(n)))
        << "A(" << n << ")";
    // SearchAllRev begins exactly S(n) after the active phase starts.
    const auto* rev = rec.find("searchallrev " + std::to_string(n));
    ASSERT_NE(rev, nullptr) << n;
    EXPECT_NEAR(rev->local_time, active_start(n) + search_all_time(n),
                1e-9 * (1.0 + rev->local_time))
        << n;
  }
}

TEST(Algorithm7Program, EmitsContinuousTrajectory) {
  RendezvousProgram prog;
  Vec2 cursor{0.0, 0.0};
  int count = 0;
  while (prog.current_round() <= 2) {
    const auto seg = prog.next();
    ASSERT_TRUE(rv::geom::approx_equal(rv::traj::start_point(seg), cursor,
                                       1e-9))
        << "discontinuity at segment " << count;
    cursor = rv::traj::end_point(seg);
    ++count;
  }
  EXPECT_GT(count, 20);
}

TEST(Algorithm7Program, FirstSegmentIsTheRound1Wait) {
  RendezvousProgram prog;
  const auto seg = prog.next();
  const auto* wait = std::get_if<rv::traj::WaitSeg>(&seg);
  ASSERT_NE(wait, nullptr);
  EXPECT_NEAR(wait->duration, 2.0 * search_all_time(1), 1e-9);
}

TEST(Algorithm7Program, SearchAllRevMirrorsSearchAll) {
  // Within round 2 the active phase is Search(1)Search(2) followed by
  // Search(2)Search(1): total active time 2S(2).
  rv::traj::MarkRecorder rec;
  RendezvousProgram prog(&rec);
  while (prog.current_round() <= 2) (void)prog.next();
  const auto* a2 = rec.find("searchall 2");
  const auto* i3 = rec.find("inactive 3");
  ASSERT_NE(a2, nullptr);
  ASSERT_NE(i3, nullptr);
  EXPECT_NEAR(i3->local_time - a2->local_time, 2.0 * search_all_time(2),
              1e-9 * (1.0 + i3->local_time));
}

TEST(Algorithm7Program, ActiveForwardPassIsAnAlgorithm4Prefix) {
  // Algorithm 5 (SearchAll(n)) is by definition the first n rounds of
  // Algorithm 4: the segments Algorithm 7 emits in a forward pass must
  // be byte-for-byte the prefix of the standalone search program.
  rv::traj::MarkRecorder rec;
  RendezvousProgram rdv(&rec);
  rv::search::SearchProgram search;

  // Skip the round-1 wait, then compare the whole SearchAll(1) pass.
  const auto wait1 = rdv.next();
  ASSERT_TRUE(std::holds_alternative<rv::traj::WaitSeg>(wait1));
  rv::search::SearchRoundEmitter probe(1);
  const auto pass_segments = probe.total_segments();
  for (std::uint64_t i = 0; i < pass_segments; ++i) {
    ASSERT_EQ(rdv.next(), search.next()) << "segment " << i;
  }
}

// ---------------------------------------------------------------------------
// Overlap lemmas (Lemmas 9 and 10)
// ---------------------------------------------------------------------------

TEST(OverlapLemmas, Lemma9WindowShape) {
  const Interval w = lemma9_tau_window(8, 0);
  // k/(k+1+a)·2^{−1} = 8/9·1/2 = 4/9; upper = 3/2·lower = 2/3.
  EXPECT_NEAR(w.lo, 4.0 / 9.0, 1e-12);
  EXPECT_NEAR(w.hi, 2.0 / 3.0, 1e-12);
  EXPECT_THROW((void)lemma9_tau_window(1, 0), std::invalid_argument);
  EXPECT_THROW((void)lemma9_tau_window(8, -1), std::invalid_argument);
}

class Lemma9Property : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Lemma9Property, OverlapIsPositiveAndMatchesIntervalAlgebra) {
  const auto [k, a] = GetParam();
  const Interval w = lemma9_tau_window(k, a);
  // Sample τ inside the window and check the claimed overlap appears
  // between the phase intervals themselves.
  for (const double frac : {0.1, 0.5, 0.9}) {
    const double tau = w.lo + frac * (w.hi - w.lo);
    const double claimed = lemma9_overlap(tau, k, a);
    EXPECT_GT(claimed, 0.0) << "tau=" << tau;
    // Lemma 9's geometry: τ·I(k+1+a) ≤ A(k) ≤ τ·A(k+1+a); the overlap
    // between R's active phase k and R′'s inactive phase (k+1+a) is
    // then exactly τ·A(k+1+a) − A(k).
    const Interval active = active_phase_global(k, 1.0);
    const Interval inactive = inactive_phase_global(k + 1 + a, tau);
    const double measured = rv::mathx::overlap_length(active, inactive);
    EXPECT_NEAR(measured, std::min(claimed, active.length()),
                1e-6 * (1.0 + measured))
        << "k=" << k << " a=" << a << " tau=" << tau;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, Lemma9Property,
                         ::testing::Values(std::make_tuple(2, 0),
                                           std::make_tuple(4, 0),
                                           std::make_tuple(8, 0),
                                           std::make_tuple(12, 1),
                                           std::make_tuple(16, 1),
                                           std::make_tuple(10, 2),
                                           std::make_tuple(20, 2)));

TEST(OverlapLemmas, Lemma10WindowShape) {
  const Interval w = lemma10_tau_window(8, 0);
  EXPECT_NEAR(w.lo, (2.0 / 3.0) * (8.0 / 8.0), 1e-12);
  EXPECT_NEAR(w.hi, 8.0 / 9.0, 1e-12);
}

class Lemma10Property : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(Lemma10Property, OverlapMatchesIntervalAlgebra) {
  const auto [k, a] = GetParam();
  const Interval w = lemma10_tau_window(k, a);
  for (const double frac : {0.1, 0.5, 0.9}) {
    const double tau = w.lo + frac * (w.hi - w.lo);
    const double claimed = lemma10_overlap(tau, k, a);
    EXPECT_GT(claimed, 0.0);
    // Lemma 10: the (k−1)st active phase of R ends at I(k); R′'s
    // (k+a)th inactive phase starts at τ·I(k+a) before that.
    const Interval active = active_phase_global(k - 1, 1.0);
    const Interval inactive = inactive_phase_global(k + a, tau);
    const double measured = rv::mathx::overlap_length(active, inactive);
    EXPECT_NEAR(measured, std::min(claimed, active.length()),
                1e-6 * (1.0 + measured))
        << "k=" << k << " a=" << a << " tau=" << tau;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, Lemma10Property,
                         ::testing::Values(std::make_tuple(4, 0),
                                           std::make_tuple(8, 0),
                                           std::make_tuple(16, 0),
                                           std::make_tuple(12, 1),
                                           std::make_tuple(24, 2)));

TEST(OverlapLemmas, OverlapGrowsWithoutBound) {
  // For τ = 1/2 (a = 0, t = 1/2) the Lemma 9 overlap must grow with k:
  // this is the engine of Theorem 3.
  double prev = 0.0;
  for (int k = 8; k <= 20; k += 2) {
    const double o = lemma9_overlap(0.5, k, 0);
    EXPECT_GT(o, prev) << k;
    prev = o;
  }
  EXPECT_GT(prev, search_all_time(8));  // eventually exceeds S(n)
}

TEST(OverlapLemmas, BestOverlapScanFindsWindows) {
  const auto best = best_overlap_with_inactive(8, 0.5);
  ASSERT_TRUE(best.has_value());
  EXPECT_GT(best->length(), 0.0);
}

// ---------------------------------------------------------------------------
// Lemma 13 round bound
// ---------------------------------------------------------------------------

TEST(RoundBound, PowerOfTwoClockUsesFirstBranch) {
  // τ = 1/2 → t = 1/2, a = 0: k* = max(8, n + ⌈log₂ n⌉).
  EXPECT_EQ(rendezvous_round_bound(0.5, 2), 8);
  EXPECT_EQ(rendezvous_round_bound(0.5, 10), 14);
  // τ = 1/4 → a = 1: k* = max(16, ...).
  EXPECT_EQ(rendezvous_round_bound(0.25, 2), 16);
}

TEST(RoundBound, NearOneClockUsesSecondBranch) {
  // τ = 0.9 → t = 0.9, a = 0: k* = max(0.9/0.1, n + ⌈log₂(n/0.1)⌉).
  const int k = rendezvous_round_bound(0.9, 2);
  EXPECT_EQ(k, 9);  // max(0.9/0.1, 2 + ⌈log₂ 20⌉) = max(9, 7)
}

TEST(RoundBound, MonotoneInFindRound) {
  for (const double tau : {0.5, 0.3, 0.75, 0.9, 0.99}) {
    int prev = 0;
    for (int n = 1; n <= 12; ++n) {
      const int k = rendezvous_round_bound(tau, n);
      EXPECT_GE(k, prev) << "tau=" << tau << " n=" << n;
      EXPECT_GE(k, n) << "bound below find round";
      prev = k;
    }
  }
}

TEST(RoundBound, DivergesAsTauApproachesOne) {
  // The closer τ is to 1, the harder symmetry breaking gets.
  EXPECT_LT(rendezvous_round_bound(0.75, 4), rendezvous_round_bound(0.9, 4));
  EXPECT_LT(rendezvous_round_bound(0.9, 4), rendezvous_round_bound(0.99, 4));
}

TEST(RoundBound, DomainChecks) {
  EXPECT_THROW((void)rendezvous_round_bound(0.0, 2), std::invalid_argument);
  EXPECT_THROW((void)rendezvous_round_bound(1.0, 2), std::invalid_argument);
  EXPECT_THROW((void)rendezvous_round_bound(0.5, 0), std::invalid_argument);
}

TEST(RoundBound, TimeBoundIsEndOfRoundKStar) {
  const int k = rendezvous_round_bound(0.5, 2);
  EXPECT_DOUBLE_EQ(rendezvous_time_bound(0.5, 2), inactive_start(k + 1));
}

// ---------------------------------------------------------------------------
// Theorem 4 feasibility
// ---------------------------------------------------------------------------

RobotAttributes attrs(double v, double tau, double phi, int chi) {
  RobotAttributes a;
  a.speed = v;
  a.time_unit = tau;
  a.orientation = phi;
  a.chirality = chi;
  return a;
}

TEST(Feasibility, TruthTable) {
  // τ ≠ 1 ⇒ feasible regardless of everything else.
  EXPECT_TRUE(rendezvous_feasible(attrs(1.0, 0.5, 0.0, 1)));
  EXPECT_TRUE(rendezvous_feasible(attrs(1.0, 2.0, 0.0, -1)));
  EXPECT_TRUE(rendezvous_feasible(attrs(1.0, 0.99, kPi, -1)));
  // v ≠ 1, τ = 1 ⇒ feasible.
  EXPECT_TRUE(rendezvous_feasible(attrs(2.0, 1.0, 0.0, 1)));
  EXPECT_TRUE(rendezvous_feasible(attrs(0.5, 1.0, 0.0, -1)));
  // v = τ = 1: feasible iff χ = 1 and φ ≠ 0.
  EXPECT_TRUE(rendezvous_feasible(attrs(1.0, 1.0, 1.0, 1)));
  EXPECT_TRUE(rendezvous_feasible(attrs(1.0, 1.0, kPi, 1)));
  EXPECT_FALSE(rendezvous_feasible(attrs(1.0, 1.0, 0.0, 1)));
  EXPECT_FALSE(rendezvous_feasible(attrs(1.0, 1.0, 0.0, -1)));
  EXPECT_FALSE(rendezvous_feasible(attrs(1.0, 1.0, 1.0, -1)));
  EXPECT_FALSE(rendezvous_feasible(attrs(1.0, 1.0, kPi, -1)));
}

TEST(Feasibility, ClassificationPriorities) {
  EXPECT_EQ(classify(attrs(2.0, 0.5, 1.0, -1)),
            FeasibilityClass::kDifferentClocks);
  EXPECT_EQ(classify(attrs(2.0, 1.0, 1.0, -1)),
            FeasibilityClass::kDifferentSpeeds);
  EXPECT_EQ(classify(attrs(1.0, 1.0, 1.0, 1)),
            FeasibilityClass::kOrientationOnly);
  EXPECT_EQ(classify(attrs(1.0, 1.0, 0.0, 1)),
            FeasibilityClass::kInfeasibleIdentical);
  EXPECT_EQ(classify(attrs(1.0, 1.0, 2.0, -1)),
            FeasibilityClass::kInfeasibleMirror);
}

TEST(Feasibility, DescribeIsNonEmptyForAllClasses) {
  for (const auto c :
       {FeasibilityClass::kDifferentClocks, FeasibilityClass::kDifferentSpeeds,
        FeasibilityClass::kOrientationOnly,
        FeasibilityClass::kInfeasibleIdentical,
        FeasibilityClass::kInfeasibleMirror}) {
    EXPECT_FALSE(describe(c).empty());
    EXPECT_EQ(is_feasible(c),
              describe(c).rfind("feasible", 0) == 0);
  }
}

TEST(Feasibility, SeparationLowerBoundIdentical) {
  const Vec2 offset{3.0, 4.0};
  EXPECT_DOUBLE_EQ(separation_lower_bound(attrs(1.0, 1.0, 0.0, 1), offset),
                   5.0);
}

TEST(Feasibility, SeparationLowerBoundMirror) {
  // Mirror robots with φ = 0: T∘ = diag(0, 2) — difference confined to
  // the y axis.  Offset (3, 4): the x component 3 is invariant.
  EXPECT_NEAR(separation_lower_bound(attrs(1.0, 1.0, 0.0, -1), {3.0, 4.0}),
              3.0, 1e-12);
  // Offset aligned with the difference line: lower bound 0 (but the
  // tuple is still infeasible in general position).
  EXPECT_NEAR(separation_lower_bound(attrs(1.0, 1.0, 0.0, -1), {0.0, 4.0}),
              0.0, 1e-12);
}

TEST(Feasibility, SeparationLowerBoundZeroForFeasible) {
  EXPECT_DOUBLE_EQ(separation_lower_bound(attrs(2.0, 1.0, 0.0, 1), {1.0, 0.0}),
                   0.0);
}

TEST(Feasibility, MirrorLowerBoundIsPerpendicularComponent) {
  // General φ: the difference line is span(T∘ columns); check against
  // a direct computation.
  const double phi = 1.1;
  const auto a = attrs(1.0, 1.0, phi, -1);
  const auto t_circ = rv::geom::difference_matrix(1.0, phi, -1);
  const Vec2 col{t_circ.a, t_circ.c};
  const Vec2 u = rv::geom::normalized(col);
  const Vec2 offset{2.0, -1.0};
  EXPECT_NEAR(separation_lower_bound(a, offset),
              std::abs(rv::geom::cross(u, offset)), 1e-12);
}

// ---------------------------------------------------------------------------
// Core facade
// ---------------------------------------------------------------------------

TEST(CoreFacade, ValidatesScenario) {
  Scenario s;
  s.offset = {0.0, 0.0};
  EXPECT_THROW((void)run_scenario(s), std::invalid_argument);
  s.offset = {1.0, 0.0};
  s.visibility = 0.0;
  EXPECT_THROW((void)run_scenario(s), std::invalid_argument);
}

TEST(CoreFacade, FactorySelectsAlgorithm) {
  EXPECT_EQ(program_factory(AlgorithmChoice::kAlgorithm4)()->name(),
            "algorithm4");
  EXPECT_EQ(program_factory(AlgorithmChoice::kAlgorithm7)()->name(),
            "algorithm7");
}

TEST(CoreFacade, QuickSpeedDifferenceScenarioMeets) {
  Scenario s;
  s.attrs = attrs(2.0, 1.0, 0.0, 1);
  s.offset = {1.0, 0.0};
  s.visibility = 0.25;
  s.algorithm = AlgorithmChoice::kAlgorithm4;
  s.max_time = 1e5;
  const Outcome out = run_scenario(s);
  EXPECT_TRUE(out.sim.met);
  EXPECT_EQ(out.feasibility, FeasibilityClass::kDifferentSpeeds);
  EXPECT_DOUBLE_EQ(out.initial_distance, 1.0);
  EXPECT_EQ(out.algorithm_name, "algorithm4");
}

}  // namespace
