// Tests for the ablation variants: VariantRoundEmitter (spacing/wait
// knobs) and VariantRendezvousProgram (active-phase order).

#include <gtest/gtest.h>

#include <cmath>

#include "mathx/constants.hpp"
#include "rendezvous/algorithm7.hpp"
#include "rendezvous/schedule.hpp"
#include "rendezvous/variants.hpp"
#include "search/emitter.hpp"
#include "search/times.hpp"
#include "search/variants.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace rv::search;
using rv::geom::Vec2;
using rv::traj::Segment;

// ---------------------------------------------------------------------------
// VariantRoundEmitter
// ---------------------------------------------------------------------------

TEST(VariantEmitter, DefaultOptionsReproducePaperEmitter) {
  for (int k = 1; k <= 4; ++k) {
    SearchRoundEmitter paper(k);
    VariantRoundEmitter variant(k, VariantOptions{});
    while (!paper.done()) {
      ASSERT_FALSE(variant.done());
      const Segment a = paper.next();
      const Segment b = variant.next();
      EXPECT_EQ(a.index(), b.index());
      EXPECT_NEAR(rv::traj::duration(a), rv::traj::duration(b), 1e-12);
      EXPECT_TRUE(rv::geom::approx_equal(rv::traj::start_point(a),
                                         rv::traj::start_point(b), 1e-12));
    }
    EXPECT_TRUE(variant.done());
  }
}

TEST(VariantEmitter, NoWaitDropsExactlyTheWait) {
  for (int k = 1; k <= 5; ++k) {
    VariantOptions with;
    VariantOptions without;
    without.include_wait = false;
    double dur_with = 0.0, dur_without = 0.0;
    for (const auto* opts : {&with, &without}) {
      VariantRoundEmitter emitter(k, *opts);
      double acc = 0.0;
      while (!emitter.done()) acc += rv::traj::duration(emitter.next());
      (opts == &with ? dur_with : dur_without) = acc;
    }
    EXPECT_NEAR(dur_with - dur_without, search_round_wait(k),
                1e-9 * (1.0 + dur_with))
        << "k = " << k;
  }
}

TEST(VariantEmitter, TighterSpacingEmitsMoreCircles) {
  // c = 1 must use ~2x the circles of c = 2 (and cost ~2x the time).
  double durations[2] = {0.0, 0.0};
  const double spacings[2] = {1.0, 2.0};
  for (int s = 0; s < 2; ++s) {
    VariantOptions opts;
    opts.spacing_factor = spacings[s];
    opts.include_wait = false;
    VariantRoundEmitter emitter(3, opts);
    while (!emitter.done()) durations[s] += rv::traj::duration(emitter.next());
  }
  EXPECT_GT(durations[0], 1.8 * durations[1]);
  EXPECT_LT(durations[0], 2.3 * durations[1]);
}

TEST(VariantEmitter, WiderSpacingStillContinuous) {
  VariantOptions opts;
  opts.spacing_factor = 3.0;
  VariantRoundEmitter emitter(3, opts);
  Vec2 cursor{0.0, 0.0};
  while (!emitter.done()) {
    const Segment seg = emitter.next();
    if (rv::traj::duration(seg) == 0.0) continue;
    ASSERT_TRUE(
        rv::geom::approx_equal(rv::traj::start_point(seg), cursor, 1e-9));
    cursor = rv::traj::end_point(seg);
  }
}

TEST(VariantEmitter, Validation) {
  EXPECT_THROW(VariantRoundEmitter(0, VariantOptions{}),
               std::invalid_argument);
  VariantOptions bad;
  bad.spacing_factor = 0.0;
  EXPECT_THROW(VariantRoundEmitter(2, bad), std::invalid_argument);
  VariantRoundEmitter emitter(1, VariantOptions{});
  while (!emitter.done()) (void)emitter.next();
  EXPECT_THROW((void)emitter.next(), std::logic_error);
}

TEST(VariantSearchProgram, AdvancesRounds) {
  VariantOptions opts;
  auto prog = make_variant_search_program(opts);
  EXPECT_NE(prog->name().find("spacing"), std::string::npos);
  // Pull two rounds' worth of segments.
  auto* typed = dynamic_cast<VariantSearchProgram*>(prog.get());
  ASSERT_NE(typed, nullptr);
  while (typed->current_round() < 3) (void)prog->next();
  EXPECT_GE(typed->current_round(), 3);
}

TEST(VariantSearchProgram, WideSpacingStillSolvesSearchEventually) {
  // Coverage voided per round, but shrinking rho in later rounds
  // still finds the target.
  VariantOptions opts;
  opts.spacing_factor = 3.0;
  rv::sim::SimOptions sopts;
  sopts.visibility = 0.1;
  sopts.max_time = 1e5;
  const auto res = rv::sim::simulate_search(make_variant_search_program(opts),
                                            {1.2, 0.7}, sopts);
  EXPECT_TRUE(res.met);
}

// ---------------------------------------------------------------------------
// VariantRendezvousProgram
// ---------------------------------------------------------------------------

TEST(VariantRendezvous, ForwardReverseMatchesPaperProgram) {
  rv::rendezvous::RendezvousProgram paper;
  rv::rendezvous::VariantRendezvousProgram variant(
      rv::rendezvous::ActivePhaseOrder::kForwardThenReverse);
  for (int i = 0; i < 5000; ++i) {
    const Segment a = paper.next();
    const Segment b = variant.next();
    ASSERT_EQ(a.index(), b.index()) << "segment " << i;
    ASSERT_NEAR(rv::traj::duration(a), rv::traj::duration(b), 1e-12)
        << "segment " << i;
  }
}

TEST(VariantRendezvous, ForwardTwiceKeepsDurations) {
  // Different order, same per-round time budget: the schedule of
  // Lemma 8 is preserved.
  rv::rendezvous::VariantRendezvousProgram fwd2(
      rv::rendezvous::ActivePhaseOrder::kForwardTwice);
  double clock = 0.0;
  while (fwd2.current_round() <= 3) clock += rv::traj::duration(fwd2.next());
  // After finishing round 3 the clock is at I(4) (up to the segment
  // that crossed the boundary).
  EXPECT_NEAR(clock, rv::rendezvous::inactive_start(4),
              2.0 * rv::rendezvous::search_all_time(4) + 1e-6);
}

TEST(VariantRendezvous, BothOrdersSolveClockRendezvous) {
  for (const auto order :
       {rv::rendezvous::ActivePhaseOrder::kForwardThenReverse,
        rv::rendezvous::ActivePhaseOrder::kForwardTwice}) {
    rv::geom::RobotAttributes a;
    a.time_unit = 0.5;
    rv::sim::SimOptions opts;
    opts.visibility = 0.4;
    opts.max_time = 1e6;
    const auto res = rv::sim::simulate_rendezvous(
        [order] {
          return rv::rendezvous::make_variant_rendezvous_program(order);
        },
        a, {1.0, 0.0}, opts);
    EXPECT_TRUE(res.met) << rv::rendezvous::VariantRendezvousProgram(order)
                                .name();
  }
}

TEST(VariantRendezvous, Names) {
  EXPECT_NE(rv::rendezvous::VariantRendezvousProgram(
                rv::rendezvous::ActivePhaseOrder::kForwardThenReverse)
                .name()
                .find("fwd+rev"),
            std::string::npos);
  EXPECT_NE(rv::rendezvous::VariantRendezvousProgram(
                rv::rendezvous::ActivePhaseOrder::kForwardTwice)
                .name()
                .find("fwd+fwd"),
            std::string::npos);
}

}  // namespace
