// Tests for deterministic process sharding (engine/shard): plan
// properties, merge validation, and the load-bearing invariant — a
// sharded run merged by global index emits table/CSV/JSON
// byte-identical to the single-process run, for every family and any
// shard count.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/runner.hpp"
#include "engine/scenario_set.hpp"
#include "engine/shard.hpp"

namespace {

using rv::engine::Family;
using rv::engine::ResultSet;
using rv::engine::RunnerOptions;
using rv::engine::ScenarioCache;
using rv::engine::ScenarioSet;
using rv::engine::ShardPlan;
using rv::engine::ShardResult;
using rv::engine::WorkItem;

TEST(ShardPlanTest, PartitionsIndicesByStride) {
  const ShardPlan plan = rv::engine::shard_plan(10, 1, 3);
  EXPECT_EQ(plan.shard, 1u);
  EXPECT_EQ(plan.num_shards, 3u);
  EXPECT_EQ(plan.total, 10u);
  EXPECT_EQ(plan.indices, (std::vector<std::size_t>{1, 4, 7}));
}

TEST(ShardPlanTest, ShardsAreDisjointAndCoverEverything) {
  for (const std::size_t num_shards : {1u, 2u, 3u, 7u, 13u}) {
    std::set<std::size_t> seen;
    for (std::size_t s = 0; s < num_shards; ++s) {
      for (const std::size_t i :
           rv::engine::shard_plan(11, s, num_shards).indices) {
        EXPECT_TRUE(seen.insert(i).second)
            << "index " << i << " in two shards";
      }
    }
    EXPECT_EQ(seen.size(), 11u) << num_shards << " shards";
  }
}

TEST(ShardPlanTest, MoreShardsThanItemsLeavesTrailingShardsEmpty) {
  EXPECT_EQ(rv::engine::shard_plan(2, 0, 5).indices.size(), 1u);
  EXPECT_EQ(rv::engine::shard_plan(2, 1, 5).indices.size(), 1u);
  EXPECT_TRUE(rv::engine::shard_plan(2, 4, 5).indices.empty());
  EXPECT_TRUE(rv::engine::shard_plan(0, 0, 1).indices.empty());
}

TEST(ShardPlanTest, RejectsInvalidPartitions) {
  EXPECT_THROW((void)rv::engine::shard_plan(4, 0, 0), std::invalid_argument);
  EXPECT_THROW((void)rv::engine::shard_plan(4, 2, 2), std::invalid_argument);
}

TEST(ShardWorkTest, RejectsMismatchedWorkList) {
  ScenarioSet set;
  rv::rendezvous::Scenario scenario;
  scenario.max_time = 100.0;
  set.add(scenario);
  const std::vector<WorkItem> work = set.materialize_work();
  const ShardPlan plan = rv::engine::shard_plan(5, 0, 2);  // wrong total
  EXPECT_THROW((void)rv::engine::shard_work(work, plan),
               std::invalid_argument);
}

/// One small set per family (fast cells, deterministic outputs).
ScenarioSet family_set(Family family) {
  ScenarioSet set;
  switch (family) {
    case Family::kRendezvous: {
      rv::rendezvous::Scenario base;
      base.visibility = 0.25;
      base.max_time = 1e3;
      set.base(base).speeds({1.0, 1.5, 2.0}).time_units({1.0, 0.5}).distances(
          {1.0});
      break;
    }
    case Family::kSearch: {
      rv::engine::SearchCell base;
      base.angles = 3;
      base.visibility = 0.25;
      base.max_time = 1e3;
      set.search_base(base).search_distances({0.5, 1.0, 2.0});
      break;
    }
    case Family::kGather: {
      for (const double speed : {1.5, 2.0, 2.5}) {
        rv::engine::GatherCell cell;
        rv::geom::RobotAttributes fast = rv::geom::reference_attributes();
        fast.speed = speed;
        cell.fleet = {rv::geom::reference_attributes(), fast};
        cell.visibility = 0.2;
        cell.contact_max_time = 1e3;
        cell.gather_max_time = 1e3;
        set.add_gather(cell, "fleet v=" + std::to_string(speed));
      }
      break;
    }
    case Family::kLinear: {
      rv::engine::LinearCell base;
      base.mode = rv::engine::LinearMode::kZigZagSearch;
      base.visibility = 0.01;
      base.max_time = 1e3;
      set.linear_base(base).linear_distances({0.5, 1.0, 2.0, 4.0});
      break;
    }
    case Family::kCoverage: {
      rv::engine::CoverageCell base;
      base.disk_radius = 0.5;
      base.visibility = 0.1;
      base.cell = 0.05;
      base.checkpoints = 4;
      base.horizon = 50.0;
      set.coverage_base(base).coverage_programs(
          {rv::engine::SearchProgram::kAlgorithm4,
           rv::engine::SearchProgram::kConcentric,
           rv::engine::SearchProgram::kSquareSpiral});
      break;
    }
  }
  return set;
}

class ShardedRunPerFamily : public ::testing::TestWithParam<Family> {};

TEST_P(ShardedRunPerFamily, MergedOutputMatchesSingleProcessByteForByte) {
  const ScenarioSet set = family_set(GetParam());
  RunnerOptions options;
  options.threads = 1;
  const ResultSet single = rv::engine::run_scenarios(set, options);
  ASSERT_GT(single.size(), 0u);
  const std::string csv = single.to_csv();
  const std::string json = single.to_json();
  const std::string table = [&] {
    std::ostringstream os;
    single.to_table().print(os);
    return os.str();
  }();

  for (const std::size_t num_shards : {1u, 2u, 3u, 5u}) {
    const ResultSet merged = rv::engine::run_sharded(set, num_shards, options);
    EXPECT_EQ(merged.to_csv(), csv) << num_shards << " shards";
    EXPECT_EQ(merged.to_json(), json) << num_shards << " shards";
    std::ostringstream os;
    merged.to_table().print(os);
    EXPECT_EQ(os.str(), table) << num_shards << " shards";
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ShardedRunPerFamily,
                         ::testing::Values(Family::kRendezvous,
                                           Family::kSearch, Family::kGather,
                                           Family::kLinear,
                                           Family::kCoverage),
                         [](const ::testing::TestParamInfo<Family>& info) {
                           return rv::engine::family_name(info.param);
                         });

TEST(MergeShardsTest, RejectsIncompleteAndInconsistentMerges) {
  const ScenarioSet set = family_set(Family::kLinear);
  const std::vector<WorkItem> work = set.materialize_work();
  RunnerOptions options;
  options.threads = 1;

  ShardResult shard0{rv::engine::shard_plan(work.size(), 0, 2), ResultSet{}};
  shard0.results = rv::engine::run_shard(work, shard0.plan, options);
  ShardResult shard1{rv::engine::shard_plan(work.size(), 1, 2), ResultSet{}};
  shard1.results = rv::engine::run_shard(work, shard1.plan, options);

  // A full merge works...
  const ResultSet merged = rv::engine::merge_shards({shard0, shard1});
  EXPECT_EQ(merged.size(), work.size());
  // ...but a missing shard, a duplicated shard, or mismatched plans
  // are loud errors, not silently wrong output.
  EXPECT_THROW((void)rv::engine::merge_shards({shard0}),
               std::invalid_argument);
  EXPECT_THROW((void)rv::engine::merge_shards({shard0, shard0}),
               std::invalid_argument);
  ShardResult bad = shard1;
  bad.plan.total = work.size() + 1;
  EXPECT_THROW((void)rv::engine::merge_shards({shard0, bad}),
               std::invalid_argument);
}

TEST(MergeShardsTest, MissingCoverageNamesIndicesAndShardFile) {
  const ScenarioSet set = family_set(Family::kLinear);  // 4 items
  const std::vector<WorkItem> work = set.materialize_work();
  RunnerOptions options;
  options.threads = 1;
  ShardResult shard0{rv::engine::shard_plan(work.size(), 0, 2), ResultSet{}};
  shard0.results = rv::engine::run_shard(work, shard0.plan, options);
  try {
    (void)rv::engine::merge_shards({shard0}, "myset");
    FAIL() << "incomplete merge did not throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    // Shard 1 of 2 over 4 items owns global indices 1 and 3; the error
    // must name them and the cache file to re-drive.
    EXPECT_NE(what.find("incomplete"), std::string::npos) << what;
    EXPECT_NE(what.find("{1, 3}"), std::string::npos) << what;
    EXPECT_NE(what.find("myset-shard-1-of-2.rvcache"), std::string::npos)
        << what;
  }
}

TEST(MergeShardsTest, DuplicateCoverageNamesIndexAndShardFile) {
  const ScenarioSet set = family_set(Family::kLinear);
  const std::vector<WorkItem> work = set.materialize_work();
  RunnerOptions options;
  options.threads = 1;
  ShardResult shard0{rv::engine::shard_plan(work.size(), 0, 2), ResultSet{}};
  shard0.results = rv::engine::run_shard(work, shard0.plan, options);
  try {
    (void)rv::engine::merge_shards({shard0, shard0}, "myset");
    FAIL() << "duplicate merge did not throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("covered twice"), std::string::npos) << what;
    EXPECT_NE(what.find("index 0"), std::string::npos) << what;
    EXPECT_NE(what.find("myset-shard-0-of-2.rvcache"), std::string::npos)
        << what;
  }
}

TEST(ShardFileNameTest, FormatsSetShardAndPlaceholder) {
  EXPECT_EQ(rv::engine::shard_file_name("linear-line", 1, 3),
            "linear-line-shard-1-of-3.rvcache");
  EXPECT_EQ(rv::engine::shard_file_name("", 0, 2),
            "<set>-shard-0-of-2.rvcache");
}

TEST(MergeShardsTest, EmptyMergeIsEmpty) {
  const ResultSet merged = rv::engine::merge_shards({});
  EXPECT_TRUE(merged.empty());
}

TEST(MergeShardsTest, RunShardedRejectsZeroShards) {
  EXPECT_THROW((void)rv::engine::run_sharded(family_set(Family::kLinear), 0),
               std::invalid_argument);
}

TEST(ShardCacheTest, ShardsSharingACacheReplayDuplicateCells) {
  // Two shards over a set whose cells repeat: with one shared cache the
  // second occurrence of each cell replays instead of recomputing, and
  // the merged output is unchanged.
  ScenarioSet set;
  rv::engine::LinearCell cell;
  cell.mode = rv::engine::LinearMode::kZigZagSearch;
  cell.visibility = 0.01;
  cell.max_time = 1e3;
  for (int repeat = 0; repeat < 2; ++repeat) {
    for (const double d : {1.0, 2.0}) {
      cell.target = d;
      set.add_linear(cell);
    }
  }

  RunnerOptions plain;
  plain.threads = 1;
  const std::string want = rv::engine::run_scenarios(set, plain).to_csv();

  ScenarioCache cache;
  RunnerOptions cached = plain;
  cached.cache = &cache;
  const ResultSet merged = rv::engine::run_sharded(set, 2, cached);
  EXPECT_EQ(merged.to_csv(), want);
  EXPECT_EQ(merged.cache_stats().hits + merged.cache_stats().misses, 4u);
  EXPECT_EQ(merged.cache_stats().misses, 2u);  // two distinct cells
  EXPECT_EQ(merged.cache_stats().hits, 2u);    // two replays
}

}  // namespace
