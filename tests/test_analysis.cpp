// Tests for the analysis module: Theorem 1/2/3 bound functions, the
// equivalent-search reduction (Definition 1), and viewpoint
// normalisation.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/bounds.hpp"
#include "analysis/reduction.hpp"
#include "geom/difference_map.hpp"
#include "mathx/constants.hpp"
#include "mathx/binary.hpp"
#include "mathx/rng.hpp"
#include "rendezvous/feasibility.hpp"
#include "rendezvous/schedule.hpp"
#include "search/paths.hpp"
#include "search/times.hpp"
#include "traj/program.hpp"

namespace {

using namespace rv::analysis;
using rv::geom::Mat2;
using rv::geom::RobotAttributes;
using rv::geom::Vec2;
using rv::mathx::kPi;

RobotAttributes attrs(double v, double tau, double phi, int chi) {
  RobotAttributes a;
  a.speed = v;
  a.time_unit = tau;
  a.orientation = phi;
  a.chirality = chi;
  return a;
}

// ---------------------------------------------------------------------------
// Bounds
// ---------------------------------------------------------------------------

TEST(Bounds, Theorem1Delegation) {
  EXPECT_DOUBLE_EQ(theorem1_search_bound(1.0, 0.25),
                   rv::search::theorem1_bound(1.0, 0.25));
}

TEST(Bounds, Theorem2CommonChiralityScalesByMu) {
  // For v = 2, φ = 0: µ = 1, so the bound equals the plain Theorem 1
  // bound.
  EXPECT_NEAR(theorem2_bound_common_chirality(1.0, 0.25, 2.0, 0.0),
              theorem1_search_bound(1.0, 0.25), 1e-9);
  // For φ = π, v = 1: µ = 2 — the bound improves (robots diverge fast).
  EXPECT_NEAR(theorem2_bound_common_chirality(1.0, 0.25, 1.0, kPi),
              theorem1_search_bound(0.5, 0.125), 1e-9);
  EXPECT_THROW((void)theorem2_bound_common_chirality(1.0, 0.25, 1.0, 0.0),
               std::invalid_argument);
}

TEST(Bounds, Theorem2OppositeChirality) {
  // Gain 1 − v.
  EXPECT_NEAR(theorem2_bound_opposite_chirality(1.0, 0.25, 0.5),
              theorem1_search_bound(2.0, 0.5), 1e-9);
  EXPECT_THROW((void)theorem2_bound_opposite_chirality(1.0, 0.25, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)theorem2_bound_opposite_chirality(1.0, 0.25, 1.5),
               std::invalid_argument);
}

TEST(Bounds, Theorem2DispatcherMatchesBranches) {
  EXPECT_DOUBLE_EQ(theorem2_bound(attrs(2.0, 1.0, 0.5, 1), 1.0, 0.1),
                   theorem2_bound_common_chirality(1.0, 0.1, 2.0, 0.5));
  EXPECT_DOUBLE_EQ(theorem2_bound(attrs(0.5, 1.0, 0.5, -1), 1.0, 0.1),
                   theorem2_bound_opposite_chirality(1.0, 0.1, 0.5));
  // v > 1 with χ = −1: gain |1 − v| = 1, so the bound equals the plain
  // Theorem 1 bound on (d, r).
  EXPECT_DOUBLE_EQ(theorem2_bound(attrs(2.0, 1.0, 0.5, -1), 1.0, 0.1),
                   theorem1_search_bound(1.0, 0.1));
  EXPECT_THROW((void)theorem2_bound(attrs(1.0, 0.5, 0.0, 1), 1.0, 0.1),
               std::invalid_argument);
  EXPECT_THROW((void)theorem2_bound(attrs(1.0, 1.0, 0.0, 1), 1.0, 0.1),
               std::invalid_argument);
}

TEST(Bounds, Theorem3UsesLemma13Round) {
  const double d = 1.0, r = 0.25;
  const int n = rv::search::guaranteed_round(d, r);
  const int k_star = rv::rendezvous::rendezvous_round_bound(0.5, n);
  EXPECT_DOUBLE_EQ(theorem3_bound(0.5, d, r),
                   rv::rendezvous::inactive_start(k_star + 1));
  // τ > 1 is normalised to 1/τ.
  EXPECT_DOUBLE_EQ(theorem3_bound(2.0, d, r), theorem3_bound(0.5, d, r));
  EXPECT_THROW((void)theorem3_bound(1.0, d, r), std::invalid_argument);
}

TEST(Bounds, NormalizedViewpointIdentityForSlowClocks) {
  const auto a = attrs(2.0, 0.5, 1.0, -1);
  EXPECT_EQ(normalized_viewpoint(a), rv::geom::validated(a));
}

TEST(Bounds, NormalizedViewpointInvertsFrame) {
  // For τ > 1 the normalised attributes must describe the inverse
  // frame: M(flipped) · M(original) = I.
  rv::mathx::Xoshiro256 rng(17);
  for (int i = 0; i < 50; ++i) {
    const auto a = rv::geom::validated(
        attrs(rng.uniform(0.2, 3.0), rng.uniform(1.01, 4.0), rng.angle(),
              rng.sign()));
    const auto b = normalized_viewpoint(a);
    EXPECT_LT(b.time_unit, 1.0);
    const Mat2 product = frame_matrix(a) * frame_matrix(b);
    EXPECT_TRUE(rv::geom::approx_equal(product, rv::geom::identity(), 1e-9))
        << "v=" << a.speed << " tau=" << a.time_unit << " phi="
        << a.orientation << " chi=" << a.chirality;
  }
}

TEST(Bounds, NormalizedViewpointPreservesFeasibilityClass) {
  using rv::rendezvous::classify;
  rv::mathx::Xoshiro256 rng(23);
  for (int i = 0; i < 50; ++i) {
    const auto a = rv::geom::validated(
        attrs(rng.uniform(0.2, 3.0), rng.uniform(1.01, 4.0), rng.angle(),
              rng.sign()));
    // Any τ ≠ 1 tuple is clock-feasible from both viewpoints.
    EXPECT_EQ(classify(a), classify(normalized_viewpoint(a)));
  }
}

// ---------------------------------------------------------------------------
// Lemma 12 exact round bound (Lambert W form)
// ---------------------------------------------------------------------------

TEST(Lemma12Exact, DomainChecks) {
  EXPECT_THROW((void)lemma12_exact_round_bound(1.0, 2), std::invalid_argument);
  EXPECT_THROW((void)lemma12_exact_round_bound(0.9, 0), std::invalid_argument);
  // t = 1/2 (τ = 0.5) is outside Lemma 12's branch.
  EXPECT_THROW((void)lemma12_exact_round_bound(0.5, 2), std::invalid_argument);
}

TEST(Lemma12Exact, AtLeastTheFindRoundAndPrecondition) {
  for (const double tau : {0.7, 0.75, 0.8, 0.9, 0.95}) {
    for (const int n : {1, 2, 4, 8, 16}) {
      const int k = lemma12_exact_round_bound(tau, n);
      EXPECT_GE(k, n) << "tau=" << tau << " n=" << n;
      const auto dec = rv::mathx::dyadic_decompose(tau);
      EXPECT_GE(k, static_cast<int>((dec.a + 1) * dec.t / (1.0 - dec.t)))
          << "tau=" << tau;
    }
  }
}

TEST(Lemma12Exact, TracksLemma13UpToItsLogWeakening) {
  // The paper derives Lemma 13's k* from Lemma 12 by replacing W(x)
  // with its ln(x) − ln(ln(x)) asymptotic and simplifying upward; the
  // exact form is never larger by more than a few rounds and grows the
  // same way as tau -> 1.
  for (const double tau : {0.7, 0.8, 0.9, 0.97}) {
    for (const int n : {2, 6, 12}) {
      const int exact = lemma12_exact_round_bound(tau, n);
      const int weak = rv::rendezvous::rendezvous_round_bound(tau, n);
      EXPECT_LE(std::abs(exact - weak), 6)
          << "tau=" << tau << " n=" << n << " exact=" << exact
          << " weak=" << weak;
    }
  }
  // Blow-up as tau -> 1 in both forms.
  EXPECT_LT(lemma12_exact_round_bound(0.75, 4),
            lemma12_exact_round_bound(0.97, 4));
}

TEST(Lemma12Exact, MonotoneInN) {
  for (const double tau : {0.75, 0.9}) {
    int prev = 0;
    for (int n = 1; n <= 20; ++n) {
      const int k = lemma12_exact_round_bound(tau, n);
      EXPECT_GE(k, prev) << "tau=" << tau << " n=" << n;
      prev = k;
    }
  }
}

// ---------------------------------------------------------------------------
// Reduction (Definition 1)
// ---------------------------------------------------------------------------

TEST(Reduction, CommonChiralityInstance) {
  const auto eq = equivalent_search_common_chirality(2.0, 0.5, 1.0, kPi);
  EXPECT_DOUBLE_EQ(eq.d, 1.0);   // µ = 2
  EXPECT_DOUBLE_EQ(eq.r, 0.25);
  EXPECT_THROW(
      (void)equivalent_search_common_chirality(1.0, 0.5, 1.0, 0.0),
      std::invalid_argument);
}

TEST(Reduction, OppositeChiralityWorstCase) {
  const auto eq = equivalent_search_opposite_chirality_worst(1.0, 0.5, 0.5);
  EXPECT_DOUBLE_EQ(eq.d, 2.0);
  EXPECT_DOUBLE_EQ(eq.r, 1.0);
}

TEST(Reduction, OppositeChiralityPerDirectionNeverWorseThanWorstCase) {
  rv::mathx::Xoshiro256 rng(41);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.uniform(0.1, 0.9);
    const double phi = rng.angle();
    const Vec2 d_hat = rv::geom::unit(rng.angle());
    const auto per_dir =
        equivalent_search_opposite_chirality(1.0, d_hat, 0.5, v, phi);
    const auto worst = equivalent_search_opposite_chirality_worst(1.0, 0.5, v);
    EXPECT_LE(per_dir.d, worst.d + 1e-9);
  }
}

TEST(Reduction, OppositeChiralityZeroGainThrows) {
  // Mirror robots (v = 1) with the offset along the invariant
  // direction: T∘ᵀ·d̂ = 0.  For φ = 0, T∘ = diag(0, 2); gain of x̂ is 0.
  EXPECT_THROW((void)equivalent_search_opposite_chirality(
                   1.0, Vec2{1.0, 0.0}, 0.5, 1.0, 0.0),
               std::invalid_argument);
}

TEST(Reduction, SeparationVectorIdentity) {
  // p₁(t) − p₂(t) computed through the difference matrix must match a
  // direct evaluation of both robots' frame maps on a real trajectory.
  const auto path = rv::search::search_round_path(1);
  rv::mathx::Xoshiro256 rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = rv::geom::validated(
        attrs(rng.uniform(0.3, 2.5), 1.0, rng.angle(), rng.sign()));
    const Vec2 offset{rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)};
    const Mat2 frame = frame_matrix(a);
    for (int i = 0; i < 20; ++i) {
      const double t = rng.uniform(0.0, path.duration());
      const Vec2 s_t = path.position_at(t);
      // Direct: R at S(t); R′ at offset + frame·S(t) (τ = 1).
      const Vec2 direct = s_t - (offset + frame * s_t);
      const Vec2 via_map = separation_vector(s_t, a, offset);
      EXPECT_TRUE(rv::geom::approx_equal(direct, via_map, 1e-9));
    }
  }
}

TEST(Reduction, SeparationVectorRequiresSymmetricClocks) {
  EXPECT_THROW(
      (void)separation_vector({1.0, 0.0}, attrs(1.0, 0.5, 0.0, 1), {1.0, 0.0}),
      std::invalid_argument);
}

TEST(Reduction, EquivalentSearchNormPreservation) {
  // |S∘(t)| = µ·|S(t)| for χ = +1 — Lemma 6's geometric content.
  const auto path = rv::search::search_circle_path(1.0);
  const double v = 1.7, phi = 2.0;
  const double m = rv::geom::mu(v, phi);
  const Mat2 t_circ = rv::geom::difference_matrix(v, phi, 1);
  for (double t = 0.0; t <= path.duration(); t += 0.37) {
    const Vec2 s = path.position_at(t);
    EXPECT_NEAR(rv::geom::norm(t_circ * s), m * rv::geom::norm(s), 1e-12);
  }
}

}  // namespace
