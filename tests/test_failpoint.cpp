// Failpoint injection (engine/failpoint.hpp): spec parsing (including
// hostile specs arming nothing), counted triggers, index selection,
// seed-deterministic 1inN coins, cross-fork counter budgets, and the
// zero-drift guarantee when nothing is armed.

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "engine/failpoint.hpp"

namespace failpoint = rv::engine::failpoint;
using failpoint::Action;
using failpoint::FailpointError;

namespace {

/// Every test starts and ends disarmed, so suites can run in any order
/// and a failed EXPECT cannot leak an armed fault into its neighbours.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::disarm_all(); }
  void TearDown() override { failpoint::disarm_all(); }
};

/// True when evaluating the site throws the injected error.
bool fires_error(std::string_view site,
                 std::size_t index = failpoint::kAnyIndex) {
  try {
    (void)failpoint::hit(site, index);
    return false;
  } catch (const FailpointError&) {
    return true;
  }
}

TEST_F(FailpointTest, DisabledByDefault) {
  EXPECT_FALSE(failpoint::enabled());
  EXPECT_EQ(failpoint::armed_count(), 0u);
  const failpoint::Hit hit = failpoint::hit("never.armed.site");
  EXPECT_FALSE(hit.fired);
  // Un-armed evaluation must not even count: stats() reports nothing.
  EXPECT_TRUE(failpoint::stats().empty());
}

TEST_F(FailpointTest, ParsesMultiEntrySpecs) {
  failpoint::arm(
      "alpha.site=error;beta.site=torn_write(48),limit=2;"
      "gamma.site=delay(1),after=3,index=7,seed=99");
  EXPECT_TRUE(failpoint::enabled());
  EXPECT_EQ(failpoint::armed_count(), 3u);
  const std::vector<failpoint::SiteStats> stats = failpoint::stats();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].site, "alpha.site");
  EXPECT_EQ(stats[1].site, "beta.site");
  EXPECT_EQ(stats[2].site, "gamma.site");
  // Arming appends: a second arm() call extends the armed set.
  failpoint::arm("delta.site=crash(7)");
  EXPECT_EQ(failpoint::armed_count(), 4u);
}

TEST_F(FailpointTest, RejectsHostileSpecsAndArmsNothing) {
  const char* hostile[] = {
      "",                          // empty spec
      "no_equals_sign",            // no '='
      "=error",                    // empty site name
      "site=",                     // empty action
      "site=frobnicate",           // unknown action
      "Bad.Site=error",            // uppercase site name
      "sp ace=error",              // space in site name
      "site=error(5)",             // error takes no argument
      "site=crash(256)",           // exit code out of [0, 255]
      "site=crash(abc)",           // non-numeric argument
      "site=crash(1",              // unbalanced parentheses
      "site=delay(-5)",            // negative argument
      "site=error,1in0",           // 1inN needs N >= 1
      "site=error,after=",         // empty trigger value
      "site=error,limit=x",        // non-numeric trigger value
      "site=error,index=1x",       // trailing garbage in value
      "site=error,bogus=1",        // unknown trigger
      "site=error;;",              // empty entry between ';'
      "site=crash(99999999999999999999)",  // overflow
  };
  for (const char* spec : hostile) {
    EXPECT_THROW(failpoint::arm(spec), std::invalid_argument)
        << "spec not rejected: '" << spec << "'";
    EXPECT_EQ(failpoint::armed_count(), 0u)
        << "hostile spec armed something: '" << spec << "'";
    EXPECT_FALSE(failpoint::enabled());
  }
}

TEST_F(FailpointTest, ErrorActionThrowsDistinctType) {
  failpoint::arm("err.site=error");
  EXPECT_THROW((void)failpoint::hit("err.site"), FailpointError);
  // Other sites stay inert.
  EXPECT_FALSE(failpoint::hit("other.site").fired);
  // FailpointError is a runtime_error, so generic handlers still work.
  EXPECT_THROW((void)failpoint::hit("err.site"), std::runtime_error);
}

TEST_F(FailpointTest, CountedTriggersAfterAndLimit) {
  failpoint::arm("counted.site=error,after=2,limit=1");
  // Hits 0 and 1 are ignored (after=2), hit 2 fires the single budget
  // (limit=1), hits 3..10 pass through again.
  for (int h = 0; h < 11; ++h) {
    const bool fired = fires_error("counted.site");
    EXPECT_EQ(fired, h == 2) << "hit ordinal " << h;
  }
  const std::vector<failpoint::SiteStats> stats = failpoint::stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].hits, 11u);
  EXPECT_EQ(stats[0].fires, 1u);
}

TEST_F(FailpointTest, IndexSelectorMatchesOnlyItsIndex) {
  failpoint::arm("idx.site=error,index=3");
  EXPECT_FALSE(fires_error("idx.site", 2));
  EXPECT_TRUE(fires_error("idx.site", 3));
  // A hit reporting no index does not match an index=K entry.
  EXPECT_FALSE(fires_error("idx.site"));
  // An entry without index= matches every hit.
  failpoint::disarm_all();
  failpoint::arm("idx.site=error");
  EXPECT_TRUE(fires_error("idx.site", 2));
  EXPECT_TRUE(fires_error("idx.site"));
}

TEST_F(FailpointTest, OneInNIsDeterministicBySeed) {
  const auto pattern = [](std::uint64_t seed) {
    failpoint::disarm_all();
    failpoint::arm("coin.site=error,1in3,seed=" + std::to_string(seed));
    std::vector<bool> fired;
    fired.reserve(200);
    for (int h = 0; h < 200; ++h) fired.push_back(fires_error("coin.site"));
    return fired;
  };
  const std::vector<bool> a = pattern(42);
  const std::vector<bool> b = pattern(42);
  const std::vector<bool> c = pattern(43);
  // Same seed reproduces the exact fire pattern; a different seed
  // diverges somewhere in 200 draws.
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // And the rate is loosely 1 in 3 (wide bounds: this is a coin, the
  // pin is the reproducibility above, not the ratio).
  const long count = std::count(a.begin(), a.end(), true);
  EXPECT_GT(count, 25);
  EXPECT_LT(count, 115);
}

TEST_F(FailpointTest, TornWriteReturnsItsBudgetToTheSite) {
  failpoint::arm("torn.site=torn_write(48)");
  const failpoint::Hit hit = RV_FAILPOINT_EVAL("torn.site");
  EXPECT_TRUE(hit.fired);
  EXPECT_EQ(hit.action, Action::kTornWrite);
  EXPECT_EQ(hit.arg, 48u);
  // torn_write is inert at sites that ignore the Hit: no throw, no
  // crash — the do-nothing macro form just counts.
  RV_FAILPOINT("torn.site");
  EXPECT_EQ(failpoint::stats()[0].hits, 2u);
}

TEST_F(FailpointTest, DelayActionSleepsThenContinues) {
  failpoint::arm("slow.site=delay(30)");
  const auto t0 = std::chrono::steady_clock::now();  // rv-lint: allow(nondeterminism) — timing an injected delay
  const failpoint::Hit hit = failpoint::hit("slow.site");
  const auto t1 = std::chrono::steady_clock::now();  // rv-lint: allow(nondeterminism) — timing an injected delay
  EXPECT_TRUE(hit.fired);
  EXPECT_EQ(hit.action, Action::kDelay);
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0);
  EXPECT_GE(elapsed.count(), 25);
}

TEST_F(FailpointTest, CrashActionExitsWithTheConfiguredCode) {
  failpoint::arm("boom.site=crash(86)");
  EXPECT_EXIT((void)failpoint::hit("boom.site"),
              ::testing::ExitedWithCode(86), "boom.site.*crash");
  failpoint::disarm_all();
  failpoint::arm("boom.site=crash(7)");
  EXPECT_EXIT((void)failpoint::hit("boom.site"),
              ::testing::ExitedWithCode(7), "crash");
}

TEST_F(FailpointTest, ArmsFromTheEnvironment) {
  ASSERT_EQ(::setenv("RV_FAILPOINTS", "env.site=error,limit=1", 1), 0);
  failpoint::arm_from_env();
  ::unsetenv("RV_FAILPOINTS");
  EXPECT_EQ(failpoint::armed_count(), 1u);
  EXPECT_TRUE(fires_error("env.site"));
  // An absent variable arms nothing.
  failpoint::disarm_all();
  failpoint::arm_from_env();
  EXPECT_EQ(failpoint::armed_count(), 0u);
}

TEST_F(FailpointTest, CountersAreSharedAcrossFork) {
  failpoint::arm("forked.site=error,limit=1");
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: consume the single fire budget, report through the exit
    // status (gtest assertions do not propagate from here).
    ::_exit(fires_error("forked.site") ? 0 : 1);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << "child did not observe the fire";
  // The child's fire spent the shared limit=1 budget: the parent's next
  // hit must pass through — exactly the semantics supervisor retries
  // rely on (`limit=1` means once per run, not once per process).
  EXPECT_FALSE(fires_error("forked.site"));
  const std::vector<failpoint::SiteStats> stats = failpoint::stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].hits, 2u);
  EXPECT_EQ(stats[0].fires, 1u);
}

TEST_F(FailpointTest, DisarmAllResetsCountersAndBudgets) {
  failpoint::arm("reset.site=error,limit=1");
  EXPECT_TRUE(fires_error("reset.site"));
  EXPECT_FALSE(fires_error("reset.site"));  // budget spent
  failpoint::disarm_all();
  failpoint::arm("reset.site=error,limit=1");
  EXPECT_TRUE(fires_error("reset.site"));  // fresh budget
}

}  // namespace
