#pragma once

/// \file golden.hpp
/// Byte-identical golden-output harness.
///
/// A golden test renders something deterministic (a `ResultSet` CSV/
/// JSON/table, a bench binary's stdout, a CSV artifact) and compares it
/// **byte for byte** against a file committed under `tests/golden/`.
/// On mismatch the failure message pinpoints the first differing line
/// and the full actual output is written next to the build as
/// `<name>.actual` (slashes flattened) for inspection.
///
/// Regenerating pins after an intentional output change:
///
///     RV_UPDATE_GOLDEN=1 ctest -L golden
///
/// rewrites every golden file from the current outputs (then review the
/// diff with `git diff tests/golden/`).  A missing golden file is a
/// test failure with the same hint, so brand-new pins go through the
/// same path.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace rv::golden {

/// Root of the committed golden files (tests/golden in the source
/// tree; the build passes it as RV_GOLDEN_DIR).
inline std::filesystem::path dir() {
#ifdef RV_GOLDEN_DIR
  return std::filesystem::path(RV_GOLDEN_DIR);
#else
  return std::filesystem::path("tests") / "golden";
#endif
}

/// True when the run should rewrite golden files instead of comparing
/// (RV_UPDATE_GOLDEN set to anything but "" or "0").
inline bool update_requested() {
  const char* env = std::getenv("RV_UPDATE_GOLDEN");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

/// Whole file as bytes; nullopt when it does not exist.
inline std::optional<std::string> read_file(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Writes bytes, creating parent directories.
inline void write_file(const std::filesystem::path& path,
                       const std::string& content) {
  if (!path.parent_path().empty()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

/// Human-oriented first-difference report between two byte strings.
inline std::string describe_difference(const std::string& expected,
                                       const std::string& actual) {
  std::istringstream want(expected), got(actual);
  std::string want_line, got_line;
  std::size_t line = 0;
  while (true) {
    const bool have_want = static_cast<bool>(std::getline(want, want_line));
    const bool have_got = static_cast<bool>(std::getline(got, got_line));
    ++line;
    if (!have_want && !have_got) break;  // differ only in trailing bytes
    if (!have_want || !have_got || want_line != got_line) {
      std::ostringstream os;
      os << "first difference at line " << line << ":\n  expected: "
         << (have_want ? want_line : std::string("<end of file>"))
         << "\n  actual:   "
         << (have_got ? got_line : std::string("<end of file>"));
      return os.str();
    }
  }
  return "contents differ only in trailing bytes (sizes " +
         std::to_string(expected.size()) + " vs " +
         std::to_string(actual.size()) + ")";
}

/// Compares `actual` against the golden file `name` (a path relative
/// to `dir()`, e.g. "engine/linear_cells.csv").  In update mode the
/// file is rewritten instead and the test passes.
inline void compare(const std::string& actual, const std::string& name) {
  const std::filesystem::path path = dir() / name;
  if (update_requested()) {
    write_file(path, actual);
    return;
  }
  const std::optional<std::string> expected = read_file(path);
  if (!expected.has_value()) {
    ADD_FAILURE() << "missing golden file " << path
                  << "\n(create it with: RV_UPDATE_GOLDEN=1 ctest -L golden)";
    return;
  }
  if (*expected == actual) return;
  // Drop the actual bytes next to the test run for offline diffing.
  std::string flat = name;
  for (char& c : flat) {
    if (c == '/' || c == '\\') c = '_';
  }
  const std::filesystem::path actual_path = flat + ".actual";
  write_file(actual_path, actual);
  ADD_FAILURE() << "golden mismatch for " << path << "\n"
                << describe_difference(*expected, actual)
                << "\nexpected " << expected->size() << " bytes, got "
                << actual.size() << " (actual output saved to "
                << actual_path << ")\nif the change is intentional, "
                << "regenerate with RV_UPDATE_GOLDEN=1 ctest -L golden";
}

}  // namespace rv::golden
