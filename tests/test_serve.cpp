// End-to-end conformance + chaos suite for the rv_serve daemon — the
// acceptance harness of the serve layer (src/engine/serve.*):
//
//  * a real forked `rv_serve` driven over pipes answers every built-in
//    set with payload bytes identical to `rv_batch run`, cold runs pin
//    exact miss counters and warm replays pin 100% hits;
//  * raw `.rvset` bodies (the PR 9 twins under examples/sets/) get the
//    same byte-identity against `rv_batch run --set-file`;
//  * malformed requests always produce structured error replies —
//    never a crash, never a torn stream;
//  * the status schema, queue-full backpressure reply, and
//    deadline-expiry reply are pinned byte for byte;
//  * the `serve.*` failpoint sites (crash/delay/torn_write) drive the
//    durability and torn-reply drills, and forked dispatch
//    (`--procs`) reuses the supervisor's kill/partial semantics.
//
// Fork-dispatch daemon cases are skipped under TSan: a multithreaded
// daemon forking children that then start runner threads is
// unsupported by the TSan runtime (the in-process stress coverage
// lives in tests/test_runner_stress.cpp instead).

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <memory>
#include <optional>
#include <regex>
#include <sstream>
#include <streambuf>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/serve.hpp"

#if defined(__SANITIZE_THREAD__)
#define RV_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RV_UNDER_TSAN 1
#endif
#endif
#ifndef RV_UNDER_TSAN
#define RV_UNDER_TSAN 0
#endif

namespace {

namespace fs = std::filesystem;
namespace serve = rv::engine::serve;

fs::path build_dir() {
#ifdef RV_BENCH_DIR
  return fs::path(RV_BENCH_DIR);
#else
  return fs::current_path();
#endif
}

fs::path sets_dir() {
#ifdef RV_SETS_DIR
  return fs::path(RV_SETS_DIR);
#else
  return fs::current_path();
#endif
}

fs::path rv_serve_binary() { return build_dir() / "rv_serve"; }
fs::path rv_batch_binary() { return build_dir() / "rv_batch"; }

/// Runs `cmd` through the shell, returning captured stdout; fails the
/// test on spawn failure or non-zero exit.
std::optional<std::string> run_and_capture(const std::string& cmd) {
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    ADD_FAILURE() << "popen failed for: " << cmd;
    return std::nullopt;
  }
  std::string out;
  char buffer[4096];
  std::size_t n;
  while ((n = fread(buffer, 1, sizeof buffer, pipe)) > 0) out.append(buffer, n);
  const int status = pclose(pipe);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    ADD_FAILURE() << "command failed (status " << status << "): " << cmd;
    return std::nullopt;
  }
  return out;
}

std::string batch_cmd(const std::string& args) {
  return "'" + rv_batch_binary().string() + "' " + args;
}

/// Scratch directory removed on every exit path.
struct Scratch {
  fs::path path;
  Scratch() {
    std::string buffer =
        (fs::temp_directory_path() / "rv_serve_test_XXXXXX").string();
    EXPECT_NE(mkdtemp(buffer.data()), nullptr) << "mkdtemp failed";
    path = buffer;
  }
  ~Scratch() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// Read-only streambuf over a file descriptor, so replies can be
/// decoded with the library's own serve::read_frame.
class FdReadBuf : public std::streambuf {
 public:
  explicit FdReadBuf(int fd) : fd_(fd) { setg(buf_, buf_, buf_); }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    const ssize_t n = ::read(fd_, buf_, sizeof buf_);
    if (n <= 0) return traits_type::eof();
    setg(buf_, buf_, buf_ + n);
    return traits_type::to_int_type(*gptr());
  }

 private:
  int fd_;
  char buf_[4096];
};

/// One forked rv_serve daemon, driven over stdin/stdout pipes.
class Daemon {
 public:
  explicit Daemon(const std::vector<std::string>& extra_args = {},
                  const std::string& failpoints = "") {
    int to_child[2] = {-1, -1};
    int from_child[2] = {-1, -1};
    EXPECT_EQ(pipe(to_child), 0);
    EXPECT_EQ(pipe(from_child), 0);
    pid_ = fork();
    if (pid_ == 0) {
      dup2(to_child[0], STDIN_FILENO);
      dup2(from_child[1], STDOUT_FILENO);
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      if (failpoints.empty()) {
        unsetenv("RV_FAILPOINTS");
      } else {
        setenv("RV_FAILPOINTS", failpoints.c_str(), 1);
      }
      const std::string binary = rv_serve_binary().string();
      std::vector<std::string> argv_storage = {binary, "--quiet"};
      argv_storage.insert(argv_storage.end(), extra_args.begin(),
                          extra_args.end());
      std::vector<char*> argv;
      argv.reserve(argv_storage.size() + 1);
      for (std::string& arg : argv_storage) argv.push_back(arg.data());
      argv.push_back(nullptr);
      execv(binary.c_str(), argv.data());
      _exit(127);
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    in_fd_ = to_child[1];
    out_fd_ = from_child[0];
    buf_ = std::make_unique<FdReadBuf>(out_fd_);
    in_stream_ = std::make_unique<std::istream>(buf_.get());
  }

  ~Daemon() {
    close_stdin();
    if (out_fd_ >= 0) ::close(out_fd_);
    if (pid_ > 0) {
      kill(pid_, SIGKILL);
      int status = 0;
      waitpid(pid_, &status, 0);
    }
  }

  void send(const std::string& bytes) {
    const char* p = bytes.data();
    std::size_t left = bytes.size();
    while (left > 0) {
      const ssize_t n = ::write(in_fd_, p, left);
      ASSERT_GT(n, 0) << "write to daemon failed";
      p += n;
      left -= static_cast<std::size_t>(n);
    }
  }

  void close_stdin() {
    if (in_fd_ >= 0) ::close(in_fd_);
    in_fd_ = -1;
  }

  /// Reads one reply frame with the library decoder; fails the test on
  /// EOF or torn frames.
  bool read_frame(std::string* header, std::string* payload) {
    const bool got = serve::read_frame(*in_stream_, header, payload);
    EXPECT_TRUE(got) << "unexpected EOF from daemon";
    return got;
  }

  /// Everything remaining on the reply stream, until EOF.
  std::string read_all() {
    std::string out;
    char buffer[4096];
    // Drain through the same streambuf read_frame used, then the fd.
    out.assign(std::istreambuf_iterator<char>(*in_stream_),
               std::istreambuf_iterator<char>());
    ssize_t n = 0;
    while ((n = ::read(out_fd_, buffer, sizeof buffer)) > 0) {
      out.append(buffer, static_cast<std::size_t>(n));
    }
    return out;
  }

  /// Waits for exit; returns the exit code, or 128+signal when killed.
  int wait_exit() {
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
    return -1;
  }

  [[nodiscard]] pid_t pid() const { return pid_; }

 private:
  pid_t pid_ = -1;
  int in_fd_ = -1;
  int out_fd_ = -1;
  std::unique_ptr<FdReadBuf> buf_;
  std::unique_ptr<std::istream> in_stream_;
};

struct Frame {
  std::string header;
  std::string payload;
};

/// Sends one request line (plus optional raw body) and reads its reply.
Frame roundtrip(Daemon& daemon, const std::string& header_line,
                const std::string& body = "", bool has_body = false) {
  daemon.send(header_line + "\n");
  if (has_body) daemon.send(body + "\n");
  Frame frame;
  daemon.read_frame(&frame.header, &frame.payload);
  return frame;
}

/// Field extraction from a reply header (flat JSON, fixed key order).
std::string field(const std::string& header, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = header.find(needle);
  if (at == std::string::npos) return "";
  std::size_t start = at + needle.size();
  std::size_t end = start;
  if (end < header.size() && header[end] == '"') {
    ++start;
    end = header.find('"', start);
  } else {
    while (end < header.size() && header[end] != ',' && header[end] != '}') {
      ++end;
    }
  }
  return header.substr(start, end - start);
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Masks the (timing-dependent) latency digits of a status reply so
/// the rest of the schema can be pinned exactly.
std::string mask_latency(const std::string& status_header) {
  static const std::regex pattern("(\"(?:mean|max)_ms\":)[0-9]+\\.[0-9]+");
  return std::regex_replace(status_header, pattern, "$1X");
}

class ServeDaemon : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fs::exists(rv_serve_binary()) || !fs::exists(rv_batch_binary())) {
      GTEST_SKIP() << "rv_serve/rv_batch not built (RV_BUILD_TOOLS=OFF?)";
    }
  }
};

class ServeConformance : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    if (!fs::exists(rv_serve_binary()) || !fs::exists(rv_batch_binary())) {
      GTEST_SKIP() << "rv_serve/rv_batch not built (RV_BUILD_TOOLS=OFF?)";
    }
#if RV_UNDER_TSAN
    const std::string set = GetParam();
    if (set != "linear-line" && set != "gather-fleet") {
      GTEST_SKIP() << "TSan: conformance restricted to the small sets";
    }
#endif
  }
};

// ---------------------------------------------------------------------
// Conformance: byte-identity with rv_batch, cold/warm counters
// ---------------------------------------------------------------------

TEST_P(ServeConformance, RepliesAreByteIdenticalToRvBatchColdAndWarm) {
  const std::string set = GetParam();
  const auto batch_csv = run_and_capture(batch_cmd("run --set " + set));
  const auto batch_json =
      run_and_capture(batch_cmd("run --set " + set + " --format json"));
  ASSERT_TRUE(batch_csv.has_value());
  ASSERT_TRUE(batch_json.has_value());

  Scratch scratch;
  Daemon daemon({"--cache-dir", (scratch.path / "cache").string()});

  const Frame cold =
      roundtrip(daemon, R"({"op":"run","id":"cold","set":")" + set + "\"}");
  EXPECT_EQ(field(cold.header, "reply"), "ok");
  EXPECT_EQ(field(cold.header, "hits"), "0") << cold.header;
  EXPECT_EQ(field(cold.header, "uncacheable"), "0") << cold.header;
  const std::string misses = field(cold.header, "misses");
  EXPECT_NE(misses, "0");
  EXPECT_EQ(cold.payload, *batch_csv)
      << set << ": cold daemon payload drifted from rv_batch bytes";

  // Warm replay: 100% hits, zero misses, identical bytes.
  const Frame warm =
      roundtrip(daemon, R"({"op":"run","id":"warm","set":")" + set + "\"}");
  EXPECT_EQ(field(warm.header, "hits"), misses) << warm.header;
  EXPECT_EQ(field(warm.header, "misses"), "0") << warm.header;
  EXPECT_EQ(warm.payload, *batch_csv);

  // Other formats render from the same warm cache.
  const Frame json = roundtrip(
      daemon,
      R"({"op":"run","id":"j","set":")" + set + R"(","format":"json"})");
  EXPECT_EQ(field(json.header, "misses"), "0");
  EXPECT_EQ(json.payload, *batch_json);

  const Frame ack = roundtrip(daemon, R"({"op":"shutdown","id":"bye"})");
  EXPECT_EQ(ack.header, R"({"reply":"shutdown","id":"bye"})");
  EXPECT_EQ(daemon.wait_exit(), 0);
}

TEST_P(ServeConformance, WarmRestartFromPersistedCacheIsAllHits) {
  const std::string set = GetParam();
  Scratch scratch;
  const std::string dir = (scratch.path / "cache").string();
  std::string cold_payload;
  std::string cold_misses;
  {
    Daemon daemon({"--cache-dir", dir});
    const Frame cold =
        roundtrip(daemon, R"({"op":"run","id":"c","set":")" + set + "\"}");
    EXPECT_EQ(field(cold.header, "reply"), "ok");
    cold_payload = cold.payload;
    cold_misses = field(cold.header, "misses");
    daemon.close_stdin();
    EXPECT_EQ(daemon.wait_exit(), 0);
  }
  // A brand-new daemon over the same directory answers entirely from
  // the persisted cache: identical bytes, zero recomputation.
  Daemon warm({"--cache-dir", dir});
  const Frame replay =
      roundtrip(warm, R"({"op":"run","id":"w","set":")" + set + "\"}");
  EXPECT_EQ(field(replay.header, "hits"), cold_misses);
  EXPECT_EQ(field(replay.header, "misses"), "0");
  EXPECT_EQ(replay.payload, cold_payload);
}

INSTANTIATE_TEST_SUITE_P(BuiltinSets, ServeConformance,
                         ::testing::Values("rendezvous-grid", "search-ring",
                                           "gather-fleet", "linear-line",
                                           "coverage-disk"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------
// Raw .rvset bodies
// ---------------------------------------------------------------------

TEST_F(ServeDaemon, RvsetBodyRequestsMatchRvBatchSetFile) {
  std::vector<fs::path> decls;
  for (const auto& entry : fs::directory_iterator(sets_dir())) {
    if (entry.path().extension() == ".rvset") decls.push_back(entry.path());
  }
  std::sort(decls.begin(), decls.end());
  ASSERT_FALSE(decls.empty()) << "no .rvset twins under " << sets_dir();
#if RV_UNDER_TSAN
  decls.resize(1);
#endif

  Scratch scratch;
  Daemon daemon({"--cache-dir", (scratch.path / "cache").string()});
  for (const fs::path& decl : decls) {
    const auto batch = run_and_capture(
        batch_cmd("run --set-file '" + decl.string() + "'"));
    ASSERT_TRUE(batch.has_value()) << decl;
    const std::string body = read_file(decl);
    const std::string header =
        R"({"op":"run","id":"body","body_bytes":)" +
        std::to_string(body.size()) + "}";
    const Frame cold = roundtrip(daemon, header, body, /*has_body=*/true);
    EXPECT_EQ(field(cold.header, "reply"), "ok") << decl << "\n" << cold.header;
    EXPECT_EQ(cold.payload, *batch)
        << decl << ": .rvset body payload drifted from rv_batch --set-file";
    const Frame warm = roundtrip(daemon, header, body, /*has_body=*/true);
    EXPECT_EQ(field(warm.header, "misses"), "0")
        << decl << ": warm .rvset replay recomputed";
    EXPECT_EQ(warm.payload, *batch);
  }
}

// ---------------------------------------------------------------------
// Malformed requests: structured errors, never a crash
// ---------------------------------------------------------------------

TEST_F(ServeDaemon, MalformedRequestsGetStructuredErrorsNeverACrash) {
  Daemon daemon;
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"not json", "parse"},
      {R"({"op":"run"})", "parse"},                       // no set, no body
      {R"({"op":"run","set":"x","body_bytes":1})", "parse"},  // exclusive
      {R"({"op":"launch","set":"x"})", "parse"},          // unknown op
      {R"({"op":"run","set":"x","set":"y"})", "parse"},   // duplicate key
      {R"({"op":"run","set":"x","color":"red"})", "parse"},  // unknown key
      {R"({"op":"run","set":"x","deadline_ms":-1})", "parse"},
      {R"({"op":"run","set":"x","format":"xml"})", "parse"},
      {R"({"op":"status","set":"x"})", "parse"},          // run-only key
      {R"({"op":"run","set":"no-such-set"})", "bad-set"},
  };
  for (const auto& [line, code] : cases) {
    const Frame reply = roundtrip(daemon, line);
    EXPECT_EQ(field(reply.header, "reply"), "error") << line;
    EXPECT_EQ(field(reply.header, "code"), code) << line;
  }
  // A malformed .rvset body is a structured bad-set error too.
  const Frame bad_body = roundtrip(
      daemon, R"({"op":"run","id":"b","body_bytes":9})", "not a set",
      /*has_body=*/true);
  EXPECT_EQ(field(bad_body.header, "code"), "bad-set");

  // The daemon survived all of it: a valid request still answers.
  const Frame ok =
      roundtrip(daemon, R"({"op":"run","id":"ok","set":"linear-line"})");
  EXPECT_EQ(field(ok.header, "reply"), "ok");
  const Frame ack = roundtrip(daemon, R"({"op":"shutdown","id":"s"})");
  EXPECT_EQ(field(ack.header, "reply"), "shutdown");
  EXPECT_EQ(daemon.wait_exit(), 0);
}

// ---------------------------------------------------------------------
// Status schema
// ---------------------------------------------------------------------

TEST_F(ServeDaemon, StatusSchemaIsPinned) {
  Scratch scratch;
  Daemon daemon({"--cache-dir", (scratch.path / "cache").string()});
  const Frame run =
      roundtrip(daemon, R"({"op":"run","id":"r","set":"linear-line"})");
  ASSERT_EQ(field(run.header, "reply"), "ok");
  const Frame status = roundtrip(daemon, R"({"op":"status","id":"s"})");
  EXPECT_EQ(mask_latency(status.header),
            R"({"reply":"status","id":"s","requests":2,"ok":1,"errors":0,)"
            R"("rejected":0,"expired":0,"hits":0,"misses":4,"uncacheable":0,)"
            R"("inflight":0,"queue_depth":0,"cache_entries":4,)"
            R"("compactions":0,"latency":{"count":1,"mean_ms":X,"max_ms":X}})");
}

// ---------------------------------------------------------------------
// Backpressure and deadlines (pinned deterministically)
// ---------------------------------------------------------------------

TEST_F(ServeDaemon, QueueFullBackpressureReplyIsPinned) {
  // One worker stalls on r1 (serve.dispatch delay, first hit only),
  // r2 fills the depth-1 queue, r3 must be rejected with the pinned
  // overloaded reply — and the rejection arrives FIRST (written inline
  // by the reader while the worker still sleeps).
  Daemon daemon({"--queue-depth", "1", "--retry-after-ms", "250"},
                "serve.dispatch=delay(1500),limit=1");
  daemon.send(R"({"op":"run","id":"r1","set":"linear-line"})" "\n");
  // Give the worker ample time to dequeue r1 and enter the delay.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  daemon.send(R"({"op":"run","id":"r2","set":"linear-line"})" "\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  daemon.send(R"({"op":"run","id":"r3","set":"linear-line"})" "\n");

  Frame rejected;
  daemon.read_frame(&rejected.header, &rejected.payload);
  EXPECT_EQ(rejected.header,
            R"x({"reply":"error","id":"r3","code":"overloaded",)x"
            R"x("retry_after_ms":250,)x"
            R"x("message":"admission queue full (depth 1)"})x");
  // r1 and r2 complete normally once the delay elapses.
  Frame first;
  Frame second;
  daemon.read_frame(&first.header, &first.payload);
  daemon.read_frame(&second.header, &second.payload);
  EXPECT_EQ(field(first.header, "id"), "r1");
  EXPECT_EQ(field(second.header, "id"), "r2");
  EXPECT_EQ(field(first.header, "reply"), "ok");
  EXPECT_EQ(field(second.header, "reply"), "ok");
  EXPECT_EQ(first.payload, second.payload);
}

TEST_F(ServeDaemon, DeadlineExpiryReplyIsPinned) {
  // The dispatch delay outlasts the request deadline, so the worker
  // finds the budget spent before building the set.
  Daemon daemon({}, "serve.dispatch=delay(400)");
  const Frame expired = roundtrip(
      daemon, R"({"op":"run","id":"d","set":"linear-line","deadline_ms":100})");
  EXPECT_EQ(expired.header,
            R"x({"reply":"error","id":"d","code":"deadline",)x"
            R"x("message":"deadline of 100.000 ms expired before dispatch )x"
            R"x((queue wait)"})x");
  const Frame status = roundtrip(daemon, R"({"op":"status","id":"s"})");
  EXPECT_EQ(field(status.header, "expired"), "1");
  EXPECT_EQ(field(status.header, "errors"), "1");
}

// ---------------------------------------------------------------------
// Chaos: serve.* failpoints
// ---------------------------------------------------------------------

TEST_F(ServeDaemon, AcceptFailpointErrorsAreStructuredReplies) {
  Daemon daemon({}, "serve.accept=error");
  const Frame reply =
      roundtrip(daemon, R"({"op":"run","id":"a","set":"linear-line"})");
  EXPECT_EQ(field(reply.header, "reply"), "error");
  EXPECT_EQ(field(reply.header, "code"), "failed");
  daemon.close_stdin();
  EXPECT_EQ(daemon.wait_exit(), 0);
}

TEST_F(ServeDaemon, CrashAfterFirstRequestLeavesDurableCacheForRestart) {
  Scratch scratch;
  const std::string dir = (scratch.path / "cache").string();
  std::string cold_payload;
  std::string cold_misses;
  {
    // First request computes and persists; the second crashes the
    // daemon mid-dispatch (exit 90).
    Daemon daemon({"--cache-dir", dir}, "serve.dispatch=crash(90),after=1");
    const Frame cold =
        roundtrip(daemon, R"({"op":"run","id":"c","set":"linear-line"})");
    ASSERT_EQ(field(cold.header, "reply"), "ok");
    cold_payload = cold.payload;
    cold_misses = field(cold.header, "misses");
    daemon.send(R"({"op":"run","id":"boom","set":"linear-line"})" "\n");
    daemon.close_stdin();
    EXPECT_EQ(daemon.wait_exit(), 90);
  }
  // The restarted daemon answers entirely from the surviving files.
  Daemon revived({"--cache-dir", dir});
  const Frame warm =
      roundtrip(revived, R"({"op":"run","id":"w","set":"linear-line"})");
  EXPECT_EQ(field(warm.header, "hits"), cold_misses);
  EXPECT_EQ(field(warm.header, "misses"), "0");
  EXPECT_EQ(warm.payload, cold_payload);
}

TEST_F(ServeDaemon, TornReplyTruncatesExactlyAndDaemonStaysHealthy) {
  // Capture the expected full frame from a clean daemon first.
  std::string expected;
  {
    Daemon clean;
    const Frame reply =
        roundtrip(clean, R"({"op":"run","id":"t","set":"linear-line"})");
    expected = reply.header + "\n" + reply.payload + "\n";
  }
  // Same request with the reply writer torn at 25 bytes (first reply
  // only): the stream carries exactly the 25-byte prefix, and the
  // daemon still exits cleanly — a torn write never wedges it.
  Daemon torn({}, "serve.reply=torn_write(25),limit=1");
  torn.send(R"({"op":"run","id":"t","set":"linear-line"})" "\n");
  torn.close_stdin();
  const std::string bytes = torn.read_all();
  EXPECT_EQ(bytes, expected.substr(0, 25));
  EXPECT_EQ(torn.wait_exit(), 0);

  // The library decoder reports the truncation as a torn frame.
  std::istringstream stream(bytes);
  std::string header;
  std::string payload;
  EXPECT_THROW((void)serve::read_frame(stream, &header, &payload),
               serve::ServeError);
}

// ---------------------------------------------------------------------
// Forked dispatch: supervisor kill/partial semantics
// ---------------------------------------------------------------------

class ServeForked : public ServeDaemon {
 protected:
  void SetUp() override {
    ServeDaemon::SetUp();
#if RV_UNDER_TSAN
    GTEST_SKIP() << "TSan: threads after multi-threaded fork unsupported";
#endif
  }
};

TEST_F(ServeForked, ForkedDispatchMatchesRvBatchBytes) {
  const auto batch = run_and_capture(batch_cmd("run --set linear-line"));
  ASSERT_TRUE(batch.has_value());
  Scratch scratch;
  const std::string dir = (scratch.path / "cache").string();
  Daemon daemon({"--cache-dir", dir, "--procs", "2"});
  const Frame cold =
      roundtrip(daemon, R"({"op":"run","id":"f","set":"linear-line"})");
  EXPECT_EQ(field(cold.header, "reply"), "ok");
  EXPECT_EQ(field(cold.header, "misses"), "4");
  EXPECT_EQ(cold.payload, *batch);
  // The children exchanged set-qualified shard files.
  EXPECT_TRUE(
      fs::exists(fs::path(dir) / "linear-line-serve-shard-0-of-2.rvcache"));
  EXPECT_TRUE(
      fs::exists(fs::path(dir) / "linear-line-serve-shard-1-of-2.rvcache"));
  const Frame warm =
      roundtrip(daemon, R"({"op":"run","id":"w","set":"linear-line"})");
  EXPECT_EQ(field(warm.header, "hits"), "4");
  EXPECT_EQ(warm.payload, *batch);
}

TEST_F(ServeForked, FailedShardYieldsPinnedPartialReply) {
  Scratch scratch;
  // Shard 1 crashes every attempt; the request opted into partial
  // results, so the reply is the surviving strided subset with the
  // lost global indices named (linear-line: shard 1 of 2 owns 1, 3).
  Daemon daemon({"--cache-dir", (scratch.path / "cache").string(), "--procs",
                 "2"},
                "serve.shard=crash(87),index=1");
  const Frame partial = roundtrip(
      daemon, R"({"op":"run","id":"p","set":"linear-line","partial":true})");
  EXPECT_EQ(field(partial.header, "reply"), "partial");
  EXPECT_EQ(field(partial.header, "hits"), "0");
  EXPECT_EQ(field(partial.header, "misses"), "4");
  EXPECT_NE(partial.header.find("\"missing_indices\":[1,3]"),
            std::string::npos)
      << partial.header;
  // The surviving subset matches rv_batch --partial over the same
  // failure (shard 1 of 2 lost).
  const auto batch = run_and_capture(
      batch_cmd("run --set linear-line --shard 0/2 --cache-dir '" +
                (scratch.path / "ref").string() + "'"));
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(partial.payload, *batch)
      << "partial payload must equal the surviving shard's document";
}

TEST_F(ServeForked, FailedShardWithoutPartialIsAFailedReply) {
  Scratch scratch;
  Daemon daemon({"--cache-dir", (scratch.path / "cache").string(), "--procs",
                 "2"},
                "serve.shard=crash(87),index=0");
  const Frame failed =
      roundtrip(daemon, R"({"op":"run","id":"f","set":"linear-line"})");
  EXPECT_EQ(failed.header,
            R"x({"reply":"error","id":"f","code":"failed",)x"
            R"x("message":"shards failed after retries: 0 (request 'partial' )x"
            R"x(to accept the surviving subset)"})x");
}

// ---------------------------------------------------------------------
// Compaction timer
// ---------------------------------------------------------------------

TEST_F(ServeDaemon, CompactionTimerFoldsTheCacheDirectory) {
  Scratch scratch;
  const std::string dir = (scratch.path / "cache").string();
  std::string cold_payload;
  {
    Daemon daemon({"--cache-dir", dir, "--compact-interval-sec", "0.2"});
    const Frame cold =
        roundtrip(daemon, R"({"op":"run","id":"c","set":"linear-line"})");
    ASSERT_EQ(field(cold.header, "reply"), "ok");
    cold_payload = cold.payload;
    // Poll status until the timer has fired at least once.
    std::uint64_t compactions = 0;
    for (int attempt = 0; attempt < 100 && compactions == 0; ++attempt) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      const Frame status = roundtrip(
          daemon, R"({"op":"status","id":"s)" + std::to_string(attempt) +
                      "\"}");
      compactions = std::stoull(field(status.header, "compactions"));
    }
    EXPECT_GE(compactions, 1u) << "compaction timer never fired";
    daemon.close_stdin();
    EXPECT_EQ(daemon.wait_exit(), 0);
  }
  // The directory was folded into the canonical output, and a warm
  // restart replays everything from it.
  EXPECT_TRUE(fs::exists(fs::path(dir) / "compact.rvcache"));
  EXPECT_FALSE(fs::exists(fs::path(dir) / "linear-line-serve.rvcache"));
  Daemon revived({"--cache-dir", dir});
  const Frame warm =
      roundtrip(revived, R"({"op":"run","id":"w","set":"linear-line"})");
  EXPECT_EQ(field(warm.header, "misses"), "0");
  EXPECT_EQ(warm.payload, cold_payload);
}

// ---------------------------------------------------------------------
// Unix socket transport
// ---------------------------------------------------------------------

TEST_F(ServeDaemon, UnixSocketServesTheSameBytes) {
  const auto batch = run_and_capture(batch_cmd("run --set linear-line"));
  ASSERT_TRUE(batch.has_value());
  Scratch scratch;
  const std::string socket_path = (scratch.path / "rv.sock").string();

  const pid_t pid = fork();
  if (pid == 0) {
    execl(rv_serve_binary().c_str(), rv_serve_binary().c_str(), "--quiet",
          "--socket", socket_path.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  // Wait for the listener to appear.
  int fd = -1;
  for (int attempt = 0; attempt < 100; ++attempt) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof addr.sun_path - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      break;
    }
    ::close(fd);
    fd = -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_GE(fd, 0) << "could not connect to " << socket_path;

  const std::string request = R"({"op":"run","id":"s","set":"linear-line"})"
                              "\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  FdReadBuf buffer(fd);
  std::istream stream(&buffer);
  std::string header;
  std::string payload;
  ASSERT_TRUE(serve::read_frame(stream, &header, &payload));
  EXPECT_EQ(field(header, "reply"), "ok");
  EXPECT_EQ(payload, *batch);

  const std::string shutdown_req = R"({"op":"shutdown","id":"x"})" "\n";
  ASSERT_EQ(::write(fd, shutdown_req.data(), shutdown_req.size()),
            static_cast<ssize_t>(shutdown_req.size()));
  ASSERT_TRUE(serve::read_frame(stream, &header, &payload));
  EXPECT_EQ(header, R"({"reply":"shutdown","id":"x"})");
  ::close(fd);

  int status = 0;
  waitpid(pid, &status, 0);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// ---------------------------------------------------------------------
// In-process protocol units (no daemon)
// ---------------------------------------------------------------------

TEST(ServeRequestParse, StrictHeaderGrammar) {
  const serve::Request run = serve::parse_request(
      R"({"op":"run","id":"a","set":"s","format":"json",)"
      R"("deadline_ms":12.5,"partial":true})");
  EXPECT_EQ(run.op, serve::Op::kRun);
  EXPECT_EQ(run.id, "a");
  EXPECT_EQ(run.set, "s");
  EXPECT_EQ(run.format, "json");
  EXPECT_DOUBLE_EQ(run.deadline_ms, 12.5);
  EXPECT_TRUE(run.partial);

  const serve::Request body =
      serve::parse_request(R"({"op":"run","body_bytes":42})");
  EXPECT_TRUE(body.has_body);
  EXPECT_EQ(body.body_bytes, 42u);

  const auto code = [](const std::string& line) {
    try {
      (void)serve::parse_request(line);
    } catch (const serve::ServeError& error) {
      return error.code();
    }
    return std::string("no-error");
  };
  EXPECT_EQ(code(R"({"op":"run","set":"s"} trailing)"), "parse");
  EXPECT_EQ(code(R"({"op":"run","body_bytes":1.5})"), "parse");
  EXPECT_EQ(code(R"({"op":"run","body_bytes":-1})"), "parse");
  EXPECT_EQ(code(R"({"op":"shutdown","format":"csv"})"), "parse");
  EXPECT_EQ(code(R"({"op":"run","set":""})"), "parse");
  EXPECT_EQ(code(""), "parse");
  EXPECT_EQ(code(R"({"op":"run","set":"s")"), "parse");  // unterminated
}

TEST(ServeFrame, RoundTripsThroughReadFrame) {
  const std::string ok =
      serve::frame(R"({"reply":"ok","id":"1","bytes":5,"hits":0,)"
                   R"("misses":1,"uncacheable":0})",
                   "a,b\nc", true);
  const std::string error = serve::error_frame("2", "parse", "boom\nline");
  std::istringstream stream(ok + error);
  std::string header;
  std::string payload;
  ASSERT_TRUE(serve::read_frame(stream, &header, &payload));
  EXPECT_EQ(payload, "a,b\nc");
  ASSERT_TRUE(serve::read_frame(stream, &header, &payload));
  EXPECT_EQ(header,
            R"({"reply":"error","id":"2","code":"parse",)"
            R"("message":"boom\nline"})");
  EXPECT_TRUE(payload.empty());
  EXPECT_FALSE(serve::read_frame(stream, &header, &payload));
}

}  // namespace
