// Tests for CSV writing/parsing, table rendering, and the argv parser.

#include <gtest/gtest.h>

#include <sstream>

#include "io/args.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"

namespace {

using namespace rv::io;

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

TEST(Csv, EscapingRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(csv_escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(csv_escape("with\nnewline"), "\"with\nnewline\"");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(Csv, WriterProducesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"a", "b"});
  w.row({"1", "x,y"});
  w.row_numeric({2.5, -3.0});
  EXPECT_EQ(w.rows_written(), 2u);
  EXPECT_EQ(os.str(), "a,b\n1,\"x,y\"\n2.5,-3\n");
}

TEST(Csv, HeaderAfterDataThrows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"1"});
  EXPECT_THROW(w.header({"late"}), std::logic_error);
}

TEST(Csv, ParseRoundTrip) {
  const std::string text = "a,b\n1,\"x,y\"\n\"q\"\"uote\",2\n";
  const auto rows = parse_csv(text);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b"}));
  EXPECT_EQ(rows[1], (CsvRow{"1", "x,y"}));
  EXPECT_EQ(rows[2], (CsvRow{"q\"uote", "2"}));
}

TEST(Csv, ParseHandlesCrlfAndMissingTrailingNewline) {
  const auto rows = parse_csv("a,b\r\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (CsvRow{"c", "d"}));
}

TEST(Csv, ParseEmbeddedNewlineInQuotes) {
  const auto rows = parse_csv("\"line1\nline2\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "line1\nline2");
}

TEST(Csv, ParseUnterminatedQuoteThrows) {
  EXPECT_THROW((void)parse_csv("\"oops"), std::invalid_argument);
}

TEST(Csv, WriterRoundTripsThroughParser) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"x", "note"});
  w.row({"1.5", "a,b\nc\"d"});
  const auto rows = parse_csv(os.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "a,b\nc\"d");
}

TEST(Csv, FormatDouble) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(2.0), "2");
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

TEST(TableTest, AsciiRenderingAligns) {
  Table t({"name", "value"});
  t.set_align(0, Align::kLeft);
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("| alpha |"), std::string::npos);
  EXPECT_NE(ascii.find("|  22.5 |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(TableTest, MarkdownRendering) {
  Table t({"a", "b"});
  t.set_align(0, Align::kLeft);
  t.add_row({"x", "1"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("| :--- | ---: |"), std::string::npos);
  EXPECT_NE(md.find("| x | 1 |"), std::string::npos);
}

TEST(TableTest, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.set_align(5, Align::kLeft), std::out_of_range);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, NumericRowsAndPrint) {
  Table t({"x", "y"});
  t.add_numeric_row({1.23456, 2.0}, 3);
  std::ostringstream os;
  t.print(os, "title");
  EXPECT_NE(os.str().find("title"), std::string::npos);
  EXPECT_NE(os.str().find("1.235"), std::string::npos);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(format_fixed(0.0, 2), "0.00");
  // Very large/small magnitudes switch to scientific form.
  EXPECT_NE(format_fixed(1.5e9, 3).find('e'), std::string::npos);
  EXPECT_NE(format_fixed(1.5e-6, 3).find('e'), std::string::npos);
  EXPECT_EQ(format_sci(12345.0, 2), "1.23e+04");
}

// ---------------------------------------------------------------------------
// Args
// ---------------------------------------------------------------------------

TEST(ArgsTest, ParsesDeclaredFlags) {
  Args args;
  args.declare("name", "default", "a string");
  args.declare_double("x", 1.5, "a double");
  args.declare_int("n", 7, "an int");
  args.declare_bool("verbose", "a flag");
  const char* argv[] = {"prog", "--name", "value", "--x", "2.25",
                        "--verbose"};
  args.parse(6, argv);
  EXPECT_EQ(args.get("name"), "value");
  EXPECT_DOUBLE_EQ(args.get_double("x"), 2.25);
  EXPECT_EQ(args.get_int("n"), 7);  // default
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_FALSE(args.help_requested());
}

TEST(ArgsTest, HelpFlag) {
  Args args;
  args.declare_int("n", 1, "count");
  const char* argv[] = {"prog", "--help"};
  args.parse(2, argv);
  EXPECT_TRUE(args.help_requested());
  EXPECT_NE(args.usage("prog").find("--n"), std::string::npos);
}

TEST(ArgsTest, UnknownFlagThrows) {
  Args args;
  const char* argv[] = {"prog", "--mystery", "1"};
  EXPECT_THROW(args.parse(3, argv), std::invalid_argument);
}

TEST(ArgsTest, MissingValueThrows) {
  Args args;
  args.declare_int("n", 1, "count");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(args.parse(2, argv), std::invalid_argument);
}

TEST(ArgsTest, MalformedNumbersThrow) {
  Args args;
  args.declare_double("x", 1.0, "value");
  args.declare_int("n", 1, "count");
  const char* argv[] = {"prog", "--x", "1.5abc"};
  args.parse(3, argv);
  EXPECT_THROW((void)args.get_double("x"), std::invalid_argument);
  const char* argv2[] = {"prog", "--n", "7.5"};
  Args args2;
  args2.declare_int("n", 1, "count");
  args2.parse(3, argv2);
  EXPECT_THROW((void)args2.get_int("n"), std::invalid_argument);
}

TEST(ArgsTest, TypeMismatchThrows) {
  Args args;
  args.declare_int("n", 1, "count");
  EXPECT_THROW((void)args.get_double("n"), std::invalid_argument);
  EXPECT_THROW((void)args.get("n"), std::invalid_argument);
  EXPECT_THROW((void)args.get_bool("n"), std::invalid_argument);
}

TEST(ArgsTest, PositionalArgumentRejected) {
  Args args;
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(args.parse(2, argv), std::invalid_argument);
}

}  // namespace
