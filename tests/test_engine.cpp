// Tests for the engine layer: the shared certified sweep, declarative
// scenario sets, the deterministic parallel runner, and structured
// result emission.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "engine/contact_sweep.hpp"
#include "engine/runner.hpp"
#include "engine/scenario_set.hpp"
#include "gather/multi_simulator.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "mathx/constants.hpp"
#include "rendezvous/algorithm7.hpp"
#include "rendezvous/core.hpp"
#include "sim/simulator.hpp"
#include "traj/path.hpp"
#include "traj/program.hpp"

namespace {

using namespace rv;
using rv::engine::ContactSweep;
using rv::engine::RobotSpec;
using rv::engine::SweepMetric;
using rv::engine::SweepOptions;
using rv::geom::RobotAttributes;
using rv::geom::Vec2;
using rv::traj::Path;
using rv::traj::PathProgram;
using rv::traj::StationaryProgram;

std::shared_ptr<rv::traj::Program> straight_line(const Vec2& to) {
  Path p;
  p.line_to(to);
  return std::make_shared<PathProgram>(p, "line");
}

// ---------------------------------------------------------------------------
// ContactSweep core
// ---------------------------------------------------------------------------

TEST(ContactSweep, HeadOnPairMatchesClosedForm) {
  std::vector<RobotSpec> robots;
  robots.push_back({straight_line({100.0, 0.0}), RobotAttributes{},
                    Vec2{0.0, 0.0}});
  robots.push_back({straight_line({-100.0, 0.0}), RobotAttributes{},
                    Vec2{10.0, 0.0}});
  SweepOptions opts;
  opts.visibility = 2.0;
  opts.max_time = 1e6;
  ContactSweep sweep(std::move(robots), SweepMetric::kMinPairwise, opts);
  const auto res = sweep.run();
  ASSERT_TRUE(res.event);
  EXPECT_NEAR(res.time, 4.0, 1e-7);
  EXPECT_EQ(res.pair_i, 0);
  EXPECT_EQ(res.pair_j, 1);
  ASSERT_EQ(res.positions.size(), 2u);
}

TEST(ContactSweep, AgreesExactlyWithTwoRobotSimulator) {
  // The adapter must be a pure repackaging: identical event time,
  // metric, eval and segment counts.
  auto specs = [] {
    std::vector<RobotSpec> robots;
    robots.push_back({rendezvous::make_rendezvous_program(),
                      RobotAttributes{}, Vec2{0.0, 0.0}});
    RobotAttributes fast;
    fast.speed = 2.0;
    robots.push_back({rendezvous::make_rendezvous_program(), fast,
                      Vec2{1.0, 0.0}});
    return robots;
  };
  sim::SimOptions opts;
  opts.visibility = 0.2;
  opts.max_time = 1e6;

  auto robots = specs();
  sim::TwoRobotSimulator two(robots[0], robots[1], opts);
  const sim::SimResult a = two.run();

  ContactSweep sweep(specs(), SweepMetric::kMinPairwise, opts);
  const auto b = sweep.run();

  ASSERT_EQ(a.met, b.event);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.distance, b.metric);
  EXPECT_EQ(a.min_distance, b.best_metric);
  EXPECT_EQ(a.evals, b.evals);
  EXPECT_EQ(a.segments, b.segments);
}

TEST(ContactSweep, Validation) {
  auto mk = [] {
    return RobotSpec{std::make_shared<StationaryProgram>(), RobotAttributes{},
                     Vec2{0.0, 0.0}};
  };
  std::vector<RobotSpec> one;
  one.push_back(mk());
  EXPECT_THROW(
      ContactSweep(std::move(one), SweepMetric::kMinPairwise, SweepOptions{}),
      std::invalid_argument);

  std::vector<RobotSpec> with_null;
  with_null.push_back(mk());
  with_null.push_back({nullptr, RobotAttributes{}, Vec2{1.0, 0.0}});
  EXPECT_THROW(ContactSweep(std::move(with_null), SweepMetric::kMinPairwise,
                            SweepOptions{}),
               std::invalid_argument);

  std::vector<RobotSpec> ok;
  ok.push_back(mk());
  ok.push_back(mk());
  SweepOptions bad;
  bad.visibility = -1.0;
  EXPECT_THROW(ContactSweep(std::move(ok), SweepMetric::kMinPairwise, bad),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Regression: run_universal pinned against the pre-refactor simulator
// ---------------------------------------------------------------------------

// Values captured from the seed implementation (duplicated sweep in
// sim/simulator.cpp and gather/multi_simulator.cpp) before the engine
// extraction, with d = 1, r = 0.2, horizon 1e6.  The refactor must be
// bit-exact: same contact times, same eval/segment counts.
struct PinnedCase {
  double v, tau, phi;
  int chi;
  bool met;
  double time;
  double distance;
  std::uint64_t evals;
  std::uint64_t segments;
};

TEST(RunUniversalRegression, MatchesPreRefactorSimulator) {
  const std::vector<PinnedCase> pinned{
      {2.0, 1.0, 0.0, 1, true, 217.8051018300167, 0.20000000095451548, 152,
       24},
      {0.5, 1.0, 0.0, -1, true, 252.16635554067315, 0.20000000075467028, 168,
       46},
      {1.0, 0.5, 0.0, 1, true, 129.22443558226047, 0.20000000009695895, 58,
       25},
      {1.0, 0.75, 0.0, 1, true, 183.09972954242775, 0.20000000084347413, 76,
       22},
      {1.0, 1.0, mathx::kPi / 2.0, 1, true, 203.9455240075508,
       0.20000000059795897, 42, 12},
      {1.5, 0.6, 2.0, -1, true, 136.52038254201852, 0.20000000043805721, 61,
       16},
  };
  for (const PinnedCase& c : pinned) {
    RobotAttributes a;
    a.speed = c.v;
    a.time_unit = c.tau;
    a.orientation = c.phi;
    a.chirality = c.chi;
    const auto out = rendezvous::run_universal(a, 1.0, 0.2, 1e6);
    EXPECT_EQ(out.sim.met, c.met) << "v=" << c.v << " tau=" << c.tau;
    EXPECT_DOUBLE_EQ(out.sim.time, c.time) << "v=" << c.v << " tau=" << c.tau;
    EXPECT_DOUBLE_EQ(out.sim.distance, c.distance);
    EXPECT_EQ(out.sim.evals, c.evals) << "v=" << c.v << " tau=" << c.tau;
    EXPECT_EQ(out.sim.segments, c.segments);
  }
}

// ---------------------------------------------------------------------------
// ScenarioSet
// ---------------------------------------------------------------------------

TEST(ScenarioSet, GridCoversCrossProductInFixedOrder) {
  engine::ScenarioSet set;
  set.speeds({1.0, 2.0}).time_units({0.5, 1.0}).visibility(0.1);
  const auto cells = set.materialize();
  ASSERT_EQ(cells.size(), 4u);
  // speeds outermost, time_units next.
  EXPECT_EQ(cells[0].scenario.attrs.speed, 1.0);
  EXPECT_EQ(cells[0].scenario.attrs.time_unit, 0.5);
  EXPECT_EQ(cells[1].scenario.attrs.speed, 1.0);
  EXPECT_EQ(cells[1].scenario.attrs.time_unit, 1.0);
  EXPECT_EQ(cells[3].scenario.attrs.speed, 2.0);
  EXPECT_EQ(cells[3].scenario.attrs.time_unit, 1.0);
  for (const auto& cell : cells) {
    EXPECT_EQ(cell.scenario.visibility, 0.1);
  }
}

TEST(ScenarioSet, ExplicitAddsPrecedeGridAndHooksApply) {
  rendezvous::Scenario special;
  special.attrs.speed = 9.0;
  engine::ScenarioSet set;
  set.add(special, "special")
      .speeds({1.0, 2.0, 3.0})
      .filter([](const rendezvous::Scenario& s) {
        return s.attrs.speed != 2.0;  // drop one grid cell
      })
      .horizon([](const rendezvous::Scenario& s) {
        return 100.0 * s.attrs.speed;
      })
      .label([](const rendezvous::Scenario& s) {
        return "v=" + std::to_string(static_cast<int>(s.attrs.speed));
      });
  const auto cells = set.materialize();
  ASSERT_EQ(cells.size(), 3u);  // special + v=1 + v=3
  EXPECT_EQ(cells[0].label, "special");
  EXPECT_EQ(cells[0].scenario.max_time, 900.0);  // horizon hook applies
  EXPECT_EQ(cells[1].label, "v=1");
  EXPECT_EQ(cells[1].scenario.max_time, 100.0);
  EXPECT_EQ(cells[2].label, "v=3");
}

TEST(ScenarioSet, DistancesSugarSetsOffsetsOnXAxis) {
  engine::ScenarioSet set;
  set.distances({2.0, 5.0});
  const auto cells = set.materialize();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].scenario.offset.x, 2.0);
  EXPECT_EQ(cells[0].scenario.offset.y, 0.0);
  EXPECT_EQ(cells[1].scenario.offset.x, 5.0);
}

// ---------------------------------------------------------------------------
// Runner determinism + emission
// ---------------------------------------------------------------------------

engine::ScenarioSet small_grid() {
  engine::ScenarioSet set;
  set.speeds({0.5, 1.0, 2.0})
      .time_units({0.5, 1.0})
      .chiralities({1, -1})
      .visibility(0.25)
      .algorithm(rendezvous::AlgorithmChoice::kAlgorithm7)
      .max_time(500.0)
      .label([](const rendezvous::Scenario& s) {
        return "v" + io::format_double(s.attrs.speed, 3) + "/t" +
               io::format_double(s.attrs.time_unit, 3) + "/c" +
               std::to_string(s.attrs.chirality);
      });
  return set;
}

TEST(Runner, OneVsManyThreadsEmitByteIdenticalResults) {
  const auto set = small_grid();
  engine::RunnerOptions seq;
  seq.threads = 1;
  engine::RunnerOptions par;
  par.threads = 4;
  const engine::ResultSet a = engine::run_scenarios(set, seq);
  const engine::ResultSet b = engine::run_scenarios(set, par);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), 12u);
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_table().to_ascii(), b.to_table().to_ascii());
}

TEST(Runner, RecordsKeepScenarioOrderAndOutcomes) {
  engine::ScenarioSet set;
  rendezvous::Scenario fast;
  fast.attrs.speed = 2.0;
  fast.visibility = 0.2;
  fast.max_time = 1e6;
  rendezvous::Scenario infeasible;  // identical robots never meet
  infeasible.visibility = 0.2;
  infeasible.max_time = 200.0;
  set.add(fast, "fast").add(infeasible, "identical");
  const auto results = engine::run_scenarios(set);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].label, "fast");
  EXPECT_TRUE(results[0].outcome.sim.met);
  EXPECT_EQ(results[1].label, "identical");
  EXPECT_FALSE(results[1].outcome.sim.met);
  EXPECT_FALSE(rendezvous::is_feasible(results[1].outcome.feasibility));
  EXPECT_FALSE(results.all_met());
}

TEST(ResultSet, CsvHasHeaderLabelAndExtras) {
  engine::ScenarioSet set;
  rendezvous::Scenario s;
  s.attrs.speed = 2.0;
  s.visibility = 0.2;
  s.max_time = 1e6;
  set.add(s, "case-a");
  const auto results = engine::run_scenarios(set);
  const std::vector<engine::Column> extras{
      {"twice_time", [](const engine::RunRecord& rec) {
         return io::format_double(2.0 * rec.outcome.sim.time);
       }}};
  const auto header = results.csv_header(extras);
  ASSERT_FALSE(header.empty());
  EXPECT_EQ(header.front(), "label");
  EXPECT_EQ(header.back(), "twice_time");
  const auto rows = results.csv_rows(extras);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), header.size());
  EXPECT_EQ(rows[0].front(), "case-a");
  // CSV string parses back to the same grid.
  const auto parsed = io::parse_csv(results.to_csv(extras));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0], header);
  EXPECT_EQ(parsed[1], rows[0]);
}

TEST(ResultSet, JsonIsWellFormedEnoughToRoundTripKeys) {
  const auto results = engine::run_scenarios(small_grid());
  const std::string json = results.to_json();
  EXPECT_EQ(json.front(), '[');
  // One object per record.
  std::size_t count = 0;
  for (std::size_t pos = json.find("\"met\""); pos != std::string::npos;
       pos = json.find("\"met\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, results.size());
}

TEST(Runner, AdapterParityGatherVsTwoRobot) {
  // A 2-robot gather in first-contact mode and the two-robot simulator
  // must report the same event through their shared engine core.
  sim::SimOptions opts;
  opts.visibility = 0.2;
  opts.max_time = 1e6;
  const auto factory =
      rendezvous::program_factory(rendezvous::AlgorithmChoice::kAlgorithm7);
  RobotAttributes fast;
  fast.speed = 2.0;

  const auto two = sim::simulate_rendezvous(factory, fast, {1.0, 0.0}, opts);

  gather::GatherOptions gopts;
  gopts.sweep = opts;
  gopts.mode = gather::GatherMode::kFirstContact;
  const auto multi = gather::simulate_gathering(
      factory, {RobotAttributes{}, fast}, {{0.0, 0.0}, {1.0, 0.0}}, gopts);

  ASSERT_TRUE(two.met);
  ASSERT_TRUE(multi.achieved);
  EXPECT_EQ(two.time, multi.time);
  EXPECT_EQ(two.evals, multi.evals);
}

}  // namespace
