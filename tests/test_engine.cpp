// Tests for the engine layer: the shared certified sweep, declarative
// scenario sets, the deterministic parallel runner, and structured
// result emission.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/coverage.hpp"
#include "engine/contact_sweep.hpp"
#include "engine/families.hpp"
#include "engine/runner.hpp"
#include "engine/scenario_set.hpp"
#include "gather/multi_simulator.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "mathx/constants.hpp"
#include "rendezvous/algorithm7.hpp"
#include "rendezvous/core.hpp"
#include "rendezvous/variants.hpp"
#include "search/algorithm4.hpp"
#include "search/times.hpp"
#include "sim/simulator.hpp"
#include "traj/path.hpp"
#include "traj/program.hpp"

namespace {

using namespace rv;
using rv::engine::ContactSweep;
using rv::engine::RobotSpec;
using rv::engine::SweepMetric;
using rv::engine::SweepOptions;
using rv::geom::RobotAttributes;
using rv::geom::Vec2;
using rv::traj::Path;
using rv::traj::PathProgram;
using rv::traj::StationaryProgram;

std::shared_ptr<rv::traj::Program> straight_line(const Vec2& to) {
  Path p;
  p.line_to(to);
  return std::make_shared<PathProgram>(p, "line");
}

// ---------------------------------------------------------------------------
// A strict (RFC 8259) JSON parser for an array of flat objects — just
// enough to prove the emitters produce *parseable* JSON.  Throws
// std::runtime_error on any violation: raw control characters inside
// strings, bare inf/nan tokens, malformed numbers, trailing garbage.
// Scalar values are returned as strings: string values unescaped,
// numbers/booleans/null as their raw token text.
// ---------------------------------------------------------------------------

class StrictJson {
 public:
  using Row = std::map<std::string, std::string>;

  static std::vector<Row> parse_rows(const std::string& text) {
    StrictJson p(text);
    p.skip_ws();
    std::vector<Row> rows = p.parse_array();
    p.skip_ws();
    if (p.pos_ != p.s_.size()) p.fail("trailing content");
    return rows;
  }

 private:
  explicit StrictJson(const std::string& s) : s_(s) {}

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("StrictJson: " + why + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= s_.size()) throw std::runtime_error("StrictJson: EOF");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  std::vector<Row> parse_array() {
    expect('[');
    std::vector<Row> rows;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return rows;
    }
    while (true) {
      skip_ws();
      rows.push_back(parse_object());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return rows;
    }
  }

  Row parse_object() {
    expect('{');
    Row row;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return row;
    }
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      row[key] = parse_scalar();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return row;
    }
  }

  std::string parse_scalar() {
    const char c = peek();
    if (c == '"') return parse_string();
    if (c == 't') return parse_literal("true");
    if (c == 'f') return parse_literal("false");
    if (c == 'n') return parse_literal("null");
    return parse_number();
  }

  std::string parse_literal(const std::string& lit) {
    if (s_.compare(pos_, lit.size(), lit) != 0) fail("bad literal");
    pos_ += lit.size();
    return lit;
  }

  std::string parse_number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      fail("bad number");  // catches bare inf / nan
    }
    if (s_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        fail("bad fraction");
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        fail("bad exponent");
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    return s_.substr(start, pos_ - start);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) fail("dangling escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("short \\u escape");
            unsigned value = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              value <<= 4;
              if (h >= '0' && h <= '9') {
                value |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                value |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                value |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u digit");
              }
            }
            if (value < 0x80) {
              out += static_cast<char>(value);
            } else {
              fail("non-ASCII \\u escape (not needed by the emitters)");
            }
            break;
          }
          default: fail("unknown escape");
        }
        continue;
      }
      out += static_cast<char>(c);
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// ContactSweep core
// ---------------------------------------------------------------------------

TEST(ContactSweep, HeadOnPairMatchesClosedForm) {
  std::vector<RobotSpec> robots;
  robots.push_back({straight_line({100.0, 0.0}), RobotAttributes{},
                    Vec2{0.0, 0.0}});
  robots.push_back({straight_line({-100.0, 0.0}), RobotAttributes{},
                    Vec2{10.0, 0.0}});
  SweepOptions opts;
  opts.visibility = 2.0;
  opts.max_time = 1e6;
  ContactSweep sweep(std::move(robots), SweepMetric::kMinPairwise, opts);
  const auto res = sweep.run();
  ASSERT_TRUE(res.event);
  EXPECT_NEAR(res.time, 4.0, 1e-7);
  EXPECT_EQ(res.pair_i, 0);
  EXPECT_EQ(res.pair_j, 1);
  ASSERT_EQ(res.positions.size(), 2u);
}

TEST(ContactSweep, AgreesExactlyWithTwoRobotSimulator) {
  // The adapter must be a pure repackaging: identical event time,
  // metric, eval and segment counts.
  auto specs = [] {
    std::vector<RobotSpec> robots;
    robots.push_back({rendezvous::make_rendezvous_program(),
                      RobotAttributes{}, Vec2{0.0, 0.0}});
    RobotAttributes fast;
    fast.speed = 2.0;
    robots.push_back({rendezvous::make_rendezvous_program(), fast,
                      Vec2{1.0, 0.0}});
    return robots;
  };
  sim::SimOptions opts;
  opts.visibility = 0.2;
  opts.max_time = 1e6;

  auto robots = specs();
  sim::TwoRobotSimulator two(robots[0], robots[1], opts);
  const sim::SimResult a = two.run();

  ContactSweep sweep(specs(), SweepMetric::kMinPairwise, opts);
  const auto b = sweep.run();

  ASSERT_EQ(a.met, b.event);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.distance, b.metric);
  EXPECT_EQ(a.min_distance, b.best_metric);
  EXPECT_EQ(a.evals, b.evals);
  EXPECT_EQ(a.segments, b.segments);
}

TEST(ContactSweep, Validation) {
  auto mk = [] {
    return RobotSpec{std::make_shared<StationaryProgram>(), RobotAttributes{},
                     Vec2{0.0, 0.0}};
  };
  std::vector<RobotSpec> one;
  one.push_back(mk());
  EXPECT_THROW(
      ContactSweep(std::move(one), SweepMetric::kMinPairwise, SweepOptions{}),
      std::invalid_argument);

  std::vector<RobotSpec> with_null;
  with_null.push_back(mk());
  with_null.push_back({nullptr, RobotAttributes{}, Vec2{1.0, 0.0}});
  EXPECT_THROW(ContactSweep(std::move(with_null), SweepMetric::kMinPairwise,
                            SweepOptions{}),
               std::invalid_argument);

  std::vector<RobotSpec> ok;
  ok.push_back(mk());
  ok.push_back(mk());
  SweepOptions bad;
  bad.visibility = -1.0;
  EXPECT_THROW(ContactSweep(std::move(ok), SweepMetric::kMinPairwise, bad),
               std::invalid_argument);
}

// The run_universal seed capture (the pre-refactor simulator pins)
// lives in tests/test_golden.cpp now, as the full-precision golden
// file tests/golden/engine/universal_cells.csv.

// ---------------------------------------------------------------------------
// ScenarioSet
// ---------------------------------------------------------------------------

TEST(ScenarioSet, GridCoversCrossProductInFixedOrder) {
  engine::ScenarioSet set;
  set.speeds({1.0, 2.0}).time_units({0.5, 1.0}).visibility(0.1);
  const auto cells = set.materialize();
  ASSERT_EQ(cells.size(), 4u);
  // speeds outermost, time_units next.
  EXPECT_EQ(cells[0].scenario.attrs.speed, 1.0);
  EXPECT_EQ(cells[0].scenario.attrs.time_unit, 0.5);
  EXPECT_EQ(cells[1].scenario.attrs.speed, 1.0);
  EXPECT_EQ(cells[1].scenario.attrs.time_unit, 1.0);
  EXPECT_EQ(cells[3].scenario.attrs.speed, 2.0);
  EXPECT_EQ(cells[3].scenario.attrs.time_unit, 1.0);
  for (const auto& cell : cells) {
    EXPECT_EQ(cell.scenario.visibility, 0.1);
  }
}

TEST(ScenarioSet, ExplicitAddsPrecedeGridAndHooksApply) {
  rendezvous::Scenario special;
  special.attrs.speed = 9.0;
  engine::ScenarioSet set;
  set.add(special, "special")
      .speeds({1.0, 2.0, 3.0})
      .filter([](const rendezvous::Scenario& s) {
        return s.attrs.speed != 2.0;  // drop one grid cell
      })
      .horizon([](const rendezvous::Scenario& s) {
        return 100.0 * s.attrs.speed;
      })
      .label([](const rendezvous::Scenario& s) {
        return "v=" + std::to_string(static_cast<int>(s.attrs.speed));
      });
  const auto cells = set.materialize();
  ASSERT_EQ(cells.size(), 3u);  // special + v=1 + v=3
  EXPECT_EQ(cells[0].label, "special");
  EXPECT_EQ(cells[0].scenario.max_time, 900.0);  // horizon hook applies
  EXPECT_EQ(cells[1].label, "v=1");
  EXPECT_EQ(cells[1].scenario.max_time, 100.0);
  EXPECT_EQ(cells[2].label, "v=3");
}

TEST(ScenarioSet, DistancesSugarSetsOffsetsOnXAxis) {
  engine::ScenarioSet set;
  set.distances({2.0, 5.0});
  const auto cells = set.materialize();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].scenario.offset.x, 2.0);
  EXPECT_EQ(cells[0].scenario.offset.y, 0.0);
  EXPECT_EQ(cells[1].scenario.offset.x, 5.0);
}

// ---------------------------------------------------------------------------
// Runner determinism + emission
// ---------------------------------------------------------------------------

engine::ScenarioSet small_grid() {
  engine::ScenarioSet set;
  set.speeds({0.5, 1.0, 2.0})
      .time_units({0.5, 1.0})
      .chiralities({1, -1})
      .visibility(0.25)
      .algorithm(rendezvous::AlgorithmChoice::kAlgorithm7)
      .max_time(500.0)
      .label([](const rendezvous::Scenario& s) {
        return "v" + io::format_double(s.attrs.speed, 3) + "/t" +
               io::format_double(s.attrs.time_unit, 3) + "/c" +
               std::to_string(s.attrs.chirality);
      });
  return set;
}

TEST(Runner, OneVsManyThreadsEmitByteIdenticalResults) {
  const auto set = small_grid();
  engine::RunnerOptions seq;
  seq.threads = 1;
  engine::RunnerOptions par;
  par.threads = 4;
  const engine::ResultSet a = engine::run_scenarios(set, seq);
  const engine::ResultSet b = engine::run_scenarios(set, par);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), 12u);
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_table().to_ascii(), b.to_table().to_ascii());
}

TEST(Runner, RecordsKeepScenarioOrderAndOutcomes) {
  engine::ScenarioSet set;
  rendezvous::Scenario fast;
  fast.attrs.speed = 2.0;
  fast.visibility = 0.2;
  fast.max_time = 1e6;
  rendezvous::Scenario infeasible;  // identical robots never meet
  infeasible.visibility = 0.2;
  infeasible.max_time = 200.0;
  set.add(fast, "fast").add(infeasible, "identical");
  const auto results = engine::run_scenarios(set);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].label, "fast");
  EXPECT_TRUE(results[0].outcome.sim.met);
  EXPECT_EQ(results[1].label, "identical");
  EXPECT_FALSE(results[1].outcome.sim.met);
  EXPECT_FALSE(rendezvous::is_feasible(results[1].outcome.feasibility));
  EXPECT_FALSE(results.all_met());
}

TEST(ResultSet, CsvHasHeaderLabelAndExtras) {
  engine::ScenarioSet set;
  rendezvous::Scenario s;
  s.attrs.speed = 2.0;
  s.visibility = 0.2;
  s.max_time = 1e6;
  set.add(s, "case-a");
  const auto results = engine::run_scenarios(set);
  const std::vector<engine::Column> extras{
      {"twice_time", [](const engine::RunRecord& rec) {
         return io::format_double(2.0 * rec.outcome.sim.time);
       }}};
  const auto header = results.csv_header(extras);
  ASSERT_FALSE(header.empty());
  EXPECT_EQ(header.front(), "label");
  EXPECT_EQ(header.back(), "twice_time");
  const auto rows = results.csv_rows(extras);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), header.size());
  EXPECT_EQ(rows[0].front(), "case-a");
  // CSV string parses back to the same grid.
  const auto parsed = io::parse_csv(results.to_csv(extras));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0], header);
  EXPECT_EQ(parsed[1], rows[0]);
}

TEST(ResultSet, JsonIsWellFormedEnoughToRoundTripKeys) {
  const auto results = engine::run_scenarios(small_grid());
  const std::string json = results.to_json();
  EXPECT_EQ(json.front(), '[');
  // One object per record.
  std::size_t count = 0;
  for (std::size_t pos = json.find("\"met\""); pos != std::string::npos;
       pos = json.find("\"met\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, results.size());
}

// ---------------------------------------------------------------------------
// Certified event reporting: pair/metric/positions must be mutually
// consistent at the *bisected* event time, not at the detection
// evaluation (regression for the stale-pair bug).
// ---------------------------------------------------------------------------

TEST(ContactSweep, MaxPairwiseBisectionReportsPairAtCertifiedTime) {
  // Collinear construction.  A walks right from 0 (x_A = t), B walks
  // left from 5.3 (x_B = 5.3 − t), C sits at 3.4.  Pairwise distances:
  //   AB = |5.3 − 2t|   (≤ 1 on [2.15, 3.25], 0 at t = 2.65)
  //   AC = |3.4 − t|    (≤ 1 from t = 2.4 — the *binding* pair)
  //   BC = |1.9 − t|    (≤ 1 on [0.9, 2.9])
  // The max-pairwise event (all pairs within r = 1) starts at t = 2.4
  // with AC the extremal pair.  The sweep's first certified step lands
  // at t = 2.15 (metric 1.25); with min_step = 0.65 the Zeno guard then
  // forces the next evaluation to t = 2.8, *inside* the event window,
  // where the extremal pair is BC (0.9) — not AC.  Bisection certifies
  // the crossing back at t = 2.4, so the reported pair must be AC at
  // the certified time, not the stale detection pair BC.
  std::vector<RobotSpec> robots;
  robots.push_back({straight_line({10.0, 0.0}), RobotAttributes{},
                    Vec2{0.0, 0.0}});
  robots.push_back({straight_line({-10.0, 0.0}), RobotAttributes{},
                    Vec2{5.3, 0.0}});
  robots.push_back({std::make_shared<StationaryProgram>(), RobotAttributes{},
                    Vec2{3.4, 0.0}});
  SweepOptions opts;
  opts.visibility = 1.0;
  opts.max_time = 1e3;
  opts.min_step = 0.65;
  ContactSweep sweep(std::move(robots), SweepMetric::kMaxPairwise, opts);
  const auto res = sweep.run();
  ASSERT_TRUE(res.event);
  EXPECT_NEAR(res.time, 2.4, 1e-6);
  EXPECT_NEAR(res.metric, 1.0, 1e-6);
  // The reported pair is the one extremal at the certified time...
  EXPECT_EQ(res.pair_i, 0);
  EXPECT_EQ(res.pair_j, 2);
  // ...and pair/metric/positions agree exactly.
  ASSERT_EQ(res.positions.size(), 3u);
  double worst = 0.0;
  int wi = -1, wj = -1;
  for (int i = 0; i < 3; ++i) {
    for (int j = i + 1; j < 3; ++j) {
      const double d = geom::distance(res.positions[i], res.positions[j]);
      if (d > worst) {
        worst = d;
        wi = i;
        wj = j;
      }
    }
  }
  EXPECT_EQ(res.metric, worst);
  EXPECT_EQ(res.pair_i, wi);
  EXPECT_EQ(res.pair_j, wj);
}

TEST(ContactSweep, CoincidentRobotsStillReportAPair) {
  // Degenerate all-zero distances: the max-pairwise event fires at
  // t = 0 with metric 0, and the extremal pair must still be set (the
  // first pair in scan order), not left at -1.
  std::vector<RobotSpec> robots;
  for (int i = 0; i < 3; ++i) {
    robots.push_back({std::make_shared<StationaryProgram>(), RobotAttributes{},
                      Vec2{1.0, 1.0}});
  }
  SweepOptions opts;
  opts.visibility = 0.1;
  opts.max_time = 10.0;
  ContactSweep sweep(std::move(robots), SweepMetric::kMaxPairwise, opts);
  const auto res = sweep.run();
  ASSERT_TRUE(res.event);
  EXPECT_EQ(res.time, 0.0);
  EXPECT_EQ(res.metric, 0.0);
  EXPECT_EQ(res.pair_i, 0);
  EXPECT_EQ(res.pair_j, 1);
}

TEST(ContactSweep, HorizonReportReportsExtremalPairConsistently) {
  // Three identical robots on a unit ring never gather: at the horizon
  // the report must still carry a pair consistent with the returned
  // positions/metric (it used to stay at -1).
  std::vector<RobotSpec> robots;
  for (int i = 0; i < 3; ++i) {
    robots.push_back({rendezvous::make_rendezvous_program(),
                      RobotAttributes{},
                      geom::polar(1.0, 2.0 * mathx::kPi * i / 3.0)});
  }
  SweepOptions opts;
  opts.visibility = 0.05;
  opts.max_time = 50.0;
  ContactSweep sweep(std::move(robots), SweepMetric::kMaxPairwise, opts);
  const auto res = sweep.run();
  ASSERT_FALSE(res.event);
  ASSERT_EQ(res.positions.size(), 3u);
  ASSERT_GE(res.pair_i, 0);
  ASSERT_GT(res.pair_j, res.pair_i);
  EXPECT_EQ(res.metric, geom::distance(res.positions[res.pair_i],
                                       res.positions[res.pair_j]));
}

TEST(Runner, AdapterParityGatherVsTwoRobot) {
  // A 2-robot gather in first-contact mode and the two-robot simulator
  // must report the same event through their shared engine core.
  sim::SimOptions opts;
  opts.visibility = 0.2;
  opts.max_time = 1e6;
  const auto factory =
      rendezvous::program_factory(rendezvous::AlgorithmChoice::kAlgorithm7);
  RobotAttributes fast;
  fast.speed = 2.0;

  const auto two = sim::simulate_rendezvous(factory, fast, {1.0, 0.0}, opts);

  gather::GatherOptions gopts;
  gopts.sweep = opts;
  gopts.mode = gather::GatherMode::kFirstContact;
  const auto multi = gather::simulate_gathering(
      factory, {RobotAttributes{}, fast}, {{0.0, 0.0}, {1.0, 0.0}}, gopts);

  ASSERT_TRUE(two.met);
  ASSERT_TRUE(multi.achieved);
  EXPECT_EQ(two.time, multi.time);
  EXPECT_EQ(two.evals, multi.evals);
}

// ---------------------------------------------------------------------------
// Strict JSON / CSV emission round trips (hostile labels, non-finite
// fields) — regression for the raw-control-character and bare-inf/nan
// bugs in ResultSet::to_json.
// ---------------------------------------------------------------------------

engine::ResultSet hostile_result_set() {
  engine::RunRecord rec;
  rec.family = engine::Family::kRendezvous;
  rec.label = std::string("evil \x01\x02\b\f\"back\\slash\",\nnewline\tend");
  rec.scenario.attrs.speed = 2.0;
  rec.scenario.visibility = 0.25;
  rec.outcome.initial_distance = 1.0;
  rec.outcome.algorithm_name = "algo\fname";
  rec.outcome.sim.met = false;
  rec.outcome.sim.time = std::numeric_limits<double>::infinity();
  rec.outcome.sim.distance = std::numeric_limits<double>::quiet_NaN();
  rec.outcome.sim.min_distance = 0.5;
  return engine::ResultSet({rec});
}

TEST(ResultSet, JsonEscapesControlCharactersAndNullsNonFinite) {
  const engine::ResultSet results = hostile_result_set();
  const std::string json = results.to_json(
      {{"weird\x1f" "col", [](const engine::RunRecord&) {
          return std::string("cell with \x7f and \x02 ctl");
        }}});
  // Must parse as strict JSON...
  std::vector<StrictJson::Row> rows;
  ASSERT_NO_THROW(rows = StrictJson::parse_rows(json)) << json;
  ASSERT_EQ(rows.size(), 1u);
  // ...the hostile label round-trips exactly...
  EXPECT_EQ(rows[0].at("label"), results[0].label);
  EXPECT_EQ(rows[0].at("algorithm"), "algo\fname");
  EXPECT_EQ(rows[0].at("weird\x1f" "col"), "cell with \x7f and \x02 ctl");
  // ...and non-finite numbers are emitted as null, not bare inf/nan.
  EXPECT_EQ(rows[0].at("time"), "null");
  EXPECT_EQ(rows[0].at("distance"), "null");
  EXPECT_EQ(rows[0].at("min_distance"), "0.5");
  EXPECT_EQ(rows[0].at("met"), "false");
}

TEST(ResultSet, CsvRoundTripsHostileLabels) {
  const engine::ResultSet results = hostile_result_set();
  const auto parsed = io::parse_csv(results.to_csv());
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0], results.csv_header());
  EXPECT_EQ(parsed[1].front(), results[0].label);  // quotes/commas/newlines
}

TEST(ResultSet, RealSweepJsonIsStrictlyParseable) {
  const auto results = engine::run_scenarios(small_grid());
  std::vector<StrictJson::Row> rows;
  ASSERT_NO_THROW(rows = StrictJson::parse_rows(results.to_json()));
  ASSERT_EQ(rows.size(), results.size());
  EXPECT_EQ(rows[0].at("algorithm"), "algorithm7");
}

// ---------------------------------------------------------------------------
// Workload families: search cells (engine-side worst-over-angles
// reducer), gather cells, mixed sets, per-family emission.
// ---------------------------------------------------------------------------

TEST(Families, SearchGridMaterializesAndReduces) {
  engine::SearchCell base;
  base.angles = 4;
  base.angle_offset = 0.03;
  engine::ScenarioSet set;
  set.search_base(base)
      .search_distances({1.0})
      .search_radii({0.5, 0.25})
      .search_horizon([](const engine::SearchCell& c) {
        return rv::search::theorem1_bound(c.distance, c.visibility) + 1.0;
      });
  const auto results = engine::run_scenarios(set);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results.all_met());
  for (const engine::RunRecord& rec : results) {
    EXPECT_EQ(rec.family, engine::Family::kSearch);
    const engine::SearchOutcome& out = rec.search_outcome;
    EXPECT_EQ(out.found, 4);
    EXPECT_EQ(out.missed, 0);
    EXPECT_TRUE(out.complete);
    EXPECT_GE(out.worst_time, out.mean_time);
    EXPECT_EQ(out.program_name, "algorithm4");
  }
  // Per-family standard columns + strict JSON.
  const auto header = results.csv_header();
  EXPECT_EQ(header.front(), "d");
  EXPECT_EQ(header.back(), "segments");
  std::vector<StrictJson::Row> rows;
  ASSERT_NO_THROW(rows = StrictJson::parse_rows(results.to_json()));
  EXPECT_EQ(rows[0].at("found"), "4");
  EXPECT_EQ(rows[0].at("program"), "algorithm4");
}

TEST(Families, GatherCellRunsBothSweeps) {
  engine::GatherCell cell;
  cell.fleet = {RobotAttributes{}, [] {
                  RobotAttributes a;
                  a.speed = 2.0;
                  return a;
                }()};
  cell.ring_radius = 0.5;
  cell.visibility = 0.2;
  cell.contact_max_time = 1e5;
  cell.gather_max_time = 1e5;
  engine::ScenarioSet set;
  set.add_gather(cell, "pair");
  const auto results = engine::run_scenarios(set);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].family, engine::Family::kGather);
  const engine::GatherOutcome& out = results[0].gather_outcome;
  // Two robots: first contact and all-pairs coincide.
  ASSERT_TRUE(out.contact.achieved);
  ASSERT_TRUE(out.gathered.achieved);
  EXPECT_EQ(out.contact.time, out.gathered.time);
  std::vector<StrictJson::Row> rows;
  ASSERT_NO_THROW(rows = StrictJson::parse_rows(results.to_json()));
  EXPECT_EQ(rows[0].at("n"), "2");
  EXPECT_EQ(rows[0].at("contact"), "true");
}

TEST(Families, GatherSizeGridUsesFleetBuilderAndRing) {
  engine::GatherCell base;
  base.ring_radius = 2.0;
  base.contact_max_time = 10.0;
  base.gather_max_time = 10.0;
  engine::ScenarioSet set;
  set.gather_base(base).gather_sizes({2, 3, 4}).gather_label(
      [](const engine::GatherCell& c) {
        return "n=" + std::to_string(c.fleet.size());
      });
  const auto work = set.materialize_work();
  ASSERT_EQ(work.size(), 3u);
  EXPECT_EQ(work[0].gather.fleet.size(), 2u);
  EXPECT_EQ(work[2].gather.fleet.size(), 4u);
  EXPECT_EQ(work[1].label, "n=3");
  // Ring placement: robot 0 of every cell sits at (radius, 0).
  const auto origin0 = engine::gather_origin(work[1].gather, 0);
  EXPECT_NEAR(origin0.x, 2.0, 1e-12);
  EXPECT_NEAR(origin0.y, 0.0, 1e-12);
}

TEST(Families, MixedSetsRunTogetherAndEmitPerFamily) {
  engine::ScenarioSet set;
  rendezvous::Scenario fast;
  fast.attrs.speed = 2.0;
  fast.visibility = 0.2;
  fast.max_time = 1e6;
  set.add(fast, "rdv");
  engine::SearchCell cell;
  cell.distance = 1.0;
  cell.visibility = 0.5;
  cell.angles = 2;
  cell.angle_offset = 0.03;
  cell.max_time = 1e4;
  set.add_search(cell, "srch");
  engine::GatherCell gcell;
  gcell.fleet = {RobotAttributes{}, fast.attrs};
  gcell.ring_radius = 0.5;
  gcell.contact_max_time = 1e4;
  gcell.gather_max_time = 1e4;
  set.add_gather(gcell, "gthr");

  const auto results = engine::run_scenarios(set);
  ASSERT_EQ(results.size(), 3u);
  // Materialisation order: rendezvous, search, gather.
  EXPECT_EQ(results[0].family, engine::Family::kRendezvous);
  EXPECT_EQ(results[1].family, engine::Family::kSearch);
  EXPECT_EQ(results[2].family, engine::Family::kGather);
  // Mixed emission is rejected; per-family views emit fine.
  EXPECT_THROW((void)results.to_csv(), std::logic_error);
  EXPECT_THROW((void)results.to_json(), std::logic_error);
  for (const auto family :
       {engine::Family::kRendezvous, engine::Family::kSearch,
        engine::Family::kGather}) {
    const auto view = results.filtered(family);
    ASSERT_EQ(view.size(), 1u);
    EXPECT_NO_THROW((void)StrictJson::parse_rows(view.to_json()));
    EXPECT_EQ(io::parse_csv(view.to_csv()).size(), 2u);
  }
  // The rendezvous-only materialize() view refuses multi-family sets.
  EXPECT_THROW((void)set.materialize(), std::logic_error);
}

TEST(Families, ThreadCountDoesNotChangeFamilyEmission) {
  engine::SearchCell base;
  base.angles = 3;
  base.angle_offset = 0.07;
  base.max_time = 1e4;
  engine::ScenarioSet set;
  set.search_base(base).search_distances({1.0, 2.0}).search_radii({0.5, 0.25});
  engine::RunnerOptions seq;
  seq.threads = 1;
  engine::RunnerOptions par;
  par.threads = 4;
  const auto a = engine::run_scenarios(set, seq);
  const auto b = engine::run_scenarios(set, par);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_table().to_ascii(), b.to_table().to_ascii());
}

// The ported-bench pins (E1/E9/X1/A1 declarations vs the pre-port
// hand-rolled loops, and the new linear/coverage/component pins) live
// in tests/test_golden.cpp on the golden harness, and the full bench
// binaries are pinned byte-for-byte in tests/test_golden_benches.cpp.

// ---------------------------------------------------------------------------
// Scenario result cache
// ---------------------------------------------------------------------------

TEST(ScenarioCache, IdenticalOutputWithCacheOnAndOffAndCountersExercised) {
  // A mixed-family set with deliberate duplicates: the rendezvous grid
  // contains two cells, one of which is also added explicitly, and the
  // same gather cell is declared twice under different labels (labels
  // are not part of the content key).
  auto declare = [] {
    engine::ScenarioSet set;
    set.speeds({1.0, 2.0})
        .visibility(0.25)
        .algorithm(rendezvous::AlgorithmChoice::kAlgorithm7)
        .max_time(2e3)
        .label([](const rendezvous::Scenario& s) {
          return "v=" + io::format_double(s.attrs.speed);
        });
    rendezvous::Scenario dup;
    dup.attrs.speed = 2.0;
    dup.offset = {1.0, 0.0};
    dup.visibility = 0.25;
    dup.max_time = 2e3;
    set.add(dup, "explicit twin");
    return set;
  };
  auto gather_twice = [] {
    engine::ScenarioSet set;
    engine::GatherCell cell;
    cell.fleet = {RobotAttributes{}, RobotAttributes{}, RobotAttributes{}};
    cell.visibility = 0.2;
    cell.contact_max_time = 1e3;
    cell.gather_max_time = 1e3;
    set.add_gather(cell, "first");
    set.add_gather(cell, "second");
    return set;
  };

  engine::ScenarioCache cache;
  engine::RunnerOptions with_cache;
  with_cache.cache = &cache;
  with_cache.threads = 1;  // deterministic hit/miss split for the twin

  const auto plain = engine::run_scenarios(declare());
  const auto cached = engine::run_scenarios(declare(), with_cache);
  EXPECT_EQ(plain.cache_stats().hits, 0u);
  EXPECT_EQ(plain.cache_stats().misses, 0u);
  // 3 items, one duplicated: 2 misses + 1 hit (single worker thread
  // guarantees the twin sees the stored entry; with more threads the
  // duplicate could race to a miss, which is also correct).
  EXPECT_EQ(cached.cache_stats().hits + cached.cache_stats().misses, 3u);
  EXPECT_GE(cached.cache_stats().hits, 1u);
  EXPECT_EQ(cached.cache_stats().uncacheable, 0u);
  EXPECT_EQ(plain.to_csv(), cached.to_csv());
  EXPECT_EQ(plain.to_json(), cached.to_json());

  // A repeated run against the same cache replays everything.
  const auto replay = engine::run_scenarios(declare(), with_cache);
  EXPECT_EQ(replay.cache_stats().hits, 3u);
  EXPECT_EQ(replay.cache_stats().misses, 0u);
  EXPECT_EQ(plain.to_csv(), replay.to_csv());

  // Gather duplicates share one computation; outputs stay identical.
  engine::ScenarioCache gcache;
  engine::RunnerOptions gopts;
  gopts.cache = &gcache;
  gopts.threads = 1;
  const auto gplain = engine::run_scenarios(gather_twice());
  const auto gcached = engine::run_scenarios(gather_twice(), gopts);
  EXPECT_EQ(gcached.cache_stats().hits + gcached.cache_stats().misses, 2u);
  EXPECT_EQ(gcache.size(), 1u);
  EXPECT_EQ(gplain.to_csv(), gcached.to_csv());
  // filtered() carries the producing run's counters through.
  EXPECT_EQ(gcached.filtered(engine::Family::kGather).cache_stats().hits,
            gcached.cache_stats().hits);
}

TEST(ScenarioCache, SearchCellsDifferingOnlyInProgramNameDoNotCollide) {
  // run_search_cell echoes a non-empty program_name into the reported
  // outcome even when no custom factory is set, so the name must be
  // part of the content key: two cells identical except for it must
  // not share a cache entry (regression: the second cell used to
  // replay the first's program column).
  auto declare = [] {
    engine::ScenarioSet set;
    engine::SearchCell cell;
    cell.distance = 1.0;
    cell.visibility = 0.25;
    cell.angles = 2;
    cell.max_time = 1e4;
    set.add_search(cell);
    cell.program_name = "display-name";
    set.add_search(cell);
    return set;
  };
  engine::ScenarioCache cache;
  engine::RunnerOptions opts;
  opts.cache = &cache;
  opts.threads = 1;
  const auto plain = engine::run_scenarios(declare());
  const auto cached = engine::run_scenarios(declare(), opts);
  EXPECT_EQ(cached.cache_stats().misses, 2u);
  EXPECT_EQ(cached.cache_stats().hits, 0u);
  EXPECT_EQ(cached[0].search_outcome.program_name, "algorithm4");
  EXPECT_EQ(cached[1].search_outcome.program_name, "display-name");
  EXPECT_EQ(plain.to_csv(), cached.to_csv());
  const auto replay = engine::run_scenarios(declare(), opts);
  EXPECT_EQ(replay.cache_stats().hits, 2u);
  EXPECT_EQ(plain.to_csv(), replay.to_csv());
}

TEST(ScenarioCache, AnonymousCustomProgramsAreUncacheable) {
  engine::ScenarioSet set;
  rendezvous::Scenario s;
  s.attrs.time_unit = 0.5;
  s.offset = {1.0, 0.0};
  s.visibility = 0.1;
  s.max_time = 5e6;
  s.program = [] {
    return rendezvous::make_variant_rendezvous_program(
        rendezvous::ActivePhaseOrder::kForwardThenReverse);
  };
  // No program_name: the factory has no stable identity, so the item
  // must bypass the cache entirely (recomputed every run, never
  // stored).
  set.add(s);
  engine::ScenarioCache cache;
  engine::RunnerOptions opts;
  opts.cache = &cache;
  const auto first = engine::run_scenarios(set, opts);
  const auto second = engine::run_scenarios(set, opts);
  EXPECT_EQ(first.cache_stats().uncacheable, 1u);
  EXPECT_EQ(second.cache_stats().uncacheable, 1u);
  EXPECT_EQ(second.cache_stats().hits, 0u);
  EXPECT_EQ(cache.size(), 0u);
  // Naming the program makes the same cell cacheable.
  s.program_name = "variant-fwd-rev";
  engine::ScenarioSet named;
  named.add(s);
  const auto third = engine::run_scenarios(named, opts);
  EXPECT_EQ(third.cache_stats().misses, 1u);
  const auto fourth = engine::run_scenarios(named, opts);
  EXPECT_EQ(fourth.cache_stats().hits, 1u);
  EXPECT_EQ(first.to_csv(), second.to_csv());
  EXPECT_EQ(third.to_csv(), fourth.to_csv());
}

// ---------------------------------------------------------------------------
// Linear family: 1-D zigzag search and linear rendezvous cells.
// ---------------------------------------------------------------------------

TEST(Families, LinearCellsRunBothModes) {
  engine::ScenarioSet set;
  // Zigzag search reaches targets on both sides of the origin.
  engine::LinearCell search_cell;
  search_cell.mode = engine::LinearMode::kZigZagSearch;
  search_cell.target = -3.0;
  search_cell.visibility = 0.01;
  search_cell.max_time = 1e3;
  set.add_linear(search_cell, "left");
  // Feasible (clock difference) and infeasible (identical robots)
  // rendezvous cells.
  engine::LinearCell feasible_cell;
  feasible_cell.mode = engine::LinearMode::kRendezvous;
  feasible_cell.attrs.time_unit = 0.5;
  feasible_cell.visibility = 0.1;
  feasible_cell.max_time = 1e6;
  set.add_linear(feasible_cell, "tau");
  engine::LinearCell identical_cell;
  identical_cell.mode = engine::LinearMode::kRendezvous;
  identical_cell.visibility = 0.1;
  identical_cell.max_time = 1e3;
  set.add_linear(identical_cell, "identical");

  const auto results = engine::run_scenarios(set);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].family, engine::Family::kLinear);
  EXPECT_TRUE(results[0].linear_outcome.feasible);
  EXPECT_TRUE(results[0].linear_outcome.sim.met);
  EXPECT_TRUE(results[1].linear_outcome.feasible);
  EXPECT_TRUE(results[1].linear_outcome.sim.met);
  // Identical robots on the line never meet — the [11] feasibility
  // predicate and the simulation agree.
  EXPECT_FALSE(results[2].linear_outcome.feasible);
  EXPECT_FALSE(results[2].linear_outcome.sim.met);
  EXPECT_FALSE(results.all_met());

  // Per-family standard columns + strict JSON.
  const auto header = results.csv_header();
  EXPECT_EQ(header.front(), "label");
  EXPECT_EQ(header[1], "mode");
  std::vector<StrictJson::Row> rows;
  ASSERT_NO_THROW(rows = StrictJson::parse_rows(results.to_json()));
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].at("mode"), "zigzag-search");
  EXPECT_EQ(rows[1].at("mode"), "linear-rendezvous");
  EXPECT_EQ(rows[2].at("met"), "false");
}

TEST(Families, LinearGridMaterializesWithHooks) {
  engine::LinearCell base;
  base.mode = engine::LinearMode::kZigZagSearch;
  engine::ScenarioSet set;
  set.linear_base(base)
      .linear_distances({1.0, 2.0, 4.0})
      .linear_radii({0.1, 0.2})
      .linear_filter(
          [](const engine::LinearCell& c) { return c.target != 2.0; })
      .linear_horizon([](const engine::LinearCell& c) {
        return 100.0 * c.target;
      })
      .linear_label([](const engine::LinearCell& c) {
        return "d=" + io::format_double(c.target);
      });
  const auto work = set.materialize_work();
  ASSERT_EQ(work.size(), 4u);  // (3 − 1 filtered) distances × 2 radii
  EXPECT_EQ(work[0].family, engine::Family::kLinear);
  EXPECT_EQ(work[0].linear.target, 1.0);
  EXPECT_EQ(work[0].linear.visibility, 0.1);
  EXPECT_EQ(work[1].linear.visibility, 0.2);
  EXPECT_EQ(work[0].linear.max_time, 100.0);
  EXPECT_EQ(work[2].linear.target, 4.0);
  EXPECT_EQ(work[2].label, "d=4");
  // The rendezvous-only view refuses linear sets.
  EXPECT_THROW((void)set.materialize(), std::logic_error);
}

// ---------------------------------------------------------------------------
// Coverage family: rasterised swept-area cells.
// ---------------------------------------------------------------------------

engine::ScenarioSet small_coverage_grid() {
  engine::CoverageCell base;
  base.disk_radius = 1.0;
  base.visibility = 0.25;
  base.cell = 0.1;
  base.checkpoints = 6;
  base.horizon = 60.0;
  engine::ScenarioSet set;
  set.coverage_base(base).coverage_programs(
      {engine::SearchProgram::kAlgorithm4,
       engine::SearchProgram::kConcentric});
  return set;
}

TEST(Families, CoverageCellsMeasureSweptArea) {
  const auto results = engine::run_scenarios(small_coverage_grid());
  ASSERT_EQ(results.size(), 2u);
  for (const engine::RunRecord& rec : results) {
    EXPECT_EQ(rec.family, engine::Family::kCoverage);
    const engine::CoverageOutcome& out = rec.coverage_outcome;
    ASSERT_EQ(out.series.size(), 6u);
    // Coverage is monotone in time and the summary fields agree with
    // the series.
    for (std::size_t i = 1; i < out.series.size(); ++i) {
      EXPECT_GE(out.series[i].fraction, out.series[i - 1].fraction);
      EXPECT_GE(out.series[i].covered_area, out.series[i - 1].covered_area);
    }
    EXPECT_EQ(out.final_fraction, out.series.back().fraction);
    EXPECT_EQ(out.covered_area, out.series.back().covered_area);
    EXPECT_EQ(out.t50, analysis::time_to_fraction(out.series, 0.50));
    EXPECT_GT(out.final_fraction, 0.5);  // generous horizon for R = 1
  }
  EXPECT_EQ(results[0].coverage_outcome.program_name, "algorithm4");
  EXPECT_EQ(results[1].coverage_outcome.program_name, "baseline-concentric");
  // Standard columns + strict JSON.
  const auto header = results.csv_header();
  EXPECT_EQ(header.front(), "program");
  EXPECT_EQ(header.back(), "covered_area");
  std::vector<StrictJson::Row> rows;
  ASSERT_NO_THROW(rows = StrictJson::parse_rows(results.to_json()));
  EXPECT_EQ(rows[0].at("checkpoints"), "6");
}

TEST(Families, LinearAndCoverageThreadCountDoesNotChangeEmission) {
  engine::LinearCell base;
  base.mode = engine::LinearMode::kZigZagSearch;
  base.visibility = 0.05;
  base.max_time = 1e3;
  engine::ScenarioSet set;
  set.linear_base(base).linear_distances({1.0, 2.0, 3.0}).linear_radii(
      {0.05, 0.1});
  engine::ScenarioSet cov = small_coverage_grid();

  engine::RunnerOptions seq;
  seq.threads = 1;
  engine::RunnerOptions par;
  par.threads = 4;
  for (const engine::ScenarioSet* s : {&set, &cov}) {
    const auto a = engine::run_scenarios(*s, seq);
    const auto b = engine::run_scenarios(*s, par);
    EXPECT_EQ(a.to_csv(), b.to_csv());
    EXPECT_EQ(a.to_json(), b.to_json());
    EXPECT_EQ(a.to_table().to_ascii(), b.to_table().to_ascii());
  }
}

// ---------------------------------------------------------------------------
// Component-times hook.
// ---------------------------------------------------------------------------

TEST(Components, HookColumnsEmitAcrossAllFormats) {
  engine::SearchCell cell;
  cell.distance = 1.0;
  cell.visibility = 0.5;
  cell.angles = 2;
  cell.angle_offset = 0.03;
  cell.max_time = 1e4;
  engine::ScenarioSet set;
  set.add_search(cell, "hooked")
      .search_components([](const engine::SearchCell& c,
                            const engine::SearchOutcome& out) {
        return engine::Components{{"twice_d", 2.0 * c.distance},
                                  {"worst_sq", out.worst_time * out.worst_time}};
      });
  const auto results = engine::run_scenarios(set);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_EQ(results[0].components.size(), 2u);
  EXPECT_EQ(engine::component_value(results[0].components, "twice_d"), 2.0);
  EXPECT_THROW(
      (void)engine::component_value(results[0].components, "missing"),
      std::out_of_range);

  // CSV: component columns sit between the standard columns and extras.
  const std::vector<engine::Column> extras{
      {"extra", [](const engine::RunRecord&) { return std::string("x"); }}};
  const auto header = results.csv_header(extras);
  ASSERT_GE(header.size(), 3u);
  EXPECT_EQ(header[header.size() - 3], "twice_d");
  EXPECT_EQ(header[header.size() - 2], "worst_sq");
  EXPECT_EQ(header.back(), "extra");
  const auto rows = results.csv_rows(extras);
  EXPECT_EQ(rows[0][header.size() - 3], io::format_double(2.0));
  // JSON: components are numeric fields, strictly parseable.
  std::vector<StrictJson::Row> json;
  ASSERT_NO_THROW(json = StrictJson::parse_rows(results.to_json()));
  EXPECT_EQ(json[0].at("twice_d"), "2");
  // Table: one column per component.
  EXPECT_NE(results.to_table().to_ascii().find("worst_sq"), std::string::npos);
}

TEST(Components, RendezvousOnlyMaterializeRejectsComponentSets) {
  // LabeledScenario cannot carry hooks or the components-only flag, so
  // the historical view must refuse instead of silently dropping them.
  engine::ScenarioSet with_hook;
  with_hook.add(rendezvous::Scenario{});
  with_hook.components([](const rendezvous::Scenario&,
                          const rendezvous::Outcome&) {
    return engine::Components{{"c", 1.0}};
  });
  EXPECT_THROW((void)with_hook.materialize(), std::logic_error);
  EXPECT_NO_THROW((void)with_hook.materialize_work());

  engine::ScenarioSet algebra;
  algebra.components_only().add(rendezvous::Scenario{});
  EXPECT_THROW((void)algebra.materialize(), std::logic_error);

  engine::ScenarioSet per_cell;
  per_cell.add(rendezvous::Scenario{}, "",
               [](const rendezvous::Scenario&, const rendezvous::Outcome&) {
                 return engine::Components{{"c", 1.0}};
               });
  EXPECT_THROW((void)per_cell.materialize(), std::logic_error);

  engine::ScenarioSet plain;
  plain.add(rendezvous::Scenario{});
  EXPECT_NO_THROW((void)plain.materialize());
}

TEST(Components, MismatchedSchemasRejectEmission) {
  engine::SearchCell cell;
  cell.visibility = 0.5;
  cell.angles = 1;
  cell.max_time = 1e4;
  engine::ScenarioSet set;
  set.add_search(cell, "a",
                 [](const engine::SearchCell&, const engine::SearchOutcome&) {
                   return engine::Components{{"one", 1.0}};
                 });
  set.add_search(cell, "b",
                 [](const engine::SearchCell&, const engine::SearchOutcome&) {
                   return engine::Components{{"two", 2.0}};
                 });
  const auto results = engine::run_scenarios(set);
  EXPECT_THROW((void)results.to_csv(), std::logic_error);
  EXPECT_THROW((void)results.to_json(), std::logic_error);
  EXPECT_THROW((void)results.to_table(), std::logic_error);
}

TEST(Components, ComponentsOnlySkipsPayloadAndBypassesCache) {
  engine::ScenarioSet set;
  set.components_only()
      .search_distances({1.0, 2.0})
      .search_components([](const engine::SearchCell& c,
                            const engine::SearchOutcome&) {
        return engine::Components{{"d3", 3.0 * c.distance}};
      });
  engine::ScenarioCache cache;
  engine::RunnerOptions opts;
  opts.cache = &cache;
  const auto results = engine::run_scenarios(set, opts);
  ASSERT_EQ(results.size(), 2u);
  for (const engine::RunRecord& rec : results) {
    // No payload ran: the outcome is untouched.
    EXPECT_EQ(rec.search_outcome.evals, 0u);
    EXPECT_EQ(rec.search_outcome.found, 0);
    EXPECT_TRUE(rec.search_outcome.program_name.empty());
  }
  EXPECT_EQ(engine::component_value(results[1].components, "d3"), 6.0);
  // Components-only items have no content key: never stored, counted
  // as uncacheable.
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(results.cache_stats().uncacheable, 2u);
  EXPECT_EQ(results.cache_stats().hits, 0u);
  EXPECT_EQ(results.cache_stats().misses, 0u);
}

TEST(Components, PerCellHookOverridesSetHookAndSurvivesCacheReplay) {
  auto declare = [] {
    engine::SearchCell cell;
    cell.visibility = 0.5;
    cell.angles = 1;
    cell.angle_offset = 0.03;
    cell.max_time = 1e4;
    engine::ScenarioSet set;
    set.search_components([](const engine::SearchCell&,
                             const engine::SearchOutcome&) {
      return engine::Components{{"which", 1.0}};
    });
    set.add_search(cell, "set-hook");
    set.add_search(cell, "own-hook",
                   [](const engine::SearchCell&,
                      const engine::SearchOutcome& out) {
                     return engine::Components{
                         {"which", 2.0},
                         {"t", out.worst_time}};
                   });
    return set;
  };
  engine::ScenarioCache cache;
  engine::RunnerOptions opts;
  opts.cache = &cache;
  opts.threads = 1;
  const auto first = engine::run_scenarios(declare(), opts);
  // Identical cell content: one miss, one hit — but each record keeps
  // its own hook's components (hooks are re-evaluated, never cached).
  EXPECT_EQ(first.cache_stats().misses, 1u);
  EXPECT_EQ(first.cache_stats().hits, 1u);
  EXPECT_EQ(engine::component_value(first[0].components, "which"), 1.0);
  EXPECT_EQ(engine::component_value(first[1].components, "which"), 2.0);
  ASSERT_EQ(first[1].components.size(), 2u);
  // The replayed outcome feeds the hook the same values as a computed
  // one: worst_time of the hit matches the miss's.
  EXPECT_EQ(engine::component_value(first[1].components, "t"),
            first[0].search_outcome.worst_time);
  const auto replay = engine::run_scenarios(declare(), opts);
  EXPECT_EQ(replay.cache_stats().hits, 2u);
  EXPECT_EQ(engine::component_value(replay[1].components, "t"),
            engine::component_value(first[1].components, "t"));
}

// ---------------------------------------------------------------------------
// Cache behaviour of the new families.
// ---------------------------------------------------------------------------

TEST(ScenarioCache, LinearAndCoverageCellsReplayByteIdentical) {
  auto declare_linear = [] {
    engine::LinearCell base;
    base.mode = engine::LinearMode::kRendezvous;
    base.attrs.time_unit = 0.5;
    base.visibility = 0.2;
    base.max_time = 1e5;
    engine::ScenarioSet set;
    set.linear_base(base).linear_distances({1.0, 1.0, 2.0});  // duplicate cell
    return set;
  };
  engine::ScenarioCache cache;
  engine::RunnerOptions opts;
  opts.cache = &cache;
  opts.threads = 1;
  const auto plain = engine::run_scenarios(declare_linear());
  const auto cached = engine::run_scenarios(declare_linear(), opts);
  EXPECT_EQ(cached.cache_stats().misses, 2u);
  EXPECT_EQ(cached.cache_stats().hits, 1u);
  EXPECT_EQ(plain.to_csv(), cached.to_csv());
  EXPECT_EQ(plain.to_json(), cached.to_json());
  const auto replay = engine::run_scenarios(declare_linear(), opts);
  EXPECT_EQ(replay.cache_stats().hits, 3u);
  EXPECT_EQ(replay.cache_stats().misses, 0u);
  EXPECT_EQ(plain.to_csv(), replay.to_csv());

  auto declare_coverage = [] {
    auto set = small_coverage_grid();
    engine::CoverageCell dup;
    dup.disk_radius = 1.0;
    dup.visibility = 0.25;
    dup.cell = 0.1;
    dup.checkpoints = 6;
    dup.horizon = 60.0;
    set.add_coverage(dup, "explicit twin");  // = the grid's algorithm4 cell
    return set;
  };
  engine::ScenarioCache ccache;
  engine::RunnerOptions copts;
  copts.cache = &ccache;
  copts.threads = 1;
  const auto cplain = engine::run_scenarios(declare_coverage());
  const auto ccached = engine::run_scenarios(declare_coverage(), copts);
  EXPECT_EQ(ccached.cache_stats().hits + ccached.cache_stats().misses, 3u);
  EXPECT_GE(ccached.cache_stats().hits, 1u);
  EXPECT_EQ(cplain.to_csv(), ccached.to_csv());
  EXPECT_EQ(cplain.to_json(), ccached.to_json());
  // The replayed series is the computed series, checkpoint for
  // checkpoint.
  ASSERT_EQ(ccached[0].coverage_outcome.series.size(),
            cplain[0].coverage_outcome.series.size());
  // Anonymous coverage factories are uncacheable, like search ones.
  engine::CoverageCell anon;
  anon.disk_radius = 1.0;
  anon.visibility = 0.25;
  anon.cell = 0.1;
  anon.checkpoints = 2;
  anon.horizon = 10.0;
  anon.program_factory = [] { return rv::search::make_search_program(); };
  engine::WorkItem item;
  item.family = engine::Family::kCoverage;
  item.coverage = anon;
  EXPECT_FALSE(engine::cache_key(item).has_value());
  item.coverage.program_name = "named";
  EXPECT_TRUE(engine::cache_key(item).has_value());
}

// ---------------------------------------------------------------------------
// Empty result sets: filtered()/cache_stats()/emission must return
// empty/zeroed values, never throw or read uninitialized state.
// ---------------------------------------------------------------------------

TEST(ResultSet, EmptySetIsWellBehaved) {
  const engine::ResultSet empty;
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(empty.all_met());  // vacuously
  // cache_stats: all-zero counters, not garbage.
  EXPECT_EQ(empty.cache_stats().hits, 0u);
  EXPECT_EQ(empty.cache_stats().misses, 0u);
  EXPECT_EQ(empty.cache_stats().uncacheable, 0u);
  // filtered: empty in, empty out, for every family.
  for (const auto family :
       {engine::Family::kRendezvous, engine::Family::kSearch,
        engine::Family::kGather, engine::Family::kLinear,
        engine::Family::kCoverage}) {
    const auto view = empty.filtered(family);
    EXPECT_TRUE(view.empty());
    EXPECT_EQ(view.cache_stats().hits, 0u);
  }
  // Emission: header-only CSV, empty-but-valid JSON array, empty table.
  EXPECT_EQ(io::parse_csv(empty.to_csv()).size(), 1u);
  std::vector<StrictJson::Row> rows;
  ASSERT_NO_THROW(rows = StrictJson::parse_rows(empty.to_json()));
  EXPECT_TRUE(rows.empty());
  EXPECT_NO_THROW((void)empty.to_table().to_ascii());

  // A filtered() miss on a non-empty set behaves the same way.
  engine::ScenarioSet set;
  engine::SearchCell cell;
  cell.visibility = 0.5;
  cell.angles = 1;
  cell.max_time = 1e4;
  set.add_search(cell);
  const auto results = engine::run_scenarios(set);
  const auto none = results.filtered(engine::Family::kCoverage);
  EXPECT_TRUE(none.empty());
  EXPECT_NO_THROW((void)none.to_csv());
  EXPECT_EQ(none.cache_stats().hits, results.cache_stats().hits);
}

}  // namespace
