// Property tests for the near-linear metric kernels: on randomized and
// degenerate fleets the grid closest-pair and calipers diameter must
// return the exact same metric value (bitwise) and the exact same
// extremal pair — including the lexicographic tie-break order — as the
// historical brute-force hypot loop; the O(n) top-two-speeds Lipschitz
// bound must equal the O(n²) pair maximum; and SweepOptions must
// reject non-finite knobs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "engine/contact_sweep.hpp"
#include "engine/metric_kernel.hpp"
#include "geom/closest_pair.hpp"
#include "geom/convex_hull.hpp"
#include "geom/vec2.hpp"
#include "mathx/constants.hpp"
#include "rendezvous/algorithm7.hpp"

namespace {

using rv::engine::KernelChoice;
using rv::engine::max_pairwise;
using rv::engine::min_pairwise;
using rv::geom::ExtremalPair;
using rv::geom::Vec2;

// ---------------------------------------------------------------------------
// Deterministic randomness (no <random> so sequences are pinned
// across standard libraries).
// ---------------------------------------------------------------------------

struct Lcg {
  std::uint64_t state;
  explicit Lcg(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 11;
  }
  double uniform() {  // [0, 1)
    return static_cast<double>(next() % (1ULL << 40)) /
           static_cast<double>(1ULL << 40);
  }
  int index(int n) { return static_cast<int>(next() % n); }
};

// ---------------------------------------------------------------------------
// The oracle: the historical O(n²) loop exactly as ContactSweep wrote
// it before the kernel layer (hypot per pair, strict comparison, first
// attaining pair wins).
// ---------------------------------------------------------------------------

ExtremalPair oracle_min(const std::vector<Vec2>& pts) {
  double best = std::numeric_limits<double>::infinity();
  int bi = -1, bj = -1;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      const double d = rv::geom::distance(pts[i], pts[j]);
      if (d < best) {
        best = d;
        bi = static_cast<int>(i);
        bj = static_cast<int>(j);
      }
    }
  }
  return {best, bi, bj};
}

ExtremalPair oracle_max(const std::vector<Vec2>& pts) {
  double worst = -std::numeric_limits<double>::infinity();
  int bi = -1, bj = -1;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      const double d = rv::geom::distance(pts[i], pts[j]);
      if (d > worst) {
        worst = d;
        bi = static_cast<int>(i);
        bj = static_cast<int>(j);
      }
    }
  }
  return {worst, bi, bj};
}

void expect_matches_oracle(const std::vector<Vec2>& pts, const char* what) {
  const ExtremalPair omin = oracle_min(pts);
  const ExtremalPair omax = oracle_max(pts);
  for (const KernelChoice choice :
       {KernelChoice::kAuto, KernelChoice::kBruteForce,
        KernelChoice::kGeometric}) {
    const ExtremalPair kmin = min_pairwise(pts, choice);
    EXPECT_EQ(omin.distance, kmin.distance) << what;
    EXPECT_EQ(omin.i, kmin.i) << what;
    EXPECT_EQ(omin.j, kmin.j) << what;
    const ExtremalPair kmax = max_pairwise(pts, choice);
    EXPECT_EQ(omax.distance, kmax.distance) << what;
    EXPECT_EQ(omax.i, kmax.i) << what;
    EXPECT_EQ(omax.j, kmax.j) << what;
  }
}

// ---------------------------------------------------------------------------
// Fleet generators
// ---------------------------------------------------------------------------

std::vector<Vec2> uniform_cloud(Lcg& rng, int n, double scale) {
  std::vector<Vec2> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({scale * rng.uniform(), scale * rng.uniform()});
  }
  return pts;
}

std::vector<Vec2> clustered(Lcg& rng, int n, int clusters) {
  std::vector<Vec2> centers = uniform_cloud(rng, clusters, 10.0);
  std::vector<Vec2> pts;
  for (int i = 0; i < n; ++i) {
    const Vec2 c = centers[rng.index(clusters)];
    pts.push_back(
        {c.x + 1e-3 * rng.uniform(), c.y + 1e-3 * rng.uniform()});
  }
  return pts;
}

/// Exactly collinear: integer multiples of an exact double direction,
/// in shuffled order (cross products are exact zeros).
std::vector<Vec2> collinear(Lcg& rng, int n) {
  std::vector<Vec2> pts;
  for (int i = 0; i < n; ++i) {
    const double k = static_cast<double>(rng.index(4 * n));
    pts.push_back({0.25 * k, 0.5 * k});
  }
  return pts;
}

std::vector<Vec2> ring(int n, double phase) {
  std::vector<Vec2> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back(rv::geom::polar(1.0, rv::mathx::kTwoPi * i / n + phase));
  }
  return pts;
}

/// Injects exact duplicates (including of hull vertices) into a cloud.
std::vector<Vec2> with_duplicates(Lcg& rng, std::vector<Vec2> pts) {
  const int m = static_cast<int>(pts.size());
  for (int i = 0; i < m / 2; ++i) {
    pts.push_back(pts[rng.index(m)]);
  }
  return pts;
}

// ---------------------------------------------------------------------------
// Kernel == oracle on randomized and structured fleets
// ---------------------------------------------------------------------------

TEST(MetricKernel, MatchesOracleOnUniformClouds) {
  Lcg rng(0x12345678ULL);
  for (const int n : {2, 3, 7, 16, 47, 48, 49, 120, 300}) {
    for (int rep = 0; rep < 8; ++rep) {
      expect_matches_oracle(uniform_cloud(rng, n, 4.0), "uniform");
    }
  }
}

TEST(MetricKernel, MatchesOracleOnClusteredFleets) {
  Lcg rng(0xC0FFEEULL);
  for (const int n : {10, 64, 200}) {
    for (int rep = 0; rep < 8; ++rep) {
      expect_matches_oracle(clustered(rng, n, 1 + rep % 5), "clustered");
    }
  }
}

TEST(MetricKernel, MatchesOracleOnCollinearFleets) {
  Lcg rng(0xBEEFULL);
  for (const int n : {2, 3, 8, 60, 150}) {
    for (int rep = 0; rep < 8; ++rep) {
      expect_matches_oracle(collinear(rng, n), "collinear");
    }
  }
}

TEST(MetricKernel, MatchesOracleOnRings) {
  // The gather family's layout: many symmetric distance ties, so this
  // pins the lexicographic tie-break end to end.
  for (const int n : {3, 4, 8, 60, 64, 127, 128, 256}) {
    expect_matches_oracle(ring(n, 0.0), "ring");
    expect_matches_oracle(ring(n, 0.37), "ring+phase");
  }
}

TEST(MetricKernel, MatchesOracleWithCoincidentRobots) {
  Lcg rng(0xD15EA5EULL);
  for (const int n : {2, 5, 40, 90}) {
    for (int rep = 0; rep < 8; ++rep) {
      expect_matches_oracle(with_duplicates(rng, uniform_cloud(rng, n, 2.0)),
                            "duplicates");
    }
  }
  // Entire fleet coincident: every pair attains 0; the tie-break picks
  // (0, 1).
  const std::vector<Vec2> all_same(70, Vec2{0.5, -0.25});
  expect_matches_oracle(all_same, "all-coincident");
}

TEST(MetricKernel, MatchesOracleOnDegenerateHulls) {
  // 2-point degenerate hull: the whole fleet on one segment, exact
  // endpoints, interior points at safe fractions.
  Lcg rng(0xFACEULL);
  const Vec2 a{-3.0, 1.0}, b{5.0, -2.0};
  for (const int n : {2, 3, 50, 130}) {
    std::vector<Vec2> pts{a, b};
    for (int i = 2; i < n; ++i) {
      pts.push_back(rv::geom::lerp(a, b, (1 + rng.index(15)) / 16.0));
    }
    expect_matches_oracle(pts, "segment");
  }
  // Two robots only (the paper's rendezvous case) — must stay
  // bit-exact through every kernel.
  expect_matches_oracle({Vec2{0.1, 0.2}, Vec2{-1.0, 0.7}}, "two-robot");
  expect_matches_oracle({Vec2{0.1, 0.2}, Vec2{0.1, 0.2}}, "two-coincident");
}

TEST(MetricKernel, RejectsDegenerateInputs) {
  EXPECT_THROW((void)min_pairwise({}), std::invalid_argument);
  EXPECT_THROW((void)max_pairwise({Vec2{0, 0}}), std::invalid_argument);
  EXPECT_THROW((void)rv::geom::closest_pair({Vec2{0, 0}}),
               std::invalid_argument);
  EXPECT_THROW((void)rv::geom::hull_diameter({Vec2{0, 0}}),
               std::invalid_argument);
}

TEST(ConvexHull, RecoversSquareAndDropsInteriorPoints) {
  const std::vector<Vec2> pts{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5},
                              {0.25, 0.5}, {0.5, 0.25}};
  const std::vector<int> hull = rv::geom::convex_hull(pts);
  EXPECT_EQ(hull, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ConvexHull, CollinearCollapsesToEndpointsAndDuplicatesToMinIndex) {
  const std::vector<Vec2> line{{0, 0}, {1, 1}, {2, 2}, {3, 3}, {1, 1}};
  EXPECT_EQ(rv::geom::convex_hull(line), (std::vector<int>{0, 3}));
  const std::vector<Vec2> dupes{{1, 1}, {0, 0}, {1, 1}, {0, 0}};
  EXPECT_EQ(rv::geom::convex_hull(dupes), (std::vector<int>{1, 0}));
}

// ---------------------------------------------------------------------------
// Sweep-level equivalence above the cutover
// ---------------------------------------------------------------------------

TEST(MetricKernel, SweepResultsIdenticalAcrossKernelsAboveCutover) {
  // A 60-robot fleet (above kKernelCutover) swept with each kernel
  // choice: every field of the result — event, time, metric, pair,
  // eval and segment counts — must be identical, because the kernels
  // return identical metric values at every evaluation.
  auto run_with = [](rv::engine::SweepMetric metric, KernelChoice choice) {
    std::vector<rv::engine::RobotSpec> robots;
    const int n = 60;
    for (int i = 0; i < n; ++i) {
      rv::geom::RobotAttributes attrs;
      attrs.speed = 1.0 + 0.1 * (i % 7);
      robots.push_back({rv::rendezvous::make_rendezvous_program(), attrs,
                        rv::geom::polar(1.0, rv::mathx::kTwoPi * i / n)});
    }
    rv::engine::SweepOptions opts;
    opts.visibility = 0.05;
    opts.max_time = 30.0;
    opts.kernel = choice;
    rv::engine::ContactSweep sweep(std::move(robots), metric, opts);
    return sweep.run();
  };
  for (const auto metric : {rv::engine::SweepMetric::kMinPairwise,
                            rv::engine::SweepMetric::kMaxPairwise}) {
    const auto brute = run_with(metric, KernelChoice::kBruteForce);
    const auto geo = run_with(metric, KernelChoice::kGeometric);
    const auto adaptive = run_with(metric, KernelChoice::kAuto);
    for (const auto* res : {&geo, &adaptive}) {
      EXPECT_EQ(brute.event, res->event);
      EXPECT_EQ(brute.time, res->time);
      EXPECT_EQ(brute.metric, res->metric);
      EXPECT_EQ(brute.best_metric, res->best_metric);
      EXPECT_EQ(brute.pair_i, res->pair_i);
      EXPECT_EQ(brute.pair_j, res->pair_j);
      EXPECT_EQ(brute.evals, res->evals);
      EXPECT_EQ(brute.segments, res->segments);
    }
  }
}

// ---------------------------------------------------------------------------
// O(n) Lipschitz bound == O(n²) pair maximum
// ---------------------------------------------------------------------------

TEST(MetricKernel, TopTwoSpeedSumEqualsPairMaximum) {
  Lcg rng(0xAB5EULL);
  for (int rep = 0; rep < 200; ++rep) {
    const int n = 2 + rng.index(40);
    std::vector<double> speeds;
    for (int i = 0; i < n; ++i) {
      // Mix of zeros (waits), exact ties, and irrational-ish values.
      const int kind = rng.index(4);
      if (kind == 0) {
        speeds.push_back(0.0);
      } else if (kind == 1) {
        speeds.push_back(1.5);
      } else {
        speeds.push_back(3.0 * rng.uniform());
      }
    }
    double brute = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        brute = std::max(brute, speeds[i] + speeds[j]);
      }
    }
    EXPECT_EQ(brute, rv::engine::lipschitz_speed_sum(speeds));
  }
  // Order independence: the maximum pair sum does not care where the
  // top two sit.
  std::vector<double> v{0.25, 7.0, 7.0, 0.5};
  EXPECT_EQ(14.0, rv::engine::lipschitz_speed_sum(v));
  std::reverse(v.begin(), v.end());
  EXPECT_EQ(14.0, rv::engine::lipschitz_speed_sum(v));
  EXPECT_THROW((void)rv::engine::lipschitz_speed_sum({1.0}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SweepOptions validation: non-finite knobs must not slip through
// ---------------------------------------------------------------------------

TEST(SweepOptions, RejectsNonFiniteKnobs) {
  auto robots = [] {
    std::vector<rv::engine::RobotSpec> specs;
    specs.push_back({rv::rendezvous::make_rendezvous_program(),
                     rv::geom::RobotAttributes{}, Vec2{0.0, 0.0}});
    specs.push_back({rv::rendezvous::make_rendezvous_program(),
                     rv::geom::RobotAttributes{}, Vec2{1.0, 0.0}});
    return specs;
  };
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  auto expect_rejected = [&](auto mutate) {
    rv::engine::SweepOptions opts;
    mutate(opts);
    EXPECT_THROW(rv::engine::ContactSweep(
                     robots(), rv::engine::SweepMetric::kMinPairwise, opts),
                 std::invalid_argument);
  };
  for (const double bad : {inf, -inf, nan}) {
    expect_rejected([bad](auto& o) { o.visibility = bad; });
    expect_rejected([bad](auto& o) { o.max_time = bad; });
    expect_rejected([bad](auto& o) { o.contact_tol = bad; });
    expect_rejected([bad](auto& o) { o.time_tol = bad; });
    expect_rejected([bad](auto& o) { o.min_step = bad; });
  }
  // The defaults remain valid.
  rv::engine::SweepOptions ok;
  EXPECT_NO_THROW(rv::engine::ContactSweep(
      robots(), rv::engine::SweepMetric::kMinPairwise, ok));
}

}  // namespace
