// Tests for the visualisation module: SVG document structure,
// trajectory plots, Gantt charts, ASCII charts.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "mathx/constants.hpp"
#include "search/paths.hpp"
#include "viz/ascii.hpp"
#include "viz/chart.hpp"
#include "viz/gantt.hpp"
#include "viz/plot.hpp"
#include "viz/svg.hpp"

namespace {

using namespace rv::viz;
using rv::geom::Vec2;

// ---------------------------------------------------------------------------
// SvgCanvas
// ---------------------------------------------------------------------------

TEST(Svg, WorldToViewportTransform) {
  SvgCanvas canvas({-1.0, -1.0}, {1.0, 1.0}, 200.0);
  EXPECT_DOUBLE_EQ(canvas.width_px(), 200.0);
  EXPECT_DOUBLE_EQ(canvas.height_px(), 200.0);
  // World origin maps to the viewport centre; y is flipped.
  const Vec2 centre = canvas.to_px({0.0, 0.0});
  EXPECT_DOUBLE_EQ(centre.x, 100.0);
  EXPECT_DOUBLE_EQ(centre.y, 100.0);
  const Vec2 top = canvas.to_px({0.0, 1.0});
  EXPECT_DOUBLE_EQ(top.y, 0.0);
}

TEST(Svg, DocumentContainsElements) {
  SvgCanvas canvas({0.0, 0.0}, {10.0, 10.0});
  Style st;
  canvas.line({0.0, 0.0}, {5.0, 5.0}, st);
  canvas.circle({5.0, 5.0}, 2.0, st);
  canvas.polyline({{0.0, 0.0}, {1.0, 1.0}, {2.0, 0.0}}, st);
  canvas.marker({3.0, 3.0}, "#ff0000");
  canvas.text({1.0, 9.0}, "hello <world> & \"quotes\"");
  canvas.rect({1.0, 1.0}, {2.0, 2.0}, st);
  canvas.annulus({5.0, 5.0}, 1.0, 2.0, st);
  const std::string svg = canvas.to_string();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("<line"), std::string::npos);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  EXPECT_NE(svg.find("evenodd"), std::string::npos);
  // XML escaping.
  EXPECT_NE(svg.find("hello &lt;world&gt; &amp; &quot;quotes&quot;"),
            std::string::npos);
  EXPECT_EQ(svg.find("<world>"), std::string::npos);
}

TEST(Svg, DegenerateWindowThrows) {
  EXPECT_THROW(SvgCanvas({0.0, 0.0}, {0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(SvgCanvas({0.0, 0.0}, {1.0, 1.0}, 0.0), std::invalid_argument);
}

TEST(Svg, SaveWritesFile) {
  SvgCanvas canvas({0.0, 0.0}, {1.0, 1.0});
  canvas.marker({0.5, 0.5}, "#000000");
  const std::string path = "/tmp/rv_test_svg_output.svg";
  canvas.save(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("<svg"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Svg, PolylineWithOnePointIsSkipped) {
  SvgCanvas canvas({0.0, 0.0}, {1.0, 1.0});
  canvas.polyline({{0.5, 0.5}}, Style{});
  EXPECT_EQ(canvas.to_string().find("<polyline"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Plot helpers
// ---------------------------------------------------------------------------

TEST(Plot, TrajectoriesProduceSquareWindow) {
  TrajectorySeries s;
  s.points = {{0.0, 0.0}, {4.0, 1.0}};
  s.label = "walk";
  const SvgCanvas canvas = plot_trajectories({s});
  // Square aspect: width = height.
  EXPECT_DOUBLE_EQ(canvas.width_px(), canvas.height_px());
  EXPECT_NE(canvas.to_string().find("walk"), std::string::npos);
}

TEST(Plot, SeriesFromPathFlattens) {
  const auto path = rv::search::search_circle_path(1.0);
  const TrajectorySeries s = series_from_path(path, "#123456", "circle");
  EXPECT_GE(s.points.size(), 10u);
  EXPECT_EQ(s.color, "#123456");
}

TEST(Plot, EmptySeriesThrows) {
  EXPECT_THROW((void)plot_trajectories({}), std::invalid_argument);
}

TEST(Plot, SearchAnnuliDrawsCircles) {
  SvgCanvas canvas({-3.0, -3.0}, {3.0, 3.0});
  draw_search_annuli(canvas, 2);
  const std::string svg = canvas.to_string();
  // k = 2 draws 2k = 4 annuli → 8 circle elements.
  std::size_t count = 0;
  for (std::size_t pos = svg.find("<circle"); pos != std::string::npos;
       pos = svg.find("<circle", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 8u);
  EXPECT_THROW(draw_search_annuli(canvas, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Gantt charts
// ---------------------------------------------------------------------------

TEST(Gantt, RendersRowsAndHighlights) {
  GanttRow r1{"R", {{1.0, 10.0, PhaseKind::kInactive, 1},
                    {10.0, 100.0, PhaseKind::kActive, 1}}};
  GanttRow r2{"R'", {{1.0, 5.0, PhaseKind::kInactive, 1},
                     {5.0, 50.0, PhaseKind::kActive, 1}}};
  HighlightWindow w{10.0, 50.0, "#d62728", "overlap"};
  const SvgCanvas canvas = render_gantt({r1, r2}, {w});
  const std::string svg = canvas.to_string();
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  EXPECT_NE(svg.find("overlap"), std::string::npos);
  EXPECT_NE(svg.find("R&#39;") != std::string::npos ||
                svg.find("R'") != std::string::npos,
            false);
}

TEST(Gantt, ValidationErrors) {
  EXPECT_THROW((void)render_gantt({}, {}), std::invalid_argument);
  GanttRow bad{"x", {{5.0, 1.0, PhaseKind::kActive, 1}}};
  EXPECT_THROW((void)render_gantt({bad}, {}), std::invalid_argument);
  GanttRow empty{"x", {}};
  EXPECT_THROW((void)render_gantt({empty}, {}), std::invalid_argument);
}

TEST(Gantt, LinearTimeAxis) {
  GanttRow row{"R", {{0.0, 1.0, PhaseKind::kInactive, 1},
                     {1.0, 2.0, PhaseKind::kActive, 1}}};
  GanttOptions opts;
  opts.log_time = false;
  const SvgCanvas canvas = render_gantt({row}, {}, opts);
  EXPECT_NE(canvas.to_string().find("<rect"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SVG data charts
// ---------------------------------------------------------------------------

TEST(Chart, RendersSeriesWithLegendAndTicks) {
  ChartSeries s;
  s.x = {1.0, 2.0, 3.0, 4.0};
  s.y = {1.0, 4.0, 9.0, 16.0};
  s.label = "squares";
  ChartOptions opts;
  opts.title = "squares vs x";
  opts.x_label = "x";
  opts.y_label = "y";
  const SvgCanvas canvas = render_chart({s}, opts);
  const std::string svg = canvas.to_string();
  EXPECT_NE(svg.find("squares"), std::string::npos);
  EXPECT_NE(svg.find("squares vs x"), std::string::npos);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);  // connecting line
}

TEST(Chart, LogAxesSkipNonPositivePoints) {
  ChartSeries s;
  s.x = {0.0, 1.0, 10.0, 100.0};
  s.y = {-1.0, 1.0, 10.0, 100.0};
  ChartOptions opts;
  opts.log_x = true;
  opts.log_y = true;
  EXPECT_NO_THROW((void)render_chart({s}, opts));
  ChartSeries empty;
  empty.x = {0.0};
  empty.y = {1.0};
  EXPECT_THROW((void)render_chart({empty}, opts), std::invalid_argument);
}

TEST(Chart, MismatchedSeriesThrow) {
  ChartSeries s;
  s.x = {1.0, 2.0};
  s.y = {1.0};
  EXPECT_THROW((void)render_chart({s}), std::invalid_argument);
}

TEST(Chart, SinglePointSeriesStillRenders) {
  ChartSeries s;
  s.x = {5.0};
  s.y = {3.0};
  s.draw_line = true;  // degenerates to a marker
  const SvgCanvas canvas = render_chart({s});
  EXPECT_NE(canvas.to_string().find("<g stroke"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ASCII charts
// ---------------------------------------------------------------------------

TEST(Ascii, BarChartScalesToWidth) {
  const std::string chart = ascii_bar_chart(
      {{"a", 10.0}, {"bb", 5.0}, {"c", 0.0}}, 20);
  EXPECT_NE(chart.find("a  |####################"), std::string::npos);
  EXPECT_NE(chart.find("bb |##########"), std::string::npos);
  EXPECT_THROW((void)ascii_bar_chart({{"x", -1.0}}, 10),
               std::invalid_argument);
  EXPECT_THROW((void)ascii_bar_chart({{"x", 1.0}}, 0), std::invalid_argument);
}

TEST(Ascii, ScatterPlacesGlyphs) {
  AsciiSeries s;
  s.x = {1.0, 2.0, 3.0};
  s.y = {1.0, 4.0, 9.0};
  s.glyph = '*';
  s.label = "squares";
  const std::string plot = ascii_scatter({s}, 10, 30);
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find("squares"), std::string::npos);
}

TEST(Ascii, ScatterLogAxesSkipNonPositive) {
  AsciiSeries s;
  s.x = {0.0, 1.0, 10.0};  // 0 not drawable on log axis
  s.y = {1.0, 2.0, 3.0};
  EXPECT_NO_THROW((void)ascii_scatter({s}, 10, 30, true, false));
  AsciiSeries bad;
  bad.x = {0.0};
  bad.y = {1.0};
  EXPECT_THROW((void)ascii_scatter({bad}, 10, 30, true, false),
               std::invalid_argument);
}

TEST(Ascii, ScatterSizeMismatchThrows) {
  AsciiSeries s;
  s.x = {1.0};
  s.y = {1.0, 2.0};
  EXPECT_THROW((void)ascii_scatter({s}, 10, 30), std::invalid_argument);
  EXPECT_THROW((void)ascii_scatter({}, 1, 30), std::invalid_argument);
}

}  // namespace
