// Tests for the continuous-time simulator: analytic contact cases,
// certified stepping, option validation, trace recording.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "mathx/constants.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "traj/path.hpp"
#include "traj/program.hpp"

namespace {

using namespace rv::sim;
using rv::geom::RobotAttributes;
using rv::geom::Vec2;
using rv::mathx::kPi;
using rv::traj::Path;
using rv::traj::PathProgram;
using rv::traj::StationaryProgram;

std::shared_ptr<rv::traj::Program> straight_line(const Vec2& to) {
  Path p;
  p.line_to(to);
  return std::make_shared<PathProgram>(p, "line");
}

SimOptions options_with(double r, double horizon = 1e6) {
  SimOptions o;
  o.visibility = r;
  o.max_time = horizon;
  return o;
}

// ---------------------------------------------------------------------------
// Analytic contact cases
// ---------------------------------------------------------------------------

TEST(Simulator, HeadOnApproachMeetsAtClosedFormTime) {
  // Robots 10 apart, moving toward each other at speed 1 each, r = 2:
  // separation 10 − 2t = 2 at t = 4.
  RobotSpec a{straight_line({100.0, 0.0}), RobotAttributes{}, {0.0, 0.0}};
  RobotSpec b{straight_line({-100.0, 0.0}), RobotAttributes{}, {10.0, 0.0}};
  TwoRobotSimulator sim(std::move(a), std::move(b), options_with(2.0));
  const SimResult res = sim.run();
  ASSERT_TRUE(res.met);
  EXPECT_NEAR(res.time, 4.0, 1e-7);
  EXPECT_NEAR(res.distance, 2.0, 1e-6);
}

TEST(Simulator, ChaseWithDifferentSpeeds) {
  // Pursuer at speed 2 (v = 2) chasing a unit-speed runner 6 ahead,
  // r = 1: gap 6 − t = 1 at t = 5.
  RobotAttributes fast;
  fast.speed = 2.0;
  RobotSpec runner{straight_line({1000.0, 0.0}), RobotAttributes{}, {6.0, 0.0}};
  RobotSpec pursuer{straight_line({1000.0, 0.0}), fast, {0.0, 0.0}};
  TwoRobotSimulator sim(std::move(pursuer), std::move(runner),
                        options_with(1.0));
  const SimResult res = sim.run();
  ASSERT_TRUE(res.met);
  EXPECT_NEAR(res.time, 5.0, 1e-7);
}

TEST(Simulator, AlreadyInContactAtStart) {
  RobotSpec a{std::make_shared<StationaryProgram>(), RobotAttributes{},
              {0.0, 0.0}};
  RobotSpec b{std::make_shared<StationaryProgram>(), RobotAttributes{},
              {0.5, 0.0}};
  TwoRobotSimulator sim(std::move(a), std::move(b), options_with(1.0));
  const SimResult res = sim.run();
  ASSERT_TRUE(res.met);
  EXPECT_DOUBLE_EQ(res.time, 0.0);
}

TEST(Simulator, StationaryPairNeverMeets) {
  RobotSpec a{std::make_shared<StationaryProgram>(), RobotAttributes{},
              {0.0, 0.0}};
  RobotSpec b{std::make_shared<StationaryProgram>(), RobotAttributes{},
              {10.0, 0.0}};
  TwoRobotSimulator sim(std::move(a), std::move(b), options_with(1.0, 100.0));
  const SimResult res = sim.run();
  EXPECT_FALSE(res.met);
  EXPECT_NEAR(res.min_distance, 10.0, 1e-12);
  EXPECT_LE(res.evals, 100u);  // long waits are skipped in O(1) evals
}

TEST(Simulator, PerpendicularFlyby) {
  // Robot 2 crosses the x axis at x = 5 moving up; robot 1 stationary
  // at origin with r = 3.  Contact when sqrt(25 + y²)... never ≤ 3:
  // min distance is 5 — no contact.  With r = 6: contact at y = ±√11,
  // first contact at y = −√11, i.e. t = 10 − √11.
  Path crossing({0.0, 0.0});
  crossing.line_to({0.0, 20.0});
  auto make_crossing = [&] {
    return std::make_shared<PathProgram>(crossing, "crossing");
  };

  RobotSpec stat1{std::make_shared<StationaryProgram>(), RobotAttributes{},
                  {0.0, 0.0}};
  RobotSpec mover1{make_crossing(), RobotAttributes{}, {5.0, -10.0}};
  TwoRobotSimulator miss(std::move(stat1), std::move(mover1),
                         options_with(3.0, 50.0));
  const SimResult miss_res = miss.run();
  EXPECT_FALSE(miss_res.met);
  // min_distance is tracked at evaluation points only; near the closest
  // approach the Lipschitz steps are ~2 time units, so allow slack.
  EXPECT_NEAR(miss_res.min_distance, 5.0, 0.5);
  EXPECT_GE(miss_res.min_distance, 5.0 - 1e-9);

  RobotSpec stat2{std::make_shared<StationaryProgram>(), RobotAttributes{},
                  {0.0, 0.0}};
  RobotSpec mover2{make_crossing(), RobotAttributes{}, {5.0, -10.0}};
  TwoRobotSimulator hit(std::move(stat2), std::move(mover2),
                        options_with(6.0, 50.0));
  const SimResult hit_res = hit.run();
  ASSERT_TRUE(hit_res.met);
  EXPECT_NEAR(hit_res.time, 10.0 - std::sqrt(11.0), 1e-6);
}

TEST(Simulator, ArcContactMatchesGeometry) {
  // Robot 2 walks the unit circle around its origin (10, 0); robot 1
  // sits at the global origin with r = 9.5.  Contact when the circle
  // walker reaches distance 9.5, i.e. position angle θ with
  // |10 + e^{iθ}| = 9.5 → cosθ = (9.5² − 101)/20.
  Path circle;
  circle.line_to({1.0, 0.0});
  circle.arc_around({0.0, 0.0}, rv::mathx::kTwoPi);
  RobotSpec stat{std::make_shared<StationaryProgram>(), RobotAttributes{},
                 {0.0, 0.0}};
  RobotSpec walker{std::make_shared<PathProgram>(circle, "circle"),
                   RobotAttributes{}, {10.0, 0.0}};
  TwoRobotSimulator sim(std::move(stat), std::move(walker),
                        options_with(9.5, 50.0));
  const SimResult res = sim.run();
  ASSERT_TRUE(res.met);
  const double cos_theta = (9.5 * 9.5 - 101.0) / 20.0;
  const double theta = std::acos(cos_theta);
  // Contact time = 1 (line) + arc length to θ.
  EXPECT_NEAR(res.time, 1.0 + theta, 1e-6);
}

TEST(Simulator, RefinementAccuracyIsTight) {
  // Same head-on case with a very small r: the bisection refinement
  // must localise the contact to time_tol.
  RobotSpec a{straight_line({100.0, 0.0}), RobotAttributes{}, {0.0, 0.0}};
  RobotSpec b{straight_line({-100.0, 0.0}), RobotAttributes{}, {10.0, 0.0}};
  SimOptions o = options_with(1e-3);
  o.time_tol = 1e-12;
  TwoRobotSimulator sim(std::move(a), std::move(b), o);
  const SimResult res = sim.run();
  ASSERT_TRUE(res.met);
  EXPECT_NEAR(res.time, (10.0 - 1e-3) / 2.0, 5e-9);
}

TEST(Simulator, HorizonTruncatesSearch) {
  RobotSpec a{straight_line({100.0, 0.0}), RobotAttributes{}, {0.0, 0.0}};
  RobotSpec b{straight_line({100.0, 0.0}), RobotAttributes{}, {50.0, 0.0}};
  TwoRobotSimulator sim(std::move(a), std::move(b), options_with(1.0, 10.0));
  const SimResult res = sim.run();
  EXPECT_FALSE(res.met);
  EXPECT_NEAR(res.min_distance, 50.0, 1e-9);
}

TEST(Simulator, TimeUnitSlowsTrajectory) {
  // Robot 2 has τ = 2: its unit-length line takes 2 global time units,
  // at speed 1/... scale v·τ = 2 per local unit: it still moves at
  // speed v = 1.  Here we give it v = 1, τ = 2 and check the meet time
  // against the closed form.
  RobotAttributes slow;
  slow.time_unit = 2.0;
  // Both walk toward each other; robot 2's trajectory is identical in
  // shape (speed v = 1), so the meet time is the same as the symmetric
  // case.
  RobotSpec a{straight_line({100.0, 0.0}), RobotAttributes{}, {0.0, 0.0}};
  RobotSpec b{straight_line({-100.0, 0.0}), slow, {10.0, 0.0}};
  TwoRobotSimulator sim(std::move(a), std::move(b), options_with(2.0));
  const SimResult res = sim.run();
  ASSERT_TRUE(res.met);
  EXPECT_NEAR(res.time, 4.0, 1e-7);
}

// ---------------------------------------------------------------------------
// Option validation and bookkeeping
// ---------------------------------------------------------------------------

TEST(Simulator, RejectsBadOptions) {
  auto make = [] {
    return RobotSpec{std::make_shared<StationaryProgram>(), RobotAttributes{},
                     Vec2{0.0, 0.0}};
  };
  SimOptions bad_r;
  bad_r.visibility = 0.0;
  EXPECT_THROW(TwoRobotSimulator(make(), make(), bad_r),
               std::invalid_argument);
  SimOptions bad_t;
  bad_t.max_time = -1.0;
  EXPECT_THROW(TwoRobotSimulator(make(), make(), bad_t),
               std::invalid_argument);
  SimOptions bad_step;
  bad_step.min_step = 0.0;
  EXPECT_THROW(TwoRobotSimulator(make(), make(), bad_step),
               std::invalid_argument);
}

TEST(Simulator, NullProgramRejected) {
  RobotSpec bad{nullptr, RobotAttributes{}, {0.0, 0.0}};
  RobotSpec ok{std::make_shared<StationaryProgram>(), RobotAttributes{},
               {1.0, 0.0}};
  EXPECT_THROW(TwoRobotSimulator(std::move(bad), std::move(ok), SimOptions{}),
               std::invalid_argument);
}

TEST(Simulator, EvalAndSegmentCountsAreReported) {
  RobotSpec a{straight_line({100.0, 0.0}), RobotAttributes{}, {0.0, 0.0}};
  RobotSpec b{straight_line({-100.0, 0.0}), RobotAttributes{}, {10.0, 0.0}};
  TwoRobotSimulator sim(std::move(a), std::move(b), options_with(2.0));
  const SimResult res = sim.run();
  EXPECT_GE(res.evals, 2u);
  EXPECT_GE(res.segments, 2u);
}

// ---------------------------------------------------------------------------
// Convenience wrappers
// ---------------------------------------------------------------------------

TEST(SimulateSearch, FindsAdjacentTargetImmediately) {
  const SimResult res = simulate_search(std::make_shared<StationaryProgram>(),
                                        {0.1, 0.0}, options_with(0.5, 10.0));
  ASSERT_TRUE(res.met);
  EXPECT_DOUBLE_EQ(res.time, 0.0);
}

TEST(SimulateRendezvous, FactoryIsInvokedPerRobot) {
  int calls = 0;
  auto factory = [&calls]() -> std::shared_ptr<rv::traj::Program> {
    ++calls;
    Path p;
    p.line_to({100.0, 0.0});
    return std::make_shared<PathProgram>(p, "line");
  };
  RobotAttributes mirror;  // same speed: they march in parallel, never meet
  const SimResult res =
      simulate_rendezvous(factory, mirror, {10.0, 0.0}, options_with(1.0, 20.0));
  EXPECT_EQ(calls, 2);
  EXPECT_FALSE(res.met);
  EXPECT_NEAR(res.min_distance, 10.0, 1e-9);
}

TEST(SimulateRendezvous, NullFactoryRejected) {
  EXPECT_THROW((void)simulate_rendezvous({}, RobotAttributes{}, {1.0, 0.0},
                                         SimOptions{}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// GlobalTrace
// ---------------------------------------------------------------------------

TEST(GlobalTrace, BuffersAndEvaluates) {
  Path p;
  p.line_to({4.0, 0.0});
  GlobalTrace trace(std::make_shared<PathProgram>(p, "t"), RobotAttributes{},
                    {1.0, 1.0}, 10.0);
  EXPECT_TRUE(rv::geom::approx_equal(trace.position_at(0.0), {1.0, 1.0}));
  EXPECT_TRUE(rv::geom::approx_equal(trace.position_at(2.0), {3.0, 1.0}));
  EXPECT_TRUE(rv::geom::approx_equal(trace.position_at(9.0), {5.0, 1.0}));
  EXPECT_GE(trace.segments().size(), 2u);
}

TEST(GlobalTrace, PolylineAndSamples) {
  Path p;
  p.line_to({1.0, 0.0});
  p.arc_around({0.0, 0.0}, kPi);
  GlobalTrace trace(std::make_shared<PathProgram>(p, "t"), RobotAttributes{},
                    {0.0, 0.0}, 1.0 + kPi);
  const auto poly = trace.polyline(1e-3);
  EXPECT_GE(poly.size(), 10u);
  const auto samples = trace.sample_positions(11);
  EXPECT_EQ(samples.size(), 11u);
  EXPECT_THROW((void)trace.sample_positions(1), std::invalid_argument);
}

TEST(GlobalTrace, RejectsNonPositiveHorizon) {
  EXPECT_THROW(GlobalTrace(std::make_shared<StationaryProgram>(),
                           RobotAttributes{}, {0.0, 0.0}, 0.0),
               std::invalid_argument);
}

}  // namespace
