// Process-level golden pins for the experiment binaries: each bench is
// executed in a scratch directory and its full stdout plus every
// artifact it drops under bench_results/ (CSV, SVG) are compared byte
// for byte against tests/golden/<bench>/.
//
// This is the harness that pinned the E2/E6/X2/X3 engine ports: the
// golden files were captured from the pre-port binaries, so a passing
// run certifies the declarative ScenarioSet ports reproduce the
// hand-rolled sweeps exactly.  The other benches are pinned the same
// way so any future refactor of the engine, simulators or formatting
// layers diffs loudly here.  Regenerate intentionally changed outputs
// with RV_UPDATE_GOLDEN=1 (see golden.hpp).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <algorithm>
#include <string>
#include <sys/wait.h>
#include <vector>

#include "golden.hpp"

namespace {

namespace fs = std::filesystem;
namespace golden = rv::golden;

/// Directory holding the built bench binaries (the build tree root).
fs::path bench_dir() {
#ifdef RV_BENCH_DIR
  return fs::path(RV_BENCH_DIR);
#else
  return fs::current_path();
#endif
}

/// Runs `cmd` through the shell, returning captured stdout; fails the
/// test (and returns nullopt) on spawn failure or non-zero exit.
std::optional<std::string> run_and_capture(const std::string& cmd) {
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    ADD_FAILURE() << "popen failed for: " << cmd;
    return std::nullopt;
  }
  std::string out;
  char buffer[4096];
  std::size_t n;
  while ((n = fread(buffer, 1, sizeof buffer, pipe)) > 0) out.append(buffer, n);
  const int status = pclose(pipe);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    ADD_FAILURE() << "command failed (status " << status << "): " << cmd;
    return std::nullopt;
  }
  return out;
}

/// Sorted artifact names (relative to `root`), e.g. "bench_results/x.csv".
std::vector<std::string> artifact_names(const fs::path& root) {
  std::vector<std::string> names;
  const fs::path results = root / "bench_results";
  if (fs::exists(results)) {
    for (const auto& entry : fs::recursive_directory_iterator(results)) {
      if (entry.is_regular_file()) {
        names.push_back(
            fs::relative(entry.path(), root).generic_string());
      }
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

class GoldenBench : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenBench, StdoutAndArtifactsMatchPinnedBytes) {
  const std::string bench = GetParam();
  const fs::path binary = bench_dir() / bench;
  if (!fs::exists(binary)) {
    GTEST_SKIP() << binary << " not built (RV_BUILD_BENCHES=OFF?)";
  }

  // Scratch working directory: benches drop artifacts relative to cwd.
  // Removed on every exit path, including mid-test ASSERT returns.
  std::string scratch =
      (fs::temp_directory_path() / ("rv_golden_" + bench + "_XXXXXX"))
          .string();
  ASSERT_NE(mkdtemp(scratch.data()), nullptr) << "mkdtemp failed";
  const fs::path workdir(scratch);
  struct ScratchGuard {
    fs::path path;
    ~ScratchGuard() {
      std::error_code ec;
      fs::remove_all(path, ec);
    }
  } guard{workdir};

  const auto stdout_bytes = run_and_capture(
      "cd '" + workdir.string() + "' && '" + binary.string() + "'");
  if (stdout_bytes.has_value()) {
    if (golden::update_requested()) {
      // Regeneration replaces the whole pinned tree for this bench, so
      // stale artifacts do not linger.
      fs::remove_all(golden::dir() / bench);
    }
    golden::compare(*stdout_bytes, bench + "/stdout.txt");

    // Every dropped artifact must match its pin, and the artifact *set*
    // itself is pinned: a silently added or removed CSV/SVG fails too.
    const std::vector<std::string> produced = artifact_names(workdir);
    for (const std::string& name : produced) {
      const auto bytes = golden::read_file(workdir / name);
      ASSERT_TRUE(bytes.has_value()) << name;
      golden::compare(*bytes, bench + "/" + name);
    }
    if (!golden::update_requested()) {
      const std::vector<std::string> pinned =
          artifact_names(golden::dir() / bench);
      EXPECT_EQ(produced, pinned)
          << "artifact set differs from the pinned set for " << bench;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Benches, GoldenBench,
    ::testing::Values("bench_e1_search_bound", "bench_e2_component_times",
                      "bench_e3_symmetric_chirality",
                      "bench_e4_opposite_chirality", "bench_e5_phase_schedule",
                      "bench_e6_overlap", "bench_e7_asymmetric_clocks",
                      "bench_e8_feasibility", "bench_e9_baselines",
                      "bench_x1_gathering", "bench_x2_linear",
                      "bench_x3_coverage", "bench_a1_ablations"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return std::string(info.param);
    });

}  // namespace
