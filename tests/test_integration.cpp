// End-to-end integration tests: full two-robot simulations validating
// the paper's theorems — Theorem 2 (symmetric clocks), Theorem 3
// (asymmetric clocks), Theorem 4 (feasibility, both directions), and
// the rendezvous → search reduction identity on real trajectories.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/bounds.hpp"
#include "analysis/reduction.hpp"
#include "geom/difference_map.hpp"
#include "mathx/constants.hpp"
#include "mathx/rng.hpp"
#include "rendezvous/algorithm7.hpp"
#include "rendezvous/core.hpp"
#include "rendezvous/feasibility.hpp"
#include "rendezvous/schedule.hpp"
#include "search/algorithm4.hpp"
#include "search/times.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace {

using rv::geom::RobotAttributes;
using rv::geom::Vec2;
using rv::mathx::kPi;
using namespace rv::rendezvous;

RobotAttributes attrs(double v, double tau, double phi, int chi) {
  RobotAttributes a;
  a.speed = v;
  a.time_unit = tau;
  a.orientation = phi;
  a.chirality = chi;
  return a;
}

Outcome run(const RobotAttributes& a, AlgorithmChoice algo, double d, double r,
            double horizon) {
  Scenario s;
  s.attrs = a;
  s.offset = {d, 0.0};
  s.visibility = r;
  s.algorithm = algo;
  s.max_time = horizon;
  return run_scenario(s);
}

// ---------------------------------------------------------------------------
// Theorem 2: symmetric clocks, Algorithm 4 as rendezvous
// ---------------------------------------------------------------------------

struct Theorem2Case {
  double v;
  double phi;
  int chi;
  double d;
  double r;
};

class Theorem2EndToEnd : public ::testing::TestWithParam<Theorem2Case> {};

TEST_P(Theorem2EndToEnd, MeetsWithinBound) {
  const Theorem2Case c = GetParam();
  const auto a = attrs(c.v, 1.0, c.phi, c.chi);
  const double bound = rv::analysis::theorem2_bound(a, c.d, c.r);
  // The unconditional guarantee (end of the guaranteed round of the
  // equivalent search instance) always holds; the closed-form bound
  // additionally holds when the equivalent instance is in Theorem 1's
  // applicable regime.
  const double guarantee = rv::analysis::theorem2_guaranteed_time(a, c.d, c.r);
  const double horizon = std::max(bound, guarantee) + 1.0;
  const Outcome out = run(a, AlgorithmChoice::kAlgorithm4, c.d, c.r, horizon);
  ASSERT_TRUE(out.sim.met) << "v=" << c.v << " phi=" << c.phi
                           << " chi=" << c.chi;
  EXPECT_LE(out.sim.time, guarantee + 1e-6);
  const double gain = c.chi == 1 ? rv::geom::mu(c.v, c.phi)
                                 : std::abs(1.0 - c.v);
  if (rv::search::theorem1_bound_applicable(c.d / gain, c.r / gain)) {
    EXPECT_LE(out.sim.time, bound);
  }
  EXPECT_LE(out.sim.distance, c.r + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    AttributeGrid, Theorem2EndToEnd,
    ::testing::Values(
        // Different speeds, common chirality.
        Theorem2Case{2.0, 0.0, 1, 1.0, 0.2},
        Theorem2Case{0.5, 0.0, 1, 1.0, 0.2},
        Theorem2Case{3.0, 1.0, 1, 0.7, 0.15},
        // Orientation-only symmetry breaking (v = 1, χ = 1).
        Theorem2Case{1.0, kPi, 1, 1.0, 0.25},
        Theorem2Case{1.0, kPi / 2.0, 1, 1.0, 0.25},
        Theorem2Case{1.0, 0.4, 1, 0.5, 0.1},
        // Opposite chirality with different speeds.
        Theorem2Case{0.5, 0.0, -1, 1.0, 0.25},
        Theorem2Case{0.5, 2.0, -1, 1.0, 0.25},
        Theorem2Case{0.75, 4.0, -1, 0.6, 0.2},
        // Speed + orientation + chirality all different.
        Theorem2Case{1.5, 2.5, -1, 1.0, 0.3}));

TEST(Theorem2Extra, OffsetDirectionSweepOppositeChirality) {
  // Lemma 7's worst case is over offset directions; check several.
  const auto a = attrs(0.5, 1.0, 1.0, -1);
  const double d = 1.0, r = 0.25;
  const double bound = rv::analysis::theorem2_bound(a, d, r);
  for (const double ang : {0.0, 0.8, 1.6, 2.4, 3.2, 4.0, 4.8, 5.6}) {
    Scenario s;
    s.attrs = a;
    s.offset = rv::geom::polar(d, ang);
    s.visibility = r;
    s.algorithm = AlgorithmChoice::kAlgorithm4;
    s.max_time = bound + 1.0;
    const Outcome out = run_scenario(s);
    ASSERT_TRUE(out.sim.met) << "angle " << ang;
    EXPECT_LE(out.sim.time, bound) << "angle " << ang;
  }
}

// ---------------------------------------------------------------------------
// Theorem 3: asymmetric clocks, Algorithm 7
// ---------------------------------------------------------------------------

struct Theorem3Case {
  double tau;
  double v;
  double d;
  double r;
};

class Theorem3EndToEnd : public ::testing::TestWithParam<Theorem3Case> {};

TEST_P(Theorem3EndToEnd, MeetsWithinLemma14Bound) {
  const Theorem3Case c = GetParam();
  // Identical speeds/compasses: only the clock differs — the case only
  // Algorithm 7 can solve.
  const auto a = attrs(c.v, c.tau, 0.0, 1);
  const double bound = rv::analysis::theorem3_bound(c.tau, c.d, c.r);
  const Outcome out =
      run(a, AlgorithmChoice::kAlgorithm7, c.d, c.r, bound + 1.0);
  ASSERT_TRUE(out.sim.met) << "tau=" << c.tau;
  EXPECT_LE(out.sim.time, bound);
}

INSTANTIATE_TEST_SUITE_P(ClockGrid, Theorem3EndToEnd,
                         ::testing::Values(
                             // τ = 1/2: the cleanest dyadic clock ratio.
                             Theorem3Case{0.5, 1.0, 1.0, 0.5},
                             // Non-dyadic ratio.
                             Theorem3Case{0.6, 1.0, 1.0, 0.5},
                             // Clock ratio > 1 (roles swap).
                             Theorem3Case{2.0, 1.0, 1.0, 0.5},
                             // Clock + speed difference together.
                             Theorem3Case{0.5, 2.0, 1.0, 0.5}));

TEST(Theorem3Extra, Algorithm7AlsoSolvesSymmetricClockCases) {
  // Theorem 4: Algorithm 7 is universal — it must also solve the τ = 1
  // families (speed/orientation differences).
  for (const auto& a : {attrs(2.0, 1.0, 0.0, 1), attrs(1.0, 1.0, kPi, 1)}) {
    const Outcome out = run(a, AlgorithmChoice::kAlgorithm7, 1.0, 0.5, 5e5);
    EXPECT_TRUE(out.sim.met) << describe(classify(a));
  }
}

// ---------------------------------------------------------------------------
// Theorem 4: infeasible families stay apart
// ---------------------------------------------------------------------------

TEST(InfeasibleCases, IdenticalRobotsKeepConstantSeparation) {
  const auto a = attrs(1.0, 1.0, 0.0, 1);
  ASSERT_FALSE(rendezvous_feasible(a));
  const Outcome out = run(a, AlgorithmChoice::kAlgorithm7, 1.0, 0.25, 2e4);
  EXPECT_FALSE(out.sim.met);
  // The separation is exactly invariant for identical robots.
  EXPECT_NEAR(out.sim.min_distance, 1.0, 1e-9);
}

TEST(InfeasibleCases, MirrorRobotsRespectInvariantLowerBound) {
  // χ = −1, v = τ = 1: T∘ is singular.  The component of the offset
  // perpendicular to the difference line can never shrink.
  for (const double phi : {0.0, 1.0, 2.5}) {
    const auto a = attrs(1.0, 1.0, phi, -1);
    ASSERT_FALSE(rendezvous_feasible(a));
    const Vec2 offset{1.0, 0.3};
    const double lower = separation_lower_bound(a, offset);
    Scenario s;
    s.attrs = a;
    s.offset = offset;
    s.visibility = 0.9 * lower > 0.0 ? 0.9 * lower : 0.05;
    s.algorithm = AlgorithmChoice::kAlgorithm7;
    s.max_time = 2e4;
    const Outcome out = run_scenario(s);
    if (lower > s.visibility) {
      EXPECT_FALSE(out.sim.met) << "phi=" << phi;
      EXPECT_GE(out.sim.min_distance, lower - 1e-6) << "phi=" << phi;
    }
  }
}

TEST(InfeasibleCases, MirrorSimulationMatchesAlgebraicInvariant) {
  // Simulate mirror robots and verify the separation's invariant
  // component stays constant along the whole trajectory.
  const double phi = 1.3;
  const auto a = attrs(1.0, 1.0, phi, -1);
  const Vec2 offset{0.8, 0.4};
  const auto t_circ = rv::geom::difference_matrix(1.0, phi, -1);
  const Vec2 col{t_circ.a, t_circ.c};
  const Vec2 u = rv::geom::normalized(col);
  const double invariant = std::abs(rv::geom::cross(u, offset));

  rv::sim::GlobalTrace trace1(std::make_shared<RendezvousProgram>(),
                              rv::geom::reference_attributes(), {0.0, 0.0},
                              2000.0);
  rv::sim::GlobalTrace trace2(std::make_shared<RendezvousProgram>(), a, offset,
                              2000.0);
  for (double t = 0.0; t < 2000.0; t += 37.0) {
    const Vec2 sep = trace1.position_at(t) - trace2.position_at(t);
    EXPECT_NEAR(std::abs(rv::geom::cross(u, sep)), invariant, 1e-6)
        << "t=" << t;
  }
}

// ---------------------------------------------------------------------------
// Reduction identity on live trajectories (Definition 1)
// ---------------------------------------------------------------------------

TEST(ReductionIdentity, SeparationMatchesDifferenceMapOnAlgorithm4) {
  rv::mathx::Xoshiro256 rng(2718);
  for (int trial = 0; trial < 5; ++trial) {
    const auto a = rv::geom::validated(attrs(
        rng.uniform(0.5, 2.0), 1.0, rng.angle(), rng.sign()));
    const Vec2 offset{rng.uniform(-1.0, 1.0), rng.uniform(0.1, 1.0)};
    const double horizon = 500.0;

    rv::sim::GlobalTrace trace1(rv::search::make_search_program(),
                                rv::geom::reference_attributes(), {0.0, 0.0},
                                horizon);
    rv::sim::GlobalTrace trace2(rv::search::make_search_program(), a, offset,
                                horizon);
    rv::traj::BufferedTrajectory local(rv::search::make_search_program());

    for (double t = 1.0; t < horizon; t += 13.7) {
      const Vec2 direct = trace1.position_at(t) - trace2.position_at(t);
      const Vec2 via_reduction = rv::analysis::separation_vector(
          local.position_at(t), a, offset);
      EXPECT_TRUE(rv::geom::approx_equal(direct, via_reduction, 1e-6))
          << "t=" << t << " trial=" << trial;
    }
  }
}

// ---------------------------------------------------------------------------
// Universality: one algorithm, every feasible family (Theorem 4)
// ---------------------------------------------------------------------------

TEST(Universality, ProgramsNeverConsultHiddenAttributes) {
  // Section 1: "our robots are completely unaware of the value(s) of
  // their individual hidden parameters and do not make use of them in
  // the computations needed to run the algorithm."  In this library
  // that is architectural: `Program`s are constructed without any
  // RobotAttributes, so the emitted local segment stream is byte-for-
  // byte identical no matter which robot executes it.  Pin it by
  // comparing two independently created programs segment by segment.
  auto p1 = rv::rendezvous::make_rendezvous_program();
  auto p2 = rv::rendezvous::make_rendezvous_program();
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(p1->next(), p2->next()) << "segment " << i;
  }
  auto s1 = rv::search::make_search_program();
  auto s2 = rv::search::make_search_program();
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(s1->next(), s2->next()) << "segment " << i;
  }
}

TEST(Universality, Algorithm7SolvesEveryFeasibleFamilyWithoutKnowingWhich) {
  struct Family {
    RobotAttributes a;
    const char* label;
  };
  const Family families[] = {
      {attrs(1.0, 0.5, 0.0, 1), "clocks only"},
      {attrs(2.0, 1.0, 0.0, 1), "speeds only"},
      {attrs(1.0, 1.0, kPi, 1), "orientation only"},
      {attrs(0.5, 0.5, 1.0, -1), "everything different"},
  };
  for (const Family& f : families) {
    ASSERT_TRUE(rendezvous_feasible(f.a)) << f.label;
    const Outcome out = run(f.a, AlgorithmChoice::kAlgorithm7, 1.0, 0.5, 1e6);
    EXPECT_TRUE(out.sim.met) << f.label;
  }
}

}  // namespace
