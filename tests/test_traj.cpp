// Tests for the trajectory substrate: segments, paths, programs, frame
// mapping, sampling.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "geom/angle.hpp"
#include "mathx/constants.hpp"
#include "mathx/rng.hpp"
#include "traj/batch.hpp"
#include "traj/frame.hpp"
#include "traj/path.hpp"
#include "traj/program.hpp"
#include "traj/sampler.hpp"
#include "traj/segment.hpp"

namespace {

using namespace rv::traj;
using rv::geom::RobotAttributes;
using rv::geom::Vec2;
using rv::mathx::kPi;
using rv::mathx::kTwoPi;

// ---------------------------------------------------------------------------
// Segments
// ---------------------------------------------------------------------------

TEST(SegmentTest, LineBasics) {
  const Segment seg = LineSeg{{0.0, 0.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(duration(seg), 5.0);
  EXPECT_EQ(start_point(seg), (Vec2{0.0, 0.0}));
  EXPECT_EQ(end_point(seg), (Vec2{3.0, 4.0}));
  EXPECT_TRUE(rv::geom::approx_equal(position_at(seg, 2.5), {1.5, 2.0}));
  EXPECT_DOUBLE_EQ(traversal_speed(seg), 1.0);
  EXPECT_FALSE(is_degenerate(seg));
}

TEST(SegmentTest, PositionClamping) {
  const Segment seg = LineSeg{{0.0, 0.0}, {1.0, 0.0}};
  EXPECT_EQ(position_at(seg, -1.0), (Vec2{0.0, 0.0}));
  EXPECT_EQ(position_at(seg, 10.0), (Vec2{1.0, 0.0}));
}

TEST(SegmentTest, DegenerateLine) {
  const Segment seg = LineSeg{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ(duration(seg), 0.0);
  EXPECT_TRUE(is_degenerate(seg));
  EXPECT_DOUBLE_EQ(traversal_speed(seg), 0.0);
}

TEST(SegmentTest, ArcBasics) {
  // Unit circle full CCW turn starting at angle 0.
  const Segment seg = ArcSeg{{0.0, 0.0}, 1.0, 0.0, kTwoPi};
  EXPECT_NEAR(duration(seg), kTwoPi, 1e-15);
  EXPECT_TRUE(rv::geom::approx_equal(start_point(seg), {1.0, 0.0}));
  EXPECT_TRUE(rv::geom::approx_equal(end_point(seg), {1.0, 0.0}, 1e-12));
  // Quarter way round: angle π/2.
  EXPECT_TRUE(
      rv::geom::approx_equal(position_at(seg, kPi / 2.0), {0.0, 1.0}, 1e-12));
}

TEST(SegmentTest, ClockwiseArc) {
  const Segment seg = ArcSeg{{0.0, 0.0}, 2.0, kPi / 2.0, -kPi};
  EXPECT_NEAR(duration(seg), 2.0 * kPi, 1e-15);
  EXPECT_TRUE(rv::geom::approx_equal(start_point(seg), {0.0, 2.0}, 1e-12));
  EXPECT_TRUE(rv::geom::approx_equal(end_point(seg), {0.0, -2.0}, 1e-12));
  // Halfway: angle 0 (swept −π/2 from π/2).
  EXPECT_TRUE(
      rv::geom::approx_equal(position_at(seg, kPi), {2.0, 0.0}, 1e-12));
}

TEST(SegmentTest, ArcOnUnitSpeed) {
  // Traversal speed along arcs is 1 (arc length per time unit).
  const Segment seg = ArcSeg{{0.0, 0.0}, 3.0, 0.0, 1.0};
  const double h = 1e-6;
  const Vec2 a = position_at(seg, 1.0);
  const Vec2 b = position_at(seg, 1.0 + h);
  EXPECT_NEAR(rv::geom::distance(a, b) / h, 1.0, 1e-5);
}

TEST(SegmentTest, WaitBasics) {
  const Segment seg = WaitSeg{{2.0, 3.0}, 7.5};
  EXPECT_DOUBLE_EQ(duration(seg), 7.5);
  EXPECT_EQ(position_at(seg, 3.0), (Vec2{2.0, 3.0}));
  EXPECT_DOUBLE_EQ(traversal_speed(seg), 0.0);
}

TEST(SegmentTest, MaxRadius) {
  EXPECT_DOUBLE_EQ(max_radius(Segment{LineSeg{{0.0, 0.0}, {3.0, 4.0}}}), 5.0);
  EXPECT_DOUBLE_EQ(max_radius(Segment{ArcSeg{{1.0, 0.0}, 2.0, 0.0, 1.0}}), 3.0);
  EXPECT_DOUBLE_EQ(max_radius(Segment{WaitSeg{{0.0, 2.0}, 1.0}}), 2.0);
}

TEST(SegmentTest, ValidationRejectsBadParameters) {
  EXPECT_THROW(validate(Segment{ArcSeg{{0.0, 0.0}, -1.0, 0.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(validate(Segment{WaitSeg{{0.0, 0.0}, -1.0}}),
               std::invalid_argument);
  EXPECT_THROW(
      validate(Segment{LineSeg{{std::nan(""), 0.0}, {1.0, 0.0}}}),
      std::invalid_argument);
  EXPECT_NO_THROW(validate(Segment{LineSeg{{0.0, 0.0}, {1.0, 0.0}}}));
}

// ---------------------------------------------------------------------------
// Path
// ---------------------------------------------------------------------------

TEST(PathTest, BuildAndEvaluate) {
  Path p;
  p.line_to({1.0, 0.0});
  p.arc_around({0.0, 0.0}, kTwoPi);
  p.line_to({0.0, 0.0});
  EXPECT_EQ(p.size(), 3u);
  EXPECT_NEAR(p.duration(), 2.0 + kTwoPi, 1e-12);
  EXPECT_TRUE(p.is_continuous());
  EXPECT_TRUE(rv::geom::approx_equal(p.position_at(0.5), {0.5, 0.0}));
  EXPECT_TRUE(
      rv::geom::approx_equal(p.position_at(1.0 + kPi), {-1.0, 0.0}, 1e-12));
  EXPECT_TRUE(rv::geom::approx_equal(p.end(), {0.0, 0.0}, 1e-12));
}

TEST(PathTest, RejectsDiscontinuousAppend) {
  Path p;
  p.line_to({1.0, 0.0});
  EXPECT_THROW(p.append(LineSeg{{5.0, 5.0}, {6.0, 5.0}}),
               std::invalid_argument);
}

TEST(PathTest, ArcAroundRequiresOffCenterEnd) {
  Path p;
  EXPECT_THROW(p.arc_around({0.0, 0.0}, kPi), std::invalid_argument);
}

TEST(PathTest, WaitKeepsPosition) {
  Path p;
  p.line_to({2.0, 0.0});
  p.wait(5.0);
  EXPECT_DOUBLE_EQ(p.duration(), 7.0);
  EXPECT_TRUE(rv::geom::approx_equal(p.position_at(4.0), {2.0, 0.0}));
}

TEST(PathTest, SegmentStartTimes) {
  Path p;
  p.line_to({1.0, 0.0});
  p.wait(2.0);
  p.line_to({1.0, 3.0});
  EXPECT_DOUBLE_EQ(p.segment_start_time(0), 0.0);
  EXPECT_DOUBLE_EQ(p.segment_start_time(1), 1.0);
  EXPECT_DOUBLE_EQ(p.segment_start_time(2), 3.0);
  EXPECT_THROW((void)p.segment_start_time(3), std::out_of_range);
}

TEST(PathTest, ExtendConcatenates) {
  Path a;
  a.line_to({1.0, 0.0});
  Path b({1.0, 0.0});
  b.line_to({1.0, 1.0});
  a.extend(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_TRUE(rv::geom::approx_equal(a.end(), {1.0, 1.0}));
  Path wrong({9.0, 9.0});
  wrong.line_to({9.0, 10.0});
  EXPECT_THROW(a.extend(wrong), std::invalid_argument);
}

TEST(PathTest, PositionClampsOutsideDomain) {
  Path p;
  p.line_to({1.0, 0.0});
  EXPECT_EQ(p.position_at(-5.0), (Vec2{0.0, 0.0}));
  EXPECT_EQ(p.position_at(99.0), (Vec2{1.0, 0.0}));
}

TEST(PathTest, BoundingBoxAndMaxRadius) {
  Path p;
  p.line_to({1.0, 0.0});
  p.arc_around({0.0, 0.0}, kTwoPi);
  const Box box = p.bounding_box();
  EXPECT_LE(box.lo.x, -1.0 + 1e-12);
  EXPECT_GE(box.hi.y, 1.0 - 1e-12);
  EXPECT_NEAR(p.max_radius(), 1.0, 1e-12);
}

TEST(PathTest, EmptyPath) {
  const Path p({2.0, 2.0});
  EXPECT_TRUE(p.empty());
  EXPECT_DOUBLE_EQ(p.duration(), 0.0);
  EXPECT_EQ(p.position_at(1.0), (Vec2{2.0, 2.0}));
  EXPECT_TRUE(p.is_continuous());
}

// ---------------------------------------------------------------------------
// Programs
// ---------------------------------------------------------------------------

TEST(ProgramTest, StationaryEmitsWaitsAtOrigin) {
  StationaryProgram prog(10.0);
  for (int i = 0; i < 5; ++i) {
    const Segment seg = prog.next();
    const auto* wait = std::get_if<WaitSeg>(&seg);
    ASSERT_NE(wait, nullptr);
    EXPECT_EQ(wait->at, (Vec2{0.0, 0.0}));
    EXPECT_DOUBLE_EQ(wait->duration, 10.0);
  }
  EXPECT_THROW(StationaryProgram(-1.0), std::invalid_argument);
}

TEST(ProgramTest, PathProgramReplaysThenWaits) {
  Path p;
  p.line_to({1.0, 1.0});
  PathProgram prog(p, "test");
  const Segment first = prog.next();
  EXPECT_TRUE(std::holds_alternative<LineSeg>(first));
  const Segment tail = prog.next();
  const auto* wait = std::get_if<WaitSeg>(&tail);
  ASSERT_NE(wait, nullptr);
  EXPECT_TRUE(rv::geom::approx_equal(wait->at, {1.0, 1.0}));
  EXPECT_EQ(prog.name(), "test");
}

TEST(ProgramTest, PathProgramRequiresOriginStart) {
  Path p({1.0, 0.0});
  p.line_to({2.0, 0.0});
  EXPECT_THROW(PathProgram(p, "bad"), std::invalid_argument);
}

TEST(ProgramTest, RoundProgramChainsRounds) {
  RoundProgram prog(
      [](int round, Vec2 start) {
        Path p(start);
        p.line_to(start + Vec2{static_cast<double>(round), 0.0});
        return p;
      },
      "rounds");
  // Round 1 moves +1, round 2 moves +2, ... and stays continuous.
  Vec2 cur{0.0, 0.0};
  for (int round = 1; round <= 4; ++round) {
    const Segment seg = prog.next();
    const auto* line = std::get_if<LineSeg>(&seg);
    ASSERT_NE(line, nullptr);
    EXPECT_TRUE(rv::geom::approx_equal(line->from, cur));
    cur = line->to;
  }
  EXPECT_TRUE(rv::geom::approx_equal(cur, {10.0, 0.0}));
  EXPECT_EQ(prog.rounds_generated(), 4);
}

TEST(ProgramTest, RoundProgramRejectsTeleportingRounds) {
  RoundProgram prog(
      [](int, Vec2) {
        Path p({42.0, 0.0});  // ignores the cursor: discontinuous
        p.line_to({43.0, 0.0});
        return p;
      },
      "bad");
  EXPECT_THROW((void)prog.next(), std::logic_error);
}

TEST(ProgramTest, MarkRecorder) {
  MarkRecorder rec;
  rec.record(1.0, "alpha");
  rec.record(2.0, "beta");
  ASSERT_EQ(rec.marks().size(), 2u);
  EXPECT_EQ(rec.find("beta")->local_time, 2.0);
  EXPECT_EQ(rec.find("missing"), nullptr);
}

TEST(ProgramTest, BufferedTrajectoryEvaluates) {
  Path p;
  p.line_to({2.0, 0.0});
  auto prog = std::make_shared<PathProgram>(p, "buffered");
  BufferedTrajectory buf(prog);
  EXPECT_TRUE(rv::geom::approx_equal(buf.position_at(1.0), {1.0, 0.0}));
  EXPECT_TRUE(rv::geom::approx_equal(buf.position_at(100.0), {2.0, 0.0}));
  EXPECT_GE(buf.buffered_duration(), 100.0);
}

// ---------------------------------------------------------------------------
// Frame mapping (Lemma 4 made executable)
// ---------------------------------------------------------------------------

TEST(FrameTest, TimedSegmentInterpolatesUniformly) {
  TimedSegment ts{LineSeg{{0.0, 0.0}, {2.0, 0.0}}, 10.0, 14.0};
  EXPECT_TRUE(rv::geom::approx_equal(ts.position(10.0), {0.0, 0.0}));
  EXPECT_TRUE(rv::geom::approx_equal(ts.position(12.0), {1.0, 0.0}));
  EXPECT_TRUE(rv::geom::approx_equal(ts.position(14.0), {2.0, 0.0}));
  EXPECT_DOUBLE_EQ(ts.speed(), 0.5);
  // Waits have zero speed even though their "duration" is positive.
  TimedSegment tw{WaitSeg{{1.0, 1.0}, 4.0}, 0.0, 4.0};
  EXPECT_DOUBLE_EQ(tw.speed(), 0.0);
}

TEST(FrameTest, LineMapsThroughFrame) {
  RobotAttributes a;
  a.speed = 2.0;
  a.orientation = kPi / 2.0;
  const Segment local = LineSeg{{0.0, 0.0}, {1.0, 0.0}};
  const Segment global = to_global_geometry(local, a, {5.0, 5.0});
  const auto* line = std::get_if<LineSeg>(&global);
  ASSERT_NE(line, nullptr);
  EXPECT_TRUE(rv::geom::approx_equal(line->from, {5.0, 5.0}));
  // (1,0) rotated 90° and scaled by v·τ = 2 → (0,2).
  EXPECT_TRUE(rv::geom::approx_equal(line->to, {5.0, 7.0}, 1e-12));
}

TEST(FrameTest, ArcMapsWithChiralityFlip) {
  RobotAttributes a;
  a.chirality = -1;
  const Segment local = ArcSeg{{0.0, 0.0}, 1.0, 0.0, kPi / 2.0};
  const Segment global = to_global_geometry(local, a, {0.0, 0.0});
  const auto* arc = std::get_if<ArcSeg>(&global);
  ASSERT_NE(arc, nullptr);
  // χ = −1 flips the sweep direction (CCW → CW).
  EXPECT_NEAR(arc->sweep, -kPi / 2.0, 1e-15);
  // End point is the mirror image of the local end point.
  EXPECT_TRUE(rv::geom::approx_equal(end_point(global), {0.0, -1.0}, 1e-12));
}

TEST(FrameTest, WaitScalesDurationByTau) {
  RobotAttributes a;
  a.time_unit = 3.0;
  const Segment local = WaitSeg{{1.0, 0.0}, 2.0};
  const Segment global = to_global_geometry(local, a, {0.0, 0.0});
  const auto* wait = std::get_if<WaitSeg>(&global);
  ASSERT_NE(wait, nullptr);
  EXPECT_DOUBLE_EQ(wait->duration, 6.0);
}

class FrameIdentity
    : public ::testing::TestWithParam<std::tuple<double, double, double, int>> {
};

TEST_P(FrameIdentity, GlobalPositionMatchesLemma4Formula) {
  // The global trajectory of R′ must satisfy
  //   p(t) = origin + (v·τ)·R(φ)·C(χ)·S(t/τ)
  // where S is the local program trajectory.
  const auto [v, tau, phi, chi] = GetParam();
  RobotAttributes attrs;
  attrs.speed = v;
  attrs.time_unit = tau;
  attrs.orientation = phi;
  attrs.chirality = chi;
  const Vec2 origin{3.0, -2.0};

  // Local program: line out, quarter arc, wait, line back — exercises
  // all three primitives.
  Path local;
  local.line_to({2.0, 0.0});
  local.arc_around({0.0, 0.0}, kPi / 2.0);
  local.wait(1.0);
  local.line_to({0.0, 0.0});

  GlobalSegmentStream stream(
      std::make_shared<PathProgram>(local, "frame-test"), attrs, origin);

  // Buffer enough global segments to cover the path duration.
  std::vector<TimedSegment> global;
  const double horizon = tau * local.duration();
  while (stream.clock() < horizon) global.push_back(stream.next());

  const rv::geom::Mat2 m = frame_matrix(attrs);
  rv::mathx::Xoshiro256 rng(55);
  for (int i = 0; i < 200; ++i) {
    const double t = rng.uniform(0.0, horizon);
    // Evaluate the global stream at t.
    Vec2 global_pos{};
    for (const TimedSegment& ts : global) {
      if (t <= ts.t1) {
        global_pos = ts.position(t);
        break;
      }
    }
    const Vec2 expected = origin + m * local.position_at(t / tau);
    EXPECT_TRUE(rv::geom::approx_equal(global_pos, expected, 1e-9))
        << "t=" << t << " got " << global_pos.x << ',' << global_pos.y
        << " expected " << expected.x << ',' << expected.y;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FrameIdentity,
    ::testing::Values(std::make_tuple(1.0, 1.0, 0.0, 1),
                      std::make_tuple(2.0, 1.0, kPi / 3.0, 1),
                      std::make_tuple(0.5, 1.0, 1.0, -1),
                      std::make_tuple(1.0, 0.5, 2.0, 1),
                      std::make_tuple(1.5, 2.0, 4.0, -1),
                      std::make_tuple(0.25, 0.25, 5.5, 1)));

TEST(FrameTest, StreamSkipsDegenerateSegments) {
  Path p;
  p.line_to({0.0, 0.0});  // zero-length
  p.line_to({1.0, 0.0});
  GlobalSegmentStream stream(std::make_shared<PathProgram>(p, "degen"),
                                   RobotAttributes{}, {0.0, 0.0});
  const TimedSegment first = stream.next();
  EXPECT_GT(first.t1 - first.t0, 0.0);
  EXPECT_TRUE(std::holds_alternative<LineSeg>(first.geometry));
  const auto* line = std::get_if<LineSeg>(&first.geometry);
  EXPECT_TRUE(rv::geom::approx_equal(line->to, {1.0, 0.0}));
}

TEST(FrameTest, StreamClockAdvancesByTau) {
  Path p;
  p.line_to({1.0, 0.0});
  RobotAttributes slow;
  slow.time_unit = 4.0;
  GlobalSegmentStream stream(std::make_shared<PathProgram>(p, "slow"),
                                   slow, {0.0, 0.0});
  const TimedSegment seg = stream.next();
  // Local duration 1, global duration τ·1 = 4.
  EXPECT_NEAR(seg.t1 - seg.t0, 4.0, 1e-12);
  // Traversal speed is v = 1 (scale v·τ per local unit over τ).
  EXPECT_NEAR(seg.speed(), 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Sampling / flattening
// ---------------------------------------------------------------------------

TEST(SamplerTest, UniformSampling) {
  auto pos = [](double t) { return Vec2{t, 2.0 * t}; };
  const auto samples = sample_uniform(pos, 0.0, 1.0, 5);
  ASSERT_EQ(samples.size(), 5u);
  EXPECT_DOUBLE_EQ(samples.front().t, 0.0);
  EXPECT_DOUBLE_EQ(samples.back().t, 1.0);
  EXPECT_TRUE(rv::geom::approx_equal(samples[2].position, {0.5, 1.0}));
  EXPECT_THROW((void)sample_uniform(pos, 0.0, 1.0, 1), std::invalid_argument);
}

TEST(SamplerTest, FlattenArcRespectsChordError) {
  const Segment seg = ArcSeg{{0.0, 0.0}, 2.0, 0.0, kTwoPi};
  const double max_err = 1e-3;
  const auto pts = flatten_segment(seg, max_err);
  ASSERT_GE(pts.size(), 8u);
  // All polyline vertices lie on the circle; midpoints of chords are
  // within max_err of it.
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    const Vec2 mid = rv::geom::lerp(pts[i], pts[i + 1], 0.5);
    EXPECT_NEAR(rv::geom::norm(pts[i]), 2.0, 1e-12);
    EXPECT_GE(rv::geom::norm(mid), 2.0 - max_err - 1e-12);
  }
}

TEST(SamplerTest, FlattenPathDeduplicatesJunctions) {
  Path p;
  p.line_to({1.0, 0.0});
  p.line_to({1.0, 1.0});
  const auto pts = flatten_path(p, 1e-3);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_TRUE(rv::geom::approx_equal(pts[1], {1.0, 0.0}));
}

TEST(SamplerTest, FlattenRejectsBadTolerance) {
  EXPECT_THROW((void)flatten_segment(Segment{WaitSeg{{0, 0}, 1.0}}, 0.0),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Batched SoA position evaluation
// ---------------------------------------------------------------------------

TEST(BatchTest, BitwiseMatchesScalarOnRandomSegmentSoups) {
  // The engine's golden bytes depend on BatchedPositions replaying the
  // exact floating-point sequence of TimedSegment::position, so the
  // comparison here is `==`, not EXPECT_NEAR: any reordered operation
  // fails loudly.  Query times deliberately land before t0 and after
  // t1 to exercise the clamp paths too.
  rv::mathx::Xoshiro256 rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<TimedSegment> segs;
    const int n = 1 + rng.uniform_int(0, 19);
    double t = rng.uniform(-2.0, 2.0);
    for (int i = 0; i < n; ++i) {
      const double t0 = t;
      const double t1 = t0 + rng.uniform(1e-6, 3.0);
      t = t1;
      Segment geometry;
      switch (rng.uniform_int(0, 3)) {
        case 0:
          geometry = LineSeg{{rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)},
                             {rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)}};
          break;
        case 1:
          geometry = ArcSeg{{rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)},
                            rng.uniform(0.1, 3.0),
                            rng.uniform(0.0, kTwoPi),
                            rng.uniform(-2.0, 2.0) * kPi};
          break;
        case 2:
          geometry = WaitSeg{{rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)},
                             rng.uniform(0.1, 2.0)};
          break;
        default:  // degenerate line: from == to
          const Vec2 p{rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)};
          geometry = LineSeg{p, p};
          break;
      }
      segs.push_back({geometry, t0, t1});
    }
    BatchedPositions batch;
    batch.assemble(segs);
    ASSERT_EQ(batch.size(), segs.size());
    std::vector<Vec2> out(segs.size());
    for (int q = 0; q < 8; ++q) {
      const double at = rng.uniform(segs.front().t0 - 1.0,
                                    segs.back().t1 + 1.0);
      batch.positions(at, out.data());
      for (std::size_t i = 0; i < segs.size(); ++i) {
        const Vec2 ref = segs[i].position(at);
        EXPECT_EQ(out[i].x, ref.x) << "trial=" << trial << " i=" << i
                                   << " at=" << at;
        EXPECT_EQ(out[i].y, ref.y) << "trial=" << trial << " i=" << i
                                   << " at=" << at;
      }
    }
  }
}

TEST(BatchTest, ReassembleReplacesPreviousFleet) {
  BatchedPositions batch;
  batch.assemble({{LineSeg{{0.0, 0.0}, {1.0, 0.0}}, 0.0, 1.0},
                  {WaitSeg{{2.0, 2.0}, 1.0}, 0.0, 1.0}});
  ASSERT_EQ(batch.size(), 2u);
  batch.assemble({{LineSeg{{0.0, 0.0}, {0.0, 2.0}}, 0.0, 2.0}});
  ASSERT_EQ(batch.size(), 1u);
  Vec2 out;
  batch.positions(1.0, &out);
  const TimedSegment ref{LineSeg{{0.0, 0.0}, {0.0, 2.0}}, 0.0, 2.0};
  EXPECT_EQ(out.x, ref.position(1.0).x);
  EXPECT_EQ(out.y, ref.position(1.0).y);
}

}  // namespace
