// Property tests pitting the analytic event solver (`SweepOptions::
// solver = kAnalytic` / `kAuto`) against the bisection oracle on
// randomized line/arc/wait fleets: events and no-events must agree
// exactly away from knife edges, event times must agree within the
// sweep time tolerance scale, and the analytic path must deliver the
// promised metric-evaluation reduction on the gather-style workload.
// The default solver is pinned to the bisection oracle — that is what
// keeps every golden byte and every cacheable outcome
// (`engine::cache_key` does not key the solver) unchanged.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "engine/contact_sweep.hpp"
#include "engine/event_solver.hpp"
#include "geom/vec2.hpp"
#include "mathx/constants.hpp"
#include "search/baselines.hpp"
#include "traj/path.hpp"
#include "traj/program.hpp"

namespace {

using rv::engine::ContactSweep;
using rv::engine::RobotSpec;
using rv::engine::SolverChoice;
using rv::engine::SweepMetric;
using rv::engine::SweepOptions;
using rv::engine::SweepResult;
using rv::geom::RobotAttributes;
using rv::geom::Vec2;
using rv::mathx::kPi;
using rv::mathx::kTwoPi;

// Deterministic randomness (no <random> so sequences are pinned across
// standard libraries).
struct Lcg {
  std::uint64_t state;
  explicit Lcg(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 11;
  }
  double uniform() {  // [0, 1)
    return static_cast<double>(next() % (1ULL << 40)) /
           static_cast<double>(1ULL << 40);
  }
  double range(double lo, double hi) { return lo + (hi - lo) * uniform(); }
  int index(int n) { return static_cast<int>(next() % n); }
};

// A random finite trajectory: lines, waits and (optionally) arcs, then
// the PathProgram parks the robot forever.
std::shared_ptr<rv::traj::Program> random_program(Lcg& rng, bool allow_arcs) {
  rv::traj::Path path;
  const int segments = 4 + rng.index(5);
  for (int s = 0; s < segments; ++s) {
    const int kind = rng.index(allow_arcs ? 3 : 2);
    if (kind == 0) {
      path.line_to({rng.range(-2.0, 2.0), rng.range(-2.0, 2.0)});
    } else if (kind == 1) {
      path.wait(rng.range(0.2, 1.0));
    } else {
      // An arc starting at the current end point: place the center so
      // the point sits on the circle, then sweep a random signed angle.
      const double radius = rng.range(0.3, 1.5);
      const double theta0 = rng.range(0.0, kTwoPi);
      const Vec2 end = path.end();
      const Vec2 center{end.x - radius * std::cos(theta0),
                        end.y - radius * std::sin(theta0)};
      const double sweep =
          (rng.uniform() < 0.5 ? 1.0 : -1.0) * rng.range(0.5, 1.5) * kPi;
      path.append(rv::traj::ArcSeg{center, radius, theta0, sweep});
    }
  }
  return std::make_shared<rv::traj::PathProgram>(std::move(path), "random");
}

std::vector<RobotSpec> random_fleet(Lcg& rng, int n, bool allow_arcs) {
  std::vector<RobotSpec> robots;
  robots.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    RobotAttributes attrs;
    attrs.speed = rng.range(0.5, 2.0);
    attrs.time_unit = rng.range(0.5, 1.5);
    attrs.orientation = rng.range(0.0, kTwoPi);
    attrs.chirality = rng.uniform() < 0.5 ? 1 : -1;
    const double rho = rng.range(0.5, 3.0);
    const double ang = rng.range(0.0, kTwoPi);
    robots.push_back({random_program(rng, allow_arcs), attrs,
                      {rho * std::cos(ang), rho * std::sin(ang)}});
  }
  return robots;
}

// Programs are stateful pull-based generators (a sweep *consumes*
// them), so every sweep below is handed a freshly constructed fleet —
// sharing one RobotSpec vector across two sweeps would hand the second
// sweep already-exhausted segment streams.
SweepResult sweep(std::vector<RobotSpec> robots, SweepMetric metric,
                  SweepOptions opts, SolverChoice solver) {
  opts.solver = solver;
  ContactSweep cs(std::move(robots), metric, opts);
  return cs.run();
}

// Randomized cross-solver agreement.  Knife edges — fleets whose
// closest approach to the visibility radius is within `edge` — are
// skipped: there, event-vs-no-event is decided by which sample lands
// in the contact band, which is legitimately solver-dependent.
void check_agreement(std::uint64_t seed, int n, bool allow_arcs,
                     SweepMetric metric, SolverChoice solver) {
  Lcg rng(seed);
  int compared = 0;
  constexpr double kEdge = 1e-6;
  constexpr int kCases = 12;
  for (int c = 0; c < kCases; ++c) {
    const std::uint64_t fleet_seed = rng.next();
    auto fleet = [&] {  // same fleet, fresh programs, per sweep
      Lcg fleet_rng(fleet_seed);
      return random_fleet(fleet_rng, n, allow_arcs);
    };
    SweepOptions opts;
    opts.visibility = rng.range(0.2, 0.8);
    opts.max_time = 40.0;
    const SweepResult oracle =
        sweep(fleet(), metric, opts, SolverChoice::kBisection);
    const SweepResult fast = sweep(fleet(), metric, opts, solver);
    // Near-graze *misses* only: on any detected event the stepper
    // converges onto r, so best_metric ≈ r there by construction and
    // filtering on it would discard every event case.
    if (!oracle.event &&
        std::abs(oracle.best_metric - opts.visibility) < kEdge) {
      continue;
    }
    ++compared;
    ASSERT_EQ(oracle.event, fast.event)
        << "seed=" << seed << " case=" << c << " n=" << n
        << " r=" << opts.visibility << " oracle.best=" << oracle.best_metric;
    if (oracle.event) {
      EXPECT_NEAR(oracle.time, fast.time, 1e-6)
          << "seed=" << seed << " case=" << c << " n=" << n;
    } else {
      EXPECT_DOUBLE_EQ(oracle.time, fast.time);  // both at the horizon
    }
  }
  // The knife-edge filter must not eat the test.
  EXPECT_GE(compared, kCases / 2);
}

TEST(EventSolver, AnalyticMatchesOracleOnLineWaitFleets) {
  check_agreement(0xA11CE, 2, false, SweepMetric::kMinPairwise,
                  SolverChoice::kAnalytic);
  check_agreement(0xB0B, 3, false, SweepMetric::kMinPairwise,
                  SolverChoice::kAnalytic);
  check_agreement(0xC0FFEE, 6, false, SweepMetric::kMaxPairwise,
                  SolverChoice::kAnalytic);
  check_agreement(0xD00D, 12, false, SweepMetric::kMaxPairwise,
                  SolverChoice::kAnalytic);
}

TEST(EventSolver, AnalyticMatchesOracleOnArcFleets) {
  check_agreement(0x5EED1, 2, true, SweepMetric::kMinPairwise,
                  SolverChoice::kAnalytic);
  check_agreement(0x5EED2, 3, true, SweepMetric::kMinPairwise,
                  SolverChoice::kAnalytic);
  check_agreement(0x5EED3, 6, true, SweepMetric::kMaxPairwise,
                  SolverChoice::kAnalytic);
}

TEST(EventSolver, AutoMatchesOracleOnMixedFleets) {
  check_agreement(0xAA1, 3, true, SweepMetric::kMinPairwise,
                  SolverChoice::kAuto);
  check_agreement(0xAA2, 6, true, SweepMetric::kMaxPairwise,
                  SolverChoice::kAuto);
  check_agreement(0xAA3, 4, false, SweepMetric::kMaxPairwise,
                  SolverChoice::kAuto);
}

TEST(EventSolver, HeadOnCrossingTimeIsExact) {
  // Two robots head-on along the x axis from distance 2 at closing
  // speed 2 with r = 0.5: the crossing is at t = (2 − 0.5)/2 = 0.75.
  auto toward = [](double from_x, double to_x) {
    rv::traj::Path p;
    p.line_to({to_x - from_x, 0.0});  // local frame: starts at (0, 0)
    return std::make_shared<rv::traj::PathProgram>(std::move(p), "line");
  };
  auto robots = [&] {
    std::vector<RobotSpec> r;
    r.push_back({toward(-1.0, 9.0), RobotAttributes{}, {-1.0, 0.0}});
    r.push_back({toward(1.0, -9.0), RobotAttributes{}, {1.0, 0.0}});
    return r;
  };
  SweepOptions opts;
  opts.visibility = 0.5;
  opts.max_time = 10.0;
  const SweepResult ana =
      sweep(robots(), SweepMetric::kMinPairwise, opts, SolverChoice::kAnalytic);
  const SweepResult bis = sweep(robots(), SweepMetric::kMinPairwise, opts,
                                SolverChoice::kBisection);
  ASSERT_TRUE(ana.event);
  ASSERT_TRUE(bis.event);
  EXPECT_NEAR(ana.time, 0.75, 1e-9);
  EXPECT_NEAR(bis.time, 0.75, 1e-8);
  // The analytic path needs only the initial evaluation plus the one
  // confirming the jump landed in the contact band.  (On a purely
  // radial approach the Lipschitz step is tight, so the oracle happens
  // to match it here — hence ≥, not >.)
  EXPECT_LE(ana.evals, 4u);
  EXPECT_GE(bis.evals, ana.evals);
}

TEST(EventSolver, ArcApproachCrossingMatchesClosedForm) {
  // A parked robot at the origin and one riding the circle of radius 2
  // around (3, 0), starting at angle π/2 and sweeping CCW toward π.
  // d²(θ) = 13 + 12·cos θ, so d = 1.5 at θ* = arccos(−43/48); the
  // crossing time is the arc length 2·(θ* − π/2).
  // Local frames start at (0, 0), so the arc is expressed with local
  // center (0, −2) — start point (0, 0) at angle π/2 — and the robot
  // origin of (3, 2) places the global circle center at (3, 0).
  auto robots = [&] {
    rv::traj::Path arc_path;
    arc_path.append(rv::traj::ArcSeg{{0.0, -2.0}, 2.0, kPi / 2.0, kPi / 2.0});
    std::vector<RobotSpec> r;
    r.push_back({std::make_shared<rv::traj::StationaryProgram>(),
                 RobotAttributes{}, {0.0, 0.0}});
    r.push_back(
        {std::make_shared<rv::traj::PathProgram>(std::move(arc_path), "arc"),
         RobotAttributes{},
         {3.0, 2.0}});
    return r;
  };
  SweepOptions opts;
  opts.visibility = 1.5;
  opts.max_time = 10.0;
  const double theta_star = std::acos(-43.0 / 48.0);
  const double expected = 2.0 * (theta_star - kPi / 2.0);
  const SweepResult ana =
      sweep(robots(), SweepMetric::kMinPairwise, opts, SolverChoice::kAnalytic);
  const SweepResult bis = sweep(robots(), SweepMetric::kMinPairwise, opts,
                                SolverChoice::kBisection);
  ASSERT_TRUE(ana.event);
  ASSERT_TRUE(bis.event);
  EXPECT_NEAR(ana.time, expected, 1e-7);
  EXPECT_NEAR(bis.time, expected, 1e-7);
  EXPECT_GT(ana.model_evals, 0u);
}

TEST(EventSolver, CoincidentRobotsEventImmediately) {
  Lcg rng(0xC01);
  for (SolverChoice solver :
       {SolverChoice::kBisection, SolverChoice::kAnalytic,
        SolverChoice::kAuto}) {
    std::vector<RobotSpec> robots;
    auto prog = random_program(rng, true);
    robots.push_back({prog, RobotAttributes{}, {1.0, 1.0}});
    robots.push_back({random_program(rng, true), RobotAttributes{},
                      {1.0, 1.0}});
    SweepOptions opts;
    opts.visibility = 0.25;
    const SweepResult res =
        sweep(robots, SweepMetric::kMinPairwise, opts, solver);
    ASSERT_TRUE(res.event);
    EXPECT_DOUBLE_EQ(res.time, 0.0);
  }
}

TEST(EventSolver, GrazingMissAndHitAgree) {
  // Two parallel east-bound robots offset in y by c, one trailing in x:
  // the separation shrinks toward c as the trailing robot (faster)
  // draws level.  c = r ± margin turns the pass into a clean hit/miss.
  auto east = [](double length) {
    rv::traj::Path p;
    p.line_to({length, 0.0});
    return std::make_shared<rv::traj::PathProgram>(std::move(p), "east");
  };
  for (const bool hit : {true, false}) {
    const double r = 0.5;
    const double c = hit ? r - 1e-3 : r + 1e-3;
    auto robots = [&] {
      std::vector<RobotSpec> r2;
      RobotAttributes fast;
      fast.speed = 2.0;
      r2.push_back({east(40.0), fast, {-10.0, 0.0}});
      r2.push_back({east(20.0), RobotAttributes{}, {0.0, c}});
      return r2;
    };
    SweepOptions opts;
    opts.visibility = r;
    opts.max_time = 30.0;
    const SweepResult bis = sweep(robots(), SweepMetric::kMinPairwise, opts,
                                  SolverChoice::kBisection);
    const SweepResult ana = sweep(robots(), SweepMetric::kMinPairwise, opts,
                                  SolverChoice::kAnalytic);
    ASSERT_EQ(bis.event, hit);
    ASSERT_EQ(ana.event, hit);
    if (hit) {
      EXPECT_NEAR(bis.time, ana.time, 1e-6);
    }
  }
}

TEST(EventSolver, StationaryFleetsJumpWindowsWithoutEvents) {
  // All-wait fleets never event; both solvers must agree at the
  // horizon, and the analytic solver must not loop on Zeno guards.
  auto robots = [] {
    std::vector<RobotSpec> r;
    for (int i = 0; i < 4; ++i) {
      rv::traj::Path p;
      p.wait(2.0);
      p.wait(3.0);
      r.push_back(
          {std::make_shared<rv::traj::PathProgram>(std::move(p), "parked"),
           RobotAttributes{},
           {static_cast<double>(i), static_cast<double>(i % 2)}});
    }
    return r;
  };
  SweepOptions opts;
  opts.visibility = 0.5;
  opts.max_time = 100.0;
  for (SweepMetric metric :
       {SweepMetric::kMinPairwise, SweepMetric::kMaxPairwise}) {
    const SweepResult bis =
        sweep(robots(), metric, opts, SolverChoice::kBisection);
    const SweepResult ana =
        sweep(robots(), metric, opts, SolverChoice::kAnalytic);
    EXPECT_FALSE(bis.event);
    EXPECT_FALSE(ana.event);
    EXPECT_DOUBLE_EQ(bis.time, opts.max_time);
    EXPECT_DOUBLE_EQ(ana.time, opts.max_time);
    EXPECT_LE(ana.evals, 16u);
  }
}

TEST(EventSolver, AnalyticCutsEvalsFiveFoldOnGatherRing) {
  // The BM_ContactSweepGather workload at n = 50: identical
  // square-spiral robots on a jittered ring, max-pairwise metric, r at
  // 95% of the ring diameter.  The diameter is constant, so the
  // analytic solver jumps window to window while the stepper burns its
  // eval budget — the ≥5× acceptance bar of this PR, pinned here at a
  // test-sized n (BENCH_engine.json records the n = 1000 point).
  const int n = 50;
  std::uint64_t s = 0x9E3779B97F4A7C15ULL;
  std::vector<RobotSpec> robots_bis, robots_ana;
  for (int i = 0; i < n; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    const double jitter = static_cast<double>((s >> 11) % 1024) / 1024.0 * 0.05;
    const double ang = kTwoPi * i / n;
    const Vec2 origin{(1.0 + jitter) * std::cos(ang),
                      (1.0 + jitter) * std::sin(ang)};
    robots_bis.push_back({rv::search::make_square_spiral_baseline(),
                          RobotAttributes{}, origin});
    robots_ana.push_back({rv::search::make_square_spiral_baseline(),
                          RobotAttributes{}, origin});
  }
  SweepOptions opts;
  const double diam = 2.0 * std::sin(kPi * static_cast<double>(n / 2) / n);
  opts.visibility = 0.95 * diam;
  opts.max_time = 100.0;
  opts.max_evals = 2000;
  opts.solver = SolverChoice::kBisection;
  const SweepResult bis =
      ContactSweep(std::move(robots_bis), SweepMetric::kMaxPairwise, opts)
          .run();
  opts.solver = SolverChoice::kAnalytic;
  const SweepResult ana =
      ContactSweep(std::move(robots_ana), SweepMetric::kMaxPairwise, opts)
          .run();
  EXPECT_FALSE(bis.event);
  EXPECT_FALSE(ana.event);
  EXPECT_GE(bis.evals, 5 * ana.evals)
      << "bisection evals=" << bis.evals << " analytic evals=" << ana.evals;
}

TEST(EventSolver, DefaultSolverIsTheBisectionOracle) {
  // The default must stay kBisection: the batch families build
  // SweepOptions with defaults, engine::cache_key does not key the
  // solver, and every golden byte is pinned against the bisection
  // path.  Flipping this default silently repoints cacheable outcomes
  // at tolerance-level-different numerics — do it only with a cache
  // epoch bump and regenerated goldens.
  EXPECT_EQ(SweepOptions{}.solver, SolverChoice::kBisection);
  EXPECT_EQ(SweepResult{}.model_evals, 0u);
}

TEST(EventSolver, QuadFirstCrossingClosedForms) {
  using rv::engine::PairCrossing;
  using rv::engine::quad_first_crossing;
  // Head-on: Δ(s) = (2 − 2s, 0), r = 0.5 → crossing at s = 0.75.
  const PairCrossing head_on =
      quad_first_crossing({2.0, 0.0}, {-2.0, 0.0}, 0.5, 10.0);
  ASSERT_EQ(head_on.status, PairCrossing::Status::kCrossing);
  EXPECT_NEAR(head_on.s, 0.75, 1e-12);
  // Separating from the start: never crosses.
  EXPECT_EQ(quad_first_crossing({2.0, 0.0}, {1.0, 0.0}, 0.5, 10.0).status,
            PairCrossing::Status::kClear);
  // Perpendicular miss: closest approach 1 > r.
  EXPECT_EQ(quad_first_crossing({2.0, 1.0}, {-1.0, 0.0}, 0.5, 10.0).status,
            PairCrossing::Status::kClear);
  // Crossing beyond the window is clear within it.
  EXPECT_EQ(quad_first_crossing({2.0, 0.0}, {-2.0, 0.0}, 0.5, 0.5).status,
            PairCrossing::Status::kClear);
  // Relative rest above r.
  EXPECT_EQ(quad_first_crossing({2.0, 0.0}, {0.0, 0.0}, 0.5, 10.0).status,
            PairCrossing::Status::kClear);
}

}  // namespace
