// Tests for the `.rvset` declaration parser (engine/set_decl):
// twin-equivalence against the compiled-in rv_batch sets (same work
// items, same content keys, same labels), precise error reporting
// (line + key on every failure mode), the named hook registries, and
// file-level behaviours (stem-default names, path-prefixed errors).

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "engine/families.hpp"
#include "engine/scenario_set.hpp"
#include "engine/set_decl.hpp"
#include "rv_batch_sets.hpp"

namespace {

namespace fs = std::filesystem;
using rv::engine::Family;
using rv::engine::SetDecl;
using rv::engine::SetDeclError;
using rv::engine::WorkItem;

/// Directory holding the shipped example declarations.
fs::path sets_dir() {
#ifdef RV_SETS_DIR
  return fs::path(RV_SETS_DIR);
#else
  return fs::path("examples/sets");
#endif
}

/// Fresh scratch directory per test, removed on destruction.
struct Scratch {
  fs::path path;
  Scratch() {
    path = fs::temp_directory_path() / "rv_set_decl_XXXXXX";
    std::string buffer = path.string();
    EXPECT_NE(mkdtemp(buffer.data()), nullptr);
    path = buffer;
  }
  ~Scratch() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// Two materialised work lists are "the same sweep" when they pair up
/// item by item on family, label, and content key — the key covers
/// every cacheable input, so equal keys mean equal outcomes (and equal
/// horizon-rule results, which feed the keyed fields).
void expect_same_work(const std::vector<WorkItem>& want,
                      const std::vector<WorkItem>& got,
                      const std::string& context) {
  ASSERT_EQ(want.size(), got.size()) << context;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].family, got[i].family) << context << " item " << i;
    EXPECT_EQ(want[i].label, got[i].label) << context << " item " << i;
    const auto want_key = rv::engine::cache_key(want[i]);
    const auto got_key = rv::engine::cache_key(got[i]);
    ASSERT_EQ(want_key.has_value(), got_key.has_value())
        << context << " item " << i;
    if (want_key.has_value()) {
      EXPECT_EQ(*want_key, *got_key) << context << " item " << i;
    }
  }
}

/// Parses `text` and returns the error, failing the test when it
/// unexpectedly parses.
SetDeclError parse_error(const std::string& text) {
  try {
    (void)rv::engine::parse_set_decl(text);
  } catch (const SetDeclError& error) {
    return error;
  }
  ADD_FAILURE() << "expected SetDeclError for:\n" << text;
  return SetDeclError(0, "", "did not throw");
}

TEST(SetDeclTwins, EveryBuiltinSetHasAnEquivalentRvsetFile) {
  for (const rv::batch::BuiltinSet& builtin : rv::batch::builtin_sets()) {
    const fs::path file =
        sets_dir() / (std::string(builtin.name) + ".rvset");
    ASSERT_TRUE(fs::exists(file)) << file;
    const SetDecl decl = rv::engine::parse_set_decl_file(file);
    EXPECT_EQ(decl.name, builtin.name);
    EXPECT_EQ(decl.description, builtin.description);
    expect_same_work(builtin.build().materialize_work(),
                     decl.set.materialize_work(), builtin.name);
  }
}

TEST(SetDeclParse, GridAndAddSectionsMaterializeInDeclarationOrder) {
  // Explicit adds come before the grid, in file order — the fixed
  // materialisation order of ScenarioSet.
  const SetDecl decl = rv::engine::parse_set_decl(
      "name = ordered\n"
      "[linear.add]\n"
      "label = first\n"
      "mode = linear-rendezvous\n"
      "target = 1.0\n"
      "[linear.add]\n"
      "label = second\n"
      "mode = zigzag-search\n"
      "target = 2.0\n"
      "[linear]\n"
      "mode = zigzag-search\n"
      "distances = 3.0 4.0\n");
  const std::vector<WorkItem> items = decl.set.materialize_work();
  ASSERT_EQ(items.size(), 4u);
  EXPECT_EQ(items[0].label, "first");
  EXPECT_EQ(items[1].label, "second");
  EXPECT_EQ(items[2].linear.target, 3.0);
  EXPECT_EQ(items[3].linear.target, 4.0);
}

TEST(SetDeclParse, CommentsBlankLinesAndPaddingAreIgnored) {
  const SetDecl decl = rv::engine::parse_set_decl(
      "# leading comment\n"
      "\n"
      "  name   =   padded-name  \n"
      "[search]\t\n"
      "  angles = 2\n"
      "\tdistances = 1.0\n"
      "# trailing comment\n");
  EXPECT_EQ(decl.name, "padded-name");
  ASSERT_EQ(decl.set.materialize_work().size(), 1u);
  EXPECT_EQ(decl.set.materialize_work()[0].search.angles, 2);
}

TEST(SetDeclParse, ComponentsHooksAttachToMaterializedItems) {
  const SetDecl decl = rv::engine::parse_set_decl(
      "[search]\n"
      "distances = 1.0\n"
      "components = guaranteed-rounds\n"
      "[linear]\n"
      "distances = 2.0\n"
      "components = zigzag-reach\n");
  const std::vector<WorkItem> items = decl.set.materialize_work();
  ASSERT_EQ(items.size(), 2u);
  for (const WorkItem& item : items) {
    EXPECT_TRUE(static_cast<bool>(item.components))
        << rv::engine::family_name(item.family);
  }
  // The search hook replicates the Lemma 2 closed forms.
  const rv::engine::Components values =
      items[0].components(rv::engine::RunRecord{});
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0].name, "guaranteed_round");
  EXPECT_EQ(values[1].name, "round_time_bound");
}

TEST(SetDeclErrors, NameLineAndKeyOnEveryFailureMode) {
  struct Case {
    const char* what;
    const char* text;
    int line;
    const char* field;
  };
  const Case cases[] = {
      {"bare word", "name = x\njunk\n", 2, ""},
      {"empty key", "= value\n", 1, ""},
      {"empty value", "name =\n", 1, "name"},
      {"duplicate key", "[search]\nangles = 2\nangles = 3\n", 3, "angles"},
      {"unknown top-level key", "color = red\n[search]\ndistances = 1\n", 1,
       "color"},
      {"unknown section", "[warp]\nspeed = 9\n", 1, ""},
      {"unknown section suffix", "[search.grid]\ndistances = 1\n", 1, ""},
      {"duplicate grid section",
       "[search]\ndistances = 1\n[search]\ndistances = 2\n", 3, ""},
      {"bad number", "[search]\ndistances = fast\n", 2, "distances"},
      {"inf rejected", "[search]\ndistances = inf\n", 2, "distances"},
      {"hex rejected", "[search]\ndistances = 0x10\n", 2, "distances"},
      {"trailing junk", "[search]\ndistances = 1.0x\n", 2, "distances"},
      {"bad integer", "[search]\nangles = 2.5\ndistances = 1\n", 2, "angles"},
      {"bad bool", "components_only = yes\n[search]\ndistances = 1\n", 1,
       "components_only"},
      {"bad enum", "[search]\nprograms = warp-drive\n", 2, "programs"},
      {"bad algorithm", "[rendezvous]\nalgorithm = algorithm9\n"
                        "speeds = 1\n", 2, "algorithm"},
      {"bad mode", "[linear]\nmode = sideways\ndistances = 1\n", 2, "mode"},
      {"unknown key in section", "[search]\ndistances = 1\nwheels = 4\n", 3,
       "wheels"},
      {"axis-less grid", "[search]\nangles = 4\n", 1, ""},
      {"distances+offsets conflict",
       "[rendezvous]\ndistances = 1\noffsets = 1 0\n", 3, "offsets"},
      {"bad pair", "[rendezvous]\noffsets = 1 2 3\n", 2, "offsets"},
      {"unknown horizon rule",
       "[search]\ndistances = 1\nhorizon_rule = forever\n", 3,
       "horizon_rule"},
      {"unknown components hook",
       "[search]\ndistances = 1\ncomponents = everything\n", 3, "components"},
      {"robot outside gather.add", "[search]\nrobot = 1 1\ndistances = 1\n",
       2, "robot"},
      {"robot at top level", "robot = 1 1\n[search]\ndistances = 1\n", 1,
       "robot"},
      {"gather grid without sizes", "[gather]\nvisibility = 0.2\n", 1, ""},
      {"lone robot", "[gather.add]\nrobot = 1.0 1.0\n", 1, "robot"},
      {"malformed robot", "[gather.add]\nrobot = 1.0\nrobot = 1 1\n", 2,
       "robot"},
      {"bad set name", "name = bad name!\n[search]\ndistances = 1\n", 1,
       "name"},
      {"integer overflow", "[rendezvous]\nchiralities = 99999999999\n", 2,
       "chiralities"},
      {"control byte", "name = x\0y\n", 0, ""},  // text below, see NUL case
  };
  for (const Case& test : cases) {
    if (std::string(test.what) == "control byte") continue;  // handled below
    const SetDeclError error = parse_error(test.text);
    EXPECT_EQ(error.line(), test.line) << test.what << ": " << error.what();
    EXPECT_EQ(error.field(), test.field) << test.what << ": " << error.what();
  }
  // NUL bytes need an explicit length — a C literal would truncate.
  const std::string nul_text = std::string("name = x\0y\n[search]\n", 20);
  const SetDeclError nul_error = parse_error(nul_text);
  EXPECT_EQ(nul_error.line(), 1);
  // No sections at all is a file-level error (line 0).
  const SetDeclError empty_error = parse_error("name = lonely\n");
  EXPECT_EQ(empty_error.line(), 0);
  EXPECT_NE(std::string(empty_error.what()).find("no scenario sections"),
            std::string::npos);
}

TEST(SetDeclErrors, DuplicateKeyErrorNamesTheFirstOccurrence) {
  const SetDeclError error = parse_error(
      "[coverage]\nprograms = concentric\n# gap\nprograms = algorithm4\n");
  EXPECT_EQ(error.line(), 4);
  EXPECT_EQ(error.field(), "programs");
  EXPECT_NE(std::string(error.what()).find("first set on line 2"),
            std::string::npos);
}

TEST(SetDeclErrors, UnknownKeyErrorListsTheValidKeys) {
  const SetDeclError error =
      parse_error("[gather]\nsizes = 2 3\nwarp = 9\n");
  const std::string what = error.what();
  EXPECT_NE(what.find("[gather]"), std::string::npos) << what;
  EXPECT_NE(what.find("valid keys:"), std::string::npos) << what;
  EXPECT_NE(what.find("ring_radius"), std::string::npos) << what;
  EXPECT_NE(what.find("sizes"), std::string::npos) << what;
}

TEST(SetDeclRegistries, HookNamesMatchTheBuiltinLambdas) {
  using rv::engine::components_hook_names;
  using rv::engine::horizon_rule_names;
  EXPECT_EQ(horizon_rule_names(Family::kSearch),
            std::vector<std::string>{"guaranteed-rounds+1"});
  EXPECT_EQ(horizon_rule_names(Family::kLinear),
            std::vector<std::string>{"zigzag-reach+1"});
  EXPECT_EQ(horizon_rule_names(Family::kCoverage),
            std::vector<std::string>{"2x-guaranteed-rounds"});
  EXPECT_TRUE(horizon_rule_names(Family::kRendezvous).empty());
  EXPECT_TRUE(horizon_rule_names(Family::kGather).empty());
  EXPECT_EQ(components_hook_names(Family::kSearch),
            std::vector<std::string>{"guaranteed-rounds"});
  EXPECT_EQ(components_hook_names(Family::kLinear),
            std::vector<std::string>{"zigzag-reach"});
  EXPECT_TRUE(components_hook_names(Family::kCoverage).empty());
}

TEST(SetDeclFile, NameDefaultsToTheFileStem) {
  Scratch scratch;
  const fs::path file = scratch.path / "my-sweep.rvset";
  std::ofstream(file) << "[search]\ndistances = 1.0\n";
  const SetDecl decl = rv::engine::parse_set_decl_file(file);
  EXPECT_EQ(decl.name, "my-sweep");
  EXPECT_TRUE(decl.description.empty());
}

TEST(SetDeclFile, ErrorsArePrefixedWithThePathAndKeepTheLine) {
  Scratch scratch;
  const fs::path file = scratch.path / "broken.rvset";
  std::ofstream(file) << "[search]\ndistances = nope\n";
  try {
    (void)rv::engine::parse_set_decl_file(file);
    FAIL() << "expected SetDeclError";
  } catch (const SetDeclError& error) {
    EXPECT_EQ(error.line(), 2);
    EXPECT_EQ(error.field(), "distances");
    const std::string what = error.what();
    EXPECT_NE(what.find(file.string()), std::string::npos) << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  }
  EXPECT_THROW((void)rv::engine::parse_set_decl_file(scratch.path / "no.rvset"),
               SetDeclError);
}

}  // namespace
