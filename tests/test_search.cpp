// Tests for the search module: the Lemma 2 running-time algebra, the
// Algorithm 1–4 trajectory generators, coverage properties, the
// Theorem 1 bound, and the baseline searchers.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "mathx/binary.hpp"
#include "mathx/constants.hpp"
#include "mathx/rng.hpp"
#include "search/algorithm4.hpp"
#include "search/baselines.hpp"
#include "search/emitter.hpp"
#include "search/paths.hpp"
#include "search/times.hpp"
#include "sim/simulator.hpp"
#include "traj/program.hpp"

namespace {

using namespace rv::search;
using rv::geom::Vec2;
using rv::mathx::pow2;
using rv::traj::Segment;

// ---------------------------------------------------------------------------
// Lemma 2 algebra
// ---------------------------------------------------------------------------

TEST(SearchTimes, SearchCircleClosedForm) {
  // 2(π+1)δ.
  EXPECT_NEAR(time_search_circle(1.0), 2.0 * (rv::mathx::kPi + 1.0), 1e-12);
  EXPECT_DOUBLE_EQ(time_search_circle(0.0), 0.0);
  EXPECT_THROW((void)time_search_circle(-1.0), std::invalid_argument);
}

TEST(SearchTimes, PathDurationMatchesSearchCircleFormula) {
  for (const double delta : {0.25, 1.0, 3.5, 10.0}) {
    const auto path = search_circle_path(delta);
    EXPECT_NEAR(path.duration(), time_search_circle(delta),
                1e-12 * (1.0 + path.duration()))
        << "delta = " << delta;
    EXPECT_TRUE(path.is_continuous());
    EXPECT_TRUE(rv::geom::approx_equal(path.end(), {0.0, 0.0}, 1e-12));
  }
}

TEST(SearchTimes, PathDurationMatchesSearchAnnulusFormula) {
  const struct {
    double d1, d2, rho;
  } cases[] = {{0.5, 1.0, 0.125}, {1.0, 2.0, 0.03125}, {0.0, 1.0, 0.25},
               {2.0, 7.0, 0.4}};
  for (const auto& c : cases) {
    const auto path = search_annulus_path(c.d1, c.d2, c.rho);
    EXPECT_NEAR(path.duration(), time_search_annulus(c.d1, c.d2, c.rho),
                1e-9 * (1.0 + path.duration()))
        << c.d1 << ' ' << c.d2 << ' ' << c.rho;
  }
}

class SearchRoundAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(SearchRoundAlgebra, PathDurationMatchesLemma2) {
  const int k = GetParam();
  const auto path = search_round_path(k);
  // Lemma 2: Search(k) takes exactly 3(π+1)(k+1)·2^{k+1}.
  EXPECT_NEAR(path.duration(), time_search_round(k),
              1e-10 * path.duration());
  EXPECT_TRUE(path.is_continuous(1e-9));
  EXPECT_TRUE(rv::geom::approx_equal(path.end(), {0.0, 0.0}, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(SmallRounds, SearchRoundAlgebra,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(SearchTimes, FirstRoundsIsPrefixSumOfRounds) {
  // Lemma 2: Σ_{j=1..k} time_search_round(j) = 3(π+1)·k·2^{k+2}.
  double acc = 0.0;
  for (int k = 1; k <= 12; ++k) {
    acc += time_search_round(k);
    EXPECT_NEAR(acc, time_first_rounds(k), 1e-9 * acc) << "k = " << k;
  }
  EXPECT_DOUBLE_EQ(time_first_rounds(0), 0.0);
}

TEST(SearchTimes, SubRoundGeometry) {
  const SubRound sr = sub_round(3, 2);
  EXPECT_DOUBLE_EQ(sr.inner, pow2(-1));
  EXPECT_DOUBLE_EQ(sr.outer, pow2(0));
  EXPECT_DOUBLE_EQ(sr.rho, pow2(-6));
  EXPECT_EQ(sr.circles, (1LL << 4) + 1);
  // The defining invariant δ²_{j,k}/ρ_{j,k} = 2^{k+1} (proof of Lemma 3).
  for (int k = 1; k <= 8; ++k) {
    for (int j = 0; j <= 2 * k - 1; ++j) {
      const SubRound s = sub_round(k, j);
      EXPECT_NEAR(s.inner * s.inner / s.rho, pow2(k + 1), 1e-9)
          << "k=" << k << " j=" << j;
    }
  }
  EXPECT_THROW((void)sub_round(0, 0), std::invalid_argument);
  EXPECT_THROW((void)sub_round(2, 4), std::invalid_argument);
}

TEST(SearchTimes, RoundWaitFormula) {
  for (int k = 1; k <= 10; ++k) {
    EXPECT_NEAR(search_round_wait(k),
                3.0 * (rv::mathx::kPi + 1.0) * (pow2(k) + pow2(-k)), 1e-12);
  }
}

TEST(SearchTimes, Theorem1BoundFormula) {
  // 6(π+1)·log₂(d²/r)·(d²/r) for d = 1, r = 1/4: ratio 4, log 2.
  EXPECT_NEAR(theorem1_bound(1.0, 0.25), 6.0 * (rv::mathx::kPi + 1.0) * 2.0 * 4.0,
              1e-9);
  EXPECT_THROW((void)theorem1_bound(0.0, 1.0), std::invalid_argument);
}

TEST(SearchTimes, GuaranteedRoundCoversInstance) {
  for (const auto& [d, r] : std::vector<std::pair<double, double>>{
           {1.0, 0.25}, {2.0, 0.01}, {0.3, 0.05}, {5.0, 0.5}, {0.9, 0.9}}) {
    const int k = guaranteed_round(d, r);
    // Check the defining property: some sub-round of Search(k) reaches
    // distance d at granularity r.
    bool covered = false;
    for (int j = 0; j <= 2 * k - 1 && !covered; ++j) {
      const SubRound sr = sub_round(k, j);
      covered = (sr.outer >= d && sr.rho <= r);
    }
    EXPECT_TRUE(covered) << "d=" << d << " r=" << r << " k=" << k;
    // And minimality: no earlier round covers it.
    for (int kk = 1; kk < k; ++kk) {
      for (int j = 0; j <= 2 * kk - 1; ++j) {
        const SubRound sr = sub_round(kk, j);
        EXPECT_FALSE(sr.outer >= d && sr.rho <= r)
            << "earlier round " << kk << " also covers";
      }
    }
  }
}

TEST(SearchTimes, Lemma3LowerBound) {
  EXPECT_DOUBLE_EQ(lemma3_lower_bound(1), 4.0);
  EXPECT_DOUBLE_EQ(lemma3_lower_bound(5), 64.0);
  EXPECT_THROW((void)lemma3_lower_bound(0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Emitter ↔ path equivalence
// ---------------------------------------------------------------------------

// Compares segments up to floating-point noise (path junctions carry
// ~1 ulp of sin(2π) error that the O(1) emitter does not).
void expect_segment_near(const Segment& got, const Segment& expected,
                         std::size_t index, int k) {
  ASSERT_EQ(got.index(), expected.index()) << "kind mismatch at " << index;
  EXPECT_TRUE(rv::geom::approx_equal(rv::traj::start_point(got),
                                     rv::traj::start_point(expected), 1e-9))
      << "segment " << index << " of round " << k;
  EXPECT_TRUE(rv::geom::approx_equal(rv::traj::end_point(got),
                                     rv::traj::end_point(expected), 1e-9))
      << "segment " << index << " of round " << k;
  EXPECT_NEAR(rv::traj::duration(got), rv::traj::duration(expected), 1e-9)
      << "segment " << index << " of round " << k;
}

class EmitterEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(EmitterEquivalence, EmitsExactlyTheAlgorithm3Path) {
  const int k = GetParam();
  const auto path = search_round_path(k);
  SearchRoundEmitter emitter(k);
  std::size_t count = 0;
  for (const Segment& expected : path.segments()) {
    ASSERT_FALSE(emitter.done());
    const Segment got = emitter.next();
    expect_segment_near(got, expected, count, k);
    ++count;
  }
  EXPECT_TRUE(emitter.done());
  EXPECT_EQ(count, emitter.total_segments());
  EXPECT_THROW((void)emitter.next(), std::logic_error);
}

INSTANTIATE_TEST_SUITE_P(SmallRounds, EmitterEquivalence,
                         ::testing::Values(1, 2, 3, 4));

TEST(Emitter, RejectsBadRounds) {
  EXPECT_THROW(SearchRoundEmitter(0), std::invalid_argument);
  EXPECT_THROW(SearchRoundEmitter(31), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Algorithm 4 program
// ---------------------------------------------------------------------------

TEST(Algorithm4, EmitsContinuousTrajectoryAcrossRounds) {
  SearchProgram prog;
  Vec2 cursor{0.0, 0.0};
  double clock = 0.0;
  int segments = 0;
  while (prog.current_round() <= 2) {
    const Segment seg = prog.next();
    EXPECT_TRUE(rv::geom::approx_equal(rv::traj::start_point(seg), cursor,
                                       1e-9))
        << "discontinuity at segment " << segments;
    cursor = rv::traj::end_point(seg);
    clock += rv::traj::duration(seg);
    ++segments;
  }
  EXPECT_GT(segments, 10);
}

TEST(Algorithm4, RoundMarksMatchLemma2PrefixSums) {
  rv::traj::MarkRecorder rec;
  SearchProgram prog(1, &rec);
  // Pull segments until round 5 begins.
  while (prog.current_round() < 5) (void)prog.next();
  for (int k = 2; k <= 5; ++k) {
    const auto* mark = rec.find("round " + std::to_string(k) + " begin");
    ASSERT_NE(mark, nullptr) << k;
    EXPECT_NEAR(mark->local_time, time_first_rounds(k - 1),
                1e-9 * (1.0 + mark->local_time))
        << "round " << k;
  }
}

TEST(Algorithm4, FactoryProducesFreshPrograms) {
  auto p1 = make_search_program();
  auto p2 = make_search_program();
  EXPECT_NE(p1.get(), p2.get());
  EXPECT_EQ(p1->name(), "algorithm4");
}

// ---------------------------------------------------------------------------
// End-to-end search: Theorem 1 (experiment E1's property form)
// ---------------------------------------------------------------------------

struct SearchCase {
  double d;
  double r;
  double angle;
};

class SearchEndToEnd : public ::testing::TestWithParam<SearchCase> {};

TEST_P(SearchEndToEnd, FindsTargetWithinTheorem1Bound) {
  const SearchCase c = GetParam();
  const Vec2 target = rv::geom::polar(c.d, c.angle);
  // The unconditional guarantee holds for every instance; the
  // closed-form bound additionally holds when Lemma 1's (k, j) pair is
  // valid (see theorem1_bound_applicable).
  const double guarantee = time_first_rounds(guaranteed_round(c.d, c.r));
  rv::sim::SimOptions opts;
  opts.visibility = c.r;
  opts.max_time = guarantee + 1.0;
  const auto res = rv::sim::simulate_search(make_search_program(), target, opts);
  ASSERT_TRUE(res.met) << "d=" << c.d << " r=" << c.r << " ang=" << c.angle;
  EXPECT_LE(res.time, guarantee + 1e-6);
  if (theorem1_bound_applicable(c.d, c.r)) {
    EXPECT_LE(res.time, theorem1_bound(c.d, c.r));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SearchEndToEnd,
    ::testing::Values(SearchCase{1.0, 0.25, 0.0},
                      SearchCase{1.0, 0.25, 2.0},
                      SearchCase{0.5, 0.125, 1.0},
                      SearchCase{2.0, 0.125, 4.0},
                      SearchCase{3.0, 0.25, 5.5},
                      SearchCase{0.3, 0.04, 0.7},  // bound not applicable
                      SearchCase{1.7, 0.06, 3.1},
                      SearchCase{4.0, 0.5, 1.3}));

TEST(SearchEndToEndExtra, BoundApplicabilityPredicate) {
  // Canonical applicable instances: d ≥ 1 with a healthy ratio.
  EXPECT_TRUE(theorem1_bound_applicable(1.0, 0.25));
  EXPECT_TRUE(theorem1_bound_applicable(2.0, 0.125));
  EXPECT_TRUE(theorem1_bound_applicable(4.0, 0.5));
  // Tiny d relative to the ratio: Lemma 1's j goes negative.
  EXPECT_FALSE(theorem1_bound_applicable(0.3, 0.04));
  // Ratio below 2: k = 0.
  EXPECT_FALSE(theorem1_bound_applicable(0.7, 0.48));
  EXPECT_THROW((void)theorem1_bound_applicable(0.0, 1.0),
               std::invalid_argument);
}

TEST(SearchEndToEndExtra, RandomisedInstancesStayUnderBound) {
  rv::mathx::Xoshiro256 rng(4242);
  int checked = 0;
  for (int i = 0; i < 12 && checked < 5; ++i) {
    const double d = rng.log_uniform(1.0, 3.0);
    const double r = rng.log_uniform(0.05, 0.25);
    const double ang = rng.angle();
    if (!theorem1_bound_applicable(d, r)) continue;
    ++checked;
    rv::sim::SimOptions opts;
    opts.visibility = r;
    opts.max_time = theorem1_bound(d, r) + 1.0;
    const auto res =
        rv::sim::simulate_search(make_search_program(), rv::geom::polar(d, ang),
                                 opts);
    ASSERT_TRUE(res.met) << "d=" << d << " r=" << r;
    EXPECT_LE(res.time, theorem1_bound(d, r));
  }
  EXPECT_GE(checked, 3);
}

// ---------------------------------------------------------------------------
// Baselines
// ---------------------------------------------------------------------------

TEST(Baselines, ConcentricRoundTimeMatchesEmission) {
  ConcentricSweepProgram prog;
  // Sum emitted segment durations for rounds 1..3 and compare against
  // the closed form.
  for (int m = 1; m <= 3; ++m) {
    double acc = 0.0;
    const auto circles = std::uint64_t{1} << (2 * m - 1);
    for (std::uint64_t i = 0; i < 3 * circles; ++i) {
      acc += rv::traj::duration(prog.next());
    }
    EXPECT_NEAR(acc, ConcentricSweepProgram::round_time(m), 1e-9 * (1.0 + acc))
        << "m = " << m;
  }
}

TEST(Baselines, SquareSpiralRoundTimeMatchesEmission) {
  SquareSpiralProgram prog;
  for (int m = 1; m <= 3; ++m) {
    const double h = pow2(m);
    const double s = pow2(-m) * std::sqrt(2.0);
    const auto rows = static_cast<std::int64_t>(std::floor(2.0 * h / s)) + 1;
    double acc = 0.0;
    for (std::int64_t i = 0; i < 2 * rows + 1; ++i) {
      acc += rv::traj::duration(prog.next());
    }
    EXPECT_NEAR(acc, SquareSpiralProgram::round_time(m), 1e-9 * (1.0 + acc))
        << "m = " << m;
  }
}

TEST(Baselines, EmitContinuousTrajectories) {
  for (const auto& prog : {make_concentric_baseline(),
                           make_square_spiral_baseline()}) {
    Vec2 cursor{0.0, 0.0};
    for (int i = 0; i < 500; ++i) {
      const Segment seg = prog->next();
      ASSERT_TRUE(rv::geom::approx_equal(rv::traj::start_point(seg), cursor,
                                         1e-9))
          << prog->name() << " discontinuity at segment " << i;
      cursor = rv::traj::end_point(seg);
    }
  }
}

class BaselineCorrectness : public ::testing::TestWithParam<int> {};

TEST_P(BaselineCorrectness, BothBaselinesSolveSearch) {
  // Baselines are correct universal searchers: they must find the
  // target eventually (within their own doubling bound).
  const int which = GetParam();
  auto prog = which == 0 ? make_concentric_baseline()
                         : make_square_spiral_baseline();
  const Vec2 target = rv::geom::polar(1.3, 2.2);
  rv::sim::SimOptions opts;
  opts.visibility = 0.3;
  opts.max_time = 1e5;
  const auto res = rv::sim::simulate_search(std::move(prog), target, opts);
  ASSERT_TRUE(res.met);
  EXPECT_GT(res.time, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Both, BaselineCorrectness, ::testing::Values(0, 1));

}  // namespace
