// Deeper property suites for the schedule/coverage machinery:
//  * the Lemma 13 window-coverage argument (every τ ∈ (0,1) eventually
//    sits inside a Lemma 9 or Lemma 10 window for all large rounds),
//  * analytic coverage of Search(k) (every in-range point is within
//    ρ of some traversed circle — no simulation required),
//  * competitive-ratio yardsticks.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/competitive.hpp"
#include "mathx/binary.hpp"
#include "mathx/constants.hpp"
#include "mathx/rng.hpp"
#include "rendezvous/schedule.hpp"
#include "search/times.hpp"

namespace {

using namespace rv::rendezvous;
using rv::mathx::Interval;
using rv::mathx::pow2;

// ---------------------------------------------------------------------------
// Lemma 13's window-coverage argument
// ---------------------------------------------------------------------------

TEST(WindowCoverage, SmallMantissaSitsInLemma9WindowForAllLargeRounds) {
  // Lemma 13, first branch: for t ∈ [1/2, 2/3], τ = t·2⁻ᵃ lies in the
  // Lemma 9 window for every k ≥ 8(a+1).
  rv::mathx::Xoshiro256 rng(31337);
  for (int trial = 0; trial < 200; ++trial) {
    const double t = rng.uniform(0.5, 2.0 / 3.0);
    const int a = static_cast<int>(rng.uniform_int(0, 3));
    const double tau = t * pow2(-a);
    const int k0 = 8 * (a + 1);
    for (int k = k0; k <= k0 + 8; ++k) {
      const Interval w = lemma9_tau_window(k, a);
      EXPECT_TRUE(w.contains(tau))
          << "t=" << t << " a=" << a << " k=" << k << " window=[" << w.lo
          << "," << w.hi << "]";
    }
  }
}

TEST(WindowCoverage, LargeMantissaSitsInLemma10WindowForAllLargeRounds) {
  // Lemma 13, second branch: for t ∈ (2/3, 1), τ lies in the Lemma 10
  // window for every k ≥ k0 = (a+1)·t/(1−t).
  rv::mathx::Xoshiro256 rng(271828);
  for (int trial = 0; trial < 200; ++trial) {
    const double t = rng.uniform(0.67, 0.97);
    const int a = static_cast<int>(rng.uniform_int(0, 2));
    const double tau = t * pow2(-a);
    const int k0 = static_cast<int>(
        std::ceil((a + 1) * t / (1.0 - t) - 1e-9));
    for (int k = std::max(k0, 2 * (a + 1)); k <= k0 + 8; ++k) {
      const Interval w = lemma10_tau_window(k, a);
      // Lemma 10's window lower edge uses k/(k+a); the guarantee is
      // τ ≤ upper edge for k ≥ k0 and τ ≥ lower edge for k large —
      // both hold simultaneously from k0 up (this is what Lemma 13
      // uses).
      EXPECT_LE(tau, w.hi + 1e-12)
          << "t=" << t << " a=" << a << " k=" << k;
      EXPECT_GE(tau, w.lo - 1e-12)
          << "t=" << t << " a=" << a << " k=" << k;
    }
  }
}

TEST(WindowCoverage, EveryTauHasAGrowingOverlap) {
  // The composite claim behind Theorem 3: for any τ ∈ (0,1) the
  // best overlap length is eventually positive and grows.
  rv::mathx::Xoshiro256 rng(5);
  for (int trial = 0; trial < 25; ++trial) {
    const double tau = rng.uniform(0.05, 0.98);
    const auto dec = rv::mathx::dyadic_decompose(tau);
    const int k_hi = std::max(8 * (dec.a + 1),
                              static_cast<int>(std::ceil(
                                  (dec.a + 1) * dec.t / (1.0 - dec.t))) +
                                  2);
    const int peer_cap = k_hi + dec.a + 12;
    const auto o1 = best_overlap_with_inactive(k_hi, tau, peer_cap);
    const auto o2 = best_overlap_with_inactive(k_hi + 3, tau, peer_cap);
    ASSERT_TRUE(o1.has_value()) << "tau=" << tau << " k=" << k_hi;
    ASSERT_TRUE(o2.has_value()) << "tau=" << tau;
    EXPECT_GT(o2->length(), o1->length()) << "tau=" << tau;
  }
}

TEST(WindowCoverage, WindowsAreWellFormed) {
  for (int a = 0; a <= 3; ++a) {
    for (int k = 2 * (a + 1); k <= 40; ++k) {
      const Interval w9 = lemma9_tau_window(k, a);
      const Interval w10 = lemma10_tau_window(k, a);
      EXPECT_LT(w9.lo, w9.hi);
      // The Lemma 10 window degenerates to the single point 2/3·2^{-a}
      // exactly at the boundary k = 2(a+1); it is proper beyond it.
      if (k == 2 * (a + 1)) {
        EXPECT_LE(w10.lo, w10.hi + 1e-12);
      } else {
        EXPECT_LT(w10.lo, w10.hi);
      }
      EXPECT_GT(w9.lo, 0.0);
      EXPECT_LT(w10.hi, 1.0 + 1e-12);
      // The two windows tile adjacent τ ranges: Lemma 9's upper edge
      // is 1.5·k/(k+1+a)·2^{-a-1} = (3/4)·k/(k+1+a)·2^{-a}, just below
      // Lemma 10's upper edge k/(k+1+a)·2^{-a}.
      EXPECT_LT(w9.hi, w10.hi + 1e-12);
    }
  }
}

// ---------------------------------------------------------------------------
// Analytic coverage of Search(k) — Lemma 1 without simulation
// ---------------------------------------------------------------------------

TEST(AnalyticCoverage, EveryInRangePointIsWithinRhoOfATraversedCircle) {
  // For round k, any point with radius x ∈ [2^{−k}, 2^{k}] falls in
  // sub-round j = ⌊log₂ x⌋ + k, whose circles are spaced 2ρ_{j,k}
  // starting at 2^{−k+j}; the nearest circle is within ρ radially.
  rv::mathx::Xoshiro256 rng(99991);
  for (int k = 1; k <= 10; ++k) {
    for (int trial = 0; trial < 100; ++trial) {
      const double x = rng.log_uniform(pow2(-k), pow2(k) * 0.999);
      const int j = rv::mathx::floor_log2(x) + k;
      ASSERT_GE(j, 0);
      ASSERT_LE(j, 2 * k - 1) << "x=" << x << " k=" << k;
      const auto sr = rv::search::sub_round(k, j);
      ASSERT_GE(x, sr.inner * (1.0 - 1e-12));
      ASSERT_LE(x, sr.outer * (1.0 + 1e-12));
      // Distance to the nearest circle radius inner + 2·i·ρ.
      const double steps = std::round((x - sr.inner) / (2.0 * sr.rho));
      const double nearest = sr.inner + 2.0 * steps * sr.rho;
      EXPECT_LE(std::abs(x - nearest), sr.rho * (1.0 + 1e-9))
          << "x=" << x << " k=" << k << " j=" << j;
    }
  }
}

TEST(AnalyticCoverage, GranularityTightensWithRounds) {
  // For a fixed point radius x, the covering granularity shrinks by 2
  // per round (ρ_{j(x),k} halves as k increments) — the mechanism that
  // eventually beats any unknown r.
  const double x = 1.3;
  double prev_rho = 1e300;
  for (int k = 1; k <= 12; ++k) {
    const int j = rv::mathx::floor_log2(x) + k;
    const auto sr = rv::search::sub_round(k, j);
    EXPECT_LT(sr.rho, prev_rho);
    if (k > 1) {
      EXPECT_NEAR(prev_rho / sr.rho, 2.0, 1e-9);
    }
    prev_rho = sr.rho;
  }
}

// ---------------------------------------------------------------------------
// Competitive yardsticks
// ---------------------------------------------------------------------------

TEST(Competitive, OfflineOptimumClosedForm) {
  using namespace rv::analysis;
  EXPECT_DOUBLE_EQ(offline_optimal_time(3.0, 1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(offline_optimal_time(3.0, 1.0, 3.0), 0.5);
  EXPECT_DOUBLE_EQ(offline_optimal_time(0.5, 1.0, 1.0), 0.0);  // d < r
  EXPECT_THROW((void)offline_optimal_time(0.0, 1.0, 1.0),
               std::invalid_argument);
}

TEST(Competitive, AsymmetricWaitBound) {
  using namespace rv::analysis;
  EXPECT_DOUBLE_EQ(asymmetric_wait_lower_bound(3.0, 1.0, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(asymmetric_wait_lower_bound(3.0, 1.0, 2.0), 1.0);
}

TEST(Competitive, RatioGuards) {
  using namespace rv::analysis;
  EXPECT_DOUBLE_EQ(competitive_ratio(10.0, 3.0, 1.0, 1.0), 10.0);
  EXPECT_THROW((void)competitive_ratio(10.0, 0.5, 1.0, 1.0),
               std::invalid_argument);
}

TEST(Competitive, SymmetricAlwaysPaysOverOffline) {
  // Any symmetric algorithm pays at least the offline optimum; check
  // the yardstick ordering used by the benches.
  using namespace rv::analysis;
  for (const double v : {0.5, 1.0, 2.0}) {
    const double opt = offline_optimal_time(2.0, 0.5, v);
    const double wait = asymmetric_wait_lower_bound(2.0, 0.5, v);
    EXPECT_LE(opt, wait + 1e-12) << v;
  }
}

}  // namespace
