// Declaration-level golden pins: each test rebuilds the engine
// declaration of a ported bench (or a representative cell of a
// workload family) and compares the emitted ResultSet bytes — CSV,
// JSON, rendered table — against files committed under tests/golden/.
//
// These migrate the inline string pins that used to live in
// tests/test_engine.cpp (the run_universal seed capture and the
// E1/E9/X1/A1 ported-bench values) onto the reusable golden harness
// (tests/golden.hpp), and add pins for the linear and coverage
// families plus the component-times hook.  Regenerate intentionally
// changed outputs with RV_UPDATE_GOLDEN=1 (see golden.hpp).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/runner.hpp"
#include "engine/scenario_set.hpp"
#include "golden.hpp"
#include "io/csv.hpp"
#include "linear/linear_rendezvous.hpp"
#include "linear/zigzag.hpp"
#include "mathx/binary.hpp"
#include "mathx/constants.hpp"
#include "rendezvous/schedule.hpp"
#include "rendezvous/variants.hpp"
#include "search/paths.hpp"
#include "search/times.hpp"
#include "search/variants.hpp"

namespace {

using namespace rv;
using rv::geom::RobotAttributes;

// Full-precision derived columns: format_double's default 12
// significant digits match the bench CSV artifacts, but the seed pins
// were bit-exact — 17 significant digits round-trip a double exactly,
// so the golden file preserves the full value.
engine::Column full_precision(const char* name,
                              double (*get)(const engine::RunRecord&)) {
  return {name, [get](const engine::RunRecord& rec) {
            return io::format_double(get(rec), 17);
          }};
}

// ---------------------------------------------------------------------------
// The pre-refactor seed capture (was RunUniversalRegression): six
// universal-rendezvous cells covering the speed/clock/compass/
// chirality families of E3/E4/E7/E8, d = 1, r = 0.2, horizon 1e6.
// ---------------------------------------------------------------------------

TEST(GoldenEngine, UniversalCellsMatchSeedCapture) {
  const struct {
    double v, tau, phi;
    int chi;
  } cases[] = {
      {2.0, 1.0, 0.0, 1},    {0.5, 1.0, 0.0, -1},
      {1.0, 0.5, 0.0, 1},    {1.0, 0.75, 0.0, 1},
      {1.0, 1.0, mathx::kPi / 2.0, 1}, {1.5, 0.6, 2.0, -1},
  };
  engine::ScenarioSet set;
  for (const auto& c : cases) {
    rendezvous::Scenario s;
    s.attrs.speed = c.v;
    s.attrs.time_unit = c.tau;
    s.attrs.orientation = c.phi;
    s.attrs.chirality = c.chi;
    s.offset = {1.0, 0.0};
    s.visibility = 0.2;
    s.max_time = 1e6;
    set.add(s);
  }
  const auto results = engine::run_scenarios(set);
  const std::vector<engine::Column> extras{
      full_precision("time17",
                     [](const engine::RunRecord& r) { return r.outcome.sim.time; }),
      full_precision("distance17",
                     [](const engine::RunRecord& r) {
                       return r.outcome.sim.distance;
                     }),
  };
  golden::compare(results.to_csv(extras), "engine/universal_cells.csv");
}

// ---------------------------------------------------------------------------
// Ported-bench declarations (reduced grids, as pinned since PR 2).
// ---------------------------------------------------------------------------

TEST(GoldenEngine, E1SearchCells) {
  engine::SearchCell base;
  base.angles = 16;
  base.angle_offset = 0.03;
  engine::ScenarioSet set;
  set.search_base(base)
      .search_distances({1.0})
      .search_radii({0.5, 0.25})
      .search_horizon([](const engine::SearchCell& c) {
        return search::theorem1_bound(c.distance, c.visibility) + 1.0;
      });
  const auto results = engine::run_scenarios(set);
  ASSERT_TRUE(results.all_met());
  golden::compare(results.to_csv(), "engine/e1_cells.csv");
}

TEST(GoldenEngine, E9BaselineCells) {
  engine::ScenarioSet set;
  for (const auto prog :
       {engine::SearchProgram::kAlgorithm4, engine::SearchProgram::kConcentric,
        engine::SearchProgram::kSquareSpiral}) {
    engine::SearchCell cell;
    cell.distance = 2.0;
    cell.visibility = 0.25;
    cell.angles = 8;
    cell.angle_offset = 0.07;
    cell.program = prog;
    cell.max_time = 5e6;
    set.add_search(cell);
  }
  const auto results = engine::run_scenarios(set);
  ASSERT_TRUE(results.all_met());
  golden::compare(results.to_csv(), "engine/e9_cells.csv");
}

TEST(GoldenEngine, X1GatherCells) {
  engine::GatherCell cell;
  cell.fleet = {RobotAttributes{}, [] {
                  RobotAttributes a;
                  a.time_unit = 0.5;
                  return a;
                }(),
                [] {
                  RobotAttributes a;
                  a.time_unit = 0.75;
                  return a;
                }()};
  cell.ring_radius = 1.0;
  cell.visibility = 0.2;
  cell.contact_max_time = 1e5;
  cell.gather_max_time = 2e5;
  engine::ScenarioSet set;
  set.add_gather(cell, "3 robots, distinct clocks");
  const auto results = engine::run_scenarios(set);
  golden::compare(results.to_csv(), "engine/x1_cells.csv");
}

TEST(GoldenEngine, A1VariantAndA3SpacingCells) {
  engine::ScenarioSet set;
  for (const auto order : {rendezvous::ActivePhaseOrder::kForwardThenReverse,
                           rendezvous::ActivePhaseOrder::kForwardTwice}) {
    rendezvous::Scenario s;
    s.attrs.time_unit = 0.5;
    s.offset = {1.0, 0.0};
    s.visibility = 0.1;
    s.max_time = 5e6;
    s.program = [order] {
      return rendezvous::make_variant_rendezvous_program(order);
    };
    s.program_name = "variant";
    set.add(s);
  }
  const auto a1 = engine::run_scenarios(set);
  ASSERT_TRUE(a1.all_met());
  golden::compare(a1.to_csv(), "engine/a1_variant_cells.csv");

  rv::search::VariantOptions vopts;
  vopts.spacing_factor = 2.0;
  engine::SearchCell cell;
  cell.distance = 1.5;
  cell.visibility = 0.05;
  cell.angles = 8;
  cell.angle_offset = 0.11;
  cell.program_factory = [vopts] {
    return rv::search::make_variant_search_program(vopts);
  };
  cell.program_name = "algorithm4-spacing";
  cell.max_time = 4.0 * rv::search::time_first_rounds(
                            rv::search::guaranteed_round(1.5, 0.05));
  engine::ScenarioSet a3set;
  a3set.add_search(cell);
  const auto a3 = engine::run_scenarios(a3set);
  golden::compare(a3.to_csv(), "engine/a3_spacing_cells.csv");
}

// ---------------------------------------------------------------------------
// Linear family: the X2 truth table (1-D feasibility across the
// attribute families), pinned in all three emission forms.
// ---------------------------------------------------------------------------

engine::ScenarioSet linear_truth_table() {
  const struct {
    double v, tau;
    int dir;
  } cells[] = {{1.0, 1.0, 1},  {2.0, 1.0, 1},  {1.0, 0.5, 1},
               {1.0, 0.75, 1}, {1.0, 1.0, -1}, {0.5, 0.5, -1}};
  engine::ScenarioSet set;
  set.linear_horizon([](const engine::LinearCell& c) {
    return linear::linear_rendezvous_feasible(c.attrs) ? 1e6 : 2e4;
  });
  for (const auto& c : cells) {
    engine::LinearCell cell;
    cell.mode = engine::LinearMode::kRendezvous;
    cell.attrs.speed = c.v;
    cell.attrs.time_unit = c.tau;
    cell.attrs.direction = c.dir;
    cell.target = 1.0;
    cell.visibility = 0.05;
    set.add_linear(cell);
  }
  return set;
}

TEST(GoldenEngine, X2LinearTruthTable) {
  const auto results = engine::run_scenarios(linear_truth_table());
  golden::compare(results.to_csv(), "engine/linear_cells.csv");
  golden::compare(results.to_json(), "engine/linear_cells.json");
  golden::compare(results.to_table().to_ascii(), "engine/linear_cells.txt");
}

TEST(GoldenEngine, X2ZigzagSearchCells) {
  engine::LinearCell base;
  base.mode = engine::LinearMode::kZigZagSearch;
  base.visibility = 1e-3;
  engine::ScenarioSet set;
  set.linear_base(base)
      .linear_distances({1.0, 2.0, 4.0, 8.0})
      .linear_horizon([](const engine::LinearCell& c) {
        return linear::zigzag_reach_bound(c.target) + 1.0;
      });
  const auto results = engine::run_scenarios(set);
  ASSERT_TRUE(results.all_met());
  golden::compare(results.to_csv(), "engine/zigzag_cells.csv");
}

// ---------------------------------------------------------------------------
// Coverage family: two small cells (fast grid) in CSV + JSON.
// ---------------------------------------------------------------------------

TEST(GoldenEngine, CoverageCells) {
  engine::CoverageCell base;
  base.disk_radius = 1.0;
  base.visibility = 0.25;
  base.cell = 0.05;
  base.checkpoints = 8;
  engine::ScenarioSet set;
  set.coverage_base(base)
      .coverage_programs({engine::SearchProgram::kAlgorithm4,
                          engine::SearchProgram::kSquareSpiral})
      .coverage_horizon([](const engine::CoverageCell& c) {
        return 2.0 * search::time_first_rounds(search::guaranteed_round(
                         c.disk_radius, c.visibility));
      });
  const auto results = engine::run_scenarios(set);
  golden::compare(results.to_csv(), "engine/coverage_cells.csv");
  golden::compare(results.to_json(), "engine/coverage_cells.json");
}

// ---------------------------------------------------------------------------
// Component-times hook: the E2 SearchCircle grid and the E6 lemma
// windows, pinned with their component columns.
// ---------------------------------------------------------------------------

TEST(GoldenEngine, E2CircleComponents) {
  engine::ScenarioSet set;
  set.components_only()
      .search_distances({0.125, 0.5, 1.0, 2.0, 8.0})
      .search_components([](const engine::SearchCell& c,
                            const engine::SearchOutcome&) {
        return engine::Components{
            {"measured", search::search_circle_path(c.distance).duration()},
            {"formula", search::time_search_circle(c.distance)}};
      });
  const auto results = engine::run_scenarios(set);
  golden::compare(results.to_csv(), "engine/e2_circle_components.csv");
  golden::compare(results.to_json(), "engine/e2_circle_components.json");
}

TEST(GoldenEngine, E6OverlapComponents) {
  engine::ScenarioSet set;
  set.components_only()
      .time_units({0.5, 0.6, 0.75})
      .components([](const rendezvous::Scenario& s,
                     const rendezvous::Outcome&) {
        const double tau = s.attrs.time_unit;
        int k0 = 0;
        for (int k = 1; k <= 40 && k0 == 0; ++k) {
          if (rendezvous::best_overlap_with_inactive(k, tau)) k0 = k;
        }
        const auto best = rendezvous::best_overlap_with_inactive(k0, tau);
        return engine::Components{
            {"k0", static_cast<double>(k0)},
            {"overlap", best ? best->length() : 0.0},
            {"S", rendezvous::search_all_time(k0)}};
      });
  const auto results = engine::run_scenarios(set);
  golden::compare(results.to_csv(), "engine/e6_overlap_components.csv");
}

}  // namespace
