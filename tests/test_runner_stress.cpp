// Concurrency stress for the Runner thread pool and the shared
// ScenarioCache — written for the TSan leg of the sanitizer matrix
// (see docs/DEVELOPMENT.md), where it is the test that makes the
// "thread-safe" claims earn their keep: several driver threads hammer
// ONE cache through concurrent run_scenarios calls (mixed cache hits,
// misses, and uncacheable items, so every branch of the runner's
// memoization races with the others) while a reader thread polls
// size() / snapshot() / lookup() the whole time.  Under TSan any
// unsynchronised access in ScenarioCache or the runner's counters is a
// hard failure; under the plain build the test still pins the
// certified property that concurrency must never change bytes.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/families.hpp"
#include "engine/runner.hpp"
#include "engine/serve.hpp"
#include "io/csv.hpp"
#include "rv_batch_sets.hpp"

namespace {

using namespace rv;

// A mixed work list: 12 cacheable rendezvous cells (4 distinct
// scenarios x 3 repeats, so even a single run produces hits), 2
// cacheable linear cells, and 2 uncacheable components-only items.
std::vector<engine::WorkItem> mixed_work() {
  std::vector<engine::WorkItem> work;
  const double speeds[] = {0.5, 1.0, 2.0, 3.0};
  for (int repeat = 0; repeat < 3; ++repeat) {
    for (const double v : speeds) {
      engine::WorkItem item;
      item.family = engine::Family::kRendezvous;
      // Built via append, not operator+: `"lit" + std::string&&`
      // trips gcc 12's -Wrestrict false positive (PR 105329) at -O3.
      item.label = "v";
      item.label += io::format_double(v, 2);
      item.label += "#";
      item.label += std::to_string(repeat);
      item.scenario.attrs.speed = v;
      item.scenario.visibility = 0.25;
      item.scenario.max_time = 500.0;
      work.push_back(std::move(item));
    }
  }
  for (const double d : {1.0, 2.0}) {
    engine::WorkItem item;
    item.family = engine::Family::kLinear;
    item.label = "line-d";
    item.label += io::format_double(d, 1);
    item.linear.mode = engine::LinearMode::kZigZagSearch;
    item.linear.target = d;
    item.linear.visibility = 0.05;
    work.push_back(std::move(item));
  }
  for (int i = 0; i < 2; ++i) {
    engine::WorkItem item;
    // Own family: emission needs one component-column schema per
    // family subset, and the plain rendezvous records above have no
    // components.  components_only skips the payload run anyway.
    item.family = engine::Family::kSearch;
    item.label = "algebra#";
    item.label += std::to_string(i);
    item.components_only = true;
    item.components = [](const engine::RunRecord&) {
      return engine::Components{{"closed_form", 42.0}};
    };
    work.push_back(std::move(item));
  }
  return work;
}

constexpr std::size_t kCacheableDistinct = 4 + 2;  // scenarios + linear cells
constexpr std::size_t kCacheablePerRun = 12 + 2;
constexpr std::size_t kUncacheablePerRun = 2;

TEST(RunnerStress, ConcurrentRunnersSharedCacheAndPollingReader) {
  const std::vector<engine::WorkItem> work = mixed_work();

  // Byte reference: single-threaded, no cache.  Split per family —
  // emission requires homogeneous records.
  engine::RunnerOptions reference_opts;
  reference_opts.threads = 1;
  const engine::ResultSet reference =
      engine::run_scenarios(work, reference_opts);
  const std::string ref_rendezvous =
      reference.filtered(engine::Family::kRendezvous).to_csv();
  const std::string ref_linear =
      reference.filtered(engine::Family::kLinear).to_csv();
  const std::string ref_algebra =
      reference.filtered(engine::Family::kSearch).to_csv();

  engine::ScenarioCache cache;
  constexpr int kDrivers = 4;
  constexpr int kIterations = 4;
  std::atomic<int> drivers_done{0};
  std::atomic<int> byte_mismatches{0};
  std::atomic<std::uint64_t> total_hits{0}, total_misses{0},
      total_uncacheable{0};

  // The reader: polls the cache's whole read surface while the drivers
  // are writing to it.  Everything it sees must be internally
  // consistent (snapshot sorted by key, size matching, entries
  // replayable) even though it races with store().
  std::atomic<int> reader_violations{0};
  std::thread reader([&] {
    while (drivers_done.load(std::memory_order_acquire) < kDrivers) {
      const std::size_t n = cache.size();
      const auto snap = cache.snapshot();
      if (snap.size() < n) reader_violations.fetch_add(1);
      for (std::size_t i = 1; i < snap.size(); ++i) {
        if (!(snap[i - 1].first < snap[i].first)) {
          reader_violations.fetch_add(1);
        }
      }
      engine::ScenarioCache::Entry entry;
      for (const auto& [key, value] : snap) {
        if (!cache.lookup(key, &entry)) reader_violations.fetch_add(1);
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> drivers;
  drivers.reserve(kDrivers);
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&] {
      for (int it = 0; it < kIterations; ++it) {
        engine::RunnerOptions opts;
        opts.threads = 3;
        opts.cache = &cache;
        const engine::ResultSet result = engine::run_scenarios(work, opts);
        const engine::CacheStats& stats = result.cache_stats();
        total_hits.fetch_add(stats.hits);
        total_misses.fetch_add(stats.misses);
        total_uncacheable.fetch_add(stats.uncacheable);
        if (result.filtered(engine::Family::kRendezvous).to_csv() !=
                ref_rendezvous ||
            result.filtered(engine::Family::kLinear).to_csv() != ref_linear ||
            result.filtered(engine::Family::kSearch).to_csv() != ref_algebra) {
          byte_mismatches.fetch_add(1);
        }
      }
      drivers_done.fetch_add(1, std::memory_order_release);
    });
  }
  for (std::thread& t : drivers) t.join();
  reader.join();

  // Concurrency must never change bytes: every one of the 16 runs
  // (any thread interleaving, any hit/miss split) emitted the
  // single-threaded uncached reference exactly.
  EXPECT_EQ(byte_mismatches.load(), 0);
  EXPECT_EQ(reader_violations.load(), 0);

  // Accounting: every cacheable item was a hit or a miss, every
  // components-only item counted uncacheable, and the cache holds
  // exactly the distinct cacheable cells (a racing double-compute
  // stores once — first writer wins).
  constexpr std::uint64_t kRuns = kDrivers * kIterations;
  EXPECT_EQ(total_hits.load() + total_misses.load(),
            kRuns * kCacheablePerRun);
  EXPECT_EQ(total_uncacheable.load(), kRuns * kUncacheablePerRun);
  EXPECT_GE(total_misses.load(), kCacheableDistinct);
  EXPECT_EQ(cache.size(), kCacheableDistinct);

  // The surviving entries replay to the reference bytes.
  engine::RunnerOptions replay_opts;
  replay_opts.threads = 2;
  replay_opts.cache = &cache;
  const engine::ResultSet replay = engine::run_scenarios(work, replay_opts);
  EXPECT_EQ(replay.cache_stats().hits, kCacheablePerRun);
  EXPECT_EQ(replay.cache_stats().misses, 0u);
  EXPECT_EQ(replay.filtered(engine::Family::kRendezvous).to_csv(),
            ref_rendezvous);
  EXPECT_EQ(replay.filtered(engine::Family::kLinear).to_csv(), ref_linear);
  EXPECT_EQ(replay.filtered(engine::Family::kSearch).to_csv(), ref_algebra);
}

// ---------------------------------------------------------------------
// Serve-layer concurrency: many client threads against ONE in-process
// Service (the same object the rv_serve daemon wraps), mixing valid
// runs, malformed headers, unknown sets, and status polls.  Under TSan
// any unsynchronised access in the admission queue, worker pool, or
// counter block is a hard failure; under the plain build the test pins
// that concurrency never changes reply bytes and that the counters
// balance exactly.
// ---------------------------------------------------------------------

/// Splits one reply frame into header and payload via the library
/// decoder (also exercising read_frame under concurrency).
std::pair<std::string, std::string> split_frame(const std::string& frame) {
  std::istringstream stream(frame);
  std::string header, payload;
  if (!engine::serve::read_frame(stream, &header, &payload)) {
    ADD_FAILURE() << "unreadable frame: " << frame;
  }
  return {header, payload};
}

TEST(ServeStress, ConcurrentClientsOneServiceBytesAndCountersHold) {
  namespace serve = engine::serve;
  serve::Options options;
  options.workers = 4;
  options.threads = 2;
  options.resolver = [](const std::string& name) {
    return rv::batch::build_builtin_set(name);
  };
  serve::Service service(std::move(options));

  // Byte reference: one clean run through the same service surface.
  const auto [ref_header, ref_payload] = split_frame(
      service.process(R"({"op":"run","id":"ref","set":"linear-line"})"));
  ASSERT_NE(ref_header.find("\"reply\":\"ok\""), std::string::npos)
      << ref_header;
  ASSERT_FALSE(ref_payload.empty());

  constexpr int kClients = 4;
  constexpr int kIterations = 6;
  std::atomic<int> byte_mismatches{0};
  std::atomic<int> wrong_replies{0};
  std::atomic<int> clients_done{0};

  // A status poller races every client: its replies must always be
  // well-formed status frames whatever instant they sample.
  std::thread poller([&] {
    while (clients_done.load(std::memory_order_acquire) < kClients) {
      const auto [header, payload] =
          split_frame(service.process(R"({"op":"status","id":"poll"})"));
      if (header.find("\"reply\":\"status\"") == std::string::npos ||
          !payload.empty()) {
        wrong_replies.fetch_add(1);
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int it = 0; it < kIterations; ++it) {
        std::string id = "c";
        id += std::to_string(c);
        id += "#";
        id += std::to_string(it);
        const auto [header, payload] = split_frame(service.process(
            R"({"op":"run","id":")" + id + R"(","set":"linear-line"})"));
        if (header.find("\"reply\":\"ok\"") == std::string::npos ||
            header.find("\"id\":\"" + id + "\"") == std::string::npos) {
          wrong_replies.fetch_add(1);
        }
        if (payload != ref_payload) byte_mismatches.fetch_add(1);

        // Malformed header: a structured parse error, service intact.
        const auto [parse_header, parse_payload] =
            split_frame(service.process("{\"op\":"));
        if (parse_header.find("\"code\":\"parse\"") == std::string::npos ||
            !parse_payload.empty()) {
          wrong_replies.fetch_add(1);
        }
        // Unknown set: bad-set.
        const auto [bad_header, bad_payload] = split_frame(
            service.process(R"({"op":"run","set":"no-such-set"})"));
        if (bad_header.find("\"code\":\"bad-set\"") == std::string::npos ||
            !bad_payload.empty()) {
          wrong_replies.fetch_add(1);
        }
      }
      clients_done.fetch_add(1, std::memory_order_release);
    });
  }
  for (std::thread& t : clients) t.join();
  poller.join();

  EXPECT_EQ(byte_mismatches.load(), 0);
  EXPECT_EQ(wrong_replies.load(), 0);

  // Counter balance (the poller's status count varies; everything it
  // adds lands in `requests` only, so check exact equalities on the
  // deterministic slices and consistency on the rest).
  constexpr std::uint64_t kRuns = kClients * kIterations + 1;  // + reference
  constexpr std::uint64_t kBad = 2 * kClients * kIterations;
  const serve::Counters counters = service.counters();
  EXPECT_EQ(counters.ok, kRuns);
  EXPECT_EQ(counters.errors, kBad);
  EXPECT_EQ(counters.expired, 0u);
  EXPECT_EQ(counters.rejected, 0u);
  EXPECT_EQ(counters.inflight, 0u);
  EXPECT_EQ(counters.queue_depth, 0u);
  EXPECT_GE(counters.requests, kRuns + kBad);  // + status polls
  // linear-line holds 4 cacheable cells: every run accounts each one
  // as a hit or a miss, racing first-computers store once.
  EXPECT_EQ(counters.hits + counters.misses, kRuns * 4);
  EXPECT_GE(counters.misses, 4u);
  EXPECT_EQ(counters.uncacheable, 0u);
  EXPECT_EQ(service.cache_size(), 4u);

  // Warm replay after the storm: all hits, reference bytes.
  const auto [warm_header, warm_payload] = split_frame(
      service.process(R"({"op":"run","id":"warm","set":"linear-line"})"));
  EXPECT_NE(warm_header.find("\"hits\":4,\"misses\":0"), std::string::npos)
      << warm_header;
  EXPECT_EQ(warm_payload, ref_payload);
}

}  // namespace
