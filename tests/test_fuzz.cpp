// Randomised differential tests ("fuzz"): the certified Lipschitz
// sweep of the simulator is cross-checked against an independent
// dense-sampling + Brent oracle on randomly generated piecewise
// trajectories, the frame map is cross-checked against direct matrix
// evaluation on random programs, and the scenario-cache content key is
// cross-checked against an independent canonical dump of the keyed
// fields.  Any disagreement is a bug in one of the two independent
// implementations.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/families.hpp"
#include "engine/set_decl.hpp"
#include "mathx/constants.hpp"
#include "mathx/rng.hpp"
#include "mathx/roots.hpp"
#include "search/algorithm4.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "traj/path.hpp"
#include "traj/program.hpp"

namespace {

using rv::geom::RobotAttributes;
using rv::geom::Vec2;
using rv::mathx::Xoshiro256;
using rv::traj::Path;
using rv::traj::PathProgram;

/// Random continuous path with `segments` pieces: lines, arcs and
/// waits with bounded extents.
Path random_path(Xoshiro256& rng, int segments) {
  Path path;
  for (int i = 0; i < segments; ++i) {
    const auto kind = rng.uniform_int(0, 2);
    if (kind == 0) {
      path.line_to(path.end() +
                   Vec2{rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)});
    } else if (kind == 1) {
      // Arc around a centre offset from the current end point.
      const Vec2 centre =
          path.end() + rv::geom::polar(rng.uniform(0.3, 2.0), rng.angle());
      path.arc_around(centre, rng.uniform(-1.5, 1.5) * rv::mathx::kPi);
    } else {
      path.wait(rng.uniform(0.1, 1.0));
    }
  }
  return path;
}

/// Independent oracle: separation of the two traces as a dense time
/// function, first crossing of r found by scan + Brent.
double oracle_first_contact(const rv::sim::GlobalTrace& t1,
                            const rv::sim::GlobalTrace& t2, double r,
                            double horizon) {
  auto sep = [&](double t) {
    return rv::geom::distance(t1.position_at(t), t2.position_at(t)) - r;
  };
  if (sep(0.0) <= 0.0) return 0.0;
  // Scan resolution well below any segment length used by the fuzzer.
  const auto crossing = rv::mathx::first_crossing(sep, 0.0, horizon, 20000);
  return crossing ? crossing->x : -1.0;
}

TEST(FuzzSimulator, AgreesWithDenseOracleOnRandomTrajectories) {
  Xoshiro256 rng(20240612);
  int contacts = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const Path p1 = random_path(rng, 8);
    const Path p2 = random_path(rng, 8);
    RobotAttributes a2;
    a2.speed = rng.uniform(0.5, 2.0);
    const Vec2 origin2{rng.uniform(2.0, 6.0), rng.uniform(-2.0, 2.0)};
    const double r = rng.uniform(0.2, 1.0);
    const double horizon = 30.0;

    rv::sim::RobotSpec s1{std::make_shared<PathProgram>(p1, "fuzz1"),
                          RobotAttributes{}, Vec2{0.0, 0.0}};
    rv::sim::RobotSpec s2{std::make_shared<PathProgram>(p2, "fuzz2"), a2,
                          origin2};
    rv::sim::SimOptions opts;
    opts.visibility = r;
    opts.max_time = horizon;
    rv::sim::TwoRobotSimulator sim(std::move(s1), std::move(s2), opts);
    const auto res = sim.run();

    rv::sim::GlobalTrace t1(std::make_shared<PathProgram>(p1, "fuzz1"),
                            RobotAttributes{}, {0.0, 0.0}, horizon + 1.0);
    rv::sim::GlobalTrace t2(std::make_shared<PathProgram>(p2, "fuzz2"), a2,
                            origin2, horizon + 1.0);
    const double oracle = oracle_first_contact(t1, t2, r, horizon);

    if (res.met) {
      ++contacts;
      ASSERT_GE(oracle, 0.0)
          << "trial " << trial << ": simulator met at " << res.time
          << " but oracle saw nothing";
      // The dense scan can be slightly late on steep crossings; both
      // must agree to scan resolution.
      EXPECT_NEAR(res.time, oracle, 2e-2)
          << "trial " << trial << " r=" << r;
    } else if (oracle >= 0.0) {
      // The oracle "found" a contact the simulator missed: only
      // acceptable if it is a graze within the contact tolerance of
      // the horizon boundary.
      ADD_FAILURE() << "trial " << trial
                    << ": oracle found contact at " << oracle
                    << " that the simulator missed";
    }
  }
  // The scenario generator must actually produce contacts to test.
  EXPECT_GE(contacts, 5);
}

TEST(FuzzSimulator, FirstContactNeverAfterOracle) {
  // Stronger property on a second stream: when both find a contact,
  // the certified sweep's time is never later than the oracle's
  // (the sweep cannot skip the first crossing).
  Xoshiro256 rng(777);
  for (int trial = 0; trial < 25; ++trial) {
    const Path p1 = random_path(rng, 6);
    const Path p2 = random_path(rng, 6);
    const Vec2 origin2{rng.uniform(1.0, 4.0), rng.uniform(-1.0, 1.0)};
    const double r = rng.uniform(0.3, 0.8);
    const double horizon = 25.0;

    rv::sim::SimOptions opts;
    opts.visibility = r;
    opts.max_time = horizon;
    rv::sim::TwoRobotSimulator sim(
        {std::make_shared<PathProgram>(p1, "a"), RobotAttributes{},
         {0.0, 0.0}},
        {std::make_shared<PathProgram>(p2, "b"), RobotAttributes{}, origin2},
        opts);
    const auto res = sim.run();
    if (!res.met) continue;

    rv::sim::GlobalTrace t1(std::make_shared<PathProgram>(p1, "a"),
                            RobotAttributes{}, {0.0, 0.0}, horizon + 1.0);
    rv::sim::GlobalTrace t2(std::make_shared<PathProgram>(p2, "b"),
                            RobotAttributes{}, origin2, horizon + 1.0);
    const double oracle = oracle_first_contact(t1, t2, r, horizon);
    ASSERT_GE(oracle, 0.0);
    EXPECT_LE(res.time, oracle + 1e-6) << "trial " << trial;
  }
}

TEST(FuzzFrameMap, RandomProgramsSatisfyLemma4Identity) {
  Xoshiro256 rng(4711);
  for (int trial = 0; trial < 20; ++trial) {
    const Path local = random_path(rng, 6);
    RobotAttributes attrs;
    attrs.speed = rng.uniform(0.3, 3.0);
    attrs.time_unit = rng.uniform(0.3, 3.0);
    attrs.orientation = rng.angle();
    attrs.chirality = rng.sign();
    const Vec2 origin{rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)};
    const double horizon = attrs.time_unit * local.duration();
    if (horizon <= 0.0) continue;

    rv::sim::GlobalTrace trace(std::make_shared<PathProgram>(local, "fz"),
                               attrs, origin, horizon);
    const rv::geom::Mat2 m = rv::geom::frame_matrix(attrs);
    for (int i = 0; i < 25; ++i) {
      const double t = rng.uniform(0.0, horizon * 0.999);
      const Vec2 expected =
          origin + m * local.position_at(t / attrs.time_unit);
      EXPECT_TRUE(rv::geom::approx_equal(trace.position_at(t), expected, 1e-6))
          << "trial " << trial << " t=" << t;
    }
  }
}

// ---------------------------------------------------------------------------
// engine::cache_key fuzz: distinct cells must never share a key, keys
// must be deterministic, and the documented equivalences (−0.0 = +0.0,
// labels not keyed) must hold.  The oracle is an independent canonical
// dump of every keyed field (explicit field names, hexfloat doubles,
// length-framed strings) — if two semantically different items ever
// produce the same key, the dump comparison catches it.
// ---------------------------------------------------------------------------

std::string dump_f64(double v) {
  v += 0.0;  // mirror the key's −0.0 normalisation (the only doubles
             // that compare equal with distinct bit patterns)
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

std::string dump_str(const std::string& s) {
  return std::to_string(s.size()) + ":" + s;
}

std::string dump_attrs(const rv::geom::RobotAttributes& a) {
  return dump_f64(a.speed) + "," + dump_f64(a.time_unit) + "," +
         dump_f64(a.orientation) + "," + std::to_string(a.chirality);
}

std::string dump_vec(const rv::geom::Vec2& v) {
  return dump_f64(v.x) + "," + dump_f64(v.y);
}

/// Canonical representation of every field `cache_key` documents as
/// keyed.  Independent of the key encoding: field names + unambiguous
/// per-field framing.
std::string dump_item(const rv::engine::WorkItem& item) {
  using rv::engine::Family;
  std::string out = std::string("family=") +
                    rv::engine::family_name(item.family) + ";";
  switch (item.family) {
    case Family::kRendezvous: {
      const auto& s = item.scenario;
      // A custom program overrides the algorithm enum entirely, so the
      // enum is not part of the cell's semantics (and rightly unkeyed).
      out += s.program
                 ? "prog=custom;name=" + dump_str(s.program_name)
                 : "prog=builtin;algo=" +
                       std::to_string(static_cast<int>(s.algorithm));
      out += ";attrs=" + dump_attrs(s.attrs) + ";off=" + dump_vec(s.offset) +
             ";r=" + dump_f64(s.visibility) + ";T=" + dump_f64(s.max_time);
      break;
    }
    case Family::kSearch: {
      const auto& c = item.search;
      out += c.program_factory
                 ? "prog=custom"
                 : "prog=builtin;algo=" +
                       std::to_string(static_cast<int>(c.program));
      // The name is semantic even without a factory: run_search_cell
      // echoes it into the reported outcome.
      out += ";name=" + dump_str(c.program_name) +
             ";d=" + dump_f64(c.distance) + ";r=" + dump_f64(c.visibility) +
             ";angles=" + std::to_string(c.angles) +
             ";phase=" + dump_f64(c.angle_offset) + ";targets=";
      for (const auto& t : c.targets) out += dump_vec(t) + "|";
      out += ";attrs=" + dump_attrs(c.attrs) + ";T=" + dump_f64(c.max_time);
      break;
    }
    case Family::kGather: {
      const auto& c = item.gather;
      out += "algo=" + std::to_string(static_cast<int>(c.algorithm)) +
             ";fleet=";
      for (const auto& a : c.fleet) out += dump_attrs(a) + "|";
      out += ";ring=" + dump_f64(c.ring_radius) +
             ";phase=" + dump_f64(c.ring_phase) + ";jitter=";
      for (const auto& j : c.jitter) out += dump_vec(j) + "|";
      out += ";r=" + dump_f64(c.visibility) +
             ";Tc=" + dump_f64(c.contact_max_time) +
             ";Tg=" + dump_f64(c.gather_max_time);
      break;
    }
    case Family::kLinear: {
      const auto& c = item.linear;
      out += "mode=" + std::to_string(static_cast<int>(c.mode)) +
             ";v=" + dump_f64(c.attrs.speed) +
             ";tau=" + dump_f64(c.attrs.time_unit) +
             ";dir=" + std::to_string(c.attrs.direction) +
             ";x=" + dump_f64(c.target) + ";r=" + dump_f64(c.visibility) +
             ";T=" + dump_f64(c.max_time);
      break;
    }
    case Family::kCoverage: {
      const auto& c = item.coverage;
      out += c.program_factory
                 ? "prog=custom"
                 : "prog=builtin;algo=" +
                       std::to_string(static_cast<int>(c.program));
      out += ";name=" + dump_str(c.program_name) +
             ";attrs=" + dump_attrs(c.attrs) + ";R=" + dump_f64(c.disk_radius) +
             ";r=" + dump_f64(c.visibility) + ";cell=" + dump_f64(c.cell) +
             ";cp=" + std::to_string(c.checkpoints) +
             ";T=" + dump_f64(c.horizon);
      break;
    }
  }
  return out;
}

/// Random work item with fields drawn from adversarial pools: values
/// whose raw-byte encodings could collide across field boundaries if
/// the key format were ambiguous (short/empty hostile strings with
/// separators, control chars and embedded NULs; ±0.0; counts 0–3).
rv::engine::WorkItem random_item(Xoshiro256& rng) {
  using namespace rv;
  static const std::vector<double> doubles{
      0.0,    -0.0, 1.0,  2.0,   0.5,
      0.125,  1e-3, 1e6,  -1.0,  3.5};
  static const std::vector<std::string> strings{
      "",         "a",         "ab",          "c",
      "a\x01b",   "\x01",      "name,1",      std::string("x\0y", 3),
      "aa",       "ca",        {'\x04', 'a'}, "zigzag"};
  auto d = [&] { return doubles[static_cast<std::size_t>(
                     rng.uniform_int(0, static_cast<int>(doubles.size()) - 1))]; };
  auto s = [&] { return strings[static_cast<std::size_t>(
                     rng.uniform_int(0, static_cast<int>(strings.size()) - 1))]; };
  auto attrs = [&] {
    geom::RobotAttributes a;
    a.speed = d();
    a.time_unit = d();
    a.orientation = d();
    a.chirality = rng.sign();
    return a;
  };
  const auto factory = [] { return search::make_search_program(); };

  engine::WorkItem item;
  item.label = s();  // labels are NOT keyed; randomised to prove it
  switch (rng.uniform_int(0, 4)) {
    case 0: {
      item.family = engine::Family::kRendezvous;
      auto& sc = item.scenario;
      if (rng.uniform_int(0, 1) == 1) sc.program = factory;
      sc.program_name = s();
      sc.algorithm = rng.uniform_int(0, 1) == 0
                         ? rendezvous::AlgorithmChoice::kAlgorithm4
                         : rendezvous::AlgorithmChoice::kAlgorithm7;
      sc.attrs = attrs();
      sc.offset = {d(), d()};
      sc.visibility = d();
      sc.max_time = d();
      break;
    }
    case 1: {
      item.family = engine::Family::kSearch;
      auto& c = item.search;
      if (rng.uniform_int(0, 1) == 1) c.program_factory = factory;
      c.program_name = s();
      c.program = static_cast<engine::SearchProgram>(rng.uniform_int(0, 2));
      c.distance = d();
      c.visibility = d();
      c.angles = rng.uniform_int(1, 3);
      c.angle_offset = d();
      for (int i = rng.uniform_int(0, 3); i > 0; --i) {
        c.targets.push_back({d(), d()});
      }
      c.attrs = attrs();
      c.max_time = d();
      break;
    }
    case 2: {
      item.family = engine::Family::kGather;
      auto& c = item.gather;
      c.algorithm = rng.uniform_int(0, 1) == 0
                        ? rendezvous::AlgorithmChoice::kAlgorithm4
                        : rendezvous::AlgorithmChoice::kAlgorithm7;
      for (int i = rng.uniform_int(2, 4); i > 0; --i) {
        c.fleet.push_back(attrs());
      }
      c.ring_radius = d();
      c.ring_phase = d();
      for (int i = rng.uniform_int(0, 3); i > 0; --i) {
        c.jitter.push_back({d(), d()});
      }
      c.visibility = d();
      c.contact_max_time = d();
      c.gather_max_time = d();
      break;
    }
    case 3: {
      item.family = engine::Family::kLinear;
      auto& c = item.linear;
      c.mode = rng.uniform_int(0, 1) == 0 ? engine::LinearMode::kZigZagSearch
                                          : engine::LinearMode::kRendezvous;
      c.attrs.speed = d();
      c.attrs.time_unit = d();
      c.attrs.direction = rng.sign();
      c.target = d();
      c.visibility = d();
      c.max_time = d();
      break;
    }
    default: {
      item.family = engine::Family::kCoverage;
      auto& c = item.coverage;
      if (rng.uniform_int(0, 1) == 1) c.program_factory = factory;
      c.program_name = s();
      c.program = static_cast<engine::SearchProgram>(rng.uniform_int(0, 2));
      c.attrs = attrs();
      c.disk_radius = d();
      c.visibility = d();
      c.cell = d();
      c.checkpoints = rng.uniform_int(1, 8);
      c.horizon = d();
      break;
    }
  }
  return item;
}

TEST(FuzzCacheKey, DistinctCellsNeverCollideAndKeysAreDeterministic) {
  using rv::engine::cache_key;
  Xoshiro256 rng(20260730);
  std::map<std::string, std::string> seen;  // key → canonical dump
  int keyed = 0, uncacheable = 0, equivalent = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    const rv::engine::WorkItem item = random_item(rng);
    const auto key = cache_key(item);
    const bool anonymous_custom =
        (item.family == rv::engine::Family::kRendezvous &&
         item.scenario.program && item.scenario.program_name.empty()) ||
        (item.family == rv::engine::Family::kSearch &&
         item.search.program_factory && item.search.program_name.empty()) ||
        (item.family == rv::engine::Family::kCoverage &&
         item.coverage.program_factory && item.coverage.program_name.empty());
    ASSERT_EQ(key.has_value(), !anonymous_custom) << "trial " << trial;
    if (!key) {
      ++uncacheable;
      continue;
    }
    ++keyed;
    // Deterministic: a deep copy keys identically.
    const rv::engine::WorkItem copy = item;
    ASSERT_EQ(cache_key(copy), key) << "trial " << trial;
    // Injective: equal keys imply an equal canonical dump.
    const std::string dump = dump_item(item);
    const auto [it, inserted] = seen.emplace(*key, dump);
    if (!inserted) {
      ASSERT_EQ(it->second, dump)
          << "trial " << trial
          << ": two semantically distinct cells share a cache key";
      ++equivalent;
    }
  }
  // The generator must exercise all paths meaningfully.
  EXPECT_GT(keyed, 2000);
  EXPECT_GT(uncacheable, 50);
  EXPECT_GT(equivalent, 0);  // duplicates occur, and collide *correctly*
}

TEST(FuzzCacheKey, DocumentedEquivalencesAndSeparations) {
  using rv::engine::cache_key;
  rv::engine::WorkItem base;
  base.family = rv::engine::Family::kSearch;
  base.search.distance = 1.0;
  base.search.visibility = 0.25;
  base.search.angles = 2;
  base.label = "first";

  // Labels are not keyed.
  rv::engine::WorkItem relabeled = base;
  relabeled.label = "second";
  EXPECT_EQ(cache_key(base), cache_key(relabeled));

  // −0.0 keys as +0.0 (they are numerically equal).
  rv::engine::WorkItem neg = base;
  neg.search.angle_offset = -0.0;
  rv::engine::WorkItem pos = base;
  pos.search.angle_offset = 0.0;
  EXPECT_EQ(cache_key(neg), cache_key(pos));

  // Components-only items have no key at all.
  rv::engine::WorkItem algebra = base;
  algebra.components_only = true;
  EXPECT_FALSE(cache_key(algebra).has_value());

  // A ring cell and a targets cell with equal scalars must differ, as
  // must hostile program names that embed each other.
  rv::engine::WorkItem with_target = base;
  with_target.search.targets = {{1.0, 0.0}};
  EXPECT_NE(cache_key(base), cache_key(with_target));
  rv::engine::WorkItem named1 = base;
  named1.search.program_name = "ab";
  rv::engine::WorkItem named2 = base;
  named2.search.program_name = "a";
  EXPECT_NE(cache_key(named1), cache_key(named2));
  EXPECT_NE(cache_key(named1), cache_key(base));
}

// ---------------------------------------------------------------------------
// `.rvset` parser fuzz (engine/set_decl): hostile text — truncations,
// byte flips, NUL/UTF-8 garbage, duplicated and deleted lines — must
// either parse deterministically or fail with SetDeclError.  It must
// never crash, never throw anything else, and never *mis-parse*: a
// token with trailing junk, an out-of-range value or a duplicate key
// is an error, not a silently different grid.
// ---------------------------------------------------------------------------

/// A valid seed declaration touching every family and section kind.
const char* kSeedDecl =
    "name = fuzz-seed\n"
    "description = all five families\n"
    "[rendezvous]\n"
    "visibility = 0.25\n"
    "speeds = 1.0 1.5\n"
    "chiralities = 1 -1\n"
    "[search]\n"
    "angles = 4\n"
    "distances = 1.0 2.0\n"
    "horizon_rule = guaranteed-rounds+1\n"
    "[gather.add]\n"
    "label = pair\n"
    "robot = 1.0 1.0\n"
    "robot = 1.5 0.5\n"
    "[linear]\n"
    "mode = zigzag-search\n"
    "distances = 1.0 -2.0\n"
    "[coverage]\n"
    "programs = algorithm4 square-spiral\n"
    "horizon = 50.0\n";

/// The grid a parse produced, as comparable data: (family, label,
/// content key) per materialised item.
std::vector<std::string> grid_signature(const rv::engine::SetDecl& decl) {
  std::vector<std::string> out;
  for (const rv::engine::WorkItem& item : decl.set.materialize_work()) {
    const auto key = rv::engine::cache_key(item);
    out.push_back(std::string(rv::engine::family_name(item.family)) + "|" +
                  item.label + "|" + key.value_or("<uncacheable>"));
  }
  return out;
}

TEST(FuzzSetDecl, SeedParsesDeterministically) {
  const rv::engine::SetDecl a = rv::engine::parse_set_decl(kSeedDecl);
  const rv::engine::SetDecl b = rv::engine::parse_set_decl(kSeedDecl);
  EXPECT_EQ(a.name, "fuzz-seed");
  const std::vector<std::string> sig = grid_signature(a);
  EXPECT_EQ(sig, grid_signature(b));
  // 4 rendezvous + 2 search + 1 gather.add + 2 linear + 2 coverage.
  EXPECT_EQ(sig.size(), 11u);
}

TEST(FuzzSetDecl, EveryTruncationFailsCleanlyOrParses) {
  const std::string seed = kSeedDecl;
  int parsed = 0, rejected = 0;
  for (std::size_t keep = 0; keep <= seed.size(); ++keep) {
    const std::string cut = seed.substr(0, keep);
    try {
      const rv::engine::SetDecl decl = rv::engine::parse_set_decl(cut);
      // A successful parse must materialise without throwing.
      (void)grid_signature(decl);
      ++parsed;
    } catch (const rv::engine::SetDeclError&) {
      ++rejected;  // clean, typed failure — the only acceptable error
    } catch (const std::invalid_argument&) {
      ++rejected;  // domain-invalid cell caught at materialisation
    }
  }
  // Both outcomes must actually occur (the full text parses; chopping
  // inside "[search]\nangles = 4\n" leaves an axis-less grid, etc.).
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(FuzzSetDecl, RandomMutationsNeverCrashOrMisThrow) {
  Xoshiro256 rng(20260808);
  const std::string seed = kSeedDecl;
  static const std::string garbage_pool =
      std::string("\0\x01\x7f\xc3\xa9\xe2\x82\xac[]=# \t\n-+.e0129xX/", 26);
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string text = seed;
    const int edits = rng.uniform_int(1, 4);
    for (int e = 0; e < edits; ++e) {
      switch (rng.uniform_int(0, 4)) {
        case 0: {  // flip/overwrite one byte
          if (text.empty()) break;
          const auto at = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(text.size()) - 1));
          text[at] = garbage_pool[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<int>(garbage_pool.size()) - 1))];
          break;
        }
        case 1: {  // insert a garbage byte
          const auto at = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(text.size())));
          text.insert(at, 1,
                      garbage_pool[static_cast<std::size_t>(rng.uniform_int(
                          0, static_cast<int>(garbage_pool.size()) - 1))]);
          break;
        }
        case 2: {  // truncate at a random point
          text.resize(static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(text.size()))));
          break;
        }
        case 3: {  // duplicate a random line (dup-key pressure)
          std::vector<std::string> lines;
          std::size_t start = 0;
          while (start < text.size()) {
            std::size_t eol = text.find('\n', start);
            if (eol == std::string::npos) eol = text.size();
            lines.push_back(text.substr(start, eol - start));
            start = eol + 1;
          }
          if (lines.empty()) break;
          const auto which = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(lines.size()) - 1));
          lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(which),
                       lines[which]);
          text.clear();
          for (const std::string& line : lines) text += line + "\n";
          break;
        }
        default: {  // delete a random span
          if (text.empty()) break;
          const auto at = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(text.size()) - 1));
          const auto len = static_cast<std::size_t>(rng.uniform_int(1, 12));
          text.erase(at, len);
          break;
        }
      }
    }
    rv::engine::SetDecl decl;
    try {
      decl = rv::engine::parse_set_decl(text);
    } catch (const rv::engine::SetDeclError&) {
      ++rejected;  // the only failure mode the *parser* may have
      continue;
    }
    // Any other exception type from the parse propagates and fails.
    try {
      const std::vector<std::string> sig = grid_signature(decl);
      // Whatever parsed must re-parse to the identical grid.
      ASSERT_EQ(sig, grid_signature(rv::engine::parse_set_decl(text)))
          << "trial " << trial;
      ++parsed;
    } catch (const std::invalid_argument&) {
      // Materialisation may reject domain-invalid values (e.g. a
      // horizon rule needs d, r > 0) — exactly as a hand-written
      // ScenarioSet with the same cell would.  Clean, typed, no crash.
      ++rejected;
    }
  }
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(FuzzSetDecl, CorruptValuesErrorInsteadOfMisParsing) {
  // Each hostile value rides in an otherwise valid declaration; a
  // lenient strtod-style parser would accept every one of them and
  // quietly produce a *different grid* — the exact bug class this
  // format bans.
  const char* hostile_values[] = {
      "1.0x",          // trailing junk after a valid number
      "0x10",          // hex
      "inf",           // non-finite
      "nan",           // non-finite
      "1e400",         // overflows to inf
      "1.0 2.0x",      // junk hidden inside a list
      "2 # comment",   // inline comments are not a thing
      "1,5",           // locale-style decimal comma
      "--1",           // double sign
      "1e",            // empty exponent
      ".",             // no digits at all
  };
  for (const char* value : hostile_values) {
    const std::string text =
        std::string("[search]\ndistances = ") + value + "\n";
    EXPECT_THROW((void)rv::engine::parse_set_decl(text),
                 rv::engine::SetDeclError)
        << "value '" << value << "' must not parse";
  }
  // And the out-of-range integer axis: counts cannot wrap.
  EXPECT_THROW((void)rv::engine::parse_set_decl(
                   "[search]\nangles = 4294967296\ndistances = 1\n"),
               rv::engine::SetDeclError);
  EXPECT_THROW((void)rv::engine::parse_set_decl(
                   "[gather]\nsizes = 99999999999999999999\n"),
               rv::engine::SetDeclError);
}

TEST(FuzzPaths, RandomPathsAreAlwaysContinuousAndClamped) {
  Xoshiro256 rng(90210);
  for (int trial = 0; trial < 50; ++trial) {
    const Path p = random_path(rng, 10);
    EXPECT_TRUE(p.is_continuous(1e-9)) << trial;
    EXPECT_TRUE(rv::geom::approx_equal(p.position_at(-1.0), p.start()));
    EXPECT_TRUE(
        rv::geom::approx_equal(p.position_at(p.duration() + 5.0), p.end()));
    // Durations are non-negative and sum consistently.
    double acc = 0.0;
    for (const auto& seg : p.segments()) {
      const double dur = rv::traj::duration(seg);
      EXPECT_GE(dur, 0.0);
      acc += dur;
    }
    EXPECT_NEAR(acc, p.duration(), 1e-9 * (1.0 + acc));
  }
}

}  // namespace
