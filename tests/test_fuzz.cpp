// Randomised differential tests ("fuzz"): the certified Lipschitz
// sweep of the simulator is cross-checked against an independent
// dense-sampling + Brent oracle on randomly generated piecewise
// trajectories, and the frame map is cross-checked against direct
// matrix evaluation on random programs.  Any disagreement is a bug in
// one of the two independent implementations.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "mathx/constants.hpp"
#include "mathx/rng.hpp"
#include "mathx/roots.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "traj/path.hpp"
#include "traj/program.hpp"

namespace {

using rv::geom::RobotAttributes;
using rv::geom::Vec2;
using rv::mathx::Xoshiro256;
using rv::traj::Path;
using rv::traj::PathProgram;

/// Random continuous path with `segments` pieces: lines, arcs and
/// waits with bounded extents.
Path random_path(Xoshiro256& rng, int segments) {
  Path path;
  for (int i = 0; i < segments; ++i) {
    const auto kind = rng.uniform_int(0, 2);
    if (kind == 0) {
      path.line_to(path.end() +
                   Vec2{rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)});
    } else if (kind == 1) {
      // Arc around a centre offset from the current end point.
      const Vec2 centre =
          path.end() + rv::geom::polar(rng.uniform(0.3, 2.0), rng.angle());
      path.arc_around(centre, rng.uniform(-1.5, 1.5) * rv::mathx::kPi);
    } else {
      path.wait(rng.uniform(0.1, 1.0));
    }
  }
  return path;
}

/// Independent oracle: separation of the two traces as a dense time
/// function, first crossing of r found by scan + Brent.
double oracle_first_contact(const rv::sim::GlobalTrace& t1,
                            const rv::sim::GlobalTrace& t2, double r,
                            double horizon) {
  auto sep = [&](double t) {
    return rv::geom::distance(t1.position_at(t), t2.position_at(t)) - r;
  };
  if (sep(0.0) <= 0.0) return 0.0;
  // Scan resolution well below any segment length used by the fuzzer.
  const auto crossing = rv::mathx::first_crossing(sep, 0.0, horizon, 20000);
  return crossing ? crossing->x : -1.0;
}

TEST(FuzzSimulator, AgreesWithDenseOracleOnRandomTrajectories) {
  Xoshiro256 rng(20240612);
  int contacts = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const Path p1 = random_path(rng, 8);
    const Path p2 = random_path(rng, 8);
    RobotAttributes a2;
    a2.speed = rng.uniform(0.5, 2.0);
    const Vec2 origin2{rng.uniform(2.0, 6.0), rng.uniform(-2.0, 2.0)};
    const double r = rng.uniform(0.2, 1.0);
    const double horizon = 30.0;

    rv::sim::RobotSpec s1{std::make_shared<PathProgram>(p1, "fuzz1"),
                          RobotAttributes{}, Vec2{0.0, 0.0}};
    rv::sim::RobotSpec s2{std::make_shared<PathProgram>(p2, "fuzz2"), a2,
                          origin2};
    rv::sim::SimOptions opts;
    opts.visibility = r;
    opts.max_time = horizon;
    rv::sim::TwoRobotSimulator sim(std::move(s1), std::move(s2), opts);
    const auto res = sim.run();

    rv::sim::GlobalTrace t1(std::make_shared<PathProgram>(p1, "fuzz1"),
                            RobotAttributes{}, {0.0, 0.0}, horizon + 1.0);
    rv::sim::GlobalTrace t2(std::make_shared<PathProgram>(p2, "fuzz2"), a2,
                            origin2, horizon + 1.0);
    const double oracle = oracle_first_contact(t1, t2, r, horizon);

    if (res.met) {
      ++contacts;
      ASSERT_GE(oracle, 0.0)
          << "trial " << trial << ": simulator met at " << res.time
          << " but oracle saw nothing";
      // The dense scan can be slightly late on steep crossings; both
      // must agree to scan resolution.
      EXPECT_NEAR(res.time, oracle, 2e-2)
          << "trial " << trial << " r=" << r;
    } else if (oracle >= 0.0) {
      // The oracle "found" a contact the simulator missed: only
      // acceptable if it is a graze within the contact tolerance of
      // the horizon boundary.
      ADD_FAILURE() << "trial " << trial
                    << ": oracle found contact at " << oracle
                    << " that the simulator missed";
    }
  }
  // The scenario generator must actually produce contacts to test.
  EXPECT_GE(contacts, 5);
}

TEST(FuzzSimulator, FirstContactNeverAfterOracle) {
  // Stronger property on a second stream: when both find a contact,
  // the certified sweep's time is never later than the oracle's
  // (the sweep cannot skip the first crossing).
  Xoshiro256 rng(777);
  for (int trial = 0; trial < 25; ++trial) {
    const Path p1 = random_path(rng, 6);
    const Path p2 = random_path(rng, 6);
    const Vec2 origin2{rng.uniform(1.0, 4.0), rng.uniform(-1.0, 1.0)};
    const double r = rng.uniform(0.3, 0.8);
    const double horizon = 25.0;

    rv::sim::SimOptions opts;
    opts.visibility = r;
    opts.max_time = horizon;
    rv::sim::TwoRobotSimulator sim(
        {std::make_shared<PathProgram>(p1, "a"), RobotAttributes{},
         {0.0, 0.0}},
        {std::make_shared<PathProgram>(p2, "b"), RobotAttributes{}, origin2},
        opts);
    const auto res = sim.run();
    if (!res.met) continue;

    rv::sim::GlobalTrace t1(std::make_shared<PathProgram>(p1, "a"),
                            RobotAttributes{}, {0.0, 0.0}, horizon + 1.0);
    rv::sim::GlobalTrace t2(std::make_shared<PathProgram>(p2, "b"),
                            RobotAttributes{}, origin2, horizon + 1.0);
    const double oracle = oracle_first_contact(t1, t2, r, horizon);
    ASSERT_GE(oracle, 0.0);
    EXPECT_LE(res.time, oracle + 1e-6) << "trial " << trial;
  }
}

TEST(FuzzFrameMap, RandomProgramsSatisfyLemma4Identity) {
  Xoshiro256 rng(4711);
  for (int trial = 0; trial < 20; ++trial) {
    const Path local = random_path(rng, 6);
    RobotAttributes attrs;
    attrs.speed = rng.uniform(0.3, 3.0);
    attrs.time_unit = rng.uniform(0.3, 3.0);
    attrs.orientation = rng.angle();
    attrs.chirality = rng.sign();
    const Vec2 origin{rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)};
    const double horizon = attrs.time_unit * local.duration();
    if (horizon <= 0.0) continue;

    rv::sim::GlobalTrace trace(std::make_shared<PathProgram>(local, "fz"),
                               attrs, origin, horizon);
    const rv::geom::Mat2 m = rv::geom::frame_matrix(attrs);
    for (int i = 0; i < 25; ++i) {
      const double t = rng.uniform(0.0, horizon * 0.999);
      const Vec2 expected =
          origin + m * local.position_at(t / attrs.time_unit);
      EXPECT_TRUE(rv::geom::approx_equal(trace.position_at(t), expected, 1e-6))
          << "trial " << trial << " t=" << t;
    }
  }
}

TEST(FuzzPaths, RandomPathsAreAlwaysContinuousAndClamped) {
  Xoshiro256 rng(90210);
  for (int trial = 0; trial < 50; ++trial) {
    const Path p = random_path(rng, 10);
    EXPECT_TRUE(p.is_continuous(1e-9)) << trial;
    EXPECT_TRUE(rv::geom::approx_equal(p.position_at(-1.0), p.start()));
    EXPECT_TRUE(
        rv::geom::approx_equal(p.position_at(p.duration() + 5.0), p.end()));
    // Durations are non-negative and sum consistently.
    double acc = 0.0;
    for (const auto& seg : p.segments()) {
      const double dur = rv::traj::duration(seg);
      EXPECT_GE(dur, 0.0);
      acc += dur;
    }
    EXPECT_NEAR(acc, p.duration(), 1e-9 * (1.0 + acc));
  }
}

}  // namespace
