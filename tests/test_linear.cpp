// Tests for the 1-D (infinite line) module: zigzag search, the linear
// rendezvous program, feasibility on the line, and end-to-end
// simulations reusing the 2-D certified simulator.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "linear/linear_rendezvous.hpp"
#include "linear/zigzag.hpp"
#include "mathx/binary.hpp"
#include "mathx/constants.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace rv::linear;
using rv::geom::Vec2;
using rv::mathx::pow2;
using rv::traj::Segment;

// ---------------------------------------------------------------------------
// ZigZag program
// ---------------------------------------------------------------------------

TEST(ZigZag, RoundStructureAndTimes) {
  ZigZagProgram prog;
  double acc = 0.0;
  for (int k = 1; k <= 6; ++k) {
    double round = 0.0;
    for (int leg = 0; leg < 4; ++leg) round += rv::traj::duration(prog.next());
    EXPECT_NEAR(round, zigzag_round_time(k), 1e-12) << k;
    acc += round;
    EXPECT_NEAR(acc, zigzag_prefix_time(k), 1e-12) << k;
  }
  EXPECT_DOUBLE_EQ(zigzag_prefix_time(0), 0.0);
  EXPECT_THROW((void)zigzag_round_time(0), std::invalid_argument);
}

TEST(ZigZag, StaysOnAxisAndContinuous) {
  ZigZagProgram prog;
  Vec2 cursor{0.0, 0.0};
  for (int i = 0; i < 40; ++i) {
    const Segment seg = prog.next();
    EXPECT_TRUE(rv::geom::approx_equal(rv::traj::start_point(seg), cursor));
    cursor = rv::traj::end_point(seg);
    EXPECT_DOUBLE_EQ(cursor.y, 0.0);
  }
}

TEST(ZigZag, ReachBound) {
  EXPECT_DOUBLE_EQ(zigzag_reach_bound(1.0), zigzag_prefix_time(1));
  EXPECT_DOUBLE_EQ(zigzag_reach_bound(3.0), zigzag_prefix_time(2));
  EXPECT_DOUBLE_EQ(zigzag_reach_bound(-5.0), zigzag_prefix_time(3));
  EXPECT_THROW((void)zigzag_reach_bound(0.0), std::invalid_argument);
}

TEST(ZigZag, LinearSearchIsThetaOfD) {
  // The line needs no visibility radius: the zigzag *crosses* every
  // point.  Check the reach bound is linear in d (vs the plane's
  // superlinear d²/r).
  for (const double d : {1.0, 4.0, 16.0, 64.0}) {
    EXPECT_LE(zigzag_reach_bound(d), 16.0 * d);
  }
}

TEST(ZigZag, FindsTargetsOnBothSides) {
  for (const double x : {2.5, -3.7, 0.4, -0.9}) {
    rv::sim::SimOptions opts;
    opts.visibility = 0.01;
    opts.max_time = zigzag_reach_bound(x) + 1.0;
    const auto res =
        rv::sim::simulate_search(make_zigzag_program(), {x, 0.0}, opts);
    EXPECT_TRUE(res.met) << x;
    EXPECT_LE(res.time, zigzag_reach_bound(x)) << x;
  }
}

// ---------------------------------------------------------------------------
// Linear schedule algebra
// ---------------------------------------------------------------------------

TEST(LinearSchedule, ClosedFormsMatchPrefixSums) {
  // I_lin(n) = 4·Σ_{j<n} Z(j); round n lasts 4·Z(n).
  double acc = 0.0;
  for (int n = 1; n <= 16; ++n) {
    EXPECT_NEAR(linear_inactive_start(n), acc, 1e-9 * (1.0 + acc)) << n;
    EXPECT_NEAR(linear_active_start(n) - linear_inactive_start(n),
                2.0 * linear_search_all_time(n), 1e-9)
        << n;
    acc += 4.0 * linear_search_all_time(n);
  }
  EXPECT_DOUBLE_EQ(linear_inactive_start(1), 0.0);
}

TEST(LinearSchedule, ProgramMatchesClosedForms) {
  LinearRendezvousProgram prog;
  double clock = 0.0;
  int n_seen = 0;
  // Walk segments, detecting the wait segments that open each round.
  for (int i = 0; i < 4000 && n_seen < 6; ++i) {
    const Segment seg = prog.next();
    if (std::holds_alternative<rv::traj::WaitSeg>(seg)) {
      ++n_seen;
      EXPECT_NEAR(clock, linear_inactive_start(n_seen),
                  1e-9 * (1.0 + clock))
          << "round " << n_seen;
      EXPECT_NEAR(std::get<rv::traj::WaitSeg>(seg).duration,
                  2.0 * linear_search_all_time(n_seen), 1e-9);
    }
    clock += rv::traj::duration(seg);
  }
  EXPECT_EQ(n_seen, 6);
}

// ---------------------------------------------------------------------------
// Feasibility on the line
// ---------------------------------------------------------------------------

TEST(LinearFeasibility, CharacterisationMatchesPaperReduction) {
  LinearAttributes same;
  EXPECT_FALSE(linear_rendezvous_feasible(same));
  LinearAttributes speed;
  speed.speed = 2.0;
  EXPECT_TRUE(linear_rendezvous_feasible(speed));
  LinearAttributes clock;
  clock.time_unit = 0.5;
  EXPECT_TRUE(linear_rendezvous_feasible(clock));
  LinearAttributes dir;
  dir.direction = -1;
  EXPECT_TRUE(linear_rendezvous_feasible(dir));
}

TEST(LinearFeasibility, PlanarLiftIsConsistent) {
  // δ = −1 lifts to φ = π (feasible by Theorem 4's orientation branch);
  // identical robots lift to the infeasible identity tuple.
  LinearAttributes dir;
  dir.direction = -1;
  const auto planar = to_planar(dir);
  EXPECT_DOUBLE_EQ(planar.orientation, rv::mathx::kPi);
  LinearAttributes same;
  EXPECT_EQ(to_planar(same), rv::geom::reference_attributes());
  LinearAttributes bad;
  bad.direction = 0;
  EXPECT_THROW((void)to_planar(bad), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// End-to-end linear rendezvous
// ---------------------------------------------------------------------------

class LinearRendezvousEndToEnd
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(LinearRendezvousEndToEnd, FeasibleTuplesMeet) {
  const auto [v, tau, dir] = GetParam();
  LinearAttributes attrs;
  attrs.speed = v;
  attrs.time_unit = tau;
  attrs.direction = dir;
  ASSERT_TRUE(linear_rendezvous_feasible(attrs));
  rv::sim::SimOptions opts;
  opts.visibility = 0.05;
  opts.max_time = 1e6;
  const auto res = rv::sim::simulate_rendezvous(
      [] { return make_linear_rendezvous_program(); }, to_planar(attrs),
      {1.0, 0.0}, opts);
  EXPECT_TRUE(res.met) << "v=" << v << " tau=" << tau << " dir=" << dir;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LinearRendezvousEndToEnd,
    ::testing::Values(std::make_tuple(2.0, 1.0, 1),
                      std::make_tuple(0.5, 1.0, 1),
                      std::make_tuple(1.0, 0.5, 1),
                      std::make_tuple(1.0, 0.75, 1),
                      std::make_tuple(1.0, 1.0, -1),
                      std::make_tuple(1.5, 0.5, -1)));

TEST(LinearRendezvousEndToEndExtra, IdenticalRobotsNeverMeet) {
  LinearAttributes same;
  ASSERT_FALSE(linear_rendezvous_feasible(same));
  rv::sim::SimOptions opts;
  opts.visibility = 0.05;
  opts.max_time = 1e4;
  const auto res = rv::sim::simulate_rendezvous(
      [] { return make_linear_rendezvous_program(); }, to_planar(same),
      {1.0, 0.0}, opts);
  EXPECT_FALSE(res.met);
  EXPECT_NEAR(res.min_distance, 1.0, 1e-9);
}

TEST(LinearRendezvousEndToEndExtra, LineBeatsPlaneOnClockCases) {
  // Same clock ratio, same d and r: the 1-D schedule meets no later
  // than the 2-D Algorithm 7 within the shared horizon (the zigzag
  // re-crosses the peer's origin far more often than the annulus
  // sweep).  This is an observation, not a theorem — assert only that
  // the 1-D case meets and report-style compare.
  LinearAttributes attrs;
  attrs.time_unit = 0.5;
  rv::sim::SimOptions opts;
  opts.visibility = 0.2;
  opts.max_time = 1e6;
  const auto line = rv::sim::simulate_rendezvous(
      [] { return make_linear_rendezvous_program(); }, to_planar(attrs),
      {1.0, 0.0}, opts);
  ASSERT_TRUE(line.met);
  EXPECT_GT(line.time, 0.0);
}

}  // namespace
